#!/usr/bin/env bash
# loadtest.sh — drive a local mmxd with concurrent curl loops and record
# service throughput into BENCH_serve.json. Wall-clock numbers are
# host-dependent; this measures, it never gates.
#
#   scripts/loadtest.sh                    # 4 clients x 8 requests, fir.mmx
#   CLIENTS=8 REQS=16 scripts/loadtest.sh  # heavier sweep
#   PROGRAM=jpeg.c scripts/loadtest.sh     # different benchmark
#   OUT=serve.json scripts/loadtest.sh     # custom artifact path
#
# Dependency-free by design: bash, curl and the Go toolchain only.
set -euo pipefail
cd "$(dirname "$0")/.."

clients="${CLIENTS:-4}"
reqs="${REQS:-8}"
program="${PROGRAM:-fir.mmx}"
dispatch="${DISPATCH:-block}"
out="${OUT:-BENCH_serve.json}"
addr="127.0.0.1:${PORT:-8931}"
base="http://$addr"

echo "==> go build ./cmd/mmxd"
workdir="$(mktemp -d)"
bin="$workdir/mmxd"
go build -o "$bin" ./cmd/mmxd

"$bin" -addr "$addr" &
daemon=$!
cleanup() {
    kill "$daemon" 2>/dev/null || true
    wait "$daemon" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "==> waiting for $base/healthz"
for _ in $(seq 1 100); do
    if curl -sf "$base/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -sf "$base/healthz" >/dev/null

body="{\"program\":\"$program\",\"dispatch\":\"$dispatch\",\"skip_check\":true}"

# Cold-vs-warm cache latency: the first request compiles, the second hits
# the compiled-program cache.
cold_s="$(curl -sf -o /dev/null -w '%{time_total}' -X POST -d "$body" "$base/run")"
warm_s="$(curl -sf -o /dev/null -w '%{time_total}' -X POST -d "$body" "$base/run")"
echo "==> cold ${cold_s}s, warm ${warm_s}s ($program, $dispatch dispatch)"

# Concurrent load: $clients curl loops of $reqs requests each.
echo "==> $clients clients x $reqs requests"
start_ns="$(date +%s%N)"
pids=()
for _ in $(seq 1 "$clients"); do
    (
        for _ in $(seq 1 "$reqs"); do
            curl -sf -o /dev/null -X POST -d "$body" "$base/run"
        done
    ) &
    pids+=("$!")
done
wait "${pids[@]}"
elapsed_ns=$(( $(date +%s%N) - start_ns ))

total=$(( clients * reqs ))
metrics="$(curl -sf "$base/metrics")"

# Render the artifact with printf — no jq dependency.
elapsed_s="$(printf '%d.%09d' $((elapsed_ns / 1000000000)) $((elapsed_ns % 1000000000)))"
rps="$(awk -v n="$total" -v s="$elapsed_s" 'BEGIN { printf "%.2f", n / s }')"
commit="$(git rev-parse --short HEAD 2>/dev/null || true)"

{
    printf '{\n'
    printf '  "commit": "%s",\n' "$commit"
    printf '  "program": "%s",\n' "$program"
    printf '  "dispatch": "%s",\n' "$dispatch"
    printf '  "clients": %d,\n' "$clients"
    printf '  "requests": %d,\n' "$total"
    printf '  "elapsed_seconds": %s,\n' "$elapsed_s"
    printf '  "requests_per_second": %s,\n' "$rps"
    printf '  "cold_seconds": %s,\n' "$cold_s"
    printf '  "warm_seconds": %s,\n' "$warm_s"
    printf '  "metrics": %s\n' "$metrics"
    printf '}\n'
} > "$out"

echo "==> $total requests in ${elapsed_s}s (${rps} req/s); wrote $out"
