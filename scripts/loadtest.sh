#!/usr/bin/env bash
# loadtest.sh — drive a local mmxd (or an mmxfleet coordinator fronting N
# mmxd backends) with concurrent curl loops and record service throughput
# into BENCH_serve.json: one JSON row per (program, target). Wall-clock
# numbers are host-dependent; this measures, it never gates.
#
#   scripts/loadtest.sh                          # 4 clients x 8 requests, fir.mmx, one mmxd
#   CLIENTS=8 REQS=16 scripts/loadtest.sh        # heavier sweep
#   PROGRAMS="fir.mmx jpeg.c g711.c" scripts/loadtest.sh
#                                                # sweep several benchmarks
#   TARGET=coordinator BACKENDS=2 scripts/loadtest.sh
#                                                # mmxfleet over 2 mmxd backends
#   CAMPAIGN=1 scripts/loadtest.sh               # ablation campaign: a 48-point
#                                                # 3-axis grid, run cold then
#                                                # re-run against the warm result
#                                                # cache; points/s and cache-hit
#                                                # rate land in the artifact
#   ASM=1 scripts/loadtest.sh                    # user-submitted /asm traffic:
#                                                # a bulk tenant floods budgeted
#                                                # spins while an interactive
#                                                # tenant submits real source;
#                                                # per-tenant req/s and shed
#                                                # counts land in the artifact
#   OUT=serve.json scripts/loadtest.sh           # custom artifact path
#
# Dependency-free by design: bash, curl and the Go toolchain only.
set -euo pipefail
cd "$(dirname "$0")/.."

clients="${CLIENTS:-4}"
reqs="${REQS:-8}"
programs="${PROGRAMS:-${PROGRAM:-fir.mmx}}"
dispatch="${DISPATCH:-block}"
out="${OUT:-BENCH_serve.json}"
target="${TARGET:-backend}"
nbackends="${BACKENDS:-2}"
port="${PORT:-8931}"

case "$target" in
backend) nbackends=1 ;;
coordinator) ;;
*)
    echo "loadtest.sh: TARGET must be 'backend' or 'coordinator', got '$target'" >&2
    exit 2
    ;;
esac

echo "==> go build ./cmd/mmxd ./cmd/mmxfleet"
workdir="$(mktemp -d)"
go build -o "$workdir/mmxd" ./cmd/mmxd
go build -o "$workdir/mmxfleet" ./cmd/mmxfleet

pids=()
cleanup() {
    for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
    for pid in "${pids[@]}"; do wait "$pid" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT

wait_healthy() {
    for _ in $(seq 1 100); do
        if curl -sf "$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    curl -sf "$1/healthz" >/dev/null
}

# Start the mmxd backends (one for TARGET=backend, $BACKENDS for the
# coordinator) and, in coordinator mode, the mmxfleet in front of them.
backend_urls=""
for i in $(seq 0 $((nbackends - 1))); do
    addr="127.0.0.1:$((port + 1 + i))"
    "$workdir/mmxd" -addr "$addr" &
    pids+=("$!")
    backend_urls="$backend_urls${backend_urls:+,}http://$addr"
done
for u in ${backend_urls//,/ }; do
    echo "==> waiting for $u/healthz"
    wait_healthy "$u"
done

if [[ "$target" == "coordinator" ]]; then
    base="http://127.0.0.1:$port"
    "$workdir/mmxfleet" -addr "127.0.0.1:$port" -backends "$backend_urls" &
    pids+=("$!")
    echo "==> waiting for $base/healthz (coordinator, $nbackends backends)"
    wait_healthy "$base"
else
    base="${backend_urls}"
fi

commit="$(git rev-parse --short HEAD 2>/dev/null || true)"
total=$(( clients * reqs ))
rows=()

# CAMPAIGN=1: ablation-campaign load. One 3-axis, 48-point grid runs cold
# (every point simulated), then the identical grid runs again against the
# warm result cache; the artifact records points/s for both passes and the
# re-run's cache-hit rate (1.0 when every point was served from cache).
if [[ "${CAMPAIGN:-0}" == "1" ]]; then
    spec='{"programs":["fir.mmx"],"dispatch":["block"],"axes":{"mul_latency":[1,2,3,4],"emms_latency":[0,5,10,15],"mispredict_penalty":[2,4,6]},"skip_check":true}'

    # run_campaign POSTs the spec, polls the campaign resource to
    # completion and prints "<points> <cached> <failed>".
    run_campaign() {
        local resp id compact status
        resp="$(curl -sf -X POST -d "$spec" "$base/campaign")"
        id="$(printf '%s' "$resp" | tr -d ' \n\t' | sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p')"
        if [[ -z "$id" ]]; then
            echo "loadtest.sh: POST /campaign returned no id: $resp" >&2
            return 1
        fi
        for _ in $(seq 1 600); do
            compact="$(curl -sf "$base/campaign/$id" | tr -d ' \n\t')"
            status="$(printf '%s' "$compact" | sed -n 's/.*"status":"\([a-z]*\)".*/\1/p')"
            if [[ "$status" != "running" ]]; then
                printf '%s %s %s\n' \
                    "$(printf '%s' "$compact" | sed -n 's/.*"done":\([0-9]*\).*/\1/p')" \
                    "$(printf '%s' "$compact" | sed -n 's/.*"cached":\([0-9]*\).*/\1/p')" \
                    "$(printf '%s' "$compact" | sed -n 's/.*"failed":\([0-9]*\).*/\1/p')"
                return 0
            fi
            sleep 0.1
        done
        echo "loadtest.sh: campaign $id never finished" >&2
        return 1
    }

    echo "==> /campaign: cold 48-point grid (target=$target)"
    start_ns="$(date +%s%N)"
    read -r cold_done cold_cached cold_failed <<<"$(run_campaign)"
    cold_ns=$(( $(date +%s%N) - start_ns ))

    echo "==> /campaign: identical re-run against the warm result cache"
    start_ns="$(date +%s%N)"
    read -r warm_done warm_cached warm_failed <<<"$(run_campaign)"
    warm_ns=$(( $(date +%s%N) - start_ns ))

    metrics="$(curl -sf "$base/metrics")"
    cold_s="$(printf '%d.%09d' $((cold_ns / 1000000000)) $((cold_ns % 1000000000)))"
    warm_s="$(printf '%d.%09d' $((warm_ns / 1000000000)) $((warm_ns % 1000000000)))"
    cold_pps="$(awk -v n="$cold_done" -v s="$cold_s" 'BEGIN { printf "%.2f", n / s }')"
    warm_pps="$(awk -v n="$warm_done" -v s="$warm_s" 'BEGIN { printf "%.2f", n / s }')"
    rerun_hit_rate="$(awk -v c="$warm_cached" -v n="$warm_done" 'BEGIN { if (n > 0) printf "%.3f", c / n; else print 0 }')"
    row="$(
        printf '  {\n'
        printf '    "commit": "%s",\n' "$commit"
        printf '    "mode": "campaign",\n'
        printf '    "target": "%s",\n' "$target"
        printf '    "backends": %d,\n' "$nbackends"
        printf '    "points": %d,\n' "$cold_done"
        printf '    "cold_seconds": %s,\n' "$cold_s"
        printf '    "cold_points_per_second": %s,\n' "$cold_pps"
        printf '    "cold_cached": %d,\n' "$cold_cached"
        printf '    "cold_failed": %d,\n' "$cold_failed"
        printf '    "rerun_seconds": %s,\n' "$warm_s"
        printf '    "rerun_points_per_second": %s,\n' "$warm_pps"
        printf '    "rerun_cached": %d,\n' "$warm_cached"
        printf '    "rerun_failed": %d,\n' "$warm_failed"
        printf '    "rerun_cache_hit_rate": %s,\n' "$rerun_hit_rate"
        printf '    "metrics": %s\n' "$metrics"
        printf '  }'
    )"
    rows+=("$row")
    echo "==> /campaign: cold ${cold_pps} points/s, re-run ${warm_pps} points/s (hit rate ${rerun_hit_rate})"

    {
        printf '[\n'
        printf '%s\n' "${rows[0]}"
        printf ']\n'
    } > "$out"
    echo "==> wrote 1 row to $out"
    exit 0
fi

# ASM=1: multi-tenant user-submitted-program load. A fixed source corpus
# (a terminating straight-line program for the interactive tenant, a
# budgeted infinite loop for the bulk tenant) exercises POST /asm under
# two-tenant contention; the artifact records per-tenant throughput and
# shed counts alongside the serving metrics.
if [[ "${ASM:-0}" == "1" ]]; then
    interactive_src='.proc main\n\tprofon\n\tmov eax, 0\n\tadd eax, 1\n\tadd eax, 2\n\tadd eax, 3\n\tprofoff\n\thalt\n'
    bulk_src='.proc main\n\tprofon\nspin:\n\tadd eax, 1\n\tjmp spin\n'
    interactive_body="{\"source\":\"$interactive_src\",\"name\":\"loadtest-interactive\",\"dispatch\":\"$dispatch\"}"
    bulk_body="{\"source\":\"$bulk_src\",\"name\":\"loadtest-bulk\",\"dispatch\":\"$dispatch\",\"max_instrs\":2000000}"

    # Cold-vs-warm /asm latency: the first submission assembles and runs,
    # the second rides the source-hash-keyed caches.
    cold_s="$(curl -sf -o /dev/null -w '%{time_total}' -X POST -d "$interactive_body" "$base/asm")"
    warm_s="$(curl -sf -o /dev/null -w '%{time_total}' -X POST -d "$interactive_body" "$base/asm")"
    echo "==> /asm: cold ${cold_s}s, warm ${warm_s}s ($dispatch dispatch, target=$target)"

    echo "==> /asm: $clients bulk + $clients interactive clients x $reqs requests"
    start_ns="$(date +%s%N)"
    loadpids=()
    for c in $(seq 1 "$clients"); do
        (
            for _ in $(seq 1 "$reqs"); do
                curl -s -o /dev/null -w '%{http_code}\n' \
                    -H 'X-Mmx-Tenant: bulk' -H 'X-Mmx-Priority: bulk' \
                    -X POST -d "$bulk_body" "$base/asm"
            done >"$workdir/bulk.$c"
        ) &
        loadpids+=("$!")
        (
            for _ in $(seq 1 "$reqs"); do
                curl -s -o /dev/null -w '%{http_code}\n' \
                    -H 'X-Mmx-Tenant: interactive' \
                    -X POST -d "$interactive_body" "$base/asm"
            done >"$workdir/interactive.$c"
        ) &
        loadpids+=("$!")
    done
    wait "${loadpids[@]}"
    elapsed_ns=$(( $(date +%s%N) - start_ns ))

    bulk_ok="$(cat "$workdir"/bulk.* | grep -c '^200$' || true)"
    bulk_shed="$(cat "$workdir"/bulk.* | grep -c '^429$' || true)"
    int_ok="$(cat "$workdir"/interactive.* | grep -c '^200$' || true)"
    int_shed="$(cat "$workdir"/interactive.* | grep -c '^429$' || true)"
    metrics="$(curl -sf "$base/metrics")"

    elapsed_s="$(printf '%d.%09d' $((elapsed_ns / 1000000000)) $((elapsed_ns % 1000000000)))"
    bulk_rps="$(awk -v n="$bulk_ok" -v s="$elapsed_s" 'BEGIN { printf "%.2f", n / s }')"
    int_rps="$(awk -v n="$int_ok" -v s="$elapsed_s" 'BEGIN { printf "%.2f", n / s }')"
    row="$(
        printf '  {\n'
        printf '    "commit": "%s",\n' "$commit"
        printf '    "mode": "asm",\n'
        printf '    "target": "%s",\n' "$target"
        printf '    "backends": %d,\n' "$nbackends"
        printf '    "dispatch": "%s",\n' "$dispatch"
        printf '    "clients_per_tenant": %d,\n' "$clients"
        printf '    "requests_per_tenant": %d,\n' "$total"
        printf '    "elapsed_seconds": %s,\n' "$elapsed_s"
        printf '    "cold_seconds": %s,\n' "$cold_s"
        printf '    "warm_seconds": %s,\n' "$warm_s"
        printf '    "bulk_ok": %d,\n' "$bulk_ok"
        printf '    "bulk_shed_429": %d,\n' "$bulk_shed"
        printf '    "bulk_requests_per_second": %s,\n' "$bulk_rps"
        printf '    "interactive_ok": %d,\n' "$int_ok"
        printf '    "interactive_shed_429": %d,\n' "$int_shed"
        printf '    "interactive_requests_per_second": %s,\n' "$int_rps"
        printf '    "metrics": %s\n' "$metrics"
        printf '  }'
    )"
    rows+=("$row")
    echo "==> /asm: bulk ${bulk_ok} ok / ${bulk_shed} shed (${bulk_rps} req/s), interactive ${int_ok} ok / ${int_shed} shed (${int_rps} req/s)"

    {
        printf '[\n'
        printf '%s\n' "${rows[0]}"
        printf ']\n'
    } > "$out"
    echo "==> wrote 1 row to $out"
    exit 0
fi

for program in $programs; do
    body="{\"program\":\"$program\",\"dispatch\":\"$dispatch\",\"skip_check\":true}"

    # Cold-vs-warm cache latency: the first request compiles, the second
    # hits the compiled-program cache (through the coordinator, the second
    # request rides affinity routing to the same warm backend).
    cold_s="$(curl -sf -o /dev/null -w '%{time_total}' -X POST -d "$body" "$base/run")"
    warm_s="$(curl -sf -o /dev/null -w '%{time_total}' -X POST -d "$body" "$base/run")"
    echo "==> $program: cold ${cold_s}s, warm ${warm_s}s ($dispatch dispatch, target=$target)"

    # Concurrent load: $clients curl loops of $reqs requests each.
    echo "==> $program: $clients clients x $reqs requests"
    start_ns="$(date +%s%N)"
    loadpids=()
    for _ in $(seq 1 "$clients"); do
        (
            for _ in $(seq 1 "$reqs"); do
                curl -sf -o /dev/null -X POST -d "$body" "$base/run"
            done
        ) &
        loadpids+=("$!")
    done
    wait "${loadpids[@]}"
    elapsed_ns=$(( $(date +%s%N) - start_ns ))

    metrics="$(curl -sf "$base/metrics")"

    # Result-cache effectiveness under the repeated-config load above: the
    # whole loop posts one identical body, so after the single cold miss
    # every request should be answered from the result cache (the daemon's
    # and, in coordinator mode, the coordinator's — both tiers report the
    # same JSON field name).
    hit_rate="$(printf '%s' "$metrics" | sed -n 's/.*"result_cache_hit_rate": *\([0-9.eE+-]*\).*/\1/p' | head -n 1)"
    hit_rate="${hit_rate:-0}"

    # Render the row with printf — no jq dependency.
    elapsed_s="$(printf '%d.%09d' $((elapsed_ns / 1000000000)) $((elapsed_ns % 1000000000)))"
    rps="$(awk -v n="$total" -v s="$elapsed_s" 'BEGIN { printf "%.2f", n / s }')"
    row="$(
        printf '  {\n'
        printf '    "commit": "%s",\n' "$commit"
        printf '    "target": "%s",\n' "$target"
        printf '    "backends": %d,\n' "$nbackends"
        printf '    "program": "%s",\n' "$program"
        printf '    "dispatch": "%s",\n' "$dispatch"
        printf '    "clients": %d,\n' "$clients"
        printf '    "requests": %d,\n' "$total"
        printf '    "elapsed_seconds": %s,\n' "$elapsed_s"
        printf '    "requests_per_second": %s,\n' "$rps"
        printf '    "cold_seconds": %s,\n' "$cold_s"
        printf '    "warm_seconds": %s,\n' "$warm_s"
        printf '    "result_cache_hit_rate": %s,\n' "$hit_rate"
        printf '    "metrics": %s\n' "$metrics"
        printf '  }'
    )"
    rows+=("$row")
    echo "==> $program: $total requests in ${elapsed_s}s (${rps} req/s, result-cache hit rate ${hit_rate})"
done

{
    printf '[\n'
    for i in "${!rows[@]}"; do
        printf '%s' "${rows[$i]}"
        if (( i + 1 < ${#rows[@]} )); then printf ','; fi
        printf '\n'
    done
    printf ']\n'
} > "$out"

echo "==> wrote ${#rows[@]} row(s) to $out"
