#!/usr/bin/env bash
# check.sh — the repo's `make check` equivalent: everything CI (and a
# pre-commit run) needs, in dependency order. Fast failures first.
#
#   scripts/check.sh          # full gate
#   scripts/check.sh -short   # pass flags through to `go test ./...`
#   BENCH=1 scripts/check.sh  # additionally refresh BENCH_interp.json
#                             # (throughput measurement; not part of the gate)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./... $*"
go test "$@" ./...

# The concurrent suite runner and the memoized registry are the only
# goroutine-bearing code; exercise them under the race detector.
echo "==> go test -race ./internal/core/... ./internal/suite/..."
go test -race ./internal/core/... ./internal/suite/...

# Optional: refresh the interpreter-throughput artifact. Wall-clock numbers
# are host-dependent, so this never gates the build.
if [[ "${BENCH:-0}" == "1" ]]; then
    echo "==> scripts/bench.sh"
    scripts/bench.sh
fi

echo "OK"
