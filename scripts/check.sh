#!/usr/bin/env bash
# check.sh — the repo's `make check` equivalent: everything CI (and a
# pre-commit run) needs, in dependency order. Fast failures first.
#
#   scripts/check.sh          # full gate
#   scripts/check.sh -short   # pass flags through to `go test ./...`
#   BENCH=1 scripts/check.sh  # additionally refresh BENCH_interp.json
#                             # (throughput measurement; not part of the gate)
#   BENCH_BASELINE=old.json scripts/check.sh
#                             # additionally measure throughput and fail on a
#                             # >10% geomean regression against old.json
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./... $*"
go test "$@" ./...

# The goroutine-bearing code — the concurrent suite runner, the memoized
# registry, the mmxd service (cache single-flight, admission queue,
# request cancellation), and the fleet coordinator (prober, retries,
# hedging, scatter-gather) — runs under the race detector.
echo "==> go test -race ./internal/core/... ./internal/suite/... ./internal/server/... ./internal/cluster/..."
go test -race ./internal/core/... ./internal/suite/... ./internal/server/... ./internal/cluster/...

# The service end-to-end suite: all 21 programs x 4 dispatch modes over
# HTTP byte-equivalent to direct runs, the result cache replaying the same
# sweep byte-identically, the daemon SIGTERM drain, and the spill tier
# surviving a real restart.
echo "==> go test -run 'TestServedReportsMatchDirectRuns|TestResultCacheServesIdenticalBytes|TestDaemonSIGTERMDrain|TestDaemonResultCacheSpillSurvivesRestart' ."
go test -run 'TestServedReportsMatchDirectRuns|TestResultCacheServesIdenticalBytes|TestDaemonSIGTERMDrain|TestDaemonResultCacheSpillSurvivesRestart' .

# The fleet end-to-end suite: a coordinator over real mmxd backends serves
# the whole suite byte-identical, survives a backend dying mid-suite (and
# mid-campaign), keeps repeat requests affine to one warm cache, and shards
# a 216-point ablation campaign with artifacts byte-identical to a
# single-backend reference run.
echo "==> go test -run 'TestFleet' ./internal/cluster"
go test -run 'TestFleet' ./internal/cluster

# Fuzz smoke: a few seconds per target keeps the corpora honest without
# turning the gate into a fuzzing campaign (`go test -fuzz` accepts one
# target per invocation).
echo "==> go test -run '^$' -fuzz FuzzAsmSource -fuzztime 5s ./internal/asm"
go test -run '^$' -fuzz FuzzAsmSource -fuzztime 5s ./internal/asm >/dev/null
echo "==> go test -run '^$' -fuzz FuzzParseRequest -fuzztime 5s ./internal/server"
go test -run '^$' -fuzz FuzzParseRequest -fuzztime 5s ./internal/server >/dev/null
echo "==> go test -run '^$' -fuzz FuzzAsmEndpoint -fuzztime 5s ./internal/server"
go test -run '^$' -fuzz FuzzAsmEndpoint -fuzztime 5s ./internal/server >/dev/null
echo "==> go test -run '^$' -fuzz FuzzParseSuiteRequest -fuzztime 5s ./internal/cluster"
go test -run '^$' -fuzz FuzzParseSuiteRequest -fuzztime 5s ./internal/cluster >/dev/null
echo "==> go test -run '^$' -fuzz FuzzParseCampaignRequest -fuzztime 5s ./internal/campaign"
go test -run '^$' -fuzz FuzzParseCampaignRequest -fuzztime 5s ./internal/campaign >/dev/null
echo "==> go test -run '^$' -fuzz FuzzDispatchThreeWay -fuzztime 5s ./internal/pentium"
go test -run '^$' -fuzz FuzzDispatchThreeWay -fuzztime 5s ./internal/pentium >/dev/null

# The four-way dispatch equivalence (generic / predecoded / block / trace)
# also runs under the race detector: block and trace dispatch share
# predecoded code and per-block caches with the parallel suite runner
# above, and trace dispatch additionally shares the per-CPU trace cache.
echo "==> go test -race -run 'TestDispatchModesAgree|TestDispatchThreeWay' ./internal/vm ./internal/pentium"
go test -race -run 'TestDispatchModesAgree|TestDispatchThreeWay' ./internal/vm ./internal/pentium

# Smoke-run the block- and trace-dispatch benchmarks for a single iteration
# so inner-loop regressions that only bite under benchmarking surface here.
echo "==> go test -run '^$' -bench 'BenchmarkBlockStep|BenchmarkTraceStep' -benchtime 1x ./internal/vm"
go test -run '^$' -bench 'BenchmarkBlockStep|BenchmarkTraceStep' -benchtime 1x ./internal/vm >/dev/null

# Optional: refresh the interpreter-throughput artifact. Wall-clock numbers
# are host-dependent, so this never gates the build.
if [[ "${BENCH:-0}" == "1" ]]; then
    echo "==> scripts/bench.sh"
    scripts/bench.sh
fi

# Optional: measure throughput and gate against a baseline artifact
# (wall-clock comparison — only meaningful on the machine that produced the
# baseline).
if [[ -n "${BENCH_BASELINE:-}" ]]; then
    new="$(mktemp)"
    trap 'rm -f "$new"' EXIT
    echo "==> scripts/bench.sh $new"
    scripts/bench.sh "$new"
    echo "==> scripts/bench_diff.sh $BENCH_BASELINE $new"
    scripts/bench_diff.sh "$BENCH_BASELINE" "$new"
fi

echo "OK"
