#!/usr/bin/env bash
# check.sh — the repo's `make check` equivalent: everything CI (and a
# pre-commit run) needs, in dependency order. Fast failures first.
#
#   scripts/check.sh          # full gate
#   scripts/check.sh -short   # pass flags through to `go test ./...`
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./... $*"
go test "$@" ./...

# The concurrent suite runner and the memoized registry are the only
# goroutine-bearing code; exercise them under the race detector.
echo "==> go test -race ./internal/core/... ./internal/suite/..."
go test -race ./internal/core/... ./internal/suite/...

echo "OK"
