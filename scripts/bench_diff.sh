#!/usr/bin/env bash
# bench_diff.sh — compare two BENCH_interp.json artifacts program by
# program and gate on the geomean: exits 1 if the new run's geomean host
# throughput regressed by more than 10% against the baseline.
#
#   scripts/bench_diff.sh BASELINE.json NEW.json
#
# With three or more artifacts (e.g. the per-mode files a DISPATCH=all
# bench.sh sweep writes), it instead prints a per-mode geomean table with
# each file's speedup over the first — no gate:
#
#   scripts/bench_diff.sh BENCH.generic.json BENCH.predecode.json \
#       BENCH.block.json BENCH.trace.json
#
# With -sweep, it compares two DISPATCH=all sweeps mode by mode
# (PREFIX.<mode>.json for generic/predecode/block/trace) and gates on the
# trace tier: exits 1 if the trace-mode geomean regressed by more than 10%.
# Other modes report but only warn — trace is the tier the optimization work
# targets, and the gate must not flap on the slower reference loops:
#
#   scripts/bench_diff.sh -sweep OLD_PREFIX NEW_PREFIX
#
# Wall-clock numbers are host-dependent; compare artifacts measured on the
# same machine (the git_commit/dispatch/utc_date stamps say where each came
# from).
set -euo pipefail

if [[ $# -ge 1 && "$1" == "-sweep" ]]; then
    [[ $# -eq 3 ]] || { echo "usage: $0 -sweep OLD_PREFIX NEW_PREFIX" >&2; exit 2; }
    oldp="$2" newp="$3" fail=0
    printf '%-12s %12s %12s %9s\n' mode 'old M/s' 'new M/s' delta
    for mode in generic predecode block trace; do
        of="$oldp.$mode.json" nf="$newp.$mode.json"
        if [[ ! -r "$of" || ! -r "$nf" ]]; then
            printf '%-12s %27s\n' "$mode" '(artifact missing, skipped)'
            continue
        fi
        og="$(jq -r '.geomean_instrs_per_sec' "$of")"
        ng="$(jq -r '.geomean_instrs_per_sec' "$nf")"
        printf '%-12s %12.1f %12.1f %+8.1f%%\n' "$mode" \
            "$(jq -n "$og/1e6")" "$(jq -n "$ng/1e6")" "$(jq -n "100*($ng/$og-1)")"
        if jq -en "$ng / $og < 0.9" >/dev/null; then
            if [[ "$mode" == trace ]]; then
                echo "bench_diff: FAIL — trace-mode geomean regressed more than 10%" >&2
                fail=1
            else
                echo "bench_diff: warning — $mode geomean regressed more than 10%" >&2
            fi
        fi
    done
    exit "$fail"
fi

if [[ $# -lt 2 ]]; then
    echo "usage: $0 BASELINE.json NEW.json [MORE.json ...]" >&2
    exit 2
fi

if [[ $# -gt 2 ]]; then
    for f in "$@"; do
        [[ -r "$f" ]] || { echo "bench_diff: cannot read $f" >&2; exit 2; }
    done
    ref_g="$(jq -r '.geomean_instrs_per_sec' "$1")"
    printf '%-12s %-10s %12s %10s   %s\n' dispatch commit 'geomean M/s' speedup file
    for f in "$@"; do
        mode="$(jq -r '.dispatch // "?"' "$f")"
        commit="$(jq -r '.git_commit // "?"' "$f")"
        g="$(jq -r '.geomean_instrs_per_sec' "$f")"
        printf '%-12s %-10s %12.1f %9.2fx   %s\n' \
            "$mode" "$commit" "$(jq -n "$g/1e6")" "$(jq -n "$g/$ref_g")" "$f"
    done
    exit 0
fi
base="$1" new="$2"
for f in "$base" "$new"; do
    [[ -r "$f" ]] || { echo "bench_diff: cannot read $f" >&2; exit 2; }
done

echo "baseline: $(jq -r '"\(.git_commit // "?") \(.dispatch // "?") \(.utc_date // "?")"' "$base")"
echo "new:      $(jq -r '"\(.git_commit // "?") \(.dispatch // "?") \(.utc_date // "?")"' "$new")"
echo

# Per-program deltas (programs present in both files).
jq -rn --slurpfile a "$base" --slurpfile b "$new" '
    ($a[0].programs | map({(.program): .instrs_per_sec}) | add) as $old |
    $b[0].programs[] | select($old[.program] != null) |
    [.program, $old[.program], .instrs_per_sec,
     (100 * (.instrs_per_sec / $old[.program] - 1))] | @tsv' "$base" |
while IFS=$'\t' read -r prog old new_ips delta; do
    printf '%-14s %8.1f -> %8.1f M instr/s  %+6.1f%%\n' \
        "$prog" "$(jq -n "$old/1e6")" "$(jq -n "$new_ips/1e6")" "$delta"
done

old_g="$(jq -r '.geomean_instrs_per_sec' "$base")"
new_g="$(jq -r '.geomean_instrs_per_sec' "$new")"
ratio="$(jq -n "$new_g / $old_g")"
printf '\ngeomean: %.1f -> %.1f M instr/s  (x%.3f)\n' \
    "$(jq -n "$old_g/1e6")" "$(jq -n "$new_g/1e6")" "$ratio"

if jq -en "$ratio < 0.9" >/dev/null; then
    echo "bench_diff: FAIL — geomean regressed more than 10%" >&2
    exit 1
fi
echo "bench_diff: OK"
