#!/usr/bin/env bash
# bench_diff.sh — compare two BENCH_interp.json artifacts program by
# program and gate on the geomean: exits 1 if the new run's geomean host
# throughput regressed by more than 10% against the baseline.
#
#   scripts/bench_diff.sh BASELINE.json NEW.json
#
# Wall-clock numbers are host-dependent; compare artifacts measured on the
# same machine (the git_commit/dispatch/utc_date stamps say where each came
# from).
set -euo pipefail

if [[ $# -ne 2 ]]; then
    echo "usage: $0 BASELINE.json NEW.json" >&2
    exit 2
fi
base="$1" new="$2"
for f in "$base" "$new"; do
    [[ -r "$f" ]] || { echo "bench_diff: cannot read $f" >&2; exit 2; }
done

echo "baseline: $(jq -r '"\(.git_commit // "?") \(.dispatch // "?") \(.utc_date // "?")"' "$base")"
echo "new:      $(jq -r '"\(.git_commit // "?") \(.dispatch // "?") \(.utc_date // "?")"' "$new")"
echo

# Per-program deltas (programs present in both files).
jq -rn --slurpfile a "$base" --slurpfile b "$new" '
    ($a[0].programs | map({(.program): .instrs_per_sec}) | add) as $old |
    $b[0].programs[] | select($old[.program] != null) |
    [.program, $old[.program], .instrs_per_sec,
     (100 * (.instrs_per_sec / $old[.program] - 1))] | @tsv' "$base" |
while IFS=$'\t' read -r prog old new_ips delta; do
    printf '%-14s %8.1f -> %8.1f M instr/s  %+6.1f%%\n' \
        "$prog" "$(jq -n "$old/1e6")" "$(jq -n "$new_ips/1e6")" "$delta"
done

old_g="$(jq -r '.geomean_instrs_per_sec' "$base")"
new_g="$(jq -r '.geomean_instrs_per_sec' "$new")"
ratio="$(jq -n "$new_g / $old_g")"
printf '\ngeomean: %.1f -> %.1f M instr/s  (x%.3f)\n' \
    "$(jq -n "$old_g/1e6")" "$(jq -n "$new_g/1e6")" "$ratio"

if jq -en "$ratio < 0.9" >/dev/null; then
    echo "bench_diff: FAIL — geomean regressed more than 10%" >&2
    exit 1
fi
echo "bench_diff: OK"
