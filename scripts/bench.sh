#!/usr/bin/env bash
# bench.sh — measure host-side simulator throughput over the full benchmark
# suite and write BENCH_interp.json (per-program wall seconds and simulated
# instructions per second, plus geomean and aggregate).
#
#   scripts/bench.sh                 # writes BENCH_interp.json at the repo root
#   scripts/bench.sh out.json        # writes to a custom path
#
# Output validation is skipped: the run measures interpreter speed, and the
# correctness gate is scripts/check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_interp.json}"

echo "==> go build ./cmd/mmxbench"
bin="$(mktemp -d)/mmxbench"
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/mmxbench

echo "==> mmxbench -bench-json $out"
"$bin" -skip-check -bench-json "$out" -table2 >/dev/null

echo "==> $out"
grep -E '"(geomean|aggregate)_instrs_per_sec"|"suite_wall_seconds"' "$out"
