#!/usr/bin/env bash
# bench.sh — measure host-side simulator throughput over the full benchmark
# suite and write BENCH_interp.json (per-program wall seconds and simulated
# instructions per second, plus geomean and aggregate).
#
#   scripts/bench.sh                 # writes BENCH_interp.json at the repo root
#   scripts/bench.sh out.json        # writes to a custom path
#   DISPATCH=block scripts/bench.sh  # measure a specific dispatch mode
#   DISPATCH=all scripts/bench.sh    # sweep generic/predecode/block/trace,
#                                    # writing out.<mode>.json per mode
#   JOBS=0 scripts/bench.sh          # parallel runs (default 1: serial walls
#                                    # are stable; parallel walls measure
#                                    # scheduler contention, not the loop)
#
# Output validation is skipped: the run measures interpreter speed, and the
# correctness gate is scripts/check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_interp.json}"

echo "==> go build ./cmd/mmxbench"
bin="$(mktemp -d)/mmxbench"
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/mmxbench

# Stamp the artifact with the commit it measures (empty outside a checkout)
# and the dispatch mode, so two BENCH_interp.json files are comparable by
# scripts/bench_diff.sh without guessing their provenance.
commit="$(git rev-parse --short HEAD 2>/dev/null || true)"
dispatch="${DISPATCH:-trace}"
jobs="${JOBS:-1}"

run_one() {
    local mode="$1" dest="$2"
    echo "==> mmxbench -dispatch $mode -j $jobs -bench-json $dest"
    "$bin" -skip-check -dispatch "$mode" -j "$jobs" -bench-commit "$commit" \
        -bench-json "$dest" -table2 >/dev/null
    echo "==> $dest"
    grep -E '"(geomean|aggregate)_instrs_per_sec"|"suite_wall_seconds"' "$dest"
    if [[ "$mode" == trace ]]; then
        # Trace-tier coverage per program: superblocks formed, trace-tree
        # child paths grown, governor deopts, side-exit rate.
        echo "    program        traces  tree  deopts  side-exit%"
        jq -r '.programs[] |
            [.program, .traces_formed // 0, .tree_nodes // 0,
             .trace_deopts // 0, (.side_exit_pct // 0 | . * 10 | round / 10)] |
            @tsv' "$dest" |
        while IFS=$'\t' read -r prog tf tn td se; do
            printf '    %-14s %5d %5d %6d %10s\n' "$prog" "$tf" "$tn" "$td" "$se"
        done
    fi
}

if [[ "$dispatch" == "all" ]]; then
    # Sweep every interpreter inner loop; per-mode artifacts land next to
    # the requested output path as out.<mode>.json.
    for mode in generic predecode block trace; do
        run_one "$mode" "${out%.json}.$mode.json"
    done
    echo
    echo "per-mode geomean (M instr/s):"
    for mode in generic predecode block trace; do
        g="$(jq -r '.geomean_instrs_per_sec' "${out%.json}.$mode.json")"
        printf '  %-10s %8.1f\n' "$mode" "$(jq -n "$g/1e6")"
    done
else
    run_one "$dispatch" "$out"
fi
