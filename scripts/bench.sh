#!/usr/bin/env bash
# bench.sh — measure host-side simulator throughput over the full benchmark
# suite and write BENCH_interp.json (per-program wall seconds and simulated
# instructions per second, plus geomean and aggregate).
#
#   scripts/bench.sh                 # writes BENCH_interp.json at the repo root
#   scripts/bench.sh out.json        # writes to a custom path
#
# Output validation is skipped: the run measures interpreter speed, and the
# correctness gate is scripts/check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_interp.json}"

echo "==> go build ./cmd/mmxbench"
bin="$(mktemp -d)/mmxbench"
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/mmxbench

# Stamp the artifact with the commit it measures (empty outside a checkout)
# and the dispatch mode, so two BENCH_interp.json files are comparable by
# scripts/bench_diff.sh without guessing their provenance.
commit="$(git rev-parse --short HEAD 2>/dev/null || true)"
dispatch="${DISPATCH:-auto}"

echo "==> mmxbench -dispatch $dispatch -bench-json $out"
"$bin" -skip-check -dispatch "$dispatch" -bench-commit "$commit" \
    -bench-json "$out" -table2 >/dev/null

echo "==> $out"
grep -E '"(geomean|aggregate)_instrs_per_sec"|"suite_wall_seconds"' "$out"
