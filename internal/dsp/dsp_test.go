package dsp

import (
	"math"
	"testing"
	"testing/quick"

	"mmxdsp/internal/fixed"
)

// prng is a small deterministic generator for test data.
type prng uint64

func (p *prng) next() uint64 {
	*p ^= *p << 13
	*p ^= *p >> 7
	*p ^= *p << 17
	return uint64(*p)
}

func (p *prng) float() float64 { // in [-1, 1)
	return float64(int64(p.next()>>11))/(1<<52) - 1
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	p := prng(42)
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		re := make([]float64, n)
		im := make([]float64, n)
		for i := range re {
			re[i] = p.float()
			im[i] = p.float()
		}
		wantRe, wantIm := DFTNaive(re, im)
		if err := FFT(re, im); err != nil {
			t.Fatal(err)
		}
		for i := range re {
			if math.Abs(re[i]-wantRe[i]) > 1e-9*float64(n) ||
				math.Abs(im[i]-wantIm[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: (%g,%g) want (%g,%g)",
					n, i, re[i], im[i], wantRe[i], wantIm[i])
			}
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	p := prng(7)
	n := 128
	re := make([]float64, n)
	im := make([]float64, n)
	orig := make([]float64, n)
	for i := range re {
		re[i] = p.float()
		orig[i] = re[i]
	}
	if err := FFT(re, im); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(re, im); err != nil {
		t.Fatal(err)
	}
	for i := range re {
		if math.Abs(re[i]-orig[i]) > 1e-10 || math.Abs(im[i]) > 1e-10 {
			t.Fatalf("round trip [%d]: (%g, %g) want (%g, 0)", i, re[i], im[i], orig[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	p := prng(99)
	n := 64
	re := make([]float64, n)
	im := make([]float64, n)
	var timeEnergy float64
	for i := range re {
		re[i] = p.float()
		im[i] = p.float()
		timeEnergy += re[i]*re[i] + im[i]*im[i]
	}
	if err := FFT(re, im); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for i := range re {
		freqEnergy += re[i]*re[i] + im[i]*im[i]
	}
	if math.Abs(freqEnergy/float64(n)-timeEnergy) > 1e-9 {
		t.Errorf("Parseval violated: time %g, freq/N %g", timeEnergy, freqEnergy/float64(n))
	}
}

func TestFFTRejectsBadLengths(t *testing.T) {
	if err := FFT(make([]float64, 3), make([]float64, 3)); err == nil {
		t.Error("length 3 must be rejected")
	}
	if err := FFT(make([]float64, 4), make([]float64, 2)); err == nil {
		t.Error("mismatched lengths must be rejected")
	}
	if err := FFT(nil, nil); err == nil {
		t.Error("empty input must be rejected")
	}
}

func TestFFTQ15SinglePeak(t *testing.T) {
	// A full-scale Q15 tone at bin 5 must produce the spectral peak at
	// bin 5 after the fixed-point FFT.
	n := 64
	re := make([]int16, n)
	im := make([]int16, n)
	for i := range re {
		re[i] = fixed.ToQ15(0.9 * math.Cos(2*math.Pi*5*float64(i)/float64(n)))
	}
	scale, err := FFTQ15(re, im)
	if err != nil {
		t.Fatal(err)
	}
	if scale != 6 {
		t.Errorf("scale = %d, want log2(64) = 6", scale)
	}
	best, bestMag := 0, 0.0
	for k := 1; k < n/2; k++ {
		mag := float64(re[k])*float64(re[k]) + float64(im[k])*float64(im[k])
		if mag > bestMag {
			best, bestMag = k, mag
		}
	}
	if best != 5 {
		t.Errorf("peak at bin %d, want 5", best)
	}
}

func TestFFTQ15MatchesFloatWithinTolerance(t *testing.T) {
	p := prng(1234)
	n := 256
	reF := make([]float64, n)
	imF := make([]float64, n)
	reQ := make([]int16, n)
	imQ := make([]int16, n)
	for i := range reF {
		reF[i] = 0.5 * p.float()
		imF[i] = 0.5 * p.float()
		reQ[i] = fixed.ToQ15(reF[i])
		imQ[i] = fixed.ToQ15(imF[i])
	}
	if err := FFT(reF, imF); err != nil {
		t.Fatal(err)
	}
	if _, err := FFTQ15(reQ, imQ); err != nil {
		t.Fatal(err)
	}
	// The Q15 result is X[k]/N. Paper: "little loss of precision
	// (order 10^-2) using the 16-bit data".
	var worst float64
	for k := 0; k < n; k++ {
		d1 := math.Abs(fixed.FromQ15(reQ[k]) - reF[k]/float64(n))
		d2 := math.Abs(fixed.FromQ15(imQ[k]) - imF[k]/float64(n))
		worst = math.Max(worst, math.Max(d1, d2))
	}
	if worst > 1e-2 {
		t.Errorf("worst Q15 FFT error %g, want <= 1e-2", worst)
	}
}

func TestFIRImpulseResponseIsCoefficients(t *testing.T) {
	coef := []float64{0.5, -0.25, 0.125, 1.0}
	f := NewFIR(coef)
	for i := 0; i < len(coef); i++ {
		var x float64
		if i == 0 {
			x = 1
		}
		if got := f.Process(x); math.Abs(got-coef[i]) > 1e-15 {
			t.Errorf("impulse response [%d] = %g, want %g", i, got, coef[i])
		}
	}
	if got := f.Process(0); got != 0 {
		t.Errorf("tail = %g, want 0", got)
	}
}

func TestFIRLinearity(t *testing.T) {
	coef := LowpassFIR(35, 0.2)
	f := func(aRaw, bRaw int8) bool {
		a, b := float64(aRaw)/128, float64(bRaw)/128
		p := prng(5)
		x1 := make([]float64, 50)
		x2 := make([]float64, 50)
		mix := make([]float64, 50)
		for i := range x1 {
			x1[i] = p.float()
			x2[i] = p.float()
			mix[i] = a*x1[i] + b*x2[i]
		}
		f1 := NewFIR(coef)
		f2 := NewFIR(coef)
		fm := NewFIR(coef)
		y1 := f1.ProcessBlock(x1)
		y2 := f2.ProcessBlock(x2)
		ym := fm.ProcessBlock(mix)
		for i := range ym {
			if math.Abs(ym[i]-(a*y1[i]+b*y2[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLowpassFIRFrequencyResponse(t *testing.T) {
	coef := LowpassFIR(35, 0.125)
	gain := func(freq float64) float64 {
		f := NewFIR(coef)
		n := 512
		var maxOut float64
		for i := 0; i < n; i++ {
			y := f.Process(math.Sin(2 * math.Pi * freq * float64(i)))
			if i > 100 && math.Abs(y) > maxOut { // skip transient
				maxOut = math.Abs(y)
			}
		}
		return maxOut
	}
	if g := gain(0.02); g < 0.9 {
		t.Errorf("passband gain %g, want > 0.9", g)
	}
	if g := gain(0.45); g > 0.05 {
		t.Errorf("stopband gain %g, want < 0.05", g)
	}
}

func TestFIRQ15TracksFloat(t *testing.T) {
	coefF := LowpassFIR(35, 0.125)
	coefQ := QuantizeQ15(coefF)
	ff := NewFIR(coefF)
	fq := NewFIRQ15(coefQ)
	p := prng(77)
	var worst float64
	for i := 0; i < 500; i++ {
		x := 0.5 * p.float()
		yf := ff.Process(x)
		yq := fq.Process(fixed.ToQ15(x))
		d := math.Abs(fixed.FromQ15(yq) - yf)
		worst = math.Max(worst, d)
	}
	// Paper: "the FIR filter suffers little loss of precision ... (order
	// 10^-4) because the error loss is not cumulative".
	if worst > 1e-3 {
		t.Errorf("worst FIR Q15 error %g, want < 1e-3", worst)
	}
}

func TestFIRReset(t *testing.T) {
	f := NewFIRQ15([]int16{16384, 8192})
	f.Process(1000)
	f.Reset()
	if got := f.Process(0); got != 0 {
		t.Errorf("after reset, zero input gives %d", got)
	}
}

func TestButterworthBandpassShape(t *testing.T) {
	b, a := ButterworthBandpass(4, 0.1, 0.2)
	if len(b) != 9 || len(a) != 9 {
		t.Fatalf("coefficient counts = %d, %d; want 9, 9 (17 total incl. a0)", len(b), len(a))
	}
	if math.Abs(a[0]-1) > 1e-12 {
		t.Fatalf("a[0] = %g, want 1", a[0])
	}
	gainAt := func(freq float64) float64 {
		h := polyEval(b, 2*math.Pi*freq) / polyEval(a, 2*math.Pi*freq)
		return cAbs(h)
	}
	if g := gainAt(0.141); g < 0.9 || g > 1.1 { // geometric center ~sqrt(.1*.2)
		t.Errorf("center gain = %g, want ~1", g)
	}
	if g := gainAt(0.02); g > 0.05 {
		t.Errorf("low stopband gain = %g, want < 0.05", g)
	}
	if g := gainAt(0.4); g > 0.05 {
		t.Errorf("high stopband gain = %g, want < 0.05", g)
	}
}

func TestButterworthStability(t *testing.T) {
	b, a := ButterworthBandpass(4, 0.1, 0.2)
	f := NewIIR(b, a)
	// Impulse response must decay.
	y := f.Process(1)
	var early, late float64
	for i := 0; i < 2000; i++ {
		y = f.Process(0)
		if i < 100 {
			early += y * y
		}
		if i >= 1900 {
			late += y * y
		}
	}
	if late > 1e-12 || early == 0 {
		t.Errorf("impulse response not decaying: early %g, late %g", early, late)
	}
}

func TestIIRBlockMatchesPerSample(t *testing.T) {
	b, a := ButterworthBandpass(4, 0.1, 0.2)
	f1 := NewIIR(b, a)
	f2 := NewIIR(b, a)
	p := prng(3)
	x := make([]float64, 64)
	for i := range x {
		x[i] = p.float()
	}
	blk := f1.ProcessBlock(x)
	for i, v := range x {
		if got := f2.Process(v); math.Abs(got-blk[i]) > 1e-12 {
			t.Fatalf("block vs sample mismatch at %d", i)
		}
	}
}

func TestIIRQ15TracksFloatOverShortBlocks(t *testing.T) {
	b, a := ButterworthBandpass(4, 0.1, 0.2)
	ff := NewIIR(b, a)
	fq := NewIIRQ15(b, a)
	var worst float64
	for i := 0; i < 64; i++ {
		x := 0.25 * math.Sin(2*math.Pi*0.14*float64(i))
		yf := ff.Process(x)
		yq := fq.Process(fixed.ToQ15(x))
		worst = math.Max(worst, math.Abs(fixed.FromQ15(yq)-yf))
	}
	// The paper notes the 16-bit IIR eventually goes unstable; over short
	// horizons it must still track.
	if worst > 0.05 {
		t.Errorf("worst IIR Q15 error %g over 64 samples, want < 0.05", worst)
	}
}

func TestDotAndMatVec(t *testing.T) {
	x := []int16{1, 2, 3, 4}
	y := []int16{5, 6, 7, 8}
	if got := DotQ15(x, y); got != 70 {
		t.Errorf("dot = %d, want 70", got)
	}
	m := []int16{
		1, 0, 0, 0,
		0, 2, 0, 0,
		1, 1, 1, 1,
	}
	out := MatVecQ15(m, 3, 4, x, 0)
	if out[0] != 1 || out[1] != 4 || out[2] != 10 {
		t.Errorf("matvec = %v, want [1 4 10]", out)
	}
}

func TestMatVecShiftAndSaturate(t *testing.T) {
	m := []int16{32767, 32767}
	v := []int16{32767, 32767}
	out := MatVecQ15(m, 1, 2, v, 15)
	want := int32((int64(32767) * 32767 * 2) >> 15)
	if out[0] != want {
		t.Errorf("shifted matvec = %d, want %d", out[0], want)
	}
}

func TestVecOpsMatchScalarSemantics(t *testing.T) {
	f := func(xs, ys [6]int16) bool {
		x, y := xs[:], ys[:]
		add := make([]int16, 6)
		sub := make([]int16, 6)
		mul := make([]int16, 6)
		VecAddSatQ15(add, x, y)
		VecSubSatQ15(sub, x, y)
		VecMulQ15(mul, x, y)
		for i := range x {
			if add[i] != fixed.SatW(int32(x[i])+int32(y[i])) {
				return false
			}
			if sub[i] != fixed.SatW(int32(x[i])-int32(y[i])) {
				return false
			}
			if mul[i] != fixed.MulQ15(x[i], y[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByteOps(t *testing.T) {
	in := []uint8{0, 100, 200, 255}
	out := make([]uint8, 4)
	ScaleBytes(out, in, 3, 4)
	if out[0] != 0 || out[1] != 75 || out[2] != 150 || out[3] != 191 {
		t.Errorf("ScaleBytes = %v", out)
	}
	AddBytesSat(out, in, 100)
	if out[0] != 100 || out[2] != 255 || out[3] != 255 {
		t.Errorf("AddBytesSat = %v", out)
	}
	AddBytesSat(out, in, -150)
	if out[0] != 0 || out[2] != 50 {
		t.Errorf("AddBytesSat neg = %v", out)
	}
}

func TestDCTRoundTrip(t *testing.T) {
	p := prng(11)
	in := make([]float64, 64)
	for i := range in {
		in[i] = 255 * p.float()
	}
	freq := make([]float64, 64)
	back := make([]float64, 64)
	DCT2D8(freq, in)
	IDCT2D8(back, freq)
	for i := range in {
		if math.Abs(back[i]-in[i]) > 1e-9 {
			t.Fatalf("2-D DCT round trip [%d]: %g want %g", i, back[i], in[i])
		}
	}
}

func TestDCTConstantBlockIsDCOnly(t *testing.T) {
	in := make([]float64, 64)
	for i := range in {
		in[i] = 100
	}
	out := make([]float64, 64)
	DCT2D8(out, in)
	if math.Abs(out[0]-800) > 1e-9 { // 100 * 8 (orthonormal 2-D scale)
		t.Errorf("DC = %g, want 800", out[0])
	}
	for i := 1; i < 64; i++ {
		if math.Abs(out[i]) > 1e-9 {
			t.Errorf("AC[%d] = %g, want 0", i, out[i])
		}
	}
}

func TestDCTEnergyPreservation(t *testing.T) {
	p := prng(21)
	in := make([]float64, 64)
	var e1 float64
	for i := range in {
		in[i] = p.float() * 100
		e1 += in[i] * in[i]
	}
	out := make([]float64, 64)
	DCT2D8(out, in)
	var e2 float64
	for _, v := range out {
		e2 += v * v
	}
	if math.Abs(e1-e2) > 1e-6*e1 {
		t.Errorf("energy: time %g freq %g", e1, e2)
	}
}

func TestDCT1DQ15TracksFloat(t *testing.T) {
	p := prng(31)
	for trial := 0; trial < 50; trial++ {
		inF := make([]float64, 8)
		inQ := make([]int16, 8)
		for i := range inF {
			v := math.Round(255*p.float()) - 0 // centered pixel-like data
			inF[i] = v
			inQ[i] = int16(v)
		}
		outF := make([]float64, 8)
		outQ := make([]int16, 8)
		DCT1D8(outF, inF)
		DCT1D8Q15(outQ, inQ)
		for k := range outF {
			if d := math.Abs(float64(outQ[k]) - outF[k]); d > 1.0 {
				t.Fatalf("trial %d bin %d: fixed %d float %g (|d|=%g)",
					trial, k, outQ[k], outF[k], d)
			}
		}
	}
}

func TestPeakIndexAndPowerSpectrum(t *testing.T) {
	re := []float64{0, 3, 0, -4}
	im := []float64{1, 0, 0, 0}
	ps := PowerSpectrum(re, im)
	want := []float64{1, 9, 0, 16}
	for i := range want {
		if ps[i] != want[i] {
			t.Errorf("ps[%d] = %g, want %g", i, ps[i], want[i])
		}
	}
	if PeakIndex(ps) != 3 {
		t.Errorf("peak = %d, want 3", PeakIndex(ps))
	}
}
