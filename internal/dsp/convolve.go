package dsp

import "math"

// Convolve returns the full linear convolution of x and h
// (length len(x)+len(h)-1).
func Convolve(x, h []float64) []float64 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	out := make([]float64, len(x)+len(h)-1)
	for i, xv := range x {
		for j, hv := range h {
			out[i+j] += xv * hv
		}
	}
	return out
}

// ConvolveFFT computes the same linear convolution via zero-padded FFTs —
// the O(N log N) route; it matches Convolve within floating-point error.
func ConvolveFFT(x, h []float64) []float64 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	outLen := len(x) + len(h) - 1
	n := 1
	for n < outLen {
		n <<= 1
	}
	xr := make([]float64, n)
	xi := make([]float64, n)
	hr := make([]float64, n)
	hi := make([]float64, n)
	copy(xr, x)
	copy(hr, h)
	if err := FFT(xr, xi); err != nil {
		return nil
	}
	if err := FFT(hr, hi); err != nil {
		return nil
	}
	for k := 0; k < n; k++ {
		re := xr[k]*hr[k] - xi[k]*hi[k]
		im := xr[k]*hi[k] + xi[k]*hr[k]
		xr[k], xi[k] = re, im
	}
	if err := IFFT(xr, xi); err != nil {
		return nil
	}
	return xr[:outLen]
}

// CrossCorrelate returns r[lag] = sum_n x[n] * y[n+lag] for
// lag in [0, maxLag].
func CrossCorrelate(x, y []float64, maxLag int) []float64 {
	out := make([]float64, maxLag+1)
	for lag := 0; lag <= maxLag; lag++ {
		var acc float64
		for n := 0; n+lag < len(y) && n < len(x); n++ {
			acc += x[n] * y[n+lag]
		}
		out[lag] = acc
	}
	return out
}

// AutoCorrelate returns the autocorrelation of x for lags [0, maxLag].
func AutoCorrelate(x []float64, maxLag int) []float64 {
	return CrossCorrelate(x, x, maxLag)
}

// Goertzel computes the squared magnitude of one DFT bin of x — the
// classic cheap tone detector (the per-bin analog of the radar pipeline's
// peak search). k is the bin index for an implicit DFT of length len(x).
func Goertzel(x []float64, k int) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	w := 2 * math.Pi * float64(k) / float64(n)
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	// |X[k]|^2 = s1^2 + s2^2 - coeff*s1*s2
	return s1*s1 + s2*s2 - coeff*s1*s2
}
