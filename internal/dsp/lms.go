package dsp

import "mmxdsp/internal/fixed"

// LMS is a normalized-step least-mean-squares adaptive FIR filter:
//
//	y[n]   = w · x[n..n-M+1]
//	e[n]   = d[n] - y[n]
//	w[k]  += mu * e[n] * x[n-k]
//
// The paper singles LMS out as a common DSP kernel the Intel MMX library
// did not provide ("Not all DSP algorithms have corresponding MMX
// functions (e.g. the LMS algorithm)"); this package provides both the
// float reference and the 16-bit fixed-point form an MMX port would use.
type LMS struct {
	w    []float64
	hist []float64
	mu   float64
}

// NewLMS builds an adaptive filter with the given tap count and step size.
func NewLMS(taps int, mu float64) *LMS {
	return &LMS{w: make([]float64, taps), hist: make([]float64, taps), mu: mu}
}

// Weights returns the current coefficient vector (live view).
func (f *LMS) Weights() []float64 { return f.w }

// Step consumes one input sample and its desired response; it returns the
// filter output and the error.
func (f *LMS) Step(x, desired float64) (y, e float64) {
	copy(f.hist[1:], f.hist)
	f.hist[0] = x
	for k, w := range f.w {
		y += w * f.hist[k]
	}
	e = desired - y
	for k := range f.w {
		f.w[k] += f.mu * e * f.hist[k]
	}
	return y, e
}

// LMSQ15 is the Q15 fixed-point LMS: weights and data are Q15, the update
// uses a Q15 step size with double-rounded products (the precision the
// paper's 16-bit pipelines live with).
type LMSQ15 struct {
	w    []int16
	hist []int16
	mu   int16 // Q15
}

// NewLMSQ15 builds the fixed-point adaptive filter.
func NewLMSQ15(taps int, mu int16) *LMSQ15 {
	return &LMSQ15{w: make([]int16, taps), hist: make([]int16, taps), mu: mu}
}

// Weights returns the current Q15 coefficient vector (live view).
func (f *LMSQ15) Weights() []int16 { return f.w }

// Step consumes one Q15 sample and desired response, returning the Q15
// output and error. The convolution accumulates exactly and narrows once;
// the weight update rounds per product, matching what an MMX
// implementation (pmaddwd MAC + pmulhw update) would do.
func (f *LMSQ15) Step(x, desired int16) (y, e int16) {
	copy(f.hist[1:], f.hist)
	f.hist[0] = x
	var acc int64
	for k, w := range f.w {
		acc = fixed.MacQ15(acc, w, f.hist[k])
	}
	y = fixed.NarrowQ30(acc)
	e = fixed.SatW(int32(desired) - int32(y))
	step := fixed.MulQ15(f.mu, e)
	for k := range f.w {
		f.w[k] = fixed.SatW(int32(f.w[k]) + int32(fixed.MulQ15(step, f.hist[k])))
	}
	return y, e
}

// Identify runs system identification: it adapts against the output of the
// unknown FIR filter `plant` driven by `input` and returns the final
// weights and the error power over the last quarter of the run.
func Identify(plant []float64, input []float64, mu float64) (w []float64, tailErr float64) {
	ref := NewFIR(plant)
	f := NewLMS(len(plant), mu)
	n := len(input)
	for i, x := range input {
		d := ref.Process(x)
		_, e := f.Step(x, d)
		if i >= 3*n/4 {
			tailErr += e * e
		}
	}
	return f.Weights(), tailErr / float64(n/4)
}
