package dsp

import "math"

// DCT1D8 computes the 8-point type-II DCT with orthonormal scaling:
//
//	X[k] = c(k) * sum_n x[n] cos((2n+1)kπ/16),  c(0)=sqrt(1/8), c(k)=sqrt(2/8)
//
// applied row- and column-wise it forms the JPEG 2-D transform.
func DCT1D8(out, in []float64) {
	for k := 0; k < 8; k++ {
		var acc float64
		for n := 0; n < 8; n++ {
			acc += in[n] * dctCos[n][k]
		}
		out[k] = acc * dctScale[k]
	}
}

// IDCT1D8 computes the inverse 8-point DCT (type III with matching scale).
func IDCT1D8(out, in []float64) {
	for n := 0; n < 8; n++ {
		var acc float64
		for k := 0; k < 8; k++ {
			acc += dctScale[k] * in[k] * dctCos[n][k]
		}
		out[n] = acc
	}
}

// Package-level tables are built by initializer functions (not func init)
// so that Go's declaration-dependency ordering guarantees dctBasisQ13 sees
// fully built tables.
var (
	dctCos   = makeDCTCos()
	dctScale = makeDCTScale()
)

func makeDCTCos() (t [8][8]float64) {
	for n := 0; n < 8; n++ {
		for k := 0; k < 8; k++ {
			t[n][k] = math.Cos(float64(2*n+1) * float64(k) * math.Pi / 16)
		}
	}
	return t
}

func makeDCTScale() (s [8]float64) {
	s[0] = math.Sqrt(1.0 / 8)
	for k := 1; k < 8; k++ {
		s[k] = math.Sqrt(2.0 / 8)
	}
	return s
}

// DCT2D8 computes the 8×8 2-D DCT of a row-major block: 8 row transforms
// followed by 8 column transforms (the separable form the paper's jpeg.mmx
// has to emulate with 16 one-dimensional library calls).
func DCT2D8(out, in []float64) {
	var tmp [64]float64
	var row, res [8]float64
	for r := 0; r < 8; r++ {
		copy(row[:], in[r*8:r*8+8])
		DCT1D8(res[:], row[:])
		copy(tmp[r*8:r*8+8], res[:])
	}
	var col [8]float64
	for c := 0; c < 8; c++ {
		for r := 0; r < 8; r++ {
			col[r] = tmp[r*8+c]
		}
		DCT1D8(res[:], col[:])
		for r := 0; r < 8; r++ {
			out[r*8+c] = res[r]
		}
	}
}

// IDCT2D8 inverts DCT2D8.
func IDCT2D8(out, in []float64) {
	var tmp [64]float64
	var col, res [8]float64
	for c := 0; c < 8; c++ {
		for r := 0; r < 8; r++ {
			col[r] = in[r*8+c]
		}
		IDCT1D8(res[:], col[:])
		for r := 0; r < 8; r++ {
			tmp[r*8+c] = res[r]
		}
	}
	var row [8]float64
	for r := 0; r < 8; r++ {
		copy(row[:], tmp[r*8:r*8+8])
		IDCT1D8(res[:], row[:])
		copy(out[r*8:r*8+8], res[:])
	}
}

// DCTCosQ13 returns the 8×8 cosine basis in Q13 (so products of 9-bit
// centered pixel data and Q13 cosines fit 16-bit pmaddwd inputs without
// overflow), row-major [n][k] like dctCos. Used by the MMX DCT library
// routine and its tests.
func DCTCosQ13() [64]int16 {
	var t [64]int16
	for n := 0; n < 8; n++ {
		for k := 0; k < 8; k++ {
			v := math.Round(dctCos[n][k] * dctScale[k] * 8192)
			if v > 32767 {
				v = 32767
			}
			t[n*8+k] = int16(v)
		}
	}
	return t
}

// DCT1D8Q15 computes the 8-point scaled DCT in fixed point: inputs are
// 16-bit (typically 9-bit centered pixels), the basis is Q13, and each
// output is the Q13 accumulator narrowed by 13 bits with rounding and
// saturation. Matches the MMX library routine bit for bit.
func DCT1D8Q15(out, in []int16) {
	basis := dctBasisQ13
	for k := 0; k < 8; k++ {
		var acc int64
		for n := 0; n < 8; n++ {
			acc += int64(in[n]) * int64(basis[n*8+k])
		}
		acc += 1 << 12
		acc >>= 13
		out[k] = satI64ToI16(acc)
	}
}

var dctBasisQ13 = DCTCosQ13()
