package dsp

import "math"

// Window functions, periodic in the analysis sense (denominator N-1,
// symmetric), returned as float64 slices suitable for multiplying against
// frames before an FFT.

// Hamming returns the N-point Hamming window.
func Hamming(n int) []float64 {
	return cosineWindow(n, 0.54, 0.46, 0)
}

// Hann returns the N-point Hann window.
func Hann(n int) []float64 {
	return cosineWindow(n, 0.5, 0.5, 0)
}

// Blackman returns the N-point Blackman window.
func Blackman(n int) []float64 {
	return cosineWindow(n, 0.42, 0.5, 0.08)
}

// Rectangular returns the N-point all-ones window.
func Rectangular(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func cosineWindow(n int, a0, a1, a2 float64) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	m := float64(n - 1)
	for i := range w {
		x := 2 * math.Pi * float64(i) / m
		w[i] = a0 - a1*math.Cos(x) + a2*math.Cos(2*x)
	}
	return w
}

// ApplyWindow multiplies a frame by a window in place. The slices must be
// the same length.
func ApplyWindow(frame, window []float64) {
	for i := range frame {
		frame[i] *= window[i]
	}
}

// WindowQ15 quantizes a window to Q15 for fixed-point pipelines.
func WindowQ15(w []float64) []int16 { return QuantizeQ15(w) }
