package dsp

import (
	"fmt"
	"math"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of the complex sequence (re, im). Lengths must be equal powers
// of two. The forward transform uses e^{-j2πkn/N}.
func FFT(re, im []float64) error {
	n := len(re)
	if len(im) != n {
		return fmt.Errorf("dsp: FFT length mismatch (%d vs %d)", n, len(im))
	}
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	bitReverse(re, im)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				ang := -2 * math.Pi * float64(k*step) / float64(n)
				wr, wi := math.Cos(ang), math.Sin(ang)
				i, j := start+k, start+k+half
				tr := wr*re[j] - wi*im[j]
				ti := wr*im[j] + wi*re[j]
				re[j] = re[i] - tr
				im[j] = im[i] - ti
				re[i] += tr
				im[i] += ti
			}
		}
	}
	return nil
}

// IFFT computes the inverse transform (including the 1/N scaling).
func IFFT(re, im []float64) error {
	for i := range im {
		im[i] = -im[i]
	}
	if err := FFT(re, im); err != nil {
		return err
	}
	n := float64(len(re))
	for i := range re {
		re[i] /= n
		im[i] = -im[i] / n
	}
	return nil
}

func bitReverse(re, im []float64) {
	n := len(re)
	j := 0
	for i := 1; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
}

// PowerSpectrum returns |X[k]|^2 for a complex spectrum.
func PowerSpectrum(re, im []float64) []float64 {
	out := make([]float64, len(re))
	for i := range re {
		out[i] = re[i]*re[i] + im[i]*im[i]
	}
	return out
}

// PeakIndex returns the index of the largest value.
func PeakIndex(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// FFTQ15 computes an in-place block-scaled radix-2 DIT FFT on Q15 data.
// Each butterfly stage divides by two (arithmetic shift), so the output is
// X[k]/N in Q15 and never overflows. The returned scale is always log2(N),
// reported for callers that need absolute magnitudes. This is the 16-bit
// strategy the early Intel MMX library used before reverting to a hybrid
// float implementation, per the paper's §4.1 discussion.
func FFTQ15(re, im []int16) (scale int, err error) {
	n := len(re)
	if len(im) != n {
		return 0, fmt.Errorf("dsp: FFTQ15 length mismatch")
	}
	if n == 0 || n&(n-1) != 0 {
		return 0, fmt.Errorf("dsp: FFTQ15 length %d is not a power of two", n)
	}
	bitReverseQ15(re, im)
	tw := TwiddlesQ15(n)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				wr := int32(tw.Cos[k*step])
				wi := int32(tw.Sin[k*step])
				i, j := start+k, start+k+half
				// Twiddle multiply in Q15 with rounding.
				tr := (wr*int32(re[j]) - wi*int32(im[j]) + (1 << 14)) >> 15
				ti := (wr*int32(im[j]) + wi*int32(re[j]) + (1 << 14)) >> 15
				// Scale both butterfly results by 1/2 to prevent growth;
				// saturate on the (rare) residual overflow, matching the
				// packssdw store of the MMX implementation.
				re[j] = satW((int32(re[i]) - tr) >> 1)
				im[j] = satW((int32(im[i]) - ti) >> 1)
				re[i] = satW((int32(re[i]) + tr) >> 1)
				im[i] = satW((int32(im[i]) + ti) >> 1)
			}
		}
		scale++
	}
	return scale, nil
}

func satW(v int32) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

func bitReverseQ15(re, im []int16) {
	n := len(re)
	j := 0
	for i := 1; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
}

// Twiddles holds a Q15 twiddle-factor table: Cos[k] = cos(2πk/N),
// Sin[k] = -sin(2πk/N) for k in [0, N/2).
type Twiddles struct {
	Cos, Sin []int16
}

// TwiddlesQ15 builds the Q15 twiddle table for an N-point forward FFT.
func TwiddlesQ15(n int) Twiddles {
	half := n / 2
	t := Twiddles{Cos: make([]int16, half), Sin: make([]int16, half)}
	for k := 0; k < half; k++ {
		ang := 2 * math.Pi * float64(k) / float64(n)
		t.Cos[k] = q15FromUnit(math.Cos(ang))
		t.Sin[k] = q15FromUnit(-math.Sin(ang))
	}
	return t
}

// q15FromUnit quantizes a twiddle component to Q15, clamping symmetrically
// to ±32767 so that every table entry can be negated without overflow (the
// MMX FFT packs (wr, -wi, wi, wr) quads for pmaddwd).
func q15FromUnit(v float64) int16 {
	s := math.Round(v * 32768)
	if s > 32767 {
		s = 32767
	}
	if s < -32767 {
		s = -32767
	}
	return int16(s)
}

// DFTNaive computes the O(N^2) discrete Fourier transform, used as the
// correctness oracle in tests.
func DFTNaive(re, im []float64) (outRe, outIm []float64) {
	n := len(re)
	outRe = make([]float64, n)
	outIm = make([]float64, n)
	for k := 0; k < n; k++ {
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k*t) / float64(n)
			c, s := math.Cos(ang), math.Sin(ang)
			outRe[k] += re[t]*c - im[t]*s
			outIm[k] += re[t]*s + im[t]*c
		}
	}
	return outRe, outIm
}
