package dsp

import "mmxdsp/internal/fixed"

// DotQ15 computes the 16-bit dot product with a 64-bit accumulator,
// returning the raw Q30 sum (no narrowing) — the form the matvec benchmark
// stores as 32-bit results.
func DotQ15(x, y []int16) int64 {
	var acc int64
	for i := range x {
		acc += int64(x[i]) * int64(y[i])
	}
	return acc
}

// MatVecQ15 multiplies an r×c matrix (row-major) by a length-c vector,
// producing r 32-bit results with each row's Q30 accumulator narrowed by
// the given right shift and saturated to 32 bits (shift 0 keeps raw sums;
// the 512-element rows of the paper's workload cannot overflow 63 bits).
func MatVecQ15(m []int16, rows, cols int, v []int16, shift uint) []int32 {
	out := make([]int32, rows)
	for r := 0; r < rows; r++ {
		acc := DotQ15(m[r*cols:(r+1)*cols], v) >> shift
		if acc > 2147483647 {
			acc = 2147483647
		}
		if acc < -2147483648 {
			acc = -2147483648
		}
		out[r] = int32(acc)
	}
	return out
}

// VecAddSatQ15 adds two Q15 vectors with saturation into out.
func VecAddSatQ15(out, x, y []int16) {
	for i := range out {
		out[i] = fixed.SatW(int32(x[i]) + int32(y[i]))
	}
}

// VecSubSatQ15 subtracts y from x with saturation into out.
func VecSubSatQ15(out, x, y []int16) {
	for i := range out {
		out[i] = fixed.SatW(int32(x[i]) - int32(y[i]))
	}
}

// VecMulQ15 multiplies two Q15 vectors element-wise (fractional multiply,
// single rounding) into out.
func VecMulQ15(out, x, y []int16) {
	for i := range out {
		out[i] = fixed.MulQ15(x[i], y[i])
	}
}

// VecScaleQ15 multiplies a Q15 vector by a Q15 scalar into out.
func VecScaleQ15(out, x []int16, s int16) {
	for i := range out {
		out[i] = fixed.MulQ15(x[i], s)
	}
}

// DotFloat computes the float64 dot product.
func DotFloat(x, y []float64) float64 {
	var acc float64
	for i := range x {
		acc += x[i] * y[i]
	}
	return acc
}

// MatVecFloat multiplies an r×c row-major matrix by a vector.
func MatVecFloat(m []float64, rows, cols int, v []float64) []float64 {
	out := make([]float64, rows)
	for r := 0; r < rows; r++ {
		out[r] = DotFloat(m[r*cols:(r+1)*cols], v)
	}
	return out
}

// ScaleBytes scales unsigned 8-bit pixels by num/den with unsigned
// saturation — the reference for the image benchmark's dimming pass
// (den is a power of two in the MMX implementation).
func ScaleBytes(out, in []uint8, num, den int) {
	for i := range out {
		v := int(in[i]) * num / den
		if v > 255 {
			v = 255
		}
		out[i] = uint8(v)
	}
}

// AddBytesSat adds a constant to unsigned 8-bit pixels with saturation —
// the reference for the image benchmark's color-switch pass.
func AddBytesSat(out, in []uint8, add int) {
	for i := range out {
		v := int(in[i]) + add
		if v > 255 {
			v = 255
		}
		if v < 0 {
			v = 0
		}
		out[i] = uint8(v)
	}
}
