// Package dsp is the pure-Go reference signal-processing library: FIR and
// IIR filters, FFTs, matrix-vector arithmetic and DCTs in both
// floating-point and Q15 fixed-point forms. The VM benchmark programs are
// validated against these implementations, and the package doubles as the
// library a downstream user would adopt directly.
package dsp

import (
	"math"

	"mmxdsp/internal/fixed"
)

// FIR is a finite-impulse-response filter with float64 state.
// On each Process call it consumes one input sample and produces one output
// sample, exactly like the paper's per-sample fir kernel.
type FIR struct {
	coef []float64
	hist []float64
	pos  int
}

// NewFIR builds a filter from the given coefficients
// (y[n] = sum c[k] * x[n-k]).
func NewFIR(coef []float64) *FIR {
	c := make([]float64, len(coef))
	copy(c, coef)
	return &FIR{coef: c, hist: make([]float64, len(coef))}
}

// Len returns the number of taps.
func (f *FIR) Len() int { return len(f.coef) }

// Reset clears the filter history.
func (f *FIR) Reset() {
	for i := range f.hist {
		f.hist[i] = 0
	}
	f.pos = 0
}

// Process consumes one sample and returns the filter output.
func (f *FIR) Process(x float64) float64 {
	// Circular history: pos points at the slot for the newest sample.
	f.hist[f.pos] = x
	acc := 0.0
	idx := f.pos
	for _, c := range f.coef {
		acc += c * f.hist[idx]
		idx--
		if idx < 0 {
			idx = len(f.hist) - 1
		}
	}
	f.pos++
	if f.pos == len(f.hist) {
		f.pos = 0
	}
	return acc
}

// ProcessBlock filters a whole slice, returning the outputs.
func (f *FIR) ProcessBlock(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = f.Process(v)
	}
	return out
}

// FIRQ15 is the 16-bit fixed-point FIR used by the MMX benchmark versions:
// Q15 coefficients and history, a 32-bit accumulator, single rounding at
// the output.
type FIRQ15 struct {
	coef []int16
	hist []int16
	pos  int
}

// NewFIRQ15 builds a fixed-point filter from Q15 coefficients.
func NewFIRQ15(coef []int16) *FIRQ15 {
	c := make([]int16, len(coef))
	copy(c, coef)
	return &FIRQ15{coef: c, hist: make([]int16, len(coef))}
}

// Len returns the number of taps.
func (f *FIRQ15) Len() int { return len(f.coef) }

// Reset clears the filter history.
func (f *FIRQ15) Reset() {
	for i := range f.hist {
		f.hist[i] = 0
	}
	f.pos = 0
}

// Process consumes one Q15 sample and returns the Q15 output with
// saturation. The accumulation is exact in 64 bits and narrowed once,
// matching the pmaddwd-based library implementation.
func (f *FIRQ15) Process(x int16) int16 {
	f.hist[f.pos] = x
	var acc int64
	idx := f.pos
	for _, c := range f.coef {
		acc = fixed.MacQ15(acc, c, f.hist[idx])
		idx--
		if idx < 0 {
			idx = len(f.hist) - 1
		}
	}
	f.pos++
	if f.pos == len(f.hist) {
		f.pos = 0
	}
	return fixed.NarrowQ30(acc)
}

// ProcessBlock filters a whole slice.
func (f *FIRQ15) ProcessBlock(x []int16) []int16 {
	out := make([]int16, len(x))
	for i, v := range x {
		out[i] = f.Process(v)
	}
	return out
}

// LowpassFIR designs an N-tap windowed-sinc low-pass filter with the given
// normalized cutoff (0 < cutoff < 0.5, as a fraction of the sample rate),
// using a Hamming window. This reproduces the paper's "low-pass filter of
// length 35".
func LowpassFIR(taps int, cutoff float64) []float64 {
	c := make([]float64, taps)
	m := float64(taps - 1)
	for i := range c {
		n := float64(i) - m/2
		c[i] = 2 * cutoff * sinc(2*cutoff*n) * hamming(float64(i), m)
	}
	// Normalize to unity DC gain.
	var sum float64
	for _, v := range c {
		sum += v
	}
	for i := range c {
		c[i] /= sum
	}
	return c
}

func sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

func hamming(i, m float64) float64 {
	return 0.54 - 0.46*math.Cos(2*math.Pi*i/m)
}
