package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConvolveBasics(t *testing.T) {
	// Impulse is the identity.
	h := []float64{1}
	x := []float64{3, -1, 2}
	got := Convolve(x, h)
	for i := range x {
		if got[i] != x[i] {
			t.Errorf("impulse convolution [%d] = %v", i, got[i])
		}
	}
	// Known small case: [1,2] * [3,4] = [3, 10, 8].
	got = Convolve([]float64{1, 2}, []float64{3, 4})
	want := []float64{3, 10, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("conv[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if Convolve(nil, h) != nil || Convolve(x, nil) != nil {
		t.Error("empty inputs must return nil")
	}
}

func TestConvolveMatchesFIR(t *testing.T) {
	// Convolution of the input with the coefficients equals streaming the
	// input through a FIR filter (for the first len(x) outputs).
	coef := LowpassFIR(9, 0.2)
	p := prng(41)
	x := make([]float64, 50)
	for i := range x {
		x[i] = p.float()
	}
	conv := Convolve(x, coef)
	f := NewFIR(coef)
	for i, v := range x {
		y := f.Process(v)
		if math.Abs(y-conv[i]) > 1e-12 {
			t.Fatalf("FIR[%d] = %g, conv %g", i, y, conv[i])
		}
	}
}

func TestConvolveFFTMatchesDirect(t *testing.T) {
	f := func(xs, hs [9]int8) bool {
		x := make([]float64, 9)
		h := make([]float64, 6)
		for i := range x {
			x[i] = float64(xs[i]) / 64
		}
		for i := range h {
			h[i] = float64(hs[i]) / 64
		}
		direct := Convolve(x, h)
		fast := ConvolveFFT(x, h)
		if len(direct) != len(fast) {
			return false
		}
		for i := range direct {
			if math.Abs(direct[i]-fast[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCrossAndAutoCorrelate(t *testing.T) {
	x := []float64{1, 2, 3}
	r := AutoCorrelate(x, 2)
	want := []float64{14, 8, 3} // lags 0,1,2
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-12 {
			t.Errorf("autocorr[%d] = %v, want %v", i, r[i], want[i])
		}
	}
	// Cross-correlation peak finds a delay.
	p := prng(55)
	sig := make([]float64, 200)
	for i := range sig {
		sig[i] = p.float()
	}
	const delay = 17
	delayed := make([]float64, 250)
	copy(delayed[delay:], sig)
	xc := CrossCorrelate(sig, delayed, 40)
	best := 0
	for lag := range xc {
		if xc[lag] > xc[best] {
			best = lag
		}
	}
	if best != delay {
		t.Errorf("correlation peak at lag %d, want %d", best, delay)
	}
}

func TestGoertzelMatchesDFTBin(t *testing.T) {
	p := prng(66)
	x := make([]float64, 64)
	for i := range x {
		x[i] = p.float()
	}
	re := make([]float64, 64)
	im := make([]float64, 64)
	copy(re, x)
	if err := FFT(re, im); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1, 5, 31} {
		want := re[k]*re[k] + im[k]*im[k]
		got := Goertzel(x, k)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("Goertzel bin %d = %g, FFT %g", k, got, want)
		}
	}
	if Goertzel(nil, 3) != 0 {
		t.Error("empty input must give 0")
	}
}

func TestWindows(t *testing.T) {
	for _, tc := range []struct {
		name string
		w    []float64
		ends float64
		mid  float64
	}{
		{"hann", Hann(65), 0, 1},
		{"hamming", Hamming(65), 0.08, 1},
		{"blackman", Blackman(65), 0, 1},
	} {
		if len(tc.w) != 65 {
			t.Fatalf("%s length", tc.name)
		}
		if math.Abs(tc.w[0]-tc.ends) > 1e-9 || math.Abs(tc.w[64]-tc.ends) > 1e-9 {
			t.Errorf("%s endpoints = %v, %v; want %v", tc.name, tc.w[0], tc.w[64], tc.ends)
		}
		if math.Abs(tc.w[32]-tc.mid) > 1e-9 {
			t.Errorf("%s midpoint = %v, want %v", tc.name, tc.w[32], tc.mid)
		}
		// Symmetry.
		for i := 0; i < 32; i++ {
			if math.Abs(tc.w[i]-tc.w[64-i]) > 1e-12 {
				t.Errorf("%s not symmetric at %d", tc.name, i)
			}
		}
	}
	r := Rectangular(4)
	for _, v := range r {
		if v != 1 {
			t.Error("rectangular window must be all ones")
		}
	}
	if w := Hann(1); w[0] != 1 {
		t.Error("degenerate window must be [1]")
	}
}

func TestWindowReducesLeakage(t *testing.T) {
	// An off-bin tone leaks badly with a rectangular window; a Hann
	// window concentrates it.
	n := 128
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 10.37 * float64(i) / float64(n))
	}
	leakage := func(w []float64) float64 {
		fr := make([]float64, n)
		fi := make([]float64, n)
		copy(fr, x)
		ApplyWindow(fr, w)
		if err := FFT(fr, fi); err != nil {
			t.Fatal(err)
		}
		ps := PowerSpectrum(fr, fi)
		// Energy far from the tone (bins 30..60) relative to the peak.
		var far float64
		for k := 30; k < 60; k++ {
			far += ps[k]
		}
		return far / ps[10]
	}
	if lr, lh := leakage(Rectangular(n)), leakage(Hann(n)); lh > lr/100 {
		t.Errorf("Hann leakage %g not much below rectangular %g", lh, lr)
	}
}
