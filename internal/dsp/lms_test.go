package dsp

import (
	"math"
	"testing"
)

func TestLMSIdentifiesPlant(t *testing.T) {
	plant := []float64{0.4, -0.2, 0.1, 0.05}
	p := prng(91)
	input := make([]float64, 4000)
	for i := range input {
		input[i] = p.float()
	}
	w, tailErr := Identify(plant, input, 0.05)
	if tailErr > 1e-8 {
		t.Errorf("tail error power = %g, want converged (< 1e-8)", tailErr)
	}
	for k := range plant {
		if math.Abs(w[k]-plant[k]) > 1e-3 {
			t.Errorf("w[%d] = %g, want %g", k, w[k], plant[k])
		}
	}
}

func TestLMSErrorDecreases(t *testing.T) {
	plant := []float64{0.5, 0.25, -0.125}
	ref := NewFIR(plant)
	f := NewLMS(3, 0.1)
	p := prng(7)
	var early, late float64
	for i := 0; i < 2000; i++ {
		x := p.float()
		d := ref.Process(x)
		_, e := f.Step(x, d)
		if i < 200 {
			early += e * e
		}
		if i >= 1800 {
			late += e * e
		}
	}
	if late >= early/100 {
		t.Errorf("error power early %g, late %g: no convergence", early, late)
	}
}

func TestLMSQ15Converges(t *testing.T) {
	// Fixed-point identification of a small plant: the Q15 filter should
	// reach weights within quantization-and-stall tolerance.
	plant := []float64{0.4, -0.2, 0.1}
	plantQ := VecToQ15floats(plant)
	refF := NewFIRQ15(plantQ)
	f := NewLMSQ15(3, ToQ15ish(0.25))
	p := prng(13)
	var late float64
	for i := 0; i < 6000; i++ {
		x := ToQ15ish(0.5 * p.float())
		d := refF.Process(x)
		_, e := f.Step(x, d)
		if i >= 5500 {
			late += float64(e) * float64(e)
		}
	}
	// Error should be driven down to the fixed-point floor.
	rms := math.Sqrt(late/500) / 32768
	if rms > 0.02 {
		t.Errorf("fixed-point LMS tail RMS error = %g, want < 0.02", rms)
	}
	for k, want := range plantQ {
		got := f.Weights()[k]
		if d := math.Abs(float64(got - want)); d > 2500 {
			t.Errorf("wq[%d] = %d, want ~%d", k, got, want)
		}
	}
}

func TestLMSZeroStepNeverAdapts(t *testing.T) {
	f := NewLMSQ15(4, 0)
	for i := 0; i < 100; i++ {
		f.Step(int16(i*100), 3000)
	}
	for k, w := range f.Weights() {
		if w != 0 {
			t.Errorf("w[%d] = %d, want 0 with mu=0", k, w)
		}
	}
}

// helpers reusing package conversions in test-local names.
func VecToQ15floats(v []float64) []int16 { return QuantizeQ15(v) }
func ToQ15ish(v float64) int16           { return QuantizeQ15([]float64{v})[0] }
