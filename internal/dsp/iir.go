package dsp

import (
	"math"

	"mmxdsp/internal/fixed"
)

// IIR is a direct-form-I infinite-impulse-response filter:
//
//	y[n] = sum_{q} b[q] x[n-q] - sum_{p} a[p+1] y[n-1-p]
//
// with a normalized to a[0] = 1. The paper's iir kernel is an eighth-order
// Butterworth bandpass in this form: 9 numerator plus 8 denominator
// coefficients, "filter length of eight with 17 coefficients".
type IIR struct {
	b, a   []float64 // a excludes the leading 1
	xh, yh []float64 // delay lines, newest first
}

// NewIIR builds a filter; a[0] must be 1 (the constructor normalizes).
func NewIIR(b, a []float64) *IIR {
	if len(a) == 0 || a[0] == 0 {
		panic("dsp: IIR needs a nonzero a[0]")
	}
	nb := make([]float64, len(b))
	na := make([]float64, len(a)-1)
	for i := range nb {
		nb[i] = b[i] / a[0]
	}
	for i := range na {
		na[i] = a[i+1] / a[0]
	}
	return &IIR{b: nb, a: na, xh: make([]float64, len(nb)), yh: make([]float64, len(na))}
}

// Order returns the filter order (denominator length).
func (f *IIR) Order() int { return len(f.a) }

// Reset clears both delay lines.
func (f *IIR) Reset() {
	for i := range f.xh {
		f.xh[i] = 0
	}
	for i := range f.yh {
		f.yh[i] = 0
	}
}

// Process consumes one sample and returns the output.
func (f *IIR) Process(x float64) float64 {
	// Shift x history (newest at index 0).
	copy(f.xh[1:], f.xh)
	f.xh[0] = x
	acc := 0.0
	for i, c := range f.b {
		acc += c * f.xh[i]
	}
	for i, c := range f.a {
		acc -= c * f.yh[i]
	}
	copy(f.yh[1:], f.yh)
	if len(f.yh) > 0 {
		f.yh[0] = acc
	}
	return acc
}

// ProcessBlock filters a block of samples, the granularity the paper's iir
// benchmark uses (8 samples per call).
func (f *IIR) ProcessBlock(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = f.Process(v)
	}
	return out
}

// IIRQ15 is the 16-bit fixed-point direct-form-I IIR used by the MMX
// version. Coefficients are block-scaled: the constructor picks the largest
// fraction-bit count that fits every coefficient in an int16 (an 8th-order
// Butterworth bandpass denominator reaches magnitude ~11, forcing Q11 —
// this is the a-priori "scale factor" the paper complains the Intel
// library requires). The accumulator is 64-bit, narrowed once per sample
// with saturation. As the paper observes, the feedback path compounds
// quantization error and can become unstable — the benchmark validation
// checks agreement only over the paper's 8-sample block length.
type IIRQ15 struct {
	b, a     []int16
	fracBits uint // coefficient fraction bits (Qf)
	xh, yh   []int16
}

// NewIIRQ15 quantizes a float design (a[0] must be 1 after normalization).
func NewIIRQ15(b, a []float64) *IIRQ15 {
	f := NewIIR(b, a)
	maxMag := 1.0
	for _, c := range f.b {
		maxMag = math.Max(maxMag, math.Abs(c))
	}
	for _, c := range f.a {
		maxMag = math.Max(maxMag, math.Abs(c))
	}
	frac := uint(15)
	for maxMag*float64(int64(1)<<frac) > 32767 {
		frac--
	}
	quant := func(v float64) int16 {
		s := v * float64(int64(1)<<frac)
		if s >= 0 {
			s += 0.5
		} else {
			s -= 0.5
		}
		return satI64ToI16(int64(s))
	}
	qb := make([]int16, len(f.b))
	qa := make([]int16, len(f.a))
	for i, c := range f.b {
		qb[i] = quant(c)
	}
	for i, c := range f.a {
		qa[i] = quant(c)
	}
	return &IIRQ15{b: qb, a: qa, fracBits: frac,
		xh: make([]int16, len(qb)), yh: make([]int16, len(qa))}
}

// Coefs returns the quantized coefficient slices (numerator, denominator
// without the leading 1). The VM benchmark uses these to build identical
// data tables.
func (f *IIRQ15) Coefs() (b, a []int16) { return f.b, f.a }

// FracBits returns the coefficient fraction-bit count chosen by the
// constructor.
func (f *IIRQ15) FracBits() uint { return f.fracBits }

// Reset clears both delay lines.
func (f *IIRQ15) Reset() {
	for i := range f.xh {
		f.xh[i] = 0
	}
	for i := range f.yh {
		f.yh[i] = 0
	}
}

// Process consumes one Q15 sample and returns the Q15 output.
func (f *IIRQ15) Process(x int16) int16 {
	copy(f.xh[1:], f.xh)
	f.xh[0] = x
	var acc int64
	for i, c := range f.b {
		acc += int64(c) * int64(f.xh[i])
	}
	for i, c := range f.a {
		acc -= int64(c) * int64(f.yh[i])
	}
	// Narrow from Q(15+fracBits) back to Q15 with rounding.
	acc += int64(1) << (f.fracBits - 1)
	acc >>= f.fracBits
	y := satI64ToI16(acc)
	copy(f.yh[1:], f.yh)
	if len(f.yh) > 0 {
		f.yh[0] = y
	}
	return y
}

// ProcessBlock filters a block of Q15 samples.
func (f *IIRQ15) ProcessBlock(x []int16) []int16 {
	out := make([]int16, len(x))
	for i, v := range x {
		out[i] = f.Process(v)
	}
	return out
}

func satI64ToI16(v int64) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// ButterworthBandpass designs an order-2n Butterworth bandpass filter with
// normalized edge frequencies lo and hi (fractions of the sample rate,
// 0 < lo < hi < 0.5) via the analog prototype, the lowpass-to-bandpass
// transform, and the bilinear transform. It returns direct-form b (length
// 2n+1) and a (length 2n+1, a[0]=1) coefficient slices; for n=4 this is the
// paper's "Butterworth, direct form, eighth-order bandpass filter ...
// 17 coefficients".
func ButterworthBandpass(n int, lo, hi float64) (b, a []float64) {
	// Prewarp edges for the bilinear transform (T = 1).
	wl := 2 * math.Tan(math.Pi*lo)
	wh := 2 * math.Tan(math.Pi*hi)
	bw := wh - wl
	w0 := math.Sqrt(wl * wh)

	// Analog Butterworth prototype poles (left half-plane, order n).
	type cplx = complex128
	var protoPoles []cplx
	for k := 0; k < n; k++ {
		theta := math.Pi * (2*float64(k) + 1) / (2 * float64(n))
		protoPoles = append(protoPoles, cplx(complex(-math.Sin(theta), math.Cos(theta))))
	}

	// Lowpass -> bandpass: each prototype pole p maps to the pair
	// (p*bw ± sqrt((p*bw)^2 - 4 w0^2)) / 2; zeros: n at 0, n at infinity.
	var poles []cplx
	for _, p := range protoPoles {
		pb := p * complex(bw, 0)
		d := cSqrt(pb*pb - complex(4*w0*w0, 0))
		poles = append(poles, (pb+d)/2, (pb-d)/2)
	}
	// Analog gain: bandpass numerator is (bw*s)^n.
	// Bilinear transform s = 2 (z-1)/(z+1): pole p -> (2+p)/(2-p);
	// zero at 0 -> z=1; zeros at infinity -> z=-1.
	var zPoles, zZeros []cplx
	for _, p := range poles {
		zPoles = append(zPoles, (complex(2, 0)+p)/(complex(2, 0)-p))
	}
	for i := 0; i < n; i++ {
		zZeros = append(zZeros, cplx(complex(1, 0)), cplx(complex(-1, 0)))
	}
	// Gain: k = bw^n * prod(1/(2 - p)) ... compute overall constant from
	// evaluating H at the center frequency and normalizing |H| to 1.
	b = realPoly(zZeros)
	a = realPoly(zPoles)
	// Normalize so that |H(e^{jw0d})| = 1 at the digital center frequency.
	w0d := 2 * math.Atan(w0/2)
	h := polyEval(b, w0d) / polyEval(a, w0d)
	g := 1 / cAbs(h)
	for i := range b {
		b[i] *= g
	}
	return b, a
}

// realPoly expands prod (z - r_i) into real coefficients
// [1, c1, c2, ...] in descending powers of z.
func realPoly(roots []complex128) []float64 {
	coef := []complex128{1}
	for _, r := range roots {
		next := make([]complex128, len(coef)+1)
		for i, c := range coef {
			next[i] += c
			next[i+1] -= c * r
		}
		coef = next
	}
	out := make([]float64, len(coef))
	for i, c := range coef {
		out[i] = real(c)
	}
	return out
}

// polyEval evaluates a real polynomial (descending powers) at z = e^{jw}.
func polyEval(c []float64, w float64) complex128 {
	z := complex(math.Cos(w), math.Sin(w))
	acc := complex(0, 0)
	for _, v := range c {
		acc = acc*z + complex(v, 0)
	}
	return acc
}

func cSqrt(z complex128) complex128 {
	r := math.Hypot(real(z), imag(z))
	if r == 0 {
		return 0
	}
	re := math.Sqrt((r + real(z)) / 2)
	im := math.Sqrt((r - real(z)) / 2)
	if imag(z) < 0 {
		im = -im
	}
	return complex(re, im)
}

func cAbs(z complex128) float64 { return math.Hypot(real(z), imag(z)) }

// QuantizeQ15 converts a float slice to Q15 (convenience re-export used by
// benchmark construction).
func QuantizeQ15(v []float64) []int16 { return fixed.VecToQ15(v) }
