// Fleet observability. Same design as the daemon's metrics: expvar vars
// held on the Coordinator (not the process-global registry), rendered as
// one JSON document together with the per-backend registry view.
package cluster

import (
	"expvar"
	"net/http"
	"time"

	"mmxdsp/internal/campaign"
	"mmxdsp/internal/server"
)

// fleetMetrics is the coordinator's counter set.
type fleetMetrics struct {
	requests      expvar.Int // /run requests accepted for routing
	affinityHits  expvar.Int // routed to the HRW first choice
	fallbacks     expvar.Int // affinity target saturated, least-loaded used
	retries       expvar.Int // extra attempts after conn errors / 429s
	hedges        expvar.Int // hedged second requests launched
	hedgeWins     expvar.Int // hedges that answered before the primary
	shed          expvar.Int // 503s for "no routable backend"
	probeFailures expvar.Int
	deaths        expvar.Int // healthy/suspect -> dead transitions
	readmissions  expvar.Int // dead/suspect -> healthy transitions
	suiteRuns     expvar.Int // /suite scatter-gathers served
	suiteFailed   expvar.Int // /suite requests answered with an error status
	asmRequests   expvar.Int // /asm requests accepted for routing
	bulkShed      expvar.Int // bulk-priority 429s synthesized at saturation

	resultHits      expvar.Int // result-cache hits (no backend round-trip)
	resultMisses    expvar.Int // result-cache misses (routed to a backend)
	resultCoalesced expvar.Int // requests that waited on an identical in-flight miss

	// Campaign accounting: campaigns created, points settled by outcome,
	// and a dedicated latency window for per-point wall times (points are
	// batch work; they stay out of any interactive quantiles).
	campaignsTotal         expvar.Int
	campaignPoints         expvar.Int
	campaignPointsCached   expvar.Int
	campaignPointsFailed   expvar.Int
	campaignPointsCanceled expvar.Int
	campaignLatency        server.LatencyWindow
}

// recordCampaignPoint accounts one settled campaign point; it is the
// campaign.RunnerConfig.OnPoint hook on the fleet tier.
func (m *fleetMetrics) recordCampaignPoint(wall time.Duration, outcome string, cached bool) {
	m.campaignPoints.Add(1)
	switch outcome {
	case campaign.PointFailed:
		m.campaignPointsFailed.Add(1)
	case campaign.PointCanceled:
		m.campaignPointsCanceled.Add(1)
	default:
		if cached {
			m.campaignPointsCached.Add(1)
		}
		m.campaignLatency.Add(wall)
	}
}

// recordResult accounts one result-cache outcome for a routed /run or a
// gathered /suite program.
func (m *fleetMetrics) recordResult(outcome server.ResultOutcome) {
	switch outcome {
	case server.ResultHit, server.ResultSpillHit:
		m.resultHits.Add(1)
	case server.ResultCoalesced:
		m.resultCoalesced.Add(1)
	default:
		m.resultMisses.Add(1)
	}
}

func newFleetMetrics() *fleetMetrics { return &fleetMetrics{} }

// FleetMetrics is the JSON document served by the coordinator's /metrics.
type FleetMetrics struct {
	Backends []BackendStatus `json:"backends"`

	Requests     int64 `json:"requests"`
	AffinityHits int64 `json:"affinity_routed"`
	Fallbacks    int64 `json:"fallback_routed"`
	Retries      int64 `json:"retries"`
	Hedges       int64 `json:"hedges_launched"`
	HedgeWins    int64 `json:"hedge_wins"`
	Shed         int64 `json:"shed_503"`

	ProbeFailures int64 `json:"probe_failures"`
	Deaths        int64 `json:"backend_deaths"`
	Readmissions  int64 `json:"backend_readmissions"`
	SuiteRuns     int64 `json:"suite_runs"`
	SuiteFailed   int64 `json:"suite_failed"`

	// Multi-tenant front door: user-submitted /asm requests routed, and
	// bulk-priority requests shed with 429 when the whole fleet is saturated.
	AsmRequests int64 `json:"asm_requests"`
	BulkShed    int64 `json:"bulk_shed_429"`

	// Result-cache effectiveness (all zero when result caching is off).
	// JSON names match the daemon tier so tooling extracts both the same way.
	ResultHits      int64   `json:"result_cache_hits"`
	ResultMisses    int64   `json:"result_cache_misses"`
	ResultCoalesced int64   `json:"result_cache_coalesced"`
	ResultHitRate   float64 `json:"result_cache_hit_rate"`

	// Campaign accounting. JSON names match the daemon tier so tooling
	// extracts both the same way.
	CampaignsActive        int64   `json:"campaigns_active"`
	CampaignsTotal         int64   `json:"campaigns_total"`
	CampaignPoints         int64   `json:"campaign_points_total"`
	CampaignPointsCached   int64   `json:"campaign_points_cached"`
	CampaignPointsFailed   int64   `json:"campaign_points_failed"`
	CampaignPointsCanceled int64   `json:"campaign_points_canceled"`
	CampaignPointWallP50   float64 `json:"campaign_point_wall_ms_p50"`
	CampaignPointWallP99   float64 `json:"campaign_point_wall_ms_p99"`

	Draining bool `json:"draining"`
}

// Snapshot materializes the current fleet counters and registry view.
func (c *Coordinator) Snapshot() FleetMetrics {
	m := c.metrics
	hits := m.resultHits.Value()
	coalesced := m.resultCoalesced.Value()
	misses := m.resultMisses.Value()
	var hitRate float64
	if total := hits + coalesced + misses; total > 0 {
		hitRate = float64(hits+coalesced) / float64(total)
	}
	var campP50, campP99 float64
	if q := m.campaignLatency.Quantiles(0.50, 0.99); q != nil {
		campP50, campP99 = q[0], q[1]
	}
	return FleetMetrics{
		Backends:      c.Backends(),
		Requests:      m.requests.Value(),
		AffinityHits:  m.affinityHits.Value(),
		Fallbacks:     m.fallbacks.Value(),
		Retries:       m.retries.Value(),
		Hedges:        m.hedges.Value(),
		HedgeWins:     m.hedgeWins.Value(),
		Shed:          m.shed.Value(),
		ProbeFailures: m.probeFailures.Value(),
		Deaths:        m.deaths.Value(),
		Readmissions:  m.readmissions.Value(),
		SuiteRuns:     m.suiteRuns.Value(),
		SuiteFailed:   m.suiteFailed.Value(),
		AsmRequests:   m.asmRequests.Value(),
		BulkShed:      m.bulkShed.Value(),

		ResultHits:      hits,
		ResultMisses:    misses,
		ResultCoalesced: coalesced,
		ResultHitRate:   hitRate,

		CampaignsActive:        int64(c.campaigns.Active()),
		CampaignsTotal:         m.campaignsTotal.Value(),
		CampaignPoints:         m.campaignPoints.Value(),
		CampaignPointsCached:   m.campaignPointsCached.Value(),
		CampaignPointsFailed:   m.campaignPointsFailed.Value(),
		CampaignPointsCanceled: m.campaignPointsCanceled.Value(),
		CampaignPointWallP50:   campP50,
		CampaignPointWallP99:   campP99,

		Draining: c.draining.Load(),
	}
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Snapshot())
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if len(c.routableBackends()) == 0 {
		http.Error(w, "no routable backends", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}
