// The health prober. One loop wakes on a short tick and probes every
// backend whose backoff schedule is due: GET /healthz decides liveness
// (anything but 200 — including the 503 a draining daemon serves — is a
// failure), and a successful probe refreshes the load view from /metrics
// (queue depth, active runs, cache hit rate) for least-loaded fallback
// routing. Failures back off exponentially; the first success after any
// streak re-admits the backend immediately.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"mmxdsp/internal/server"
)

func (c *Coordinator) probeLoop() {
	defer c.proberWG.Done()
	tick := c.cfg.ProbeInterval / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	// Probe immediately at startup so routing has a health view before the
	// first interval elapses.
	c.ProbeAll()
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			var wg sync.WaitGroup
			for _, b := range c.backends {
				if !b.dueForProbe(now) {
					continue
				}
				wg.Add(1)
				go func(b *backend) {
					defer wg.Done()
					c.probe(b)
				}(b)
			}
			wg.Wait()
		}
	}
}

// ProbeAll probes every backend once, concurrently, regardless of backoff
// schedules. The prober calls it at startup; tests call it to force a
// deterministic health view.
func (c *Coordinator) ProbeAll() {
	var wg sync.WaitGroup
	for _, b := range c.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			c.probe(b)
		}(b)
	}
	wg.Wait()
}

// probe runs one health check against b and updates the registry.
func (c *Coordinator) probe(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	if err := c.probeHealthz(ctx, b); err != nil {
		was := b.routable()
		state := b.noteFailure(err, &c.cfg)
		c.metrics.probeFailures.Add(1)
		if was && state == StateDead {
			c.metrics.deaths.Add(1)
		}
		return
	}
	queue, active, hitRate := c.probeMetrics(ctx, b)
	if !b.routable() {
		c.metrics.readmissions.Add(1)
	}
	b.noteSuccess(queue, active, hitRate, c.cfg.ProbeInterval)
}

func (c *Coordinator) probeHealthz(ctx context.Context, b *backend) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	return nil
}

// probeMetrics refreshes the load view; on any error it returns the
// backend's previous view (health is /healthz's call alone).
func (c *Coordinator) probeMetrics(ctx context.Context, b *backend) (queue, active int64, hitRate float64) {
	b.mu.Lock()
	queue, active, hitRate = b.queueDepth, b.activeRuns, b.cacheHitRate
	b.mu.Unlock()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/metrics", nil)
	if err != nil {
		return
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var snap server.MetricsSnapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&snap); err != nil {
		return
	}
	return snap.QueueDepth, snap.ActiveRuns, snap.CacheHitRate
}
