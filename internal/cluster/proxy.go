// The /run data path: parse and key the request, pick the attempt order
// (affinity first, least-loaded on saturation), then attempt with bounded
// jittered retries on connection errors and backend 429s, optionally
// hedging the first attempt. Backend responses are read fully before being
// relayed, so retries and hedges never entangle two response streams, and
// a relayed response is byte-identical to the backend's body — the fleet
// e2e pins served-through-coordinator == direct-daemon.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"mmxdsp/internal/server"
)

// maxBackendResponse bounds a relayed backend body (a full suite table
// response is far below this).
const maxBackendResponse = 64 << 20

// BackendHeader names the response header carrying the URL of the backend
// that served a routed request — observability for tests and fleet logs.
const BackendHeader = "X-Mmx-Backend"

// backendResp is one fully-read backend response.
type backendResp struct {
	status int
	ctype  string
	body   []byte
}

// routedCall is one backend-bound POST: the path, the raw body, and the
// headers the coordinator forwards — correlation ID, tenant identity
// (resolved coordinator-side so backends account the real client, not the
// coordinator's address) and priority.
type routedCall struct {
	path     string
	body     []byte
	id       string
	tenant   string
	priority string
}

// callFor builds the routedCall for an inbound request: the tenant header
// is forwarded when present and pinned to the client IP otherwise, and the
// priority header travels verbatim.
func callFor(w http.ResponseWriter, r *http.Request, path string, body []byte) routedCall {
	return routedCall{
		path:     path,
		body:     body,
		id:       requestID(w),
		tenant:   server.TenantKey(r),
		priority: r.Header.Get(server.PriorityHeader),
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}

// shed answers with 503 + Retry-After: the coordinator-level load-shedding
// response for "no backend can take this right now".
func (c *Coordinator) shed(w http.ResponseWriter, err error) {
	c.metrics.shed.Add(1)
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, err)
}

func (c *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if c.draining.Load() {
		c.shed(w, errors.New("coordinator is draining"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	// Validate and key coordinator-side: malformed requests never cost a
	// backend round-trip, and the affinity key is the backends' cache key
	// by construction.
	req, err := server.ParseRunRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c.metrics.requests.Add(1)
	c.routeCached(w, r, req.CacheKey(), req.ResultKey(), callFor(w, r, "/run", body))
}

// routeCached serves one keyed request through the coordinator result
// cache (when enabled) and the routed fleet: a hit (or a coalesced wait on
// an identical in-flight request) never costs a backend round-trip. Only
// authoritative 200s are cached; any other backend answer is relayed
// uncached through the sentinel path.
func (c *Coordinator) routeCached(w http.ResponseWriter, r *http.Request, cacheKey, resultKey string, call routedCall) {
	if c.results == nil {
		resp, b, err := c.route(r.Context(), cacheKey, call)
		if err != nil {
			c.runRouteError(w, r, err)
			return
		}
		relay(w, b, resp)
		return
	}
	var pass *backendResp
	var passFrom *backend
	res, outcome, err := c.results.Do(r.Context(), resultKey, func() ([]byte, error) {
		resp, b, err := c.route(r.Context(), cacheKey, call)
		if err != nil {
			return nil, err
		}
		passFrom = b
		if resp.status != http.StatusOK {
			pass = resp
			return nil, errUncacheableStatus
		}
		return resp.body, nil
	})
	switch {
	case errors.Is(err, errUncacheableStatus):
		relay(w, passFrom, pass)
	case err != nil:
		c.runRouteError(w, r, err)
	default:
		c.metrics.recordResult(outcome)
		if passFrom != nil {
			w.Header().Set(BackendHeader, passFrom.url)
		}
		server.WriteCachedResult(w, r, res, outcome)
	}
}

// errUncacheableStatus marks a routed response that must be relayed but
// not cached (429s, backend errors — anything but an authoritative 200).
var errUncacheableStatus = errors.New("uncacheable backend status")

// runRouteError answers a /run whose every routing attempt died on the
// wire: 499 when the client itself went away, coordinator shed otherwise.
func (c *Coordinator) runRouteError(w http.ResponseWriter, r *http.Request, err error) {
	if r.Context().Err() != nil {
		writeError(w, server.StatusClientClosedRequest, err)
		return
	}
	c.shed(w, fmt.Errorf("all backends failed: %w", err))
}

// relay writes a fully-read backend response to the client.
func relay(w http.ResponseWriter, b *backend, resp *backendResp) {
	if b != nil {
		w.Header().Set(BackendHeader, b.url)
	}
	if resp.ctype != "" {
		w.Header().Set("Content-Type", resp.ctype)
	}
	if resp.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

// requestID reads the correlation ID the WithRequestID middleware stamped
// on the pending response.
func requestID(w http.ResponseWriter) string {
	return w.Header().Get(server.RequestIDHeader)
}

// route routes one keyed call through the fleet: affinity order, retries,
// hedging. It returns the first authoritative response (any HTTP status
// except 429) or, after the budget is spent, the last 429 — the caller
// relays it, Retry-After attached. A nil response with an error means
// every attempt died on the wire.
func (c *Coordinator) route(ctx context.Context, key string, call routedCall) (*backendResp, *backend, error) {
	order, affinity := c.routeOrder(key)
	if len(order) == 0 {
		return nil, nil, errors.New("no routable backend")
	}
	// Priority shedding: when every routable backend is saturated, bulk
	// traffic sheds at the coordinator (429 + Retry-After, synthesized
	// below by the caller's relay of this response) instead of queueing
	// ahead of interactive work on some backend.
	if call.priority == "bulk" && c.allSaturated(order) {
		c.metrics.bulkShed.Add(1)
		return &backendResp{
			status: http.StatusTooManyRequests,
			ctype:  "application/json",
			body:   []byte("{\n  \"error\": \"fleet saturated; bulk traffic shed\"\n}\n"),
		}, nil, nil
	}
	if affinity {
		c.metrics.affinityHits.Add(1)
	} else {
		c.metrics.fallbacks.Add(1)
	}

	var last429 *backendResp
	var last429From *backend
	var lastErr error
	backoff := c.cfg.RetryBackoff
	attempts := c.cfg.Retries + 1
	for i := 0; i < attempts; i++ {
		if i > 0 {
			c.metrics.retries.Add(1)
			select {
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			case <-time.After(jitter(backoff)):
			}
			backoff *= 2
			// Re-rank: a backend that died on the wire a moment ago is no
			// longer routable, so retries skip it automatically.
			order, _ = c.routeOrder(key)
			if len(order) == 0 {
				break
			}
		}
		target := order[i%len(order)]
		var resp *backendResp
		var winner *backend
		var err error
		if i == 0 && c.cfg.HedgeAfter > 0 && len(order) > 1 {
			resp, winner, err = c.hedgedSend(ctx, target, order[1], call)
		} else {
			winner = target
			resp, err = c.send(ctx, target, call)
		}
		if err != nil {
			lastErr = err
			continue
		}
		if resp.status == http.StatusTooManyRequests {
			last429, last429From = resp, winner
			continue
		}
		if winner == order[0] && affinity && i == 0 {
			winner.affinity.Add(1)
		} else {
			winner.fallback.Add(1)
		}
		return resp, winner, nil
	}
	if last429 != nil {
		return last429, last429From, nil
	}
	if lastErr == nil {
		lastErr = errors.New("no routable backend")
	}
	return nil, nil, lastErr
}

// send issues one routed POST to b and reads the response fully. A
// transport error (connection refused, reset, timeout) counts toward b's
// failure streak — the data path notices a dead backend faster than the
// next probe — unless the caller's context was the cause.
func (c *Coordinator) send(ctx context.Context, b *backend, call routedCall) (*backendResp, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+call.path, bytes.NewReader(call.body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if call.id != "" {
		req.Header.Set(server.RequestIDHeader, call.id)
	}
	if call.tenant != "" {
		req.Header.Set(server.TenantHeader, call.tenant)
	}
	if call.priority != "" {
		req.Header.Set(server.PriorityHeader, call.priority)
	}
	b.inflight.Add(1)
	b.routed.Add(1)
	resp, err := c.cfg.Client.Do(req)
	b.inflight.Add(-1)
	if err != nil {
		if ctx.Err() == nil {
			b.errors.Add(1)
			c.recordFailure(b, err)
		}
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBackendResponse))
	if err != nil {
		if ctx.Err() == nil {
			b.errors.Add(1)
			c.recordFailure(b, err)
		}
		return nil, err
	}
	return &backendResp{status: resp.StatusCode, ctype: resp.Header.Get("Content-Type"), body: data}, nil
}

// recordFailure folds a data-path or probe failure into the registry and
// fleet counters.
func (c *Coordinator) recordFailure(b *backend, err error) {
	was := b.routable()
	state := b.noteFailure(err, &c.cfg)
	if was && state == StateDead {
		c.metrics.deaths.Add(1)
	}
}

// hedgedSend races primary against a delayed hedge to alt: primary is
// sent immediately, and if it has not answered within HedgeAfter the same
// body goes to alt; the first authoritative (non-429, non-error) response
// wins and the loser is canceled. Runs are deterministic, so serving the
// faster of two identical computations is safe by construction.
func (c *Coordinator) hedgedSend(ctx context.Context, primary, alt *backend, call routedCall) (*backendResp, *backend, error) {
	type result struct {
		resp *backendResp
		err  error
		b    *backend
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan result, 2)
	send := func(b *backend) {
		resp, err := c.send(hctx, b, call)
		ch <- result{resp, err, b}
	}
	go send(primary)

	timer := time.NewTimer(c.cfg.HedgeAfter)
	defer timer.Stop()
	outstanding, hedged := 1, false
	for {
		select {
		case r := <-ch:
			outstanding--
			authoritative := r.err == nil && r.resp.status != http.StatusTooManyRequests
			if authoritative || outstanding == 0 {
				if authoritative && hedged && r.b == alt {
					c.metrics.hedgeWins.Add(1)
				}
				return r.resp, r.b, r.err
			}
			// The first answer was an error or a 429; wait for the other.
		case <-timer.C:
			if !hedged {
				hedged = true
				c.metrics.hedges.Add(1)
				outstanding++
				go send(alt)
			}
		}
	}
}

// handlePrograms proxies capability discovery from the fleet: the first
// routable backend's /programs body is relayed verbatim.
func (c *Coordinator) handlePrograms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	body, b, err := c.fetchPrograms(r.Context())
	if err != nil {
		c.shed(w, err)
		return
	}
	relay(w, b, &backendResp{status: http.StatusOK, ctype: "application/json", body: body})
}

// fetchPrograms retrieves the raw /programs document from any routable
// backend, trying each in registry order.
func (c *Coordinator) fetchPrograms(ctx context.Context) ([]byte, *backend, error) {
	backends := c.routableBackends()
	if len(backends) == 0 {
		return nil, nil, errors.New("no routable backend")
	}
	var lastErr error
	for _, b := range backends {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/programs", nil)
		if err != nil {
			return nil, nil, err
		}
		resp, err := c.cfg.Client.Do(req)
		if err != nil {
			lastErr = err
			if ctx.Err() == nil {
				c.recordFailure(b, err)
			}
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxBackendResponse))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("programs from %s: status %d, %v", b.url, resp.StatusCode, err)
			continue
		}
		return data, b, nil
	}
	return nil, nil, fmt.Errorf("programs discovery failed: %w", lastErr)
}

// discoverPrograms returns the fleet's program names, cached after the
// first successful discovery (the registry is static per deployment).
func (c *Coordinator) discoverPrograms(ctx context.Context) ([]string, error) {
	c.programsMu.Lock()
	cached := c.programs
	c.programsMu.Unlock()
	if cached != nil {
		return cached, nil
	}
	body, _, err := c.fetchPrograms(ctx)
	if err != nil {
		return nil, err
	}
	var pr server.ProgramsResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		return nil, fmt.Errorf("decoding programs: %w", err)
	}
	names := make([]string, 0, len(pr.Programs))
	for _, p := range pr.Programs {
		names = append(names, p.Name)
	}
	if len(names) == 0 {
		return nil, errors.New("backend reported an empty program registry")
	}
	c.programsMu.Lock()
	c.programs = names
	c.programsMu.Unlock()
	return names, nil
}
