// Coordinator result-cache tests plus the /suite regression coverage:
// oversharded selectors answer 400 instead of panicking, client
// cancellation mid-scatter answers 499 (deadline: 504) instead of blaming
// the fleet with 502, and a cached run never costs a backend round-trip.
package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mmxdsp/internal/server"
)

func TestShardNames(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}

	whole, err := shardNames(names, 0, 0)
	if err != nil || len(whole) != len(names) {
		t.Fatalf("of=0 should select everything: %v, %v", whole, err)
	}
	var total int
	for part := 0; part < 2; part++ {
		shard, err := shardNames(names, part, 2)
		if err != nil {
			t.Fatalf("part %d: %v", part, err)
		}
		total += len(shard)
	}
	if total != len(names) {
		t.Fatalf("2-way shards cover %d of %d names", total, len(names))
	}
	if _, err := shardNames(names, 0, len(names)+1); err == nil {
		t.Fatal("of > len(names) should be rejected")
	}
	if _, err := shardNames(names, 2, 2); err == nil {
		t.Fatal("part >= of should be rejected")
	}
	if _, err := shardNames(names, -1, 2); err == nil {
		t.Fatal("negative part should be rejected")
	}
}

// TestSuiteOvershardedSelectorReturns400 is the regression test for the
// coordinator panic: a selector that parses (part < of) but asks for more
// shards than the fleet has programs used to index past the end of
// core.Partition's clamped result.
func TestSuiteOvershardedSelectorReturns400(t *testing.T) {
	f := newFakeBackend(t) // registry has 2 programs; of=25 overshards it
	c, ts := newTestCoordinator(t, Config{}, f)
	c.ProbeAll()

	resp, err := http.Post(ts.URL+"/suite", "application/json",
		strings.NewReader(`{"part":20,"of":25}`))
	if err != nil {
		t.Fatalf("POST /suite: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversharded /suite: status %d, want 400", resp.StatusCode)
	}
	if got := c.Snapshot().SuiteFailed; got != 1 {
		t.Errorf("suite_failed = %d, want 1", got)
	}
}

func TestSuiteClientCancelReturns499(t *testing.T) {
	f := newFakeBackend(t)
	f.runDelay.Store(int64(10 * time.Second)) // stall scatter until canceled
	c, _ := newTestCoordinator(t, Config{}, f)
	c.ProbeAll()
	// Warm program discovery so the canceled request reaches the scatter.
	if _, err := c.discoverPrograms(context.Background()); err != nil {
		t.Fatalf("discoverPrograms: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/suite", strings.NewReader(`{"dispatch":"block"}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	c.handleSuite(rec, req)

	if rec.Code != server.StatusClientClosedRequest {
		t.Fatalf("canceled /suite: status %d, want 499: %s", rec.Code, rec.Body.String())
	}
	if got := c.Snapshot().SuiteFailed; got != 1 {
		t.Errorf("suite_failed = %d, want 1", got)
	}
}

func TestSuiteDeadlineReturns504(t *testing.T) {
	f := newFakeBackend(t)
	f.runDelay.Store(int64(10 * time.Second))
	c, _ := newTestCoordinator(t, Config{}, f)
	c.ProbeAll()
	if _, err := c.discoverPrograms(context.Background()); err != nil {
		t.Fatalf("discoverPrograms: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/suite", strings.NewReader(`{"dispatch":"block"}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	c.handleSuite(rec, req)

	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadlined /suite: status %d, want 504: %s", rec.Code, rec.Body.String())
	}
}

func TestCoordinatorResultCacheSkipsBackendRoundTrip(t *testing.T) {
	f := newFakeBackend(t)
	c, ts := newTestCoordinator(t, Config{ResultCacheEntries: 64}, f)
	c.ProbeAll()

	resp1, body1 := postRun(t, ts.URL, firBody, nil)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d", resp1.StatusCode)
	}
	if got := resp1.Header.Get(server.ResultCacheHeader); got != "miss" {
		t.Errorf("first run cache header = %q, want miss", got)
	}
	etag := resp1.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on the routed response")
	}

	resp2, body2 := postRun(t, ts.URL, firBody, nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second run: status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get(server.ResultCacheHeader); got != "hit" {
		t.Errorf("second run cache header = %q, want hit", got)
	}
	if string(body1) != string(body2) {
		t.Error("cached coordinator response differs from the routed one")
	}
	if n := f.runs.Load(); n != 1 {
		t.Fatalf("backend served %d runs, want 1 (the hit must stay local)", n)
	}

	// The coordinator revalidates with its own ETag.
	resp3, body3 := postRun(t, ts.URL, firBody, map[string]string{"If-None-Match": etag})
	if resp3.StatusCode != http.StatusNotModified || len(body3) != 0 {
		t.Fatalf("If-None-Match: status %d body %d bytes, want bare 304", resp3.StatusCode, len(body3))
	}

	snap := c.Snapshot()
	if snap.ResultMisses != 1 || snap.ResultHits != 2 {
		t.Errorf("result hits/misses = %d/%d, want 2/1: %+v", snap.ResultHits, snap.ResultMisses, snap)
	}
	if snap.ResultHitRate <= 0.5 {
		t.Errorf("result_cache_hit_rate = %v, want > 0.5", snap.ResultHitRate)
	}
}

func TestCoordinatorDoesNotCacheBackendErrors(t *testing.T) {
	f := newFakeBackend(t)
	f.run429.Store(true)
	c, ts := newTestCoordinator(t, Config{Retries: 1, ResultCacheEntries: 64}, f)
	c.ProbeAll()

	resp, _ := postRun(t, ts.URL, firBody, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shedding backend: status %d, want 429", resp.StatusCode)
	}

	// Once the backend recovers, the same request must route again and
	// succeed — the 429 must not have been cached as the answer.
	f.run429.Store(false)
	resp, _ = postRun(t, ts.URL, firBody, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered backend: status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(server.ResultCacheHeader); got != "miss" {
		t.Errorf("first success cache header = %q, want miss", got)
	}
}
