package cluster

import (
	"fmt"
	"testing"
)

// FuzzParseSuiteRequest throws arbitrary bodies at the /suite decoder. The
// decoder must never panic, any request it accepts must carry a coherent
// shard selector, and resolving that selector against a program list of
// any size must be total — the historical coordinator panic was exactly an
// accepted selector indexing past core.Partition's clamped output.
func FuzzParseSuiteRequest(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"dispatch":"block"}`))
	f.Add([]byte(`{"dispatch":"warp"}`))
	f.Add([]byte(`{"part":20,"of":25}`)) // the crash reproducer
	f.Add([]byte(`{"part":0,"of":1,"timeout_ms":250}`))
	f.Add([]byte(`{"part":-1,"of":3}`))
	f.Add([]byte(`{"of":-2}`))
	f.Add([]byte(`{"config":{"disable_pairing":true,"emms_latency":53}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"part":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := parseSuiteRequest(data)
		if err != nil {
			if req != nil {
				t.Fatal("non-nil request returned alongside an error")
			}
			return
		}
		if req.Of < 0 {
			t.Fatalf("negative of=%d escaped validation", req.Of)
		}
		if req.Of > 0 && (req.Part < 0 || req.Part >= req.Of) {
			t.Fatalf("incoherent selector part=%d of=%d escaped validation", req.Part, req.Of)
		}
		if req.TimeoutMS < 0 {
			t.Fatalf("negative timeout_ms %d escaped validation", req.TimeoutMS)
		}
		// shardNames must be total for every accepted selector against any
		// registry size, including registries smaller than `of`.
		for _, n := range []int{0, 1, 2, 19, 400} {
			names := make([]string, n)
			for i := range names {
				names[i] = fmt.Sprintf("p%d", i)
			}
			shard, err := shardNames(names, req.Part, req.Of)
			if err != nil {
				continue // rejected (e.g. of > n) — fine, as long as no panic
			}
			if len(shard) > n {
				t.Fatalf("shard of %d names from a %d-name registry", len(shard), n)
			}
		}
	})
}
