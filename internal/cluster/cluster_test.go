// Unit tests for the coordinator, driven against in-process fake backends
// so health transitions, routing order, retries, hedging and shedding are
// all deterministic. The real-daemon behavior is covered by e2e_test.go.
package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mmxdsp/internal/server"
)

// fakeBackend is a scriptable stand-in for one mmxd.
type fakeBackend struct {
	ts      *httptest.Server
	healthy atomic.Bool
	queue   atomic.Int64
	// runDelay stalls /run (hedging tests); run429 sheds every /run.
	runDelay atomic.Int64 // nanoseconds
	run429   atomic.Bool
	runs     atomic.Int64
	lastID   atomic.Value // last X-Request-ID seen on /run
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	f := &fakeBackend{}
	f.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !f.healthy.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(server.MetricsSnapshot{QueueDepth: f.queue.Load(), CacheHitRate: 0.5})
	})
	mux.HandleFunc("/programs", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(server.ProgramsResponse{
			Programs:      []server.ProgramInfo{{Name: "fir.mmx"}, {Name: "fft.c"}},
			DispatchModes: []string{"block", "predecode", "generic"},
		})
	})
	mux.HandleFunc("/run", func(w http.ResponseWriter, r *http.Request) {
		f.lastID.Store(r.Header.Get(server.RequestIDHeader))
		// Drain the body before stalling: the server only notices a client
		// disconnect (r.Context()) once the request body is consumed.
		body, _ := io.ReadAll(r.Body)
		if d := f.runDelay.Load(); d > 0 {
			select {
			case <-time.After(time.Duration(d)):
			case <-r.Context().Done():
				return
			}
		}
		if f.run429.Load() {
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		f.runs.Add(1)
		var req struct {
			Program string `json:"program"`
		}
		json.Unmarshal(body, &req)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"program":%q,"served_by":%q,"report":{"Name":%q,"Cycles":42}}`,
			req.Program, f.ts.URL, req.Program)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

// newTestCoordinator wires a coordinator over the fakes with fast,
// test-friendly timings. The prober is NOT started; tests call ProbeAll.
func newTestCoordinator(t *testing.T, cfg Config, fakes ...*fakeBackend) (*Coordinator, *httptest.Server) {
	t.Helper()
	for _, f := range fakes {
		cfg.Backends = append(cfg.Backends, f.ts.URL)
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 10 * time.Millisecond
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	// Routing tests count backend arrivals, so identical repeats must route
	// every time; result caching is opt-in per test.
	if cfg.ResultCacheEntries == 0 {
		cfg.ResultCacheEntries = -1
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(c.Stop)
	return c, ts
}

func postRun(t *testing.T, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

const firBody = `{"program":"fir.mmx","dispatch":"block","skip_check":true}`

func TestHRWRankingIsStableAndMinimal(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	c, err := New(Config{Backends: urls})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	keys := make([]string, 50)
	for i := range keys {
		keys[i] = fmt.Sprintf("prog%d.mmx|block|cfg", i)
	}
	first := map[string]string{}
	for _, k := range keys {
		r := c.rank(k)
		if len(r) != 4 {
			t.Fatalf("rank(%q) returned %d backends", k, len(r))
		}
		if got := c.rank(k); got[0] != r[0] {
			t.Fatalf("rank(%q) unstable", k)
		}
		first[k] = r[0].url
	}
	// Spread: with 50 keys and 4 backends every backend should win some.
	wins := map[string]int{}
	for _, u := range first {
		wins[u]++
	}
	if len(wins) != 4 {
		t.Errorf("HRW first choices hit only %d of 4 backends: %v", len(wins), wins)
	}
	// Minimal disruption: killing one backend remaps only its own keys.
	dead := c.backends[0]
	dead.mu.Lock()
	dead.state = StateDead
	dead.mu.Unlock()
	for _, k := range keys {
		got := c.rank(k)[0].url
		if first[k] == dead.url {
			if got == dead.url {
				t.Fatalf("key %q still routed to dead backend", k)
			}
			continue
		}
		if got != first[k] {
			t.Errorf("key %q remapped %s -> %s though its target is alive", k, first[k], got)
		}
	}
}

func TestProberMarksDeadAndReadmits(t *testing.T) {
	f := newFakeBackend(t)
	c, _ := newTestCoordinator(t, Config{FailThreshold: 3}, f)

	c.ProbeAll()
	if st := c.Backends()[0]; st.State != StateHealthy {
		t.Fatalf("state %s after good probe, want healthy", st.State)
	}

	f.healthy.Store(false)
	c.ProbeAll()
	if st := c.Backends()[0]; st.State != StateSuspect {
		t.Fatalf("state %s after 1 failure, want suspect (still routable)", st.State)
	}
	if len(c.routableBackends()) != 1 {
		t.Fatal("suspect backend should remain routable")
	}
	c.ProbeAll()
	c.ProbeAll()
	if st := c.Backends()[0]; st.State != StateDead {
		t.Fatalf("state %s after 3 failures, want dead", st.State)
	}
	if len(c.routableBackends()) != 0 {
		t.Fatal("dead backend must not be routable")
	}
	if c.Snapshot().Deaths != 1 {
		t.Errorf("deaths = %d, want 1", c.Snapshot().Deaths)
	}

	// Recovery: one good probe re-admits.
	f.healthy.Store(true)
	c.ProbeAll()
	if st := c.Backends()[0]; st.State != StateHealthy {
		t.Fatalf("state %s after recovery probe, want healthy", st.State)
	}
	if c.Snapshot().Readmissions != 1 {
		t.Errorf("readmissions = %d, want 1", c.Snapshot().Readmissions)
	}
}

func TestProbeBackoffSchedule(t *testing.T) {
	f := newFakeBackend(t)
	f.healthy.Store(false)
	c, _ := newTestCoordinator(t, Config{
		ProbeInterval:   100 * time.Millisecond,
		MaxProbeBackoff: 300 * time.Millisecond,
	}, f)
	c.ProbeAll() // fail #1: backoff 100ms
	b := c.backends[0]
	if b.dueForProbe(time.Now()) {
		t.Fatal("backend due immediately after a failed probe; want backoff")
	}
	if !b.dueForProbe(time.Now().Add(150 * time.Millisecond)) {
		t.Fatal("backend not due after first backoff elapsed")
	}
	c.ProbeAll() // fail #2: backoff 200ms
	c.ProbeAll() // fail #3: backoff 400ms -> capped at 300ms
	if b.dueForProbe(time.Now().Add(250 * time.Millisecond)) {
		t.Fatal("backoff did not grow with the failure streak")
	}
	if !b.dueForProbe(time.Now().Add(350 * time.Millisecond)) {
		t.Fatal("backoff exceeded MaxProbeBackoff")
	}
}

func TestRetryOn429FailsOverToAnotherBackend(t *testing.T) {
	shedding, ok := newFakeBackend(t), newFakeBackend(t)
	shedding.run429.Store(true)
	c, ts := newTestCoordinator(t, Config{Retries: 2}, shedding, ok)
	c.ProbeAll()

	for i := 0; i < 4; i++ {
		resp, body := postRun(t, ts.URL, firBody, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if got := resp.Header.Get(BackendHeader); got != ok.ts.URL {
			t.Fatalf("served by %q, want the non-shedding backend %q", got, ok.ts.URL)
		}
	}
	if ok.runs.Load() != 4 {
		t.Errorf("healthy backend served %d runs, want 4", ok.runs.Load())
	}
}

func TestRetryExhausted429RelaysWithRetryAfter(t *testing.T) {
	a, b := newFakeBackend(t), newFakeBackend(t)
	a.run429.Store(true)
	b.run429.Store(true)
	c, ts := newTestCoordinator(t, Config{Retries: 1}, a, b)
	c.ProbeAll()

	resp, _ := postRun(t, ts.URL, firBody, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 relayed", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("relayed 429 missing Retry-After")
	}
	if c.Snapshot().Retries == 0 {
		t.Error("retry counter did not move")
	}
}

func TestConnErrorFailsOverAndKillsBackend(t *testing.T) {
	live := newFakeBackend(t)
	corpse := newFakeBackend(t)
	corpseURL := corpse.ts.URL
	corpse.ts.Close() // connection refused from the start

	cfg := Config{Retries: 3, FailThreshold: 1}
	cfg.Backends = []string{corpseURL}
	c, ts := newTestCoordinator(t, cfg, live)

	// Sweep distinct keys: some of them rank the corpse as the affinity
	// target, and every request must still succeed via failover.
	for i := 0; i < 8; i++ {
		body := fmt.Sprintf(`{"program":"prog%d.mmx","skip_check":true}`, i)
		resp, data := postRun(t, ts.URL, body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("key %d: status %d: %s", i, resp.StatusCode, data)
		}
		if got := resp.Header.Get(BackendHeader); got != live.ts.URL {
			t.Fatalf("key %d served by %q, want %q", i, got, live.ts.URL)
		}
	}
	// The wire errors alone (FailThreshold=1) must have killed the corpse.
	for _, st := range c.Backends() {
		if st.URL == corpseURL && st.State != StateDead {
			t.Errorf("backend %s state %s after conn error, want dead", st.URL, st.State)
		}
	}
}

func TestShedWhenNoRoutableBackend(t *testing.T) {
	f := newFakeBackend(t)
	f.healthy.Store(false)
	c, ts := newTestCoordinator(t, Config{FailThreshold: 1}, f)
	c.ProbeAll()

	resp, _ := postRun(t, ts.URL, firBody, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 shed", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if c.Snapshot().Shed != 1 {
		t.Errorf("shed counter %d, want 1", c.Snapshot().Shed)
	}

	// /healthz mirrors the registry so an upstream LB sheds too.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("coordinator /healthz %d with no routable backends, want 503", hresp.StatusCode)
	}
}

func TestHedgedRequestWins(t *testing.T) {
	a, b := newFakeBackend(t), newFakeBackend(t)
	c, ts := newTestCoordinator(t, Config{HedgeAfter: 20 * time.Millisecond}, a, b)
	c.ProbeAll()

	// Find which backend is the affinity target for this key and make it
	// slow, so the hedge to the other must win.
	req, err := server.ParseRunRequest([]byte(firBody))
	if err != nil {
		t.Fatal(err)
	}
	order := c.rank(req.CacheKey())
	slow, fast := a, b
	if order[0].url == b.ts.URL {
		slow, fast = b, a
	}
	slow.runDelay.Store(int64(500 * time.Millisecond))

	start := time.Now()
	resp, body := postRun(t, ts.URL, firBody, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Errorf("hedged request took %v; the hedge should have won long before the slow primary", elapsed)
	}
	if got := resp.Header.Get(BackendHeader); got != fast.ts.URL {
		t.Errorf("served by %q, want the hedged backend %q", got, fast.ts.URL)
	}
	snap := c.Snapshot()
	if snap.Hedges != 1 || snap.HedgeWins != 1 {
		t.Errorf("hedges=%d wins=%d, want 1/1", snap.Hedges, snap.HedgeWins)
	}
}

func TestSaturationFallsBackToLeastLoaded(t *testing.T) {
	a, b := newFakeBackend(t), newFakeBackend(t)
	c, ts := newTestCoordinator(t, Config{QueueSaturation: 8}, a, b)

	req, err := server.ParseRunRequest([]byte(firBody))
	if err != nil {
		t.Fatal(err)
	}
	order := c.rank(req.CacheKey())
	affinity, other := a, b
	if order[0].url == b.ts.URL {
		affinity, other = b, a
	}
	affinity.queue.Store(50) // deep backlog at the affinity target
	c.ProbeAll()

	resp, body := postRun(t, ts.URL, firBody, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(BackendHeader); got != other.ts.URL {
		t.Errorf("served by %q, want least-loaded %q", got, other.ts.URL)
	}
	snap := c.Snapshot()
	if snap.Fallbacks != 1 {
		t.Errorf("fallbacks=%d, want 1", snap.Fallbacks)
	}
}

func TestRequestIDPropagatesToBackend(t *testing.T) {
	f := newFakeBackend(t)
	c, ts := newTestCoordinator(t, Config{}, f)
	c.ProbeAll()

	resp, _ := postRun(t, ts.URL, firBody, map[string]string{server.RequestIDHeader: "fleet-trace-7"})
	if got := resp.Header.Get(server.RequestIDHeader); got != "fleet-trace-7" {
		t.Errorf("coordinator echoed %q, want fleet-trace-7", got)
	}
	if got, _ := f.lastID.Load().(string); got != "fleet-trace-7" {
		t.Errorf("backend saw request ID %q, want fleet-trace-7", got)
	}

	// No client ID: the coordinator mints one and the backend sees it.
	resp, _ = postRun(t, ts.URL, firBody, nil)
	minted := resp.Header.Get(server.RequestIDHeader)
	if minted == "" {
		t.Fatal("coordinator response missing generated request ID")
	}
	if got, _ := f.lastID.Load().(string); got != minted {
		t.Errorf("backend saw %q, coordinator echoed %q", got, minted)
	}
}

func TestCoordinatorValidatesBeforeRouting(t *testing.T) {
	f := newFakeBackend(t)
	c, ts := newTestCoordinator(t, Config{}, f)
	c.ProbeAll()

	for _, bad := range []string{
		`not json`,
		`{"program":""}`,
		`{"program":"fir.mmx","dispatch":"warp"}`,
		`{"program":"fir.mmx","max_instrs":-1}`,
	} {
		resp, _ := postRun(t, ts.URL, bad, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	if f.runs.Load() != 0 {
		t.Errorf("invalid requests reached a backend (%d runs)", f.runs.Load())
	}
}

func TestParseSuiteRequest(t *testing.T) {
	good := []string{
		``, `{}`, `{"dispatch":"block"}`, `{"part":1,"of":4}`,
		`{"config":{"perfect_cache":true},"timeout_ms":100}`,
	}
	for _, g := range good {
		if _, err := parseSuiteRequest([]byte(g)); err != nil {
			t.Errorf("parseSuiteRequest(%q) = %v, want ok", g, err)
		}
	}
	bad := []string{
		`{"dispatch":"warp"}`, `{"timeout_ms":-1}`,
		`{"part":4,"of":4}`, `{"part":-1,"of":2}`, `{"of":-1}`,
		`{"unknown_field":1}`,
	}
	for _, b := range bad {
		if _, err := parseSuiteRequest([]byte(b)); err == nil {
			t.Errorf("parseSuiteRequest(%q) accepted, want error", b)
		}
	}
}

func TestProgramsDiscoveryProxied(t *testing.T) {
	f := newFakeBackend(t)
	c, ts := newTestCoordinator(t, Config{}, f)
	c.ProbeAll()

	resp, err := http.Get(ts.URL + "/programs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr server.ProgramsResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Programs) != 2 || pr.Programs[0].Name != "fir.mmx" {
		t.Errorf("proxied programs %+v", pr.Programs)
	}
}

func TestProbeLoopRunsAndRecovers(t *testing.T) {
	f := newFakeBackend(t)
	f.healthy.Store(false)
	c, _ := newTestCoordinator(t, Config{
		ProbeInterval: 10 * time.Millisecond,
		FailThreshold: 1,
	}, f)
	c.Start()
	defer c.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for len(c.routableBackends()) != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(c.routableBackends()) != 0 {
		t.Fatal("prober never marked the failing backend dead")
	}
	f.healthy.Store(true)
	for len(c.routableBackends()) != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(c.routableBackends()) != 1 {
		t.Fatal("prober never re-admitted the recovered backend")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no backends should fail")
	}
	if _, err := New(Config{Backends: []string{"::bad::"}}); err == nil {
		t.Error("New with a malformed URL should fail")
	}
	if _, err := New(Config{Backends: []string{"http://a:1", "http://a:1"}}); err == nil {
		t.Error("New with duplicate backends should fail")
	}
}
