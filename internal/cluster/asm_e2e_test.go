// End-to-end tests for user-submitted programs through the fleet: /asm
// routed by source hash must serve the same report bytes as /run of the
// registry program, repeat submissions must stay affine to one warm
// backend cache, and a two-tenant flood (bulk + interactive) must keep
// interactive latency bounded — including across a backend dying
// mid-burst, with zero failed interactive responses.
package cluster_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mmxdsp/internal/cluster"
	"mmxdsp/internal/server"
	"mmxdsp/internal/suite"
)

// asmFleetBody renders a /asm request body with proper escaping.
func asmFleetBody(t *testing.T, fields map[string]any) string {
	t.Helper()
	data, err := json.Marshal(fields)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// postFleetAsm submits one /asm through the coordinator with headers.
func postFleetAsm(t *testing.T, url, body string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/asm", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /asm: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// suiteSource serializes one suite program back to listing text.
func suiteSource(t *testing.T, name string) string {
	t.Helper()
	bench, ok := suite.ByName(name)
	if !ok {
		t.Fatalf("unknown suite program %q", name)
	}
	prog, err := bench.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog.Source()
}

// TestFleetAsmConformanceAndAffinity: a suite program submitted as source
// through the fleet yields the same report bytes as /run of the registry
// program through the fleet, and repeat submissions of one source all land
// on one backend whose compiled-program cache answers warm.
func TestFleetAsmConformanceAndAffinity(t *testing.T) {
	if testing.Short() {
		t.Skip("real runs through the fleet; skipped in -short mode")
	}
	f := newFleet(t, 2, cluster.Config{})
	source := suiteSource(t, "fir.mmx")

	// Conformance through the relay: /asm report bytes == /run report bytes.
	resp, runData := f.run(t, `{"program":"fir.mmx","dispatch":"block","skip_check":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/run: status %d: %s", resp.StatusCode, runData)
	}
	body := asmFleetBody(t, map[string]any{"source": source, "name": "fir.mmx", "dispatch": "block"})
	resp, asmData := postFleetAsm(t, f.ts.URL, body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/asm: status %d: %s", resp.StatusCode, asmData)
	}
	if got, want := reportOf(t, asmData), reportOf(t, runData); got != want {
		t.Error("/asm report through the fleet differs from /run report")
	}

	// Affinity: repeats of one source stick to one backend, warm.
	const repeats = 15
	target := resp.Header.Get(cluster.BackendHeader)
	for i := 0; i < repeats; i++ {
		resp, data := postFleetAsm(t, f.ts.URL, body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("repeat %d: status %d: %s", i, resp.StatusCode, data)
		}
		if by := resp.Header.Get(cluster.BackendHeader); by != target {
			t.Fatalf("repeat %d routed to %s, earlier ones to %s — affinity broken", i, by, target)
		}
	}
	mresp, err := http.Get(target + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap server.MetricsSnapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.AsmRuns != repeats+1 {
		t.Errorf("routed backend served %d asm runs, want %d", snap.AsmRuns, repeats+1)
	}
	if snap.CacheHits < repeats {
		t.Errorf("routed backend compiled-cache hits = %d, want >= %d (affinity should keep it warm)",
			snap.CacheHits, repeats)
	}
	if got := f.coord.Snapshot().AsmRequests; got != int64(repeats+1) {
		t.Errorf("coordinator asm_requests = %d, want %d", got, repeats+1)
	}
}

// TestFleetTwoTenantFloodSurvivesBackendDeath is the multi-tenant
// acceptance gate: a bulk tenant floods a 2-backend fleet with budgeted
// spin submissions while an interactive tenant submits real work; one
// backend is killed mid-burst. Every interactive response must succeed
// (retries re-route around the death), and interactive p99 stays bounded.
func TestFleetTwoTenantFloodSurvivesBackendDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained two-tenant flood; skipped in -short mode")
	}
	f := newFleet(t, 2, cluster.Config{Retries: 4, FailThreshold: 1})

	// Bulk flood: budgeted infinite loops, ~tens of ms of simulation each,
	// distinct sources so every submission compiles and runs.
	stopBulk := make(chan struct{})
	var bulkOK, bulkShed, bulkOther atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopBulk:
					return
				default:
				}
				src := fmt.Sprintf(".proc main\n\tprofon\n\tmov ecx, %d\nspin:\n\tadd eax, 1\n\tjmp spin\n", g*1000+i)
				body := asmFleetBody(t, map[string]any{"source": src, "max_instrs": 2000000})
				req, err := http.NewRequest(http.MethodPost, f.ts.URL+"/asm", strings.NewReader(body))
				if err != nil {
					bulkOther.Add(1)
					continue
				}
				req.Header.Set(server.TenantHeader, "bulk-tenant")
				req.Header.Set(server.PriorityHeader, "bulk")
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					bulkOther.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					bulkOK.Add(1)
				case http.StatusTooManyRequests:
					bulkShed.Add(1)
				default:
					bulkOther.Add(1)
				}
			}
		}()
	}

	// Interactive tenant: real suite work, latency measured per request.
	source := suiteSource(t, "fir.mmx")
	body := asmFleetBody(t, map[string]any{"source": source, "name": "fir.mmx", "dispatch": "block"})
	headers := map[string]string{server.TenantHeader: "interactive-tenant"}
	const interactiveReqs = 30
	var latencies []time.Duration
	failed := 0
	for i := 0; i < interactiveReqs; i++ {
		if i == interactiveReqs/2 {
			// Kill a backend mid-burst; in-flight work fails over.
			f.backends[0].CloseClientConnections()
			f.backends[0].Close()
		}
		start := time.Now()
		resp, data := postFleetAsm(t, f.ts.URL, body, headers)
		latencies = append(latencies, time.Since(start))
		if resp.StatusCode != http.StatusOK {
			failed++
			t.Errorf("interactive request %d: status %d: %.200s", i, resp.StatusCode, data)
		}
	}
	close(stopBulk)
	wg.Wait()

	if failed != 0 {
		t.Fatalf("%d interactive responses failed across the backend death, want 0", failed)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	if p99 > 5*time.Second {
		t.Errorf("interactive p99 = %v under bulk flood, want < 5s", p99)
	}
	if bulkOK.Load() == 0 {
		t.Error("bulk tenant completed zero runs — the flood never ran")
	}
	t.Logf("bulk: ok=%d shed=%d other=%d; interactive p99=%v",
		bulkOK.Load(), bulkShed.Load(), bulkOther.Load(), p99)

	// The surviving backend accounts both tenants separately.
	mresp, err := http.Get(f.backends[1].URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap server.MetricsSnapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Tenants["interactive-tenant"]; !ok {
		t.Errorf("surviving backend has no per-tenant stats for the interactive tenant: %v", snap.Tenants)
	}
}
