// The /asm data path: the coordinator validates and keys a user-submitted
// program coordinator-side (malformed JSON or an oversized listing never
// costs a backend round-trip), then routes it by rendezvous-hashing the
// source hash — repeat submissions of the same listing land on the backend
// whose compiled-program cache already holds it. Assembly errors stay a
// backend concern: the listing is only parsed where it runs, and the
// backend's 400 (with line/column) is relayed verbatim.
package cluster

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"mmxdsp/internal/server"
)

func (c *Coordinator) handleAsm(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if c.draining.Load() {
		c.shed(w, errors.New("coordinator is draining"))
		return
	}
	// The JSON envelope is larger than the listing it carries (escaping,
	// field names), so the body cap leaves headroom over the source cap.
	limit := int64(2*c.cfg.MaxSourceBytes) + 1<<20
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	if int64(len(body)) > limit {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", limit))
		return
	}
	req, err := server.ParseAsmRequest(body, c.cfg.MaxSourceBytes)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, server.ErrSourceTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return
	}
	c.metrics.asmRequests.Add(1)
	c.routeCached(w, r, req.CacheKey(), req.ResultKey(), callFor(w, r, "/asm", body))
}
