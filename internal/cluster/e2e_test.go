// End-to-end tests for the fleet: a coordinator fronting real mmxd
// servers (the actual internal/server implementation, full simulations)
// must serve every suite program byte-identical to direct runs, survive a
// backend dying mid-suite with zero failed responses, and keep repeat
// requests affine to one warm backend cache.
package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mmxdsp/internal/cluster"
	"mmxdsp/internal/core"
	"mmxdsp/internal/server"
	"mmxdsp/internal/suite"
)

// fleet spins n real mmxd servers and a coordinator over them.
type fleet struct {
	backends []*httptest.Server
	coord    *cluster.Coordinator
	ts       *httptest.Server
}

func newFleet(t *testing.T, n int, cfg cluster.Config) *fleet {
	t.Helper()
	// Result caching is opt-in per test at both tiers: the routing and
	// affinity tests count backend executions, so repeats must re-route.
	if cfg.ResultCacheEntries == 0 {
		cfg.ResultCacheEntries = -1
	}
	backendCfg := server.Config{ResultCacheEntries: -1}
	if cfg.ResultCacheEntries > 0 {
		backendCfg.ResultCacheEntries = cfg.ResultCacheEntries
	}
	f := &fleet{}
	for i := 0; i < n; i++ {
		bts := httptest.NewServer(server.New(backendCfg).Handler())
		t.Cleanup(bts.Close)
		f.backends = append(f.backends, bts)
		cfg.Backends = append(cfg.Backends, bts.URL)
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	coord, err := cluster.New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	f.coord = coord
	coord.ProbeAll()
	f.ts = httptest.NewServer(coord.Handler())
	t.Cleanup(f.ts.Close)
	t.Cleanup(coord.Stop)
	return f
}

func (f *fleet) run(t *testing.T, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(f.ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// reportOf extracts the report JSON from a /run response body, compacted
// so it compares byte-for-byte against a direct json.Marshal of the same
// report (the daemon pretty-prints responses).
func reportOf(t *testing.T, data []byte) string {
	t.Helper()
	var env struct {
		Report json.RawMessage `json:"report"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("decoding run response: %v", err)
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, env.Report); err != nil {
		t.Fatalf("compacting report: %v", err)
	}
	return buf.String()
}

// TestFleetServesSuiteByteIdentical is the fleet acceptance gate: all 19
// programs served through a 2-backend fleet match direct single-process
// runs byte for byte, and the scatter-gathered /suite reassembles the same
// Table 2/3 artifacts a lone daemon's /table would produce.
func TestFleetServesSuiteByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite through the fleet; skipped in -short mode")
	}
	f := newFleet(t, 2, cluster.Config{})

	benches := suite.All()
	direct, err := core.RunAll(benches, core.Options{SkipCheck: true, Dispatch: core.DispatchBlock})
	if err != nil {
		t.Fatalf("direct RunAll: %v", err)
	}
	want := map[string]string{}
	for name, res := range direct {
		data, err := json.Marshal(res.Report)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = string(data)
	}

	served := map[string]bool{} // backend URL -> served something
	for _, bench := range benches {
		name := bench.Name()
		body := fmt.Sprintf(`{"program":%q,"dispatch":"block","skip_check":true}`, name)
		resp, data := f.run(t, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, data)
		}
		served[resp.Header.Get(cluster.BackendHeader)] = true
		if got := reportOf(t, data); got != want[name] {
			t.Errorf("%s: served report differs from direct run", name)
		}
	}
	if len(served) < 2 {
		t.Errorf("all programs landed on one backend (%v); HRW should spread the suite", served)
	}

	// Scatter-gathered tables must match tables rendered from direct runs.
	resp, err := http.Post(f.ts.URL+"/suite", "application/json", strings.NewReader(`{"dispatch":"block"}`))
	if err != nil {
		t.Fatalf("POST /suite: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/suite status %d: %s", resp.StatusCode, data)
	}
	var sr cluster.SuiteResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Programs != len(benches) {
		t.Errorf("/suite ran %d programs, want %d", sr.Programs, len(benches))
	}
	if sr.Table2 != core.Table2(direct) {
		t.Error("/suite Table 2 differs from direct-run rendering")
	}
	if sr.Table2CSV != core.Table2CSV(direct) {
		t.Error("/suite Table 2 CSV differs from direct-run rendering")
	}
	if sr.Table3 != core.Table3(direct) {
		t.Error("/suite Table 3 differs from direct-run rendering")
	}
	if sr.Table3CSV != core.Table3CSV(direct) {
		t.Error("/suite Table 3 CSV differs from direct-run rendering")
	}
}

// TestFleetSurvivesBackendDeathMidSuite kills one of three backends while
// a scatter-gathered suite is in flight; retries must re-route its work
// and the suite must complete with zero failed programs.
func TestFleetSurvivesBackendDeathMidSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite through the fleet; skipped in -short mode")
	}
	f := newFleet(t, 3, cluster.Config{Retries: 4, FailThreshold: 1})

	type suiteResult struct {
		status int
		body   []byte
	}
	done := make(chan suiteResult, 1)
	go func() {
		resp, err := http.Post(f.ts.URL+"/suite", "application/json", strings.NewReader(`{"dispatch":"block"}`))
		if err != nil {
			done <- suiteResult{status: -1, body: []byte(err.Error())}
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		done <- suiteResult{status: resp.StatusCode, body: data}
	}()

	// Kill backend 0 as soon as it has served at least one run (we are
	// then provably mid-suite), or after 2s as a backstop.
	victim := f.backends[0]
	killed := false
	deadline := time.Now().Add(2 * time.Second)
	for !killed && time.Now().Before(deadline) {
		resp, err := http.Get(victim.URL + "/metrics")
		if err != nil {
			break
		}
		var snap server.MetricsSnapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err == nil && snap.RunsOK >= 1 {
			victim.CloseClientConnections()
			victim.Close()
			killed = true
		}
		select {
		case r := <-done:
			// The suite finished before the victim served anything (or
			// before we could kill it) — still assert success, but the
			// mid-suite property was not exercised this round.
			t.Logf("suite finished before kill (killed=%t)", killed)
			assertSuiteOK(t, r.status, r.body)
			return
		case <-time.After(5 * time.Millisecond):
		}
	}
	if !killed {
		victim.CloseClientConnections()
		victim.Close()
	}

	r := <-done
	assertSuiteOK(t, r.status, r.body)

	// The victim must be dead in the registry; the survivors healthy.
	dead := 0
	for _, st := range f.coord.Backends() {
		if st.State == cluster.StateDead {
			dead++
		}
	}
	if dead != 1 {
		t.Errorf("%d dead backends in the registry, want exactly the victim", dead)
	}
}

func assertSuiteOK(t *testing.T, status int, body []byte) {
	t.Helper()
	if status != http.StatusOK {
		t.Fatalf("/suite status %d: %s", status, body)
	}
	var sr cluster.SuiteResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if want := len(suite.Names()); sr.Programs != want {
		t.Fatalf("suite completed %d programs, want %d", sr.Programs, want)
	}
	if !strings.Contains(sr.Table2, "fir.mmx") || !strings.Contains(sr.Table3, "jpeg.c") {
		t.Error("suite tables look incomplete")
	}
}

// TestFleetAffinityCacheHitRate pins the routing contract: repeat requests
// for one (program, dispatch, config) triple all land on the same backend,
// and that backend's compiled-program cache hit rate exceeds 90%.
func TestFleetAffinityCacheHitRate(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated real runs; skipped in -short mode")
	}
	f := newFleet(t, 4, cluster.Config{})

	const reqs = 30
	body := `{"program":"fir.mmx","dispatch":"block","skip_check":true}`
	target := ""
	for i := 0; i < reqs; i++ {
		resp, data := f.run(t, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, data)
		}
		by := resp.Header.Get(cluster.BackendHeader)
		if target == "" {
			target = by
		} else if by != target {
			t.Fatalf("request %d routed to %s, earlier ones to %s — affinity broken", i, by, target)
		}
	}

	resp, err := http.Get(target + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap server.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.CacheHitRate <= 0.9 {
		t.Errorf("routed backend cache hit rate %.3f, want > 0.9", snap.CacheHitRate)
	}
	if snap.RunsOK != reqs {
		t.Errorf("routed backend served %d runs, want %d", snap.RunsOK, reqs)
	}
	if got := f.coord.Snapshot().AffinityHits; got != reqs {
		t.Errorf("coordinator affinity routes %d, want %d", got, reqs)
	}
}

// TestFleetResultCacheBothTiers enables result caching at the coordinator
// AND the backends: the first request for a key misses through both tiers
// and executes once; every repeat is answered by the coordinator without a
// backend round-trip, byte-identical; and a repeated /suite costs zero
// additional backend executions.
func TestFleetResultCacheBothTiers(t *testing.T) {
	if testing.Short() {
		t.Skip("real runs through the fleet; skipped in -short mode")
	}
	f := newFleet(t, 2, cluster.Config{ResultCacheEntries: 256})

	body := `{"program":"fir.mmx","dispatch":"block","skip_check":true}`
	resp1, data1 := f.run(t, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d: %s", resp1.StatusCode, data1)
	}
	if got := resp1.Header.Get(server.ResultCacheHeader); got != "miss" {
		t.Errorf("first run cache header = %q, want miss", got)
	}
	etag := resp1.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag through the fleet")
	}

	const repeats = 20
	for i := 0; i < repeats; i++ {
		resp, data := f.run(t, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("repeat %d: status %d", i, resp.StatusCode)
		}
		if got := resp.Header.Get(server.ResultCacheHeader); got != "hit" {
			t.Errorf("repeat %d cache header = %q, want hit", i, got)
		}
		if string(data) != string(data1) {
			t.Fatalf("repeat %d served different bytes", i)
		}
	}

	// Exactly one backend execution total: the coordinator absorbed every
	// repeat.
	var runs int64
	for _, bts := range f.backends {
		resp, err := http.Get(bts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var snap server.MetricsSnapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		runs += snap.RunsOK
	}
	if runs != 1 {
		t.Errorf("backends executed %d runs, want 1", runs)
	}
	snap := f.coord.Snapshot()
	if snap.ResultMisses != 1 || snap.ResultHits != repeats {
		t.Errorf("coordinator result hits/misses = %d/%d, want %d/1",
			snap.ResultHits, snap.ResultMisses, repeats)
	}
	if rate := snap.ResultHitRate; rate < 0.95 {
		t.Errorf("coordinator result-cache hit rate %.3f, want >= 0.95", rate)
	}

	// Revalidation through the fleet: the coordinator's own ETag answers 304.
	req, err := http.NewRequest(http.MethodPost, f.ts.URL+"/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("If-None-Match through the fleet: status %d, want 304", resp.StatusCode)
	}
}

// TestFleetSuiteWarmsFromRunTraffic pins the /suite-through-the-cache
// contract: a second identical /suite re-gathers every program from the
// coordinator's result cache, costing zero additional backend executions.
func TestFleetSuiteWarmsFromRunTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite through the fleet; skipped in -short mode")
	}
	f := newFleet(t, 2, cluster.Config{ResultCacheEntries: 256})

	post := func() (int, []byte) {
		resp, err := http.Post(f.ts.URL+"/suite", "application/json", strings.NewReader(`{"dispatch":"block"}`))
		if err != nil {
			t.Fatalf("POST /suite: %v", err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data
	}
	backendRuns := func() int64 {
		var runs int64
		for _, bts := range f.backends {
			resp, err := http.Get(bts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			var snap server.MetricsSnapshot
			err = json.NewDecoder(resp.Body).Decode(&snap)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			runs += snap.RunsOK
		}
		return runs
	}

	status, data1 := post()
	if status != http.StatusOK {
		t.Fatalf("first /suite: status %d: %s", status, data1)
	}
	cold := backendRuns()
	if want := int64(len(suite.Names())); cold != want {
		t.Fatalf("first /suite executed %d backend runs, want %d", cold, want)
	}

	status, data2 := post()
	if status != http.StatusOK {
		t.Fatalf("second /suite: status %d", status)
	}
	if string(data1) != string(data2) {
		t.Error("repeated /suite produced different bytes")
	}
	if warm := backendRuns(); warm != cold {
		t.Errorf("second /suite executed %d extra backend runs, want 0", warm-cold)
	}
}
