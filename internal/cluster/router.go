// Cache-affinity routing. Each /run is keyed by the same
// (program, dispatch, config) string the backends' compiled-program caches
// use, and backends are ranked by rendezvous (highest-random-weight)
// hashing of (backend, key): every coordinator ranks identically with no
// shared state, each key has a stable first choice so repeat requests hit
// a warm cache, and when a backend dies only its own keys remap — the rest
// of the fleet keeps its artifacts hot. The first choice is overridden
// only when it is saturated (coordinator in-flight or probed queue depth
// over threshold), in which case the least-loaded routable backend takes
// the request.
package cluster

import (
	"hash/fnv"
	"sort"
)

// hrwScore is the rendezvous weight of backend url for key.
func hrwScore(url, key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(url))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// rank orders the routable backends by descending rendezvous weight for
// key. Index 0 is the affinity target; later entries are the deterministic
// retry/hedge order.
func (c *Coordinator) rank(key string) []*backend {
	backends := c.routableBackends()
	type scored struct {
		b     *backend
		score uint64
	}
	ranked := make([]scored, len(backends))
	for i, b := range backends {
		ranked[i] = scored{b, hrwScore(b.url, key)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].b.url < ranked[j].b.url // total order for equal hashes
	})
	out := make([]*backend, len(ranked))
	for i, s := range ranked {
		out[i] = s.b
	}
	return out
}

// saturated reports whether the affinity target should be bypassed.
func (c *Coordinator) saturated(b *backend) bool {
	if c.cfg.MaxInflight > 0 && b.inflight.Load() >= c.cfg.MaxInflight {
		return true
	}
	return c.cfg.QueueSaturation > 0 && b.load() >= c.cfg.QueueSaturation
}

// allSaturated reports whether every backend in the attempt order is
// saturated — the condition under which bulk-priority traffic sheds at
// the coordinator instead of queueing ahead of interactive work.
func (c *Coordinator) allSaturated(order []*backend) bool {
	for _, b := range order {
		if !c.saturated(b) {
			return false
		}
	}
	return len(order) > 0
}

// routeOrder returns the attempt order for key: the HRW ranking, with the
// least-loaded backend promoted to the front when the affinity target is
// saturated. The second return reports whether the affinity choice held.
func (c *Coordinator) routeOrder(key string) ([]*backend, bool) {
	ranked := c.rank(key)
	if len(ranked) <= 1 || !c.saturated(ranked[0]) {
		return ranked, true
	}
	least := 0
	for i, b := range ranked {
		if b.load() < ranked[least].load() {
			least = i
		}
	}
	if least == 0 {
		// Everyone is at least as loaded as the affinity target; stick
		// with affinity and let admission control sort it out.
		return ranked, true
	}
	reordered := make([]*backend, 0, len(ranked))
	reordered = append(reordered, ranked[least])
	for i, b := range ranked {
		if i != least {
			reordered = append(reordered, b)
		}
	}
	return reordered, false
}
