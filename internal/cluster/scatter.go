// Scatter-gather: POST /suite fans one full table run across the fleet —
// one routed /run per program, so every request gets affinity routing,
// retries and hedging for free — and reassembles the gathered reports into
// the paper's Table 2/3 artifacts through core's existing renderers. With
// identical reports the artifacts are byte-identical to a single daemon's
// GET /table. An optional (part, of) shard selector serves a slice of the
// suite, cut with core.Partition, so an upstream tier can split the work
// further.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"mmxdsp/internal/core"
	"mmxdsp/internal/profile"
	"mmxdsp/internal/server"
)

// SuiteRequest is the JSON body of POST /suite. An empty body (or empty
// object) runs the whole suite with default options.
type SuiteRequest struct {
	// Dispatch selects the backends' interpreter loop ("", "auto",
	// "trace", "block", "predecode", "generic").
	Dispatch string `json:"dispatch,omitempty"`
	// TimeoutMS bounds each routed program run (0 = backend default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Config carries timing-model ablations, applied to every program.
	Config *server.ConfigOverride `json:"config,omitempty"`
	// Part/Of, when Of > 0, select shard Part (0-based) of a suite split
	// into Of contiguous parts.
	Part int `json:"part,omitempty"`
	Of   int `json:"of,omitempty"`
}

// SuiteResponse is the JSON body answering POST /suite. The table fields
// match the daemon's /table response byte for byte when the full suite ran.
type SuiteResponse struct {
	Dispatch  string `json:"dispatch"`
	Programs  int    `json:"programs"`
	Part      int    `json:"part,omitempty"`
	Of        int    `json:"of,omitempty"`
	Table2    string `json:"table2"`
	Table2CSV string `json:"table2_csv"`
	Table3    string `json:"table3"`
	Table3CSV string `json:"table3_csv"`
}

func (c *Coordinator) handleSuite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if c.draining.Load() {
		c.shed(w, errors.New("coordinator is draining"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	req, err := parseSuiteRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	names, err := c.discoverPrograms(r.Context())
	if err != nil {
		c.shed(w, err)
		return
	}
	names, err = shardNames(names, req.Part, req.Of)
	if err != nil {
		// The selector parsed (part < of) but asks for finer sharding than
		// the fleet has programs. Partition clamps to len(names) parts, so
		// blindly indexing its result used to panic here; it is a client
		// error, answered as one.
		c.metrics.suiteFailed.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}

	reports, errs := c.scatter(r, names, req)
	if len(errs) > 0 {
		c.metrics.suiteFailed.Add(1)
		summary := fmt.Errorf("suite incomplete (%d of %d programs failed): %s",
			len(errs), len(names), strings.Join(errs, "; "))
		// A mid-scatter failure is only a fleet problem (502) when the fleet
		// actually failed; if the caller's context fired, the programs died
		// because the client went away (499) or its deadline hit (504).
		switch {
		case errors.Is(r.Context().Err(), context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, summary)
		case r.Context().Err() != nil:
			writeError(w, server.StatusClientClosedRequest, summary)
		default:
			writeError(w, http.StatusBadGateway, summary)
		}
		return
	}
	c.metrics.suiteRuns.Add(1)

	rs := core.ResultSetFromReports(reports)
	dispatch := req.Dispatch
	if dispatch == "" {
		dispatch = "auto"
	}
	writeJSON(w, http.StatusOK, SuiteResponse{
		Dispatch:  dispatch,
		Programs:  len(rs),
		Part:      req.Part,
		Of:        req.Of,
		Table2:    core.Table2(rs),
		Table2CSV: core.Table2CSV(rs),
		Table3:    core.Table3(rs),
		Table3CSV: core.Table3CSV(rs),
	})
}

// shardNames resolves a (part, of) selector against the discovered program
// list. Of == 0 means "no sharding". A selector finer than the program
// count is rejected: core.Partition clamps its part count to len(names),
// so indexing its result with the raw part number would walk off the end
// (historically a coordinator panic — now a 400).
func shardNames(names []string, part, of int) ([]string, error) {
	if of <= 0 {
		return names, nil
	}
	if of > len(names) {
		return nil, fmt.Errorf("shard selector of=%d exceeds the fleet's %d programs", of, len(names))
	}
	if part < 0 || part >= of {
		return nil, fmt.Errorf("bad shard selector part=%d of=%d", part, of)
	}
	return core.Partition(names, of)[part], nil
}

// parseSuiteRequest decodes a /suite body; empty means "whole suite,
// defaults".
func parseSuiteRequest(data []byte) (*SuiteRequest, error) {
	req := &SuiteRequest{}
	if len(bytes.TrimSpace(data)) == 0 {
		return req, nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		return nil, fmt.Errorf("invalid JSON: %w", err)
	}
	switch req.Dispatch {
	case "", "auto", core.DispatchBlock, core.DispatchTrace, core.DispatchPredecode, core.DispatchGeneric:
	default:
		return nil, fmt.Errorf("unknown dispatch mode %q", req.Dispatch)
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("negative timeout_ms %d", req.TimeoutMS)
	}
	if req.Of < 0 || (req.Of > 0 && (req.Part < 0 || req.Part >= req.Of)) {
		return nil, fmt.Errorf("bad shard selector part=%d of=%d", req.Part, req.Of)
	}
	return req, nil
}

// scatter fans the named programs across the fleet on a bounded worker
// pool (each worker owns one contiguous core.Partition shard) and gathers
// reports. Failed programs come back as error strings, in name order.
func (c *Coordinator) scatter(r *http.Request, names []string, req *SuiteRequest) ([]*profile.Report, []string) {
	workers := 2*len(c.routableBackends()) + 2
	type item struct {
		rep *profile.Report
		err error
	}
	results := make([]item, len(names))
	var wg sync.WaitGroup
	offset := 0
	for _, shard := range core.Partition(names, workers) {
		shard, off := shard, offset
		offset += len(shard)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, name := range shard {
				rep, err := c.runProgram(r, name, req)
				results[off+i] = item{rep, err}
			}
		}()
	}
	wg.Wait()

	reports := make([]*profile.Report, 0, len(names))
	var errs []string
	for i, it := range results {
		if it.err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", names[i], it.err))
			continue
		}
		reports = append(reports, it.rep)
	}
	return reports, errs
}

// runProgram routes one program of a scattered suite through the normal
// /run machinery (affinity, retries, hedging) and decodes its report. The
// run goes through the coordinator's result cache when enabled, so a
// /suite repeated under the same options — or overlapping plain /run
// traffic — costs no backend round-trips for the programs already cached.
func (c *Coordinator) runProgram(r *http.Request, name string, req *SuiteRequest) (*profile.Report, error) {
	rr := server.RunRequest{
		Program:   name,
		Dispatch:  req.Dispatch,
		TimeoutMS: req.TimeoutMS,
		SkipCheck: true, // /table semantics: validation is the tests' job
		Config:    req.Config,
	}
	body, err := json.Marshal(rr)
	if err != nil {
		return nil, err
	}
	respBody, err := c.fetchRun(r, &rr, body)
	if err != nil {
		return nil, err
	}
	var env struct {
		Report *profile.Report `json:"report"`
	}
	if err := json.Unmarshal(respBody, &env); err != nil {
		return nil, fmt.Errorf("decoding run response: %w", err)
	}
	if env.Report == nil {
		return nil, errors.New("run response carried no report")
	}
	return env.Report, nil
}

// fetchRun returns the response body of one routed 200 /run, through the
// result cache when enabled.
func (c *Coordinator) fetchRun(r *http.Request, rr *server.RunRequest, body []byte) ([]byte, error) {
	route := func() ([]byte, error) {
		resp, _, err := c.route(r.Context(), rr.CacheKey(), routedCall{
			path: "/run",
			body: body,
			id:   r.Header.Get(server.RequestIDHeader),
		})
		if err != nil {
			return nil, err
		}
		if resp.status != http.StatusOK {
			var e struct {
				Error string `json:"error"`
			}
			_ = json.Unmarshal(resp.body, &e)
			if e.Error == "" {
				e.Error = fmt.Sprintf("%d bytes", len(resp.body))
			}
			return nil, fmt.Errorf("backend status %d: %s", resp.status, e.Error)
		}
		return resp.body, nil
	}
	if c.results == nil {
		return route()
	}
	res, outcome, err := c.results.Do(r.Context(), rr.ResultKey(), route)
	if err != nil {
		return nil, err
	}
	c.metrics.recordResult(outcome)
	return res.Body, nil
}
