// Fleet campaigns: the coordinator owns the campaign resource and shards
// its points across healthy backends through the existing rendezvous
// routing — each point's /run body routes by the same CacheKey as direct
// traffic, so a point lands on the backend whose compiled-program and
// result caches are already warm, and a re-run campaign with one changed
// axis re-executes only the cold points. Point execution reuses the
// routed-call machinery (retries with re-ranking, hedging, least-loaded
// fallback), which is also the resilience story: a backend killed
// mid-campaign just makes its points re-route to survivors.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"mmxdsp/internal/campaign"
	"mmxdsp/internal/server"
)

// campaignLimits resolves the grid bounds from the coordinator config.
func (c *Coordinator) campaignLimits() campaign.Limits {
	lim := campaign.DefaultLimits()
	if c.cfg.CampaignMaxPoints > 0 {
		lim.MaxPoints = c.cfg.CampaignMaxPoints
	}
	return lim
}

// handleCampaign serves POST /campaign on the coordinator.
func (c *Coordinator) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if c.draining.Load() {
		c.shed(w, errors.New("coordinator is draining"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, points, err := campaign.ParseSpec(body, c.campaignLimits())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	known, err := c.discoverPrograms(r.Context())
	if err != nil {
		c.shed(w, err)
		return
	}
	knownSet := make(map[string]bool, len(known))
	for _, name := range known {
		knownSet[name] = true
	}
	for _, p := range spec.Programs {
		if !knownSet[p] {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown program %q", p))
			return
		}
	}

	cam := campaign.New(c.campaignCtx, campaign.NewID(), spec, points, server.TenantKey(r))
	if err := c.campaigns.Add(cam); err != nil {
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	c.metrics.campaignsTotal.Add(1)

	// Campaign points route at bulk priority unless the creator asked for
	// interactive: at fleet saturation they shed (and retry) before any
	// interactive request queues behind them.
	priority := "bulk"
	if r.Header.Get(server.PriorityHeader) == "interactive" {
		priority = "interactive"
	}
	ex := &fleetCampaignExecutor{
		c:        c,
		tenant:   cam.Tenant,
		priority: priority,
		id:       requestID(w),
	}
	workers := c.cfg.CampaignWorkers
	if workers <= 0 {
		workers = 2*len(c.routableBackends()) + 2
	}
	go func() {
		campaign.Run(cam, ex, campaign.RunnerConfig{
			Workers: workers,
			OnPoint: c.metrics.recordCampaignPoint,
		})
		c.campaigns.Settle()
		if dir := c.cfg.CampaignDir; dir != "" && cam.Status() == campaign.StatusCompleted {
			csv, md := cam.Artifacts()
			_ = campaign.Persist(dir, cam.ID, csv, md) // best-effort; artifacts stay inline
		}
	}()
	writeJSON(w, http.StatusAccepted, server.StatusOfCampaign(cam, false))
}

// handleCampaignID serves GET/DELETE /campaign/{id} and
// GET /campaign/{id}/events on the coordinator, with the same resource
// semantics as the daemon tier.
func (c *Coordinator) handleCampaignID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/campaign/")
	id, sub, _ := strings.Cut(rest, "/")
	cam, ok := c.campaigns.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", id))
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, server.StatusOfCampaign(cam, r.URL.Query().Get("points") == "1"))
	case sub == "" && r.Method == http.MethodDelete:
		cam.Cancel()
		writeJSON(w, http.StatusOK, server.StatusOfCampaign(cam, false))
	case sub == "events" && r.Method == http.MethodGet:
		server.ServeCampaignEvents(w, r, cam)
	default:
		writeError(w, http.StatusMethodNotAllowed, errors.New("unsupported campaign operation"))
	}
}

// fleetCampaignExecutor runs grid points through the routed /run data
// path and the coordinator result cache.
type fleetCampaignExecutor struct {
	c        *Coordinator
	tenant   string
	priority string
	id       string
}

// campaignRouteRetries bounds re-attempts when the whole fleet answers
// 429; campaign points are patient batch work.
const campaignRouteRetries = 8

func (e *fleetCampaignExecutor) RunPoint(ctx context.Context, p campaign.Point) (campaign.PointResult, error) {
	rr, err := server.ParseRunRequest(p.Body)
	if err != nil {
		return campaign.PointResult{}, fmt.Errorf("point %d: %w", p.Index, err)
	}
	call := routedCall{
		path:     "/run",
		body:     p.Body,
		id:       e.id,
		tenant:   e.tenant,
		priority: e.priority,
	}
	route := func() ([]byte, error) {
		resp, _, err := e.c.route(ctx, rr.CacheKey(), call)
		if err != nil {
			return nil, err
		}
		if resp.status != http.StatusOK {
			return nil, &pointStatusError{status: resp.status, body: resp.body}
		}
		return resp.body, nil
	}
	var body []byte
	cached := false
	for attempt := 0; ; attempt++ {
		if e.c.results == nil {
			body, err = route()
		} else {
			var res *server.CachedResult
			var outcome server.ResultOutcome
			res, outcome, err = e.c.results.Do(ctx, rr.ResultKey(), route)
			if err == nil {
				e.c.metrics.recordResult(outcome)
				cached = outcome == server.ResultHit || outcome == server.ResultSpillHit ||
					outcome == server.ResultCoalesced
				body = res.Body
			}
		}
		var se *pointStatusError
		if errors.As(err, &se) && se.status == http.StatusTooManyRequests && attempt < campaignRouteRetries {
			select {
			case <-time.After(time.Duration(50*(attempt+1)) * time.Millisecond):
				continue
			case <-ctx.Done():
				return campaign.PointResult{}, ctx.Err()
			}
		}
		break
	}
	if err != nil {
		return campaign.PointResult{}, err
	}
	pr, err := campaign.ParsePointMetrics(body)
	if err != nil {
		return campaign.PointResult{}, err
	}
	pr.Cached = cached
	return pr, nil
}

// pointStatusError is a non-200 authoritative backend answer for a
// campaign point.
type pointStatusError struct {
	status int
	body   []byte
}

func (e *pointStatusError) Error() string {
	msg := strings.TrimSpace(string(e.body))
	if len(msg) > 200 {
		msg = msg[:200]
	}
	return fmt.Sprintf("backend status %d: %s", e.status, msg)
}
