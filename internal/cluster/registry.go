// The backend registry: one record per configured mmxd, holding health
// state maintained by the prober, the load view used for fallback routing,
// and per-backend routing counters. Records are never added or removed
// after New — death and recovery flip state in place — so slices of
// *backend can be ranked without holding a registry-wide lock.
package cluster

import (
	"sync"
	"sync/atomic"
	"time"
)

// Health states of a backend.
const (
	// StateHealthy: the last probe (or data-path request) succeeded; the
	// backend is routable.
	StateHealthy = "healthy"
	// StateSuspect: 1..FailThreshold-1 consecutive failures; still
	// routable — transient blips should not shift traffic — but probed on
	// a backoff schedule.
	StateSuspect = "suspect"
	// StateDead: the failure streak reached FailThreshold (or a probe saw
	// 503-draining); not routable until a probe succeeds.
	StateDead = "dead"
)

// backend is one registry record.
type backend struct {
	url string // base URL, e.g. "http://127.0.0.1:8931"

	mu        sync.Mutex
	state     string
	fails     int       // consecutive probe/data-path failures
	nextProbe time.Time // earliest next probe (backoff schedule)
	lastProbe time.Time
	lastErr   string
	// Load view from the last successful /metrics probe.
	queueDepth   int64
	activeRuns   int64
	cacheHitRate float64

	// inflight counts requests this coordinator currently has outstanding
	// to the backend (its contribution to the load view between probes).
	inflight atomic.Int64

	// Routing counters (fleet metrics).
	routed   atomic.Int64 // requests sent here (incl. retries, hedges)
	affinity atomic.Int64 // sent here as the HRW first choice
	fallback atomic.Int64 // sent here by least-loaded fallback or retry
	errors   atomic.Int64 // connection errors observed on the data path
}

func newBackend(url string) *backend {
	return &backend{url: url, state: StateHealthy}
}

// BackendStatus is the exported registry view of one backend.
type BackendStatus struct {
	URL          string    `json:"url"`
	State        string    `json:"state"`
	Fails        int       `json:"consecutive_failures"`
	LastProbe    time.Time `json:"last_probe"`
	LastErr      string    `json:"last_error,omitempty"`
	QueueDepth   int64     `json:"queue_depth"`
	ActiveRuns   int64     `json:"active_runs"`
	CacheHitRate float64   `json:"cache_hit_rate"`
	Inflight     int64     `json:"inflight"`
	Routed       int64     `json:"routed"`
	Affinity     int64     `json:"affinity_routed"`
	Fallback     int64     `json:"fallback_routed"`
	Errors       int64     `json:"conn_errors"`
}

func (b *backend) status() BackendStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BackendStatus{
		URL: b.url, State: b.state, Fails: b.fails,
		LastProbe: b.lastProbe, LastErr: b.lastErr,
		QueueDepth: b.queueDepth, ActiveRuns: b.activeRuns,
		CacheHitRate: b.cacheHitRate,
		Inflight:     b.inflight.Load(),
		Routed:       b.routed.Load(),
		Affinity:     b.affinity.Load(),
		Fallback:     b.fallback.Load(),
		Errors:       b.errors.Load(),
	}
}

// routable reports whether the backend may receive traffic.
func (b *backend) routable() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != StateDead
}

// load is the fallback-routing key: the queue the backend reported at its
// last probe plus what this coordinator has added since.
func (b *backend) load() int64 {
	b.mu.Lock()
	q, a := b.queueDepth, b.activeRuns
	b.mu.Unlock()
	return q + a + b.inflight.Load()
}

// noteSuccess records a successful probe (with the load snapshot it
// carried) and re-admits a suspect or dead backend.
func (b *backend) noteSuccess(queueDepth, activeRuns int64, hitRate float64, interval time.Duration) {
	b.mu.Lock()
	b.state = StateHealthy
	b.fails = 0
	b.lastErr = ""
	b.lastProbe = time.Now()
	b.nextProbe = b.lastProbe.Add(interval)
	b.queueDepth, b.activeRuns, b.cacheHitRate = queueDepth, activeRuns, hitRate
	b.mu.Unlock()
}

// noteFailure records one failed probe or data-path connection error,
// advancing suspect -> dead at the threshold and scheduling the next probe
// with exponential backoff. It returns the new state.
func (b *backend) noteFailure(err error, cfg *Config) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	b.lastErr = err.Error()
	b.lastProbe = time.Now()
	if b.fails >= cfg.FailThreshold {
		b.state = StateDead
	} else {
		b.state = StateSuspect
	}
	// Back off exponentially with the failure streak: interval, 2x, 4x...
	// capped so a dead backend is still re-probed often enough to be
	// re-admitted promptly after recovery.
	backoff := cfg.ProbeInterval << (b.fails - 1)
	if backoff > cfg.MaxProbeBackoff || backoff <= 0 {
		backoff = cfg.MaxProbeBackoff
	}
	b.nextProbe = b.lastProbe.Add(backoff)
	return b.state
}

// dueForProbe reports whether the backoff schedule allows a probe now.
func (b *backend) dueForProbe(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !now.Before(b.nextProbe)
}

// routableBackends returns the backends currently accepting traffic.
func (c *Coordinator) routableBackends() []*backend {
	out := make([]*backend, 0, len(c.backends))
	for _, b := range c.backends {
		if b.routable() {
			out = append(out, b)
		}
	}
	return out
}
