// Fleet campaign e2e: a sharded ablation campaign over real mmxd backends
// must complete with streamed progress, render artifacts byte-identical
// to a sequential single-backend reference run, survive a backend dying
// mid-campaign with zero failed points, and serve a re-run with one
// changed axis from the result cache for every unchanged point.
package cluster_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mmxdsp/internal/cluster"
	"mmxdsp/internal/server"
)

func postFleetCampaign(t *testing.T, url, body string) server.CampaignStatus {
	t.Helper()
	resp, err := http.Post(url+"/campaign", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /campaign: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /campaign: %d %s", resp.StatusCode, data)
	}
	var st server.CampaignStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding campaign status: %v\n%s", err, data)
	}
	return st
}

func waitFleetCampaign(t *testing.T, url, id string) server.CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(url + "/campaign/" + id)
		if err != nil {
			t.Fatalf("GET /campaign/%s: %v", id, err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /campaign/%s: %d %s", id, resp.StatusCode, data)
		}
		var st server.CampaignStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("decoding campaign status: %v", err)
		}
		if st.Status != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s still running: %s", id, data)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// referenceCampaign runs the spec on a lone daemon and returns its
// artifacts — the sequential single-backend ground truth.
func referenceCampaign(t *testing.T, spec string) server.CampaignStatus {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{ResultCacheEntries: -1}).Handler())
	defer ts.Close()
	st := postFleetCampaign(t, ts.URL, spec)
	final := waitFleetCampaign(t, ts.URL, st.ID)
	if final.Status != "completed" || final.Failed != 0 {
		t.Fatalf("reference campaign %+v", final)
	}
	return final
}

// TestFleetCampaignShardedByteIdentical is the campaign acceptance gate: a
// 3-axis, 216-point grid sharded over a 2-backend fleet completes with
// zero failures, both backends execute points, progress streams over SSE,
// the artifacts equal a single-backend reference byte for byte, and a
// re-run with one changed axis value re-executes only the cold points.
func TestFleetCampaignShardedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("216-point campaign; skipped in -short mode")
	}
	const spec = `{
		"programs": ["fir.mmx"],
		"dispatch": ["block"],
		"axes": {
			"mul_latency": [1, 2, 3, 4, 5, 6],
			"emms_latency": [0, 5, 10, 15, 20, 25],
			"mispredict_penalty": [2, 4, 6, 8, 10, 12]
		},
		"skip_check": true
	}`
	f := newFleet(t, 2, cluster.Config{ResultCacheEntries: 1024})

	st := postFleetCampaign(t, f.ts.URL, spec)
	if st.Total != 216 {
		t.Fatalf("grid expanded to %d points, want 216", st.Total)
	}

	// Stream progress while the campaign runs; the stream must end with a
	// terminal "done" event.
	events := make(chan string, 1)
	go func() {
		resp, err := http.Get(f.ts.URL + "/campaign/" + st.ID + "/events")
		if err != nil {
			events <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		last := ""
		scanner := bufio.NewScanner(resp.Body)
		for scanner.Scan() {
			if line := scanner.Text(); strings.HasPrefix(line, "event: ") {
				last = strings.TrimPrefix(line, "event: ")
			}
		}
		events <- last
	}()

	final := waitFleetCampaign(t, f.ts.URL, st.ID)
	if final.Status != "completed" || final.Done != 216 || final.Failed != 0 {
		t.Fatalf("final status %+v", final)
	}
	select {
	case last := <-events:
		if last != "done" {
			t.Errorf("SSE stream ended with %q, want done", last)
		}
	case <-time.After(5 * time.Second):
		t.Error("SSE stream did not terminate")
	}

	// Both backends must have executed points — the grid was actually
	// sharded, not funneled to one node.
	for i, b := range f.backends {
		var snap server.MetricsSnapshot
		resp, err := http.Get(b.URL + "/metrics")
		if err != nil {
			t.Fatalf("backend %d /metrics: %v", i, err)
		}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if snap.RunsOK == 0 {
			t.Errorf("backend %d executed zero runs; campaign was not sharded", i)
		}
	}

	// Byte-identity against the sequential single-backend reference.
	ref := referenceCampaign(t, spec)
	if final.ArtifactsCSV != ref.ArtifactsCSV {
		t.Error("fleet CSV differs from the single-backend reference")
	}
	if final.ArtifactsMarkdown != ref.ArtifactsMarkdown {
		t.Error("fleet markdown differs from the single-backend reference")
	}

	// Re-run with one axis value changed (mispredict_penalty 12 -> 14):
	// the 180 unchanged cells are result-cache hits, only the 36 cold
	// cells re-execute.
	rerun := strings.Replace(spec, "[2, 4, 6, 8, 10, 12]", "[2, 4, 6, 8, 10, 14]", 1)
	st2 := postFleetCampaign(t, f.ts.URL, rerun)
	final2 := waitFleetCampaign(t, f.ts.URL, st2.ID)
	if final2.Status != "completed" || final2.Done != 216 || final2.Failed != 0 {
		t.Fatalf("re-run status %+v", final2)
	}
	if final2.Cached != 180 {
		t.Errorf("re-run hit the cache on %d/216 points, want exactly the 180 unchanged cells", final2.Cached)
	}

	// Identical re-run: every point cached, nothing simulated anywhere.
	st3 := postFleetCampaign(t, f.ts.URL, spec)
	final3 := waitFleetCampaign(t, f.ts.URL, st3.ID)
	if final3.Cached != 216 {
		t.Errorf("identical re-run hit the cache on %d/216 points", final3.Cached)
	}
	if final3.ArtifactsCSV != final.ArtifactsCSV {
		t.Error("cached re-run rendered different artifacts")
	}

	// Fleet /metrics accounts the campaigns.
	fm := fleetSnapshot(t, f.ts.URL)
	if fm.CampaignsTotal != 3 || fm.CampaignPoints != 3*216 {
		t.Errorf("fleet campaign counters: total=%d points=%d", fm.CampaignsTotal, fm.CampaignPoints)
	}
	if fm.CampaignPointsFailed != 0 {
		t.Errorf("campaign_points_failed = %d", fm.CampaignPointsFailed)
	}
}

// TestFleetCampaignSurvivesBackendDeath kills one of two backends while a
// campaign is in flight: its points must re-route to the survivor, the
// campaign must complete with zero failed points, and the artifacts must
// still equal the single-backend reference byte for byte.
func TestFleetCampaignSurvivesBackendDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("36-point campaign with a mid-flight kill; skipped in -short mode")
	}
	const spec = `{
		"programs": ["fir.mmx"],
		"dispatch": ["block"],
		"axes": {
			"mul_latency": [1, 2, 3, 4, 5, 6],
			"emms_latency": [0, 5, 10, 15, 20, 25]
		},
		"skip_check": true
	}`
	f := newFleet(t, 2, cluster.Config{Retries: 4, FailThreshold: 1})

	st := postFleetCampaign(t, f.ts.URL, spec)

	// Kill backend 0 once it has served at least one run (provably
	// mid-campaign), or after 2s as a backstop.
	victim := f.backends[0]
	killed := false
	deadline := time.Now().Add(2 * time.Second)
	for !killed && time.Now().Before(deadline) {
		resp, err := http.Get(victim.URL + "/metrics")
		if err != nil {
			break
		}
		var snap server.MetricsSnapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err == nil && snap.RunsOK >= 1 {
			victim.CloseClientConnections()
			victim.Close()
			killed = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !killed {
		t.Log("victim served nothing before the backstop; killing anyway")
		victim.CloseClientConnections()
		victim.Close()
	}

	final := waitFleetCampaign(t, f.ts.URL, st.ID)
	if final.Status != "completed" {
		t.Fatalf("campaign status %q: %+v", final.Status, final)
	}
	if final.Failed != 0 || final.Done != 36 {
		t.Fatalf("campaign with a killed backend: %d done, %d failed", final.Done, final.Failed)
	}

	ref := referenceCampaign(t, spec)
	if final.ArtifactsCSV != ref.ArtifactsCSV || final.ArtifactsMarkdown != ref.ArtifactsMarkdown {
		t.Error("artifacts differ from the single-backend reference after a backend death")
	}
}

// TestFleetCampaignValidation pins the coordinator-side request checks.
func TestFleetCampaignValidation(t *testing.T) {
	f := newFleet(t, 1, cluster.Config{})
	cases := []struct {
		name, body string
		status     int
	}{
		{"unknown program", `{"programs":["nope.mmx"]}`, http.StatusNotFound},
		{"unknown axis", `{"programs":["fir.mmx"],"axes":{"warp":[1]}}`, http.StatusBadRequest},
		{"bad JSON", `{`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(f.ts.URL+"/campaign", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, data)
			}
		})
	}
	resp, err := http.Get(f.ts.URL + "/campaign/deadbeef00000000")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign: %d", resp.StatusCode)
	}
}

func fleetSnapshot(t *testing.T, url string) cluster.FleetMetrics {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var fm cluster.FleetMetrics
	if err := json.NewDecoder(resp.Body).Decode(&fm); err != nil {
		t.Fatalf("decoding fleet metrics: %v", err)
	}
	return fm
}
