// Package cluster is the mmxfleet coordinator: a stateless-ish front for N
// mmxd backends that scales the simulation service horizontally. It keeps
// a health-checked backend registry (periodic /healthz probes, exponential
// backoff between failed probes, a backend is dead after a streak of
// failures and re-admitted on the first success), routes each POST /run by
// rendezvous (HRW) hashing on the compiled-cache key so repeat requests
// land where the artifact is already compiled, and falls back to
// least-loaded routing when the affinity target is saturated or down.
//
// Per-request resilience: bounded retries with jittered backoff on
// connection errors and backend 429s, an optional hedged second request
// after a latency threshold, and coordinator-level shedding with
// Retry-After when no backend is routable. POST /suite scatter-gathers one
// full table run across the fleet and reassembles byte-identical Table 2/3
// artifacts through core's existing comparison path.
//
// Endpoints:
//
//	POST /run       route one benchmark run to a backend (mmxd schema)
//	POST /asm       route one user-submitted program by source hash
//	POST /suite     scatter-gather a full table run across the fleet
//	POST /campaign  shard an ablation-sweep grid across the fleet
//	                (plus GET/DELETE /campaign/{id}, GET /campaign/{id}/events)
//	GET  /programs  capability discovery, proxied from the fleet
//	GET  /healthz   coordinator liveness (503 when no backend is routable)
//	GET  /metrics   fleet-wide snapshot (FleetMetrics)
package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"mmxdsp/internal/campaign"
	"mmxdsp/internal/server"
)

// Config tunes the coordinator; zero values select the documented
// defaults.
type Config struct {
	// Backends lists the mmxd base URLs (e.g. "http://127.0.0.1:8931").
	// At least one is required.
	Backends []string

	// ProbeInterval spaces periodic health probes (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round-trip (default 1s).
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive-probe-failure streak after which a
	// backend is marked dead (default 3). Probes continue — with
	// exponential backoff up to MaxProbeBackoff — and the first success
	// re-admits the backend.
	FailThreshold int
	// MaxProbeBackoff caps the probe backoff for failing backends
	// (default 30s).
	MaxProbeBackoff time.Duration

	// Retries is the per-request retry budget after the first attempt,
	// spent on connection errors and backend 429s (default 2). Each retry
	// goes to the next backend in affinity order.
	Retries int
	// RetryBackoff is the base of the jittered exponential backoff between
	// attempts (default 25ms).
	RetryBackoff time.Duration
	// HedgeAfter, when positive, arms a hedged second request to the
	// next-choice backend if the first has not answered within the
	// threshold. Runs are deterministic and side-effect-free on the
	// backend (idempotent), so the faster answer simply wins.
	HedgeAfter time.Duration

	// MaxInflight, when positive, marks a backend saturated once the
	// coordinator has that many requests outstanding to it, diverting
	// affinity traffic to the least-loaded backend.
	MaxInflight int64
	// QueueSaturation marks a backend saturated when its last-probed
	// admission-queue depth reaches this value (default 16; negative
	// disables the check).
	QueueSaturation int64

	// MaxSourceBytes bounds the source listing accepted by POST /asm before
	// it is routed (default server.DefaultMaxSourceBytes). Backends enforce
	// their own cap too; rejecting here saves the round-trip.
	MaxSourceBytes int

	// ResultCacheEntries bounds the coordinator's result cache of marshaled
	// /run response bytes (default 512; negative disables it). A hit is
	// answered locally — no backend round-trip — and /suite gathers its
	// per-program reports through the same cache. Runs are deterministic,
	// so cached bytes equal whatever a backend would recompute.
	ResultCacheEntries int

	// CampaignDir, when non-empty, persists completed campaigns'
	// sensitivity artifacts under CampaignDir/<id>/ with atomic writes.
	CampaignDir string
	// CampaignMaxPoints bounds one campaign's expanded grid (default
	// server.DefaultCampaignMaxPoints).
	CampaignMaxPoints int
	// CampaignWorkers bounds one campaign's concurrently routed points
	// (default 2*routable backends + 2, resolved per campaign).
	CampaignWorkers int
	// CampaignMaxActive bounds concurrently running campaigns before
	// POST /campaign answers 429 (default server.DefaultCampaignMaxActive).
	CampaignMaxActive int

	// Client issues backend requests; nil selects a pooled default with no
	// overall timeout (per-request contexts bound each call).
	Client *http.Client
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.MaxProbeBackoff <= 0 {
		cfg.MaxProbeBackoff = 30 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.QueueSaturation == 0 {
		cfg.QueueSaturation = 16
	}
	if cfg.MaxSourceBytes <= 0 {
		cfg.MaxSourceBytes = server.DefaultMaxSourceBytes
	}
	if cfg.ResultCacheEntries == 0 {
		cfg.ResultCacheEntries = 512
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
		}}
	}
	return cfg
}

// Coordinator fronts the fleet. Create with New, start probing with Start,
// mount Handler.
type Coordinator struct {
	cfg      Config
	backends []*backend
	results  *server.ResultCache // nil when result caching is disabled
	metrics  *fleetMetrics
	mux      *http.ServeMux

	draining atomic.Bool

	// programs caches the discovered program list (see discoverPrograms).
	programsMu sync.Mutex
	programs   []string

	// campaigns is the campaign registry; campaignCtx scopes running
	// campaigns to the coordinator lifetime (canceled on drain).
	campaigns      *campaign.Store
	campaignCtx    context.Context
	campaignCancel context.CancelFunc

	stopOnce sync.Once
	stop     chan struct{}
	proberWG sync.WaitGroup
}

// New builds a Coordinator over the configured backends.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends configured")
	}
	if cfg.CampaignMaxActive <= 0 {
		cfg.CampaignMaxActive = server.DefaultCampaignMaxActive
	}
	c := &Coordinator{
		cfg:       cfg,
		metrics:   newFleetMetrics(),
		stop:      make(chan struct{}),
		campaigns: campaign.NewStore(cfg.CampaignMaxActive, 0),
	}
	c.campaignCtx, c.campaignCancel = context.WithCancel(context.Background())
	if cfg.ResultCacheEntries > 0 {
		c.results = server.NewResultCache(cfg.ResultCacheEntries, "")
	}
	seen := map[string]bool{}
	for _, raw := range cfg.Backends {
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: bad backend URL %q", raw)
		}
		base := u.Scheme + "://" + u.Host
		if seen[base] {
			return nil, fmt.Errorf("cluster: duplicate backend %q", base)
		}
		seen[base] = true
		c.backends = append(c.backends, newBackend(base))
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("/run", c.handleRun)
	c.mux.HandleFunc("/asm", c.handleAsm)
	c.mux.HandleFunc("/suite", c.handleSuite)
	c.mux.HandleFunc("/campaign", c.handleCampaign)
	c.mux.HandleFunc("/campaign/", c.handleCampaignID)
	c.mux.HandleFunc("/programs", c.handlePrograms)
	c.mux.HandleFunc("/healthz", c.handleHealthz)
	c.mux.HandleFunc("/metrics", c.handleMetrics)
	return c, nil
}

// Start launches the health prober. Stop ends it.
func (c *Coordinator) Start() {
	c.proberWG.Add(1)
	go c.probeLoop()
}

// Stop halts the prober and waits for it to exit. Safe to call more than
// once.
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.proberWG.Wait()
}

// StartDrain flips the coordinator into drain mode: /healthz reports 503
// and new requests are refused while in-flight ones finish. Running
// campaigns are canceled so their point routing stops with the
// coordinator.
func (c *Coordinator) StartDrain() {
	c.draining.Store(true)
	c.campaignCancel()
}

// Handler returns the coordinator's HTTP handler. Every response carries
// an X-Request-ID, propagated to (and echoed by) the backends a request is
// routed to.
func (c *Coordinator) Handler() http.Handler { return server.WithRequestID(c.mux) }

// Backends returns the registry's current view, for logs and tests.
func (c *Coordinator) Backends() []BackendStatus {
	out := make([]BackendStatus, len(c.backends))
	for i, b := range c.backends {
		out[i] = b.status()
	}
	return out
}

// jitter returns d scaled by a uniform factor in [0.5, 1.5) — enough
// spread to break retry synchronization across clients.
func jitter(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}
