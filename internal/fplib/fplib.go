// Package fplib is the hand-optimized floating-point assembly library —
// the analog of the Intel Performance Library's FP build that the paper's
// .fp benchmark versions call. Routines follow the emit calling convention
// and return float results in fp0.
package fplib

import (
	"math"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/isa"
)

// EmitFirF32 emits fpFir(hist, coef, n, x) -> fp0: a 32-bit float FIR that
// consumes one sample per call (the paper's fir workload shape). hist and
// coef are float32 arrays of length n; hist[0] is the newest sample. The
// history shift uses dword integer moves (a classic hand-optimization) and
// the MAC loop is a straight fld/fmul/fadd chain.
func EmitFirF32(b *asm.Builder) {
	const name = "fpFir"
	b.Proc(name)
	emit.LoadArg(b, isa.ESI, 0) // hist
	emit.LoadArg(b, isa.EDI, 1) // coef
	emit.LoadArg(b, isa.ECX, 2) // n

	// Shift the history up by one element using integer dword moves,
	// from the top down: hist[i] = hist[i-1] for i = n-1 .. 1.
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.ECX))
	b.I(isa.DEC, asm.R(isa.EAX))
	b.Label(name + ".shift")
	b.I(isa.MOV, asm.R(isa.EDX), asm.MemIdx(isa.SizeD, isa.ESI, isa.EAX, 4, -4))
	b.I(isa.MOV, asm.MemIdx(isa.SizeD, isa.ESI, isa.EAX, 4, 0), asm.R(isa.EDX))
	b.I(isa.DEC, asm.R(isa.EAX))
	b.J(isa.JNE, name+".shift")
	// hist[0] = x (arg 3 is the float32 bit pattern).
	b.I(isa.MOV, asm.R(isa.EDX), emit.Arg(3))
	b.I(isa.MOV, asm.MemD(isa.ESI, 0), asm.R(isa.EDX))

	// MAC loop, software-pipelined two taps per iteration: products build
	// in fp1/fp3 while the adder consumes them, hiding the three-cycle
	// multiplier latency behind independent issue slots — the kind of
	// hand scheduling that distinguishes the library from compiled code.
	// The accumulation order (ascending taps into one accumulator) is
	// identical to the plain loop, so results match bit for bit.
	b.I(isa.FLDC, asm.R(isa.FP0), asm.Imm(0)) // 0.0
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.I(isa.MOV, asm.R(isa.EDX), asm.R(isa.ECX))
	b.I(isa.AND, asm.R(isa.EDX), asm.Imm(^int64(1))) // even tap count
	b.I(isa.TEST, asm.R(isa.EDX), asm.R(isa.EDX))
	b.J(isa.JE, name+".tail")
	b.Label(name + ".mac2")
	b.I(isa.FLD, asm.R(isa.FP1), asm.MemIdx(isa.SizeD, isa.ESI, isa.EAX, 4, 0))
	b.I(isa.FMUL, asm.R(isa.FP1), asm.MemIdx(isa.SizeD, isa.EDI, isa.EAX, 4, 0))
	b.I(isa.FLD, asm.R(isa.FP3), asm.MemIdx(isa.SizeD, isa.ESI, isa.EAX, 4, 4))
	b.I(isa.FMUL, asm.R(isa.FP3), asm.MemIdx(isa.SizeD, isa.EDI, isa.EAX, 4, 4))
	b.I(isa.FADD, asm.R(isa.FP0), asm.R(isa.FP1))
	b.I(isa.FADD, asm.R(isa.FP0), asm.R(isa.FP3))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(2))
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.EDX))
	b.J(isa.JL, name+".mac2")
	b.Label(name + ".tail")
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.ECX))
	b.J(isa.JGE, name+".done")
	b.I(isa.FLD, asm.R(isa.FP1), asm.MemIdx(isa.SizeD, isa.ESI, isa.EAX, 4, 0))
	b.I(isa.FMUL, asm.R(isa.FP1), asm.MemIdx(isa.SizeD, isa.EDI, isa.EAX, 4, 0))
	b.I(isa.FADD, asm.R(isa.FP0), asm.R(isa.FP1))
	b.I(isa.INC, asm.R(isa.EAX))
	b.J(isa.JMP, name+".tail")
	b.Label(name + ".done")
	b.Ret()
}

// EmitIirBlockF64 emits fpIirBlock(state, in, out, blockLen): a direct-form
// I IIR on 64-bit floats processing a block per call (the paper's iir
// workload shape: 8 samples per invocation).
//
// The state block layout (all float64, 8-byte aligned):
//
//	+0    nb    dword: numerator length (9 for the paper's filter)
//	+4    na    dword: denominator length excluding a0 (8)
//	+8    b[nb]   numerator coefficients
//	+8+8*nb a[na] denominator coefficients
//	then  x[nb]   input history (newest first)
//	then  y[na]   output history (newest first)
//
// in/out point to float64 sample arrays.
func EmitIirBlockF64(b *asm.Builder) {
	const name = "fpIirBlock"
	b.Dwords(name+".evenb", []int32{0})
	b.Dwords(name+".evena", []int32{0})
	b.Proc(name)
	emit.LoadArg(b, isa.EBP, 0) // state
	// Derived pointers: esi=b, edi=a, ebx=xh, edx=yh (computed below).

	b.I(isa.MOV, asm.R(isa.ECX), emit.Arg(3)) // blockLen counter
	b.Label(name + ".sample")

	// Recompute pointers each sample (state is compact; the cost is the
	// point — this is a flexible library routine, not fused code).
	b.I(isa.MOV, asm.R(isa.ESI), asm.R(isa.EBP))
	b.I(isa.ADD, asm.R(isa.ESI), asm.Imm(8)) // b coefficients
	b.I(isa.MOV, asm.R(isa.EAX), asm.MemD(isa.EBP, 0))
	b.I(isa.SHL, asm.R(isa.EAX), asm.Imm(3))
	b.I(isa.MOV, asm.R(isa.EDI), asm.R(isa.ESI))
	b.I(isa.ADD, asm.R(isa.EDI), asm.R(isa.EAX)) // a = b + 8*nb
	b.I(isa.MOV, asm.R(isa.EDX), asm.MemD(isa.EBP, 4))
	b.I(isa.SHL, asm.R(isa.EDX), asm.Imm(3))
	b.I(isa.MOV, asm.R(isa.EBX), asm.R(isa.EDI))
	b.I(isa.ADD, asm.R(isa.EBX), asm.R(isa.EDX)) // xh = a + 8*na
	b.I(isa.MOV, asm.R(isa.EDX), asm.R(isa.EBX))
	b.I(isa.ADD, asm.R(isa.EDX), asm.R(isa.EAX)) // yh = xh + 8*nb

	// Shift x history up (float64, from top): i = nb-1 .. 1.
	b.I(isa.MOV, asm.R(isa.EAX), asm.MemD(isa.EBP, 0))
	b.I(isa.DEC, asm.R(isa.EAX))
	b.Label(name + ".xshift")
	b.I(isa.FLD, asm.R(isa.FP1), asm.MemIdx(isa.SizeQ, isa.EBX, isa.EAX, 8, -8))
	b.I(isa.FST, asm.MemIdx(isa.SizeQ, isa.EBX, isa.EAX, 8, 0), asm.R(isa.FP1))
	b.I(isa.DEC, asm.R(isa.EAX))
	b.J(isa.JNE, name+".xshift")
	// xh[0] = *in; in advances after the sample.
	b.I(isa.MOV, asm.R(isa.EAX), emit.Arg(1))
	b.I(isa.FLD, asm.R(isa.FP1), asm.MemQ(isa.EAX, 0))
	b.I(isa.FST, asm.MemQ(isa.EBX, 0), asm.R(isa.FP1))

	// acc = sum b[i]*xh[i], two taps per iteration (software-pipelined
	// like the FIR library; ascending order preserved exactly).
	b.I(isa.MOV, asm.R(isa.EAX), asm.MemD(isa.EBP, 0))
	b.I(isa.AND, asm.R(isa.EAX), asm.Imm(^int64(1)))
	b.I(isa.MOV, asm.Sym(isa.SizeD, name+".evenb", 0), asm.R(isa.EAX))
	b.I(isa.MOV, asm.R(isa.EAX), asm.MemD(isa.EBP, 4))
	b.I(isa.AND, asm.R(isa.EAX), asm.Imm(^int64(1)))
	b.I(isa.MOV, asm.Sym(isa.SizeD, name+".evena", 0), asm.R(isa.EAX))
	b.I(isa.FLDC, asm.R(isa.FP0), asm.Imm(0))
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label(name + ".bmac2")
	b.I(isa.CMP, asm.R(isa.EAX), asm.Sym(isa.SizeD, name+".evenb", 0))
	b.J(isa.JGE, name+".btail")
	b.I(isa.FLD, asm.R(isa.FP1), asm.MemIdx(isa.SizeQ, isa.EBX, isa.EAX, 8, 0))
	b.I(isa.FMUL, asm.R(isa.FP1), asm.MemIdx(isa.SizeQ, isa.ESI, isa.EAX, 8, 0))
	b.I(isa.FLD, asm.R(isa.FP3), asm.MemIdx(isa.SizeQ, isa.EBX, isa.EAX, 8, 8))
	b.I(isa.FMUL, asm.R(isa.FP3), asm.MemIdx(isa.SizeQ, isa.ESI, isa.EAX, 8, 8))
	b.I(isa.FADD, asm.R(isa.FP0), asm.R(isa.FP1))
	b.I(isa.FADD, asm.R(isa.FP0), asm.R(isa.FP3))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(2))
	b.J(isa.JMP, name+".bmac2")
	b.Label(name + ".btail")
	b.I(isa.CMP, asm.R(isa.EAX), asm.MemD(isa.EBP, 0))
	b.J(isa.JGE, name+".bdone")
	b.I(isa.FLD, asm.R(isa.FP1), asm.MemIdx(isa.SizeQ, isa.EBX, isa.EAX, 8, 0))
	b.I(isa.FMUL, asm.R(isa.FP1), asm.MemIdx(isa.SizeQ, isa.ESI, isa.EAX, 8, 0))
	b.I(isa.FADD, asm.R(isa.FP0), asm.R(isa.FP1))
	b.Label(name + ".bdone")

	// acc -= sum a[i]*yh[i], same two-tap schedule.
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label(name + ".amac2")
	b.I(isa.CMP, asm.R(isa.EAX), asm.Sym(isa.SizeD, name+".evena", 0))
	b.J(isa.JGE, name+".atail")
	b.I(isa.FLD, asm.R(isa.FP1), asm.MemIdx(isa.SizeQ, isa.EDX, isa.EAX, 8, 0))
	b.I(isa.FMUL, asm.R(isa.FP1), asm.MemIdx(isa.SizeQ, isa.EDI, isa.EAX, 8, 0))
	b.I(isa.FLD, asm.R(isa.FP3), asm.MemIdx(isa.SizeQ, isa.EDX, isa.EAX, 8, 8))
	b.I(isa.FMUL, asm.R(isa.FP3), asm.MemIdx(isa.SizeQ, isa.EDI, isa.EAX, 8, 8))
	b.I(isa.FSUB, asm.R(isa.FP0), asm.R(isa.FP1))
	b.I(isa.FSUB, asm.R(isa.FP0), asm.R(isa.FP3))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(2))
	b.J(isa.JMP, name+".amac2")
	b.Label(name + ".atail")
	b.I(isa.CMP, asm.R(isa.EAX), asm.MemD(isa.EBP, 4))
	b.J(isa.JGE, name+".adone")
	b.I(isa.FLD, asm.R(isa.FP1), asm.MemIdx(isa.SizeQ, isa.EDX, isa.EAX, 8, 0))
	b.I(isa.FMUL, asm.R(isa.FP1), asm.MemIdx(isa.SizeQ, isa.EDI, isa.EAX, 8, 0))
	b.I(isa.FSUB, asm.R(isa.FP0), asm.R(isa.FP1))
	b.Label(name + ".adone")

	// Shift y history and insert acc.
	b.I(isa.MOV, asm.R(isa.EAX), asm.MemD(isa.EBP, 4))
	b.I(isa.DEC, asm.R(isa.EAX))
	b.Label(name + ".yshift")
	b.I(isa.FLD, asm.R(isa.FP1), asm.MemIdx(isa.SizeQ, isa.EDX, isa.EAX, 8, -8))
	b.I(isa.FST, asm.MemIdx(isa.SizeQ, isa.EDX, isa.EAX, 8, 0), asm.R(isa.FP1))
	b.I(isa.DEC, asm.R(isa.EAX))
	b.J(isa.JNE, name+".yshift")
	b.I(isa.FST, asm.MemQ(isa.EDX, 0), asm.R(isa.FP0))

	// *out = acc; advance in/out pointers (they live on the stack).
	b.I(isa.MOV, asm.R(isa.EAX), emit.Arg(2))
	b.I(isa.FST, asm.MemQ(isa.EAX, 0), asm.R(isa.FP0))
	b.I(isa.ADD, emit.Arg(1), asm.Imm(8))
	b.I(isa.ADD, emit.Arg(2), asm.Imm(8))

	b.I(isa.DEC, asm.R(isa.ECX))
	b.J(isa.JNE, name+".sample")
	b.Ret()
}

// FftCoreConfig selects the code-generation style of the float32 FFT core.
// The three presets model the three code provenances the paper compares:
// freshly hand-scheduled assembly (the newest MMX-library internals),
// older hand-optimized library code, and compiler output.
type FftCoreConfig struct {
	// MemTemps spills the butterfly temporaries (tr, ti) through memory
	// instead of keeping them in FP registers.
	MemTemps bool
	// DivPerButterfly recomputes the twiddle stride n/size with idiv in
	// every butterfly instead of hoisting it per stage.
	DivPerButterfly bool
	// RecomputeTwiddles fills the twiddle tables with fsin/fcos at the
	// top of every stage instead of relying on precomputed tables — the
	// loop structure of straightforward C FFTs. The values written are
	// cos(k*c) and sin(k*c) with c = -2π/n computed by fdiv, matching the
	// kernels' runtime-twiddle model.
	RecomputeTwiddles bool
}

// PresetFast is the newest, fully register-scheduled core (used internally
// by the MMX library's hybrid FFT).
func PresetFast() FftCoreConfig { return FftCoreConfig{} }

// PresetLibraryFP is the FP Performance Library build: correct and solid
// but a generation older — butterfly temporaries round-trip through memory.
func PresetLibraryFP() FftCoreConfig { return FftCoreConfig{MemTemps: true} }

// PresetCompiled models optimizing-compiler output of the C source: memory
// temporaries plus a division in the twiddle-index computation that the
// compiler does not hoist.
func PresetCompiled() FftCoreConfig {
	return FftCoreConfig{MemTemps: true, DivPerButterfly: true}
}

// PresetCompiledTrig is PresetCompiled plus per-stage fsin/fcos twiddle
// computation — the shape of textbook C FFTs that call sin()/cos() inside
// the transform rather than precomputing tables.
func PresetCompiledTrig() FftCoreConfig {
	return FftCoreConfig{MemTemps: true, DivPerButterfly: true, RecomputeTwiddles: true}
}

// EmitFftF32 emits fpFft(...) with the library-FP preset. See EmitFftCore.
func EmitFftF32(b *asm.Builder) { EmitFftCore(b, "fpFft", PresetLibraryFP()) }

// EmitFftCore emits name(re, im, n, costab, sintab, brtab, brcount):
// an in-place radix-2 decimation-in-time FFT on float32 arrays with
// precomputed twiddle tables (cos/sin of -2πk/n for k < n/2) and a
// precomputed bit-reversal swap list (brcount pairs of dword indices).
func EmitFftCore(b *asm.Builder, name string, cfg FftCoreConfig) {
	if cfg.MemTemps {
		b.Floats(name+".tmp", make([]float32, 2))
	}
	b.Dwords(name+".step", []int32{0})
	if cfg.RecomputeTwiddles {
		b.Doubles(name+".angc", []float64{0})
		b.Dwords(name+".kvar", []int32{0})
	}
	b.Proc(name)
	if cfg.RecomputeTwiddles {
		// angc = -2*pi / n, computed once per call with fdiv.
		b.I(isa.MOV, asm.R(isa.EAX), emit.Arg(2))
		b.I(isa.MOV, asm.Sym(isa.SizeD, name+".kvar", 0), asm.R(isa.EAX))
		b.I(isa.FLDC, asm.R(isa.FP1), asm.Imm(int64(math.Float64bits(-2*math.Pi))))
		b.I(isa.FILD, asm.R(isa.FP0), asm.Sym(isa.SizeD, name+".kvar", 0))
		b.I(isa.FDIV, asm.R(isa.FP1), asm.R(isa.FP0))
		b.I(isa.FST, asm.Sym(isa.SizeQ, name+".angc", 0), asm.R(isa.FP1))
	}

	// --- Bit-reverse permutation from the swap table.
	emit.LoadArg(b, isa.ESI, 5) // brtab: pairs (i, j)
	emit.LoadArg(b, isa.ECX, 6) // brcount
	b.I(isa.TEST, asm.R(isa.ECX), asm.R(isa.ECX))
	b.J(isa.JE, name+".stages")
	emit.LoadArg(b, isa.EBX, 0) // re
	emit.LoadArg(b, isa.EDI, 1) // im
	b.Label(name + ".br")
	b.I(isa.MOV, asm.R(isa.EAX), asm.MemD(isa.ESI, 0)) // i
	b.I(isa.MOV, asm.R(isa.EDX), asm.MemD(isa.ESI, 4)) // j
	// swap re[i], re[j] via ebp scratch
	b.I(isa.MOV, asm.R(isa.EBP), asm.MemIdx(isa.SizeD, isa.EBX, isa.EAX, 4, 0))
	b.I(isa.PUSH, asm.R(isa.EBP))
	b.I(isa.MOV, asm.R(isa.EBP), asm.MemIdx(isa.SizeD, isa.EBX, isa.EDX, 4, 0))
	b.I(isa.MOV, asm.MemIdx(isa.SizeD, isa.EBX, isa.EAX, 4, 0), asm.R(isa.EBP))
	b.I(isa.POP, asm.R(isa.EBP))
	b.I(isa.MOV, asm.MemIdx(isa.SizeD, isa.EBX, isa.EDX, 4, 0), asm.R(isa.EBP))
	// swap im[i], im[j]
	b.I(isa.MOV, asm.R(isa.EBP), asm.MemIdx(isa.SizeD, isa.EDI, isa.EAX, 4, 0))
	b.I(isa.PUSH, asm.R(isa.EBP))
	b.I(isa.MOV, asm.R(isa.EBP), asm.MemIdx(isa.SizeD, isa.EDI, isa.EDX, 4, 0))
	b.I(isa.MOV, asm.MemIdx(isa.SizeD, isa.EDI, isa.EAX, 4, 0), asm.R(isa.EBP))
	b.I(isa.POP, asm.R(isa.EBP))
	b.I(isa.MOV, asm.MemIdx(isa.SizeD, isa.EDI, isa.EDX, 4, 0), asm.R(isa.EBP))
	b.I(isa.ADD, asm.R(isa.ESI), asm.Imm(8))
	b.I(isa.DEC, asm.R(isa.ECX))
	b.J(isa.JNE, name+".br")

	// --- Butterfly stages.
	// Registers: ebx=re, edi=im, ebp=size, esi=start, ecx=k, edx=scratch.
	b.Label(name + ".stages")
	emit.LoadArg(b, isa.EBX, 0)
	emit.LoadArg(b, isa.EDI, 1)
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(2)) // size = 2

	b.Label(name + ".stage")
	if !cfg.DivPerButterfly || cfg.RecomputeTwiddles {
		// The twiddle stride n/size, hoisted (or needed by the per-stage
		// twiddle computation below).
		b.I(isa.MOV, asm.R(isa.EAX), emit.Arg(2))
		b.I(isa.CDQ)
		b.I(isa.IDIV, asm.R(isa.EBP))
		b.I(isa.MOV, asm.Sym(isa.SizeD, name+".step", 0), asm.R(isa.EAX))
	}
	if cfg.RecomputeTwiddles {
		// for k < size/2: idx = k*step; costab[idx] = cos(idx*angc),
		// sintab[idx] = sin(idx*angc). Straightforward C calls the trig
		// functions here rather than precomputing — the cost the fft.c
		// baseline carries.
		b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
		b.Label(name + ".twl")
		b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EBP))
		b.I(isa.SHR, asm.R(isa.EAX), asm.Imm(1))
		b.I(isa.CMP, asm.R(isa.ECX), asm.R(isa.EAX))
		b.J(isa.JGE, name+".twdone")
		b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, name+".step", 0))
		b.I(isa.IMUL, asm.R(isa.EAX), asm.R(isa.ECX))
		b.I(isa.MOV, asm.Sym(isa.SizeD, name+".kvar", 0), asm.R(isa.EAX))
		b.I(isa.MOV, asm.R(isa.EDX), asm.R(isa.EAX)) // idx
		b.I(isa.FILD, asm.R(isa.FP0), asm.Sym(isa.SizeD, name+".kvar", 0))
		b.I(isa.FMUL, asm.R(isa.FP0), asm.Sym(isa.SizeQ, name+".angc", 0))
		b.I(isa.FLD, asm.R(isa.FP1), asm.R(isa.FP0))
		b.I(isa.FCOS, asm.R(isa.FP1))
		b.I(isa.MOV, asm.R(isa.ESI), emit.Arg(3)) // costab
		b.I(isa.FST, asm.MemIdx(isa.SizeD, isa.ESI, isa.EDX, 4, 0), asm.R(isa.FP1))
		b.I(isa.FSIN, asm.R(isa.FP0))
		b.I(isa.MOV, asm.R(isa.ESI), emit.Arg(4)) // sintab
		b.I(isa.FST, asm.MemIdx(isa.SizeD, isa.ESI, isa.EDX, 4, 0), asm.R(isa.FP0))
		b.I(isa.INC, asm.R(isa.ECX))
		b.J(isa.JMP, name+".twl")
		b.Label(name + ".twdone")
	}
	b.I(isa.MOV, asm.R(isa.ESI), asm.Imm(0)) // start = 0

	b.Label(name + ".group")
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0)) // k = 0

	b.Label(name + ".bfly")
	// twiddle index = k * (n / size); table pointers come off the stack.
	if cfg.DivPerButterfly {
		b.I(isa.MOV, asm.R(isa.EAX), emit.Arg(2)) // n
		b.I(isa.CDQ)
		b.I(isa.IDIV, asm.R(isa.EBP)) // eax = n / size
	} else {
		b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, name+".step", 0))
	}
	b.I(isa.IMUL, asm.R(isa.EAX), asm.R(isa.ECX))
	b.I(isa.MOV, asm.R(isa.EDX), asm.R(isa.EAX)) // edx = twiddle index

	// i = start + k, j = i + size/2 (element indices).
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.ESI))
	b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.ECX)) // eax = i
	b.I(isa.PUSH, asm.R(isa.ECX))
	b.I(isa.MOV, asm.R(isa.ECX), asm.R(isa.EBP))
	b.I(isa.SHR, asm.R(isa.ECX), asm.Imm(1))
	b.I(isa.ADD, asm.R(isa.ECX), asm.R(isa.EAX)) // ecx = j

	// Load twiddle w = (wr, wi). Stack now holds one push; args shift by 4.
	pArg := func(i int) isa.Operand { return asm.MemD(isa.ESP, int32(8+4*i)) }
	b.I(isa.PUSH, asm.R(isa.EBP))
	pArg2 := func(i int) isa.Operand { return asm.MemD(isa.ESP, int32(12+4*i)) }
	_ = pArg
	b.I(isa.MOV, asm.R(isa.EBP), pArg2(3))                                      // costab
	b.I(isa.FLD, asm.R(isa.FP6), asm.MemIdx(isa.SizeD, isa.EBP, isa.EDX, 4, 0)) // wr
	b.I(isa.MOV, asm.R(isa.EBP), pArg2(4))                                      // sintab
	b.I(isa.FLD, asm.R(isa.FP7), asm.MemIdx(isa.SizeD, isa.EBP, isa.EDX, 4, 0)) // wi

	// tr = wr*re[j] - wi*im[j]; ti = wr*im[j] + wi*re[j]
	b.I(isa.FLD, asm.R(isa.FP0), asm.R(isa.FP6))
	b.I(isa.FMUL, asm.R(isa.FP0), asm.MemIdx(isa.SizeD, isa.EBX, isa.ECX, 4, 0))
	b.I(isa.FLD, asm.R(isa.FP1), asm.R(isa.FP7))
	b.I(isa.FMUL, asm.R(isa.FP1), asm.MemIdx(isa.SizeD, isa.EDI, isa.ECX, 4, 0))
	b.I(isa.FSUB, asm.R(isa.FP0), asm.R(isa.FP1)) // fp0 = tr
	b.I(isa.FLD, asm.R(isa.FP2), asm.R(isa.FP6))
	b.I(isa.FMUL, asm.R(isa.FP2), asm.MemIdx(isa.SizeD, isa.EDI, isa.ECX, 4, 0))
	b.I(isa.FLD, asm.R(isa.FP3), asm.R(isa.FP7))
	b.I(isa.FMUL, asm.R(isa.FP3), asm.MemIdx(isa.SizeD, isa.EBX, isa.ECX, 4, 0))
	b.I(isa.FADD, asm.R(isa.FP2), asm.R(isa.FP3)) // fp2 = ti

	if cfg.MemTemps {
		// Older library code rounds the temporaries through memory.
		b.I(isa.FST, asm.Sym(isa.SizeD, name+".tmp", 0), asm.R(isa.FP0))
		b.I(isa.FST, asm.Sym(isa.SizeD, name+".tmp", 4), asm.R(isa.FP2))
		b.I(isa.FLD, asm.R(isa.FP0), asm.Sym(isa.SizeD, name+".tmp", 0))
		b.I(isa.FLD, asm.R(isa.FP2), asm.Sym(isa.SizeD, name+".tmp", 4))
	}

	// re[j] = re[i] - tr; re[i] += tr (and the same for im).
	b.I(isa.FLD, asm.R(isa.FP4), asm.MemIdx(isa.SizeD, isa.EBX, isa.EAX, 4, 0))
	b.I(isa.FLD, asm.R(isa.FP5), asm.R(isa.FP4))
	b.I(isa.FSUB, asm.R(isa.FP5), asm.R(isa.FP0))
	b.I(isa.FST, asm.MemIdx(isa.SizeD, isa.EBX, isa.ECX, 4, 0), asm.R(isa.FP5))
	b.I(isa.FADD, asm.R(isa.FP4), asm.R(isa.FP0))
	b.I(isa.FST, asm.MemIdx(isa.SizeD, isa.EBX, isa.EAX, 4, 0), asm.R(isa.FP4))
	b.I(isa.FLD, asm.R(isa.FP4), asm.MemIdx(isa.SizeD, isa.EDI, isa.EAX, 4, 0))
	b.I(isa.FLD, asm.R(isa.FP5), asm.R(isa.FP4))
	b.I(isa.FSUB, asm.R(isa.FP5), asm.R(isa.FP2))
	b.I(isa.FST, asm.MemIdx(isa.SizeD, isa.EDI, isa.ECX, 4, 0), asm.R(isa.FP5))
	b.I(isa.FADD, asm.R(isa.FP4), asm.R(isa.FP2))
	b.I(isa.FST, asm.MemIdx(isa.SizeD, isa.EDI, isa.EAX, 4, 0), asm.R(isa.FP4))

	b.I(isa.POP, asm.R(isa.EBP))
	b.I(isa.POP, asm.R(isa.ECX))

	// k++; k < size/2 ?
	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.MOV, asm.R(isa.EDX), asm.R(isa.EBP))
	b.I(isa.SHR, asm.R(isa.EDX), asm.Imm(1))
	b.I(isa.CMP, asm.R(isa.ECX), asm.R(isa.EDX))
	b.J(isa.JL, name+".bfly")

	// start += size; start < n ?
	b.I(isa.ADD, asm.R(isa.ESI), asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.ESI), emit.Arg(2))
	b.J(isa.JL, name+".group")

	// size <<= 1; size <= n ?
	b.I(isa.SHL, asm.R(isa.EBP), asm.Imm(1))
	b.I(isa.CMP, asm.R(isa.EBP), emit.Arg(2))
	b.J(isa.JLE, name+".stage")
	b.Ret()
}

// TwiddleTablesF32 builds the float32 cos/sin tables (cos(2πk/n),
// -sin(2πk/n)) the FFT routines consume.
func TwiddleTablesF32(n int) (cos, sin []float32) {
	cos = make([]float32, n/2)
	sin = make([]float32, n/2)
	for k := 0; k < n/2; k++ {
		ang := 2 * math.Pi * float64(k) / float64(n)
		cos[k] = float32(math.Cos(ang))
		sin[k] = float32(-math.Sin(ang))
	}
	return cos, sin
}

// BitReverseSwaps builds the (i, j) swap list with i < j for an n-point
// bit-reverse permutation.
func BitReverseSwaps(n int) []int32 {
	var out []int32
	j := 0
	for i := 1; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			out = append(out, int32(i), int32(j))
		}
	}
	return out
}

// ModelFftF32 mirrors the assembly FFT cores operation for operation:
// float32 storage, float64 arithmetic in the FP registers, optional
// float32 rounding of the butterfly temporaries (the MemTemps preset).
func ModelFftF32(re, im []float32, cos, sin []float32, memTemps bool) {
	n := len(re)
	// Bit-reverse (the swap table is equivalent to this in-place pass).
	j := 0
	for i := 1; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < size/2; k++ {
				idx := k * step
				wr := float64(cos[idx])
				wi := float64(sin[idx])
				i := start + k
				jj := i + size/2
				tr := wr*float64(re[jj]) - wi*float64(im[jj])
				ti := wr*float64(im[jj]) + wi*float64(re[jj])
				if memTemps {
					tr = float64(float32(tr))
					ti = float64(float32(ti))
				}
				oldRe := float64(re[i])
				re[jj] = float32(oldRe - tr)
				re[i] = float32(oldRe + tr)
				oldIm := float64(im[i])
				im[jj] = float32(oldIm - ti)
				im[i] = float32(oldIm + ti)
			}
		}
	}
}
