package fplib

import (
	"math"
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/dsp"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/synth"
	"mmxdsp/internal/vm"
)

func runProgram(t *testing.T, b *asm.Builder) *vm.CPU {
	t.Helper()
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	c := vm.New(p)
	if err := c.Run(1 << 26); err != nil {
		t.Fatal(err)
	}
	return c
}

func readF32s(c *vm.CPU, sym string, n int) []float32 {
	addr := c.Prog.Addr(sym)
	out := make([]float32, n)
	for i := range out {
		raw, ok := c.Mem.LoadU32(addr + uint32(4*i))
		if !ok {
			panic("readF32s out of range")
		}
		out[i] = math.Float32frombits(raw)
	}
	return out
}

func TestFpFirMatchesReference(t *testing.T) {
	const taps = 35
	const samples = 64
	coefF := dsp.LowpassFIR(taps, 0.125)
	coef32 := make([]float32, taps)
	for i, v := range coefF {
		coef32[i] = float32(v)
	}
	input := synth.MultiTone(samples, 3, 0.05, 0.21)
	in32 := make([]float32, samples)
	for i, v := range input {
		in32[i] = float32(v)
	}

	b := asm.NewBuilder("t")
	EmitFirF32(b)
	b.Floats("coef", coef32)
	b.Floats("in", in32)
	b.Reserve("hist", 4*taps)
	b.Reserve("out", 4*samples)
	b.Entry()
	b.Proc("main")
	// for each sample: out[i] = fpFir(hist, coef, taps, in[i])
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(0))
	b.Label("sample")
	b.I(isa.MOV, asm.R(isa.EAX), asm.SymIdx(isa.SizeD, "in", isa.EBP, 4, 0))
	emit.Call(b, "fpFir", asm.ImmSym("hist", 0), asm.ImmSym("coef", 0),
		asm.Imm(taps), asm.R(isa.EAX))
	b.I(isa.FST, asm.SymIdx(isa.SizeD, "out", isa.EBP, 4, 0), asm.R(isa.FP0))
	b.I(isa.INC, asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.EBP), asm.Imm(samples))
	b.J(isa.JL, "sample")
	b.I(isa.HALT)

	c := runProgram(t, b)
	got := readF32s(c, "out", samples)

	// Reference: float32 history, float64 accumulation — mirroring the asm.
	hist := make([]float32, taps)
	for i := 0; i < samples; i++ {
		copy(hist[1:], hist)
		hist[0] = in32[i]
		var acc float64
		for k := 0; k < taps; k++ {
			acc += float64(hist[k]) * float64(coef32[k])
		}
		want := float32(acc)
		if got[i] != want {
			t.Fatalf("sample %d: vm %g, ref %g", i, got[i], want)
		}
	}
}

func TestFpIirBlockMatchesReference(t *testing.T) {
	bc, ac := dsp.ButterworthBandpass(4, 0.1, 0.2)
	ref := dsp.NewIIR(bc, ac)
	const blocks = 8
	const blockLen = 8
	input := synth.MultiTone(blocks*blockLen, 5, 0.15, 0.33)

	nb := len(bc)     // 9
	na := len(ac) - 1 // 8

	b := asm.NewBuilder("t")
	EmitIirBlockF64(b)
	// State block: nb, na (dwords), then b, a, xh, yh doubles.
	// The state block must be contiguous: histories are zero-initialized
	// doubles in the data section, not BSS.
	b.Dwords("state.hdr", []int32{int32(nb), int32(na)})
	b.Doubles("state.b", bc)
	b.Doubles("state.a", ac[1:])
	b.Doubles("state.xh", make([]float64, nb))
	b.Doubles("state.yh", make([]float64, na))
	b.Doubles("in", input)
	b.Reserve("out", 8*blocks*blockLen)
	b.Entry()
	b.Proc("main")
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(0))
	b.Label("blk")
	// in/out pointers for this block.
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EBP))
	b.I(isa.SHL, asm.R(isa.EAX), asm.Imm(6)) // blockLen*8 bytes
	b.I(isa.MOV, asm.R(isa.EBX), asm.ImmSym("in", 0))
	b.I(isa.ADD, asm.R(isa.EBX), asm.R(isa.EAX))
	b.I(isa.MOV, asm.R(isa.ECX), asm.ImmSym("out", 0))
	b.I(isa.ADD, asm.R(isa.ECX), asm.R(isa.EAX))
	b.I(isa.PUSH, asm.R(isa.EBP)) // all registers are caller-saved
	emit.Call(b, "fpIirBlock", asm.ImmSym("state.hdr", 0), asm.R(isa.EBX),
		asm.R(isa.ECX), asm.Imm(blockLen))
	b.I(isa.POP, asm.R(isa.EBP))
	b.I(isa.INC, asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.EBP), asm.Imm(blocks))
	b.J(isa.JL, "blk")
	b.I(isa.HALT)

	c := runProgram(t, b)
	addr := c.Prog.Addr("out")
	for i := 0; i < blocks*blockLen; i++ {
		raw, _ := c.Mem.LoadU64(addr + uint32(8*i))
		got := math.Float64frombits(raw)
		want := ref.Process(input[i])
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("sample %d: vm %g, ref %g", i, got, want)
		}
	}
}

func TestFpFftMatchesFloatFFT(t *testing.T) {
	const n = 64
	sig := synth.MultiTone(n, 7, 0.1, 0.3)
	re32 := make([]float32, n)
	im32 := make([]float32, n)
	for i, v := range sig {
		re32[i] = float32(v)
	}
	cos, sin := TwiddleTablesF32(n)
	swaps := BitReverseSwaps(n)

	b := asm.NewBuilder("t")
	EmitFftF32(b)
	b.Floats("re", re32)
	b.Floats("im", im32)
	b.Floats("cos", cos)
	b.Floats("sin", sin)
	b.Dwords("br", swaps)
	b.Entry()
	b.Proc("main")
	emit.Call(b, "fpFft", asm.ImmSym("re", 0), asm.ImmSym("im", 0), asm.Imm(n),
		asm.ImmSym("cos", 0), asm.ImmSym("sin", 0), asm.ImmSym("br", 0),
		asm.Imm(int64(len(swaps)/2)))
	b.I(isa.HALT)

	c := runProgram(t, b)
	gotRe := readF32s(c, "re", n)
	gotIm := readF32s(c, "im", n)

	wantRe := make([]float64, n)
	wantIm := make([]float64, n)
	for i, v := range sig {
		wantRe[i] = v
	}
	if err := dsp.FFT(wantRe, wantIm); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		if math.Abs(float64(gotRe[k])-wantRe[k]) > 1e-3 ||
			math.Abs(float64(gotIm[k])-wantIm[k]) > 1e-3 {
			t.Fatalf("bin %d: vm (%g, %g), ref (%g, %g)",
				k, gotRe[k], gotIm[k], wantRe[k], wantIm[k])
		}
	}
}

func TestBitReverseSwapsMatchesPermutation(t *testing.T) {
	for _, n := range []int{4, 8, 32, 256} {
		swaps := BitReverseSwaps(n)
		// Applying the swaps must equal the reference bit-reverse of an
		// index ramp.
		v := make([]float64, n)
		w := make([]float64, n)
		for i := range v {
			v[i] = float64(i)
			w[i] = float64(i)
		}
		for i := 0; i < len(swaps); i += 2 {
			a, bIdx := swaps[i], swaps[i+1]
			v[a], v[bIdx] = v[bIdx], v[a]
		}
		im := make([]float64, n)
		// dsp's internal bitReverse is exercised through FFT; emulate here.
		j := 0
		for i := 1; i < n; i++ {
			bit := n >> 1
			for ; j&bit != 0; bit >>= 1 {
				j ^= bit
			}
			j |= bit
			if i < j {
				w[i], w[j] = w[j], w[i]
			}
		}
		_ = im
		for i := range v {
			if v[i] != w[i] {
				t.Fatalf("n=%d: swap list diverges at %d", n, i)
			}
		}
	}
}

func TestTwiddleTables(t *testing.T) {
	cos, sin := TwiddleTablesF32(8)
	if len(cos) != 4 || len(sin) != 4 {
		t.Fatal("table length")
	}
	if cos[0] != 1 || sin[0] != 0 {
		t.Errorf("k=0 twiddle = (%g, %g)", cos[0], sin[0])
	}
	if math.Abs(float64(cos[2])) > 1e-7 || math.Abs(float64(sin[2])+1) > 1e-7 {
		t.Errorf("k=2 twiddle = (%g, %g), want (0, -1)", cos[2], sin[2])
	}
}
