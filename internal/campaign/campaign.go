package campaign

import (
	"context"
	"sync"
	"time"
)

// Campaign statuses.
const (
	StatusRunning   = "running"
	StatusCompleted = "completed"
	StatusCanceled  = "canceled"
)

// Point statuses.
const (
	PointPending  = "pending"
	PointRunning  = "running"
	PointDone     = "done"
	PointFailed   = "failed"
	PointCanceled = "canceled"
)

// PointState is one grid cell plus its execution outcome.
type PointState struct {
	Point
	Status string
	// Cached marks a point answered by a result cache (either tier) with
	// zero simulation work.
	Cached bool
	// Err carries the failure message for PointFailed points.
	Err string
	// Simulation outcome, valid when Status == PointDone.
	Cycles   uint64
	Instrs   uint64
	L1Misses uint64
	L2Misses uint64
}

// Event is one progress update, streamed over SSE and embedded in status
// responses. Counters are cumulative; a terminal event has Status set to
// StatusCompleted or StatusCanceled.
type Event struct {
	Status   string `json:"status"`
	Total    int    `json:"total"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Cached   int    `json:"cached"`
	Canceled int    `json:"canceled"`
	// ETAms estimates remaining wall time from the observed point rate
	// (0 until the first point retires, and for terminal events).
	ETAms int64 `json:"eta_ms"`
}

// Campaign is one submitted grid: the expanded points, live progress
// counters, subscriber fan-out and (on completion) rendered artifacts.
type Campaign struct {
	ID      string
	Spec    *Spec
	Tenant  string
	Created time.Time

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	points   []PointState
	status   string
	done     int
	failed   int
	cached   int
	canceled int
	started  time.Time
	finished time.Time
	// simInstrs sums instructions actually simulated (cache hits are
	// free), mirroring the tenant-quota debit rule.
	simInstrs int64
	subs      map[int]chan Event
	nextSub   int
	// csv and markdown hold the rendered artifacts once terminal.
	csv      []byte
	markdown []byte
	doneCh   chan struct{}
}

// New builds a campaign around an expanded grid. parent scopes the
// campaign's lifetime (typically the server's drain context — NOT the
// creating HTTP request, which returns immediately).
func New(parent context.Context, id string, spec *Spec, points []Point, tenant string) *Campaign {
	ctx, cancel := context.WithCancel(parent)
	c := &Campaign{
		ID:      id,
		Spec:    spec,
		Tenant:  tenant,
		Created: time.Now(),
		ctx:     ctx,
		cancel:  cancel,
		points:  make([]PointState, len(points)),
		status:  StatusRunning,
		started: time.Now(),
		subs:    make(map[int]chan Event),
		doneCh:  make(chan struct{}),
	}
	for i, p := range points {
		c.points[i] = PointState{Point: p, Status: PointPending}
	}
	return c
}

// Context returns the campaign's cancellation context; point executions
// run under it.
func (c *Campaign) Context() context.Context { return c.ctx }

// Cancel stops the campaign: queued points stay unrun and in-flight points
// are interrupted through the usual context plumbing. Idempotent.
func (c *Campaign) Cancel() { c.cancel() }

// Done returns a channel closed when the campaign reaches a terminal
// status.
func (c *Campaign) Done() <-chan struct{} { return c.doneCh }

// Status returns the current status string.
func (c *Campaign) Status() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status
}

// SimulatedInstrs returns instructions actually simulated so far (the
// tenant-quota debit).
func (c *Campaign) SimulatedInstrs() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.simInstrs
}

// Snapshot returns the current progress event.
func (c *Campaign) Snapshot() Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.eventLocked()
}

// PointsSnapshot copies the per-point states (for status listings and
// tests).
func (c *Campaign) PointsSnapshot() []PointState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]PointState(nil), c.points...)
}

// Artifacts returns the rendered CSV and Markdown, empty until the
// campaign completes.
func (c *Campaign) Artifacts() (csv, markdown []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.csv, c.markdown
}

// eventLocked builds the progress event; callers hold mu.
func (c *Campaign) eventLocked() Event {
	ev := Event{
		Status:   c.status,
		Total:    len(c.points),
		Done:     c.done,
		Failed:   c.failed,
		Cached:   c.cached,
		Canceled: c.canceled,
	}
	settled := c.done + c.failed + c.canceled
	if c.status == StatusRunning && c.done > 0 && settled < len(c.points) {
		elapsed := time.Since(c.started)
		perPoint := elapsed / time.Duration(c.done)
		ev.ETAms = int64(perPoint * time.Duration(len(c.points)-settled) / time.Millisecond)
	}
	return ev
}

// Subscribe registers a progress listener. Events are delivered lossily
// (a slow reader skips intermediate updates) but never block the runner;
// the channel closes when the campaign reaches a terminal status, after
// which the subscriber reads the final state via Snapshot.
func (c *Campaign) Subscribe() (<-chan Event, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextSub
	c.nextSub++
	ch := make(chan Event, 16)
	if c.status != StatusRunning {
		// Already terminal: deliver the final event and close.
		ch <- c.eventLocked()
		close(ch)
		return ch, func() {}
	}
	c.subs[id] = ch
	ch <- c.eventLocked()
	return ch, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if _, ok := c.subs[id]; ok {
			delete(c.subs, id)
			close(ch)
		}
	}
}

// publishLocked fans the current event out to subscribers, dropping
// updates a full subscriber has not drained; callers hold mu.
func (c *Campaign) publishLocked() {
	ev := c.eventLocked()
	for _, ch := range c.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// markRunning transitions a pending point to running.
func (c *Campaign) markRunning(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.points[i].Status = PointRunning
}

// markDone records a successful point.
func (c *Campaign) markDone(i int, res PointResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ps := &c.points[i]
	ps.Status = PointDone
	ps.Cached = res.Cached
	ps.Cycles = res.Cycles
	ps.Instrs = res.Instrs
	ps.L1Misses = res.L1Misses
	ps.L2Misses = res.L2Misses
	c.done++
	if res.Cached {
		c.cached++
	} else {
		c.simInstrs += int64(res.Instrs)
	}
	c.publishLocked()
}

// markFailed records a genuinely failed point (never used for
// cancellation — canceled campaigns report zero failures by
// construction, mirroring the 499-vs-5xx run classification).
func (c *Campaign) markFailed(i int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.points[i].Status = PointFailed
	c.points[i].Err = err.Error()
	c.failed++
	c.publishLocked()
}

// markCanceled records a point stopped by campaign cancellation.
func (c *Campaign) markCanceled(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.points[i].Status = PointCanceled
	c.canceled++
	c.publishLocked()
}

// finish moves the campaign to its terminal status, renders artifacts for
// completed campaigns, publishes the terminal event and closes every
// subscriber.
func (c *Campaign) finish() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.status != StatusRunning {
		return
	}
	if c.ctx.Err() != nil || c.canceled > 0 {
		c.status = StatusCanceled
	} else {
		c.status = StatusCompleted
		c.csv, c.markdown = renderArtifacts(c.Spec, c.points)
	}
	c.finished = time.Now()
	c.cancel()
	ev := c.eventLocked()
	for id, ch := range c.subs {
		// The terminal event must not be lost to a full buffer: drop one
		// stale update to make room, then close.
		select {
		case ch <- ev:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- ev:
			default:
			}
		}
		close(ch)
		delete(c.subs, id)
	}
	close(c.doneCh)
}

// Terminal reports whether the campaign has finished (any terminal
// status).
func (c *Campaign) Terminal() bool {
	select {
	case <-c.doneCh:
		return true
	default:
		return false
	}
}
