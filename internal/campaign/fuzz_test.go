package campaign

import (
	"testing"
)

// FuzzParseCampaignRequest hammers the grid parser/expander with arbitrary
// bytes. The invariants: no panic, no pathological allocation (absurd
// grids must die by multiplication in validate, not by materialization in
// expand — the harness's memory limit enforces this), and on success the
// expansion is bounded, internally consistent and deterministic.
func FuzzParseCampaignRequest(f *testing.F) {
	seeds := []string{
		// The happy path and its variations.
		`{"programs":["fir.mmx"]}`,
		`{"programs":["fir.mmx","fir.c"],"dispatch":["block","trace"]}`,
		`{"programs":["fir.mmx"],"axes":{"l1_size":[8192,16384,32768],"mul_latency":[1,3,5]}}`,
		`{"programs":["fir.mmx"],"axes":{"disable_pairing":[0,1],"disable_btb":[0,1],"perfect_cache":[0,1]}}`,
		`{"programs":["fir.mmx"],"axes":{"line_bytes":[16,32,64],"l2_size":[262144,524288]},"max_instrs":100000,"skip_check":true,"timeout_ms":5000}`,
		// Near-miss rejections steer the fuzzer at validation edges.
		`{"programs":["fir.mmx"],"axes":{"l1_size":[12]}}`,
		`{"programs":["fir.mmx"],"axes":{"mul_latency":[0]}}`,
		`{"programs":["fir.mmx"],"axes":{"mul_latency":[1],"mmx_mul_latency":[2]}}`,
		`{"programs":["fir.mmx"],"axes":{"l1_size":[1024],"line_bytes":[256]}}`,
		`{"programs":["a","a"]}`,
		`{"programs":[]}`,
		`{"programs":["fir.mmx"],"bogus":true}`,
		`{`,
		``,
		// A grid that must be rejected by counting, never expanded.
		`{"programs":["a","b","c","d"],"dispatch":["block","trace","generic","predecode"],"axes":{"emms_latency":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16],"mul_latency":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16],"mispredict_penalty":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	lim := DefaultLimits()
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, points, err := ParseSpec(data, lim)
		if err != nil {
			if spec != nil || points != nil {
				t.Fatal("non-nil results alongside an error")
			}
			return
		}
		if len(points) > lim.MaxPoints {
			t.Fatalf("expansion %d exceeds MaxPoints %d", len(points), lim.MaxPoints)
		}
		if got := spec.PointCount(); got != len(points) {
			t.Fatalf("PointCount %d != expanded %d", got, len(points))
		}
		for i, p := range points {
			if p.Index != i {
				t.Fatalf("point %d has Index %d", i, p.Index)
			}
			if len(p.Values) != len(spec.AxisOrder()) {
				t.Fatalf("point %d has %d values for %d axes", i, len(p.Values), len(spec.AxisOrder()))
			}
			if len(p.Body) == 0 {
				t.Fatalf("point %d has empty body", i)
			}
		}
		// Determinism: re-parsing the same bytes renders the same grid.
		_, again, err := ParseSpec(data, lim)
		if err != nil {
			t.Fatalf("second parse failed: %v", err)
		}
		for i := range points {
			if string(points[i].Body) != string(again[i].Body) {
				t.Fatalf("point %d body nondeterministic", i)
			}
		}
	})
}
