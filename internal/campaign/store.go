package campaign

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
)

// Store is a bounded in-memory campaign registry. Active (running)
// campaigns are capped — creation past the cap is a load-shed the tiers
// answer with 429 — and terminal campaigns are retained FIFO up to a
// separate cap so clients can poll results after completion.
type Store struct {
	mu         sync.Mutex
	campaigns  map[string]*Campaign
	order      []string // insertion order, for terminal eviction
	maxActive  int
	maxRetain  int
	activeRuns int
}

// ErrTooManyCampaigns is returned when the active-campaign cap is hit;
// tiers map it to 429.
var ErrTooManyCampaigns = fmt.Errorf("too many active campaigns")

// NewStore builds a store; non-positive caps select the defaults
// (4 active, 64 retained).
func NewStore(maxActive, maxRetain int) *Store {
	if maxActive <= 0 {
		maxActive = 4
	}
	if maxRetain <= 0 {
		maxRetain = 64
	}
	return &Store{
		campaigns: make(map[string]*Campaign),
		maxActive: maxActive,
		maxRetain: maxRetain,
	}
}

// NewID returns a fresh 16-hex-char campaign ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("campaign: reading random ID: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// Add registers a freshly created (running) campaign, enforcing the
// active cap and evicting the oldest terminal campaigns past the
// retention cap.
func (s *Store) Add(c *Campaign) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.activeRuns >= s.maxActive {
		return ErrTooManyCampaigns
	}
	s.activeRuns++
	s.campaigns[c.ID] = c
	s.order = append(s.order, c.ID)
	// Evict oldest terminal campaigns beyond the retention cap; running
	// ones are never evicted.
	for len(s.campaigns) > s.maxRetain {
		evicted := false
		for i, id := range s.order {
			old := s.campaigns[id]
			if old != nil && old.Terminal() {
				delete(s.campaigns, id)
				s.order = append(s.order[:i:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break
		}
	}
	return nil
}

// Settle marks a campaign's run finished, freeing its active slot. Safe
// to call once per campaign (the runner's completion path).
func (s *Store) Settle() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.activeRuns > 0 {
		s.activeRuns--
	}
}

// Get looks a campaign up by ID.
func (s *Store) Get(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// Active returns the number of running campaigns.
func (s *Store) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.activeRuns
}
