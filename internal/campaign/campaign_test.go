package campaign

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeExecutor scripts point outcomes for runner tests.
type fakeExecutor struct {
	mu    sync.Mutex
	runs  int
	fn    func(ctx context.Context, p Point) (PointResult, error)
	block chan struct{} // when non-nil, RunPoint waits on it (cancel tests)
}

func (f *fakeExecutor) RunPoint(ctx context.Context, p Point) (PointResult, error) {
	f.mu.Lock()
	f.runs++
	f.mu.Unlock()
	if f.block != nil {
		select {
		case <-f.block:
		case <-ctx.Done():
			return PointResult{}, ctx.Err()
		}
	}
	if f.fn != nil {
		return f.fn(ctx, p)
	}
	return PointResult{Cycles: 100, Instrs: 10}, nil
}

func (f *fakeExecutor) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.runs
}

func newTestCampaign(t *testing.T, spec string) *Campaign {
	t.Helper()
	s, points, err := ParseSpec([]byte(spec), DefaultLimits())
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	return New(context.Background(), NewID(), s, points, "tenant-a")
}

func TestRunCompletesAndRendersArtifacts(t *testing.T) {
	c := newTestCampaign(t, `{"programs":["fir.mmx"],"axes":{"l1_size":[8192,16384,32768]}}`)
	ex := &fakeExecutor{fn: func(_ context.Context, p Point) (PointResult, error) {
		// Cycles shrink as L1 grows, so the sensitivity table is non-flat.
		return PointResult{Cycles: uint64(1000000 / p.Values[0]), Instrs: 500}, nil
	}}
	Run(c, ex, RunnerConfig{})

	if c.Status() != StatusCompleted {
		t.Fatalf("status %q, want completed", c.Status())
	}
	ev := c.Snapshot()
	if ev.Done != 3 || ev.Failed != 0 || ev.Canceled != 0 {
		t.Fatalf("terminal event %+v", ev)
	}
	if got := c.SimulatedInstrs(); got != 1500 {
		t.Fatalf("SimulatedInstrs = %d, want 1500", got)
	}
	csv, md := c.Artifacts()
	if !strings.HasPrefix(string(csv), "program,dispatch,l1_size,cycles,instructions,l1_misses,l2_misses\n") {
		t.Fatalf("csv header wrong:\n%s", csv)
	}
	if !strings.Contains(string(csv), "fir.mmx,auto,8192,122,500,0,0") {
		t.Fatalf("csv lacks the 8192 row:\n%s", csv)
	}
	if !strings.Contains(string(md), "## Axis `l1_size`") || !strings.Contains(string(md), "fir.mmx") {
		t.Fatalf("markdown lacks the axis section:\n%s", md)
	}
	if !c.Terminal() {
		t.Fatal("Terminal() false after Run returned")
	}
}

func TestRunArtifactsDeterministic(t *testing.T) {
	const spec = `{"programs":["fir.mmx","fir.c"],"dispatch":["block","trace"],"axes":{"mul_latency":[1,3],"emms_latency":[0,25]}}`
	render := func() (string, string) {
		c := newTestCampaign(t, spec)
		ex := &fakeExecutor{fn: func(_ context.Context, p Point) (PointResult, error) {
			// Deterministic function of the cell, like real simulation.
			cycles := uint64(1000+17*p.Values[0]+3*p.Values[1]) + uint64Hash(p.Program, p.Dispatch)
			return PointResult{Cycles: cycles, Instrs: 100}, nil
		}}
		Run(c, ex, RunnerConfig{Workers: 3})
		csv, md := c.Artifacts()
		return string(csv), string(md)
	}
	csv1, md1 := render()
	csv2, md2 := render()
	if csv1 != csv2 || md1 != md2 {
		t.Fatal("artifacts differ across identical campaigns")
	}
}

func uint64Hash(parts ...string) uint64 {
	var h uint64 = 14695981039346656037
	for _, s := range parts {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211
		}
	}
	return h % 1000
}

// TestCancelClassifiesPointsCanceledNotFailed is the 499-rule regression:
// a canceled campaign must report canceled points, never failed ones, no
// matter how the executor surfaces the interruption.
func TestCancelClassifiesPointsCanceledNotFailed(t *testing.T) {
	c := newTestCampaign(t, `{"programs":["fir.mmx"],"axes":{"mul_latency":[1,2,3,4,5,6,7,8]}}`)
	started := make(chan struct{}, 8)
	ex := &fakeExecutor{}
	ex.fn = func(ctx context.Context, p Point) (PointResult, error) {
		started <- struct{}{}
		<-ctx.Done()
		// Executors wrap the cause; the runner must still classify this
		// as canceled via errors.Is.
		return PointResult{}, fmt.Errorf("point interrupted: %w", ctx.Err())
	}
	var outcomes sync.Map
	done := make(chan struct{})
	go func() {
		defer close(done)
		Run(c, ex, RunnerConfig{Workers: 2, OnPoint: func(_ time.Duration, outcome string, _ bool) {
			v, _ := outcomes.LoadOrStore(outcome, new(atomic.Int64))
			v.(*atomic.Int64).Add(1)
		}})
	}()
	<-started // at least one point is in flight
	c.Cancel()
	<-done

	if c.Status() != StatusCanceled {
		t.Fatalf("status %q, want canceled", c.Status())
	}
	ev := c.Snapshot()
	if ev.Failed != 0 {
		t.Fatalf("canceled campaign reports %d failed points", ev.Failed)
	}
	if ev.Canceled+ev.Done != ev.Total {
		t.Fatalf("counters do not sum: %+v", ev)
	}
	if v, ok := outcomes.Load(PointFailed); ok {
		t.Fatalf("OnPoint saw %d failed outcomes in a canceled campaign", v.(*atomic.Int64).Load())
	}
	// Canceled campaigns render no artifacts (the grid is incomplete).
	if csv, md := c.Artifacts(); len(csv) != 0 || len(md) != 0 {
		t.Fatal("canceled campaign rendered artifacts")
	}
}

func TestRunClassifiesGenuineFailures(t *testing.T) {
	c := newTestCampaign(t, `{"programs":["fir.mmx"],"axes":{"mul_latency":[1,2]}}`)
	ex := &fakeExecutor{fn: func(_ context.Context, p Point) (PointResult, error) {
		if p.Values[0] == 2 {
			return PointResult{}, errors.New("backend exploded")
		}
		return PointResult{Cycles: 10, Instrs: 1}, nil
	}}
	Run(c, ex, RunnerConfig{Workers: 1})
	ev := c.Snapshot()
	if ev.Done != 1 || ev.Failed != 1 {
		t.Fatalf("event %+v, want 1 done / 1 failed", ev)
	}
	// A failed (not canceled) campaign still completes.
	if c.Status() != StatusCompleted {
		t.Fatalf("status %q", c.Status())
	}
	var failed *PointState
	for i, ps := range c.PointsSnapshot() {
		if ps.Status == PointFailed {
			p := c.PointsSnapshot()[i]
			failed = &p
		}
	}
	if failed == nil || !strings.Contains(failed.Err, "backend exploded") {
		t.Fatalf("failed point state %+v", failed)
	}
}

func TestCachedPointsAreQuotaFree(t *testing.T) {
	c := newTestCampaign(t, `{"programs":["fir.mmx"],"axes":{"mul_latency":[1,2]}}`)
	ex := &fakeExecutor{fn: func(_ context.Context, p Point) (PointResult, error) {
		return PointResult{Cycles: 10, Instrs: 1000, Cached: p.Values[0] == 2}, nil
	}}
	Run(c, ex, RunnerConfig{Workers: 1})
	if got := c.SimulatedInstrs(); got != 1000 {
		t.Fatalf("SimulatedInstrs = %d, want 1000 (cached point must be free)", got)
	}
	if ev := c.Snapshot(); ev.Cached != 1 {
		t.Fatalf("event %+v, want 1 cached", ev)
	}
}

func TestSubscribeDeliversTerminalEvent(t *testing.T) {
	c := newTestCampaign(t, `{"programs":["fir.mmx"],"axes":{"mul_latency":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20]}}`)
	ch, unsub := c.Subscribe()
	defer unsub()
	// A deliberately slow subscriber: the 20-point campaign overflows the
	// 16-slot buffer, yet the terminal event must still arrive.
	Run(c, &fakeExecutor{}, RunnerConfig{Workers: 4})
	var last Event
	for ev := range ch {
		last = ev
	}
	if last.Status != StatusCompleted || last.Done != 20 {
		t.Fatalf("terminal event %+v", last)
	}
	// Subscribing after the end yields the final event immediately.
	ch2, unsub2 := c.Subscribe()
	defer unsub2()
	select {
	case ev := <-ch2:
		if ev.Status != StatusCompleted {
			t.Fatalf("late subscriber got %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("late subscriber got no event")
	}
}

func TestStoreBoundsActiveCampaigns(t *testing.T) {
	st := NewStore(2, 4)
	mk := func() *Campaign { return newTestCampaign(t, `{"programs":["fir.mmx"]}`) }
	a, b := mk(), mk()
	if err := st.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(b); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(mk()); !errors.Is(err, ErrTooManyCampaigns) {
		t.Fatalf("third active campaign admitted: %v", err)
	}
	if st.Active() != 2 {
		t.Fatalf("Active = %d", st.Active())
	}
	// Settling frees a slot; the finished campaign stays retrievable.
	Run(a, &fakeExecutor{}, RunnerConfig{})
	st.Settle()
	if err := st.Add(mk()); err != nil {
		t.Fatalf("slot not freed after Settle: %v", err)
	}
	if _, ok := st.Get(a.ID); !ok {
		t.Fatal("terminal campaign evicted while under retention")
	}
}
