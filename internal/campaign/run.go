package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// PointResult is the structured outcome of one executed point.
type PointResult struct {
	Cycles   uint64
	Instrs   uint64
	L1Misses uint64
	L2Misses uint64
	// Cached marks a result-cache answer (no simulation work done).
	Cached bool
}

// Executor runs one grid point. mmxd executes locally through its result
// cache and admission control; mmxfleet routes the point to its
// cache-affine backend. ctx is the campaign context joined with any
// per-point deadline; an error caused by cancellation must wrap
// context.Canceled so the runner classifies the point canceled, not
// failed.
type Executor interface {
	RunPoint(ctx context.Context, p Point) (PointResult, error)
}

// RunnerConfig tunes campaign execution.
type RunnerConfig struct {
	// Workers bounds concurrent points (<=0 selects 4). The executor's
	// own admission control provides the hard backpressure; this only
	// keeps one campaign from monopolizing the queue.
	Workers int
	// OnPoint observes each settled point for metrics: wall is the
	// point's execution time, outcome one of PointDone/PointFailed/
	// PointCanceled.
	OnPoint func(wall time.Duration, outcome string, cached bool)
}

// Run executes every point of the campaign through ex and blocks until
// the campaign reaches a terminal status. Tiers call it on a background
// goroutine; cancellation arrives through the campaign's own context.
func Run(c *Campaign, ex Executor, cfg RunnerConfig) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	if n := len(c.points); workers > n {
		workers = n
	}
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range c.points {
			select {
			case idx <- i:
			case <-c.ctx.Done():
				// Drain: remaining points are canceled, not dropped, so
				// counters always sum to the total — in /metrics too.
				c.markCanceled(i)
				if cfg.OnPoint != nil {
					cfg.OnPoint(0, PointCanceled, false)
				}
			}
		}
	}()
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range idx {
				runOne(c, ex, cfg, i)
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	c.finish()
}

// runOne executes and classifies a single point.
func runOne(c *Campaign, ex Executor, cfg RunnerConfig, i int) {
	if c.ctx.Err() != nil {
		c.markCanceled(i)
		if cfg.OnPoint != nil {
			cfg.OnPoint(0, PointCanceled, false)
		}
		return
	}
	c.markRunning(i)
	start := time.Now()
	res, err := ex.RunPoint(c.ctx, c.points[i].Point)
	wall := time.Since(start)
	outcome := PointDone
	switch {
	case err == nil:
		c.markDone(i, res)
	case c.ctx.Err() != nil || errors.Is(err, context.Canceled):
		// Client-initiated cancellation is never the fleet's fault: the
		// point is canceled, not failed (the 499 classification).
		outcome = PointCanceled
		c.markCanceled(i)
	default:
		outcome = PointFailed
		c.markFailed(i, err)
	}
	if cfg.OnPoint != nil {
		cfg.OnPoint(wall, outcome, err == nil && res.Cached)
	}
}

// ParsePointMetrics extracts the simulation metrics from a marshaled /run
// response body. Both tiers execute points through their ordinary /run
// machinery (which is what makes caching and routing free), so the
// structured outcome is recovered from the response envelope.
func ParsePointMetrics(body []byte) (PointResult, error) {
	var env struct {
		Report *struct {
			Cycles              uint64
			DynamicInstructions uint64
			L1Misses            uint64
			L2Misses            uint64
		} `json:"report"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		return PointResult{}, fmt.Errorf("decoding point response: %w", err)
	}
	if env.Report == nil {
		return PointResult{}, fmt.Errorf("point response has no report")
	}
	return PointResult{
		Cycles:   env.Report.Cycles,
		Instrs:   env.Report.DynamicInstructions,
		L1Misses: env.Report.L1Misses,
		L2Misses: env.Report.L2Misses,
	}, nil
}
