package campaign

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func mustParse(t *testing.T, spec string) (*Spec, []Point) {
	t.Helper()
	s, points, err := ParseSpec([]byte(spec), DefaultLimits())
	if err != nil {
		t.Fatalf("ParseSpec(%s): %v", spec, err)
	}
	return s, points
}

func TestParseSpecExpandsDeterministically(t *testing.T) {
	const spec = `{
		"programs": ["fir.mmx", "fir.c"],
		"dispatch": ["block", "trace"],
		"axes": {"mul_latency": [1, 3], "l1_size": [8192, 16384]}
	}`
	s, points := mustParse(t, spec)

	if got := s.PointCount(); got != 16 {
		t.Fatalf("PointCount = %d, want 16", got)
	}
	if len(points) != 16 {
		t.Fatalf("expanded %d points, want 16", len(points))
	}
	// Axis order is sorted by name: l1_size before mul_latency.
	if order := s.AxisOrder(); order[0] != "l1_size" || order[1] != "mul_latency" {
		t.Fatalf("AxisOrder = %v, want [l1_size mul_latency]", order)
	}
	// First point: first program, first dispatch, first value of each axis.
	p0 := points[0]
	if p0.Program != "fir.mmx" || p0.Dispatch != "block" || p0.Values[0] != 8192 || p0.Values[1] != 1 {
		t.Fatalf("point 0 = %+v", p0)
	}
	// Expansion is deterministic: a second parse renders identical bodies.
	_, again, err := ParseSpec([]byte(spec), DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if !bytes.Equal(points[i].Body, again[i].Body) {
			t.Fatalf("point %d body differs between identical parses:\n%s\n%s",
				i, points[i].Body, again[i].Body)
		}
		if points[i].Index != i {
			t.Fatalf("point %d carries Index %d", i, points[i].Index)
		}
	}
	// The alias renders to the canonical config field.
	if !bytes.Contains(p0.Body, []byte(`"mmx_mul_latency":1`)) {
		t.Fatalf("point body lacks aliased field: %s", p0.Body)
	}
	if !bytes.Contains(p0.Body, []byte(`"l1_size":8192`)) {
		t.Fatalf("point body lacks l1_size: %s", p0.Body)
	}
}

func TestParseSpecBodyRendersRunOptions(t *testing.T) {
	_, points := mustParse(t, `{
		"programs": ["fir.mmx"],
		"axes": {"disable_btb": [0, 1]},
		"max_instrs": 50000, "skip_check": true, "timeout_ms": 1000
	}`)
	if len(points) != 2 {
		t.Fatalf("expanded %d points, want 2", len(points))
	}
	body := string(points[1].Body)
	for _, want := range []string{`"disable_btb":true`, `"max_instrs":50000`, `"skip_check":true`, `"timeout_ms":1000`} {
		if !strings.Contains(body, want) {
			t.Errorf("body %s lacks %s", body, want)
		}
	}
	if got := string(points[0].Body); !strings.Contains(got, `"disable_btb":false`) {
		t.Errorf("bool axis value 0 should render false: %s", got)
	}
}

func TestParseSpecNoAxes(t *testing.T) {
	s, points := mustParse(t, `{"programs": ["fir.mmx"]}`)
	if len(points) != 1 || s.PointCount() != 1 {
		t.Fatalf("degenerate grid expanded to %d points", len(points))
	}
	if string(points[0].Body) != `{"program":"fir.mmx"}` {
		t.Fatalf("minimal body = %s", points[0].Body)
	}
}

func TestParseSpecRejections(t *testing.T) {
	lim := DefaultLimits()
	cases := []struct {
		name, spec, want string
	}{
		{"bad JSON", `{`, "invalid JSON"},
		{"unknown field", `{"programs":["a"],"bogus":1}`, "unknown field"},
		{"trailing data", `{"programs":["a"]}{}`, "trailing data"},
		{"no programs", `{}`, "programs"},
		{"empty program", `{"programs":[""]}`, "empty program"},
		{"duplicate program", `{"programs":["a","a"]}`, "duplicate program"},
		{"unknown dispatch", `{"programs":["a"],"dispatch":["warp"]}`, "unknown dispatch"},
		{"duplicate dispatch", `{"programs":["a"],"dispatch":["block","block"]}`, "duplicate dispatch"},
		{"unknown axis", `{"programs":["a"],"axes":{"warp_factor":[1]}}`, "unknown axis"},
		{"empty axis", `{"programs":["a"],"axes":{"l1_size":[]}}`, "no values"},
		{"axis out of range", `{"programs":["a"],"axes":{"l1_size":[12]}}`, "out of range"},
		{"axis zero ambiguity", `{"programs":["a"],"axes":{"mul_latency":[0]}}`, "out of range"},
		{"duplicate value", `{"programs":["a"],"axes":{"l1_size":[8192,8192]}}`, "repeats value"},
		{"alias collision", `{"programs":["a"],"axes":{"mul_latency":[1],"mmx_mul_latency":[2]}}`, "both drive"},
		{"bool out of range", `{"programs":["a"],"axes":{"disable_btb":[2]}}`, "out of range"},
		{"negative max_instrs", `{"programs":["a"],"max_instrs":-1}`, "max_instrs"},
		{"negative timeout", `{"programs":["a"],"timeout_ms":-1}`, "timeout_ms"},
		{"bad cache combo", `{"programs":["a"],"axes":{"l1_size":[1024],"l1_ways":[8],"line_bytes":[256]}}`, "invalid grid cell"},
		{"non-pow2 geometry", `{"programs":["a"],"axes":{"l1_size":[12288]}}`, "power of two"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ParseSpec([]byte(tc.spec), lim)
			if err == nil {
				t.Fatalf("ParseSpec accepted %s", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseSpecBoundsByMultiplication is the OOM guard: a grid whose
// expansion would be astronomically large must be rejected by counting,
// before any point is materialized.
func TestParseSpecBoundsByMultiplication(t *testing.T) {
	var axes []string
	for name, def := range axisCatalog {
		if name == "mul_latency" || def.kind == axisBool {
			continue // skip the alias and two-value axes
		}
		vals := make([]string, 0, 8)
		for v := def.min; v <= def.max && len(vals) < 8; v++ {
			vals = append(vals, fmt.Sprint(v))
		}
		axes = append(axes, fmt.Sprintf("%q:[%s]", name, strings.Join(vals, ",")))
		if len(axes) == 8 {
			break
		}
	}
	spec := fmt.Sprintf(`{"programs":["a"],"axes":{%s}}`, strings.Join(axes, ","))
	_, _, err := ParseSpec([]byte(spec), DefaultLimits())
	if err == nil || !strings.Contains(err.Error(), "points") {
		t.Fatalf("8^8-cell grid not rejected by the point ceiling: %v", err)
	}
}

func TestParseSpecLimits(t *testing.T) {
	lim := DefaultLimits()
	lim.MaxBodyBytes = 32
	if _, _, err := ParseSpec([]byte(`{"programs":["a"],"axes":{"l1_size":[8192]}}`), lim); err == nil {
		t.Fatal("body over MaxBodyBytes accepted")
	}
	lim = DefaultLimits()
	lim.MaxPoints = 3
	_, _, err := ParseSpec([]byte(`{"programs":["a"],"axes":{"mul_latency":[1,2,3,4]}}`), lim)
	if err == nil || !strings.Contains(err.Error(), "points") {
		t.Fatalf("grid over MaxPoints accepted: %v", err)
	}
}

func TestAxisNamesSortedAndComplete(t *testing.T) {
	names := AxisNames()
	if len(names) != len(axisCatalog) {
		t.Fatalf("AxisNames returned %d names, catalog has %d", len(names), len(axisCatalog))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("AxisNames not sorted: %v", names)
		}
	}
}
