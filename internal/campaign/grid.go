// Package campaign implements declarative ablation-sweep campaigns: one
// request declares a grid — programs × dispatch modes × ablation axes —
// that the service expands into (program, config) points, executes through
// the tier's own /run machinery (result cache, admission, routing), and
// summarizes as sensitivity-curve artifacts. The package is tier-neutral:
// it knows how to parse, bound, expand, schedule and report a grid, while
// mmxd and mmxfleet supply the Executor that actually runs one point.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"mmxdsp/internal/core"
)

// Limits bounds a grid before it is materialized. Counting happens on the
// axis lengths alone — a hostile spec is rejected by multiplication, never
// by allocation, so adversarial grids cannot balloon memory.
type Limits struct {
	MaxBodyBytes     int // spec JSON size cap
	MaxPoints        int // expanded grid ceiling
	MaxAxes          int
	MaxValuesPerAxis int
	MaxPrograms      int
}

// DefaultLimits returns the service defaults: grids up to 4096 points.
func DefaultLimits() Limits {
	return Limits{
		MaxBodyBytes:     256 << 10,
		MaxPoints:        4096,
		MaxAxes:          8,
		MaxValuesPerAxis: 64,
		MaxPrograms:      64,
	}
}

// axisKind distinguishes how an axis value renders into the /run config.
type axisKind int

const (
	axisInt  axisKind = iota // plain integer field
	axisBool                 // values restricted to {0, 1}, rendered as bool
)

// axisDef describes one sweepable knob: the ConfigOverride JSON field it
// drives and the accepted value range. Ranges match the /run validator so
// every expanded point is a request the daemon would accept.
type axisDef struct {
	field    string
	kind     axisKind
	min, max int
}

// axisCatalog maps spec axis names onto /run config fields. Names equal
// the ConfigOverride JSON tags; "mul_latency" is a paper-friendly alias
// for mmx_mul_latency. mispredict_penalty and mmx_mul_latency exclude 0
// because the zero value means "default" in the override encoding — a
// sweep that silently re-ran the default would corrupt the curve.
var axisCatalog = map[string]axisDef{
	"mispredict_penalty":  {field: "mispredict_penalty", min: 1, max: 1000},
	"emms_latency":        {field: "emms_latency", min: 0, max: 10000},
	"mmx_mul_latency":     {field: "mmx_mul_latency", min: 1, max: 10000},
	"mul_latency":         {field: "mmx_mul_latency", min: 1, max: 10000},
	"disable_pairing":     {field: "disable_pairing", kind: axisBool, max: 1},
	"disable_btb":         {field: "disable_btb", kind: axisBool, max: 1},
	"perfect_cache":       {field: "perfect_cache", kind: axisBool, max: 1},
	"l1_size":             {field: "l1_size", min: core.MinCacheSize, max: core.MaxL1Size},
	"l1_ways":             {field: "l1_ways", min: 1, max: core.MaxCacheWays},
	"l2_size":             {field: "l2_size", min: core.MinCacheSize, max: core.MaxL2Size},
	"l2_ways":             {field: "l2_ways", min: 1, max: core.MaxCacheWays},
	"line_bytes":          {field: "line_bytes", min: core.MinLineBytes, max: core.MaxLineBytes},
	"dcache_miss_penalty": {field: "dcache_miss_penalty", min: 0, max: core.MaxPenalty},
	"l2_access_penalty":   {field: "l2_access_penalty", min: 0, max: core.MaxPenalty},
	"l2_miss_penalty":     {field: "l2_miss_penalty", min: 0, max: core.MaxPenalty},
}

// AxisNames returns the sweepable axis names, sorted, for error messages
// and documentation.
func AxisNames() []string {
	names := make([]string, 0, len(axisCatalog))
	for n := range axisCatalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Spec is the JSON body of POST /campaign.
type Spec struct {
	// Programs lists paper-style program names; each is swept over the
	// full grid. Existence is checked by the tier against its registry.
	Programs []string `json:"programs"`
	// Dispatch lists interpreter modes to sweep (empty = one run in the
	// default mode).
	Dispatch []string `json:"dispatch,omitempty"`
	// Axes maps axis names (see AxisNames) to the values to sweep.
	Axes map[string][]int `json:"axes,omitempty"`
	// MaxInstrs / SkipCheck / TimeoutMS apply to every point, with /run
	// semantics.
	MaxInstrs int64 `json:"max_instrs,omitempty"`
	SkipCheck bool  `json:"skip_check,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// axisNames is the sorted axis order every expansion and artifact
	// uses; fixed at parse time so output is deterministic.
	axisNames []string
}

// AxisOrder returns the canonical (sorted) axis order for the spec.
func (s *Spec) AxisOrder() []string { return s.axisNames }

// Point is one (program, dispatch, config) cell of the expanded grid.
type Point struct {
	Index    int
	Program  string
	Dispatch string
	// Values holds one value per Spec.AxisOrder entry.
	Values []int
	// Body is the canonical /run request JSON for this point. Key order
	// is deterministic (json.Marshal sorts map keys), so the same cell
	// always renders the same bytes — and therefore the same cache key —
	// on every tier.
	Body []byte
}

// ParseSpec decodes, validates, bounds and expands a campaign grid. The
// returned points are fully rendered /run bodies in deterministic order:
// programs × dispatch × the cartesian product of axes in sorted-name
// order. Any error is a client error (the tiers answer 400).
func ParseSpec(data []byte, lim Limits) (*Spec, []Point, error) {
	if lim.MaxBodyBytes > 0 && len(data) > lim.MaxBodyBytes {
		return nil, nil, fmt.Errorf("campaign spec exceeds %d bytes", lim.MaxBodyBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, nil, fmt.Errorf("invalid JSON: %w", err)
	}
	if dec.More() {
		return nil, nil, fmt.Errorf("trailing data after campaign spec")
	}
	if err := spec.validate(lim); err != nil {
		return nil, nil, err
	}
	points, err := spec.expand()
	if err != nil {
		return nil, nil, err
	}
	return &spec, points, nil
}

// validate bounds and range-checks the spec without materializing points.
func (s *Spec) validate(lim Limits) error {
	if len(s.Programs) == 0 {
		return fmt.Errorf("missing required field %q", "programs")
	}
	if len(s.Programs) > lim.MaxPrograms {
		return fmt.Errorf("%d programs exceeds limit %d", len(s.Programs), lim.MaxPrograms)
	}
	seenProg := make(map[string]bool, len(s.Programs))
	for _, p := range s.Programs {
		if p == "" {
			return fmt.Errorf("empty program name")
		}
		if seenProg[p] {
			return fmt.Errorf("duplicate program %q", p)
		}
		seenProg[p] = true
	}
	seenDisp := make(map[string]bool, len(s.Dispatch))
	for _, d := range s.Dispatch {
		switch d {
		case "auto", core.DispatchBlock, core.DispatchTrace, core.DispatchPredecode, core.DispatchGeneric:
		case "":
			return fmt.Errorf("empty dispatch mode (omit the list or use %q)", "auto")
		default:
			return fmt.Errorf("unknown dispatch mode %q (want auto, block, trace, predecode or generic)", d)
		}
		if seenDisp[d] {
			return fmt.Errorf("duplicate dispatch mode %q", d)
		}
		seenDisp[d] = true
	}
	if len(s.Axes) > lim.MaxAxes {
		return fmt.Errorf("%d axes exceeds limit %d", len(s.Axes), lim.MaxAxes)
	}
	if s.MaxInstrs < 0 {
		return fmt.Errorf("negative max_instrs %d", s.MaxInstrs)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("negative timeout_ms %d", s.TimeoutMS)
	}
	// Canonicalize axis names: alias resolution must not create duplicate
	// config fields (mul_latency + mmx_mul_latency drive the same knob).
	fields := make(map[string]string, len(s.Axes))
	s.axisNames = make([]string, 0, len(s.Axes))
	for name, values := range s.Axes {
		def, ok := axisCatalog[name]
		if !ok {
			return fmt.Errorf("unknown axis %q (known: %v)", name, AxisNames())
		}
		if prev, dup := fields[def.field]; dup {
			return fmt.Errorf("axes %q and %q both drive config field %q", prev, name, def.field)
		}
		fields[def.field] = name
		if len(values) == 0 {
			return fmt.Errorf("axis %q has no values", name)
		}
		if len(values) > lim.MaxValuesPerAxis {
			return fmt.Errorf("axis %q has %d values, limit %d", name, len(values), lim.MaxValuesPerAxis)
		}
		seen := make(map[int]bool, len(values))
		for _, v := range values {
			if v < def.min || v > def.max {
				return fmt.Errorf("axis %q value %d out of range [%d, %d]", name, v, def.min, def.max)
			}
			if seen[v] {
				return fmt.Errorf("axis %q repeats value %d", name, v)
			}
			seen[v] = true
		}
		s.axisNames = append(s.axisNames, name)
	}
	sort.Strings(s.axisNames)
	// Count before materializing: a grid over the point ceiling dies here
	// by multiplication, never by allocation.
	count := len(s.Programs) * s.dispatchCount()
	for _, name := range s.axisNames {
		n := len(s.Axes[name])
		if count > lim.MaxPoints/n {
			return fmt.Errorf("grid exceeds %d points", lim.MaxPoints)
		}
		count *= n
	}
	if count > lim.MaxPoints {
		return fmt.Errorf("grid expands to %d points, limit %d", count, lim.MaxPoints)
	}
	return nil
}

func (s *Spec) dispatchCount() int {
	if len(s.Dispatch) == 0 {
		return 1
	}
	return len(s.Dispatch)
}

// PointCount returns the expanded grid size.
func (s *Spec) PointCount() int {
	count := len(s.Programs) * s.dispatchCount()
	for _, name := range s.axisNames {
		count *= len(s.Axes[name])
	}
	return count
}

// expand materializes the grid in deterministic order and renders each
// point's /run body. Cache-geometry combinations are cross-validated here
// (e.g. l1_size 1024 × line_bytes 256 cannot form a power-of-two set
// count), so an invalid cell rejects the whole campaign up front instead
// of failing points mid-run.
func (s *Spec) expand() ([]Point, error) {
	dispatch := s.Dispatch
	if len(dispatch) == 0 {
		dispatch = []string{""}
	}
	points := make([]Point, 0, s.PointCount())
	values := make([]int, len(s.axisNames))
	var rec func(axis int) error
	var program, mode string
	rec = func(axis int) error {
		if axis == len(s.axisNames) {
			p := Point{
				Index:    len(points),
				Program:  program,
				Dispatch: mode,
				Values:   append([]int(nil), values...),
			}
			if err := s.checkCacheCombo(p.Values); err != nil {
				return err
			}
			body, err := s.renderBody(p)
			if err != nil {
				return err
			}
			p.Body = body
			points = append(points, p)
			return nil
		}
		for _, v := range s.Axes[s.axisNames[axis]] {
			values[axis] = v
			if err := rec(axis + 1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, program = range s.Programs {
		for _, mode = range dispatch {
			if err := rec(0); err != nil {
				return nil, err
			}
		}
	}
	return points, nil
}

// checkCacheCombo validates the cache geometry implied by one cell. The
// per-axis range check already passed; this catches cross-axis conflicts.
func (s *Spec) checkCacheCombo(values []int) error {
	spec := core.DefaultCacheSpec()
	touched := false
	for i, name := range s.axisNames {
		v := values[i]
		switch axisCatalog[name].field {
		case "l1_size":
			spec.L1Size, touched = v, true
		case "l1_ways":
			spec.L1Ways, touched = v, true
		case "l2_size":
			spec.L2Size, touched = v, true
		case "l2_ways":
			spec.L2Ways, touched = v, true
		case "line_bytes":
			spec.LineBytes, touched = v, true
		case "dcache_miss_penalty":
			spec.DCacheMiss, touched = v, true
		case "l2_access_penalty":
			spec.L2Access, touched = v, true
		case "l2_miss_penalty":
			spec.L2Miss, touched = v, true
		}
	}
	if !touched {
		return nil
	}
	if err := spec.Validate(); err != nil {
		return fmt.Errorf("invalid grid cell %s: %w", s.comboString(values), err)
	}
	return nil
}

// comboString renders one cell's axis assignment for error messages.
func (s *Spec) comboString(values []int) string {
	var b bytes.Buffer
	for i, name := range s.axisNames {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%d", name, values[i])
	}
	return "{" + b.String() + "}"
}

// renderBody builds the canonical /run JSON body for one cell.
func (s *Spec) renderBody(p Point) ([]byte, error) {
	cfg := make(map[string]any, len(s.axisNames))
	for i, name := range s.axisNames {
		def := axisCatalog[name]
		if def.kind == axisBool {
			cfg[def.field] = p.Values[i] != 0
		} else {
			cfg[def.field] = p.Values[i]
		}
	}
	body := map[string]any{"program": p.Program}
	if p.Dispatch != "" {
		body["dispatch"] = p.Dispatch
	}
	if len(cfg) > 0 {
		body["config"] = cfg
	}
	if s.MaxInstrs > 0 {
		body["max_instrs"] = s.MaxInstrs
	}
	if s.SkipCheck {
		body["skip_check"] = true
	}
	if s.TimeoutMS > 0 {
		body["timeout_ms"] = s.TimeoutMS
	}
	return json.Marshal(body)
}
