package campaign

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
)

// Artifact rendering. The outputs deliberately contain no campaign IDs,
// timestamps or wall-clock measurements: two campaigns over the same grid
// — whether run sequentially on one backend or sharded across a fleet —
// render byte-identical artifacts, which the e2e suite asserts.

// dispatchLabel names the dispatch mode in artifacts ("" means auto).
func dispatchLabel(d string) string {
	if d == "" {
		return "auto"
	}
	return d
}

// renderArtifacts builds the points CSV and the sensitivity Markdown for
// a completed campaign. Only done points emit rows, in grid order.
func renderArtifacts(spec *Spec, points []PointState) (csv, markdown []byte) {
	return renderCSV(spec, points), renderMarkdown(spec, points)
}

// renderCSV emits one row per done point in grid order:
// program,dispatch,<axes...>,cycles,instructions,l1_misses,l2_misses.
func renderCSV(spec *Spec, points []PointState) []byte {
	var b bytes.Buffer
	b.WriteString("program,dispatch")
	for _, name := range spec.axisNames {
		b.WriteByte(',')
		b.WriteString(name)
	}
	b.WriteString(",cycles,instructions,l1_misses,l2_misses\n")
	for i := range points {
		p := &points[i]
		if p.Status != PointDone {
			continue
		}
		b.WriteString(p.Program)
		b.WriteByte(',')
		b.WriteString(dispatchLabel(p.Dispatch))
		for _, v := range p.Values {
			fmt.Fprintf(&b, ",%d", v)
		}
		fmt.Fprintf(&b, ",%d,%d,%d,%d\n", p.Cycles, p.Instrs, p.L1Misses, p.L2Misses)
	}
	return b.Bytes()
}

// renderMarkdown emits one sensitivity curve per (axis, program,
// dispatch): the points where every other axis sits at its baseline (its
// first listed value), tabulated as axis value → cycles plus the speedup
// relative to the axis's own first value. This is the Table-2 framing —
// relative performance under architectural variation — applied to each
// swept knob.
func renderMarkdown(spec *Spec, points []PointState) []byte {
	var b bytes.Buffer
	b.WriteString("# Sensitivity curves\n\n")
	fmt.Fprintf(&b, "Grid: %d points — %d program(s) × %d dispatch mode(s)",
		len(points), len(spec.Programs), spec.dispatchCount())
	for _, name := range spec.axisNames {
		fmt.Fprintf(&b, " × %s[%d]", name, len(spec.Axes[name]))
	}
	b.WriteString(".\n")

	if len(spec.axisNames) == 0 {
		// Degenerate grid (no axes): one flat table of program results.
		b.WriteString("\n| program | dispatch | cycles | instructions |\n|---|---|---:|---:|\n")
		for i := range points {
			p := &points[i]
			if p.Status != PointDone {
				continue
			}
			fmt.Fprintf(&b, "| %s | %s | %d | %d |\n",
				p.Program, dispatchLabel(p.Dispatch), p.Cycles, p.Instrs)
		}
		return b.Bytes()
	}

	// index done points by (program, dispatch, values) for curve lookup.
	type cell struct{ cycles uint64 }
	index := make(map[string]cell, len(points))
	key := func(program, dispatch string, values []int) string {
		var k bytes.Buffer
		k.WriteString(program)
		k.WriteByte('|')
		k.WriteString(dispatch)
		for _, v := range values {
			fmt.Fprintf(&k, "|%d", v)
		}
		return k.String()
	}
	for i := range points {
		p := &points[i]
		if p.Status == PointDone {
			index[key(p.Program, p.Dispatch, p.Values)] = cell{cycles: p.Cycles}
		}
	}

	dispatch := spec.Dispatch
	if len(dispatch) == 0 {
		dispatch = []string{""}
	}
	for axis, name := range spec.axisNames {
		fmt.Fprintf(&b, "\n## Axis `%s`\n", name)
		if len(spec.axisNames) > 1 {
			b.WriteString("\nOther axes held at baseline:")
			first := true
			for j, other := range spec.axisNames {
				if j == axis {
					continue
				}
				if !first {
					b.WriteByte(',')
				}
				first = false
				fmt.Fprintf(&b, " %s=%d", other, spec.Axes[other][0])
			}
			b.WriteString(".\n")
		}
		for _, program := range spec.Programs {
			for _, mode := range dispatch {
				fmt.Fprintf(&b, "\n### %s (dispatch %s)\n\n", program, dispatchLabel(mode))
				fmt.Fprintf(&b, "| %s | cycles | speedup vs first |\n|---:|---:|---:|\n", name)
				// Baseline cell: this axis at its first value too.
				values := make([]int, len(spec.axisNames))
				for j, other := range spec.axisNames {
					values[j] = spec.Axes[other][0]
				}
				base, haveBase := index[key(program, mode, values)]
				for _, v := range spec.Axes[name] {
					values[axis] = v
					c, ok := index[key(program, mode, values)]
					if !ok {
						fmt.Fprintf(&b, "| %d | — | — |\n", v)
						continue
					}
					if haveBase && c.cycles > 0 {
						fmt.Fprintf(&b, "| %d | %d | %.3f |\n",
							v, c.cycles, float64(base.cycles)/float64(c.cycles))
					} else {
						fmt.Fprintf(&b, "| %d | %d | — |\n", v, c.cycles)
					}
				}
			}
		}
	}
	return b.Bytes()
}

// Persist writes the campaign's artifacts under dir/<id>/ with the same
// atomic temp+rename discipline as the result-cache spill tier: readers
// never observe a torn file, and a crashed write leaves only a temp to be
// ignored.
func Persist(dir, id string, csv, markdown []byte) error {
	cdir := filepath.Join(dir, id)
	if err := os.MkdirAll(cdir, 0o755); err != nil {
		return fmt.Errorf("campaign: creating artifact dir: %w", err)
	}
	files := []struct {
		name string
		data []byte
	}{{"points.csv", csv}, {"sensitivity.md", markdown}}
	for _, f := range files {
		if err := atomicWrite(filepath.Join(cdir, f.name), f.data); err != nil {
			return err
		}
	}
	return nil
}

// atomicWrite lands data at path via a same-directory temp and rename.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".campaign-*")
	if err != nil {
		return fmt.Errorf("campaign: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("campaign: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("campaign: closing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("campaign: publishing %s: %w", path, err)
	}
	return nil
}
