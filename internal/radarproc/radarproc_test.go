package radarproc

import (
	"math"
	"testing"

	"mmxdsp/internal/synth"
)

func TestDetectsMovingTarget(t *testing.T) {
	p := synth.RadarParams{Gates: 12, Pulses: 17, Target: 7, Doppler: 0.25, Clutter: 0.8, Seed: 5}
	re, im := synth.RadarEchoes(p)
	res, err := Process(Params{Gates: 12, FFTLen: 16}, re, im)
	if err != nil {
		t.Fatal(err)
	}
	if g := res.StrongestGate(); g != 7 {
		t.Errorf("strongest gate = %d, want 7", g)
	}
	// Doppler 0.25 cycles/pulse -> bin 4 of 16.
	if res.PeakBin[7] != 4 {
		t.Errorf("peak bin = %d, want 4", res.PeakBin[7])
	}
	if math.Abs(res.Frequency[7]-0.25) > 1e-9 {
		t.Errorf("frequency = %v, want 0.25", res.Frequency[7])
	}
}

func TestNegativeDopplerWraps(t *testing.T) {
	p := synth.RadarParams{Gates: 4, Pulses: 17, Target: 1, Doppler: -0.125, Clutter: 0.5, Seed: 8}
	re, im := synth.RadarEchoes(p)
	res, err := Process(Params{Gates: 4, FFTLen: 16}, re, im)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Frequency[1]-(-0.125)) > 1e-9 {
		t.Errorf("frequency = %v, want -0.125", res.Frequency[1])
	}
}

func TestClutterCancellation(t *testing.T) {
	// Pure clutter, no target motion: every gate's residual power must be
	// tiny compared to the raw clutter power.
	p := synth.RadarParams{Gates: 6, Pulses: 17, Target: 0, Doppler: 0, Clutter: 0.9, Seed: 2}
	re, im := synth.RadarEchoes(p)
	res, err := Process(Params{Gates: 6, FFTLen: 16}, re, im)
	if err != nil {
		t.Fatal(err)
	}
	for g := 1; g < 6; g++ { // gate 0 holds the (stationary) "target"
		if res.PeakPower[g] > 0.1 {
			t.Errorf("gate %d residual power %g; clutter not cancelled", g, res.PeakPower[g])
		}
	}
}

func TestParamValidation(t *testing.T) {
	re := make([][]float64, 3)
	im := make([][]float64, 3)
	if _, err := Process(Params{Gates: 4, FFTLen: 16}, re, im); err == nil {
		t.Error("too few pulses must fail")
	}
	if _, err := Process(Params{Gates: 0, FFTLen: 16}, re, im); err == nil {
		t.Error("zero gates must fail")
	}
	if _, err := Process(Params{Gates: 4, FFTLen: 15}, re, im); err == nil {
		t.Error("non-power-of-two FFT must fail")
	}
}
