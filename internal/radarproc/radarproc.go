// Package radarproc implements the paper's Doppler radar processing
// pipeline: subtract successive complex echoes to cancel stationary
// clutter (a two-pulse MTI canceller), estimate the power spectrum of the
// residue per range gate with a 16-point in-place radix-2 decimation-in-time
// FFT, and estimate the dominant Doppler frequency from the spectral peak.
package radarproc

import (
	"fmt"

	"mmxdsp/internal/dsp"
)

// Params describes one processing batch.
type Params struct {
	Gates  int // range gates per echo (paper: 12)
	FFTLen int // Doppler FFT length (paper: 16)
}

// Result is the per-gate detection output.
type Result struct {
	// PeakBin[g] is the Doppler bin with maximum power in gate g.
	PeakBin []int
	// PeakPower[g] is the power at that bin.
	PeakPower []float64
	// Frequency[g] is the estimated Doppler in cycles/pulse, in [-0.5, 0.5).
	Frequency []float64
}

// Process runs the pipeline on echoes echo[pulse][gate] given as separate
// real and imaginary planes. len(re) must be at least FFTLen+1 pulses: the
// canceller consumes pulse pairs and the FFT needs FFTLen residues.
func Process(p Params, re, im [][]float64) (*Result, error) {
	if p.Gates <= 0 || p.FFTLen <= 0 || p.FFTLen&(p.FFTLen-1) != 0 {
		return nil, fmt.Errorf("radarproc: bad params %+v", p)
	}
	if len(re) < p.FFTLen+1 || len(im) != len(re) {
		return nil, fmt.Errorf("radarproc: need %d pulses, have %d", p.FFTLen+1, len(re))
	}
	res := &Result{
		PeakBin:   make([]int, p.Gates),
		PeakPower: make([]float64, p.Gates),
		Frequency: make([]float64, p.Gates),
	}
	bufRe := make([]float64, p.FFTLen)
	bufIm := make([]float64, p.FFTLen)
	for g := 0; g < p.Gates; g++ {
		// MTI canceller: residue[n] = echo[n+1] - echo[n].
		for n := 0; n < p.FFTLen; n++ {
			bufRe[n] = re[n+1][g] - re[n][g]
			bufIm[n] = im[n+1][g] - im[n][g]
		}
		if err := dsp.FFT(bufRe, bufIm); err != nil {
			return nil, err
		}
		ps := dsp.PowerSpectrum(bufRe, bufIm)
		k := dsp.PeakIndex(ps)
		res.PeakBin[g] = k
		res.PeakPower[g] = ps[k]
		f := float64(k) / float64(p.FFTLen)
		if f >= 0.5 {
			f -= 1
		}
		res.Frequency[g] = f
	}
	return res, nil
}

// StrongestGate returns the gate with the largest peak power — where the
// moving target is.
func (r *Result) StrongestGate() int {
	best := 0
	for g := range r.PeakPower {
		if r.PeakPower[g] > r.PeakPower[best] {
			best = g
		}
	}
	return best
}
