package mmx

import (
	"testing"
	"testing/quick"

	"mmxdsp/internal/fixed"
)

func TestPackUnpackRoundTrips(t *testing.T) {
	f := func(r uint64) bool {
		reg := Reg(r)
		if FromBytes(reg.Bytes()) != reg {
			return false
		}
		if FromWords(reg.Words()) != reg {
			return false
		}
		if FromDwords(reg.Dwords()) != reg {
			return false
		}
		return FromSignedBytes(reg.SignedBytes()) == reg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLaneOrder(t *testing.T) {
	r := FromWords([4]int16{1, 2, 3, 4})
	if uint64(r) != 0x0004_0003_0002_0001 {
		t.Fatalf("lane order wrong: %#016x", uint64(r))
	}
	b := FromBytes([8]uint8{1, 2, 3, 4, 5, 6, 7, 8})
	if uint64(b) != 0x0807060504030201 {
		t.Fatalf("byte lane order wrong: %#016x", uint64(b))
	}
}

func TestPAddWWraps(t *testing.T) {
	a := FromWords([4]int16{32767, -32768, 100, -100})
	b := FromWords([4]int16{1, -1, 28, -28})
	got := PAddW(a, b).Words()
	want := [4]int16{-32768, 32767, 128, -128}
	if got != want {
		t.Errorf("PAddW = %v, want %v", got, want)
	}
}

func TestPAddSWSaturates(t *testing.T) {
	a := FromWords([4]int16{32767, -32768, 16000, -16000})
	b := FromWords([4]int16{1, -1, 17000, -17000})
	got := PAddSW(a, b).Words()
	want := [4]int16{32767, -32768, 32767, -32768}
	if got != want {
		t.Errorf("PAddSW = %v, want %v", got, want)
	}
}

func TestPAddUSBSaturates(t *testing.T) {
	a := FromBytes([8]uint8{255, 200, 0, 1, 2, 3, 4, 5})
	b := FromBytes([8]uint8{1, 100, 0, 1, 2, 3, 4, 5})
	got := PAddUSB(a, b).Bytes()
	want := [8]uint8{255, 255, 0, 2, 4, 6, 8, 10}
	if got != want {
		t.Errorf("PAddUSB = %v, want %v", got, want)
	}
}

func TestPSubUSBFloorsAtZero(t *testing.T) {
	a := FromBytes([8]uint8{0, 5, 100, 255, 1, 2, 3, 4})
	b := FromBytes([8]uint8{1, 10, 50, 255, 0, 1, 2, 3})
	got := PSubUSB(a, b).Bytes()
	want := [8]uint8{0, 0, 50, 0, 1, 1, 1, 1}
	if got != want {
		t.Errorf("PSubUSB = %v, want %v", got, want)
	}
}

func TestSaturatingMatchesScalarSat(t *testing.T) {
	// Property: every lane of PAddSW equals the scalar saturating add.
	f := func(x, y uint64) bool {
		a, b := Reg(x), Reg(y)
		got := PAddSW(a, b).Words()
		aw, bw := a.Words(), b.Words()
		for i := 0; i < 4; i++ {
			if got[i] != fixed.SatW(int32(aw[i])+int32(bw[i])) {
				return false
			}
		}
		sub := PSubSW(a, b).Words()
		for i := 0; i < 4; i++ {
			if sub[i] != fixed.SatW(int32(aw[i])-int32(bw[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapAddSubInverse(t *testing.T) {
	// Property: wrap-around subtract undoes wrap-around add (group structure).
	f := func(x, y uint64) bool {
		a, b := Reg(x), Reg(y)
		return PSubB(PAddB(a, b), b) == a &&
			PSubW(PAddW(a, b), b) == a &&
			PSubD(PAddD(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPMulLWHWConsistent(t *testing.T) {
	// Property: (PMulHW << 16) | PMulLW reconstructs the full 32-bit product.
	f := func(x, y uint64) bool {
		a, b := Reg(x), Reg(y)
		lo, hi := PMulLW(a, b).Words(), PMulHW(a, b).Words()
		aw, bw := a.Words(), b.Words()
		for i := 0; i < 4; i++ {
			full := int32(aw[i]) * int32(bw[i])
			recon := int32(hi[i])<<16 | int32(uint16(lo[i]))
			if full != recon {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPMAddWD(t *testing.T) {
	a := FromWords([4]int16{1, 2, 3, 4})
	b := FromWords([4]int16{5, 6, 7, 8})
	got := PMAddWD(a, b).Dwords()
	if got[0] != 1*5+2*6 || got[1] != 3*7+4*8 {
		t.Errorf("PMAddWD = %v, want [17 53]", got)
	}
}

func TestPMAddWDMatchesScalar(t *testing.T) {
	f := func(x, y uint64) bool {
		a, b := Reg(x), Reg(y)
		aw, bw := a.Words(), b.Words()
		got := PMAddWD(a, b).Dwords()
		return got[0] == int32(aw[0])*int32(bw[0])+int32(aw[1])*int32(bw[1]) &&
			got[1] == int32(aw[2])*int32(bw[2])+int32(aw[3])*int32(bw[3])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackSSWB(t *testing.T) {
	a := FromWords([4]int16{-200, 127, -128, 300})
	b := FromWords([4]int16{0, 1, -1, 1000})
	got := PackSSWB(a, b).SignedBytes()
	want := [8]int8{-128, 127, -128, 127, 0, 1, -1, 127}
	if got != want {
		t.Errorf("PackSSWB = %v, want %v", got, want)
	}
}

func TestPackUSWB(t *testing.T) {
	a := FromWords([4]int16{-5, 256, 255, 128})
	b := FromWords([4]int16{0, 1, 1000, -1})
	got := PackUSWB(a, b).Bytes()
	want := [8]uint8{0, 255, 255, 128, 0, 1, 255, 0}
	if got != want {
		t.Errorf("PackUSWB = %v, want %v", got, want)
	}
}

func TestPackSSDW(t *testing.T) {
	a := FromDwords([2]int32{70000, -70000})
	b := FromDwords([2]int32{42, -42})
	got := PackSSDW(a, b).Words()
	want := [4]int16{32767, -32768, 42, -42}
	if got != want {
		t.Errorf("PackSSDW = %v, want %v", got, want)
	}
}

func TestUnpackInterleave(t *testing.T) {
	a := FromBytes([8]uint8{0, 1, 2, 3, 4, 5, 6, 7})
	b := FromBytes([8]uint8{10, 11, 12, 13, 14, 15, 16, 17})
	lo := PUnpckLBW(a, b).Bytes()
	wantLo := [8]uint8{0, 10, 1, 11, 2, 12, 3, 13}
	if lo != wantLo {
		t.Errorf("PUnpckLBW = %v, want %v", lo, wantLo)
	}
	hi := PUnpckHBW(a, b).Bytes()
	wantHi := [8]uint8{4, 14, 5, 15, 6, 16, 7, 17}
	if hi != wantHi {
		t.Errorf("PUnpckHBW = %v, want %v", hi, wantHi)
	}
}

func TestUnpackWordsAndDwords(t *testing.T) {
	a := FromWords([4]int16{0, 1, 2, 3})
	b := FromWords([4]int16{10, 11, 12, 13})
	if got := PUnpckLWD(a, b).Words(); got != [4]int16{0, 10, 1, 11} {
		t.Errorf("PUnpckLWD = %v", got)
	}
	if got := PUnpckHWD(a, b).Words(); got != [4]int16{2, 12, 3, 13} {
		t.Errorf("PUnpckHWD = %v", got)
	}
	c := FromDwords([2]int32{100, 200})
	d := FromDwords([2]int32{300, 400})
	if got := PUnpckLDQ(c, d).Dwords(); got != [2]int32{100, 300} {
		t.Errorf("PUnpckLDQ = %v", got)
	}
	if got := PUnpckHDQ(c, d).Dwords(); got != [2]int32{200, 400} {
		t.Errorf("PUnpckHDQ = %v", got)
	}
}

func TestZeroExtendViaUnpack(t *testing.T) {
	// The classic MMX idiom: unpacking with zero widens unsigned bytes to words.
	f := func(x uint64) bool {
		a := Reg(x)
		ab := a.Bytes()
		w := PUnpckLBW(a, 0).Words()
		for i := 0; i < 4; i++ {
			if w[i] != int16(ab[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackUnpackRoundTripWords(t *testing.T) {
	// Property: words in [-128,127] survive PackSSWB → PUnpck(L/H)BW with sign
	// extension via the compare-gt trick.
	f := func(w0, w1, w2, w3 int8) bool {
		a := FromWords([4]int16{int16(w0), int16(w1), int16(w2), int16(w3)})
		packed := PackSSWB(a, a)
		// sign mask: 0xFF where byte < 0
		sign := PCmpGtB(0, packed)
		lo := PUnpckLBW(packed, sign).Words()
		return lo == a.Words()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompares(t *testing.T) {
	a := FromWords([4]int16{1, -1, 5, 5})
	b := FromWords([4]int16{0, 0, 5, 6})
	if got := PCmpGtW(a, b).Words(); got != [4]int16{-1, 0, 0, 0} {
		t.Errorf("PCmpGtW = %v", got)
	}
	if got := PCmpEqW(a, b).Words(); got != [4]int16{0, 0, -1, 0} {
		t.Errorf("PCmpEqW = %v", got)
	}
	c := FromDwords([2]int32{7, -7})
	d := FromDwords([2]int32{7, 7})
	if got := PCmpEqD(c, d).Dwords(); got != [2]int32{-1, 0} {
		t.Errorf("PCmpEqD = %v", got)
	}
	if got := PCmpGtD(d, c).Dwords(); got != [2]int32{0, -1} {
		t.Errorf("PCmpGtD = %v", got)
	}
	e := FromSignedBytes([8]int8{1, -1, 0, 0, 0, 0, 0, 0})
	g := FromSignedBytes([8]int8{0, 0, 0, 0, 0, 0, 0, 0})
	if got := PCmpGtB(e, g).SignedBytes(); got[0] != -1 || got[1] != 0 {
		t.Errorf("PCmpGtB = %v", got)
	}
	if got := PCmpEqB(e, g).SignedBytes(); got[0] != 0 || got[2] != -1 {
		t.Errorf("PCmpEqB = %v", got)
	}
}

func TestLogicals(t *testing.T) {
	a, b := Reg(0xF0F0_F0F0_F0F0_F0F0), Reg(0xFF00_FF00_FF00_FF00)
	if PAnd(a, b) != 0xF000F000F000F000 {
		t.Error("PAnd wrong")
	}
	if POr(a, b) != 0xFFF0FFF0FFF0FFF0 {
		t.Error("POr wrong")
	}
	if PXor(a, b) != 0x0FF00FF00FF00FF0 {
		t.Error("PXor wrong")
	}
	if PAndN(a, b) != 0x0F000F000F000F00 {
		t.Error("PAndN wrong")
	}
}

func TestShiftWords(t *testing.T) {
	a := FromWords([4]int16{1, -2, 0x4000, -32768})
	if got := PSllW(a, 1).Words(); got != [4]int16{2, -4, -32768, 0} {
		t.Errorf("PSllW = %v", got)
	}
	if got := PSraW(a, 1).Words(); got != [4]int16{0, -1, 0x2000, -16384} {
		t.Errorf("PSraW = %v", got)
	}
	if got := PSrlW(FromWords([4]int16{-1, 2, 4, 8}), 1).Words(); got != [4]int16{32767, 1, 2, 4} {
		t.Errorf("PSrlW = %v", got)
	}
}

func TestShiftOverwidth(t *testing.T) {
	a := Reg(0xFFFF_FFFF_FFFF_FFFF)
	if PSllW(a, 16) != 0 || PSrlW(a, 16) != 0 {
		t.Error("word shifts >= 16 must zero")
	}
	if PSllD(a, 32) != 0 || PSrlD(a, 32) != 0 {
		t.Error("dword shifts >= 32 must zero")
	}
	if PSllQ(a, 64) != 0 || PSrlQ(a, 64) != 0 {
		t.Error("qword shifts >= 64 must zero")
	}
	// Arithmetic right shift saturates at width-1 (fills with sign).
	neg := FromWords([4]int16{-1, -1, -1, -1})
	if PSraW(neg, 40) != neg {
		t.Error("PSraW overwidth must fill with sign")
	}
	negd := FromDwords([2]int32{-1, -1})
	if PSraD(negd, 99) != negd {
		t.Error("PSraD overwidth must fill with sign")
	}
}

func TestShiftQIsPlainShift(t *testing.T) {
	f := func(x uint64, nRaw uint8) bool {
		n := uint(nRaw % 64)
		return PSllQ(Reg(x), n) == Reg(x<<n) && PSrlQ(Reg(x), n) == Reg(x>>n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftDword(t *testing.T) {
	a := FromDwords([2]int32{-8, 8})
	if got := PSraD(a, 2).Dwords(); got != [2]int32{-2, 2} {
		t.Errorf("PSraD = %v", got)
	}
	if got := PSllD(a, 2).Dwords(); got != [2]int32{-32, 32} {
		t.Errorf("PSllD = %v", got)
	}
	if got := PSrlD(FromDwords([2]int32{-1, 4}), 1).Dwords(); got != [2]int32{0x7FFFFFFF, 2} {
		t.Errorf("PSrlD = %v", got)
	}
}
