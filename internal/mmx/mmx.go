// Package mmx implements the value semantics of the MMX instruction set:
// 64-bit packed registers holding eight bytes, four words, two doublewords
// or one quadword, with wrap-around and saturating arithmetic, packed
// multiplies (pmullw/pmulhw/pmaddwd), pack/unpack, compares, logicals and
// shifts.
//
// The package is pure value arithmetic: a Reg is just a uint64 and every
// operation is a function from Regs to a Reg. The virtual machine
// (internal/vm) dispatches MMX opcodes into this package, and the MMX
// library routines are tested against these semantics directly.
package mmx

import "mmxdsp/internal/fixed"

// Reg is a 64-bit MMX register value. Lane 0 is the least-significant lane,
// matching the little-endian layout of the x86 memory image.
type Reg uint64

// FromBytes packs eight bytes into a register, b[0] in the low lane.
func FromBytes(b [8]uint8) Reg {
	var r Reg
	for i := 7; i >= 0; i-- {
		r = r<<8 | Reg(b[i])
	}
	return r
}

// Bytes unpacks the register into eight unsigned bytes.
func (r Reg) Bytes() [8]uint8 {
	var b [8]uint8
	for i := range b {
		b[i] = uint8(r >> (8 * uint(i)))
	}
	return b
}

// FromWords packs four signed 16-bit words, w[0] in the low lane.
func FromWords(w [4]int16) Reg {
	var r Reg
	for i := 3; i >= 0; i-- {
		r = r<<16 | Reg(uint16(w[i]))
	}
	return r
}

// Words unpacks the register into four signed 16-bit words.
func (r Reg) Words() [4]int16 {
	var w [4]int16
	for i := range w {
		w[i] = int16(r >> (16 * uint(i)))
	}
	return w
}

// FromDwords packs two signed 32-bit doublewords, d[0] in the low lane.
func FromDwords(d [2]int32) Reg {
	return Reg(uint32(d[0])) | Reg(uint32(d[1]))<<32
}

// Dwords unpacks the register into two signed 32-bit doublewords.
func (r Reg) Dwords() [2]int32 {
	return [2]int32{int32(uint32(r)), int32(uint32(r >> 32))}
}

// SignedBytes unpacks the register into eight signed bytes.
func (r Reg) SignedBytes() [8]int8 {
	var b [8]int8
	for i := range b {
		b[i] = int8(r >> (8 * uint(i)))
	}
	return b
}

// FromSignedBytes packs eight signed bytes, b[0] in the low lane.
func FromSignedBytes(b [8]int8) Reg {
	var r Reg
	for i := 7; i >= 0; i-- {
		r = r<<8 | Reg(uint8(b[i]))
	}
	return r
}

// ---------------------------------------------------------------------------
// Wrap-around packed add/subtract (paddb/paddw/paddd, psubb/psubw/psubd)

func mapB(a, b Reg, f func(x, y uint8) uint8) Reg {
	ab, bb := a.Bytes(), b.Bytes()
	var out [8]uint8
	for i := range out {
		out[i] = f(ab[i], bb[i])
	}
	return FromBytes(out)
}

func mapW(a, b Reg, f func(x, y int16) int16) Reg {
	aw, bw := a.Words(), b.Words()
	var out [4]int16
	for i := range out {
		out[i] = f(aw[i], bw[i])
	}
	return FromWords(out)
}

func mapD(a, b Reg, f func(x, y int32) int32) Reg {
	ad, bd := a.Dwords(), b.Dwords()
	return FromDwords([2]int32{f(ad[0], bd[0]), f(ad[1], bd[1])})
}

// PAddB adds packed bytes with wrap-around.
func PAddB(a, b Reg) Reg { return mapB(a, b, func(x, y uint8) uint8 { return x + y }) }

// PAddW adds packed words with wrap-around.
func PAddW(a, b Reg) Reg { return mapW(a, b, func(x, y int16) int16 { return x + y }) }

// PAddD adds packed doublewords with wrap-around.
func PAddD(a, b Reg) Reg { return mapD(a, b, func(x, y int32) int32 { return x + y }) }

// PSubB subtracts packed bytes with wrap-around.
func PSubB(a, b Reg) Reg { return mapB(a, b, func(x, y uint8) uint8 { return x - y }) }

// PSubW subtracts packed words with wrap-around.
func PSubW(a, b Reg) Reg { return mapW(a, b, func(x, y int16) int16 { return x - y }) }

// PSubD subtracts packed doublewords with wrap-around.
func PSubD(a, b Reg) Reg { return mapD(a, b, func(x, y int32) int32 { return x - y }) }

// ---------------------------------------------------------------------------
// Saturating packed add/subtract

// PAddSB adds packed signed bytes with signed saturation.
func PAddSB(a, b Reg) Reg {
	return mapB(a, b, func(x, y uint8) uint8 {
		return uint8(fixed.SatB(int32(int8(x)) + int32(int8(y))))
	})
}

// PAddSW adds packed signed words with signed saturation.
func PAddSW(a, b Reg) Reg {
	return mapW(a, b, func(x, y int16) int16 { return fixed.SatW(int32(x) + int32(y)) })
}

// PAddUSB adds packed unsigned bytes with unsigned saturation.
func PAddUSB(a, b Reg) Reg {
	return mapB(a, b, func(x, y uint8) uint8 { return fixed.SatUB(int32(x) + int32(y)) })
}

// PAddUSW adds packed unsigned words with unsigned saturation.
func PAddUSW(a, b Reg) Reg {
	return mapW(a, b, func(x, y int16) int16 {
		return int16(fixed.SatUW(int32(uint16(x)) + int32(uint16(y))))
	})
}

// PSubSB subtracts packed signed bytes with signed saturation.
func PSubSB(a, b Reg) Reg {
	return mapB(a, b, func(x, y uint8) uint8 {
		return uint8(fixed.SatB(int32(int8(x)) - int32(int8(y))))
	})
}

// PSubSW subtracts packed signed words with signed saturation.
func PSubSW(a, b Reg) Reg {
	return mapW(a, b, func(x, y int16) int16 { return fixed.SatW(int32(x) - int32(y)) })
}

// PSubUSB subtracts packed unsigned bytes with unsigned saturation.
func PSubUSB(a, b Reg) Reg {
	return mapB(a, b, func(x, y uint8) uint8 { return fixed.SatUB(int32(x) - int32(y)) })
}

// PSubUSW subtracts packed unsigned words with unsigned saturation.
func PSubUSW(a, b Reg) Reg {
	return mapW(a, b, func(x, y int16) int16 {
		return int16(fixed.SatUW(int32(uint16(x)) - int32(uint16(y))))
	})
}

// ---------------------------------------------------------------------------
// Packed multiplies

// PMulLW multiplies packed signed words and keeps the low 16 bits of each
// 32-bit product.
func PMulLW(a, b Reg) Reg {
	return mapW(a, b, func(x, y int16) int16 { return int16(int32(x) * int32(y)) })
}

// PMulHW multiplies packed signed words and keeps the high 16 bits of each
// 32-bit product.
func PMulHW(a, b Reg) Reg {
	return mapW(a, b, func(x, y int16) int16 { return int16((int32(x) * int32(y)) >> 16) })
}

// PMAddWD multiplies packed signed words and adds adjacent 32-bit products:
// out.lo = a0*b0 + a1*b1, out.hi = a2*b2 + a3*b3. This is the MMX
// multiply-accumulate primitive that gives matvec its superlinear speedup.
func PMAddWD(a, b Reg) Reg {
	aw, bw := a.Words(), b.Words()
	lo := int32(aw[0])*int32(bw[0]) + int32(aw[1])*int32(bw[1])
	hi := int32(aw[2])*int32(bw[2]) + int32(aw[3])*int32(bw[3])
	return FromDwords([2]int32{lo, hi})
}

// ---------------------------------------------------------------------------
// Pack with saturation

// PackSSWB packs the four words of a (low lanes) and b (high lanes) into
// eight signed-saturated bytes.
func PackSSWB(a, b Reg) Reg {
	aw, bw := a.Words(), b.Words()
	var out [8]uint8
	for i := 0; i < 4; i++ {
		out[i] = uint8(fixed.SatB(int32(aw[i])))
		out[i+4] = uint8(fixed.SatB(int32(bw[i])))
	}
	return FromBytes(out)
}

// PackSSDW packs the two dwords of a (low lanes) and b (high lanes) into
// four signed-saturated words.
func PackSSDW(a, b Reg) Reg {
	ad, bd := a.Dwords(), b.Dwords()
	return FromWords([4]int16{
		fixed.SatW(ad[0]), fixed.SatW(ad[1]),
		fixed.SatW(bd[0]), fixed.SatW(bd[1]),
	})
}

// PackUSWB packs the four words of a (low lanes) and b (high lanes) into
// eight unsigned-saturated bytes.
func PackUSWB(a, b Reg) Reg {
	aw, bw := a.Words(), b.Words()
	var out [8]uint8
	for i := 0; i < 4; i++ {
		out[i] = fixed.SatUB(int32(aw[i]))
		out[i+4] = fixed.SatUB(int32(bw[i]))
	}
	return FromBytes(out)
}

// ---------------------------------------------------------------------------
// Unpack (interleave)

// PUnpckLBW interleaves the low four bytes of a and b:
// out = b3 a3 b2 a2 b1 a1 b0 a0 (high..low).
func PUnpckLBW(a, b Reg) Reg {
	ab, bb := a.Bytes(), b.Bytes()
	var out [8]uint8
	for i := 0; i < 4; i++ {
		out[2*i] = ab[i]
		out[2*i+1] = bb[i]
	}
	return FromBytes(out)
}

// PUnpckHBW interleaves the high four bytes of a and b.
func PUnpckHBW(a, b Reg) Reg {
	ab, bb := a.Bytes(), b.Bytes()
	var out [8]uint8
	for i := 0; i < 4; i++ {
		out[2*i] = ab[i+4]
		out[2*i+1] = bb[i+4]
	}
	return FromBytes(out)
}

// PUnpckLWD interleaves the low two words of a and b.
func PUnpckLWD(a, b Reg) Reg {
	aw, bw := a.Words(), b.Words()
	return FromWords([4]int16{aw[0], bw[0], aw[1], bw[1]})
}

// PUnpckHWD interleaves the high two words of a and b.
func PUnpckHWD(a, b Reg) Reg {
	aw, bw := a.Words(), b.Words()
	return FromWords([4]int16{aw[2], bw[2], aw[3], bw[3]})
}

// PUnpckLDQ interleaves the low dwords of a and b.
func PUnpckLDQ(a, b Reg) Reg {
	ad, bd := a.Dwords(), b.Dwords()
	return FromDwords([2]int32{ad[0], bd[0]})
}

// PUnpckHDQ interleaves the high dwords of a and b.
func PUnpckHDQ(a, b Reg) Reg {
	ad, bd := a.Dwords(), b.Dwords()
	return FromDwords([2]int32{ad[1], bd[1]})
}

// ---------------------------------------------------------------------------
// Packed compares (result lanes are all-ones or all-zeros)

// PCmpEqB compares packed bytes for equality.
func PCmpEqB(a, b Reg) Reg {
	return mapB(a, b, func(x, y uint8) uint8 {
		if x == y {
			return 0xFF
		}
		return 0
	})
}

// PCmpEqW compares packed words for equality.
func PCmpEqW(a, b Reg) Reg {
	return mapW(a, b, func(x, y int16) int16 {
		if x == y {
			return -1
		}
		return 0
	})
}

// PCmpEqD compares packed doublewords for equality.
func PCmpEqD(a, b Reg) Reg {
	return mapD(a, b, func(x, y int32) int32 {
		if x == y {
			return -1
		}
		return 0
	})
}

// PCmpGtB compares packed signed bytes for a > b.
func PCmpGtB(a, b Reg) Reg {
	return mapB(a, b, func(x, y uint8) uint8 {
		if int8(x) > int8(y) {
			return 0xFF
		}
		return 0
	})
}

// PCmpGtW compares packed signed words for a > b.
func PCmpGtW(a, b Reg) Reg {
	return mapW(a, b, func(x, y int16) int16 {
		if x > y {
			return -1
		}
		return 0
	})
}

// PCmpGtD compares packed signed doublewords for a > b.
func PCmpGtD(a, b Reg) Reg {
	return mapD(a, b, func(x, y int32) int32 {
		if x > y {
			return -1
		}
		return 0
	})
}

// ---------------------------------------------------------------------------
// Logicals

// PAnd returns a & b.
func PAnd(a, b Reg) Reg { return a & b }

// PAndN returns ^a & b (MMX pandn: NOT of the destination ANDed with source).
func PAndN(a, b Reg) Reg { return ^a & b }

// POr returns a | b.
func POr(a, b Reg) Reg { return a | b }

// PXor returns a ^ b.
func PXor(a, b Reg) Reg { return a ^ b }

// ---------------------------------------------------------------------------
// Shifts. Counts >= the lane width zero (or sign-) fill, as on hardware.

// PSllW shifts packed words left.
func PSllW(a Reg, n uint) Reg {
	if n > 15 {
		return 0
	}
	return mapW(a, 0, func(x, _ int16) int16 { return int16(uint16(x) << n) })
}

// PSllD shifts packed doublewords left.
func PSllD(a Reg, n uint) Reg {
	if n > 31 {
		return 0
	}
	return mapD(a, 0, func(x, _ int32) int32 { return int32(uint32(x) << n) })
}

// PSllQ shifts the quadword left.
func PSllQ(a Reg, n uint) Reg {
	if n > 63 {
		return 0
	}
	return a << n
}

// PSrlW shifts packed words right, zero filling.
func PSrlW(a Reg, n uint) Reg {
	if n > 15 {
		return 0
	}
	return mapW(a, 0, func(x, _ int16) int16 { return int16(uint16(x) >> n) })
}

// PSrlD shifts packed doublewords right, zero filling.
func PSrlD(a Reg, n uint) Reg {
	if n > 31 {
		return 0
	}
	return mapD(a, 0, func(x, _ int32) int32 { return int32(uint32(x) >> n) })
}

// PSrlQ shifts the quadword right, zero filling.
func PSrlQ(a Reg, n uint) Reg {
	if n > 63 {
		return 0
	}
	return a >> n
}

// PSraW shifts packed words right arithmetically (sign filling).
func PSraW(a Reg, n uint) Reg {
	if n > 15 {
		n = 15
	}
	return mapW(a, 0, func(x, _ int16) int16 { return x >> n })
}

// PSraD shifts packed doublewords right arithmetically (sign filling).
func PSraD(a Reg, n uint) Reg {
	if n > 31 {
		n = 31
	}
	return mapD(a, 0, func(x, _ int32) int32 { return x >> n })
}
