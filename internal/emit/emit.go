// Package emit provides shared code-generation helpers used by the
// assembly libraries (internal/mmxlib, internal/fplib) and the benchmark
// programs: the cdecl-style calling convention and common idioms like
// broadcasting a word across an MMX register.
//
// Calling convention (all library routines follow it):
//   - arguments are pushed right to left, so the first argument is at
//     [esp+4] on entry;
//   - the caller pops its arguments after the call (add esp, 4*n);
//   - results return in EAX;
//   - every register is caller-saved: routines may clobber all GPRs and
//     the entire MMX/FP state.
//
// The explicit pushes, pops and stack traffic are the point: the paper's
// application-level results hinge on exactly this per-call overhead.
package emit

import (
	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
)

// Call pushes args right-to-left, calls the procedure, and pops the
// arguments. Results are in EAX (and MMX/FP state) per the convention.
func Call(b *asm.Builder, proc string, args ...isa.Operand) {
	for i := len(args) - 1; i >= 0; i-- {
		b.I(isa.PUSH, args[i])
	}
	b.Call(proc)
	if n := len(args); n > 0 {
		b.I(isa.ADD, asm.R(isa.ESP), asm.Imm(int64(4*n)))
	}
}

// Arg returns the operand for the i-th (0-based) dword argument inside a
// callee that has not pushed anything since entry.
func Arg(i int) isa.Operand {
	return asm.MemD(isa.ESP, int32(4+4*i))
}

// LoadArg emits a load of the i-th argument into a register.
func LoadArg(b *asm.Builder, r isa.Reg, i int) {
	b.I(isa.MOV, asm.R(r), Arg(i))
}

// BroadcastW fills all four word lanes of mm with the low 16 bits of gpr.
func BroadcastW(b *asm.Builder, mm, gpr isa.Reg) {
	b.I(isa.MOVD, asm.R(mm), asm.R(gpr))
	b.I(isa.PUNPCKLWD, asm.R(mm), asm.R(mm))
	b.I(isa.PUNPCKLDQ, asm.R(mm), asm.R(mm))
}

// HSumD folds the two dword lanes of mm into its low lane, using scratch.
func HSumD(b *asm.Builder, mm, scratch isa.Reg) {
	b.I(isa.MOVQ, asm.R(scratch), asm.R(mm))
	b.I(isa.PSRLQ, asm.R(scratch), asm.Imm(32))
	b.I(isa.PADDD, asm.R(mm), asm.R(scratch))
}

// Counter emits the standard count-up loop skeleton: it initializes reg to
// 0 and returns a function that emits the increment/compare/branch tail
// back to the label.
func Counter(b *asm.Builder, reg isa.Reg, label string) func(step, limit isa.Operand) {
	b.I(isa.MOV, asm.R(reg), asm.Imm(0))
	b.Label(label)
	return func(step, limit isa.Operand) {
		b.I(isa.ADD, asm.R(reg), step)
		b.I(isa.CMP, asm.R(reg), limit)
		b.J(isa.JL, label)
	}
}
