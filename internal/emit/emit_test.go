package emit

import (
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/vm"
)

func run(t *testing.T, build func(b *asm.Builder)) *vm.CPU {
	t.Helper()
	b := asm.NewBuilder("emit-test")
	build(b)
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	c := vm.New(p)
	if err := c.Run(1 << 16); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCallConventionArgOrderAndCleanup(t *testing.T) {
	c := run(t, func(b *asm.Builder) {
		b.Proc("main")
		Call(b, "sub3", asm.Imm(100), asm.Imm(30), asm.Imm(7))
		b.I(isa.HALT)
		// sub3(a, b, c) = a - b - c.
		b.Proc("sub3")
		LoadArg(b, isa.EAX, 0)
		b.I(isa.SUB, asm.R(isa.EAX), Arg(1))
		b.I(isa.SUB, asm.R(isa.EAX), Arg(2))
		b.Ret()
	})
	if got := int32(c.GPR(isa.EAX)); got != 63 {
		t.Errorf("sub3(100,30,7) = %d, want 63", got)
	}
	if c.GPR(isa.ESP) != c.Prog.StackTop() {
		t.Errorf("stack not cleaned up: esp = %#x, want %#x", c.GPR(isa.ESP), c.Prog.StackTop())
	}
}

func TestBroadcastW(t *testing.T) {
	c := run(t, func(b *asm.Builder) {
		b.Reserve("out", 8)
		b.Proc("main")
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0x1234))
		BroadcastW(b, isa.MM3, isa.EAX)
		b.I(isa.MOVQ, asm.Sym(isa.SizeQ, "out", 0), asm.R(isa.MM3))
		b.I(isa.EMMS)
		b.I(isa.HALT)
	})
	w, _ := c.Mem.ReadInt16s(c.Prog.Addr("out"), 4)
	for i, v := range w {
		if v != 0x1234 {
			t.Errorf("lane %d = %#x, want 0x1234", i, v)
		}
	}
}

func TestHSumD(t *testing.T) {
	c := run(t, func(b *asm.Builder) {
		b.Dwords("v", []int32{100, -30})
		b.Proc("main")
		b.I(isa.MOVQ, asm.R(isa.MM0), asm.Sym(isa.SizeQ, "v", 0))
		HSumD(b, isa.MM0, isa.MM1)
		b.I(isa.MOVD, asm.R(isa.EAX), asm.R(isa.MM0))
		b.I(isa.EMMS)
		b.I(isa.HALT)
	})
	if got := int32(c.GPR(isa.EAX)); got != 70 {
		t.Errorf("hsum = %d, want 70", got)
	}
}

func TestCounter(t *testing.T) {
	c := run(t, func(b *asm.Builder) {
		b.Proc("main")
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
		tail := Counter(b, isa.ECX, "loop")
		b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(2))
		tail(asm.Imm(1), asm.Imm(10))
		b.I(isa.HALT)
	})
	if got := c.GPR(isa.EAX); got != 20 {
		t.Errorf("counter loop ran %d/2 times, want 10", got/2)
	}
}
