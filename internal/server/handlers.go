// HTTP handlers. The /run path is the serving hot loop: admission, cache
// lookup, one core.RunCompiled under the request context, JSON out. The
// profile.Report is marshaled as-is, so a served result is byte-identical
// to marshaling a direct core.Run — the e2e suite pins this.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mmxdsp/internal/core"
	"mmxdsp/internal/profile"
)

// StatusClientClosedRequest is the nginx-convention status for "client
// went away before the response": the body is never seen, but the code
// keeps access logs and tests honest about why the run ended.
const StatusClientClosedRequest = 499

// RunResponse is the JSON body answering POST /run.
type RunResponse struct {
	Program  string `json:"program"`
	Dispatch string `json:"dispatch"` // requested mode ("auto" when defaulted)
	CacheHit bool   `json:"cache_hit"`
	// WallNS is host time spent inside the interpreter (excludes queueing).
	WallNS       int64           `json:"wall_ns"`
	InstrsPerSec float64         `json:"instrs_per_sec"`
	Blocks       core.BlockStats `json:"blocks"`
	// Report is the full simulation report; byte-identical to a direct
	// core.Run of the same request.
	Report *profile.Report `json:"report"`
}

// TableResponse is the JSON body answering GET /table.
type TableResponse struct {
	Dispatch  string `json:"dispatch"`
	Programs  int    `json:"programs"`
	Table2    string `json:"table2"`
	Table2CSV string `json:"table2_csv"`
	Table3    string `json:"table3"`
	Table3CSV string `json:"table3_csv"`
}

// ProgramInfo describes one registered program for capability discovery.
type ProgramInfo struct {
	Name    string `json:"name"`    // paper-style name, e.g. "fft.mmx"
	Base    string `json:"base"`    // benchmark family, e.g. "fft"
	Version string `json:"version"` // "c", "fp" or "mmx"
	Kind    string `json:"kind"`    // "kernel" or "application"
	Descr   string `json:"descr"`
}

// ProgramsResponse is the JSON body answering GET /programs: the daemon's
// program registry plus the dispatch modes every program accepts. A
// coordinator fronting several daemons discovers capabilities here instead
// of hardcoding the suite.
type ProgramsResponse struct {
	Programs      []ProgramInfo `json:"programs"`
	DispatchModes []string      `json:"dispatch_modes"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// marshalResponse renders v exactly as writeJSON would put it on the wire
// (two-space indent plus trailing newline), so bytes served fresh and
// bytes replayed from the result cache are identical by construction.
func marshalResponse(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteCachedResult serves a cached (or just-computed) response: the
// strong ETag always, 304 with no body when If-None-Match revalidates,
// the stored bytes otherwise. The ResultCacheHeader says how the bytes
// were produced.
func WriteCachedResult(w http.ResponseWriter, r *http.Request, res *CachedResult, outcome ResultOutcome) {
	w.Header().Set("ETag", res.ETag)
	w.Header().Set(ResultCacheHeader, outcome.String())
	if etagMatches(r.Header.Get("If-None-Match"), res.ETag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(res.Body)
}

// runStatus maps a run failure to an HTTP status using the request
// context: deadline -> 504, cancellation (disconnect or drain) -> 499,
// anything else -> 500.
func runStatus(ctx context.Context, err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	case ctx.Err() != nil:
		// The context fired but the interpreter surfaced a different
		// error first (e.g. a budget fault racing the deadline).
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	body, err := readRequestBody(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req, err := ParseRunRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req.priority = parsePriority(r.Header.Get(PriorityHeader))
	if req.MaxInstrs, err = s.capInstrs(req.MaxInstrs); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Program existence is checked before admission so unknown names stay
	// cheap 404s; compilation itself happens under the admission slot (a
	// flood of cold-cache requests must shed before doing compile work).
	if _, ok := s.cfg.Lookup(req.Program); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown program %q", req.Program))
		return
	}

	tenant := TenantKey(r)
	if err := s.tenants.Admit(tenant, time.Now()); err != nil {
		s.writeQuotaError(w, err)
		return
	}
	var retired int64
	defer func() { s.tenants.Release(tenant, retired) }()

	ctx, cancel := s.requestContext(r, req.timeout(s.cfg.DefaultTimeout))
	defer cancel()
	res, outcome, err := s.runResult(ctx, req, &retired)
	if err != nil {
		if errors.Is(err, errQueueFull) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		status := runStatus(ctx, err)
		if status == http.StatusGatewayTimeout || status == StatusClientClosedRequest {
			s.metrics.canceled.Add(1)
		} else {
			s.metrics.runsFailed.Add(1)
		}
		writeError(w, status, err)
		return
	}
	WriteCachedResult(w, r, res, outcome)
}

// runResult answers one validated /run through the result cache:
// a hit replays stored bytes without touching admission or the
// interpreter; a miss single-flights executeRun so concurrent identical
// requests simulate once. With caching disabled every request executes.
func (s *Server) runResult(ctx context.Context, req *RunRequest, retired *int64) (*CachedResult, ResultOutcome, error) {
	if s.results == nil {
		body, err := s.executeRun(ctx, req, retired)
		if err != nil {
			return nil, ResultBypass, err
		}
		key := req.ResultKey()
		return &CachedResult{Key: key, ETag: ETagFor(key, body), Body: body}, ResultBypass, nil
	}
	return s.results.Do(ctx, req.ResultKey(), func() ([]byte, error) {
		return s.executeRun(ctx, req, retired)
	})
}

// executeRun is the uncached serving path: admission, compile (under the
// admission slot), one interpreter run, marshal. The returned bytes are
// exactly what goes on the wire. retired reports the instructions actually
// simulated, for per-tenant quota debits (zero on cache hits, which never
// reach here).
func (s *Server) executeRun(ctx context.Context, req *RunRequest, retired *int64) ([]byte, error) {
	release, err := s.acquire(ctx, req.priority)
	if err != nil {
		return nil, err
	}
	defer release()

	comp, hit, err := s.compiledFor(req)
	if err != nil {
		return nil, err
	}
	res, err := core.RunCompiled(comp, req.options(ctx))
	if err != nil {
		return nil, err
	}
	*retired = int64(res.Report.DynamicInstructions)
	s.metrics.recordRun(req.Program, res.Report.DynamicInstructions, res.Wall)
	s.metrics.recordTraces(res.Traces)

	dispatch := req.Dispatch
	if dispatch == "" {
		dispatch = "auto"
	}
	return marshalResponse(RunResponse{
		Program:      req.Program,
		Dispatch:     dispatch,
		CacheHit:     hit,
		WallNS:       res.Wall.Nanoseconds(),
		InstrsPerSec: res.InstrsPerSec(),
		Blocks:       res.Blocks,
		Report:       res.Report,
	})
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	q := r.URL.Query()
	req := &RunRequest{Dispatch: q.Get("dispatch"), SkipCheck: true}
	if v := q.Get("timeout_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, errors.New("bad timeout_ms"))
			return
		}
		req.TimeoutMS = ms
	}
	switch req.Dispatch {
	case "", "auto", core.DispatchBlock, core.DispatchTrace, core.DispatchPredecode, core.DispatchGeneric:
	default:
		writeError(w, http.StatusBadRequest, errors.New("unknown dispatch mode "+strconv.Quote(req.Dispatch)))
		return
	}

	ctx, cancel := s.requestContext(r, req.timeout(s.cfg.DefaultTimeout))
	defer cancel()
	// The whole table is one cacheable result, keyed like a run with an
	// empty program slot ("table|..."): the registry is static per
	// deployment, so (dispatch, config) pins the artifact bytes.
	res, outcome, err := s.tableResult(ctx, req)
	if err != nil {
		if errors.Is(err, errQueueFull) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		status := runStatus(ctx, err)
		if status == http.StatusGatewayTimeout || status == StatusClientClosedRequest {
			s.metrics.canceled.Add(1)
		} else {
			s.metrics.runsFailed.Add(1)
		}
		writeError(w, status, err)
		return
	}
	WriteCachedResult(w, r, res, outcome)
}

// tableResult mirrors runResult for GET /table.
func (s *Server) tableResult(ctx context.Context, req *RunRequest) (*CachedResult, ResultOutcome, error) {
	key := "table|" + req.ResultKey()
	if s.results == nil {
		body, err := s.executeTable(ctx, req)
		if err != nil {
			return nil, ResultBypass, err
		}
		return &CachedResult{Key: key, ETag: ETagFor(key, body), Body: body}, ResultBypass, nil
	}
	return s.results.Do(ctx, key, func() ([]byte, error) {
		return s.executeTable(ctx, req)
	})
}

// WarmSuite renders and caches the whole-suite /table artifact for each
// given dispatch mode ("auto", "trace", "block", "predecode" or "generic"),
// so a daemon answers its first table request — and, through the shared
// compiled-program cache, first per-program runs — warm instead of paying
// the full sweep in request latency. Intended to run before serving starts;
// it uses the same admission, caches and metrics as a live request.
func (s *Server) WarmSuite(ctx context.Context, modes []string) error {
	for _, mode := range modes {
		switch mode {
		case "", "auto", core.DispatchBlock, core.DispatchTrace, core.DispatchPredecode, core.DispatchGeneric:
		default:
			return fmt.Errorf("warm suite: unknown dispatch mode %q", mode)
		}
		// The request mirrors handleTable's exactly so the cached bytes key
		// identically to later GET /table traffic.
		req := &RunRequest{Dispatch: mode, SkipCheck: true}
		if _, _, err := s.tableResult(ctx, req); err != nil {
			return fmt.Errorf("warm suite (%s): %w", mode, err)
		}
	}
	return nil
}

// executeTable renders the Table 2/3 artifacts uncached. A table request
// occupies one admission slot for its whole suite sweep; the sweep itself
// fans out on an internal pool so the suite finishes in roughly
// max-program time rather than summed time.
func (s *Server) executeTable(ctx context.Context, req *RunRequest) ([]byte, error) {
	release, err := s.acquire(ctx, req.priority)
	if err != nil {
		return nil, err
	}
	defer release()

	rs, err := s.runSuite(ctx, req)
	if err != nil {
		return nil, err
	}
	dispatch := req.Dispatch
	if dispatch == "" {
		dispatch = "auto"
	}
	return marshalResponse(TableResponse{
		Dispatch:  dispatch,
		Programs:  len(rs),
		Table2:    core.Table2(rs),
		Table2CSV: core.Table2CSV(rs),
		Table3:    core.Table3(rs),
		Table3CSV: core.Table3CSV(rs),
	})
}

// runSuite runs every registered benchmark through the cache on a bounded
// internal pool, returning the keyed result set the table renderers
// consume. The first error wins; the context aborts the stragglers.
func (s *Server) runSuite(ctx context.Context, req *RunRequest) (core.ResultSet, error) {
	benches := s.cfg.Benchmarks()
	type item struct {
		name string
		res  *core.Result
		err  error
	}
	jobs := make(chan core.Benchmark)
	out := make(chan item, len(benches))
	workers := s.cfg.Workers
	if workers > len(benches) {
		workers = len(benches)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bench := range jobs {
				name := bench.Name()
				if err := ctx.Err(); err != nil {
					out <- item{name: name, err: err}
					continue
				}
				one := *req
				one.Program = name
				comp, _, err := s.compiledFor(&one)
				if err != nil {
					out <- item{name: name, err: err}
					continue
				}
				res, err := core.RunCompiled(comp, one.options(ctx))
				if err != nil {
					out <- item{name: name, err: err}
					continue
				}
				s.metrics.recordRun(name, res.Report.DynamicInstructions, res.Wall)
				s.metrics.recordTraces(res.Traces)
				out <- item{name: name, res: res}
			}
		}()
	}
	for _, bench := range benches {
		jobs <- bench
	}
	close(jobs)
	wg.Wait()
	close(out)

	rs := make(core.ResultSet, len(benches))
	var firstErr error
	for it := range out {
		if it.err != nil {
			if firstErr == nil {
				firstErr = it.err
			}
			continue
		}
		rs[it.name] = it.res
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return rs, nil
}

func (s *Server) handlePrograms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	benches := s.cfg.Benchmarks()
	resp := ProgramsResponse{
		Programs: make([]ProgramInfo, 0, len(benches)),
		DispatchModes: []string{
			core.DispatchBlock, core.DispatchPredecode, core.DispatchGeneric,
		},
	}
	for _, b := range benches {
		resp.Programs = append(resp.Programs, ProgramInfo{
			Name: b.Name(), Base: b.Base, Version: b.Version,
			Kind: b.Kind, Descr: b.Descr,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshot())
}
