// The compiled-program cache. Building a suite benchmark synthesizes its
// workload data and macro-assembles the program, and predecoding lowers it
// into handler arrays and basic blocks — work that is identical for every
// request naming the same (program, dispatch, config) triple. The cache
// keys immutable core.Compiled artifacts by that triple with bounded LRU
// eviction, so a warm daemon serves repeat requests straight into
// vm.NewWithCode / pentium.Bind without re-entering the assembler.
package server

import (
	"container/list"
	"sync"

	"mmxdsp/internal/core"
)

// cacheKey identifies one compiled artifact. The compiled code itself
// depends only on the program, but dispatch and the timing-model
// configuration are part of the key so that any future lowering that
// specializes on them stays correct by construction.
type cacheKey struct {
	program  string
	dispatch string
	config   string // canonical config hash, see RunRequest.configKey
}

// cacheEntry is one slot. The sync.Once serializes compilation so that
// concurrent first requests for the same key compile exactly once; the
// entry is immutable afterwards, so readers outside the cache lock are
// safe even if the entry gets evicted underneath them.
type cacheEntry struct {
	key  cacheKey
	once sync.Once
	comp *core.Compiled
	err  error
}

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
type CacheStats struct {
	Entries   int
	Capacity  int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate returns hits as a fraction of lookups (0 when idle).
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// codeCache is a bounded LRU of compiled programs.
type codeCache struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List // front = most recently used; values are *cacheEntry
	elems     map[cacheKey]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

func newCodeCache(capacity int) *codeCache {
	if capacity < 1 {
		capacity = 1
	}
	return &codeCache{
		capacity: capacity,
		order:    list.New(),
		elems:    make(map[cacheKey]*list.Element, capacity),
	}
}

// get returns the compiled artifact for key, invoking compile exactly once
// per cache residency. The second return reports whether the entry was
// already present (a hit — possibly still compiling under another
// request's Once, which then blocks only the requests that need it).
func (c *codeCache) get(key cacheKey, compile func() (*core.Compiled, error)) (*core.Compiled, bool, error) {
	c.mu.Lock()
	if el, ok := c.elems[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		entry := el.Value.(*cacheEntry)
		c.mu.Unlock()
		entry.once.Do(func() { entry.comp, entry.err = compile() })
		return entry.comp, true, entry.err
	}
	c.misses++
	entry := &cacheEntry{key: key}
	el := c.order.PushFront(entry)
	c.elems[key] = el
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.elems, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.mu.Unlock()

	entry.once.Do(func() { entry.comp, entry.err = compile() })
	if entry.err != nil {
		// Do not cache failures: builds are deterministic today, but a
		// resident error would turn any transient failure into a permanent
		// one for the key's lifetime.
		c.mu.Lock()
		if el, ok := c.elems[key]; ok && el.Value.(*cacheEntry) == entry {
			c.order.Remove(el)
			delete(c.elems, key)
		}
		c.mu.Unlock()
	}
	return entry.comp, false, entry.err
}

// stats snapshots the counters.
func (c *codeCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.order.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
