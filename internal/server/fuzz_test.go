package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mmxdsp/internal/core"
	"mmxdsp/internal/suite"
)

// FuzzParseRequest throws arbitrary bodies at the /run decoder. The decoder
// must never panic, and any request it accepts must be internally
// consistent: the derived dispatch mode is one of the known constants,
// budgets are non-negative, and the cache-key/option derivations are total
// and stable.
func FuzzParseRequest(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"program":"fir.mmx"}`))
	f.Add([]byte(`{"program":"fft.c","dispatch":"block","max_instrs":100000,"timeout_ms":250,"skip_check":true}`))
	f.Add([]byte(`{"program":"iir.fp","config":{"mispredict_penalty":7,"disable_pairing":true,"emms_latency":53,"mmx_mul_latency":5,"perfect_cache":true}}`))
	f.Add([]byte(`{"program":"g722.c","config":{"emms_latency":0}}`))
	f.Add([]byte(`{"program":"x","dispatch":"warp"}`))
	f.Add([]byte(`{"program":"x"} trailing`))
	f.Add([]byte(`{"program":"x","max_instrs":-1}`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRunRequest(data)
		if err != nil {
			if req != nil {
				t.Fatal("non-nil request returned alongside an error")
			}
			return
		}
		if req.Program == "" {
			t.Fatal("empty program escaped validation")
		}
		if req.MaxInstrs < 0 || req.TimeoutMS < 0 {
			t.Fatalf("negative budget escaped validation: instrs=%d timeout=%d",
				req.MaxInstrs, req.TimeoutMS)
		}
		switch req.dispatchMode() {
		case core.DispatchAuto, core.DispatchBlock, core.DispatchPredecode, core.DispatchGeneric:
		default:
			t.Fatalf("dispatch mode %q escaped validation", req.dispatchMode())
		}
		cfg := req.pentiumConfig()
		// EmmsLatency -1 is the "use the ISA table" sentinel.
		if cfg.MispredictPenalty < 0 || cfg.EmmsLatency < -1 || cfg.MMXMulLatency < 0 {
			t.Fatalf("negative timing parameter escaped validation: %+v", cfg)
		}
		if k1, k2 := req.configKey(), req.configKey(); k1 != k2 {
			t.Fatalf("configKey not stable: %q != %q", k1, k2)
		}
		opt := req.options(context.Background())
		if opt.Ctx == nil || opt.Pentium == nil {
			t.Fatal("options lost the context or config")
		}
		if opt.Dispatch != req.dispatchMode() {
			t.Fatalf("options dispatch %q != %q", opt.Dispatch, req.dispatchMode())
		}
	})
}

// FuzzAsmEndpoint drives fuzzed source listings through the full /asm
// HTTP handler — decode, validation, assembly, simulation, marshal. The
// handler must never panic or hang (a tight budget and deadline bound
// every accepted program), and every answer must be well-formed JSON:
// either an error object or a complete response envelope.
func FuzzAsmEndpoint(f *testing.F) {
	// Seeds: a real suite listing (the conformance corpus's shape), a
	// terminating toy, a budget-bound spin, and malformed sources that
	// must 400. One real program keeps per-exec cost low enough to fuzz.
	if bench, ok := suite.ByName("fir.mmx"); ok {
		if prog, err := bench.Build(); err == nil {
			f.Add(prog.Source())
		}
	}
	f.Add(".proc main\n\tprofon\n\tmov eax, 7\n\tprofoff\n\thalt\n")
	f.Add(".proc main\nspin:\n\tadd eax, 1\n\tjmp spin\n")
	f.Add("start:\n\tmov eax, 1\n\tfrobnicate eax\n")
	f.Add(".hex __data deadbeef\n.proc main\n\thalt\n")
	f.Add("")
	f.Add("\x00\x01\x02")

	// One server for the whole campaign: tight budget, short deadline, no
	// result caching (identical inputs must re-execute to catch flakiness).
	srv := New(Config{
		AsmMaxInstrsCap:    200000,
		MaxSourceBytes:     1 << 16,
		DefaultTimeout:     2 * time.Second,
		ResultCacheEntries: -1,
	})
	handler := srv.Handler()

	f.Fuzz(func(t *testing.T, source string) {
		body, err := json.Marshal(struct {
			Source string `json:"source"`
		}{source})
		if err != nil {
			t.Skip()
		}
		req := httptest.NewRequest(http.MethodPost, "/asm", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)

		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge,
			http.StatusGatewayTimeout, http.StatusInternalServerError:
		default:
			t.Fatalf("unexpected status %d: %.300s", rec.Code, rec.Body.String())
		}
		if rec.Code == http.StatusOK {
			var env AsmResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("200 body is not a response envelope: %v: %.300s", err, rec.Body.String())
			}
			if env.Report == nil || len(env.SourceHash) != 64 {
				t.Fatalf("200 envelope incomplete: report=%v hash=%q", env.Report != nil, env.SourceHash)
			}
		} else {
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("status %d body is not a structured error: %.300s", rec.Code, rec.Body.String())
			}
		}
	})
}
