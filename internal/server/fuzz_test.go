package server

import (
	"context"
	"testing"

	"mmxdsp/internal/core"
)

// FuzzParseRequest throws arbitrary bodies at the /run decoder. The decoder
// must never panic, and any request it accepts must be internally
// consistent: the derived dispatch mode is one of the known constants,
// budgets are non-negative, and the cache-key/option derivations are total
// and stable.
func FuzzParseRequest(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"program":"fir.mmx"}`))
	f.Add([]byte(`{"program":"fft.c","dispatch":"block","max_instrs":100000,"timeout_ms":250,"skip_check":true}`))
	f.Add([]byte(`{"program":"iir.fp","config":{"mispredict_penalty":7,"disable_pairing":true,"emms_latency":53,"mmx_mul_latency":5,"perfect_cache":true}}`))
	f.Add([]byte(`{"program":"g722.c","config":{"emms_latency":0}}`))
	f.Add([]byte(`{"program":"x","dispatch":"warp"}`))
	f.Add([]byte(`{"program":"x"} trailing`))
	f.Add([]byte(`{"program":"x","max_instrs":-1}`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRunRequest(data)
		if err != nil {
			if req != nil {
				t.Fatal("non-nil request returned alongside an error")
			}
			return
		}
		if req.Program == "" {
			t.Fatal("empty program escaped validation")
		}
		if req.MaxInstrs < 0 || req.TimeoutMS < 0 {
			t.Fatalf("negative budget escaped validation: instrs=%d timeout=%d",
				req.MaxInstrs, req.TimeoutMS)
		}
		switch req.dispatchMode() {
		case core.DispatchAuto, core.DispatchBlock, core.DispatchPredecode, core.DispatchGeneric:
		default:
			t.Fatalf("dispatch mode %q escaped validation", req.dispatchMode())
		}
		cfg := req.pentiumConfig()
		// EmmsLatency -1 is the "use the ISA table" sentinel.
		if cfg.MispredictPenalty < 0 || cfg.EmmsLatency < -1 || cfg.MMXMulLatency < 0 {
			t.Fatalf("negative timing parameter escaped validation: %+v", cfg)
		}
		if k1, k2 := req.configKey(), req.configKey(); k1 != k2 {
			t.Fatalf("configKey not stable: %q != %q", k1, k2)
		}
		opt := req.options(context.Background())
		if opt.Ctx == nil || opt.Pentium == nil {
			t.Fatal("options lost the context or config")
		}
		if opt.Dispatch != req.dispatchMode() {
			t.Fatalf("options dispatch %q != %q", opt.Dispatch, req.dispatchMode())
		}
	})
}
