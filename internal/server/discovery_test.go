// Tests for the fleet-facing surface of the daemon: the /programs
// capability-discovery endpoint, the X-Request-ID correlation echo, and the
// exported affinity cache key.
package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"mmxdsp/internal/server"
	"mmxdsp/internal/suite"
)

func TestProgramsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	resp, err := http.Get(ts.URL + "/programs")
	if err != nil {
		t.Fatalf("GET /programs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var pr server.ProgramsResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("decoding /programs: %v", err)
	}
	names := suite.Names()
	if len(pr.Programs) != len(names) {
		t.Fatalf("got %d programs, want %d", len(pr.Programs), len(names))
	}
	byName := map[string]server.ProgramInfo{}
	for _, p := range pr.Programs {
		byName[p.Name] = p
	}
	for _, name := range names {
		if _, ok := byName[name]; !ok {
			t.Errorf("program %q missing from /programs", name)
		}
	}
	fir, ok := byName["fir.mmx"]
	if !ok || fir.Base != "fir" || fir.Version != "mmx" || fir.Kind != "kernel" || fir.Descr == "" {
		t.Errorf("fir.mmx entry malformed: %+v (ok=%t)", fir, ok)
	}
	if len(pr.DispatchModes) != 3 {
		t.Errorf("dispatch modes %v, want the three interpreter loops", pr.DispatchModes)
	}

	post, err := http.Post(ts.URL+"/programs", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /programs: %v", err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /programs: status %d, want 405", post.StatusCode)
	}
}

var hexID = regexp.MustCompile(`^[0-9a-f]{16}$`)

func TestRequestIDEcho(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	do := func(id, method, path, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set(server.RequestIDHeader, id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	// Client-supplied ID echoed on success.
	resp := do("trace-abc-123", "POST", "/run", `{"program":"fir.mmx","skip_check":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(server.RequestIDHeader); got != "trace-abc-123" {
		t.Errorf("echoed ID %q, want %q", got, "trace-abc-123")
	}

	// Echoed on error paths too: unknown program (404) and bad JSON (400).
	resp = do("trace-err", "POST", "/run", `{"program":"nope.mmx"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown program status %d, want 404", resp.StatusCode)
	}
	if got := resp.Header.Get(server.RequestIDHeader); got != "trace-err" {
		t.Errorf("404 echoed ID %q, want %q", got, "trace-err")
	}

	// Absent ID: the daemon mints a 16-hex-digit one.
	resp = do("", "GET", "/healthz", "")
	if got := resp.Header.Get(server.RequestIDHeader); !hexID.MatchString(got) {
		t.Errorf("generated ID %q, want 16 hex digits", got)
	}

	// Hostile IDs are replaced, not echoed. The Go client refuses to send
	// control bytes at all, so exercise the middleware directly with a
	// handcrafted request.
	handler := server.WithRequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	for _, hostile := range []string{"bad\x01id", strings.Repeat("x", 200)} {
		req := httptest.NewRequest("GET", "/healthz", nil)
		req.Header[server.RequestIDHeader] = []string{hostile}
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		got := rec.Header().Get(server.RequestIDHeader)
		if got == hostile || got == "" || len(got) > 64 {
			t.Errorf("hostile ID %q echoed as %q, want sanitized", hostile, got)
		}
	}
}

func TestCacheKeyDistinguishesConfigs(t *testing.T) {
	parse := func(body string) *server.RunRequest {
		t.Helper()
		req, err := server.ParseRunRequest([]byte(body))
		if err != nil {
			t.Fatalf("ParseRunRequest(%s): %v", body, err)
		}
		return req
	}
	a := parse(`{"program":"fir.mmx","dispatch":"block"}`)
	b := parse(`{"program":"fir.mmx","dispatch":"block","timeout_ms":500}`)
	if a.CacheKey() != b.CacheKey() {
		t.Errorf("timeout changed the cache key: %q vs %q", a.CacheKey(), b.CacheKey())
	}
	variants := []string{
		`{"program":"fir.mmx","dispatch":"predecode"}`,
		`{"program":"fft.mmx","dispatch":"block"}`,
		`{"program":"fir.mmx","dispatch":"block","config":{"perfect_cache":true}}`,
		`{"program":"fir.mmx","dispatch":"block","config":{"mispredict_penalty":7}}`,
	}
	seen := map[string]string{a.CacheKey(): variants[0]}
	for _, v := range variants {
		key := parse(v).CacheKey()
		if prev, dup := seen[key]; dup {
			t.Errorf("cache key collision between %s and %s", prev, v)
		}
		seen[key] = v
	}
	// "auto" and "" normalize to the same key.
	if parse(`{"program":"fir.mmx","dispatch":"auto"}`).CacheKey() != parse(`{"program":"fir.mmx"}`).CacheKey() {
		t.Error("auto and default dispatch should share a cache key")
	}
}
