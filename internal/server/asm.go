// POST /asm: user-submitted program execution — the front door that turns
// the daemon from a curated-suite harness into a multi-tenant simulation
// service. The request carries a textual listing (the syntax
// asm.ParseSource accepts and Program.Source emits) plus the same
// dispatch/ablation/budget knobs as /run; the response carries the same
// profile report a /run of an identical program produces, byte for byte.
//
// The execution pipeline is /run's with source in place of a registry
// name: the compiled artifact is keyed by the source hash in the shared
// compiled-program LRU, the response bytes are keyed by AsmRequest.ResultKey
// in the shared result cache, and AsmRequest.CacheKey is the rendezvous
// affinity key a coordinator routes on — repeat submissions of the same
// source land where it is already compiled, by construction. Safety rails
// user source needs and suite programs do not: a source size cap (413), an
// always-on instruction budget that turns infinite loops into partial
// "budget_exhausted" reports instead of hangs, structured 400s with
// 1-based line/column for parse errors, and per-tenant quotas (tenant.go).
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/core"
	"mmxdsp/internal/profile"
)

// Defaults for the /asm safety rails.
const (
	// DefaultMaxSourceBytes caps submitted listings. The largest suite
	// program serializes to under 2 MiB of source, so 4 MiB admits
	// anything the service itself can emit with headroom.
	DefaultMaxSourceBytes = 4 << 20
	// DefaultAsmMaxInstrs is the default /asm instruction budget: large
	// enough to retire every suite program, small enough that a tight
	// infinite loop exhausts it in seconds.
	DefaultAsmMaxInstrs = 1 << 31
)

// ErrSourceTooLarge marks an oversized submission; handleAsm maps it to
// 413 rather than the generic 400.
var ErrSourceTooLarge = errors.New("source listing too large")

// AsmRequest is the JSON body of POST /asm.
type AsmRequest struct {
	// Source is the program listing (asm.ParseSource syntax).
	Source string `json:"source"`
	// Name labels the program in the response, report and metrics
	// (default: "asm-" + the first 12 hex digits of the source hash).
	Name string `json:"name,omitempty"`
	// Dispatch, MaxInstrs, TimeoutMS and Config mean exactly what they
	// mean on /run. MaxInstrs is additionally capped by the server's
	// /asm budget ceiling, and exhausting it is not an error: the
	// response reports the retired prefix with budget_exhausted set.
	Dispatch  string          `json:"dispatch,omitempty"`
	MaxInstrs int64           `json:"max_instrs,omitempty"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
	Config    *ConfigOverride `json:"config,omitempty"`

	// sourceHash is the full hex SHA-256 of Source, computed at parse.
	sourceHash string
	// priority is the admission priority from PriorityHeader (not JSON).
	priority int
}

// AsmResponse is the JSON body answering POST /asm. Report is identical —
// byte for byte — to what POST /run returns for the same program, the
// conformance suite pins this.
type AsmResponse struct {
	Program    string `json:"program"`
	SourceHash string `json:"source_hash"`
	Dispatch   string `json:"dispatch"`
	CacheHit   bool   `json:"cache_hit"`
	// BudgetExhausted marks a partial run: the instruction budget expired
	// before HALT and Report covers only the retired prefix.
	BudgetExhausted bool            `json:"budget_exhausted,omitempty"`
	WallNS          int64           `json:"wall_ns"`
	InstrsPerSec    float64         `json:"instrs_per_sec"`
	Blocks          core.BlockStats `json:"blocks"`
	Report          *profile.Report `json:"report"`
}

// asmErrorResponse is the /asm error body: the uniform error string plus
// 1-based source coordinates when the failure is a parse error.
type asmErrorResponse struct {
	Error string `json:"error"`
	Line  int    `json:"line,omitempty"`
	Col   int    `json:"col,omitempty"`
}

// ParseAsmRequest decodes and validates a /asm body against the source
// size cap. Oversized sources return an error wrapping ErrSourceTooLarge;
// everything else invalid maps to 400. The source is hashed here, once,
// so every later tier (caches, routing) reuses the digest.
func ParseAsmRequest(data []byte, maxSourceBytes int) (*AsmRequest, error) {
	if maxSourceBytes <= 0 {
		maxSourceBytes = DefaultMaxSourceBytes
	}
	if len(data) > asmBodyLimit(maxSourceBytes) {
		return nil, fmt.Errorf("%w: request body exceeds %d bytes", ErrSourceTooLarge, asmBodyLimit(maxSourceBytes))
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req AsmRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid JSON: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after request object")
	}
	if req.Source == "" {
		return nil, fmt.Errorf("missing required field %q", "source")
	}
	if len(req.Source) > maxSourceBytes {
		return nil, fmt.Errorf("%w: %d bytes (limit %d)", ErrSourceTooLarge, len(req.Source), maxSourceBytes)
	}
	if len(req.Name) > 200 {
		return nil, fmt.Errorf("name exceeds 200 bytes")
	}
	if err := validateRunFields(req.Dispatch, req.MaxInstrs, req.TimeoutMS, req.Config); err != nil {
		return nil, err
	}
	sum := sha256.Sum256([]byte(req.Source))
	req.sourceHash = hex.EncodeToString(sum[:])
	return &req, nil
}

// asmBodyLimit bounds the whole /asm request body: the source cap, doubled
// for worst-case JSON string escaping, plus slack for the other fields.
func asmBodyLimit(maxSourceBytes int) int {
	return 2*maxSourceBytes + maxRequestBody
}

// progName is the internal program identity: source-hash-derived, so
// compiled-cache keys and interpreter fault strings are deterministic
// across submissions regardless of the caller-chosen display name.
func (a *AsmRequest) progName() string { return "asm:" + a.sourceHash[:12] }

// name is the caller-facing display name.
func (a *AsmRequest) name() string {
	if a.Name != "" {
		return a.Name
	}
	return "asm-" + a.sourceHash[:12]
}

// runRequest views the submission as a RunRequest so the option plumbing
// (timing config, dispatch mapping, timeouts) is shared with /run, not
// duplicated. SkipCheck is inherent: user programs have no reference
// implementation to validate against.
func (a *AsmRequest) runRequest() *RunRequest {
	return &RunRequest{
		Program:   a.progName(),
		Dispatch:  a.Dispatch,
		MaxInstrs: a.MaxInstrs,
		TimeoutMS: a.TimeoutMS,
		SkipCheck: true,
		Config:    a.Config,
	}
}

// CacheKey is the affinity/compiled-artifact key: source hash, dispatch
// and timing config — the triple that pins the compiled artifact, and the
// string a coordinator rendezvous-hashes so repeat submissions land on the
// backend already holding it.
func (a *AsmRequest) CacheKey() string {
	rr := a.runRequest()
	return "asm|h=" + a.sourceHash + "|" + rr.dispatchMode() + "|" + rr.configKey()
}

// ResultKey extends CacheKey with the fields that shape response bytes but
// not the compiled artifact: the budget (a truncated run reports different
// bytes) and the display name (stamped into the response and report).
func (a *AsmRequest) ResultKey() string {
	return a.CacheKey() + fmt.Sprintf("|mi=%d|n=%s", a.MaxInstrs, a.name())
}

// capAsmInstrs resolves the /asm budget: the tighter of the /asm ceiling
// and the server-wide cap, defaulting absent budgets to it. Unlike /run,
// a cap is always in force unless explicitly disabled (negative).
func (s *Server) capAsmInstrs(req int64) (int64, error) {
	limit := s.cfg.AsmMaxInstrsCap
	if s.cfg.MaxInstrsCap > 0 && (limit <= 0 || s.cfg.MaxInstrsCap < limit) {
		limit = s.cfg.MaxInstrsCap
	}
	if limit <= 0 {
		return req, nil
	}
	if req == 0 {
		return limit, nil
	}
	if req > limit {
		return 0, fmt.Errorf("max_instrs %d exceeds the /asm cap %d", req, limit)
	}
	return req, nil
}

func (s *Server) handleAsm(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	body, err := readAsmBody(r.Body, s.cfg.MaxSourceBytes)
	if err != nil {
		writeAsmError(w, err)
		return
	}
	req, err := ParseAsmRequest(body, s.cfg.MaxSourceBytes)
	if err != nil {
		writeAsmError(w, err)
		return
	}
	req.priority = parsePriority(r.Header.Get(PriorityHeader))
	if req.MaxInstrs, err = s.capAsmInstrs(req.MaxInstrs); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	tenant := TenantKey(r)
	if err := s.tenants.Admit(tenant, time.Now()); err != nil {
		s.writeQuotaError(w, err)
		return
	}
	var retired int64
	defer func() { s.tenants.Release(tenant, retired) }()

	ctx, cancel := s.requestContext(r, req.runRequest().timeout(s.cfg.DefaultTimeout))
	defer cancel()
	res, outcome, err := s.asmResult(ctx, req, &retired)
	if err != nil {
		if errors.Is(err, errQueueFull) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		var se *asm.SourceError
		if errors.As(err, &se) {
			writeJSON(w, http.StatusBadRequest, asmErrorResponse{
				Error: se.Error(), Line: se.Line, Col: se.Col,
			})
			return
		}
		status := runStatus(ctx, err)
		if status == http.StatusGatewayTimeout || status == StatusClientClosedRequest {
			s.metrics.canceled.Add(1)
		} else {
			s.metrics.runsFailed.Add(1)
		}
		writeError(w, status, err)
		return
	}
	WriteCachedResult(w, r, res, outcome)
}

// writeQuotaError maps a tenant-quota refusal to 429 + Retry-After.
func (s *Server) writeQuotaError(w http.ResponseWriter, err error) {
	s.metrics.tenantShed.Add(1)
	var qe *QuotaError
	if errors.As(err, &qe) {
		w.Header().Set("Retry-After", retryAfterSeconds(qe.RetryAfter))
	}
	writeError(w, http.StatusTooManyRequests, err)
}

// writeAsmError maps body/parse failures: oversized source to 413,
// anything else to 400.
func writeAsmError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrSourceTooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

// readAsmBody drains a /asm request body under the (escaping-adjusted)
// source size cap; overflow wraps ErrSourceTooLarge for the 413 path.
func readAsmBody(body io.Reader, maxSourceBytes int) ([]byte, error) {
	if maxSourceBytes <= 0 {
		maxSourceBytes = DefaultMaxSourceBytes
	}
	limit := asmBodyLimit(maxSourceBytes)
	data, err := io.ReadAll(io.LimitReader(body, int64(limit)+1))
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	if len(data) > limit {
		return nil, fmt.Errorf("%w: request body exceeds %d bytes", ErrSourceTooLarge, limit)
	}
	return data, nil
}

// asmResult answers one validated /asm through the result cache, exactly
// like runResult: hits replay stored bytes (debiting no instruction
// quota), misses single-flight executeAsm.
func (s *Server) asmResult(ctx context.Context, req *AsmRequest, retired *int64) (*CachedResult, ResultOutcome, error) {
	if s.results == nil {
		body, err := s.executeAsm(ctx, req, retired)
		if err != nil {
			return nil, ResultBypass, err
		}
		key := req.ResultKey()
		return &CachedResult{Key: key, ETag: ETagFor(key, body), Body: body}, ResultBypass, nil
	}
	return s.results.Do(ctx, req.ResultKey(), func() ([]byte, error) {
		return s.executeAsm(ctx, req, retired)
	})
}

// executeAsm is the uncached submission path: admission, assemble +
// predecode through the shared compiled-program cache (keyed by source
// hash, so repeat submissions skip the assembler), one interpreter run
// with PartialOnBudget, marshal.
func (s *Server) executeAsm(ctx context.Context, req *AsmRequest, retired *int64) ([]byte, error) {
	release, err := s.acquire(ctx, req.priority)
	if err != nil {
		return nil, err
	}
	defer release()

	key := cacheKey{program: req.progName(), dispatch: req.runRequest().dispatchMode(), config: req.runRequest().configKey()}
	comp, hit, err := s.cache.get(key, func() (*core.Compiled, error) {
		prog, err := asm.ParseSource(req.progName(), req.Source)
		if err != nil {
			return nil, err
		}
		return core.CompileProgram(req.progName(), prog), nil
	})
	if err != nil {
		return nil, err
	}
	// Serve under the caller's display name via a shallow copy; the cached
	// artifact keeps its hash-derived identity for other submitters.
	named := *comp
	named.Benchmark.Base = req.name()

	opt := req.runRequest().options(ctx)
	opt.PartialOnBudget = true
	res, err := core.RunCompiled(&named, opt)
	if err != nil {
		return nil, err
	}
	*retired = int64(res.Report.DynamicInstructions)
	s.metrics.asmRuns.Add(1)
	s.metrics.recordRun(req.name(), res.Report.DynamicInstructions, res.Wall)
	s.metrics.recordTraces(res.Traces)

	dispatch := req.Dispatch
	if dispatch == "" {
		dispatch = "auto"
	}
	return marshalResponse(AsmResponse{
		Program:         req.name(),
		SourceHash:      req.sourceHash,
		Dispatch:        dispatch,
		CacheHit:        hit,
		BudgetExhausted: res.BudgetExhausted,
		WallNS:          res.Wall.Nanoseconds(),
		InstrsPerSec:    res.InstrsPerSec(),
		Blocks:          res.Blocks,
		Report:          res.Report,
	})
}
