// Two-level priority admission. The worker pool used to be a plain channel
// semaphore: first-come, first-served, which lets a bulk tenant's batch
// flood queue ahead of every interactive request. The admitter keeps the
// same contract (bounded concurrency, bounded queue, context-aware waits)
// but holds two FIFO queues and always grants freed slots to interactive
// waiters first; bulk waiters are additionally capped to half the queue,
// so at saturation bulk traffic sheds (429 + Retry-After) while
// interactive traffic still has queue room — the "shed low-priority
// first" half of the multi-tenant story (tenant.go is the other half).
package server

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// Request priorities, set by the X-Mmx-Priority header.
const (
	PriorityInteractive = iota // default: humans waiting on the response
	PriorityBulk               // batch/backfill traffic; first to shed
	numPriorities
)

// PriorityHeader names the request priority: "interactive" (default) or
// "bulk". Coordinators forward it to backends verbatim.
const PriorityHeader = "X-Mmx-Priority"

// errQueueFull is returned by acquire when the admission queue (or the
// bulk share of it) is at capacity; handlers map it to 429 + Retry-After.
var errQueueFull = errors.New("admission queue full")

// admitWaiter is one queued request. granted flags the handoff: a releaser
// that grants the slot sets it under the admitter lock, so a waiter whose
// context fires can tell whether it now owns a slot it must give back.
type admitWaiter struct {
	ready   chan struct{}
	granted bool
}

// admitter is the two-priority worker pool.
type admitter struct {
	mu      sync.Mutex
	workers int // concurrent slot count
	depth   int // total queued waiters allowed
	bulkCap int // queued bulk waiters allowed (≤ depth)
	active  int
	queues  [numPriorities]*list.List
}

func newAdmitter(workers, depth int) *admitter {
	bulkCap := depth / 2
	if bulkCap < 1 {
		bulkCap = 1
	}
	a := &admitter{workers: workers, depth: depth, bulkCap: bulkCap}
	for i := range a.queues {
		a.queues[i] = list.New()
	}
	return a
}

func (a *admitter) queuedLocked() int {
	n := 0
	for _, q := range a.queues {
		n += q.Len()
	}
	return n
}

// acquire admits one request at the given priority, queueing until a slot
// frees or ctx fires. The returned release must be called exactly once.
func (a *admitter) acquire(ctx context.Context, priority int) (release func(), err error) {
	if priority < 0 || priority >= numPriorities {
		priority = PriorityInteractive
	}
	a.mu.Lock()
	if a.active < a.workers {
		a.active++
		a.mu.Unlock()
		return a.release, nil
	}
	if a.queuedLocked() >= a.depth ||
		(priority == PriorityBulk && a.queues[PriorityBulk].Len() >= a.bulkCap) {
		a.mu.Unlock()
		return nil, errQueueFull
	}
	w := &admitWaiter{ready: make(chan struct{})}
	el := a.queues[priority].PushBack(w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		return a.release, nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: we own a slot. Hand it on.
			a.grantLocked()
			a.mu.Unlock()
			return nil, ctx.Err()
		}
		a.queues[priority].Remove(el)
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// grantLocked hands the caller's slot to the highest-priority waiter, or
// retires it when no one is waiting. Callers hold a.mu.
func (a *admitter) grantLocked() {
	for _, q := range a.queues {
		if el := q.Front(); el != nil {
			q.Remove(el)
			w := el.Value.(*admitWaiter)
			w.granted = true
			close(w.ready)
			return
		}
	}
	a.active--
}

func (a *admitter) release() {
	a.mu.Lock()
	a.grantLocked()
	a.mu.Unlock()
}

// stats reports (active slot holders, queued waiters) for /metrics.
func (a *admitter) stats() (active, queued int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(a.active), int64(a.queuedLocked())
}

// parsePriority maps the PriorityHeader value onto a priority level;
// anything but "bulk" (including absence) is interactive, so the header is
// opt-in for batch clients and never breaks existing ones.
func parsePriority(v string) int {
	if v == "bulk" {
		return PriorityBulk
	}
	return PriorityInteractive
}
