// Request-ID correlation. A fleet deployment routes (and sometimes hedges
// or retries) one logical request across several daemons; stamping every
// response with the client-supplied X-Request-ID — or minting one when the
// client sent none — lets those hops be joined in logs. The middleware sets
// the header on the shared header map before the wrapped handler runs, so
// every path, including error and shed responses, carries it.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
)

// RequestIDHeader is the correlation header echoed on every response.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds an echoed client ID so a hostile header cannot
// bloat logs or responses.
const maxRequestIDLen = 64

// NewRequestID mints a fresh 16-hex-digit request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a fixed fallback
		// still yields a well-formed (if non-unique) ID.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID truncates an over-long client ID and rejects values
// with bytes that are unsafe to reflect into a header or log line.
func sanitizeRequestID(id string) string {
	if len(id) > maxRequestIDLen {
		id = id[:maxRequestIDLen]
	}
	for i := 0; i < len(id); i++ {
		if c := id[i]; c < 0x20 || c > 0x7e {
			return ""
		}
	}
	return id
}

// WithRequestID wraps next so every response echoes the request's
// X-Request-ID, generating one when the client did not supply a usable
// value.
func WithRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get(RequestIDHeader))
		if id == "" {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r)
	})
}
