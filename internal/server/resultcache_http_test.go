// Black-box tests for the result cache's HTTP surface: byte-identical
// replays, ETag revalidation, request coalescing, and the admission-order
// guarantee that a full queue sheds load before any compile work happens.
package server_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/core"
	"mmxdsp/internal/server"
)

const firBody = `{"program":"fir.mmx","dispatch":"block","skip_check":true}`

func postRunHeaders(t *testing.T, ts *httptest.Server, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestResultCacheReplaysByteIdenticalResponses(t *testing.T) {
	_, ts := newTestServer(t, server.Config{ResultCacheEntries: 64})

	resp1, body1 := postRunHeaders(t, ts, firBody, nil)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get(server.ResultCacheHeader); got != "miss" {
		t.Errorf("first run %s = %q, want miss", server.ResultCacheHeader, got)
	}
	etag := resp1.Header.Get("ETag")
	if etag == "" {
		t.Fatal("first run carried no ETag")
	}

	resp2, body2 := postRunHeaders(t, ts, firBody, nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second run: status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get(server.ResultCacheHeader); got != "hit" {
		t.Errorf("second run %s = %q, want hit", server.ResultCacheHeader, got)
	}
	if !strings.EqualFold(etag, resp2.Header.Get("ETag")) {
		t.Errorf("ETag changed across identical runs: %q vs %q", etag, resp2.Header.Get("ETag"))
	}
	if string(body1) != string(body2) {
		t.Error("cached response bytes differ from the first execution")
	}

	snap := getMetrics(t, ts.URL)
	if snap.RunsOK != 1 {
		t.Errorf("runs_ok = %d, want 1 (the replay must not execute)", snap.RunsOK)
	}
	if snap.ResultHits != 1 || snap.ResultMisses != 1 {
		t.Errorf("result cache hits/misses = %d/%d, want 1/1", snap.ResultHits, snap.ResultMisses)
	}
}

func TestResultCacheETagRevalidation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{ResultCacheEntries: 64})

	resp1, _ := postRunHeaders(t, ts, firBody, nil)
	etag := resp1.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on the first response")
	}

	resp304, body := postRunHeaders(t, ts, firBody, map[string]string{"If-None-Match": etag})
	if resp304.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match with the current tag: status %d, want 304", resp304.StatusCode)
	}
	if len(body) != 0 {
		t.Errorf("304 carried a %d-byte body", len(body))
	}
	if got := resp304.Header.Get("ETag"); got != etag {
		t.Errorf("304 ETag = %q, want %q", got, etag)
	}

	respStale, body := postRunHeaders(t, ts, firBody, map[string]string{"If-None-Match": `"stale"`})
	if respStale.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("stale If-None-Match: status %d body %d bytes, want a full 200", respStale.StatusCode, len(body))
	}
}

func TestTableETagRevalidation(t *testing.T) {
	lookup, all := registryFromSuite(t, "fir.c", "fir.mmx")
	_, ts := newTestServer(t, server.Config{ResultCacheEntries: 64, Lookup: lookup, Benchmarks: all})

	get := func(hdr map[string]string) *http.Response {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/table?dispatch=block", nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET /table: %v", err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp
	}

	first := get(nil)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("GET /table: status %d", first.StatusCode)
	}
	etag := first.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on /table")
	}
	if resp := get(map[string]string{"If-None-Match": etag}); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidated /table: status %d, want 304", resp.StatusCode)
	}
}

func TestConcurrentIdenticalRunsExecuteOnce(t *testing.T) {
	_, ts := newTestServer(t, server.Config{ResultCacheEntries: 64})
	const clients = 8

	var wg sync.WaitGroup
	bodies := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postRunHeaders(t, ts, firBody, nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			bodies[i] = string(data)
		}(i)
	}
	wg.Wait()

	for i := 1; i < clients; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("client %d saw different bytes", i)
		}
	}
	snap := getMetrics(t, ts.URL)
	if snap.RunsOK != 1 {
		t.Errorf("runs_ok = %d, want 1 (single-flight should collapse the burst)", snap.RunsOK)
	}
	if total := snap.ResultHits + snap.ResultMisses + snap.ResultCoalesced; total != clients {
		t.Errorf("result-cache lookups = %d, want %d", total, clients)
	}
	if snap.ResultMisses != 1 {
		t.Errorf("result-cache misses = %d, want 1", snap.ResultMisses)
	}
}

// TestFullQueueShedsBeforeCompiling pins the admission order: when the
// queue is full, a cold request is shed with 429 before any compile work
// happens (compilation runs under the admission slot, not before it).
func TestFullQueueShedsBeforeCompiling(t *testing.T) {
	var coldBuilds atomic.Int32
	cold := core.Benchmark{
		Base: "cold", Version: core.VersionC, Kind: core.KindKernel, Descr: "counts builds",
		Build: func() (*asm.Program, error) {
			coldBuilds.Add(1)
			return asm.ParseSource("cold", ".proc main\n\tmov eax, 0\n")
		},
	}
	lookup, all := registry(spinBench("spin"), cold)
	_, ts := newTestServer(t, server.Config{Workers: 1, QueueDepth: 1, Lookup: lookup, Benchmarks: all})

	cctx, ccancel := context.WithCancel(context.Background())
	defer ccancel()
	var wg sync.WaitGroup
	launch := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequestWithContext(cctx, http.MethodPost, ts.URL+"/run",
				strings.NewReader(`{"program":"spin.c","skip_check":true}`))
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	launch()
	waitFor(t, "the worker slot to fill", func() bool { return getMetrics(t, ts.URL).ActiveRuns == 1 })
	launch()
	waitFor(t, "the queue slot to fill", func() bool { return getMetrics(t, ts.URL).QueueDepth == 1 })

	status, data := postRun(t, ts.URL, `{"program":"cold.c","skip_check":true}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("cold request against a full queue: status %d, want 429: %s", status, data)
	}
	if n := coldBuilds.Load(); n != 0 {
		t.Errorf("shed request compiled anyway (%d builds); compilation must wait for admission", n)
	}

	ccancel()
	wg.Wait()
	waitFor(t, "the server to settle", func() bool {
		snap := getMetrics(t, ts.URL)
		return snap.ActiveRuns == 0 && snap.QueueDepth == 0
	})
}
