// Per-tenant accounting: token-bucket rate limits, concurrent-run caps and
// windowed instruction quotas, keyed by the X-Mmx-Tenant header (falling
// back to the client IP, so unlabeled traffic is still isolated per
// source). The limiter is deliberately cheap — one mutex, one bounded
// LRU map of tenant states — because it sits in front of every request,
// including result-cache hits: rate limits meter requests, while the
// instruction quota is debited only with instructions actually simulated,
// so cached replays never consume quota.
package server

import (
	"container/list"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// TenantHeader carries the accounting key for a request. Coordinators
// resolve it (defaulting to the client IP) and forward it to backends, so
// fleet-wide quotas see one identity per tenant regardless of routing.
const TenantHeader = "X-Mmx-Tenant"

// maxTrackedTenants bounds the tenant-state table; beyond it the least
// recently active tenant is dropped (its bucket refills from scratch on
// return, which only ever errs in the tenant's favor).
const maxTrackedTenants = 1024

// TenantLimits configures per-tenant accounting; the zero value disables
// all limits (every request admitted, accounting still recorded).
type TenantLimits struct {
	// Rate is the steady-state request rate (requests/second) each tenant
	// may sustain; Burst is the bucket size (defaults to max(1, Rate)).
	// Rate 0 = unlimited.
	Rate  float64
	Burst int
	// MaxConcurrent caps a tenant's in-flight requests (queued included);
	// 0 = unlimited.
	MaxConcurrent int
	// InstrQuota caps simulated instructions per tenant per Window
	// (default window: one minute); 0 = unlimited. Only instructions
	// actually simulated count — result-cache hits are free.
	InstrQuota int64
	Window     time.Duration
}

func (l TenantLimits) enabled() bool {
	return l.Rate > 0 || l.MaxConcurrent > 0 || l.InstrQuota > 0
}

// QuotaError is a per-tenant admission refusal; handlers map it to 429
// with a Retry-After header.
type QuotaError struct {
	Tenant     string
	Reason     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %q over %s quota (retry in %s)", e.Tenant, e.Reason, e.RetryAfter)
}

// tenantState is one tenant's live accounting.
type tenantState struct {
	key         string
	tokens      float64
	lastRefill  time.Time
	inflight    int
	windowStart time.Time
	windowUsed  int64 // instructions simulated this window

	admitted uint64 // lifetime admits
	shed     uint64 // lifetime quota refusals
}

// TenantLimiter tracks per-tenant state under one lock.
type TenantLimiter struct {
	limits TenantLimits
	mu     sync.Mutex
	order  *list.List // LRU of *tenantState
	elems  map[string]*list.Element
}

// NewTenantLimiter builds a limiter for the given limits (zero = record
// accounting but never refuse).
func NewTenantLimiter(limits TenantLimits) *TenantLimiter {
	if limits.Burst <= 0 {
		limits.Burst = int(limits.Rate)
		if limits.Burst < 1 {
			limits.Burst = 1
		}
	}
	if limits.Window <= 0 {
		limits.Window = time.Minute
	}
	return &TenantLimiter{
		limits: limits,
		order:  list.New(),
		elems:  make(map[string]*list.Element),
	}
}

// stateLocked returns (creating if needed) the tenant's state, refreshing
// its LRU position and evicting the coldest tenant beyond the table bound.
func (l *TenantLimiter) stateLocked(tenant string, now time.Time) *tenantState {
	if el, ok := l.elems[tenant]; ok {
		l.order.MoveToFront(el)
		return el.Value.(*tenantState)
	}
	st := &tenantState{
		key:         tenant,
		tokens:      float64(l.limits.Burst),
		lastRefill:  now,
		windowStart: now,
	}
	l.elems[tenant] = l.order.PushFront(st)
	for l.order.Len() > maxTrackedTenants {
		oldest := l.order.Back()
		l.order.Remove(oldest)
		delete(l.elems, oldest.Value.(*tenantState).key)
	}
	return st
}

// Admit accounts one request arrival for the tenant, refusing with a
// *QuotaError when a limit is exceeded. On success the tenant holds one
// in-flight slot until Release.
func (l *TenantLimiter) Admit(tenant string, now time.Time) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stateLocked(tenant, now)

	if lim := l.limits.MaxConcurrent; lim > 0 && st.inflight >= lim {
		st.shed++
		return &QuotaError{Tenant: tenant, Reason: "concurrency", RetryAfter: time.Second}
	}
	if rate := l.limits.Rate; rate > 0 {
		st.tokens += now.Sub(st.lastRefill).Seconds() * rate
		if max := float64(l.limits.Burst); st.tokens > max {
			st.tokens = max
		}
		st.lastRefill = now
		if st.tokens < 1 {
			st.shed++
			wait := time.Duration((1 - st.tokens) / rate * float64(time.Second))
			return &QuotaError{Tenant: tenant, Reason: "rate", RetryAfter: wait}
		}
		st.tokens--
	}
	if quota := l.limits.InstrQuota; quota > 0 {
		if since := now.Sub(st.windowStart); since >= l.limits.Window {
			st.windowStart, st.windowUsed = now, 0
		}
		if st.windowUsed >= quota {
			st.shed++
			left := l.limits.Window - now.Sub(st.windowStart)
			if left < time.Second {
				left = time.Second
			}
			return &QuotaError{Tenant: tenant, Reason: "instruction", RetryAfter: left}
		}
	}
	st.inflight++
	st.admitted++
	return nil
}

// Release returns the tenant's in-flight slot and debits the instructions
// the request actually simulated (zero for cache hits and failures).
func (l *TenantLimiter) Release(tenant string, instrs int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.elems[tenant]; ok {
		st := el.Value.(*tenantState)
		if st.inflight > 0 {
			st.inflight--
		}
		st.windowUsed += instrs
	}
}

// TenantStats is one tenant's accounting snapshot for /metrics.
type TenantStats struct {
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
	Inflight int    `json:"inflight"`
}

// Stats snapshots per-tenant accounting, most recently active first.
func (l *TenantLimiter) Stats() map[string]TenantStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]TenantStats, len(l.elems))
	for el := l.order.Front(); el != nil; el = el.Next() {
		st := el.Value.(*tenantState)
		out[st.key] = TenantStats{Admitted: st.admitted, Shed: st.shed, Inflight: st.inflight}
	}
	return out
}

// TenantKey resolves the accounting identity for a request: the
// TenantHeader when present, the client IP otherwise.
func TenantKey(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil || host == "" {
		return r.RemoteAddr
	}
	return host
}

// retryAfterSeconds renders a Retry-After value, rounding up with a floor
// of one second (Retry-After speaks integral seconds).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}
