// Campaign endpoints: declarative ablation-sweep grids executed through
// the daemon's own /run machinery. POST /campaign expands and bounds the
// grid, admits it against the creator's tenant quotas (one concurrency
// slot for the campaign's lifetime, instruction debits only for points
// actually simulated), and runs points on a bounded worker pool behind
// the ordinary admission queue at bulk priority — a campaign never
// starves interactive traffic. Campaigns are resources: GET polls status,
// GET /events streams SSE progress, DELETE cancels through the same
// context plumbing as client disconnects (canceled campaigns report
// canceled points, never failed ones — the 499-not-5xx rule).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"mmxdsp/internal/campaign"
)

// Campaign serving defaults.
const (
	DefaultCampaignMaxPoints = 4096
	DefaultCampaignWorkers   = 4
	DefaultCampaignMaxActive = 4
)

// campaignLimits resolves the grid bounds from the config.
func (s *Server) campaignLimits() campaign.Limits {
	lim := campaign.DefaultLimits()
	if s.cfg.CampaignMaxPoints > 0 {
		lim.MaxPoints = s.cfg.CampaignMaxPoints
	}
	return lim
}

// CampaignStatus is the JSON body answering POST /campaign and
// GET /campaign/{id}. Artifacts are inlined once the campaign completes:
// they are deterministic functions of the grid and the simulation, so the
// same campaign produces the same artifact bytes on any tier.
type CampaignStatus struct {
	ID       string           `json:"id"`
	Status   string           `json:"status"`
	Programs []string         `json:"programs"`
	Axes     map[string][]int `json:"axes,omitempty"`
	Total    int              `json:"total"`
	Done     int              `json:"done"`
	Failed   int              `json:"failed"`
	Cached   int              `json:"cached"`
	Canceled int              `json:"canceled"`
	ETAms    int64            `json:"eta_ms"`
	// SimulatedInstrs is the tenant-quota debit so far (cache hits are
	// free).
	SimulatedInstrs int64 `json:"simulated_instrs"`
	// Points carries per-point detail when requested with ?points=1.
	Points []CampaignPoint `json:"points,omitempty"`
	// ArtifactsCSV / ArtifactsMarkdown are the sensitivity artifacts,
	// present once Status is "completed".
	ArtifactsCSV      string `json:"artifacts_csv,omitempty"`
	ArtifactsMarkdown string `json:"artifacts_markdown,omitempty"`
}

// CampaignPoint is one grid cell's status in a detailed listing.
type CampaignPoint struct {
	Index    int    `json:"index"`
	Program  string `json:"program"`
	Dispatch string `json:"dispatch"`
	Values   []int  `json:"values"`
	Status   string `json:"status"`
	Cached   bool   `json:"cached"`
	Cycles   uint64 `json:"cycles,omitempty"`
	Instrs   uint64 `json:"instrs,omitempty"`
	Error    string `json:"error,omitempty"`
}

// StatusOfCampaign renders the shared status envelope; the coordinator
// reuses it so both tiers answer identically shaped campaign resources.
func StatusOfCampaign(c *campaign.Campaign, includePoints bool) CampaignStatus {
	ev := c.Snapshot()
	st := CampaignStatus{
		ID:              c.ID,
		Status:          ev.Status,
		Programs:        c.Spec.Programs,
		Axes:            c.Spec.Axes,
		Total:           ev.Total,
		Done:            ev.Done,
		Failed:          ev.Failed,
		Cached:          ev.Cached,
		Canceled:        ev.Canceled,
		ETAms:           ev.ETAms,
		SimulatedInstrs: c.SimulatedInstrs(),
	}
	if csv, md := c.Artifacts(); len(csv) > 0 || len(md) > 0 {
		st.ArtifactsCSV = string(csv)
		st.ArtifactsMarkdown = string(md)
	}
	if includePoints {
		points := c.PointsSnapshot()
		st.Points = make([]CampaignPoint, len(points))
		for i, p := range points {
			st.Points[i] = CampaignPoint{
				Index:    p.Index,
				Program:  p.Program,
				Dispatch: p.Dispatch,
				Values:   p.Values,
				Status:   p.Status,
				Cached:   p.Cached,
				Cycles:   p.Cycles,
				Instrs:   p.Instrs,
				Error:    p.Err,
			}
		}
	}
	return st
}

// handleCampaign serves POST /campaign (create).
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	body, err := readRequestBody(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, points, err := campaign.ParseSpec(body, s.campaignLimits())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	for _, p := range spec.Programs {
		if _, ok := s.cfg.Lookup(p); !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown program %q", p))
			return
		}
	}
	if _, err := s.capInstrs(spec.MaxInstrs); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// The campaign occupies one tenant concurrency slot for its whole
	// lifetime; instruction quota is debited at completion with what was
	// actually simulated (cached points are free), mirroring /run.
	tenant := TenantKey(r)
	if err := s.tenants.Admit(tenant, time.Now()); err != nil {
		s.writeQuotaError(w, err)
		return
	}

	c := campaign.New(s.campaignCtx, campaign.NewID(), spec, points, tenant)
	if err := s.campaigns.Add(c); err != nil {
		s.tenants.Release(tenant, 0)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	s.metrics.campaignsTotal.Add(1)

	// Campaign points are batch work: bulk priority unless the creator
	// explicitly asked for interactive.
	priority := PriorityBulk
	if r.Header.Get(PriorityHeader) == "interactive" {
		priority = PriorityInteractive
	}
	ex := &localCampaignExecutor{s: s, priority: priority}
	go func() {
		campaign.Run(c, ex, campaign.RunnerConfig{
			Workers: s.cfg.CampaignWorkers,
			OnPoint: s.metrics.recordCampaignPoint,
		})
		s.campaigns.Settle()
		s.tenants.Release(tenant, c.SimulatedInstrs())
		if dir := s.cfg.CampaignDir; dir != "" && c.Status() == campaign.StatusCompleted {
			csv, md := c.Artifacts()
			_ = campaign.Persist(dir, c.ID, csv, md) // best-effort; artifacts stay inline
		}
	}()
	writeJSON(w, http.StatusAccepted, StatusOfCampaign(c, false))
}

// handleCampaignID serves GET/DELETE /campaign/{id} and
// GET /campaign/{id}/events.
func (s *Server) handleCampaignID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/campaign/")
	id, sub, _ := strings.Cut(rest, "/")
	c, ok := s.campaigns.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", id))
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, StatusOfCampaign(c, r.URL.Query().Get("points") == "1"))
	case sub == "" && r.Method == http.MethodDelete:
		c.Cancel()
		writeJSON(w, http.StatusOK, StatusOfCampaign(c, false))
	case sub == "events" && r.Method == http.MethodGet:
		ServeCampaignEvents(w, r, c)
	default:
		writeError(w, http.StatusMethodNotAllowed, errors.New("unsupported campaign operation"))
	}
}

// ServeCampaignEvents streams a campaign's progress as server-sent
// events: one "progress" event per update (lossy under backpressure —
// intermediate states may be skipped), and a final "done" event carrying
// the terminal snapshot, guaranteed to arrive. Shared by both tiers.
func ServeCampaignEvents(w http.ResponseWriter, r *http.Request, c *campaign.Campaign) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ch, unsubscribe := c.Subscribe()
	defer unsubscribe()
	writeEvent := func(name string, ev campaign.Event) bool {
		data, err := marshalEvent(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				// Channel closed after the terminal event; emit the final
				// snapshot under its own name so clients need no counter
				// bookkeeping to know the stream is complete.
				writeEvent("done", c.Snapshot())
				return
			}
			if !writeEvent("progress", ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// marshalEvent renders one SSE payload (single-line JSON).
func marshalEvent(ev campaign.Event) ([]byte, error) {
	return json.Marshal(ev)
}

// localCampaignExecutor runs grid points through the daemon's own
// /run pipeline: result cache, single-flight, admission queue, compiled
// LRU. A point is one ordinary request minus the HTTP framing.
type localCampaignExecutor struct {
	s        *Server
	priority int
}

// campaignQueueRetries bounds retries when the admission queue sheds a
// point; campaign points are patient batch work, so brief saturation
// waits instead of failing the point.
const campaignQueueRetries = 8

func (e *localCampaignExecutor) RunPoint(ctx context.Context, p campaign.Point) (campaign.PointResult, error) {
	req, err := ParseRunRequest(p.Body)
	if err != nil {
		return campaign.PointResult{}, fmt.Errorf("point %d: %w", p.Index, err)
	}
	req.priority = e.priority
	if req.MaxInstrs, err = e.s.capInstrs(req.MaxInstrs); err != nil {
		return campaign.PointResult{}, fmt.Errorf("point %d: %w", p.Index, err)
	}
	pctx := ctx
	if t := req.timeout(e.s.cfg.DefaultTimeout); t > 0 {
		var cancel context.CancelFunc
		pctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	var retired int64
	for attempt := 0; ; attempt++ {
		res, outcome, err := e.s.runResult(pctx, req, &retired)
		if errors.Is(err, errQueueFull) && attempt < campaignQueueRetries {
			select {
			case <-time.After(time.Duration(50*(attempt+1)) * time.Millisecond):
				continue
			case <-ctx.Done():
				return campaign.PointResult{}, ctx.Err()
			}
		}
		if err != nil {
			return campaign.PointResult{}, err
		}
		pr, err := campaign.ParsePointMetrics(res.Body)
		if err != nil {
			return campaign.PointResult{}, err
		}
		pr.Cached = outcome == ResultHit || outcome == ResultSpillHit || outcome == ResultCoalesced
		return pr, nil
	}
}
