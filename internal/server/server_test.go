// Black-box integration tests for the mmxd service, driven entirely
// through the HTTP surface. The load-bearing assertions: served reports
// are byte-equivalent to direct core.Run reports, the warm cache skips
// recompilation, the admission queue sheds load with 429s, and every
// cancellation path (deadline, client disconnect, drain) halts the
// interpreter promptly without leaking goroutines.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/core"
	"mmxdsp/internal/server"
	"mmxdsp/internal/suite"
)

// TestMain is the goroutine-leak backstop: after every test (each of which
// closes its httptest server and settles its requests), the process must
// return to roughly the baseline goroutine count.
func TestMain(m *testing.M) {
	base := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base+3 && time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > base+3 {
			buf := make([]byte, 1<<20)
			fmt.Fprintf(os.Stderr, "goroutine leak: %d goroutines at exit, baseline %d\n%s\n",
				n, base, buf[:runtime.Stack(buf, true)])
			code = 1
		}
	}
	os.Exit(code)
}

// spinBench is a synthetic non-terminating benchmark; only cancellation
// (or the instruction budget) ends it.
func spinBench(base string) core.Benchmark {
	return core.Benchmark{
		Base: base, Version: core.VersionC, Kind: core.KindKernel, Descr: "synthetic spin",
		Build: func() (*asm.Program, error) {
			return asm.ParseSource(base, ".proc main\nspin:\n\tadd eax, 1\n\tjmp spin\n")
		},
	}
}

// registry builds a Config Lookup/Benchmarks pair over a fixed set.
func registry(benches ...core.Benchmark) (func(string) (core.Benchmark, bool), func() []core.Benchmark) {
	byName := map[string]core.Benchmark{}
	for _, b := range benches {
		byName[b.Name()] = b
	}
	return func(name string) (core.Benchmark, bool) {
			b, ok := byName[name]
			return b, ok
		}, func() []core.Benchmark {
			return append([]core.Benchmark(nil), benches...)
		}
}

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	// Most tests exercise the execution path (admission, compiled cache,
	// cancellation) and expect identical requests to re-run; result caching
	// is opt-in per test.
	if cfg.ResultCacheEntries == 0 {
		cfg.ResultCacheEntries = -1
	}
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postRun(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /run response: %v", err)
	}
	return resp.StatusCode, data
}

func getMetrics(t *testing.T, url string) server.MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var snap server.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	return snap
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	// Generous: under a full-suite run on a small host, compiling the
	// program behind the awaited condition can itself take seconds.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// runEnvelope mirrors RunResponse with the report kept raw for
// byte-equivalence checks.
type runEnvelope struct {
	Program  string          `json:"program"`
	Dispatch string          `json:"dispatch"`
	CacheHit bool            `json:"cache_hit"`
	WallNS   int64           `json:"wall_ns"`
	Report   json.RawMessage `json:"report"`
}

// compact strips encoding whitespace so indented responses compare against
// compact json.Marshal output; field order and value formatting survive,
// so this is still a byte-level equivalence check.
func compact(t *testing.T, raw []byte) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compacting JSON: %v", err)
	}
	return buf.String()
}

func directReportJSON(t *testing.T, name, dispatch string) string {
	t.Helper()
	bench, ok := suite.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	res, err := core.Run(bench, core.Options{SkipCheck: true, Dispatch: dispatch})
	if err != nil {
		t.Fatalf("direct run %s/%s: %v", name, dispatch, err)
	}
	data, err := json.Marshal(res.Report)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunMatchesDirectRun(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	for _, name := range []string{"fir.c", "fir.mmx", "fft.mmx"} {
		for _, dispatch := range []string{core.DispatchBlock, core.DispatchPredecode, core.DispatchGeneric} {
			t.Run(name+"/"+dispatch, func(t *testing.T) {
				body := fmt.Sprintf(`{"program":%q,"dispatch":%q,"skip_check":true}`, name, dispatch)
				status, data := postRun(t, ts.URL, body)
				if status != http.StatusOK {
					t.Fatalf("status %d: %s", status, data)
				}
				var env runEnvelope
				if err := json.Unmarshal(data, &env); err != nil {
					t.Fatalf("decoding response: %v", err)
				}
				if env.Program != name || env.Dispatch != dispatch {
					t.Errorf("envelope says %s/%s, want %s/%s", env.Program, env.Dispatch, name, dispatch)
				}
				if got, want := compact(t, env.Report), directReportJSON(t, name, dispatch); got != want {
					t.Errorf("served report differs from direct core.Run:\n got %.200s...\nwant %.200s...", got, want)
				}
			})
		}
	}
}

// TestWarmCacheSkipsRecompilation is the acceptance criterion for the
// compiled-program cache: the second identical request reports a cache hit
// and /metrics shows hits > 0.
func TestWarmCacheSkipsRecompilation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	const body = `{"program":"fir.mmx","dispatch":"block","skip_check":true}`

	status, data := postRun(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("cold run: status %d: %s", status, data)
	}
	var cold runEnvelope
	if err := json.Unmarshal(data, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Error("first request reported a cache hit")
	}

	status, data = postRun(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("warm run: status %d: %s", status, data)
	}
	var warm runEnvelope
	if err := json.Unmarshal(data, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("second identical request missed the cache")
	}
	if got, want := compact(t, warm.Report), compact(t, cold.Report); got != want {
		t.Error("warm report differs from cold report")
	}

	snap := getMetrics(t, ts.URL)
	if snap.CacheHits == 0 {
		t.Errorf("metrics report zero cache hits: %+v", snap)
	}
	if snap.CacheMisses == 0 {
		t.Errorf("metrics report zero cache misses: %+v", snap)
	}
	if snap.RunsOK != 2 {
		t.Errorf("runs_ok = %d, want 2", snap.RunsOK)
	}
	if snap.RunsByProgram["fir.mmx"] != 2 {
		t.Errorf("runs_by_program[fir.mmx] = %d, want 2", snap.RunsByProgram["fir.mmx"])
	}
	if snap.InstrsPerSec <= 0 || snap.WallMSP50 <= 0 {
		t.Errorf("derived gauges not populated: %+v", snap)
	}

	// A different config must be a distinct cache entry (miss, not hit).
	status, data = postRun(t, ts.URL, `{"program":"fir.mmx","dispatch":"block","skip_check":true,"config":{"disable_pairing":true}}`)
	if status != http.StatusOK {
		t.Fatalf("ablation run: status %d: %s", status, data)
	}
	var abl runEnvelope
	if err := json.Unmarshal(data, &abl); err != nil {
		t.Fatal(err)
	}
	if abl.CacheHit {
		t.Error("ablation config falsely shared the default-config cache entry")
	}
}

func TestQueueOverflowSheds429(t *testing.T) {
	lookup, all := registry(spinBench("spin"))
	_, ts := newTestServer(t, server.Config{Workers: 1, QueueDepth: 1, Lookup: lookup, Benchmarks: all})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	launch := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/run",
				strings.NewReader(`{"program":"spin.c","skip_check":true}`))
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	launch() // occupies the single worker
	waitFor(t, "the worker slot to fill", func() bool { return getMetrics(t, ts.URL).ActiveRuns == 1 })
	launch() // occupies the single queue slot
	waitFor(t, "the queue slot to fill", func() bool { return getMetrics(t, ts.URL).QueueDepth == 1 })

	status, data := postRun(t, ts.URL, `{"program":"spin.c","skip_check":true}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429: %s", status, data)
	}
	if snap := getMetrics(t, ts.URL); snap.Rejected == 0 {
		t.Errorf("metrics report zero rejections: %+v", snap)
	}

	cancel()
	wg.Wait()
	waitFor(t, "the server to settle after cancellation", func() bool {
		snap := getMetrics(t, ts.URL)
		return snap.ActiveRuns == 0 && snap.QueueDepth == 0
	})
}

// TestDeadlineExceeded pins the acceptance bound: a request whose deadline
// fires mid-simulation returns 504 promptly (well under 250ms after the
// deadline), because the interpreter polls the context every few thousand
// instructions.
func TestDeadlineExceeded(t *testing.T) {
	lookup, all := registry(spinBench("spin"))
	_, ts := newTestServer(t, server.Config{Lookup: lookup, Benchmarks: all})

	start := time.Now()
	status, data := postRun(t, ts.URL, `{"program":"spin.c","timeout_ms":50,"skip_check":true}`)
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", status, data)
	}
	if !strings.Contains(string(data), "deadline") {
		t.Errorf("error body does not mention the deadline: %s", data)
	}
	if elapsed > 250*time.Millisecond {
		t.Errorf("timed-out request took %v end to end, want < 250ms", elapsed)
	}
	if snap := getMetrics(t, ts.URL); snap.Canceled == 0 {
		t.Errorf("metrics report zero cancelled runs: %+v", snap)
	}
}

func TestClientDisconnectAbortsRun(t *testing.T) {
	lookup, all := registry(spinBench("spin"))
	_, ts := newTestServer(t, server.Config{Lookup: lookup, Benchmarks: all})

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/run",
		strings.NewReader(`{"program":"spin.c","skip_check":true}`))
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()
	waitFor(t, "the spin run to start", func() bool { return getMetrics(t, ts.URL).ActiveRuns == 1 })

	cancel() // client walks away
	if err := <-done; err == nil {
		t.Error("disconnected request returned a response instead of an error")
	}
	waitFor(t, "the aborted run to retire", func() bool {
		snap := getMetrics(t, ts.URL)
		return snap.ActiveRuns == 0 && snap.Canceled >= 1
	})
}

// TestCancelledRunLeavesCacheCoherent: a run aborted mid-flight must not
// poison the compiled-program cache — the next request for the same key
// hits the cache and produces a report identical to a direct run.
func TestCancelledRunLeavesCacheCoherent(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	// fir.c under the generic interpreter takes ~100ms; a 5ms deadline
	// reliably fires mid-run.
	status, data := postRun(t, ts.URL, `{"program":"fir.c","dispatch":"generic","timeout_ms":5,"skip_check":true}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", status, data)
	}

	status, data = postRun(t, ts.URL, `{"program":"fir.c","dispatch":"generic","skip_check":true}`)
	if status != http.StatusOK {
		t.Fatalf("post-cancel run: status %d: %s", status, data)
	}
	var env runEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if !env.CacheHit {
		t.Error("post-cancel run missed the cache (compilation outlives cancelled runs)")
	}
	if got, want := compact(t, env.Report), directReportJSON(t, "fir.c", core.DispatchGeneric); got != want {
		t.Error("post-cancel report differs from a direct run")
	}
}

func TestDrainRefusesNewWorkAndFinishesInFlight(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{})

	// Put a real run in flight, then start draining under it.
	inflight := make(chan struct {
		status int
		body   []byte
	}, 1)
	go func() {
		status, body := postRunNoFatal(ts.URL, `{"program":"g722.c","skip_check":true}`)
		inflight <- struct {
			status int
			body   []byte
		}{status, body}
	}()
	waitFor(t, "the in-flight run to start", func() bool { return getMetrics(t, ts.URL).ActiveRuns == 1 })

	srv.StartDrain()
	if !srv.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatalf("GET /healthz: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/healthz while draining: %d, want 503", resp.StatusCode)
		}
	}
	if status, data := postRun(t, ts.URL, `{"program":"fir.c"}`); status != http.StatusServiceUnavailable {
		t.Errorf("/run while draining: %d, want 503: %s", status, data)
	}
	if !getMetrics(t, ts.URL).Draining {
		t.Error("/metrics does not report draining")
	}

	// The admitted run must still complete successfully.
	res := <-inflight
	if res.status != http.StatusOK {
		t.Errorf("in-flight run during drain: status %d: %s", res.status, res.body)
	}
}

func postRunNoFatal(url, body string) (int, []byte) {
	resp, err := http.Post(url+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, []byte(err.Error())
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func TestConcurrentMixedTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent sweep; skipped in -short mode")
	}
	_, ts := newTestServer(t, server.Config{})
	type combo struct{ name, dispatch string }
	combos := []combo{
		{"fir.c", core.DispatchBlock}, {"fir.mmx", core.DispatchPredecode},
		{"fft.mmx", core.DispatchBlock}, {"fir.mmx", core.DispatchGeneric},
	}
	want := map[combo]string{}
	for _, c := range combos {
		want[c] = directReportJSON(t, c.name, c.dispatch)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		c := combos[i%len(combos)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, data := postRunNoFatal(ts.URL,
				fmt.Sprintf(`{"program":%q,"dispatch":%q,"skip_check":true}`, c.name, c.dispatch))
			if status != http.StatusOK {
				errs <- fmt.Errorf("%s/%s: status %d: %s", c.name, c.dispatch, status, data)
				return
			}
			var env runEnvelope
			if err := json.Unmarshal(data, &env); err != nil {
				errs <- fmt.Errorf("%s/%s: decode: %v", c.name, c.dispatch, err)
				return
			}
			var buf bytes.Buffer
			if err := json.Compact(&buf, env.Report); err != nil {
				errs <- err
				return
			}
			if buf.String() != want[c] {
				errs <- fmt.Errorf("%s/%s: concurrent report drifted", c.name, c.dispatch)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if snap := getMetrics(t, ts.URL); snap.RunsOK != 16 {
		t.Errorf("runs_ok = %d, want 16", snap.RunsOK)
	}
}

func TestTableEndpoint(t *testing.T) {
	lookup, all := registryFromSuite(t, "fir.c", "fir.fp", "fir.mmx")
	_, ts := newTestServer(t, server.Config{Lookup: lookup, Benchmarks: all})

	resp, err := http.Get(ts.URL + "/table?dispatch=block")
	if err != nil {
		t.Fatalf("GET /table: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var table struct {
		Dispatch  string `json:"dispatch"`
		Programs  int    `json:"programs"`
		Table2    string `json:"table2"`
		Table2CSV string `json:"table2_csv"`
		Table3    string `json:"table3"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&table); err != nil {
		t.Fatalf("decoding /table: %v", err)
	}
	if table.Programs != 3 || table.Dispatch != "block" {
		t.Errorf("table header: %+v", table)
	}
	for _, want := range []string{"fir.c", "fir.fp", "fir.mmx"} {
		if !strings.Contains(table.Table2, want) {
			t.Errorf("table2 missing %s:\n%s", want, table.Table2)
		}
	}
	if !strings.Contains(table.Table2CSV, "fir.mmx") || table.Table3 == "" {
		t.Error("table3/CSV artifacts empty")
	}
}

func registryFromSuite(t *testing.T, names ...string) (func(string) (core.Benchmark, bool), func() []core.Benchmark) {
	t.Helper()
	benches := make([]core.Benchmark, len(names))
	for i, n := range names {
		b, ok := suite.ByName(n)
		if !ok {
			t.Fatalf("unknown suite program %q", n)
		}
		benches[i] = b
	}
	return registry(benches...)
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{MaxInstrsCap: 1000000})
	cases := []struct {
		name, body string
		status     int
	}{
		{"bad JSON", `{`, http.StatusBadRequest},
		{"unknown field", `{"program":"fir.c","frobnicate":1}`, http.StatusBadRequest},
		{"missing program", `{}`, http.StatusBadRequest},
		{"unknown program", `{"program":"quake.mmx"}`, http.StatusNotFound},
		{"bad dispatch", `{"program":"fir.c","dispatch":"warp"}`, http.StatusBadRequest},
		{"negative budget", `{"program":"fir.c","max_instrs":-1}`, http.StatusBadRequest},
		{"budget over cap", `{"program":"fir.c","max_instrs":2000000}`, http.StatusBadRequest},
		{"trailing garbage", `{"program":"fir.c"} x`, http.StatusBadRequest},
		{"config out of range", `{"program":"fir.c","config":{"mispredict_penalty":5000}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, data := postRun(t, ts.URL, tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d: %s", status, tc.status, data)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
				t.Errorf("error body not structured: %s", data)
			}
		})
	}
	if resp, err := http.Get(ts.URL + "/run"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /run: %d, want 405", resp.StatusCode)
		}
	}
}

// TestBudgetCapDefaultsRequests: with MaxInstrsCap set, an uncapped spin
// request inherits the server budget and terminates with a budget fault
// (500) instead of running forever.
func TestBudgetCapDefaultsRequests(t *testing.T) {
	lookup, all := registry(spinBench("spin"))
	_, ts := newTestServer(t, server.Config{MaxInstrsCap: 200000, Lookup: lookup, Benchmarks: all})
	status, data := postRun(t, ts.URL, `{"program":"spin.c","skip_check":true}`)
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (budget fault): %s", status, data)
	}
	if !strings.Contains(string(data), "budget") {
		t.Errorf("error does not mention the budget: %s", data)
	}
}
