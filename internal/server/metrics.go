// Observability. Counters are expvar vars held on the Server (not the
// process-global expvar registry, which panics on duplicate names and
// would make the daemon untestable side by side); /metrics renders them as
// one JSON document together with derived gauges — queue depth, cache hit
// rate, per-benchmark run counts, aggregate simulated instr/s, and p50/p99
// wall-time quantiles over a sliding window.
package server

import (
	"expvar"
	"sort"
	"sync"
	"time"

	"mmxdsp/internal/campaign"
	"mmxdsp/internal/core"
)

// latencyWindowSize bounds the sliding window the wall-time quantiles are
// computed over; at serving rates this covers the recent past without
// unbounded growth.
const latencyWindowSize = 1024

// LatencyWindow is a fixed-size ring of recent wall times; both tiers
// derive their p50/p99 gauges from one.
type LatencyWindow struct {
	mu   sync.Mutex
	buf  [latencyWindowSize]float64 // milliseconds
	n    int                        // filled slots
	next int                        // ring cursor
}

// Add records one wall-time sample.
func (l *LatencyWindow) Add(d time.Duration) {
	ms := float64(d.Nanoseconds()) / 1e6
	l.mu.Lock()
	l.buf[l.next] = ms
	l.next = (l.next + 1) % latencyWindowSize
	if l.n < latencyWindowSize {
		l.n++
	}
	l.mu.Unlock()
}

// Quantiles returns the requested quantiles (0..1) in milliseconds, nil
// when the window is empty.
func (l *LatencyWindow) Quantiles(qs ...float64) []float64 {
	l.mu.Lock()
	samples := append([]float64(nil), l.buf[:l.n]...)
	l.mu.Unlock()
	if len(samples) == 0 {
		return nil
	}
	sort.Float64s(samples)
	out := make([]float64, len(qs))
	for i, q := range qs {
		idx := int(q * float64(len(samples)-1))
		out[i] = samples[idx]
	}
	return out
}

// metrics is the server's counter set.
type metrics struct {
	runsOK     expvar.Int
	runsFailed expvar.Int
	runsByName expvar.Map // per-benchmark completed run counts

	rejected   expvar.Int // 429s from admission-queue overflow
	canceled   expvar.Int // runs aborted by deadline/disconnect/drain
	tenantShed expvar.Int // 429s from per-tenant quotas (tenant.go)
	asmRuns    expvar.Int // user-submitted programs actually simulated

	instrs expvar.Int // simulated instructions retired across all runs
	wallNS expvar.Int // host nanoseconds spent inside cpu.Run

	// Trace-dispatch aggregates, summed over every served trace-mode run:
	// superblocks formed, tree child paths attached, side-exit-governor
	// deopts, and the iteration/exit split the side-exit rate derives from.
	tracesFormed expvar.Int
	treeNodes    expvar.Int
	traceDeopts  expvar.Int
	traceIters   expvar.Int
	traceExits   expvar.Int

	// Campaign accounting: campaigns created, points settled by outcome,
	// and a separate latency window for per-point wall times (campaign
	// points are batch work; mixing them into the request window would
	// skew interactive p99s).
	campaignsTotal         expvar.Int
	campaignPoints         expvar.Int
	campaignPointsCached   expvar.Int
	campaignPointsFailed   expvar.Int
	campaignPointsCanceled expvar.Int
	campaignLatency        LatencyWindow

	latency LatencyWindow
}

func newMetrics() *metrics {
	m := &metrics{}
	m.runsByName.Init()
	return m
}

// recordRun accounts one completed (successful) run.
func (m *metrics) recordRun(name string, instrs uint64, wall time.Duration) {
	m.runsOK.Add(1)
	m.runsByName.Add(name, 1)
	m.instrs.Add(int64(instrs))
	m.wallNS.Add(wall.Nanoseconds())
	m.latency.Add(wall)
}

// recordTraces folds one run's trace-dispatch stats into the aggregates.
// Runs on other dispatch tiers contribute nothing (every field is zero).
func (m *metrics) recordTraces(ts core.TraceStats) {
	if ts.Formed == 0 && ts.Deopts == 0 {
		return
	}
	m.tracesFormed.Add(int64(ts.Formed))
	m.treeNodes.Add(int64(ts.TreeNodes))
	m.traceDeopts.Add(int64(ts.Deopts))
	m.traceIters.Add(int64(ts.Iters))
	m.traceExits.Add(int64(ts.Exits))
}

// recordCampaignPoint accounts one settled campaign point; it is the
// campaign.RunnerConfig.OnPoint hook.
func (m *metrics) recordCampaignPoint(wall time.Duration, outcome string, cached bool) {
	m.campaignPoints.Add(1)
	switch outcome {
	case campaign.PointFailed:
		m.campaignPointsFailed.Add(1)
	case campaign.PointCanceled:
		m.campaignPointsCanceled.Add(1)
	default:
		if cached {
			m.campaignPointsCached.Add(1)
		}
		m.campaignLatency.Add(wall)
	}
}

// instrsPerSec returns the aggregate simulated throughput over all served
// runs (simulated instructions per host second inside the interpreter).
func (m *metrics) instrsPerSec() float64 {
	ns := m.wallNS.Value()
	if ns <= 0 {
		return 0
	}
	return float64(m.instrs.Value()) / (float64(ns) / 1e9)
}

// MetricsSnapshot is the JSON document served by /metrics.
type MetricsSnapshot struct {
	QueueDepth   int64   `json:"queue_depth"`
	ActiveRuns   int64   `json:"active_runs"`
	Rejected     int64   `json:"rejected_429"`
	Canceled     int64   `json:"canceled_runs"`
	RunsOK       int64   `json:"runs_ok"`
	RunsFailed   int64   `json:"runs_failed"`
	InstrsPerSec float64 `json:"instrs_per_sec"`

	// Multi-tenant accounting: user-submitted (/asm) runs simulated,
	// per-tenant quota 429s, and per-tenant admission counters.
	AsmRuns    int64                  `json:"asm_runs"`
	TenantShed int64                  `json:"tenant_shed_429"`
	Tenants    map[string]TenantStats `json:"tenants,omitempty"`

	CacheEntries   int     `json:"cache_entries"`
	CacheCapacity  int     `json:"cache_capacity"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheEvictions uint64  `json:"cache_evictions"`
	CacheHitRate   float64 `json:"cache_hit_rate"`

	// Result-cache effectiveness (all zero when result caching is off).
	ResultEntries   int    `json:"result_cache_entries"`
	ResultCapacity  int    `json:"result_cache_capacity"`
	ResultHits      uint64 `json:"result_cache_hits"`
	ResultSpillHits uint64 `json:"result_cache_spill_hits"`
	ResultMisses    uint64 `json:"result_cache_misses"`
	ResultCoalesced uint64 `json:"result_cache_coalesced"`
	ResultEvictions uint64 `json:"result_cache_evictions"`
	// ResultSpillEvictions counts spill files deleted by the bounded
	// spill-directory GC.
	ResultSpillEvictions uint64  `json:"result_cache_spill_evictions"`
	ResultHitRate        float64 `json:"result_cache_hit_rate"`

	// Trace-dispatch aggregates over all served trace-mode runs (all zero
	// until one runs): superblocks formed, trace-tree child paths attached,
	// side-exit-governor deopts, and side exits as a share of trace entries.
	TracesFormed     int64   `json:"traces_formed"`
	TreeNodes        int64   `json:"tree_nodes"`
	TraceDeopts      int64   `json:"trace_deopts"`
	TraceSideExitPct float64 `json:"trace_side_exit_pct"`

	// Campaign accounting: running campaigns, lifetime campaigns, and
	// settled points by outcome with their own wall-time quantiles.
	CampaignsActive        int64   `json:"campaigns_active"`
	CampaignsTotal         int64   `json:"campaigns_total"`
	CampaignPoints         int64   `json:"campaign_points_total"`
	CampaignPointsCached   int64   `json:"campaign_points_cached"`
	CampaignPointsFailed   int64   `json:"campaign_points_failed"`
	CampaignPointsCanceled int64   `json:"campaign_points_canceled"`
	CampaignPointWallP50   float64 `json:"campaign_point_wall_ms_p50"`
	CampaignPointWallP99   float64 `json:"campaign_point_wall_ms_p99"`

	WallMSP50 float64 `json:"wall_ms_p50"`
	WallMSP99 float64 `json:"wall_ms_p99"`

	RunsByProgram map[string]int64 `json:"runs_by_program"`

	Draining bool `json:"draining"`
}

// snapshot materializes the current counters.
func (s *Server) snapshot() MetricsSnapshot {
	m := s.metrics
	cs := s.cache.stats()
	active, queued := s.admit.stats()
	snap := MetricsSnapshot{
		QueueDepth:     queued,
		ActiveRuns:     active,
		Rejected:       m.rejected.Value(),
		Canceled:       m.canceled.Value(),
		AsmRuns:        m.asmRuns.Value(),
		TenantShed:     m.tenantShed.Value(),
		Tenants:        s.tenants.Stats(),
		RunsOK:         m.runsOK.Value(),
		RunsFailed:     m.runsFailed.Value(),
		InstrsPerSec:   m.instrsPerSec(),
		CacheEntries:   cs.Entries,
		CacheCapacity:  cs.Capacity,
		CacheHits:      cs.Hits,
		CacheMisses:    cs.Misses,
		CacheEvictions: cs.Evictions,
		CacheHitRate:   cs.HitRate(),
		RunsByProgram:  map[string]int64{},
		Draining:       s.draining.Load(),
	}
	if s.results != nil {
		rs := s.results.Stats()
		snap.ResultEntries = rs.Entries
		snap.ResultCapacity = rs.Capacity
		snap.ResultHits = rs.Hits
		snap.ResultSpillHits = rs.SpillHits
		snap.ResultMisses = rs.Misses
		snap.ResultCoalesced = rs.Coalesced
		snap.ResultEvictions = rs.Evictions
		snap.ResultSpillEvictions = rs.SpillEvictions
		snap.ResultHitRate = rs.HitRate()
	}
	snap.TracesFormed = m.tracesFormed.Value()
	snap.TreeNodes = m.treeNodes.Value()
	snap.TraceDeopts = m.traceDeopts.Value()
	if total := m.traceIters.Value() + m.traceExits.Value(); total > 0 {
		snap.TraceSideExitPct = 100 * float64(m.traceExits.Value()) / float64(total)
	}
	if q := m.latency.Quantiles(0.50, 0.99); q != nil {
		snap.WallMSP50, snap.WallMSP99 = q[0], q[1]
	}
	snap.CampaignsActive = int64(s.campaigns.Active())
	snap.CampaignsTotal = m.campaignsTotal.Value()
	snap.CampaignPoints = m.campaignPoints.Value()
	snap.CampaignPointsCached = m.campaignPointsCached.Value()
	snap.CampaignPointsFailed = m.campaignPointsFailed.Value()
	snap.CampaignPointsCanceled = m.campaignPointsCanceled.Value()
	if q := m.campaignLatency.Quantiles(0.50, 0.99); q != nil {
		snap.CampaignPointWallP50, snap.CampaignPointWallP99 = q[0], q[1]
	}
	m.runsByName.Do(func(kv expvar.KeyValue) {
		if v, ok := kv.Value.(*expvar.Int); ok {
			snap.RunsByProgram[kv.Key] = v.Value()
		}
	})
	return snap
}
