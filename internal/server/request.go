// Request decoding and validation for the /run API. Parsing is strict —
// unknown fields, trailing data and out-of-range values are rejected with
// errors the handler maps to 400 — and separated from serving so the
// decoder can be fuzzed in isolation (FuzzParseRequest).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"mmxdsp/internal/core"
	"mmxdsp/internal/pentium"
)

// maxRequestBody bounds the /run request body; the largest legitimate
// request is a few hundred bytes of JSON.
const maxRequestBody = 1 << 20

// ConfigOverride is the request-level view of pentium.Config plus the
// cache-model ablation. Zero values select the documented defaults, and
// EmmsLatency follows the config convention (nil = ISA table value, 0 =
// free emms ablation).
type ConfigOverride struct {
	MispredictPenalty int  `json:"mispredict_penalty,omitempty"`
	DisablePairing    bool `json:"disable_pairing,omitempty"`
	DisableBTB        bool `json:"disable_btb,omitempty"`
	EmmsLatency       *int `json:"emms_latency,omitempty"`
	MMXMulLatency     int  `json:"mmx_mul_latency,omitempty"`
	PerfectCache      bool `json:"perfect_cache,omitempty"`

	// Cache-hierarchy ablation. Zero geometry fields keep the Pentium
	// defaults (16 KB 4-way L1, 512 KB 4-way L2, 32-byte lines); the
	// penalty pointers follow the EmmsLatency convention (nil = paper
	// value, 0 = free). All are range- and geometry-checked at parse
	// time so a bad grid answers 400 instead of panicking a worker.
	L1Size            int  `json:"l1_size,omitempty"`
	L1Ways            int  `json:"l1_ways,omitempty"`
	L2Size            int  `json:"l2_size,omitempty"`
	L2Ways            int  `json:"l2_ways,omitempty"`
	LineBytes         int  `json:"line_bytes,omitempty"`
	DCacheMissPenalty *int `json:"dcache_miss_penalty,omitempty"`
	L2AccessPenalty   *int `json:"l2_access_penalty,omitempty"`
	L2MissPenalty     *int `json:"l2_miss_penalty,omitempty"`
}

// hasCacheOverride reports whether any cache-hierarchy field departs from
// the defaults; default-config requests stay on the exact default path.
func (c *ConfigOverride) hasCacheOverride() bool {
	return c != nil && (c.L1Size != 0 || c.L1Ways != 0 || c.L2Size != 0 ||
		c.L2Ways != 0 || c.LineBytes != 0 || c.DCacheMissPenalty != nil ||
		c.L2AccessPenalty != nil || c.L2MissPenalty != nil)
}

// cacheSpec resolves the override's cache fields into a core.CacheSpec.
func (c *ConfigOverride) cacheSpec() core.CacheSpec {
	spec := core.DefaultCacheSpec()
	if c == nil {
		return spec
	}
	spec.L1Size, spec.L1Ways = c.L1Size, c.L1Ways
	spec.L2Size, spec.L2Ways = c.L2Size, c.L2Ways
	spec.LineBytes = c.LineBytes
	if c.DCacheMissPenalty != nil {
		spec.DCacheMiss = *c.DCacheMissPenalty
	}
	if c.L2AccessPenalty != nil {
		spec.L2Access = *c.L2AccessPenalty
	}
	if c.L2MissPenalty != nil {
		spec.L2Miss = *c.L2MissPenalty
	}
	return spec
}

// RunRequest is the JSON body of POST /run.
type RunRequest struct {
	// Program is the paper-style program name, e.g. "fft.mmx".
	Program string `json:"program"`
	// Dispatch selects the interpreter inner loop: "", "auto", "trace",
	// "block", "predecode" or "generic".
	Dispatch string `json:"dispatch,omitempty"`
	// MaxInstrs bounds execution (0 = the runner's generous default).
	MaxInstrs int64 `json:"max_instrs,omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds (0 = the
	// server's default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// SkipCheck skips output validation against the pure-Go reference.
	SkipCheck bool `json:"skip_check,omitempty"`
	// Config carries timing-model ablation overrides; nil selects the
	// standard Pentium-with-MMX configuration.
	Config *ConfigOverride `json:"config,omitempty"`

	// priority is the admission priority resolved from PriorityHeader
	// (interactive unless the client says "bulk"); not part of the JSON.
	priority int
}

// ParseRunRequest decodes and validates a /run body. Program existence is
// the caller's concern (it needs the registry); everything syntactic and
// range-checked lives here.
func ParseRunRequest(data []byte) (*RunRequest, error) {
	if len(data) > maxRequestBody {
		return nil, fmt.Errorf("request body exceeds %d bytes", maxRequestBody)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req RunRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid JSON: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after request object")
	}
	if req.Program == "" {
		return nil, fmt.Errorf("missing required field %q", "program")
	}
	if err := validateRunFields(req.Dispatch, req.MaxInstrs, req.TimeoutMS, req.Config); err != nil {
		return nil, err
	}
	return &req, nil
}

// validateRunFields range-checks the execution knobs /run and /asm share.
func validateRunFields(dispatch string, maxInstrs, timeoutMS int64, c *ConfigOverride) error {
	switch dispatch {
	case "", "auto", core.DispatchBlock, core.DispatchTrace, core.DispatchPredecode, core.DispatchGeneric:
	default:
		return fmt.Errorf("unknown dispatch mode %q (want auto, block, trace, predecode or generic)", dispatch)
	}
	if maxInstrs < 0 {
		return fmt.Errorf("negative max_instrs %d", maxInstrs)
	}
	if timeoutMS < 0 {
		return fmt.Errorf("negative timeout_ms %d", timeoutMS)
	}
	if c != nil {
		if c.MispredictPenalty < 0 || c.MispredictPenalty > 1000 {
			return fmt.Errorf("mispredict_penalty %d out of range [0, 1000]", c.MispredictPenalty)
		}
		if c.EmmsLatency != nil && (*c.EmmsLatency < 0 || *c.EmmsLatency > 10000) {
			return fmt.Errorf("emms_latency %d out of range [0, 10000]", *c.EmmsLatency)
		}
		if c.MMXMulLatency < 0 || c.MMXMulLatency > 10000 {
			return fmt.Errorf("mmx_mul_latency %d out of range [0, 10000]", c.MMXMulLatency)
		}
		if c.hasCacheOverride() {
			if err := c.cacheSpec().Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// pentiumConfig resolves the override into a concrete timing-model config.
func (r *RunRequest) pentiumConfig() pentium.Config {
	cfg := pentium.DefaultConfig()
	if c := r.Config; c != nil {
		if c.MispredictPenalty != 0 {
			cfg.MispredictPenalty = c.MispredictPenalty
		}
		cfg.DisablePairing = c.DisablePairing
		cfg.DisableBTB = c.DisableBTB
		if c.EmmsLatency != nil {
			cfg.EmmsLatency = *c.EmmsLatency
		}
		cfg.MMXMulLatency = c.MMXMulLatency
	}
	return cfg
}

// dispatchMode maps the request's dispatch name onto core's constant
// ("auto" and "" both select DispatchAuto).
func (r *RunRequest) dispatchMode() string {
	if r.Dispatch == "auto" {
		return core.DispatchAuto
	}
	return r.Dispatch
}

// options builds the runner options for this request. ctx carries the
// request lifecycle (deadline, client disconnect, server drain).
func (r *RunRequest) options(ctx context.Context) core.Options {
	cfg := r.pentiumConfig()
	opt := core.Options{
		Pentium:      &cfg,
		PerfectCache: r.Config != nil && r.Config.PerfectCache,
		MaxInstrs:    r.MaxInstrs,
		SkipCheck:    r.SkipCheck,
		Dispatch:     r.dispatchMode(),
		Ctx:          ctx,
	}
	if r.Config.hasCacheOverride() {
		spec := r.Config.cacheSpec()
		opt.Cache = &spec
	}
	return opt
}

// configKey renders the canonical cache-key component for the request's
// configuration: a fixed-order field dump, collision-free by construction.
func (r *RunRequest) configKey() string {
	cfg := r.pentiumConfig()
	perfect := r.Config != nil && r.Config.PerfectCache
	return fmt.Sprintf("mp=%d|np=%t|nb=%t|el=%d|mm=%d|pc=%t|%s",
		cfg.MispredictPenalty, cfg.DisablePairing, cfg.DisableBTB,
		cfg.EmmsLatency, cfg.MMXMulLatency, perfect,
		r.Config.cacheSpec().Key())
}

// CacheKey returns the canonical affinity key for the request: the same
// (program, dispatch, config) triple the daemon's compiled-program cache
// keys on. A coordinator that routes on this string lands repeat requests
// on the backend where the artifact is already compiled, by construction.
func (r *RunRequest) CacheKey() string {
	return r.Program + "|" + r.dispatchMode() + "|" + r.configKey()
}

// ResultKey returns the canonical result-cache key: CacheKey extended with
// the fields that shape the response bytes but not the compiled artifact.
// The compiled-artifact key deliberately omits max_instrs and skip_check —
// the same code serves every budget — so reusing it verbatim for results
// would serve wrong bytes (e.g. a budget-truncated run answering an
// unbounded request). timeout_ms stays out of both keys: it decides
// whether a run finishes, never what a finished run reports.
func (r *RunRequest) ResultKey() string {
	return r.CacheKey() + fmt.Sprintf("|mi=%d|sc=%t", r.MaxInstrs, r.SkipCheck)
}

// timeout resolves the request deadline against the server default; zero
// means no deadline.
func (r *RunRequest) timeout(def time.Duration) time.Duration {
	if r.TimeoutMS > 0 {
		return time.Duration(r.TimeoutMS) * time.Millisecond
	}
	return def
}

// readRequestBody drains a request body under the size cap.
func readRequestBody(body io.Reader) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(body, maxRequestBody+1))
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	if len(data) > maxRequestBody {
		return nil, fmt.Errorf("request body exceeds %d bytes", maxRequestBody)
	}
	return data, nil
}
