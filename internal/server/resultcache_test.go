// White-box tests for the result cache: LRU bounds, single-flight
// coalescing, error non-caching, the spill tier's verify-on-load, and the
// key/ETag algebra the HTTP layers build on.
package server

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func fillWith(body string) func() ([]byte, error) {
	return func() ([]byte, error) { return []byte(body), nil }
}

func TestResultCacheHitAndLRUEviction(t *testing.T) {
	c := NewResultCache(2, "")
	ctx := context.Background()

	res, outcome, err := c.Do(ctx, "a", fillWith("body-a"))
	if err != nil || outcome != ResultMiss || string(res.Body) != "body-a" {
		t.Fatalf("first fill: res=%v outcome=%v err=%v", res, outcome, err)
	}
	if _, outcome, _ = c.Do(ctx, "a", fillWith("WRONG")); outcome != ResultHit {
		t.Fatalf("second lookup outcome = %v, want hit", outcome)
	}

	// Fill b then c; a is now the LRU victim... but touch a first so b is.
	if _, _, err := c.Do(ctx, "b", fillWith("body-b")); err != nil {
		t.Fatal(err)
	}
	if _, outcome, _ := c.Do(ctx, "a", fillWith("WRONG")); outcome != ResultHit {
		t.Fatalf("a should still be cached, got %v", outcome)
	}
	if _, _, err := c.Do(ctx, "c", fillWith("body-c")); err != nil {
		t.Fatal(err)
	}
	if _, outcome, _ := c.Do(ctx, "b", fillWith("refilled-b")); outcome != ResultMiss {
		t.Fatalf("b should have been evicted, got %v", outcome)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats report no evictions: %+v", st)
	}
	if st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("entries/capacity = %d/%d, want 2/2", st.Entries, st.Capacity)
	}
}

func TestResultCacheSingleFlightCoalesces(t *testing.T) {
	c := NewResultCache(8, "")
	const waiters = 8

	gate := make(chan struct{})
	var fills int
	var fillMu sync.Mutex
	fill := func() ([]byte, error) {
		fillMu.Lock()
		fills++
		fillMu.Unlock()
		<-gate
		return []byte("slow-body"), nil
	}

	var wg sync.WaitGroup
	outcomes := make([]ResultOutcome, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, outcome, err := c.Do(context.Background(), "k", fill)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			if string(res.Body) != "slow-body" {
				t.Errorf("waiter %d body = %q", i, res.Body)
			}
			outcomes[i] = outcome
		}(i)
	}
	// Let the followers pile onto the in-flight fill before releasing it.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Stats().Coalesced >= waiters-1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if fills != 1 {
		t.Fatalf("fill executed %d times, want 1", fills)
	}
	var missers, coalesced int
	for _, o := range outcomes {
		switch o {
		case ResultMiss:
			missers++
		case ResultCoalesced:
			coalesced++
		default:
			t.Fatalf("unexpected outcome %v", o)
		}
	}
	if missers != 1 || coalesced != waiters-1 {
		t.Fatalf("missers=%d coalesced=%d, want 1/%d", missers, coalesced, waiters-1)
	}
}

func TestResultCacheFillErrorsAreNotCached(t *testing.T) {
	c := NewResultCache(8, "")
	ctx := context.Background()
	boom := errors.New("boom")

	if _, _, err := c.Do(ctx, "k", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure must not poison the key: the next caller re-executes.
	res, outcome, err := c.Do(ctx, "k", fillWith("recovered"))
	if err != nil || outcome != ResultMiss || string(res.Body) != "recovered" {
		t.Fatalf("after error: res=%v outcome=%v err=%v", res, outcome, err)
	}
}

func TestResultCacheWaiterRetriesAfterLeaderFailure(t *testing.T) {
	c := NewResultCache(8, "")
	gate := make(chan struct{})
	leaderIn := make(chan struct{})

	go func() {
		_, _, _ = c.Do(context.Background(), "k", func() ([]byte, error) {
			close(leaderIn)
			<-gate
			return nil, errors.New("leader died")
		})
	}()
	<-leaderIn

	done := make(chan error, 1)
	go func() {
		res, _, err := c.Do(context.Background(), "k", fillWith("follower-wins"))
		if err == nil && string(res.Body) != "follower-wins" {
			err = errors.New("wrong body: " + string(res.Body))
		}
		done <- err
	}()
	// Give the follower a moment to park on the in-flight entry, then let
	// the leader fail; the follower must retry and fill successfully.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Stats().Coalesced >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("follower: %v", err)
	}
}

func TestResultCacheCoalescedWaitHonorsContext(t *testing.T) {
	c := NewResultCache(8, "")
	gate := make(chan struct{})
	defer close(gate)
	leaderIn := make(chan struct{})
	go func() {
		_, _, _ = c.Do(context.Background(), "k", func() ([]byte, error) {
			close(leaderIn)
			<-gate
			return []byte("late"), nil
		})
	}()
	<-leaderIn

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := c.Do(ctx, "k", fillWith("x")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestResultCacheSpillSurvivesNewInstance(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	first := NewResultCache(8, dir)
	res1, _, err := first.Do(ctx, "k", fillWith("persisted"))
	if err != nil {
		t.Fatal(err)
	}

	// A fresh instance over the same directory — a restarted daemon — must
	// answer from the spill tier without executing.
	second := NewResultCache(8, dir)
	res2, outcome, err := second.Do(ctx, "k", func() ([]byte, error) {
		t.Error("fill executed despite a spill entry")
		return nil, errors.New("unreachable")
	})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != ResultSpillHit {
		t.Fatalf("outcome = %v, want spill", outcome)
	}
	if string(res2.Body) != "persisted" || res2.ETag != res1.ETag {
		t.Fatalf("spill round-trip mismatch: body=%q etag=%q vs %q", res2.Body, res2.ETag, res1.ETag)
	}
	// Once revived it is a memory entry.
	if _, outcome, _ := second.Do(ctx, "k", fillWith("x")); outcome != ResultHit {
		t.Fatalf("post-revival outcome = %v, want hit", outcome)
	}
}

func TestResultCacheSpillRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	first := NewResultCache(8, dir)
	if _, _, err := first.Do(ctx, "k", fillWith("original")); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.result.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("spill files = %v (err %v), want exactly one", files, err)
	}
	// Flip bytes inside the stored body; the recomputed ETag must disagree.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	tampered := []byte(string(data))
	tampered[len(tampered)/2] ^= 0xff
	if err := os.WriteFile(files[0], tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	second := NewResultCache(8, dir)
	res, outcome, err := second.Do(ctx, "k", fillWith("refilled"))
	if err != nil || outcome != ResultMiss || string(res.Body) != "refilled" {
		t.Fatalf("corrupt spill should re-execute: res=%v outcome=%v err=%v", res, outcome, err)
	}
}

func TestETagForIsDeterministicAndKeyed(t *testing.T) {
	a := ETagFor("k", []byte("body"))
	if a != ETagFor("k", []byte("body")) {
		t.Fatal("ETagFor is not deterministic")
	}
	if a == ETagFor("other", []byte("body")) {
		t.Fatal("ETag ignores the key")
	}
	if a == ETagFor("k", []byte("other")) {
		t.Fatal("ETag ignores the body")
	}
	if len(a) < 2 || a[0] != '"' || a[len(a)-1] != '"' {
		t.Fatalf("ETag %q is not a quoted entity tag", a)
	}
}

func TestEtagMatches(t *testing.T) {
	etag := `"abc123"`
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},
		{etag, true},
		{`"zzz"`, false},
		{`"zzz", "abc123"`, true},
		{"*", true},
		{`W/"abc123"`, false}, // weak tags never match the strong comparison
	}
	for _, c := range cases {
		if got := etagMatches(c.header, etag); got != c.want {
			t.Errorf("etagMatches(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

func TestResultKeyDistinguishesBudgetAndCheckVariants(t *testing.T) {
	base := RunRequest{Program: "fir.mmx", Dispatch: "block"}
	budget := base
	budget.MaxInstrs = 1000
	checked := base
	checked.SkipCheck = true

	// Both variants share a compiled artifact...
	if base.CacheKey() != budget.CacheKey() || base.CacheKey() != checked.CacheKey() {
		t.Fatal("CacheKey should collapse max_instrs/skip_check variants")
	}
	// ...but produce different responses, so ResultKey must split them.
	keys := map[string]bool{
		base.ResultKey():    true,
		budget.ResultKey():  true,
		checked.ResultKey(): true,
	}
	if len(keys) != 3 {
		t.Fatalf("ResultKey collapsed variants: %v", keys)
	}
}

func TestResultCacheSpillGCBoundsDirectory(t *testing.T) {
	dir := t.TempDir()
	c := NewResultCache(64, dir)
	c.SetSpillLimits(0, 3) // file-count bound only
	ctx := context.Background()

	countSpills := func() int {
		t.Helper()
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range ents {
			if filepath.Ext(e.Name()) == ".json" {
				n++
			}
		}
		return n
	}

	for i := 0; i < 8; i++ {
		key := string(rune('a' + i))
		if _, _, err := c.Do(ctx, key, fillWith("body-"+key)); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes make the oldest-first order deterministic on
		// coarse-resolution filesystems.
		os.Chtimes(c.spillPath(key), time.Time{}, time.Unix(1700000000+int64(i), 0))
	}
	if n := countSpills(); n > 3 {
		t.Fatalf("spill dir holds %d result files, want <= 3", n)
	}
	st := c.Stats()
	if st.SpillEvictions < 5 {
		t.Fatalf("spill evictions = %d, want >= 5 (stats %+v)", st.SpillEvictions, st)
	}

	// The oldest keys' files are gone; the newest survive and still load
	// from disk in a fresh instance.
	c2 := NewResultCache(64, dir)
	if _, outcome, _ := c2.Do(ctx, "h", fillWith("WRONG")); outcome != ResultSpillHit {
		t.Fatalf("newest entry should revive from spill, got %v", outcome)
	}
	c3 := NewResultCache(64, dir)
	if _, outcome, _ := c3.Do(ctx, "a", fillWith("refilled-a")); outcome != ResultMiss {
		t.Fatalf("oldest entry should have been evicted from spill, got %v", outcome)
	}
}

func TestResultCacheSpillGCByteBound(t *testing.T) {
	dir := t.TempDir()
	c := NewResultCache(64, dir)
	ctx := context.Background()

	// Establish one file's size, then bound the directory to roughly three.
	if _, _, err := c.Do(ctx, "k0", fillWith("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(c.spillPath("k0"))
	if err != nil {
		t.Fatal(err)
	}
	c.SetSpillLimits(3*info.Size()+info.Size()/2, 0)

	for i := 1; i < 8; i++ {
		key := "k" + string(rune('0'+i))
		if _, _, err := c.Do(ctx, key, fillWith("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range ents {
		if fi, err := e.Info(); err == nil {
			total += fi.Size()
		}
	}
	if total > 3*info.Size()+info.Size()/2 {
		t.Fatalf("spill dir holds %d bytes, want <= %d", total, 3*info.Size()+info.Size()/2)
	}
	if st := c.Stats(); st.SpillEvictions == 0 {
		t.Fatalf("no spill evictions recorded: %+v", st)
	}
}
