// Campaign endpoint tests: grid lifecycle over HTTP, SSE progress,
// result-cache reuse across re-runs, and the cancellation classification
// regression (canceled campaigns report canceled points, never failed —
// the 499 rule applied to campaigns).
package server_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mmxdsp/internal/server"
)

func postCampaign(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/campaign", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /campaign: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func decodeCampaign(t *testing.T, data []byte) server.CampaignStatus {
	t.Helper()
	var st server.CampaignStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding campaign status: %v\n%s", err, data)
	}
	return st
}

// waitCampaign polls GET /campaign/{id} until it leaves "running".
func waitCampaign(t *testing.T, url, id string) server.CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/campaign/" + id + "?points=1")
		if err != nil {
			t.Fatalf("GET /campaign/%s: %v", id, err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /campaign/%s: %d %s", id, resp.StatusCode, data)
		}
		st := decodeCampaign(t, data)
		if st.Status != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s still running: %s", id, data)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestCampaignLifecycle(t *testing.T) {
	lookup, all := registryFromSuite(t, "fir.mmx", "fir.c")
	dir := t.TempDir()
	_, ts := newTestServer(t, server.Config{
		Lookup: lookup, Benchmarks: all, CampaignDir: dir,
	})

	status, data := postCampaign(t, ts.URL, `{
		"programs": ["fir.mmx", "fir.c"],
		"dispatch": ["block"],
		"axes": {"mul_latency": [1, 3], "emms_latency": [0, 25]},
		"skip_check": true
	}`)
	if status != http.StatusAccepted {
		t.Fatalf("POST /campaign: %d %s", status, data)
	}
	st := decodeCampaign(t, data)
	if st.ID == "" || st.Total != 8 {
		t.Fatalf("created campaign %+v", st)
	}

	final := waitCampaign(t, ts.URL, st.ID)
	if final.Status != "completed" || final.Done != 8 || final.Failed != 0 {
		t.Fatalf("final status %+v", final)
	}
	if len(final.Points) != 8 {
		t.Fatalf("?points=1 returned %d points", len(final.Points))
	}
	for _, p := range final.Points {
		if p.Status != "done" || p.Cycles == 0 {
			t.Fatalf("point %+v", p)
		}
	}
	if !strings.HasPrefix(final.ArtifactsCSV, "program,dispatch,emms_latency,mul_latency,cycles") {
		t.Fatalf("csv header: %q", firstLine(final.ArtifactsCSV))
	}
	if !strings.Contains(final.ArtifactsMarkdown, "## Axis `mul_latency`") {
		t.Fatal("markdown lacks the mul_latency axis section")
	}
	// The sweep must actually move the needle: fir.mmx at mul_latency 3
	// costs more cycles than at 1.
	var at1, at3 uint64
	for _, p := range final.Points {
		if p.Program != "fir.mmx" {
			continue
		}
		switch {
		case p.Values[0] == 0 && p.Values[1] == 1:
			at1 = p.Cycles
		case p.Values[0] == 0 && p.Values[1] == 3:
			at3 = p.Cycles
		}
	}
	if at1 == 0 || at3 <= at1 {
		t.Fatalf("mul_latency sweep flat: cycles(1)=%d cycles(3)=%d", at1, at3)
	}
	// Artifacts persisted under CampaignDir/<id>/ and match the inlined
	// copies byte for byte.
	csvDisk, err := os.ReadFile(filepath.Join(dir, st.ID, "points.csv"))
	if err != nil {
		t.Fatalf("persisted CSV: %v", err)
	}
	if string(csvDisk) != final.ArtifactsCSV {
		t.Fatal("persisted CSV differs from the inlined artifact")
	}
	if _, err := os.Stat(filepath.Join(dir, st.ID, "sensitivity.md")); err != nil {
		t.Fatalf("persisted markdown: %v", err)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// TestCampaignCancelNeverReportsFailed is the classification regression:
// DELETE /campaign/{id} is a client-initiated cancel, so the campaign must
// settle "canceled" with zero failed points — at both the resource and
// the /metrics level — mirroring the 499-not-5xx rule for canceled runs.
func TestCampaignCancelNeverReportsFailed(t *testing.T) {
	lookup, all := registry(spinBench("spin"))
	_, ts := newTestServer(t, server.Config{Lookup: lookup, Benchmarks: all})

	status, data := postCampaign(t, ts.URL, `{
		"programs": ["spin.c"],
		"axes": {"mul_latency": [1, 2, 3, 4, 5, 6]},
		"max_instrs": 2000000000,
		"skip_check": true
	}`)
	if status != http.StatusAccepted {
		t.Fatalf("POST /campaign: %d %s", status, data)
	}
	st := decodeCampaign(t, data)

	// Give at least one spin point time to enter the interpreter, then
	// cancel the whole campaign.
	time.Sleep(50 * time.Millisecond)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/campaign/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE /campaign: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}

	final := waitCampaign(t, ts.URL, st.ID)
	if final.Status != "canceled" {
		t.Fatalf("status %q, want canceled", final.Status)
	}
	if final.Failed != 0 {
		t.Fatalf("canceled campaign reports %d failed points: %+v", final.Failed, final)
	}
	if final.Canceled == 0 {
		t.Fatal("canceled campaign reports zero canceled points")
	}
	if final.Done+final.Canceled != final.Total {
		t.Fatalf("counters do not sum: %+v", final)
	}
	for _, p := range final.Points {
		if p.Status == "failed" {
			t.Fatalf("point marked failed in a canceled campaign: %+v", p)
		}
	}
	snap := getMetrics(t, ts.URL)
	if snap.CampaignPointsFailed != 0 {
		t.Fatalf("campaign_points_failed = %d after a pure cancel", snap.CampaignPointsFailed)
	}
	if snap.CampaignPointsCanceled == 0 {
		t.Fatal("campaign_points_canceled = 0 after a cancel")
	}
	// Every point settles into exactly one metrics bucket — including
	// points canceled while still queued, never handed to a worker.
	if got := snap.CampaignPoints; got != int64(final.Total) {
		t.Fatalf("campaign_points_total = %d, want %d (all points settle in /metrics)", got, final.Total)
	}
	if got := snap.CampaignPointsCanceled; got != int64(final.Canceled) {
		t.Fatalf("campaign_points_canceled = %d, want %d", got, final.Canceled)
	}
}

// TestCampaignRerunServedFromResultCache: an identical re-run is answered
// entirely by the result cache — zero fresh simulation, every point
// cached.
func TestCampaignRerunServedFromResultCache(t *testing.T) {
	lookup, all := registryFromSuite(t, "fir.mmx")
	_, ts := newTestServer(t, server.Config{
		Lookup: lookup, Benchmarks: all, ResultCacheEntries: 64,
	})
	const spec = `{"programs":["fir.mmx"],"axes":{"mul_latency":[1,3],"l1_size":[8192,16384]},"skip_check":true}`

	_, data := postCampaign(t, ts.URL, spec)
	first := waitCampaign(t, ts.URL, decodeCampaign(t, data).ID)
	if first.Status != "completed" || first.Done != 4 {
		t.Fatalf("first run %+v", first)
	}
	if first.SimulatedInstrs == 0 {
		t.Fatal("first run simulated nothing")
	}

	_, data = postCampaign(t, ts.URL, spec)
	second := waitCampaign(t, ts.URL, decodeCampaign(t, data).ID)
	if second.Status != "completed" || second.Done != 4 {
		t.Fatalf("second run %+v", second)
	}
	if second.Cached != 4 {
		t.Fatalf("re-run hit the cache on %d/4 points", second.Cached)
	}
	if second.SimulatedInstrs != 0 {
		t.Fatalf("re-run simulated %d instrs, want 0 (all cached)", second.SimulatedInstrs)
	}
	// Byte-identical artifacts: caching must not perturb the curves.
	if second.ArtifactsCSV != first.ArtifactsCSV || second.ArtifactsMarkdown != first.ArtifactsMarkdown {
		t.Fatal("cached re-run rendered different artifacts")
	}
}

func TestCampaignEventsStream(t *testing.T) {
	lookup, all := registryFromSuite(t, "fir.mmx")
	_, ts := newTestServer(t, server.Config{Lookup: lookup, Benchmarks: all})

	_, data := postCampaign(t, ts.URL,
		`{"programs":["fir.mmx"],"axes":{"mul_latency":[1,3]},"skip_check":true}`)
	st := decodeCampaign(t, data)

	resp, err := http.Get(ts.URL + "/campaign/" + st.ID + "/events")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	var sawProgress, sawDone bool
	var finalEv struct {
		Status string `json:"status"`
		Done   int    `json:"done"`
		Total  int    `json:"total"`
	}
	scanner := bufio.NewScanner(resp.Body)
	event := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			payload := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				sawProgress = true
			case "done":
				sawDone = true
				if err := json.Unmarshal([]byte(payload), &finalEv); err != nil {
					t.Fatalf("done payload: %v", err)
				}
			}
		}
	}
	if !sawProgress || !sawDone {
		t.Fatalf("stream: progress=%t done=%t", sawProgress, sawDone)
	}
	if finalEv.Status != "completed" || finalEv.Done != finalEv.Total {
		t.Fatalf("terminal event %+v", finalEv)
	}
}

func TestCampaignValidation(t *testing.T) {
	lookup, all := registryFromSuite(t, "fir.mmx")
	_, ts := newTestServer(t, server.Config{Lookup: lookup, Benchmarks: all})

	cases := []struct {
		name, body string
		status     int
	}{
		{"unknown program", `{"programs":["nope.mmx"]}`, http.StatusNotFound},
		{"unknown axis", `{"programs":["fir.mmx"],"axes":{"warp":[1]}}`, http.StatusBadRequest},
		{"bad JSON", `{`, http.StatusBadRequest},
		{"axis out of range", `{"programs":["fir.mmx"],"axes":{"l1_size":[7]}}`, http.StatusBadRequest},
		{"oversized grid", `{"programs":["fir.mmx"],"axes":{"emms_latency":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24,25,26,27,28,29,30,31,32,33,34,35,36,37,38,39,40,41,42,43,44,45,46,47,48,49,50,51,52,53,54,55,56,57,58,59,60,61,62,63,64],"mul_latency":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24,25,26,27,28,29,30,31,32,33,34,35,36,37,38,39,40,41,42,43,44,45,46,47,48,49,50,51,52,53,54,55,56,57,58,59,60,61,62,63,64],"mispredict_penalty":[1,2]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, data := postCampaign(t, ts.URL, tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d: %s", status, tc.status, data)
			}
		})
	}

	// Unknown campaign resources answer 404.
	resp, err := http.Get(ts.URL + "/campaign/deadbeef00000000")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign: %d", resp.StatusCode)
	}
	// GET on the collection is not allowed.
	resp, err = http.Get(ts.URL + "/campaign")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /campaign: %d", resp.StatusCode)
	}
}

func TestCampaignActiveCapSheds429(t *testing.T) {
	lookup, all := registry(spinBench("spin"))
	_, ts := newTestServer(t, server.Config{
		Lookup: lookup, Benchmarks: all, CampaignMaxActive: 1,
	})
	const spec = `{"programs":["spin.c"],"axes":{"mul_latency":[1,2]},"max_instrs":2000000000,"skip_check":true}`
	status, data := postCampaign(t, ts.URL, spec)
	if status != http.StatusAccepted {
		t.Fatalf("first campaign: %d %s", status, data)
	}
	id := decodeCampaign(t, data).ID
	status, _ = postCampaign(t, ts.URL, spec)
	if status != http.StatusTooManyRequests {
		t.Fatalf("second active campaign: %d, want 429", status)
	}
	// Cancel and settle so the goroutine drains before server shutdown.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/campaign/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	waitCampaign(t, ts.URL, id)
}
