// White-box tests for the compiled-program LRU: single-flight compilation,
// eviction order, error eviction, and the correctness property that a
// cache hit is observationally identical to a cold compile — same
// registers, same memory, same report bytes — across randomized configs.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/core"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/suite"
	"mmxdsp/internal/vm"
)

func key(s string) cacheKey { return cacheKey{program: s, dispatch: "block", config: "default"} }

func compileCounter(n *atomic.Int64) func() (*core.Compiled, error) {
	return func() (*core.Compiled, error) {
		n.Add(1)
		return &core.Compiled{}, nil
	}
}

func TestCacheHitAndMissCounting(t *testing.T) {
	c := newCodeCache(4)
	var compiles atomic.Int64
	for i := 0; i < 3; i++ {
		comp, hit, err := c.get(key("a"), compileCounter(&compiles))
		if err != nil || comp == nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if wantHit := i > 0; hit != wantHit {
			t.Errorf("get %d: hit=%t, want %t", i, hit, wantHit)
		}
	}
	if n := compiles.Load(); n != 1 {
		t.Errorf("compile ran %d times, want 1", n)
	}
	s := c.stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v", s)
	}
	if got := s.HitRate(); got < 0.66 || got > 0.67 {
		t.Errorf("hit rate %f, want 2/3", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCodeCache(2)
	var compiles atomic.Int64
	fill := func(k string) {
		if _, _, err := c.get(key(k), compileCounter(&compiles)); err != nil {
			t.Fatal(err)
		}
	}
	fill("a")
	fill("b")
	fill("a") // refresh a: LRU order is now [a, b]
	fill("c") // evicts b
	if s := c.stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("after eviction: %+v", s)
	}
	before := compiles.Load()
	fill("a") // must still be resident
	if compiles.Load() != before {
		t.Error("a was evicted; expected b (the least recently used)")
	}
	fill("b") // recompiles
	if compiles.Load() != before+1 {
		t.Error("b came back without a compile")
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := newCodeCache(4)
	var compiles atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.get(key("shared"), compileCounter(&compiles)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n := compiles.Load(); n != 1 {
		t.Errorf("concurrent gets compiled %d times, want 1 (single-flight)", n)
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	c := newCodeCache(4)
	calls := 0
	failing := func() (*core.Compiled, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient build failure")
		}
		return &core.Compiled{}, nil
	}
	if _, _, err := c.get(key("x"), failing); err == nil {
		t.Fatal("first get did not surface the build error")
	}
	comp, _, err := c.get(key("x"), failing)
	if err != nil || comp == nil {
		t.Fatalf("second get: %v (errors must not be cached)", err)
	}
	if calls != 2 {
		t.Errorf("compile ran %d times, want 2", calls)
	}
}

// TestSharedCodeRunsAreIdentical is the vm-level half of the cache
// correctness property: running a program on a CPU predecoded privately
// (vm.New) and on CPUs sharing one vm.Code (vm.NewWithCode, the cache
// path) must leave identical registers and memory.
func TestSharedCodeRunsAreIdentical(t *testing.T) {
	prog, err := asm.ParseSource("mix", `
.words v 3,-7,11,19,23,-2,5,8
.reserve out 16
.proc main
.entry
	mov ecx, 0
	mov eax, 0
loop:
	movsx.w ebx, word [v+ecx*2]
	imul ebx, ebx
	add eax, ebx
	add ecx, 1
	cmp ecx, 8
	jl loop
	mov dword [out], eax
	movq mm0, qword [v]
	paddw mm0, qword [v+8]
	movq qword [out+8], mm0
	emms
	halt
`)
	if err != nil {
		t.Fatalf("ParseSource: %v", err)
	}
	run := func(cpu *vm.CPU) *vm.CPU {
		t.Helper()
		if err := cpu.Run(1 << 20); err != nil {
			t.Fatalf("run: %v", err)
		}
		return cpu
	}
	private := run(vm.New(prog))
	code := vm.Compile(prog)
	shared1 := run(vm.NewWithCode(code))
	shared2 := run(vm.NewWithCode(code))

	for _, cpu := range []*vm.CPU{shared1, shared2} {
		for _, r := range []isa.Reg{isa.EAX, isa.EBX, isa.ECX, isa.EDX, isa.ESI, isa.EDI} {
			if got, want := cpu.GPR(r), private.GPR(r); got != want {
				t.Errorf("%v = %#x on shared code, want %#x", r, got, want)
			}
		}
		if !bytes.Equal(cpu.Mem.Bytes(), private.Mem.Bytes()) {
			t.Error("memory image differs between shared-code and private runs")
		}
	}
}

// TestCachePropertyRandomizedConfigs: for randomized ablation configs, a
// warm-cache run must be byte-identical to both its own cold run and a
// cache-bypassing direct core.Run.
func TestCachePropertyRandomizedConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep; skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(991))
	bench, ok := suite.ByName("fir.mmx")
	if !ok {
		t.Fatal("fir.mmx missing from the suite")
	}
	dispatches := []string{core.DispatchBlock, core.DispatchPredecode, core.DispatchGeneric}
	for trial := 0; trial < 6; trial++ {
		emms := rng.Intn(100)
		req := &RunRequest{
			Program:   "fir.mmx",
			Dispatch:  dispatches[rng.Intn(len(dispatches))],
			SkipCheck: true,
			Config: &ConfigOverride{
				MispredictPenalty: rng.Intn(20),
				DisablePairing:    rng.Intn(2) == 0,
				DisableBTB:        rng.Intn(2) == 0,
				EmmsLatency:       &emms,
				MMXMulLatency:     rng.Intn(8),
				PerfectCache:      rng.Intn(2) == 0,
			},
		}
		name := fmt.Sprintf("trial%d_%s_%s", trial, req.Dispatch, req.configKey())
		t.Run(name, func(t *testing.T) {
			s := New(Config{CacheEntries: 2})
			reports := make([]string, 2)
			for pass := 0; pass < 2; pass++ {
				comp, hit, err := s.compiledFor(req)
				if err != nil {
					t.Fatalf("pass %d: %v", pass, err)
				}
				if hit != (pass == 1) {
					t.Errorf("pass %d: hit=%t", pass, hit)
				}
				res, err := core.RunCompiled(comp, req.options(nil))
				if err != nil {
					t.Fatalf("pass %d run: %v", pass, err)
				}
				data, err := json.Marshal(res.Report)
				if err != nil {
					t.Fatal(err)
				}
				reports[pass] = string(data)
			}
			if reports[0] != reports[1] {
				t.Error("warm-cache report differs from cold report")
			}
			direct, err := core.Run(bench, req.options(nil))
			if err != nil {
				t.Fatalf("direct run: %v", err)
			}
			want, err := json.Marshal(direct.Report)
			if err != nil {
				t.Fatal(err)
			}
			if reports[0] != string(want) {
				t.Error("cached report differs from cache-bypassing direct run")
			}
		})
	}
}

// TestCacheEvictionUnderTinyCapacityStaysCorrect cycles three cache keys
// through a two-entry cache: constant eviction churn must never corrupt
// results.
func TestCacheEvictionUnderTinyCapacityStaysCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("eviction sweep; skipped in -short mode")
	}
	s := New(Config{CacheEntries: 2})
	programs := []string{"fir.c", "fir.fp", "fir.mmx"}
	want := map[string]string{}
	for _, name := range programs {
		bench, ok := suite.ByName(name)
		if !ok {
			t.Fatalf("unknown program %q", name)
		}
		direct, err := core.Run(bench, core.Options{SkipCheck: true})
		if err != nil {
			t.Fatalf("%s: direct run: %v", name, err)
		}
		data, err := json.Marshal(direct.Report)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = string(data)
	}
	for round := 0; round < 3; round++ {
		for _, name := range programs {
			req := &RunRequest{Program: name, SkipCheck: true}
			comp, _, err := s.compiledFor(req)
			if err != nil {
				t.Fatalf("round %d %s: %v", round, name, err)
			}
			res, err := core.RunCompiled(comp, req.options(nil))
			if err != nil {
				t.Fatalf("round %d %s: %v", round, name, err)
			}
			got, err := json.Marshal(res.Report)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != want[name] {
				t.Errorf("round %d: %s report drifted under eviction churn", round, name)
			}
		}
	}
	if s.cache.stats().Evictions == 0 {
		t.Error("three programs through a two-entry cache evicted nothing")
	}
}
