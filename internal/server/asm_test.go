// Black-box tests for POST /asm, the user-submitted-program front door.
// The conformance half pins the core contract: every suite program,
// serialized to listing text and submitted as source, produces a report
// byte-identical to a /run of the registry program, in every dispatch
// mode. The abuse half pins the safety rails: oversized sources, parse
// errors with source coordinates, infinite loops against the instruction
// budget, per-tenant quotas with Retry-After, bulk-priority shedding, and
// client disconnects that must not leak goroutines (the TestMain backstop
// in server_test.go counts goroutines after every run of this package).
package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mmxdsp/internal/core"
	"mmxdsp/internal/server"
	"mmxdsp/internal/suite"
)

// asmEnvelope mirrors AsmResponse with the report kept raw for
// byte-equivalence checks.
type asmEnvelope struct {
	Program         string          `json:"program"`
	SourceHash      string          `json:"source_hash"`
	Dispatch        string          `json:"dispatch"`
	CacheHit        bool            `json:"cache_hit"`
	BudgetExhausted bool            `json:"budget_exhausted"`
	Report          json.RawMessage `json:"report"`
}

// asmBody builds a /asm request body with proper JSON escaping for
// arbitrary source text.
func asmBody(t *testing.T, fields map[string]any) string {
	t.Helper()
	data, err := json.Marshal(fields)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// postAsm submits one /asm request with optional headers and returns the
// full response plus its drained body.
func postAsm(t *testing.T, url, body string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/asm", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /asm: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /asm response: %v", err)
	}
	return resp, data
}

// sourceOf builds the suite program and serializes it back to listing text
// — the round trip every /asm submission of a suite program starts from.
func sourceOf(t *testing.T, name string) string {
	t.Helper()
	bench, ok := suite.ByName(name)
	if !ok {
		t.Fatalf("unknown suite program %q", name)
	}
	prog, err := bench.Build()
	if err != nil {
		t.Fatalf("building %s: %v", name, err)
	}
	return prog.Source()
}

// spinSource is a non-terminating listing; only the instruction budget or
// cancellation ends it. It opens the measured region so its retired
// instructions show up in the report (and debit instruction quotas).
const spinSource = ".proc main\n\tprofon\nspin:\n\tadd eax, 1\n\tjmp spin\n"

// TestAsmConformance is the front-door acceptance gate: every suite
// program submitted as listing text through POST /asm yields a report
// byte-identical to POST /run of the registry program, in every dispatch
// mode, through one shared server.
func TestAsmConformance(t *testing.T) {
	names := suite.Names()
	modes := []string{core.DispatchTrace, core.DispatchBlock, core.DispatchPredecode, core.DispatchGeneric}
	if testing.Short() {
		names = []string{"fir.c", "fir.mmx", "fft.mmx"}
		modes = []string{core.DispatchTrace, core.DispatchBlock}
	}
	_, ts := newTestServer(t, server.Config{})

	sources := make(map[string]string, len(names))
	for _, name := range names {
		sources[name] = sourceOf(t, name)
	}

	for _, mode := range modes {
		var wg sync.WaitGroup
		errs := make(chan error, len(names))
		for _, name := range names {
			name := name
			wg.Add(1)
			go func() {
				defer wg.Done()
				runBody := fmt.Sprintf(`{"program":%q,"dispatch":%q,"skip_check":true}`, name, mode)
				status, data := postRunNoFatal(ts.URL, runBody)
				if status != http.StatusOK {
					errs <- fmt.Errorf("%s/%s: /run status %d: %s", name, mode, status, data)
					return
				}
				var run runEnvelope
				if err := json.Unmarshal(data, &run); err != nil {
					errs <- fmt.Errorf("%s/%s: /run decode: %v", name, mode, err)
					return
				}

				body := asmBody(t, map[string]any{
					"source": sources[name], "name": name, "dispatch": mode,
				})
				resp, data := postAsm(t, ts.URL, body, nil)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s/%s: /asm status %d: %.300s", name, mode, resp.StatusCode, data)
					return
				}
				var sub asmEnvelope
				if err := json.Unmarshal(data, &sub); err != nil {
					errs <- fmt.Errorf("%s/%s: /asm decode: %v", name, mode, err)
					return
				}
				if sub.Program != name || len(sub.SourceHash) != 64 || sub.BudgetExhausted {
					errs <- fmt.Errorf("%s/%s: envelope %q hash %d budget %t", name, mode,
						sub.Program, len(sub.SourceHash), sub.BudgetExhausted)
					return
				}
				if got, want := compact(t, sub.Report), compact(t, run.Report); got != want {
					errs <- fmt.Errorf("%s/%s: /asm report differs from /run report", name, mode)
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}

	snap := getMetrics(t, ts.URL)
	if want := int64(len(names) * len(modes)); snap.AsmRuns != want {
		t.Errorf("asm_runs = %d, want %d", snap.AsmRuns, want)
	}
}

// TestAsmCacheHitSkipsAssembly: repeat submissions of one source share the
// compiled artifact through the source-hash-keyed cache entry.
func TestAsmCacheHitSkipsAssembly(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	body := asmBody(t, map[string]any{"source": sourceOf(t, "fir.mmx"), "dispatch": "block"})

	resp, data := postAsm(t, ts.URL, body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold submission: status %d: %s", resp.StatusCode, data)
	}
	var cold asmEnvelope
	if err := json.Unmarshal(data, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Error("first submission reported a cache hit")
	}

	resp, data = postAsm(t, ts.URL, body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm submission: status %d: %s", resp.StatusCode, data)
	}
	var warm asmEnvelope
	if err := json.Unmarshal(data, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("repeat submission missed the compiled-program cache")
	}
	if got, want := compact(t, warm.Report), compact(t, cold.Report); got != want {
		t.Error("warm report differs from cold report")
	}
	if snap := getMetrics(t, ts.URL); snap.AsmRuns != 2 || snap.CacheHits == 0 {
		t.Errorf("asm_runs=%d cache_hits=%d, want 2 runs with a warm hit", snap.AsmRuns, snap.CacheHits)
	}
}

// TestAsmOversizedSource pins the 413 paths: a listing over the source cap
// and a raw body over the escaping-adjusted limit both refuse early.
func TestAsmOversizedSource(t *testing.T) {
	_, ts := newTestServer(t, server.Config{MaxSourceBytes: 1024})

	big := strings.Repeat("; padding line\n", 200) // ~3 KiB of comments
	resp, data := postAsm(t, ts.URL, asmBody(t, map[string]any{"source": big}), nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized source: status %d, want 413: %s", resp.StatusCode, data)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
		t.Errorf("413 body not structured: %s", data)
	}

	// A body over the transport limit dies in the reader, same status.
	raw := `{"source":"` + strings.Repeat("x", 8192) + `"}`
	resp, data = postAsm(t, ts.URL, raw, nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413: %s", resp.StatusCode, data)
	}
}

// TestAsmParseErrorPositions: an invalid listing answers 400 with the
// 1-based line and column of the offending token in the error body.
func TestAsmParseErrorPositions(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	body := asmBody(t, map[string]any{"source": "start:\n\tmov eax, 1\n\tfrobnicate eax\n"})
	resp, data := postAsm(t, ts.URL, body, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
	}
	var e struct {
		Error string `json:"error"`
		Line  int    `json:"line"`
		Col   int    `json:"col"`
	}
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("decoding error body: %v: %s", err, data)
	}
	if e.Line != 3 || e.Col != 2 {
		t.Errorf("error position %d:%d, want 3:2: %s", e.Line, e.Col, data)
	}
	if !strings.Contains(e.Error, "line 3:2:") {
		t.Errorf("error text missing coordinates: %q", e.Error)
	}
}

func TestAsmRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{AsmMaxInstrsCap: 1000000})
	cases := []struct {
		name, body string
		status     int
	}{
		{"bad JSON", `{`, http.StatusBadRequest},
		{"missing source", `{}`, http.StatusBadRequest},
		{"unknown field", `{"source":"halt","frobnicate":1}`, http.StatusBadRequest},
		{"bad dispatch", `{"source":"halt","dispatch":"warp"}`, http.StatusBadRequest},
		{"negative budget", `{"source":"halt","max_instrs":-1}`, http.StatusBadRequest},
		{"budget over cap", `{"source":"halt","max_instrs":2000000}`, http.StatusBadRequest},
		{"oversized name", asmBody(t, map[string]any{"source": "halt", "name": strings.Repeat("n", 300)}), http.StatusBadRequest},
		{"trailing garbage", `{"source":"halt"} x`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postAsm(t, ts.URL, tc.body, nil)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, data)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
				t.Errorf("error body not structured: %s", data)
			}
		})
	}
	if resp, err := http.Get(ts.URL + "/asm"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /asm: %d, want 405", resp.StatusCode)
		}
	}
}

// TestAsmBudgetExhaustedPartial: an infinite loop against an explicit
// budget answers 200 promptly with budget_exhausted set and a report over
// the retired prefix — not a hang, not a 500.
func TestAsmBudgetExhaustedPartial(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	start := time.Now()
	body := asmBody(t, map[string]any{"source": spinSource, "max_instrs": 100000})
	resp, data := postAsm(t, ts.URL, body, nil)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("budgeted spin took %v end to end", elapsed)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", resp.StatusCode, data)
	}
	var env asmEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if !env.BudgetExhausted {
		t.Error("budget_exhausted not set on a truncated run")
	}
	var report struct {
		DynamicInstructions uint64
	}
	if err := json.Unmarshal(env.Report, &report); err != nil {
		t.Fatal(err)
	}
	if report.DynamicInstructions == 0 || report.DynamicInstructions > 100000 {
		t.Errorf("partial report retired %d instructions, want (0, 100000]", report.DynamicInstructions)
	}
}

// TestAsmServerBudgetCapAppliesByDefault: with no budget in the request,
// the server's /asm ceiling is in force — an infinite loop terminates.
func TestAsmServerBudgetCapAppliesByDefault(t *testing.T) {
	_, ts := newTestServer(t, server.Config{AsmMaxInstrsCap: 200000})
	resp, data := postAsm(t, ts.URL, asmBody(t, map[string]any{"source": spinSource}), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", resp.StatusCode, data)
	}
	var env asmEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if !env.BudgetExhausted {
		t.Error("uncapped spin request did not inherit the server /asm budget")
	}
}

// TestAsmTenantRateLimit: the token bucket refuses a tenant's burst
// overflow with 429 + Retry-After while an unrelated tenant sails through.
func TestAsmTenantRateLimit(t *testing.T) {
	_, ts := newTestServer(t, server.Config{
		Tenant: server.TenantLimits{Rate: 0.5, Burst: 1},
	})
	body := asmBody(t, map[string]any{"source": sourceOf(t, "fir.mmx"), "dispatch": "block"})
	alice := map[string]string{server.TenantHeader: "alice"}

	resp, data := postAsm(t, ts.URL, body, alice)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d: %s", resp.StatusCode, data)
	}
	resp, data = postAsm(t, ts.URL, body, alice)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("burst overflow: status %d, want 429: %s", resp.StatusCode, data)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	if !strings.Contains(string(data), "alice") {
		t.Errorf("429 body does not name the tenant: %s", data)
	}

	// Bob has his own bucket.
	resp, data = postAsm(t, ts.URL, body, map[string]string{server.TenantHeader: "bob"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("unrelated tenant: status %d, want 200: %s", resp.StatusCode, data)
	}
	if snap := getMetrics(t, ts.URL); snap.TenantShed != 1 {
		t.Errorf("tenant_shed_429 = %d, want 1", snap.TenantShed)
	} else if st, ok := snap.Tenants["alice"]; !ok || st.Shed != 1 || st.Admitted != 1 {
		t.Errorf("per-tenant stats for alice = %+v", snap.Tenants)
	}
}

// TestAsmTenantInstructionQuota: simulated instructions debit a windowed
// per-tenant quota; once spent, further work is refused until the window
// rolls over.
func TestAsmTenantInstructionQuota(t *testing.T) {
	_, ts := newTestServer(t, server.Config{
		Tenant: server.TenantLimits{Rate: 1000, Burst: 1000, InstrQuota: 50000, Window: time.Hour},
	})
	alice := map[string]string{server.TenantHeader: "alice"}
	body := asmBody(t, map[string]any{"source": spinSource, "max_instrs": 60000})

	resp, data := postAsm(t, ts.URL, body, alice)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d: %s", resp.StatusCode, data)
	}
	resp, data = postAsm(t, ts.URL, body, alice)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota run: status %d, want 429: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "instruction quota") {
		t.Errorf("429 body does not mention the quota: %s", data)
	}
}

// TestAsmTenantConcurrencyCap: a tenant's second simultaneous run is
// refused while the first is still in flight; releasing the slot readmits.
func TestAsmTenantConcurrencyCap(t *testing.T) {
	_, ts := newTestServer(t, server.Config{
		Tenant: server.TenantLimits{Rate: 1000, Burst: 1000, MaxConcurrent: 1},
	})
	alice := map[string]string{server.TenantHeader: "alice"}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		body := asmBody(t, map[string]any{"source": spinSource})
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/asm", strings.NewReader(body))
		req.Header.Set(server.TenantHeader, "alice")
		close(started)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started
	waitFor(t, "the spin run to hold the tenant slot", func() bool {
		st, ok := getMetrics(t, ts.URL).Tenants["alice"]
		return ok && st.Inflight == 1
	})

	body := asmBody(t, map[string]any{"source": sourceOf(t, "fir.mmx")})
	resp, data := postAsm(t, ts.URL, body, alice)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("concurrent overflow: status %d, want 429: %s", resp.StatusCode, data)
	}

	cancel()
	<-done
	waitFor(t, "the tenant slot to release", func() bool {
		st, ok := getMetrics(t, ts.URL).Tenants["alice"]
		return ok && st.Inflight == 0
	})
	resp, data = postAsm(t, ts.URL, body, alice)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-release run: status %d, want 200: %s", resp.StatusCode, data)
	}
}

// TestAsmBulkPriorityShedsFirst: at saturation, bulk traffic is refused
// with 429 while interactive traffic still queues.
func TestAsmBulkPriorityShedsFirst(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1, QueueDepth: 2})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	launch := func(priority string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := asmBody(t, map[string]any{"source": spinSource})
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/asm", strings.NewReader(body))
			if priority != "" {
				req.Header.Set(server.PriorityHeader, priority)
			}
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	launch("") // occupies the single worker
	waitFor(t, "the worker slot to fill", func() bool { return getMetrics(t, ts.URL).ActiveRuns == 1 })
	launch("bulk") // occupies the single bulk queue slot (depth/2)
	waitFor(t, "the bulk queue slot to fill", func() bool { return getMetrics(t, ts.URL).QueueDepth == 1 })

	// A second bulk request overflows the bulk share and sheds immediately.
	resp, data := postAsm(t, ts.URL, asmBody(t, map[string]any{"source": spinSource}),
		map[string]string{server.PriorityHeader: "bulk"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("bulk overflow: status %d, want 429: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("bulk 429 missing Retry-After")
	}

	// An interactive request still has queue room: it waits (and here dies
	// on its own deadline, 504 — crucially not a 429).
	body := asmBody(t, map[string]any{"source": spinSource, "timeout_ms": 50})
	resp, data = postAsm(t, ts.URL, body, nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("interactive under saturation: status %d, want 504 (queued, not shed): %s", resp.StatusCode, data)
	}

	cancel()
	wg.Wait()
	waitFor(t, "the server to settle", func() bool {
		snap := getMetrics(t, ts.URL)
		return snap.ActiveRuns == 0 && snap.QueueDepth == 0
	})
}

// TestAsmClientDisconnectAbortsRun: a client walking away mid-simulation
// halts the interpreter and releases the tenant slot (the TestMain
// backstop asserts no goroutines leak after this test settles).
func TestAsmClientDisconnectAbortsRun(t *testing.T) {
	_, ts := newTestServer(t, server.Config{
		Tenant: server.TenantLimits{Rate: 1000, Burst: 1000, MaxConcurrent: 2},
	})

	ctx, cancel := context.WithCancel(context.Background())
	body := asmBody(t, map[string]any{"source": spinSource})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/asm", strings.NewReader(body))
	req.Header.Set(server.TenantHeader, "alice")
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()
	waitFor(t, "the spin run to start", func() bool { return getMetrics(t, ts.URL).ActiveRuns == 1 })

	cancel() // client walks away
	if err := <-done; err == nil {
		t.Error("disconnected request returned a response instead of an error")
	}
	waitFor(t, "the aborted run to retire", func() bool {
		snap := getMetrics(t, ts.URL)
		st := snap.Tenants["alice"]
		return snap.ActiveRuns == 0 && snap.Canceled >= 1 && st.Inflight == 0
	})
}
