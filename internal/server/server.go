// Package server is the mmxd simulation service: an HTTP/JSON daemon that
// serves simulated Pentium-with-MMX benchmark runs on top of the
// concurrent suite runner. It amortizes program construction across
// requests with a bounded LRU of compiled artifacts, bounds concurrency
// with a worker pool plus an admission queue that sheds load with 429s,
// threads per-request contexts into the interpreter's poll hook so
// deadlines, client disconnects and drain all halt simulation mid-run, and
// exposes its internals through /metrics.
//
// Endpoints:
//
//	POST /run       run one benchmark (RunRequest -> RunResponse)
//	GET  /table     run the suite, return the paper's Table 2/3 artifacts
//	GET  /programs  the program registry (ProgramsResponse) — capability
//	                discovery for coordinators fronting several daemons
//	GET  /healthz   liveness (503 while draining)
//	GET  /metrics   JSON counter snapshot (MetricsSnapshot)
//
// Every response carries an X-Request-ID header: the client's value when
// supplied, a generated one otherwise. Error paths included — the ID is
// stamped before the handler runs, so fleet logs can correlate a request
// across a coordinator and the backend it was routed (or hedged) to.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"mmxdsp/internal/campaign"
	"mmxdsp/internal/core"
	"mmxdsp/internal/suite"
)

// Config tunes the daemon; zero values select the documented defaults.
type Config struct {
	// CacheEntries bounds the compiled-program LRU (default 64 — the full
	// suite in three dispatch modes, with room for ablation configs).
	CacheEntries int
	// ResultCacheEntries bounds the result-cache LRU of marshaled response
	// bytes (default 512; negative disables result caching). Simulation is
	// deterministic, so a cached response is byte-identical to re-running.
	ResultCacheEntries int
	// ResultCacheDir, when non-empty, enables the persistent result spill
	// tier: cached responses are also written there and survive daemon
	// restarts. Ignored when result caching is disabled.
	ResultCacheDir string
	// ResultCacheSpillMaxBytes and ResultCacheSpillMaxFiles bound the spill
	// directory (0 = unlimited): after each spill write, oldest-modified
	// result files are deleted until both bounds hold. Ignored without
	// ResultCacheDir.
	ResultCacheSpillMaxBytes int64
	ResultCacheSpillMaxFiles int
	// Workers bounds concurrently executing simulations (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker slot; beyond it the
	// server answers 429 (default 64).
	QueueDepth int
	// DefaultTimeout applies to requests that set no timeout_ms; 0 means
	// no server-imposed deadline.
	DefaultTimeout time.Duration
	// MaxInstrsCap, when positive, caps (and defaults) every request's
	// instruction budget, protecting the daemon from unbounded synthetic
	// programs.
	MaxInstrsCap int64
	// AsmMaxInstrsCap caps (and defaults) POST /asm instruction budgets.
	// User-submitted programs may loop forever, so this cap is always on:
	// 0 selects DefaultAsmMaxInstrs, negative disables (trusted setups
	// only). When MaxInstrsCap is also set the tighter bound wins.
	AsmMaxInstrsCap int64
	// MaxSourceBytes caps POST /asm source listings; beyond it the server
	// answers 413. 0 selects DefaultMaxSourceBytes.
	MaxSourceBytes int
	// Tenant configures per-tenant accounting (rate, concurrency and
	// instruction quotas) for /run and /asm; the zero value admits
	// everything but still records per-tenant counters.
	Tenant TenantLimits
	// CampaignDir, when non-empty, persists completed campaigns'
	// sensitivity artifacts (points.csv + sensitivity.md) under
	// CampaignDir/<id>/ with atomic writes.
	CampaignDir string
	// CampaignMaxPoints bounds one campaign's expanded grid (default
	// DefaultCampaignMaxPoints).
	CampaignMaxPoints int
	// CampaignWorkers bounds one campaign's concurrent points (default
	// DefaultCampaignWorkers); points still queue through the ordinary
	// admission pool.
	CampaignWorkers int
	// CampaignMaxActive bounds concurrently running campaigns (default
	// DefaultCampaignMaxActive); beyond it POST /campaign answers 429.
	CampaignMaxActive int
	// Lookup resolves program names; nil selects the suite registry.
	// Tests substitute synthetic registries (e.g. non-terminating
	// programs for cancellation coverage).
	Lookup func(string) (core.Benchmark, bool)
	// Benchmarks lists the programs /table runs; nil selects the full
	// suite.
	Benchmarks func() []core.Benchmark
}

// Server is one daemon instance. Create with New; it is ready to serve as
// soon as Handler is mounted.
type Server struct {
	cfg     Config
	cache   *codeCache
	results *ResultCache // nil when result caching is disabled
	metrics *metrics
	mux     *http.ServeMux

	// admit is the worker pool: bounded concurrency plus a two-priority
	// admission queue that sheds bulk traffic first (see admit.go).
	admit *admitter
	// tenants does per-tenant accounting and quota enforcement.
	tenants  *TenantLimiter
	draining atomic.Bool

	// campaigns is the campaign registry; campaignCtx scopes running
	// campaigns to the server lifetime (canceled on drain, so campaigns
	// stop with the daemon instead of outliving its HTTP requests).
	campaigns      *campaign.Store
	campaignCtx    context.Context
	campaignCancel context.CancelFunc
}

// New builds a Server from the configuration.
func New(cfg Config) *Server {
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 64
	}
	if cfg.ResultCacheEntries == 0 {
		cfg.ResultCacheEntries = 512
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Lookup == nil {
		cfg.Lookup = suite.ByName
	}
	if cfg.Benchmarks == nil {
		cfg.Benchmarks = suite.All
	}
	if cfg.AsmMaxInstrsCap == 0 {
		cfg.AsmMaxInstrsCap = DefaultAsmMaxInstrs
	}
	if cfg.MaxSourceBytes <= 0 {
		cfg.MaxSourceBytes = DefaultMaxSourceBytes
	}
	if cfg.CampaignWorkers <= 0 {
		cfg.CampaignWorkers = DefaultCampaignWorkers
	}
	if cfg.CampaignMaxActive <= 0 {
		cfg.CampaignMaxActive = DefaultCampaignMaxActive
	}
	s := &Server{
		cfg:       cfg,
		cache:     newCodeCache(cfg.CacheEntries),
		metrics:   newMetrics(),
		admit:     newAdmitter(cfg.Workers, cfg.QueueDepth),
		tenants:   NewTenantLimiter(cfg.Tenant),
		campaigns: campaign.NewStore(cfg.CampaignMaxActive, 0),
	}
	s.campaignCtx, s.campaignCancel = context.WithCancel(context.Background())
	if cfg.ResultCacheEntries > 0 {
		s.results = NewResultCache(cfg.ResultCacheEntries, cfg.ResultCacheDir)
		s.results.SetSpillLimits(cfg.ResultCacheSpillMaxBytes, cfg.ResultCacheSpillMaxFiles)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/asm", s.handleAsm)
	s.mux.HandleFunc("/campaign", s.handleCampaign)
	s.mux.HandleFunc("/campaign/", s.handleCampaignID)
	s.mux.HandleFunc("/table", s.handleTable)
	s.mux.HandleFunc("/programs", s.handlePrograms)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return WithRequestID(s.mux) }

// StartDrain flips the server into drain mode: /healthz reports 503 so
// load balancers stop routing, and new work is refused with 503 while
// requests already admitted run to completion (http.Server.Shutdown then
// waits for those). Running campaigns are canceled — their points stop
// through the same context plumbing as any canceled run. cmd/mmxd calls
// this on SIGTERM/SIGINT.
func (s *Server) StartDrain() {
	s.draining.Store(true)
	s.campaignCancel()
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// acquire admits one request into the worker pool at the given priority,
// queueing up to cfg.QueueDepth waiters (bulk capped to half). The release
// function must be called exactly once after the run retires.
func (s *Server) acquire(ctx context.Context, priority int) (release func(), err error) {
	release, err = s.admit.acquire(ctx, priority)
	if errors.Is(err, errQueueFull) {
		s.metrics.rejected.Add(1)
	}
	return release, err
}

// requestContext derives the run context: the HTTP request context (which
// fires on client disconnect) plus the resolved deadline.
func (s *Server) requestContext(r *http.Request, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(r.Context(), timeout)
	}
	return context.WithCancel(r.Context())
}

// capInstrs applies the server-side instruction-budget ceiling.
func (s *Server) capInstrs(req int64) (int64, error) {
	if s.cfg.MaxInstrsCap <= 0 {
		return req, nil
	}
	if req == 0 {
		return s.cfg.MaxInstrsCap, nil
	}
	if req > s.cfg.MaxInstrsCap {
		return 0, fmt.Errorf("max_instrs %d exceeds the server cap %d", req, s.cfg.MaxInstrsCap)
	}
	return req, nil
}

// compiledFor resolves a benchmark through the compiled-program cache.
func (s *Server) compiledFor(req *RunRequest) (*core.Compiled, bool, error) {
	bench, ok := s.cfg.Lookup(req.Program)
	if !ok {
		return nil, false, fmt.Errorf("unknown program %q", req.Program)
	}
	key := cacheKey{program: req.Program, dispatch: req.dispatchMode(), config: req.configKey()}
	return s.cache.get(key, func() (*core.Compiled, error) {
		return core.CompileBenchmark(bench)
	})
}
