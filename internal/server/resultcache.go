// The result cache. Simulation here is a pure function of
// (program, dispatch, config, budget, check): the paper's Table 2/3
// numbers never change for a fixed configuration, so the dominant
// production traffic shape — many users repeating the same few configs —
// is answered fastest by not simulating at all. The cache keys fully
// marshaled response bytes by RunRequest.ResultKey (the compiled-artifact
// key extended with the fields that shape the response but not the
// artifact), holds them in a bounded LRU, single-flights concurrent
// identical misses so the simulation runs once, stamps each entry with a
// strong ETag (hash of key + bytes, so identical results validate across
// restarts and across tiers), and optionally spills entries to a directory
// so a restarted daemon answers warm traffic without re-simulating.
//
// The same type backs the coordinator's result cache in internal/cluster:
// there the fill routes to a backend instead of running the interpreter,
// and a hit never costs a backend round-trip.
package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ResultCacheHeader reports how the response was produced: "hit" (memory),
// "spill" (loaded from the persistent tier), "coalesced" (waited on an
// identical in-flight request), "miss" (executed and cached) or "bypass"
// (cache disabled; executed).
const ResultCacheHeader = "X-Mmx-Result-Cache"

// ResultOutcome classifies one ResultCache.Do call for metrics and the
// ResultCacheHeader.
type ResultOutcome int

const (
	ResultMiss ResultOutcome = iota
	ResultHit
	ResultSpillHit
	ResultCoalesced
	ResultBypass
)

// String returns the ResultCacheHeader value for the outcome.
func (o ResultOutcome) String() string {
	switch o {
	case ResultHit:
		return "hit"
	case ResultSpillHit:
		return "spill"
	case ResultCoalesced:
		return "coalesced"
	case ResultBypass:
		return "bypass"
	default:
		return "miss"
	}
}

// CachedResult is one immutable cached response: the canonical key, the
// marshaled body bytes exactly as first served, and the strong ETag
// derived from both.
type CachedResult struct {
	Key  string
	ETag string
	Body []byte
}

// ETagFor computes the strong entity tag for a (key, body) pair. It hashes
// the key alongside the bytes so two different requests whose bodies
// happen to collide still get distinct validators, and it is deterministic
// across processes — a coordinator and a backend caching the same bytes
// under the same key agree on the tag.
func ETagFor(key string, body []byte) string {
	h := sha256.New()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write(body)
	sum := h.Sum(nil)
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// etagMatches implements the strong If-None-Match comparison against a
// single entity tag: any member of the comma-separated candidate list
// matching, or "*", satisfies the condition.
func etagMatches(ifNoneMatch, etag string) bool {
	if ifNoneMatch == "" {
		return false
	}
	for _, cand := range strings.Split(ifNoneMatch, ",") {
		cand = strings.TrimSpace(cand)
		if cand == "*" || cand == etag {
			return true
		}
	}
	return false
}

// ResultCacheStats is a point-in-time snapshot of result-cache counters.
type ResultCacheStats struct {
	Entries   int
	Capacity  int
	Hits      uint64 // memory hits
	SpillHits uint64 // entries revived from the spill directory
	Misses    uint64 // fills that executed (spill also missed)
	Coalesced uint64 // callers that waited on an identical in-flight fill
	Evictions uint64
	// SpillEvictions counts spill files deleted by the size/count-bounded
	// garbage collection of the spill directory.
	SpillEvictions uint64
}

// HitRate returns the fraction of lookups answered without executing:
// memory hits, spill hits and coalesced waits over all lookups.
func (s ResultCacheStats) HitRate() float64 {
	served := s.Hits + s.SpillHits + s.Coalesced
	total := served + s.Misses
	if total == 0 {
		return 0
	}
	return float64(served) / float64(total)
}

// resultFlight is one in-flight fill; res is nil if the fill failed.
type resultFlight struct {
	done chan struct{}
	res  *CachedResult
}

// ResultCache is a bounded LRU of marshaled response bytes with
// single-flight fills and an optional persistent spill tier.
type ResultCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *CachedResult
	elems    map[string]*list.Element
	inflight map[string]*resultFlight
	dir      string // spill directory; empty = memory only

	// Spill-directory bounds (0 = unlimited). spillMu serializes the
	// scan-and-evict garbage collection; spillEvictions counts deleted
	// files and is atomic so GC never contends with Stats on c.mu.
	spillMaxBytes  int64
	spillMaxFiles  int
	spillMu        sync.Mutex
	spillEvictions atomic.Uint64

	hits      uint64
	spillHits uint64
	misses    uint64
	coalesced uint64
	evictions uint64
}

// NewResultCache builds a cache bounded to capacity in-memory entries
// (minimum 1). dir, when non-empty, enables the persistent spill tier:
// every filled entry is also written there (atomic create + rename) and
// memory misses consult it before executing, so warm results survive a
// daemon restart. Spill files are verified on load (key match + ETag
// recomputation) and corrupt ones are discarded.
func NewResultCache(capacity int, dir string) *ResultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ResultCache{
		capacity: capacity,
		order:    list.New(),
		elems:    make(map[string]*list.Element, capacity),
		inflight: make(map[string]*resultFlight),
		dir:      dir,
	}
}

// SetSpillLimits bounds the spill directory to maxBytes of result files
// and maxFiles entries (0 = unlimited for either). After every spill write
// the cache deletes oldest-modified result files until both bounds hold
// again, so the directory tracks the warm working set instead of growing
// without bound across restarts.
func (c *ResultCache) SetSpillLimits(maxBytes int64, maxFiles int) {
	c.spillMu.Lock()
	c.spillMaxBytes = maxBytes
	c.spillMaxFiles = maxFiles
	c.spillMu.Unlock()
}

// Do returns the cached result for key, filling it at most once across
// concurrent callers: the first caller to miss executes fill while later
// identical requests wait for its result instead of executing again. Fill
// errors are never cached — each waiter then retries and the first to
// re-enter becomes the new filler, so a canceled leader does not poison
// its followers. ctx bounds only this caller's wait, not the fill itself.
func (c *ResultCache) Do(ctx context.Context, key string, fill func() ([]byte, error)) (*CachedResult, ResultOutcome, error) {
	coalesced := false
	for {
		c.mu.Lock()
		if el, ok := c.elems[key]; ok {
			c.order.MoveToFront(el)
			c.hits++
			res := el.Value.(*CachedResult)
			c.mu.Unlock()
			outcome := ResultHit
			if coalesced {
				outcome = ResultCoalesced
			}
			return res, outcome, nil
		}
		if f, ok := c.inflight[key]; ok {
			c.coalesced++
			c.mu.Unlock()
			coalesced = true
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ResultCoalesced, ctx.Err()
			}
			if f.res != nil {
				return f.res, ResultCoalesced, nil
			}
			continue // the filler failed; retry, possibly becoming the filler
		}
		f := &resultFlight{done: make(chan struct{})}
		c.inflight[key] = f
		c.mu.Unlock()

		res, outcome, err := c.fillOnce(key, fill)
		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil {
			c.insertLocked(res)
		}
		if outcome == ResultSpillHit {
			c.spillHits++
		} else {
			c.misses++
		}
		c.mu.Unlock()
		f.res = res
		close(f.done)
		if coalesced && err == nil {
			outcome = ResultCoalesced
		}
		return res, outcome, err
	}
}

// fillOnce produces the entry for key: from the spill tier if present,
// by executing fill otherwise. Successful fills are spilled best-effort.
func (c *ResultCache) fillOnce(key string, fill func() ([]byte, error)) (*CachedResult, ResultOutcome, error) {
	if res := c.loadSpill(key); res != nil {
		return res, ResultSpillHit, nil
	}
	body, err := fill()
	if err != nil {
		return nil, ResultMiss, err
	}
	res := &CachedResult{Key: key, ETag: ETagFor(key, body), Body: body}
	c.storeSpill(res)
	return res, ResultMiss, nil
}

// insertLocked adds res under the LRU discipline. Callers hold c.mu.
func (c *ResultCache) insertLocked(res *CachedResult) {
	if el, ok := c.elems[res.Key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.elems[res.Key] = c.order.PushFront(res)
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.elems, oldest.Value.(*CachedResult).Key)
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *ResultCache) Stats() ResultCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ResultCacheStats{
		Entries:        c.order.Len(),
		Capacity:       c.capacity,
		Hits:           c.hits,
		SpillHits:      c.spillHits,
		Misses:         c.misses,
		Coalesced:      c.coalesced,
		Evictions:      c.evictions,
		SpillEvictions: c.spillEvictions.Load(),
	}
}

// spillEnvelope is the on-disk spill format. The key is stored verbatim so
// a load can reject hash-name collisions, and the ETag doubles as the
// integrity check: a loaded body whose recomputed tag differs is corrupt.
type spillEnvelope struct {
	Key  string `json:"key"`
	ETag string `json:"etag"`
	Body []byte `json:"body"` // encoding/json base64s []byte
}

// spillPath names the spill file for key: content-addressed by the key
// hash, so arbitrary key bytes never escape into filesystem names.
func (c *ResultCache) spillPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".result.json")
}

// storeSpill writes res to the spill tier via create-temp + rename, so a
// crash mid-write never leaves a torn file under the final name. Spilling
// is best-effort: a full or read-only disk degrades to memory-only.
func (c *ResultCache) storeSpill(res *CachedResult) {
	if c.dir == "" {
		return
	}
	data, err := json.Marshal(spillEnvelope{Key: res.Key, ETag: res.ETag, Body: res.Body})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, ".spill-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.spillPath(res.Key)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	c.gcSpill()
}

// spillSuffix names result files in the spill directory; GC only ever
// touches files with this suffix, so an operator pointing the cache at a
// shared directory cannot lose unrelated files.
const spillSuffix = ".result.json"

// gcSpill enforces the spill-directory bounds: while the directory holds
// more than spillMaxFiles result files or more than spillMaxBytes of them,
// delete the oldest-modified first. Best-effort like the rest of the spill
// tier — races with concurrent loads just make a future load miss.
func (c *ResultCache) gcSpill() {
	c.spillMu.Lock()
	defer c.spillMu.Unlock()
	maxBytes, maxFiles := c.spillMaxBytes, c.spillMaxFiles
	if maxBytes <= 0 && maxFiles <= 0 {
		return
	}
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	type spillFile struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []spillFile
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), spillSuffix) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, spillFile{
			path:  filepath.Join(c.dir, e.Name()),
			size:  info.Size(),
			mtime: info.ModTime(),
		})
		total += info.Size()
	}
	over := func() bool {
		return (maxFiles > 0 && len(files) > maxFiles) ||
			(maxBytes > 0 && total > maxBytes)
	}
	if !over() {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for len(files) > 0 && over() {
		f := files[0]
		files = files[1:]
		total -= f.size
		if os.Remove(f.path) == nil {
			c.spillEvictions.Add(1)
		}
	}
}

// loadSpill revives key from the spill tier, verifying the stored key and
// recomputing the ETag over the loaded bytes. Anything that fails
// verification is deleted and treated as a miss.
func (c *ResultCache) loadSpill(key string) *CachedResult {
	if c.dir == "" {
		return nil
	}
	path := c.spillPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var env spillEnvelope
	if err := json.Unmarshal(data, &env); err != nil || env.Key != key || ETagFor(key, env.Body) != env.ETag {
		os.Remove(path)
		return nil
	}
	return &CachedResult{Key: env.Key, ETag: env.ETag, Body: env.Body}
}
