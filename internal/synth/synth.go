// Package synth generates the deterministic synthetic workloads that stand
// in for the paper's input files (a 118 kB Windows bitmap, a 640×480 RGB
// image, a 6 kB speech recording, and Doppler radar echoes). Every
// generator is seeded and reproducible, so VM runs and pure-Go reference
// runs see identical data.
package synth

import "math"

// Rand is a xorshift64* PRNG — deterministic and dependency-free.
type Rand struct{ s uint64 }

// NewRand seeds a generator; a zero seed is replaced with a fixed constant.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// Uint64 returns the next raw value.
func (r *Rand) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Float returns a uniform value in [-1, 1).
func (r *Rand) Float() float64 {
	return float64(int64(r.Uint64()>>11))/(1<<52) - 1
}

// Intn returns a uniform value in [0, n).
func (r *Rand) Intn(n int) int { return int(r.Uint64() % uint64(n)) }

// Tone generates n samples of a sine at normalized frequency f (cycles per
// sample) and the given amplitude.
func Tone(n int, f, amp float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = amp * math.Sin(2*math.Pi*f*float64(i))
	}
	return out
}

// MultiTone sums several tones with 1/k amplitude rolloff plus a little
// noise — a generic "interesting" test signal for filters and FFTs.
func MultiTone(n int, seed uint64, freqs ...float64) []float64 {
	r := NewRand(seed)
	out := make([]float64, n)
	for k, f := range freqs {
		amp := 0.5 / float64(k+1)
		for i := range out {
			out[i] += amp * math.Sin(2*math.Pi*f*float64(i))
		}
	}
	for i := range out {
		out[i] += 0.02 * r.Float()
	}
	return out
}

// Speech generates a voiced-speech-like waveform: a pitch train of decaying
// harmonics with a slow amplitude envelope and breath noise. n samples at a
// nominal 16 kHz (the G.722 input rate); ~3000 samples make the paper's
// "6 kB speech file" of 16-bit samples.
func Speech(n int, seed uint64) []float64 {
	r := NewRand(seed)
	out := make([]float64, n)
	pitch := 0.0078 // ~125 Hz at 16 kHz
	for h := 1; h <= 8; h++ {
		amp := 0.35 / float64(h)
		phase := 2 * math.Pi * r.Float()
		for i := range out {
			out[i] += amp * math.Sin(2*math.Pi*pitch*float64(h)*float64(i)+phase)
		}
	}
	for i := range out {
		// Syllable-rate envelope (~4 Hz) plus breath noise.
		env := 0.55 + 0.45*math.Sin(2*math.Pi*0.00025*float64(i))
		out[i] = out[i]*env + 0.01*r.Float()
		if out[i] > 0.99 {
			out[i] = 0.99
		}
		if out[i] < -0.99 {
			out[i] = -0.99
		}
	}
	return out
}

// RadarParams configures the Doppler radar echo generator.
type RadarParams struct {
	Gates   int     // range gates per echo (paper: 12)
	Pulses  int     // number of successive echoes
	Target  int     // gate containing the moving target
	Doppler float64 // target Doppler shift in cycles per pulse
	Clutter float64 // stationary clutter amplitude
	Seed    uint64
}

// RadarEchoes generates complex echo samples echo[pulse][gate] as
// (re, im) pairs: strong stationary clutter in every gate (identical pulse
// to pulse, so an MTI canceller removes it) plus a moving target whose
// phase advances by the Doppler shift each pulse, plus receiver noise.
func RadarEchoes(p RadarParams) (re, im [][]float64) {
	r := NewRand(p.Seed)
	// Per-gate stationary clutter (fixed across pulses).
	clutterRe := make([]float64, p.Gates)
	clutterIm := make([]float64, p.Gates)
	for g := 0; g < p.Gates; g++ {
		clutterRe[g] = p.Clutter * r.Float()
		clutterIm[g] = p.Clutter * r.Float()
	}
	re = make([][]float64, p.Pulses)
	im = make([][]float64, p.Pulses)
	for n := 0; n < p.Pulses; n++ {
		re[n] = make([]float64, p.Gates)
		im[n] = make([]float64, p.Gates)
		for g := 0; g < p.Gates; g++ {
			re[n][g] = clutterRe[g] + 0.01*r.Float()
			im[n][g] = clutterIm[g] + 0.01*r.Float()
		}
		// Moving target: rotating phasor in its gate.
		ph := 2 * math.Pi * p.Doppler * float64(n)
		re[n][p.Target] += 0.3 * math.Cos(ph)
		im[n][p.Target] += 0.3 * math.Sin(ph)
	}
	return re, im
}

// ImageRGB generates a natural-image-like 24-bit RGB image (w×h, row-major
// RGB triplets): smooth gradients, a few soft disc "objects", and fine
// texture. This is the stand-in for the paper's bitmap inputs.
func ImageRGB(w, h int, seed uint64) []uint8 {
	r := NewRand(seed)
	type disc struct {
		cx, cy, rad float64
		r, g, b     float64
	}
	discs := make([]disc, 6)
	for i := range discs {
		discs[i] = disc{
			cx: float64(r.Intn(w)), cy: float64(r.Intn(h)),
			rad: 20 + float64(r.Intn(w/4+1)),
			r:   float64(r.Intn(200)), g: float64(r.Intn(200)), b: float64(r.Intn(200)),
		}
	}
	out := make([]uint8, 3*w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x), float64(y)
			// Base gradient sky-to-ground.
			rr := 40 + 120*fy/float64(h)
			gg := 60 + 100*fx/float64(w)
			bb := 150 - 80*fy/float64(h)
			for _, d := range discs {
				dist := math.Hypot(fx-d.cx, fy-d.cy)
				if dist < d.rad {
					t := 1 - dist/d.rad
					rr += t * (d.r - rr) * 0.8
					gg += t * (d.g - gg) * 0.8
					bb += t * (d.b - bb) * 0.8
				}
			}
			// Fine texture.
			tex := 6 * math.Sin(0.31*fx) * math.Cos(0.27*fy)
			i := 3 * (y*w + x)
			out[i] = clamp8(rr + tex)
			out[i+1] = clamp8(gg + tex)
			out[i+2] = clamp8(bb - tex)
		}
	}
	return out
}

func clamp8(v float64) uint8 {
	if v > 255 {
		return 255
	}
	if v < 0 {
		return 0
	}
	return uint8(v)
}

// ToQ15 converts float samples in [-1, 1) to Q15 ints.
func ToQ15(v []float64) []int16 {
	out := make([]int16, len(v))
	for i, x := range v {
		s := math.Round(x * 32768)
		if s > 32767 {
			s = 32767
		}
		if s < -32768 {
			s = -32768
		}
		out[i] = int16(s)
	}
	return out
}
