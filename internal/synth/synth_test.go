package synth

import (
	"math"
	"testing"

	"mmxdsp/internal/dsp"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(5), NewRand(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewRand(5).Uint64() == NewRand(6).Uint64() {
		t.Error("different seeds should differ")
	}
	if NewRand(0).Uint64() == 0 {
		t.Error("zero seed must be remapped")
	}
}

func TestFloatRange(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		v := r.Float()
		if v < -1 || v >= 1 {
			t.Fatalf("Float() = %v out of [-1,1)", v)
		}
	}
}

func TestToneFrequency(t *testing.T) {
	n := 256
	x := Tone(n, 8.0/float64(n), 0.9)
	re := make([]float64, n)
	im := make([]float64, n)
	copy(re, x)
	if err := dsp.FFT(re, im); err != nil {
		t.Fatal(err)
	}
	ps := dsp.PowerSpectrum(re, im)
	if got := dsp.PeakIndex(ps[1 : n/2]); got+1 != 8 {
		t.Errorf("tone peak at bin %d, want 8", got+1)
	}
}

func TestSpeechInRangeAndVoiced(t *testing.T) {
	x := Speech(3000, 2)
	var energy float64
	for _, v := range x {
		if v > 1 || v < -1 {
			t.Fatalf("speech sample %v out of range", v)
		}
		energy += v * v
	}
	if energy/float64(len(x)) < 1e-3 {
		t.Error("speech signal suspiciously quiet")
	}
	// Pitch harmonic must dominate the spectrum's low band.
	n := 2048
	re := make([]float64, n)
	im := make([]float64, n)
	copy(re, x[:n])
	if err := dsp.FFT(re, im); err != nil {
		t.Fatal(err)
	}
	ps := dsp.PowerSpectrum(re, im)
	peak := dsp.PeakIndex(ps[1 : n/2])
	if peak+1 > 200 {
		t.Errorf("dominant bin %d, expected low-frequency harmonic", peak+1)
	}
}

func TestRadarEchoesMTI(t *testing.T) {
	p := RadarParams{Gates: 12, Pulses: 16, Target: 5, Doppler: 0.2, Clutter: 0.8, Seed: 4}
	re, im := RadarEchoes(p)
	if len(re) != 16 || len(re[0]) != 12 {
		t.Fatalf("shape %dx%d", len(re), len(re[0]))
	}
	// After pulse-to-pulse subtraction the target gate must carry far more
	// energy than any clutter-only gate.
	energy := make([]float64, p.Gates)
	for n := 1; n < p.Pulses; n++ {
		for g := 0; g < p.Gates; g++ {
			dr := re[n][g] - re[n-1][g]
			di := im[n][g] - im[n-1][g]
			energy[g] += dr*dr + di*di
		}
	}
	for g := 0; g < p.Gates; g++ {
		if g == p.Target {
			continue
		}
		if energy[g]*10 > energy[p.Target] {
			t.Errorf("gate %d energy %g vs target %g: clutter not cancelled",
				g, energy[g], energy[p.Target])
		}
	}
}

func TestImageRGBDeterministicAndVaried(t *testing.T) {
	a := ImageRGB(64, 48, 7)
	b := ImageRGB(64, 48, 7)
	if len(a) != 3*64*48 {
		t.Fatalf("size %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the image")
		}
	}
	// The image should have real variation (not flat).
	var hist [256]int
	for _, v := range a {
		hist[v]++
	}
	distinct := 0
	for _, c := range hist {
		if c > 0 {
			distinct++
		}
	}
	if distinct < 50 {
		t.Errorf("only %d distinct byte values; texture too flat", distinct)
	}
}

func TestToQ15Saturates(t *testing.T) {
	q := ToQ15([]float64{0, 0.5, 1.5, -1.5})
	if q[0] != 0 || q[1] != 16384 || q[2] != 32767 || q[3] != -32768 {
		t.Errorf("ToQ15 = %v", q)
	}
}

func TestIntn(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	if math.Abs(float64(NewRand(3).Intn(1000000))-float64(NewRand(3).Intn(1000000))) != 0 {
		t.Error("Intn must be deterministic")
	}
}
