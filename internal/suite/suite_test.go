package suite

import (
	"strings"
	"sync"
	"testing"

	"mmxdsp/internal/core"
)

func TestAllContainsThePapersNineteenPrograms(t *testing.T) {
	// The paper's nineteen programs plus the two sad versions added by the
	// motion-estimation extension.
	want := []string{
		"fft.c", "fft.fp", "fft.mmx",
		"fir.c", "fir.fp", "fir.mmx",
		"iir.c", "iir.fp", "iir.mmx",
		"matvec.c", "matvec.mmx",
		"sad.c", "sad.mmx",
		"jpeg.c", "jpeg.mmx",
		"image.c", "image.mmx",
		"g722.c", "g722.mmx",
		"radar.c", "radar.mmx",
	}
	names := Names()
	if len(names) != len(want) {
		t.Errorf("suite has %d programs, want %d: %v", len(names), len(want), names)
	}
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Errorf("suite missing %s", w)
		}
	}
	// Names() must be sorted for stable output.
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted at %d: %s >= %s", i, names[i-1], names[i])
		}
	}
}

func TestByName(t *testing.T) {
	b, ok := ByName("matvec.mmx")
	if !ok || b.Base != "matvec" || b.Version != core.VersionMMX {
		t.Errorf("ByName(matvec.mmx) = %+v, %v", b, ok)
	}
	if _, ok := ByName("nope.c"); ok {
		t.Error("ByName must reject unknown programs")
	}
}

// TestEveryProgramAssembles builds all nineteen programs (without running
// them) and sanity-checks the linked images and listings.
func TestEveryProgramAssembles(t *testing.T) {
	for _, bench := range All() {
		prog, err := bench.Build()
		if err != nil {
			t.Errorf("%s: build failed: %v", bench.Name(), err)
			continue
		}
		if len(prog.Insts) < 10 {
			t.Errorf("%s: only %d instructions", bench.Name(), len(prog.Insts))
		}
		if len(prog.Procs) == 0 {
			t.Errorf("%s: no procedures recorded", bench.Name())
		}
		if prog.MemSize < 0x20000 {
			t.Errorf("%s: image size %d suspiciously small", bench.Name(), prog.MemSize)
		}
		l := prog.Listing()
		if !strings.Contains(l, "main:") {
			t.Errorf("%s: listing missing main label", bench.Name())
		}
		if !strings.Contains(l, "halt") {
			t.Errorf("%s: listing missing halt", bench.Name())
		}
		// MMX versions must actually contain MMX instructions.
		if bench.Version == core.VersionMMX && !strings.Contains(l, "movq") {
			t.Errorf("%s: no MMX instructions in listing", bench.Name())
		}
	}
}

// TestRegistryMemoizationAndDefensiveCopies pins the registry rework: the
// sorted slice is built once, and every accessor returns copies the caller
// can mutate freely.
func TestRegistryMemoizationAndDefensiveCopies(t *testing.T) {
	a, b := All(), All()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("All() sizes: %d vs %d", len(a), len(b))
	}
	// Mutating a returned slice must not leak into the registry.
	a[0] = core.Benchmark{Base: "clobbered", Version: "x"}
	if All()[0].Base == "clobbered" {
		t.Error("All() exposed the shared registry slice")
	}
	names := Names()
	names[0] = "clobbered"
	if Names()[0] == "clobbered" {
		t.Error("Names() exposed the shared registry slice")
	}
	// ByName is a map lookup over the same memoized registry.
	if _, ok := ByName("clobbered"); ok {
		t.Error("registry contaminated by caller mutation")
	}
}

// TestRegistryConcurrentAccess exercises first-touch memoization and all
// accessors from many goroutines (meaningful under -race).
func TestRegistryConcurrentAccess(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if len(All()) == 0 || len(Names()) == 0 {
				t.Error("empty registry")
			}
			if _, ok := ByName("fft.mmx"); !ok {
				t.Error("fft.mmx missing")
			}
		}()
	}
	wg.Wait()
}
