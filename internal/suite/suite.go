// Package suite assembles the complete benchmark registry: the four DSP
// kernels and four applications of the paper's Table 1, in every version.
//
// The registry is built once, behind a sync.Once, and every accessor hands
// out copies — safe to call from the concurrent suite runner and immune to
// caller mutation.
package suite

import (
	"sort"
	"sync"

	"mmxdsp/internal/apps"
	"mmxdsp/internal/core"
	"mmxdsp/internal/kernels"
)

var registry struct {
	once   sync.Once
	all    []core.Benchmark          // sorted by name
	byName map[string]core.Benchmark // keyed by paper-style name
	names  []string                  // sorted program names
}

func build() {
	registry.once.Do(func() {
		all := append(kernels.Benchmarks(), apps.Benchmarks()...)
		sort.Slice(all, func(i, j int) bool { return all[i].Name() < all[j].Name() })
		byName := make(map[string]core.Benchmark, len(all))
		names := make([]string, len(all))
		for i, b := range all {
			byName[b.Name()] = b
			names[i] = b.Name()
		}
		registry.all, registry.byName, registry.names = all, byName, names
	})
}

// All returns every benchmark, stably ordered by name. The slice is a
// fresh copy; the Benchmark values share only immutable data (strings and
// stateless Build/Check functions).
func All() []core.Benchmark {
	build()
	out := make([]core.Benchmark, len(registry.all))
	copy(out, registry.all)
	return out
}

// ByName returns the benchmark with the given paper-style name (e.g.
// "fft.mmx") and whether it exists.
func ByName(name string) (core.Benchmark, bool) {
	build()
	b, ok := registry.byName[name]
	return b, ok
}

// Names returns all program names in order. The slice is a fresh copy.
func Names() []string {
	build()
	out := make([]string, len(registry.names))
	copy(out, registry.names)
	return out
}
