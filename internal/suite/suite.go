// Package suite assembles the complete benchmark registry: the four DSP
// kernels and four applications of the paper's Table 1, in every version.
package suite

import (
	"sort"

	"mmxdsp/internal/apps"
	"mmxdsp/internal/core"
	"mmxdsp/internal/kernels"
)

// All returns every benchmark, kernels first, stably ordered by name.
func All() []core.Benchmark {
	out := append(kernels.Benchmarks(), apps.Benchmarks()...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// ByName returns the benchmark with the given paper-style name (e.g.
// "fft.mmx") and whether it exists.
func ByName(name string) (core.Benchmark, bool) {
	for _, b := range All() {
		if b.Name() == name {
			return b, true
		}
	}
	return core.Benchmark{}, false
}

// Names returns all program names in order.
func Names() []string {
	var out []string
	for _, b := range All() {
		out = append(out, b.Name())
	}
	return out
}
