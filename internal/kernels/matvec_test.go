package kernels

import (
	"testing"

	"mmxdsp/internal/core"
)

// runPair runs the .c (or .fp) and .mmx versions of a family and returns
// the comparison. Shared by the kernel shape tests.
func runPair(t *testing.T, benches []core.Benchmark, baseVer, mmxVer string) core.Ratios {
	t.Helper()
	var base, mmx *core.Result
	for _, bm := range benches {
		switch bm.Version {
		case baseVer:
			r, err := core.Run(bm, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			base = r
		case mmxVer:
			r, err := core.Run(bm, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			mmx = r
		}
	}
	if base == nil || mmx == nil {
		t.Fatalf("missing versions %s/%s", baseVer, mmxVer)
	}
	return core.Compare(base.Report, mmx.Report)
}

func TestMatVecValidatesAndSpeedsUp(t *testing.T) {
	if testing.Short() {
		t.Skip("full 512x512 workload")
	}
	r := runPair(t, MatVec(), core.VersionC, core.VersionMMX)
	t.Logf("matvec ratios: %+v", r)
	// Paper: speedup 6.61, dynamic 5.32, memrefs 2.91, static 0.220.
	// Shape requirements: superlinear speedup (>4 despite 4-wide SIMD),
	// large dynamic reduction, static growth.
	if r.Speedup < 4 {
		t.Errorf("matvec speedup = %.2f, want >= 4 (superlinear, paper 6.61)", r.Speedup)
	}
	if r.Speedup > 12 {
		t.Errorf("matvec speedup = %.2f, implausibly high", r.Speedup)
	}
	if r.Dynamic < 3 {
		t.Errorf("matvec dynamic ratio = %.2f, want >= 3 (paper 5.32)", r.Dynamic)
	}
	if r.Static >= 1 {
		t.Errorf("matvec static ratio = %.2f, want < 1 (MMX code is bigger)", r.Static)
	}
	if r.MemRefs < 1.5 {
		t.Errorf("matvec memref ratio = %.2f, want >= 1.5 (paper 2.91)", r.MemRefs)
	}
}
