package kernels

import (
	"fmt"
	"math"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/core"
	"mmxdsp/internal/dsp"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/fixed"
	"mmxdsp/internal/fplib"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/mmxlib"
	"mmxdsp/internal/synth"
	"mmxdsp/internal/vm"
)

// Paper workload: "Low-pass filter of length 35 (i.e. 35 coefficients and
// 35 entry history)", invoked once per input sample. The non-MMX versions
// use 32-bit floating point; the MMX version uses 16-bit fixed point with
// float conversion at the call boundary (the library data-formatting cost
// the paper measures).
const (
	firTaps    = 35
	firPadded  = 36 // MMX version pads to a multiple of 4
	firSamples = 4096
	firCutoff  = 0.125
)

type firWorkload struct {
	coefF  []float64
	coef32 []float32
	coefQ  []int16 // padded
	in     []float64
	in32   []float32
	inQ    []int16
}

func newFirWorkload() firWorkload {
	w := firWorkload{coefF: dsp.LowpassFIR(firTaps, firCutoff)}
	w.coef32 = make([]float32, firTaps)
	for i, v := range w.coefF {
		w.coef32[i] = float32(v)
	}
	w.coefQ = make([]int16, firPadded)
	copy(w.coefQ, fixed.VecToQ15(w.coefF))
	w.in = synth.MultiTone(firSamples, 0xF15, 0.03, 0.21, 0.4)
	w.in32 = make([]float32, firSamples)
	for i, v := range w.in {
		w.in32[i] = float32(v)
	}
	w.inQ = synth.ToQ15(w.in)
	return w
}

// expectedFloat mirrors the scalar asm exactly: float32 storage, float64
// accumulation.
func (w firWorkload) expectedFloat() []float32 {
	hist := make([]float32, firTaps)
	out := make([]float32, firSamples)
	for i, x := range w.in32 {
		copy(hist[1:], hist)
		hist[0] = x
		var acc float64
		for k := 0; k < firTaps; k++ {
			acc += float64(hist[k]) * float64(w.coef32[k])
		}
		out[i] = float32(acc)
	}
	return out
}

// expectedMMX mirrors fir.mmx: the float32 input is quantized to Q15 with
// fist rounding, filtered by the fixed-point library, and converted back to
// float32 by fild * (1/32768).
func (w firWorkload) expectedMMX() []float32 {
	f := dsp.NewFIRQ15(w.coefQ)
	out := make([]float32, firSamples)
	inv := float32(1.0 / 32768.0)
	for i, x := range w.in32 {
		q := int16(math.RoundToEven(float64(x) * 32768))
		y := f.Process(q)
		out[i] = float32(float64(y) * float64(inv))
	}
	return out
}

func checkF32(c *vm.CPU, sym string, want []float32, tol float64, context string) error {
	addr := c.Prog.Addr(sym)
	for i := range want {
		raw, ok := c.Mem.LoadU32(addr + uint32(4*i))
		if !ok {
			return fmt.Errorf("%s: cannot read %s[%d]", context, sym, i)
		}
		got := math.Float32frombits(raw)
		if math.Abs(float64(got-want[i])) > tol {
			return fmt.Errorf("%s: %s[%d] = %g, want %g", context, sym, i, got, want[i])
		}
	}
	return nil
}

// FIR returns the fir.c, fir.fp and fir.mmx benchmarks.
func FIR() []core.Benchmark {
	descr := "35-tap low-pass FIR, one sample per invocation, 4096 samples"
	return []core.Benchmark{
		{
			Base: "fir", Version: core.VersionC, Kind: core.KindKernel, Descr: descr,
			Build: buildFirC,
			Check: func(c *vm.CPU) error {
				return checkF32(c, "out", newFirWorkload().expectedFloat(), 0, "fir.c")
			},
		},
		{
			Base: "fir", Version: core.VersionFP, Kind: core.KindKernel, Descr: descr,
			Build: buildFirFP,
			Check: func(c *vm.CPU) error {
				return checkF32(c, "out", newFirWorkload().expectedFloat(), 0, "fir.fp")
			},
		},
		{
			Base: "fir", Version: core.VersionMMX, Kind: core.KindKernel, Descr: descr,
			Build: buildFirMMX,
			Check: func(c *vm.CPU) error {
				// Paper: precision loss "order 10^-4"; semantics should be
				// modeled exactly, so the tolerance is tight.
				return checkF32(c, "out", newFirWorkload().expectedMMX(), 1e-7, "fir.mmx")
			},
		},
	}
}

// buildFirC: straightforward compiled scalar code. Per sample it shifts a
// float32 delay line and accumulates taps with x87 arithmetic, all inline
// (a compiler would inline this small function or the call is negligible
// against 35 serialized FP operations).
func buildFirC() (*asm.Program, error) {
	b := asm.NewBuilder("fir.c")
	w := newFirWorkload()
	b.Floats("coef", w.coef32)
	b.Floats("in", w.in32)
	b.Floats("hist", make([]float32, firTaps))
	b.Reserve("out", 4*firSamples)

	b.Proc("main")
	b.I(isa.PROFON)
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(0))
	b.Label("sample")
	// Shift history (newest at 0) with dword moves like compiled memmove.
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(firTaps-1))
	b.Label("shift")
	b.I(isa.MOV, asm.R(isa.EDX), asm.SymIdx(isa.SizeD, "hist", isa.EAX, 4, -4))
	b.I(isa.MOV, asm.SymIdx(isa.SizeD, "hist", isa.EAX, 4, 0), asm.R(isa.EDX))
	b.I(isa.DEC, asm.R(isa.EAX))
	b.J(isa.JNE, "shift")
	b.I(isa.MOV, asm.R(isa.EDX), asm.SymIdx(isa.SizeD, "in", isa.EBP, 4, 0))
	b.I(isa.MOV, asm.Sym(isa.SizeD, "hist", 0), asm.R(isa.EDX))
	// MAC.
	b.I(isa.FLDC, asm.R(isa.FP0), asm.Imm(0))
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label("mac")
	b.I(isa.FLD, asm.R(isa.FP1), asm.SymIdx(isa.SizeD, "hist", isa.EAX, 4, 0))
	b.I(isa.FMUL, asm.R(isa.FP1), asm.SymIdx(isa.SizeD, "coef", isa.EAX, 4, 0))
	b.I(isa.FADD, asm.R(isa.FP0), asm.R(isa.FP1))
	b.I(isa.INC, asm.R(isa.EAX))
	b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(firTaps))
	b.J(isa.JL, "mac")
	b.I(isa.FST, asm.SymIdx(isa.SizeD, "out", isa.EBP, 4, 0), asm.R(isa.FP0))
	b.I(isa.INC, asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.EBP), asm.Imm(firSamples))
	b.J(isa.JL, "sample")
	b.I(isa.PROFOFF)
	b.I(isa.HALT)
	return b.Link()
}

// buildFirFP: the application loop calls the optimized FP library once per
// sample (identical arithmetic, library call overhead added).
func buildFirFP() (*asm.Program, error) {
	b := asm.NewBuilder("fir.fp")
	w := newFirWorkload()
	fplib.EmitFirF32(b)
	b.Floats("coef", w.coef32)
	b.Floats("in", w.in32)
	b.Floats("hist", make([]float32, firTaps))
	b.Reserve("out", 4*firSamples)

	b.Entry()
	b.Proc("main")
	b.I(isa.PROFON)
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(0))
	b.Label("sample")
	b.I(isa.MOV, asm.R(isa.EAX), asm.SymIdx(isa.SizeD, "in", isa.EBP, 4, 0))
	b.I(isa.PUSH, asm.R(isa.EBP))
	emit.Call(b, "fpFir", asm.ImmSym("hist", 0), asm.ImmSym("coef", 0),
		asm.Imm(firTaps), asm.R(isa.EAX))
	b.I(isa.POP, asm.R(isa.EBP))
	b.I(isa.FST, asm.SymIdx(isa.SizeD, "out", isa.EBP, 4, 0), asm.R(isa.FP0))
	b.I(isa.INC, asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.EBP), asm.Imm(firSamples))
	b.J(isa.JL, "sample")
	b.I(isa.PROFOFF)
	b.I(isa.HALT)
	return b.Link()
}

// buildFirMMX: the application data stays float32 (as in the paper's C
// applications), so every sample pays the library-format conversion both
// ways plus an emms before returning to x87 — exactly the per-call
// overhead §4.1 describes for fir.mmx.
func buildFirMMX() (*asm.Program, error) {
	b := asm.NewBuilder("fir.mmx")
	w := newFirWorkload()
	mmxlib.EmitFirQ15(b)
	b.Floats("in", w.in32)
	b.Words("coefq", w.coefQ)
	b.Words("histq", make([]int16, firPadded))
	b.Words("xq", make([]int16, 4))
	b.Floats("scale", []float32{32768, 1.0 / 32768})
	b.Reserve("out", 4*firSamples)

	b.Entry()
	b.Proc("main")
	b.I(isa.PROFON)
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(0))
	b.Label("sample")
	// Format: quantize the float sample to Q15 for the library.
	b.I(isa.FLD, asm.R(isa.FP0), asm.SymIdx(isa.SizeD, "in", isa.EBP, 4, 0))
	b.I(isa.FMUL, asm.R(isa.FP0), asm.Sym(isa.SizeD, "scale", 0))
	b.I(isa.FIST, asm.Sym(isa.SizeW, "xq", 0), asm.R(isa.FP0))
	b.I(isa.MOVSXW, asm.R(isa.EAX), asm.Sym(isa.SizeW, "xq", 0))
	b.I(isa.PUSH, asm.R(isa.EBP))
	emit.Call(b, "nsFir", asm.ImmSym("histq", 0), asm.ImmSym("coefq", 0),
		asm.Imm(firPadded), asm.R(isa.EAX))
	b.I(isa.POP, asm.R(isa.EBP))
	// Back-format: Q15 result to float32 output.
	b.I(isa.MOV, asm.Sym(isa.SizeW, "xq", 2), asm.R(isa.EAX))
	b.I(isa.EMMS) // leave MMX before x87 use: up to 50 cycles, every sample
	b.I(isa.FILD, asm.R(isa.FP0), asm.Sym(isa.SizeW, "xq", 2))
	b.I(isa.FMUL, asm.R(isa.FP0), asm.Sym(isa.SizeD, "scale", 4))
	b.I(isa.FST, asm.SymIdx(isa.SizeD, "out", isa.EBP, 4, 0), asm.R(isa.FP0))
	b.I(isa.INC, asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.EBP), asm.Imm(firSamples))
	b.J(isa.JL, "sample")
	b.I(isa.PROFOFF)
	b.I(isa.HALT)
	return b.Link()
}
