package kernels

import (
	"fmt"
	"math"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/core"
	"mmxdsp/internal/dsp"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/fplib"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/mmxlib"
	"mmxdsp/internal/synth"
	"mmxdsp/internal/vm"
)

// Paper workload: "Butterworth, direct form, eighth-order bandpass filter.
// Filter length of eight with 17 coefficients", block filtering with eight
// samples per invocation. Non-MMX versions use 64-bit floating point; the
// MMX version uses 16-bit fixed point (and, as the paper reports, loses
// precision through the feedback path).
const (
	iirOrder    = 4 // biquad order parameter: 2n = 8th order
	iirLo       = 0.1
	iirHi       = 0.2
	iirBlockLen = 8
	iirBlocks   = 512
	iirSamples  = iirBlockLen * iirBlocks
)

type iirWorkload struct {
	b, a []float64
	in   []float64
	inQ  []int16
}

func newIirWorkload() iirWorkload {
	w := iirWorkload{}
	w.b, w.a = dsp.ButterworthBandpass(iirOrder, iirLo, iirHi)
	// Keep the level modest: the paper's 16-bit IIR overflows eventually;
	// a quarter-scale passband tone keeps the comparison meaningful while
	// still exercising the same code path.
	w.in = synth.MultiTone(iirSamples, 0x11B, 0.14, 0.16, 0.05)
	for i := range w.in {
		w.in[i] *= 0.25
	}
	w.inQ = synth.ToQ15(w.in)
	return w
}

// expectedFloat mirrors the float64 pipeline (both .c and .fp share it).
func (w iirWorkload) expectedFloat() []float64 {
	f := dsp.NewIIR(w.b, w.a)
	return f.ProcessBlock(w.in)
}

// expectedMMX mirrors the fixed-point library.
func (w iirWorkload) expectedMMX() []int16 {
	f := dsp.NewIIRQ15(w.b, w.a)
	return f.ProcessBlock(w.inQ)
}

func checkF64(c *vm.CPU, sym string, want []float64, tol float64, context string) error {
	addr := c.Prog.Addr(sym)
	for i := range want {
		raw, ok := c.Mem.LoadU64(addr + uint32(8*i))
		if !ok {
			return fmt.Errorf("%s: cannot read %s[%d]", context, sym, i)
		}
		got := math.Float64frombits(raw)
		if math.Abs(got-want[i]) > tol {
			return fmt.Errorf("%s: %s[%d] = %g, want %g", context, sym, i, got, want[i])
		}
	}
	return nil
}

// IIR returns the iir.c, iir.fp and iir.mmx benchmarks.
func IIR() []core.Benchmark {
	descr := "8th-order Butterworth bandpass IIR, 17 coefficients, blocks of 8 samples"
	return []core.Benchmark{
		{
			Base: "iir", Version: core.VersionC, Kind: core.KindKernel, Descr: descr,
			Build: buildIirC,
			Check: func(c *vm.CPU) error {
				return checkF64(c, "out", newIirWorkload().expectedFloat(), 0, "iir.c")
			},
		},
		{
			Base: "iir", Version: core.VersionFP, Kind: core.KindKernel, Descr: descr,
			Build: buildIirFP,
			Check: func(c *vm.CPU) error {
				return checkF64(c, "out", newIirWorkload().expectedFloat(), 0, "iir.fp")
			},
		},
		{
			Base: "iir", Version: core.VersionMMX, Kind: core.KindKernel, Descr: descr,
			Build: buildIirMMX,
			Check: func(c *vm.CPU) error {
				return expectInt16s(c, "out", newIirWorkload().expectedMMX(), "iir.mmx")
			},
		},
	}
}

// buildIirC: compiled scalar float64 code, one function call per sample
// (the unblocked structure whose call overhead the paper contrasts with
// the MMX version's block processing).
func buildIirC() (*asm.Program, error) {
	b := asm.NewBuilder("iir.c")
	w := newIirWorkload()
	nb := len(w.b)     // 9
	na := len(w.a) - 1 // 8
	b.Doubles("bco", w.b)
	b.Doubles("aco", w.a[1:])
	b.Doubles("xh", make([]float64, nb))
	b.Doubles("yh", make([]float64, na))
	b.Doubles("in", w.in)
	b.Doubles("accvar", []float64{0}) // the compiler keeps `acc` in memory
	b.Reserve("out", 8*iirSamples)

	b.Proc("main")
	b.I(isa.PROFON)
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(0))
	b.Label("sample")
	b.I(isa.PUSH, asm.R(isa.EBP))
	emit.Call(b, "iir_filter", asm.R(isa.EBP))
	b.I(isa.POP, asm.R(isa.EBP))
	b.I(isa.INC, asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.EBP), asm.Imm(iirSamples))
	b.J(isa.JL, "sample")
	b.I(isa.PROFOFF)
	b.I(isa.HALT)

	// iir_filter(i): out[i] = filter(in[i]); direct form I on float64.
	b.Proc("iir_filter")
	b.I(isa.MOV, asm.R(isa.EBP), emit.Arg(0))
	// Shift x history.
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(int64(nb-1)))
	b.Label("xshift")
	b.I(isa.FLD, asm.R(isa.FP1), asm.SymIdx(isa.SizeQ, "xh", isa.EAX, 8, -8))
	b.I(isa.FST, asm.SymIdx(isa.SizeQ, "xh", isa.EAX, 8, 0), asm.R(isa.FP1))
	b.I(isa.DEC, asm.R(isa.EAX))
	b.J(isa.JNE, "xshift")
	b.I(isa.FLD, asm.R(isa.FP1), asm.SymIdx(isa.SizeQ, "in", isa.EBP, 8, 0))
	b.I(isa.FST, asm.Sym(isa.SizeQ, "xh", 0), asm.R(isa.FP1))
	// acc = sum b*xh - sum a*yh.
	b.I(isa.FLDC, asm.R(isa.FP0), asm.Imm(0))
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label("bmac")
	b.I(isa.FLD, asm.R(isa.FP1), asm.SymIdx(isa.SizeQ, "xh", isa.EAX, 8, 0))
	b.I(isa.FMUL, asm.R(isa.FP1), asm.SymIdx(isa.SizeQ, "bco", isa.EAX, 8, 0))
	b.I(isa.FADD, asm.R(isa.FP0), asm.R(isa.FP1))
	// Compiled code round-trips the C accumulator variable through its
	// stack slot every iteration (float64 slot: numerically a no-op).
	b.I(isa.FST, asm.Sym(isa.SizeQ, "accvar", 0), asm.R(isa.FP0))
	b.I(isa.FLD, asm.R(isa.FP0), asm.Sym(isa.SizeQ, "accvar", 0))
	b.I(isa.INC, asm.R(isa.EAX))
	b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(int64(nb)))
	b.J(isa.JL, "bmac")
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label("amac")
	b.I(isa.FLD, asm.R(isa.FP1), asm.SymIdx(isa.SizeQ, "yh", isa.EAX, 8, 0))
	b.I(isa.FMUL, asm.R(isa.FP1), asm.SymIdx(isa.SizeQ, "aco", isa.EAX, 8, 0))
	b.I(isa.FSUB, asm.R(isa.FP0), asm.R(isa.FP1))
	b.I(isa.FST, asm.Sym(isa.SizeQ, "accvar", 0), asm.R(isa.FP0))
	b.I(isa.FLD, asm.R(isa.FP0), asm.Sym(isa.SizeQ, "accvar", 0))
	b.I(isa.INC, asm.R(isa.EAX))
	b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(int64(na)))
	b.J(isa.JL, "amac")
	// Shift y history, insert, store output.
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(int64(na-1)))
	b.Label("yshift")
	b.I(isa.FLD, asm.R(isa.FP1), asm.SymIdx(isa.SizeQ, "yh", isa.EAX, 8, -8))
	b.I(isa.FST, asm.SymIdx(isa.SizeQ, "yh", isa.EAX, 8, 0), asm.R(isa.FP1))
	b.I(isa.DEC, asm.R(isa.EAX))
	b.J(isa.JNE, "yshift")
	b.I(isa.FST, asm.Sym(isa.SizeQ, "yh", 0), asm.R(isa.FP0))
	b.I(isa.FST, asm.SymIdx(isa.SizeQ, "out", isa.EBP, 8, 0), asm.R(isa.FP0))
	b.Ret()

	return b.Link()
}

// buildIirFP: the FP library processes blocks of 8 per call.
func buildIirFP() (*asm.Program, error) {
	b := asm.NewBuilder("iir.fp")
	w := newIirWorkload()
	nb := len(w.b)
	na := len(w.a) - 1
	fplib.EmitIirBlockF64(b)
	b.Dwords("state", []int32{int32(nb), int32(na)})
	b.Doubles("state.b", w.b)
	b.Doubles("state.a", w.a[1:])
	b.Doubles("state.xh", make([]float64, nb))
	b.Doubles("state.yh", make([]float64, na))
	b.Doubles("in", w.in)
	b.Reserve("out", 8*iirSamples)

	b.Entry()
	b.Proc("main")
	b.I(isa.PROFON)
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(0))
	b.Label("blk")
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EBP))
	b.I(isa.SHL, asm.R(isa.EAX), asm.Imm(6)) // 8 samples * 8 bytes
	b.I(isa.MOV, asm.R(isa.EBX), asm.ImmSym("in", 0))
	b.I(isa.ADD, asm.R(isa.EBX), asm.R(isa.EAX))
	b.I(isa.MOV, asm.R(isa.ECX), asm.ImmSym("out", 0))
	b.I(isa.ADD, asm.R(isa.ECX), asm.R(isa.EAX))
	b.I(isa.PUSH, asm.R(isa.EBP))
	emit.Call(b, "fpIirBlock", asm.ImmSym("state", 0), asm.R(isa.EBX),
		asm.R(isa.ECX), asm.Imm(iirBlockLen))
	b.I(isa.POP, asm.R(isa.EBP))
	b.I(isa.INC, asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.EBP), asm.Imm(iirBlocks))
	b.J(isa.JL, "blk")
	b.I(isa.PROFOFF)
	b.I(isa.HALT)
	return b.Link()
}

// buildIirMMX: the MMX library processes Q15 blocks of 8 per call; the
// data is 16-bit end to end (no conversion overhead), which with the
// SIMD MACs is why iir.mmx is the best-speedup filter kernel in Table 3.
func buildIirMMX() (*asm.Program, error) {
	b := asm.NewBuilder("iir.mmx")
	w := newIirWorkload()
	q := dsp.NewIIRQ15(w.b, w.a)
	bq, aq := q.Coefs()
	nbPad := (len(bq) + 3) &^ 3
	naPad := (len(aq) + 3) &^ 3
	bPad := make([]int16, nbPad)
	copy(bPad, bq)
	aPad := make([]int16, naPad)
	copy(aPad, aq)

	mmxlib.EmitIirBlockQ15(b)
	b.Dwords("state", []int32{int32(nbPad), int32(naPad), int32(q.FracBits()),
		int32(1) << (q.FracBits() - 1)})
	b.Words("state.b", bPad)
	b.Words("state.a", aPad)
	b.Words("state.xh", make([]int16, nbPad))
	b.Words("state.yh", make([]int16, naPad))
	b.Words("in", newIirWorkload().inQ)
	b.Reserve("out", 2*iirSamples)

	b.Entry()
	b.Proc("main")
	b.I(isa.PROFON)
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(0))
	b.Label("blk")
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EBP))
	b.I(isa.SHL, asm.R(isa.EAX), asm.Imm(4)) // 8 samples * 2 bytes
	b.I(isa.MOV, asm.R(isa.EBX), asm.ImmSym("in", 0))
	b.I(isa.ADD, asm.R(isa.EBX), asm.R(isa.EAX))
	b.I(isa.MOV, asm.R(isa.ECX), asm.ImmSym("out", 0))
	b.I(isa.ADD, asm.R(isa.ECX), asm.R(isa.EAX))
	b.I(isa.PUSH, asm.R(isa.EBP))
	emit.Call(b, "nsIir", asm.ImmSym("state", 0), asm.R(isa.EBX),
		asm.R(isa.ECX), asm.Imm(iirBlockLen))
	b.I(isa.POP, asm.R(isa.EBP))
	b.I(isa.INC, asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.EBP), asm.Imm(iirBlocks))
	b.J(isa.JL, "blk")
	b.I(isa.EMMS)
	b.I(isa.PROFOFF)
	b.I(isa.HALT)
	return b.Link()
}
