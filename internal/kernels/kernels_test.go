package kernels

import (
	"testing"

	"mmxdsp/internal/core"
)

func TestFIRShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload")
	}
	rc := runPair(t, FIR(), core.VersionC, core.VersionMMX)
	rf := runPair(t, FIR(), core.VersionFP, core.VersionMMX)
	t.Logf("fir.c/mmx: %+v", rc)
	t.Logf("fir.fp/mmx: %+v", rf)
	// Paper: fir.c 1.57, fir.fp 1.34; MMX wins but modestly, and the FP
	// library sits between the two.
	if rc.Speedup < 1.1 || rc.Speedup > 2.6 {
		t.Errorf("fir.c/mmx speedup = %.2f, want ~1.57 (band 1.1..2.6)", rc.Speedup)
	}
	if rf.Speedup < 1.0 || rf.Speedup > 2.2 {
		t.Errorf("fir.fp/mmx speedup = %.2f, want ~1.34 (band 1.0..2.2)", rf.Speedup)
	}
	if rf.Speedup >= rc.Speedup {
		t.Errorf("fp speedup %.2f must be below c speedup %.2f", rf.Speedup, rc.Speedup)
	}
	if rc.Static >= 1 {
		t.Errorf("fir static ratio %.2f: MMX code must be bigger", rc.Static)
	}
}

func TestIIRShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload")
	}
	rc := runPair(t, IIR(), core.VersionC, core.VersionMMX)
	rf := runPair(t, IIR(), core.VersionFP, core.VersionMMX)
	t.Logf("iir.c/mmx: %+v", rc)
	t.Logf("iir.fp/mmx: %+v", rf)
	// Paper: iir.c 2.55, iir.fp 1.71.
	if rc.Speedup < 1.7 || rc.Speedup > 4.0 {
		t.Errorf("iir.c/mmx speedup = %.2f, want ~2.55 (band 1.7..4.0)", rc.Speedup)
	}
	if rf.Speedup < 1.2 || rf.Speedup > 2.8 {
		t.Errorf("iir.fp/mmx speedup = %.2f, want ~1.71 (band 1.2..2.8)", rf.Speedup)
	}
	if rf.Speedup >= rc.Speedup {
		t.Errorf("fp speedup %.2f must be below c speedup %.2f", rf.Speedup, rc.Speedup)
	}
}

func TestFFTShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload")
	}
	rc := runPair(t, FFT(), core.VersionC, core.VersionMMX)
	rf := runPair(t, FFT(), core.VersionFP, core.VersionMMX)
	t.Logf("fft.c/mmx: %+v", rc)
	t.Logf("fft.fp/mmx: %+v", rf)
	// Paper: fft.c 1.98, fft.fp 1.25. The crucial shape: the hybrid MMX
	// FFT beats even the hand-optimized FP library, and the C version
	// trails both.
	if rc.Speedup < 1.4 || rc.Speedup > 3.0 {
		t.Errorf("fft.c/mmx speedup = %.2f, want ~1.98 (band 1.4..3.0)", rc.Speedup)
	}
	if rf.Speedup < 1.0 || rf.Speedup > 1.8 {
		t.Errorf("fft.fp/mmx speedup = %.2f, want ~1.25 (band 1.0..1.8)", rf.Speedup)
	}
	if rf.Speedup >= rc.Speedup {
		t.Errorf("fp speedup %.2f must be below c speedup %.2f", rf.Speedup, rc.Speedup)
	}
}

func TestKernelMMXPercentages(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload")
	}
	// Table 2 shape: matvec.mmx is almost all MMX (91.6%), iir.mmx is
	// mostly MMX (71.2%), fir.mmx moderate (20.3%), fft.mmx tiny (4.69%).
	pct := map[string]float64{}
	for _, bm := range Benchmarks() {
		if bm.Version != core.VersionMMX {
			continue
		}
		r, err := core.Run(bm, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		pct[bm.Base] = r.Report.PercentMMX()
		t.Logf("%s.mmx %%MMX = %.1f", bm.Base, r.Report.PercentMMX())
	}
	if pct["matvec"] < 60 {
		t.Errorf("matvec %%MMX = %.1f, want high (paper 91.6)", pct["matvec"])
	}
	if pct["iir"] < 35 {
		t.Errorf("iir %%MMX = %.1f, want substantial (paper 71.2)", pct["iir"])
	}
	if pct["fft"] > 15 {
		t.Errorf("fft %%MMX = %.1f, want small (paper 4.69, hybrid strategy)", pct["fft"])
	}
	if !(pct["fft"] < pct["fir"] && pct["fir"] < pct["matvec"]) {
		t.Errorf("ordering fft < fir < matvec violated: %+v", pct)
	}
}

func TestBenchmarksRegistryComplete(t *testing.T) {
	names := map[string]bool{}
	for _, bm := range Benchmarks() {
		names[bm.Name()] = true
		if bm.Kind != core.KindKernel {
			t.Errorf("%s kind = %q", bm.Name(), bm.Kind)
		}
		if bm.Build == nil || bm.Check == nil {
			t.Errorf("%s missing Build or Check", bm.Name())
		}
	}
	for _, want := range programNames {
		if !names[want] {
			t.Errorf("registry missing %s", want)
		}
	}
	if len(names) != len(programNames) {
		t.Errorf("registry has %d programs, want %d", len(names), len(programNames))
	}
}
