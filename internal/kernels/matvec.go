package kernels

import (
	"mmxdsp/internal/asm"
	"mmxdsp/internal/core"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/mmxlib"
	"mmxdsp/internal/synth"
	"mmxdsp/internal/vm"
)

// Paper workload: "Matrix-vector multiplication of a 512x512 matrix with a
// vector of length 512. Dot product on two vectors of length 512." All
// versions use 16-bit fixed-point data (there is no FP version, matching
// the paper: "There is no hand-optimized floating-point version for the
// vector arithmetic because it uses only integer data").
const (
	mvRows = 512
	mvCols = 512
	mvVecN = 512
)

// matVecWorkload generates the shared deterministic data. Entries are
// bounded so every row accumulator fits a 32-bit register.
type matVecWorkload struct {
	mat, vec, dx, dy []int16
}

func newMatVecWorkload() matVecWorkload {
	r := synth.NewRand(0xA11CE)
	w := matVecWorkload{
		mat: make([]int16, mvRows*mvCols),
		vec: make([]int16, mvCols),
		dx:  make([]int16, mvVecN),
		dy:  make([]int16, mvVecN),
	}
	for i := range w.mat {
		w.mat[i] = int16(r.Intn(2048) - 1024)
	}
	for i := range w.vec {
		w.vec[i] = int16(r.Intn(2048) - 1024)
	}
	for i := range w.dx {
		w.dx[i] = int16(r.Intn(2048) - 1024)
		w.dy[i] = int16(r.Intn(2048) - 1024)
	}
	return w
}

func (w matVecWorkload) expected() (rows []int32, dot int32) {
	rows = make([]int32, mvRows)
	for r := 0; r < mvRows; r++ {
		var acc int64
		for c := 0; c < mvCols; c++ {
			acc += int64(w.mat[r*mvCols+c]) * int64(w.vec[c])
		}
		rows[r] = int32(acc)
	}
	var d int64
	for i := range w.dx {
		d += int64(w.dx[i]) * int64(w.dy[i])
	}
	return rows, int32(d)
}

func (w matVecWorkload) place(b *asm.Builder) {
	b.Words("mat", w.mat)
	b.Words("vec", w.vec)
	b.Words("dx", w.dx)
	b.Words("dy", w.dy)
	b.Reserve("rowout", 4*mvRows)
	b.Reserve("dotout", 8)
}

func (w matVecWorkload) check(c *vm.CPU, context string) error {
	rows, dot := w.expected()
	if err := expectInt32s(c, "rowout", rows, context); err != nil {
		return err
	}
	return expectInt32s(c, "dotout", []int32{dot}, context)
}

// MatVec returns the matvec.c and matvec.mmx benchmarks.
func MatVec() []core.Benchmark {
	descr := "512x512 matrix-vector multiply and length-512 dot product, 16-bit data"
	return []core.Benchmark{
		{
			Base: "matvec", Version: core.VersionC, Kind: core.KindKernel, Descr: descr,
			Build: buildMatVecC,
			Check: func(c *vm.CPU) error { return newMatVecWorkload().check(c, "matvec.c") },
		},
		{
			Base: "matvec", Version: core.VersionMMX, Kind: core.KindKernel, Descr: descr,
			Build: buildMatVecMMX,
			Check: func(c *vm.CPU) error { return newMatVecWorkload().check(c, "matvec.mmx") },
		},
	}
}

// buildMatVecC is the compiled-C-style scalar version: one imul per
// element, the paper's §4.1 reason for the superlinear MMX speedup
// (imul takes 10 cycles; pmaddwd does two multiplies in 3).
func buildMatVecC() (*asm.Program, error) {
	b := asm.NewBuilder("matvec.c")
	w := newMatVecWorkload()
	w.place(b)

	b.Proc("main")
	b.I(isa.PROFON)
	emit.Call(b, "matvec")
	emit.Call(b, "dotprod")
	b.I(isa.PROFOFF)
	b.I(isa.HALT)

	b.Proc("matvec")
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(0)) // row
	b.I(isa.MOV, asm.R(isa.ESI), asm.ImmSym("mat", 0))
	b.Label("row")
	b.I(isa.MOV, asm.R(isa.EDI), asm.Imm(0)) // acc
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0)) // col
	b.Label("col")
	b.I(isa.MOVSXW, asm.R(isa.EAX), asm.MemIdx(isa.SizeW, isa.ESI, isa.ECX, 2, 0))
	b.I(isa.MOVSXW, asm.R(isa.EDX), asm.SymIdx(isa.SizeW, "vec", isa.ECX, 2, 0))
	b.I(isa.IMUL, asm.R(isa.EAX), asm.R(isa.EDX))
	b.I(isa.ADD, asm.R(isa.EDI), asm.R(isa.EAX))
	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(mvCols))
	b.J(isa.JL, "col")
	b.I(isa.MOV, asm.SymIdx(isa.SizeD, "rowout", isa.EBP, 4, 0), asm.R(isa.EDI))
	b.I(isa.ADD, asm.R(isa.ESI), asm.Imm(2*mvCols))
	b.I(isa.INC, asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.EBP), asm.Imm(mvRows))
	b.J(isa.JL, "row")
	b.Ret()

	b.Proc("dotprod")
	b.I(isa.MOV, asm.R(isa.EDI), asm.Imm(0))
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
	b.Label("dot")
	b.I(isa.MOVSXW, asm.R(isa.EAX), asm.SymIdx(isa.SizeW, "dx", isa.ECX, 2, 0))
	b.I(isa.MOVSXW, asm.R(isa.EDX), asm.SymIdx(isa.SizeW, "dy", isa.ECX, 2, 0))
	b.I(isa.IMUL, asm.R(isa.EAX), asm.R(isa.EDX))
	b.I(isa.ADD, asm.R(isa.EDI), asm.R(isa.EAX))
	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(mvVecN))
	b.J(isa.JL, "dot")
	b.I(isa.MOV, asm.Sym(isa.SizeD, "dotout", 0), asm.R(isa.EDI))
	b.Ret()

	return b.Link()
}

// buildMatVecMMX calls the MMX library: nsMatVec16 plus nsDotProd16.
func buildMatVecMMX() (*asm.Program, error) {
	b := asm.NewBuilder("matvec.mmx")
	w := newMatVecWorkload()
	w.place(b)
	mmxlib.EmitMatVec16(b)
	mmxlib.EmitDotProd16(b)

	b.Entry()
	b.Proc("main")
	b.I(isa.PROFON)
	emit.Call(b, "nsMatVec16", asm.ImmSym("mat", 0), asm.Imm(mvRows),
		asm.Imm(mvCols), asm.ImmSym("vec", 0), asm.ImmSym("rowout", 0))
	emit.Call(b, "nsDotProd16", asm.ImmSym("dx", 0), asm.ImmSym("dy", 0), asm.Imm(mvVecN))
	b.I(isa.MOV, asm.Sym(isa.SizeD, "dotout", 0), asm.R(isa.EAX))
	b.I(isa.EMMS)
	b.I(isa.PROFOFF)
	b.I(isa.HALT)

	return b.Link()
}
