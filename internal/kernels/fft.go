package kernels

import (
	"math"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/core"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/fplib"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/mmxlib"
	"mmxdsp/internal/synth"
	"mmxdsp/internal/vm"
)

// Paper workload: "4096 point, in-place FFT". The non-MMX versions compute
// in 32-bit floating point; the MMX version takes 16-bit fixed-point data
// and internally converts to float (the hybrid strategy of the SPL 4.0
// library the paper dissects in §4.1).
const fftN = 4096

type fftWorkload struct {
	re32, im32 []float32
	reQ, imQ   []int16
}

func newFftWorkload() fftWorkload {
	sig := synth.MultiTone(fftN, 0xFF7, 0.05, 0.17, 0.31)
	w := fftWorkload{
		re32: make([]float32, fftN),
		im32: make([]float32, fftN),
	}
	for i, v := range sig {
		w.re32[i] = float32(0.5 * v)
	}
	w.reQ = make([]int16, fftN)
	w.imQ = make([]int16, fftN)
	for i := range w.re32 {
		w.reQ[i] = synth.ToQ15([]float64{float64(w.re32[i])})[0]
	}
	return w
}

// runtimeTwiddles mirrors fft.c's in-region table initialization with
// fsin/fcos.
func runtimeTwiddles(n int) (cos, sin []float32) {
	cos = make([]float32, n/2)
	sin = make([]float32, n/2)
	c := -2 * math.Pi / float64(n)
	for k := 0; k < n/2; k++ {
		ang := float64(k) * c
		cos[k] = float32(math.Cos(ang))
		sin[k] = float32(math.Sin(ang))
	}
	return cos, sin
}

func (w fftWorkload) expectedC() (re, im []float32) {
	re = append([]float32{}, w.re32...)
	im = append([]float32{}, w.im32...)
	cos, sin := runtimeTwiddles(fftN)
	fplib.ModelFftF32(re, im, cos, sin, true)
	return re, im
}

func (w fftWorkload) expectedFP() (re, im []float32) {
	re = append([]float32{}, w.re32...)
	im = append([]float32{}, w.im32...)
	cos, sin := fplib.TwiddleTablesF32(fftN)
	fplib.ModelFftF32(re, im, cos, sin, true)
	return re, im
}

func (w fftWorkload) expectedMMX() (re, im []int16) {
	reF := make([]float32, fftN)
	imF := make([]float32, fftN)
	for i := range w.reQ {
		reF[i] = float32(w.reQ[i])
		imF[i] = float32(w.imQ[i])
	}
	cos, sin := fplib.TwiddleTablesF32(fftN)
	fplib.ModelFftF32(reF, imF, cos, sin, false)
	re = make([]int16, fftN)
	im = make([]int16, fftN)
	inv := float64(float32(1.0 / fftN))
	for i := range reF {
		re[i] = fistRound(float64(reF[i]) * inv)
		im[i] = fistRound(float64(imF[i]) * inv)
	}
	return re, im
}

func fistRound(v float64) int16 {
	r := math.RoundToEven(v)
	if r > 32767 {
		return 32767
	}
	if r < -32768 {
		return -32768
	}
	return int16(r)
}

func checkFftF32(c *vm.CPU, wantRe, wantIm []float32, context string) error {
	if err := checkF32(c, "re", wantRe, 0, context); err != nil {
		return err
	}
	return checkF32(c, "im", wantIm, 0, context)
}

// FFT returns the fft.c, fft.fp and fft.mmx benchmarks.
func FFT() []core.Benchmark {
	descr := "4096-point in-place radix-2 FFT"
	return []core.Benchmark{
		{
			Base: "fft", Version: core.VersionC, Kind: core.KindKernel, Descr: descr,
			Build: buildFftC,
			Check: func(c *vm.CPU) error {
				re, im := newFftWorkload().expectedC()
				return checkFftF32(c, re, im, "fft.c")
			},
		},
		{
			Base: "fft", Version: core.VersionFP, Kind: core.KindKernel, Descr: descr,
			Build: buildFftFP,
			Check: func(c *vm.CPU) error {
				re, im := newFftWorkload().expectedFP()
				return checkFftF32(c, re, im, "fft.fp")
			},
		},
		{
			Base: "fft", Version: core.VersionMMX, Kind: core.KindKernel, Descr: descr,
			Build: buildFftMMX,
			Check: func(c *vm.CPU) error {
				re, im := newFftWorkload().expectedMMX()
				if err := expectInt16s(c, "re", re, "fft.mmx"); err != nil {
					return err
				}
				return expectInt16s(c, "im", im, "fft.mmx")
			},
		},
	}
}

// buildFftC: compiled C — the butterfly core is the compiler-with-trig
// preset: memory temporaries, unhoisted division, and fsin/fcos twiddle
// computation at the top of every stage (the textbook C FFT's loop
// structure; the twiddle values match runtimeTwiddles exactly).
func buildFftC() (*asm.Program, error) {
	b := asm.NewBuilder("fft.c")
	w := newFftWorkload()
	fplib.EmitFftCore(b, "fft_core", fplib.PresetCompiledTrig())
	b.Floats("re", w.re32)
	b.Floats("im", w.im32)
	b.Reserve("cos", 4*fftN/2)
	b.Reserve("sin", 4*fftN/2)
	b.Dwords("br", fplib.BitReverseSwaps(fftN))
	swaps := len(fplib.BitReverseSwaps(fftN)) / 2

	b.Entry()
	b.Proc("main")
	b.I(isa.PROFON)
	emit.Call(b, "fft_core", asm.ImmSym("re", 0), asm.ImmSym("im", 0), asm.Imm(fftN),
		asm.ImmSym("cos", 0), asm.ImmSym("sin", 0), asm.ImmSym("br", 0),
		asm.Imm(int64(swaps)))
	b.I(isa.PROFOFF)
	b.I(isa.HALT)
	return b.Link()
}

// buildFftFP: precomputed tables, FP library core.
func buildFftFP() (*asm.Program, error) {
	b := asm.NewBuilder("fft.fp")
	w := newFftWorkload()
	fplib.EmitFftF32(b)
	cos, sin := fplib.TwiddleTablesF32(fftN)
	swaps := fplib.BitReverseSwaps(fftN)
	b.Floats("re", w.re32)
	b.Floats("im", w.im32)
	b.Floats("cos", cos)
	b.Floats("sin", sin)
	b.Dwords("br", swaps)

	b.Entry()
	b.Proc("main")
	b.I(isa.PROFON)
	emit.Call(b, "fpFft", asm.ImmSym("re", 0), asm.ImmSym("im", 0), asm.Imm(fftN),
		asm.ImmSym("cos", 0), asm.ImmSym("sin", 0), asm.ImmSym("br", 0),
		asm.Imm(int64(len(swaps)/2)))
	b.I(isa.PROFOFF)
	b.I(isa.HALT)
	return b.Link()
}

// buildFftMMX: Q15 data through the hybrid MMX library FFT.
func buildFftMMX() (*asm.Program, error) {
	b := asm.NewBuilder("fft.mmx")
	w := newFftWorkload()
	mmxlib.EmitCvtI16ToF32(b)
	mmxlib.EmitCvtF32ToI16(b)
	mmxlib.EmitFftHybrid(b)
	fplib.EmitFftCore(b, "fftCoreFast", fplib.PresetFast())
	mmxlib.CvtScratch(b)
	cos, sin := fplib.TwiddleTablesF32(fftN)
	swaps := fplib.BitReverseSwaps(fftN)
	b.Words("re", w.reQ)
	b.Words("im", w.imQ)
	b.Reserve("reF", 4*fftN)
	b.Reserve("imF", 4*fftN)
	b.Reserve("stage", 4*fftN)
	b.Floats("cos", cos)
	b.Floats("sin", sin)
	b.Dwords("br", swaps)

	b.Entry()
	b.Proc("main")
	b.I(isa.PROFON)
	emit.Call(b, "nsFft",
		asm.ImmSym("re", 0), asm.ImmSym("im", 0), asm.Imm(fftN),
		asm.ImmSym("reF", 0), asm.ImmSym("imF", 0),
		asm.ImmSym("cos", 0), asm.ImmSym("sin", 0),
		asm.ImmSym("br", 0), asm.Imm(int64(len(swaps)/2)),
		asm.Imm(int64(math.Float32bits(1.0/fftN))), asm.ImmSym("stage", 0))
	b.I(isa.PROFOFF)
	b.I(isa.HALT)
	return b.Link()
}
