package kernels

import (
	"math"
	"testing"
)

// The paper quantifies each kernel's fixed-point precision loss; these
// tests pin the same properties on our mirrored pipelines.

func TestFirPrecisionOrder1e4(t *testing.T) {
	// "the FIR filter suffers little loss of precision in the MMX
	// fixed-point version (order 10^-4) because the error loss is not
	// cumulative at any point."
	w := newFirWorkload()
	f := w.expectedFloat()
	m := w.expectedMMX()
	var worst float64
	for i := range f {
		if d := math.Abs(float64(f[i] - m[i])); d > worst {
			worst = d
		}
	}
	if worst > 1e-3 {
		t.Errorf("worst fir.mmx deviation = %g, want order 1e-4 (allowing 1e-3)", worst)
	}
	if worst == 0 {
		t.Error("fixed-point version is bit-identical to float; quantization missing?")
	}
	t.Logf("fir.mmx worst deviation from float: %.2e", worst)
}

func TestFftPrecisionOrder1e2Relative(t *testing.T) {
	// "The limited use of MMX does provide a speedup over the
	// floating-point version with little loss of precision (order 10^-2)
	// using the 16-bit data."
	w := newFftWorkload()
	fr, fi := w.expectedFP() // float32 spectrum of the float input (value units)
	mr, mi := w.expectedMMX()
	// mr holds X/N in Q15 counts (input was quantized by 32768); bring the
	// float spectrum into the same counts: fr * 32768 / N.
	const toCounts = 32768.0 / fftN
	var peak, worst float64
	for k := range fr {
		ref := math.Hypot(float64(fr[k]), float64(fi[k])) * toCounts
		if ref > peak {
			peak = ref
		}
		dr := math.Abs(float64(mr[k]) - float64(fr[k])*toCounts)
		di := math.Abs(float64(mi[k]) - float64(fi[k])*toCounts)
		if d := math.Max(dr, di); d > worst {
			worst = d
		}
	}
	rel := worst / peak
	if rel > 2e-2 {
		t.Errorf("fft.mmx relative deviation = %g, want order 1e-2", rel)
	}
	t.Logf("fft.mmx worst relative deviation: %.2e", rel)
}

func TestIirQuarterScaleTracksFloat(t *testing.T) {
	// The paper's iir.mmx "becomes unstable" at full scale; at the
	// benchmark's quarter-scale drive the fixed-point output must track
	// the float output closely enough to be the same filter.
	w := newIirWorkload()
	f := w.expectedFloat()
	m := w.expectedMMX()
	var sumSq, errSq float64
	for i := range f {
		got := float64(m[i]) / 32768
		sumSq += f[i] * f[i]
		errSq += (f[i] - got) * (f[i] - got)
	}
	snr := 10 * math.Log10(sumSq/errSq)
	if snr < 30 {
		t.Errorf("iir.mmx output SNR = %.1f dB vs float, want >= 30", snr)
	}
	t.Logf("iir.mmx output SNR vs float: %.1f dB", snr)
}

func TestMatvecExactness(t *testing.T) {
	// Integer data: the MMX version is exact (both versions validate
	// against the same expected values); the workload must be non-trivial.
	w := newMatVecWorkload()
	rows, dot := w.expected()
	nonzero := 0
	for _, v := range rows {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < mvRows/2 {
		t.Errorf("only %d nonzero row results; workload degenerate", nonzero)
	}
	if dot == 0 {
		t.Error("dot product is zero; workload degenerate")
	}
}
