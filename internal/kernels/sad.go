package kernels

import (
	"mmxdsp/internal/asm"
	"mmxdsp/internal/core"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/imgproc"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/mmxlib"
	"mmxdsp/internal/synth"
	"mmxdsp/internal/vm"
)

// Motion-estimation microbenchmark: full-search block matching by sum of
// absolute differences, the video-encoding kernel MMX's saturating byte
// arithmetic targets. Eight 16×16 blocks of the current frame are each
// matched against a ±4-pixel search window in the previous frame (81
// candidates per block); the scalar version computes |a-b| with a compare
// and branch per pixel, the MMX version with the psubusb/por composition
// in nsSAD16 (there is no FP version: the data is 8-bit integer).
const (
	sadPrevW   = 72 // previous frame width (stride) and height:
	sadPrevH   = 40 // a 64×32 current-frame area plus the ±4 search border
	sadRange   = 4  // search displacement in [-4, 4] both axes
	sadBlocksX = 4
	sadBlocksY = 2
	sadBlocks  = sadBlocksX * sadBlocksY
)

// sadOrig returns the index in prev of block b's zero-displacement
// candidate (its top-left corner).
func sadOrig(b int) int {
	x0 := sadRange + 16*(b%sadBlocksX)
	y0 := sadRange + 16*(b/sadBlocksX)
	return y0*sadPrevW + x0
}

// sadWorkload is the deterministic frame pair: a random previous frame and
// a current frame synthesized from it by per-block translation plus small
// noise, so every search window has one meaningful minimum. Current-frame
// blocks are stored contiguously, 256 bytes each, row stride 16.
type sadWorkload struct {
	prev, cur []uint8
}

func newSADWorkload() sadWorkload {
	r := synth.NewRand(0x5AD16)
	w := sadWorkload{
		prev: make([]uint8, sadPrevW*sadPrevH),
		cur:  make([]uint8, sadBlocks*256),
	}
	for i := range w.prev {
		w.prev[i] = uint8(r.Intn(256))
	}
	for b := 0; b < sadBlocks; b++ {
		mdx := r.Intn(2*sadRange+1) - sadRange
		mdy := r.Intn(2*sadRange+1) - sadRange
		orig := sadOrig(b)
		for y := 0; y < 16; y++ {
			for x := 0; x < 16; x++ {
				v := int(w.prev[orig+(y+mdy)*sadPrevW+x+mdx]) + r.Intn(5) - 2
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				w.cur[b*256+y*16+x] = uint8(v)
			}
		}
	}
	return w
}

// expected returns the (dx, dy, sad) triplet per block from the reference
// full search.
func (w sadWorkload) expected() []int32 {
	out := make([]int32, 0, 3*sadBlocks)
	for b := 0; b < sadBlocks; b++ {
		dx, dy, sad := imgproc.MotionSearch(
			w.prev, sadPrevW, sadOrig(b), w.cur[b*256:], 16, sadRange)
		out = append(out, int32(dx), int32(dy), int32(sad))
	}
	return out
}

func (w sadWorkload) place(b *asm.Builder) {
	b.Bytes("prev", w.prev)
	b.Bytes("cur", w.cur)
	origs := make([]int32, sadBlocks)
	for i := range origs {
		origs[i] = int32(sadOrig(i))
	}
	b.Dwords("borig", origs)
	b.Reserve("mv", 4*3*sadBlocks)
	// Spilled driver loop state (block, dy, dx, incumbent best).
	for _, s := range []string{"i_blk", "i_dy", "i_dx", "bestsad", "bestdx", "bestdy"} {
		b.Reserve(s, 4)
	}
}

func (w sadWorkload) check(c *vm.CPU, context string) error {
	return expectInt32s(c, "mv", w.expected(), context)
}

// SAD returns the sad.c and sad.mmx benchmarks.
func SAD() []core.Benchmark {
	descr := "16x16 full-search motion estimation, 8 blocks, +/-4 pixel search"
	return []core.Benchmark{
		{
			Base: "sad", Version: core.VersionC, Kind: core.KindKernel, Descr: descr,
			Build: buildSADC,
			Check: func(c *vm.CPU) error { return newSADWorkload().check(c, "sad.c") },
		},
		{
			Base: "sad", Version: core.VersionMMX, Kind: core.KindKernel, Descr: descr,
			Build: buildSADMMX,
			Check: func(c *vm.CPU) error { return newSADWorkload().check(c, "sad.mmx") },
		},
	}
}

// emitSADDriver emits the search loops shared by both versions: for every
// block and candidate displacement it points ESI at the candidate and EDI
// at the current block, invokes sad (which returns the SAD in EAX), and
// keeps the first strictly-smallest candidate — the rarely-taken
// "new minimum" branch that makes this kernel branch-biased.
func emitSADDriver(b *asm.Builder, sad func()) {
	st := func(sym string, r isa.Reg) { b.I(isa.MOV, asm.Sym(isa.SizeD, sym, 0), asm.R(r)) }
	ld := func(r isa.Reg, sym string) { b.I(isa.MOV, asm.R(r), asm.Sym(isa.SizeD, sym, 0)) }

	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	st("i_blk", isa.EAX)
	b.Label("blk")
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0x7FFFFFFF))
	st("bestsad", isa.EAX)
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(-sadRange))
	st("i_dy", isa.EAX)
	b.Label("dy")
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(-sadRange))
	st("i_dx", isa.EAX)
	b.Label("dx")
	// ESI = prev + borig[blk] + dy*stride + dx.
	ld(isa.EAX, "i_dy")
	b.I(isa.IMUL, asm.R(isa.EAX), asm.Imm(sadPrevW))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Sym(isa.SizeD, "i_dx", 0))
	ld(isa.ECX, "i_blk")
	b.I(isa.ADD, asm.R(isa.EAX), asm.SymIdx(isa.SizeD, "borig", isa.ECX, 4, 0))
	b.I(isa.MOV, asm.R(isa.ESI), asm.ImmSym("prev", 0))
	b.I(isa.ADD, asm.R(isa.ESI), asm.R(isa.EAX))
	// EDI = cur + 256*blk.
	ld(isa.EDI, "i_blk")
	b.I(isa.SHL, asm.R(isa.EDI), asm.Imm(8))
	b.I(isa.MOV, asm.R(isa.EAX), asm.ImmSym("cur", 0))
	b.I(isa.ADD, asm.R(isa.EDI), asm.R(isa.EAX))
	sad()
	b.I(isa.CMP, asm.R(isa.EAX), asm.Sym(isa.SizeD, "bestsad", 0))
	b.J(isa.JGE, "keep")
	st("bestsad", isa.EAX)
	ld(isa.ECX, "i_dx")
	st("bestdx", isa.ECX)
	ld(isa.ECX, "i_dy")
	st("bestdy", isa.ECX)
	b.Label("keep")
	ld(isa.EAX, "i_dx")
	b.I(isa.INC, asm.R(isa.EAX))
	st("i_dx", isa.EAX)
	b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(sadRange))
	b.J(isa.JLE, "dx")
	ld(isa.EAX, "i_dy")
	b.I(isa.INC, asm.R(isa.EAX))
	st("i_dy", isa.EAX)
	b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(sadRange))
	b.J(isa.JLE, "dy")
	// mv[3*blk] = (bestdx, bestdy, bestsad).
	ld(isa.ECX, "i_blk")
	b.I(isa.IMUL, asm.R(isa.ECX), asm.Imm(12))
	ld(isa.EAX, "bestdx")
	b.I(isa.MOV, asm.SymIdx(isa.SizeD, "mv", isa.ECX, 1, 0), asm.R(isa.EAX))
	ld(isa.EAX, "bestdy")
	b.I(isa.MOV, asm.SymIdx(isa.SizeD, "mv", isa.ECX, 1, 4), asm.R(isa.EAX))
	ld(isa.EAX, "bestsad")
	b.I(isa.MOV, asm.SymIdx(isa.SizeD, "mv", isa.ECX, 1, 8), asm.R(isa.EAX))
	ld(isa.EAX, "i_blk")
	b.I(isa.INC, asm.R(isa.EAX))
	st("i_blk", isa.EAX)
	b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(sadBlocks))
	b.J(isa.JL, "blk")
}

// buildSADC is the compiled-C-style version: one byte per iteration with a
// compare-and-branch absolute value, loop state spilled to memory.
func buildSADC() (*asm.Program, error) {
	b := asm.NewBuilder("sad.c")
	w := newSADWorkload()
	w.place(b)

	b.Proc("main")
	b.I(isa.PROFON)
	emitSADDriver(b, func() { emit.Call(b, "sad16") })
	b.I(isa.PROFOFF)
	b.I(isa.HALT)

	// sad16: scalar SAD of the 16×16 blocks at ESI (stride 72) and EDI
	// (stride 16), result in EAX.
	b.Proc("sad16")
	b.I(isa.MOV, asm.R(isa.EBX), asm.Imm(0)) // accumulator
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(0)) // row
	b.Label("row")
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0)) // column
	b.Label("col")
	b.I(isa.MOVZXB, asm.R(isa.EAX), asm.MemIdx(isa.SizeB, isa.ESI, isa.ECX, 1, 0))
	b.I(isa.MOVZXB, asm.R(isa.EDX), asm.MemIdx(isa.SizeB, isa.EDI, isa.ECX, 1, 0))
	b.I(isa.SUB, asm.R(isa.EAX), asm.R(isa.EDX))
	b.J(isa.JNS, "pos")
	b.I(isa.NEG, asm.R(isa.EAX))
	b.Label("pos")
	b.I(isa.ADD, asm.R(isa.EBX), asm.R(isa.EAX))
	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(16))
	b.J(isa.JL, "col")
	b.I(isa.ADD, asm.R(isa.ESI), asm.Imm(sadPrevW))
	b.I(isa.ADD, asm.R(isa.EDI), asm.Imm(16))
	b.I(isa.INC, asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.EBP), asm.Imm(16))
	b.J(isa.JL, "row")
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EBX))
	b.Ret()

	return b.Link()
}

// buildSADMMX runs the same search loops over the nsSAD16 library call:
// 8 pixels per quadword, |a-b| by saturating-subtract both ways.
func buildSADMMX() (*asm.Program, error) {
	b := asm.NewBuilder("sad.mmx")
	w := newSADWorkload()
	w.place(b)
	mmxlib.EmitSAD16(b)

	b.Entry()
	b.Proc("main")
	b.I(isa.PROFON)
	emitSADDriver(b, func() {
		emit.Call(b, "nsSAD16",
			asm.R(isa.ESI), asm.Imm(sadPrevW), asm.R(isa.EDI), asm.Imm(16))
	})
	b.I(isa.EMMS)
	b.I(isa.PROFOFF)
	b.I(isa.HALT)

	return b.Link()
}
