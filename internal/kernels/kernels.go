// Package kernels builds the paper's four DSP kernel benchmarks — fft,
// fir, iir and matvec — in their C-only, FP-library and MMX-library
// versions, with the exact workloads of Table 1: a 4096-point in-place
// FFT, a 35-tap low-pass FIR fed one sample at a time, an eighth-order
// Butterworth bandpass IIR processing blocks of eight samples, and a
// 512x512 matrix-vector multiply plus a length-512 dot product. A fifth
// kernel, sad, extends the suite with the motion-estimation workload MMX's
// saturating byte arithmetic targets: full-search 16×16 block matching by
// sum of absolute differences.
//
// Every program brackets its computation core with profon/profoff and is
// validated against the pure-Go reference implementations in internal/dsp.
package kernels

import (
	"fmt"

	"mmxdsp/internal/core"
	"mmxdsp/internal/vm"
)

// Benchmarks returns all kernel benchmark versions.
func Benchmarks() []core.Benchmark {
	out := []core.Benchmark{}
	out = append(out, MatVec()...)
	out = append(out, FIR()...)
	out = append(out, IIR()...)
	out = append(out, FFT()...)
	out = append(out, SAD()...)
	return out
}

// The per-family constructors live in their own files; this variable
// documents the full program list of Table 1.
var programNames = []string{
	"fft.c", "fft.fp", "fft.mmx",
	"fir.c", "fir.fp", "fir.mmx",
	"iir.c", "iir.fp", "iir.mmx",
	"matvec.c", "matvec.mmx",
	"sad.c", "sad.mmx",
}

// expectInt16s compares an int16 output region against a reference slice.
func expectInt16s(c *vm.CPU, sym string, want []int16, context string) error {
	got, ok := c.Mem.ReadInt16s(c.Prog.Addr(sym), len(want))
	if !ok {
		return fmt.Errorf("%s: cannot read %q", context, sym)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s: %s[%d] = %d, want %d", context, sym, i, got[i], want[i])
		}
	}
	return nil
}

// expectInt32s compares an int32 output region against a reference slice.
func expectInt32s(c *vm.CPU, sym string, want []int32, context string) error {
	got, ok := c.Mem.ReadInt32s(c.Prog.Addr(sym), len(want))
	if !ok {
		return fmt.Errorf("%s: cannot read %q", context, sym)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s: %s[%d] = %d, want %d", context, sym, i, got[i], want[i])
		}
	}
	return nil
}
