// Error-path coverage for ParseSource with position assertions: every
// parse-stage diagnostic must name the source (asm(<name>)) and the
// 1-based line it arose on, so a daemon operator reading a 400 from a
// submitted listing can find the offending line.
package asm_test

import (
	"fmt"
	"strings"
	"testing"

	"mmxdsp/internal/asm"
)

func TestParseSourceErrorLineInfo(t *testing.T) {
	cases := []struct {
		name string
		src  string
		line int    // expected 1-based line in the error
		want string // expected message fragment
	}{
		{
			name: "unknown mnemonic first line",
			src:  "frobnicate eax, 1",
			line: 1,
			want: `unknown mnemonic "frobnicate"`,
		},
		{
			name: "unknown mnemonic after blanks and comments",
			src:  "; header\n\nstart:\n\tmov eax, 1\n\tfrobnicate eax\n",
			line: 5,
			want: `unknown mnemonic "frobnicate"`,
		},
		{
			name: "duplicate label",
			src:  "loop:\n\tadd eax, 1\nloop:\n\thalt\n",
			line: 3,
			want: `duplicate label "loop"`,
		},
		{
			name: "duplicate label via proc",
			src:  ".proc main\n\thalt\nmain:\n\thalt\n",
			line: 3,
			want: `duplicate label "main"`,
		},
		{
			name: "duplicate data symbol",
			src:  ".words xs 1,2\n.words xs 3,4\n",
			line: 2,
			want: `duplicate data symbol "xs"`,
		},
		{
			name: "malformed operand",
			src:  "start:\n\tmov eax, @#$\n",
			line: 2,
			want: `bad operand "@#$"`,
		},
		{
			name: "malformed memory operand",
			src:  "\tmov eax, 1\n\tmov ebx, dword [eax*7]\n",
			line: 2,
			want: "bad scale",
		},
		{
			name: "unterminated memory operand",
			src:  "a:\nb:\nc:\n\tmov eax, dword [xs\n",
			line: 4,
			want: "unterminated memory operand",
		},
		{
			name: "empty operand",
			src:  "\tadd eax, ,\n",
			line: 1,
			want: "empty operand",
		},
		{
			name: "too many operands",
			src:  "one:\n\ttwo: add eax, ebx, ecx\n",
			line: 2,
			want: "too many operands",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := asm.ParseSource("prog", tc.src)
			if err == nil {
				t.Fatalf("ParseSource(%q) succeeded, want error", tc.src)
			}
			msg := err.Error()
			if wantPos := fmt.Sprintf("asm(prog): line %d:", tc.line); !strings.Contains(msg, wantPos) {
				t.Errorf("error %q does not carry position %q", msg, wantPos)
			}
			if !strings.Contains(msg, tc.want) {
				t.Errorf("error %q does not contain %q", msg, tc.want)
			}
		})
	}
}

// TestParseSourceErrorStopsAtFirst pins that parsing reports the earliest
// failing line, not a later or aggregated one.
func TestParseSourceErrorStopsAtFirst(t *testing.T) {
	src := "\tbogus1 eax\n\tbogus2 ebx\n"
	_, err := asm.ParseSource("prog", src)
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "line 1:") || !strings.Contains(err.Error(), "bogus1") {
		t.Errorf("error %q should report line 1 / bogus1 first", err)
	}
}
