// A textual front end for the macro-assembler. ParseSource accepts the
// syntax Program.Listing and isa.Inst.String render — labels,
// Intel-operand-order instructions, ';' comments, optional leading
// instruction indices — plus a handful of data directives, and drives the
// same Builder/Link pipeline the Go macro programs use. Listings of linked
// programs round-trip: ParseSource(p.Listing()) reproduces p's instruction
// stream exactly (data placement is not part of a listing).
package asm

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"mmxdsp/internal/isa"
)

// maxReserve bounds a single .reserve directive so hostile sources cannot
// request absurd memory images.
const maxReserve = 1 << 24

var opLookup = sync.OnceValue(func() map[string]isa.Op {
	m := make(map[string]isa.Op, isa.NumOps)
	for op := isa.Op(1); int(op) < isa.NumOps; op++ {
		m[op.Name()] = op
	}
	return m
})

var regLookup = sync.OnceValue(func() map[string]isa.Reg {
	m := make(map[string]isa.Reg, isa.NumRegs)
	for r := isa.Reg(1); int(r) < isa.NumRegs; r++ {
		m[r.String()] = r
	}
	return m
})

var sizeLookup = map[string]isa.Size{
	"byte": isa.SizeB, "word": isa.SizeW, "dword": isa.SizeD, "qword": isa.SizeQ,
}

// ParseSource assembles a textual program into a linked, executable
// Program. Lines hold one of:
//
//	label:              a code label (may be followed by an instruction)
//	op dst, src         an instruction in assembler syntax
//	.entry              mark the entry point (default: instruction 0)
//	.proc name          open a procedure extent (defines the label too)
//	.bytes name v,...   initialized data (decimal or 0x values)
//	.words name v,...
//	.dwords name v,...
//	.hex name 0a1b...   initialized data as one hex string (Program.Source)
//	.reserve name n     zero-initialized space
//
// ';' starts a comment; an optional leading decimal instruction index (as
// printed by Program.Listing) is ignored. Line-scoped errors are
// *SourceError values carrying 1-based line and column positions.
func ParseSource(name, src string) (*Program, error) {
	b := NewBuilder(name)
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(b, line); err != nil {
			return nil, &SourceError{
				File: name,
				Line: ln + 1,
				Col:  columnOf(raw, err),
				Err:  err,
			}
		}
	}
	return b.Link()
}

// SourceError is a parse failure pinned to a source position. Line and Col
// are 1-based; Col points at the offending token when the diagnostic names
// one, else at the first non-blank column of the statement.
type SourceError struct {
	File string // program name as passed to ParseSource
	Line int
	Col  int
	Err  error
}

func (e *SourceError) Error() string {
	return fmt.Sprintf("asm(%s): line %d:%d: %v", e.File, e.Line, e.Col, e.Err)
}

func (e *SourceError) Unwrap() error { return e.Err }

// columnOf locates the diagnostic's position in the raw source line: the
// first occurrence of the error's first quoted token, falling back to the
// statement's first non-blank byte. 1-based; 1 for blank lines (which
// never error anyway).
func columnOf(raw string, err error) int {
	if tok := quotedToken(err.Error()); tok != "" {
		if i := strings.Index(raw, tok); i >= 0 {
			return i + 1
		}
	}
	if i := strings.IndexFunc(raw, func(r rune) bool { return r != ' ' && r != '\t' }); i >= 0 {
		return i + 1
	}
	return 1
}

// quotedToken extracts the first Go-quoted ("%q") token from a diagnostic
// message, or "" when there is none.
func quotedToken(msg string) string {
	i := strings.IndexByte(msg, '"')
	if i < 0 {
		return ""
	}
	lit, err := strconv.QuotedPrefix(msg[i:])
	if err != nil {
		return ""
	}
	tok, err := strconv.Unquote(lit)
	if err != nil {
		return ""
	}
	return tok
}

func parseLine(b *Builder, line string) error {
	// Directives.
	if strings.HasPrefix(line, ".") {
		return parseDirective(b, line)
	}
	// Optional leading instruction index from a Listing.
	if first, rest, ok := strings.Cut(line, " "); ok && isInt(first) {
		line = strings.TrimSpace(rest)
	} else if isInt(line) {
		return fmt.Errorf("bare instruction index %q", line)
	}
	// Labels, possibly stacked before an instruction on the same line.
	for {
		i := strings.IndexByte(line, ':')
		if i < 0 || !isIdent(line[:i]) {
			break
		}
		// A ':' also appears in nothing else we parse, so this is a label.
		b.Label(line[:i])
		if len(b.errs) > 0 {
			return b.errs[len(b.errs)-1]
		}
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return nil
		}
	}
	return parseInst(b, line)
}

func parseDirective(b *Builder, line string) error {
	dir, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch dir {
	case ".entry":
		if rest != "" {
			return fmt.Errorf(".entry takes no operands")
		}
		b.Entry()
		return nil
	case ".proc":
		if !isIdent(rest) {
			return fmt.Errorf(".proc wants a name, got %q", rest)
		}
		b.Proc(rest)
	case ".bytes", ".words", ".dwords":
		name, vals, ok := strings.Cut(rest, " ")
		if !ok || !isIdent(name) {
			return fmt.Errorf("%s wants: %s name v,v,...", dir, dir)
		}
		nums, err := parseIntList(vals)
		if err != nil {
			return err
		}
		switch dir {
		case ".bytes":
			out := make([]byte, len(nums))
			for i, v := range nums {
				out[i] = byte(v)
			}
			b.Bytes(name, out)
		case ".words":
			out := make([]int16, len(nums))
			for i, v := range nums {
				out[i] = int16(v)
			}
			b.Words(name, out)
		case ".dwords":
			out := make([]int32, len(nums))
			for i, v := range nums {
				out[i] = int32(v)
			}
			b.Dwords(name, out)
		}
	case ".hex":
		name, hexText, ok := strings.Cut(rest, " ")
		hexText = strings.TrimSpace(hexText)
		if !ok || !isIdent(name) || hexText == "" {
			return fmt.Errorf(".hex wants: .hex name hexbytes")
		}
		if len(hexText) > 2*maxReserve {
			return fmt.Errorf(".hex data %d bytes exceeds %d", len(hexText)/2, maxReserve)
		}
		data, err := hex.DecodeString(hexText)
		if err != nil {
			return fmt.Errorf("bad .hex data: %v", err)
		}
		b.Bytes(name, data)
	case ".reserve":
		name, szText, ok := strings.Cut(rest, " ")
		if !ok || !isIdent(name) {
			return fmt.Errorf(".reserve wants: .reserve name size")
		}
		sz, err := strconv.ParseInt(strings.TrimSpace(szText), 0, 64)
		if err != nil || sz < 0 || sz > maxReserve {
			return fmt.Errorf("bad .reserve size %q", szText)
		}
		b.Reserve(name, int(sz))
	default:
		return fmt.Errorf("unknown directive %q", dir)
	}
	if len(b.errs) > 0 {
		return b.errs[len(b.errs)-1]
	}
	return nil
}

func parseInst(b *Builder, line string) error {
	mnemonic, rest, _ := strings.Cut(line, " ")
	op, ok := opLookup()[mnemonic]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	rest = strings.TrimSpace(rest)

	// Control transfers take a label operand, matching Builder.J/Call.
	if op == isa.JMP || op == isa.CALL || op.IsBranch() {
		if !isIdent(rest) {
			return fmt.Errorf("%s wants a label, got %q", mnemonic, rest)
		}
		b.insts = append(b.insts, isa.Inst{Op: op, Target: -1, TargetSym: rest})
		return nil
	}

	var operands []isa.Operand
	if rest != "" {
		for _, field := range strings.Split(rest, ",") {
			o, err := parseOperand(strings.TrimSpace(field))
			if err != nil {
				return err
			}
			operands = append(operands, o)
		}
	}
	if len(operands) > 2 {
		return fmt.Errorf("%s: too many operands", mnemonic)
	}
	b.I(op, operands...)
	if len(b.errs) > 0 {
		return b.errs[len(b.errs)-1]
	}
	return nil
}

func parseOperand(text string) (isa.Operand, error) {
	if text == "" {
		return isa.Operand{}, fmt.Errorf("empty operand")
	}
	if r, ok := regLookup()[text]; ok {
		return isa.Operand{Kind: isa.KindReg, Reg: r}, nil
	}
	// Memory operand, with optional width prefix.
	memText := text
	size := isa.SizeNone
	if word, rest, ok := strings.Cut(text, " "); ok {
		if s, isSize := sizeLookup[word]; isSize {
			size = s
			memText = strings.TrimSpace(rest)
		}
	}
	if strings.HasPrefix(memText, "[") {
		if !strings.HasSuffix(memText, "]") {
			return isa.Operand{}, fmt.Errorf("unterminated memory operand %q", text)
		}
		return parseMem(memText[1:len(memText)-1], size)
	}
	if size != isa.SizeNone {
		return isa.Operand{}, fmt.Errorf("width prefix on non-memory operand %q", text)
	}
	// Immediate.
	if v, err := strconv.ParseInt(text, 0, 64); err == nil {
		return isa.Operand{Kind: isa.KindImm, Imm: v}, nil
	}
	// A bare identifier is the address of a data symbol (resolved at
	// link time), the textual form of ImmSym.
	if isIdent(text) {
		return isa.Operand{Kind: isa.KindImm, Sym: text}, nil
	}
	return isa.Operand{}, fmt.Errorf("bad operand %q", text)
}

// parseMem parses the inside of a bracketed effective address:
// signed terms of the forms sym, base, index*scale and disp.
func parseMem(body string, size isa.Size) (isa.Operand, error) {
	o := isa.Operand{Kind: isa.KindMem, Size: size}
	var disp int64
	hasTerm := false
	for _, t := range splitTerms(body) {
		term := strings.TrimSpace(t.text)
		if term == "" {
			return o, fmt.Errorf("empty term in memory operand [%s]", body)
		}
		hasTerm = true
		switch {
		case isInt(term) || strings.HasPrefix(term, "0x"):
			v, err := strconv.ParseInt(term, 0, 64)
			if err != nil {
				return o, fmt.Errorf("bad displacement %q", term)
			}
			if t.neg {
				v = -v
			}
			disp += v
		case t.neg:
			return o, fmt.Errorf("negated non-numeric term %q", term)
		case strings.ContainsRune(term, '*'):
			regText, scaleText, _ := strings.Cut(term, "*")
			r, ok := regLookup()[strings.TrimSpace(regText)]
			if !ok || !r.IsGPR() {
				return o, fmt.Errorf("bad index register %q", regText)
			}
			scale, err := strconv.ParseUint(strings.TrimSpace(scaleText), 10, 8)
			if err != nil || (scale != 1 && scale != 2 && scale != 4 && scale != 8) {
				return o, fmt.Errorf("bad scale %q (want 1, 2, 4 or 8)", scaleText)
			}
			if o.Index != isa.NoReg {
				return o, fmt.Errorf("two index terms in [%s]", body)
			}
			o.Index, o.Scale = r, uint8(scale)
		default:
			if r, ok := regLookup()[term]; ok {
				if !r.IsGPR() {
					return o, fmt.Errorf("non-GPR %q in address", term)
				}
				switch {
				case o.Reg == isa.NoReg:
					o.Reg = r
				case o.Index == isa.NoReg:
					o.Index, o.Scale = r, 1
				default:
					return o, fmt.Errorf("three register terms in [%s]", body)
				}
				continue
			}
			if !isIdent(term) {
				return o, fmt.Errorf("bad address term %q", term)
			}
			if o.Sym != "" {
				return o, fmt.Errorf("two symbols in [%s]", body)
			}
			o.Sym = term
		}
	}
	if !hasTerm {
		return o, fmt.Errorf("empty memory operand")
	}
	if disp < -1<<31 || disp > 1<<31-1 {
		return o, fmt.Errorf("displacement %d overflows 32 bits", disp)
	}
	o.Disp = int32(disp)
	return o, nil
}

// signedTerm is one +/- separated component of an effective address.
type signedTerm struct {
	text string
	neg  bool
}

// splitTerms splits "a+b-8" into {a,+}, {b,+}, {8,-}.
func splitTerms(body string) []signedTerm {
	var out []signedTerm
	start, neg := 0, false
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '+', '-':
			if i == start && len(out) == 0 && body[i] == '-' {
				// A leading '-' signs the first term ("[-8]").
				continue
			}
			out = append(out, signedTerm{text: body[start:i], neg: neg})
			neg = body[i] == '-'
			start = i + 1
		}
	}
	term := body[start:]
	if strings.HasPrefix(strings.TrimSpace(body), "-") && len(out) == 0 {
		term = strings.TrimPrefix(strings.TrimSpace(body), "-")
		neg = true
	}
	out = append(out, signedTerm{text: term, neg: neg})
	return out
}

func parseIntList(text string) ([]int64, error) {
	var out []int64
	for _, f := range strings.Split(text, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q in data list", strings.TrimSpace(f))
		}
		out = append(out, v)
	}
	return out, nil
}

// isInt reports whether s is a decimal integer (optionally signed).
func isInt(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == '-' || s[0] == '+' {
		s = s[1:]
	}
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// isIdent reports whether s is a label/symbol identifier: it must start
// with a letter or '_', and continue with those, digits or interior '.'s.
// A leading '.' is reserved for directives — a label named "." would list
// as ".:", which cannot re-parse.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9', c == '.':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
