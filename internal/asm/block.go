// Basic-block discovery over linked programs. A block is a maximal
// straight-line run of instructions: it begins at a leader (the program
// entry, a branch/jump/call target, or the instruction following a control
// transfer or profiling marker) and ends at the first control transfer,
// profiling marker, or next leader. Profiling markers terminate blocks so
// that the measured/unmeasured profiling state is constant across a block
// body — the property the block-level retirement batching in internal/vm
// and internal/profile relies on.
package asm

import "mmxdsp/internal/isa"

// BlockInfo describes one basic block: instructions [Start, End) with the
// terminator (if any) at End-1.
type BlockInfo struct {
	Start int
	End   int
	// Term is the PC of the terminating control transfer (jmp/branch/
	// call/ret/halt) or profiling marker, always End-1 when present, or -1
	// when the block falls through into the next leader.
	Term int
}

// Body returns the instruction range [Start, bodyEnd) excluding the
// terminator: the straight-line run that retires with no control transfer.
func (b BlockInfo) Body() (start, end int) {
	if b.Term >= 0 {
		return b.Start, b.Term
	}
	return b.Start, b.End
}

// blockTerminator reports whether the opcode ends a basic block.
func blockTerminator(op isa.Op) bool {
	switch op.Class() {
	case isa.ClassJump, isa.ClassBranch, isa.ClassCall, isa.ClassRet:
		return true
	}
	switch op {
	case isa.HALT, isa.PROFON, isa.PROFOFF:
		return true
	}
	return false
}

// hasControlTarget reports whether the opcode's Target field names a
// control-transfer destination (rets pop theirs from the stack).
func hasControlTarget(op isa.Op) bool {
	switch op.Class() {
	case isa.ClassJump, isa.ClassBranch, isa.ClassCall:
		return true
	}
	return false
}

// ComputeBlocks partitions an instruction sequence into basic blocks. Every
// instruction belongs to exactly one block and blocks appear in program
// order; Blocks memoizes the result per Program.
func ComputeBlocks(insts []isa.Inst, entry int) []BlockInfo {
	n := len(insts)
	if n == 0 {
		return nil
	}
	leader := make([]bool, n)
	leader[0] = true
	if entry >= 0 && entry < n {
		leader[entry] = true
	}
	for i := range insts {
		if blockTerminator(insts[i].Op) && i+1 < n {
			leader[i+1] = true
		}
		if t := insts[i].Target; hasControlTarget(insts[i].Op) && t >= 0 && int(t) < n {
			leader[t] = true
		}
	}
	var blocks []BlockInfo
	start := 0
	for pc := 0; pc < n; pc++ {
		end := pc + 1
		if !blockTerminator(insts[pc].Op) && end < n && !leader[end] {
			continue
		}
		term := -1
		if blockTerminator(insts[pc].Op) {
			term = pc
		}
		blocks = append(blocks, BlockInfo{Start: start, End: end, Term: term})
		start = end
	}
	return blocks
}

// Blocks returns the program's basic-block partition, computing and caching
// it on first use (like InstMeta, so interpreter, timing model and profiler
// all index the same block numbering).
func (p *Program) Blocks() []BlockInfo {
	if p.blocks == nil {
		p.blocks = ComputeBlocks(p.Insts, p.Entry)
	}
	return p.blocks
}
