package asm

import "mmxdsp/internal/isa"

// R returns a register operand.
func R(r isa.Reg) isa.Operand { return isa.Operand{Kind: isa.KindReg, Reg: r} }

// Imm returns an immediate operand.
func Imm(v int64) isa.Operand { return isa.Operand{Kind: isa.KindImm, Imm: v} }

// ImmSym returns an immediate operand holding the address of a data symbol
// (resolved at link time), plus an optional byte offset.
func ImmSym(sym string, off int64) isa.Operand {
	return isa.Operand{Kind: isa.KindImm, Sym: sym, Imm: off}
}

// Mem returns a memory operand [base + disp] with the given access width.
func Mem(size isa.Size, base isa.Reg, disp int32) isa.Operand {
	return isa.Operand{Kind: isa.KindMem, Reg: base, Disp: disp, Size: size}
}

// MemIdx returns a memory operand [base + index*scale + disp].
func MemIdx(size isa.Size, base, index isa.Reg, scale uint8, disp int32) isa.Operand {
	return isa.Operand{Kind: isa.KindMem, Reg: base, Index: index, Scale: scale, Disp: disp, Size: size}
}

// Sym returns a memory operand [symbol + disp].
func Sym(size isa.Size, sym string, disp int32) isa.Operand {
	return isa.Operand{Kind: isa.KindMem, Sym: sym, Disp: disp, Size: size}
}

// SymIdx returns a memory operand [symbol + index*scale + disp].
func SymIdx(size isa.Size, sym string, index isa.Reg, scale uint8, disp int32) isa.Operand {
	return isa.Operand{Kind: isa.KindMem, Sym: sym, Index: index, Scale: scale, Disp: disp, Size: size}
}

// Convenience width-specific wrappers, matching assembler "byte/word/dword/
// qword ptr" idioms.

// MemB returns a byte memory operand [base + disp].
func MemB(base isa.Reg, disp int32) isa.Operand { return Mem(isa.SizeB, base, disp) }

// MemW returns a word memory operand [base + disp].
func MemW(base isa.Reg, disp int32) isa.Operand { return Mem(isa.SizeW, base, disp) }

// MemD returns a dword memory operand [base + disp].
func MemD(base isa.Reg, disp int32) isa.Operand { return Mem(isa.SizeD, base, disp) }

// MemQ returns a qword memory operand [base + disp].
func MemQ(base isa.Reg, disp int32) isa.Operand { return Mem(isa.SizeQ, base, disp) }
