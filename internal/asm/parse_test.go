// Black-box tests for the textual assembler front end. The load-bearing
// property is the listing round trip: every suite program's Listing()
// re-assembles into the same instruction stream, so the text syntax is a
// faithful serialization of linked code.
package asm_test

import (
	"strings"
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/suite"
	"mmxdsp/internal/vm"
)

func TestParseSourceRoundTripsSuiteListings(t *testing.T) {
	for _, bench := range suite.All() {
		prog, err := bench.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", bench.Name(), err)
		}
		re, err := asm.ParseSource(bench.Name()+".reparse", prog.Listing())
		if err != nil {
			t.Errorf("%s: listing failed to re-assemble: %v", bench.Name(), err)
			continue
		}
		if len(re.Insts) != len(prog.Insts) {
			t.Errorf("%s: reparse has %d instructions, want %d",
				bench.Name(), len(re.Insts), len(prog.Insts))
			continue
		}
		for i := range prog.Insts {
			want, got := prog.Insts[i], re.Insts[i]
			if want.String() != got.String() {
				t.Errorf("%s: instruction %d: got %q, want %q",
					bench.Name(), i, got.String(), want.String())
				break
			}
			if want.Target != got.Target {
				t.Errorf("%s: instruction %d (%s): branch target %d, want %d",
					bench.Name(), i, want.String(), got.Target, want.Target)
				break
			}
		}
		if len(re.Labels) != len(prog.Labels) {
			t.Errorf("%s: reparse has %d labels, want %d",
				bench.Name(), len(re.Labels), len(prog.Labels))
		}
		for name, idx := range prog.Labels {
			if got, ok := re.Labels[name]; !ok || got != idx {
				t.Errorf("%s: label %q at %d after reparse, want %d (present=%t)",
					bench.Name(), name, got, idx, ok)
			}
		}
	}
}

// TestParseSourceProgramExecutes assembles a hand-written source file and
// runs it: data directives, .entry, labels, scaled addressing and branches
// must all mean what they say.
func TestParseSourceProgramExecutes(t *testing.T) {
	const src = `
; sum the xs array into out
.dwords xs 1,2,3,4
.reserve out 8

dead:
	halt            ; skipped: .entry points past it

.proc main
.entry
	mov ecx, 0
	mov eax, 0
loop:
	add eax, dword [xs+ecx*4]
	add ecx, 1
	cmp ecx, 4
	jl loop
	mov dword [out], eax
	halt
`
	prog, err := asm.ParseSource("sum4", src)
	if err != nil {
		t.Fatalf("ParseSource: %v", err)
	}
	if prog.Entry != 1 {
		t.Fatalf("entry = %d, want 1 (past the dead halt)", prog.Entry)
	}
	if got := prog.ProcAt(3); got != "main" {
		t.Errorf("ProcAt(3) = %q, want main", got)
	}
	cpu := vm.New(prog)
	if err := cpu.Run(1 << 20); err != nil {
		t.Fatalf("run: %v", err)
	}
	got, ok := cpu.Mem.LoadU32(prog.Addr("out"))
	if !ok || got != 10 {
		t.Fatalf("out = %d (ok=%t), want 10", got, ok)
	}
}

// TestParseSourceDataDirectives checks the data/bss forms lay out symbols.
func TestParseSourceDataDirectives(t *testing.T) {
	const src = `
.bytes b8 1,2,255
.words w16 -1,0x10
.dwords d32 -5
.reserve scratch 32
.entry
	mov eax, d32     ; address-of immediate
	halt
`
	prog, err := asm.ParseSource("data", src)
	if err != nil {
		t.Fatalf("ParseSource: %v", err)
	}
	for _, sym := range []string{"b8", "w16", "d32", "scratch"} {
		if _, ok := prog.Symbols[sym]; !ok {
			t.Errorf("symbol %q missing", sym)
		}
	}
	// The ImmSym operand must resolve to the symbol's absolute address.
	if imm := prog.Insts[0].B.Imm; imm != int64(prog.Addr("d32")) {
		t.Errorf("mov eax, d32 resolved to %d, want %d", imm, prog.Addr("d32"))
	}
	if prog.BSSSize < 32 {
		t.Errorf("bss size %d, want >= 32", prog.BSSSize)
	}
}

func TestParseSourceErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown mnemonic", "frobnicate eax", "unknown mnemonic"},
		{"unknown directive", ".sections foo", "unknown directive"},
		{"bad operand", "mov eax, @#$", "bad operand"},
		{"dangling bracket", "mov eax, dword [x", "unterminated"},
		{"branch to operand", "jne 5", "wants a label"},
		{"unknown label", "jne nowhere\nhalt", "unknown label"},
		{"unknown symbol", "mov eax, dword [nowhere]\nhalt", "unknown symbol"},
		{"too many operands", "add eax, ebx, ecx", "too many operands"},
		{"bad scale", "mov eax, dword [ebx*3]", "bad scale"},
		{"huge reserve", ".reserve x 99999999999", "bad .reserve size"},
		{"negated register", "mov eax, dword [ebx-ecx]", "negated non-numeric"},
		{"width on register", "mov dword eax, 5", "width prefix on non-memory"},
		{"bare index", "42", "bare instruction index"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := asm.ParseSource("bad", tc.src)
			if err == nil {
				t.Fatalf("ParseSource(%q) succeeded, want error containing %q", tc.src, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// FuzzAsmSource throws arbitrary text at the assembler. Anything that
// assembles must produce a listing that re-assembles to the identical
// instruction stream and label map — the serialization is stable under
// iteration, and the parser never panics on garbage.
func FuzzAsmSource(f *testing.F) {
	f.Add("halt\n")
	f.Add("start:\n\tmov eax, 1\n\tjmp start\n")
	f.Add(".dwords xs 1,2,3\n.entry\n\tadd eax, dword [xs+ecx*4-8]\n\thalt\n")
	f.Add("; comment only\n\n.reserve out 8\nmain:\n\tmov dword [out], 7\n\thalt\n")
	f.Add(".proc f\n\tpush ebp\n\tpop ebp\n\tret\n.entry\n\tcall f\n\thalt\n")
	if prog, err := suite.All()[0].Build(); err == nil {
		f.Add(prog.Listing())
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		prog, err := asm.ParseSource("fuzz", src)
		if err != nil {
			return
		}
		listing := prog.Listing()
		re, err := asm.ParseSource("fuzz", listing)
		if err != nil {
			t.Fatalf("listing of assembled program failed to re-assemble: %v\n%s", err, listing)
		}
		if len(re.Insts) != len(prog.Insts) {
			t.Fatalf("reparse has %d instructions, want %d\n%s", len(re.Insts), len(prog.Insts), listing)
		}
		for i := range prog.Insts {
			if prog.Insts[i].String() != re.Insts[i].String() {
				t.Fatalf("instruction %d drifted: %q -> %q", i, prog.Insts[i], re.Insts[i])
			}
		}
		if len(re.Labels) != len(prog.Labels) {
			t.Fatalf("labels drifted: %d -> %d", len(prog.Labels), len(re.Labels))
		}
	})
}
