// Round-trip tests for Program.Source, the full-fidelity serialization
// user submissions travel in. Listing only promises the instruction
// stream; Source must also reproduce the data image, BSS, entry point and
// procedure extents — everything the profile report can observe.
package asm_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/suite"
)

func TestSourceRoundTripsSuitePrograms(t *testing.T) {
	for _, bench := range suite.All() {
		prog, err := bench.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", bench.Name(), err)
		}
		re, err := asm.ParseSource(prog.Name, prog.Source())
		if err != nil {
			t.Errorf("%s: source failed to re-assemble: %v", bench.Name(), err)
			continue
		}
		if len(re.Insts) != len(prog.Insts) {
			t.Errorf("%s: reparse has %d instructions, want %d",
				bench.Name(), len(re.Insts), len(prog.Insts))
			continue
		}
		for i := range prog.Insts {
			if prog.Insts[i].String() != re.Insts[i].String() ||
				prog.Insts[i].Target != re.Insts[i].Target {
				t.Errorf("%s: instruction %d drifted: %q (target %d) -> %q (target %d)",
					bench.Name(), i, prog.Insts[i], prog.Insts[i].Target,
					re.Insts[i], re.Insts[i].Target)
				break
			}
		}
		if re.Entry != prog.Entry {
			t.Errorf("%s: entry %d, want %d", bench.Name(), re.Entry, prog.Entry)
		}
		if len(re.Procs) != len(prog.Procs) {
			t.Errorf("%s: %d procs, want %d", bench.Name(), len(re.Procs), len(prog.Procs))
		} else {
			for i, want := range prog.Procs {
				if re.Procs[i] != want {
					t.Errorf("%s: proc %d = %+v, want %+v", bench.Name(), i, re.Procs[i], want)
				}
			}
		}
		if !bytes.Equal(re.Data, prog.Data) {
			t.Errorf("%s: data image drifted (%d bytes -> %d bytes)",
				bench.Name(), len(prog.Data), len(re.Data))
		}
		if re.BSSSize != prog.BSSSize || re.MemSize != prog.MemSize {
			t.Errorf("%s: memory layout drifted: bss %d->%d mem %d->%d",
				bench.Name(), prog.BSSSize, re.BSSSize, prog.MemSize, re.MemSize)
		}
	}
}

// TestSourceHexDirective pins the .hex data form Source emits.
func TestSourceHexDirective(t *testing.T) {
	prog, err := asm.ParseSource("hexdata", ".hex blob 0102ff\n.entry\n\tmov eax, blob\n\thalt\n")
	if err != nil {
		t.Fatalf("ParseSource: %v", err)
	}
	want := []byte{1, 2, 255}
	if !bytes.Equal(prog.Data[:3], want) {
		t.Fatalf("data = %v, want prefix %v", prog.Data, want)
	}
	for _, bad := range []string{".hex blob", ".hex blob xyz", ".hex blob 012"} {
		if _, err := asm.ParseSource("hexdata", bad+"\nhalt\n"); err == nil {
			t.Errorf("ParseSource(%q) succeeded, want error", bad)
		}
	}
}

// TestSourceErrorPositions pins the structured line/column diagnostics the
// HTTP submission path surfaces to users.
func TestSourceErrorPositions(t *testing.T) {
	src := "start:\n\tmov eax, 1\n\tfrobnicate eax\n"
	_, err := asm.ParseSource("prog", src)
	if err == nil {
		t.Fatal("want error")
	}
	var se *asm.SourceError
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not *asm.SourceError", err)
	}
	if se.Line != 3 {
		t.Errorf("line = %d, want 3", se.Line)
	}
	// "\tfrobnicate eax" — the offending mnemonic starts at column 2.
	if se.Col != 2 {
		t.Errorf("col = %d, want 2", se.Col)
	}
	if !strings.Contains(se.Error(), "line 3:2:") {
		t.Errorf("message %q lacks line:col position", se.Error())
	}
}
