// Full-fidelity textual serialization of a linked Program. Listing is a
// human-readable disassembly of the code stream alone; Source additionally
// carries the data image, BSS reservation, entry point and procedure
// extents, so ParseSource(name, p.Source()) reproduces a program whose
// execution (and therefore whose profile report) is identical to p's. This
// is the wire format user-submitted programs travel in: anything the
// service can run, it can also hand back as resubmittable source.
package asm

import (
	"fmt"
	"sort"
	"strings"
)

// Reserved symbol names Source uses for the serialized memory image. They
// live in the data-symbol namespace, which is disjoint from code labels,
// and original symbol names are already folded into displacements at link
// time, so the substitution cannot collide or change execution.
const (
	sourceDataSym = "__data"
	sourceBSSSym  = "__bss"
)

// Source renders a complete, reassemblable serialization of the program.
// Unlike Listing it emits .proc/.entry directives, the initialized data
// image (as one .hex block) and the BSS reservation; reassembling the
// result yields the same instruction stream, procedure extents, entry
// point and memory image, hence byte-identical profile reports.
func (p *Program) Source() string {
	// Procedure starts, in extent order (Procs is sorted by Start).
	procStarts := map[int][]string{}
	procNames := map[string]bool{}
	for _, pr := range p.Procs {
		procStarts[pr.Start] = append(procStarts[pr.Start], pr.Name)
		procNames[pr.Name] = true
	}
	// Remaining labels, .proc defines its own label.
	byIndex := map[int][]string{}
	for name, idx := range p.Labels {
		if procNames[name] && containsString(procStarts[idx], name) {
			continue
		}
		byIndex[idx] = append(byIndex[idx], name)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "; source of %s: %d instructions, %d data bytes, %d bss bytes\n",
		p.Name, len(p.Insts), len(p.Data), p.BSSSize)
	if len(p.Data) > 0 {
		fmt.Fprintf(&b, ".hex %s %x\n", sourceDataSym, p.Data)
	}
	if p.BSSSize > 0 {
		fmt.Fprintf(&b, ".reserve %s %d\n", sourceBSSSym, p.BSSSize)
	}
	for i := 0; i <= len(p.Insts); i++ {
		if i == p.Entry {
			// Entry 0 is the builder default, but emitting it is harmless
			// and keeps the serialization uniform; trailing entries (one
			// past the last instruction) are legal and preserved.
			b.WriteString(".entry\n")
		}
		for _, name := range procStarts[i] {
			fmt.Fprintf(&b, ".proc %s\n", name)
		}
		labels := byIndex[i]
		sort.Strings(labels)
		for _, l := range labels {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		if i < len(p.Insts) {
			fmt.Fprintf(&b, "%6d    %s\n", i, p.Insts[i].String())
		}
	}
	return b.String()
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
