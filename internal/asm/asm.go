// Package asm is a macro-assembler for the simulated ISA. Go is the macro
// language: benchmark programs and library routines are Go functions that
// drive a Builder, emitting labeled instructions and data, and Link resolves
// labels and data symbols into a Program the virtual machine executes.
package asm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"

	"mmxdsp/internal/isa"
)

// Memory layout constants. The data segment starts at DataBase; the stack
// occupies the top StackSize bytes of the image and grows down.
const (
	DataBase  = 0x10000
	StackSize = 0x10000
	// stackGuard keeps a small red zone below the initial stack pointer.
	stackGuard = 16
)

// Program is a linked, executable image.
type Program struct {
	Name    string
	Insts   []isa.Inst
	Entry   int
	Labels  map[string]int
	Symbols map[string]uint32 // data and bss symbols -> absolute addresses
	Data    []byte            // initialized data, loaded at DataBase
	BSSSize uint32            // zero-initialized space following Data
	MemSize uint32            // total memory image size
	// Procs maps instruction ranges to procedure names for profiler
	// attribution, sorted by Start.
	Procs []ProcInfo
	// Meta is the per-PC static instruction metadata (isa.ProgramMeta),
	// computed once at link time so the timing model and profiler index it
	// instead of re-deriving per retired event.
	Meta []isa.InstMeta
	// blocks is the memoized basic-block partition (see Blocks).
	blocks []BlockInfo
}

// InstMeta returns the per-PC static metadata table, computing it on demand
// for programs constructed without Link (e.g. struct literals in tests).
func (p *Program) InstMeta() []isa.InstMeta {
	if p.Meta == nil {
		p.Meta = isa.ProgramMeta(p.Insts)
	}
	return p.Meta
}

// ProcInfo records that instructions [Start, End) belong to procedure Name.
type ProcInfo struct {
	Name  string
	Start int
	End   int
}

// StackTop returns the initial stack pointer.
func (p *Program) StackTop() uint32 { return p.MemSize - stackGuard }

// Addr returns the absolute address of a data symbol, panicking if the
// symbol is unknown (programs are constructed by trusted Go code; a missing
// symbol is a programming error caught by tests).
func (p *Program) Addr(sym string) uint32 {
	a, ok := p.Symbols[sym]
	if !ok {
		panic(fmt.Sprintf("asm: program %s has no symbol %q", p.Name, sym))
	}
	return a
}

// ProcAt returns the name of the procedure containing instruction index pc,
// or "" if none.
func (p *Program) ProcAt(pc int) string {
	i := sort.Search(len(p.Procs), func(i int) bool { return p.Procs[i].Start > pc })
	if i == 0 {
		return ""
	}
	pr := p.Procs[i-1]
	if pc < pr.End {
		return pr.Name
	}
	return ""
}

// Listing renders a human-readable disassembly with interleaved labels.
func (p *Program) Listing() string {
	byIndex := map[int][]string{}
	for name, idx := range p.Labels {
		byIndex[idx] = append(byIndex[idx], name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s: %d instructions, %d data bytes, %d bss bytes\n",
		p.Name, len(p.Insts), len(p.Data), p.BSSSize)
	for i, in := range p.Insts {
		labels := byIndex[i]
		sort.Strings(labels)
		for _, l := range labels {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "%6d    %s\n", i, in.String())
	}
	// Labels may point one past the last instruction (end labels); keep
	// them so the listing is a complete serialization of the code.
	trailing := byIndex[len(p.Insts)]
	sort.Strings(trailing)
	for _, l := range trailing {
		fmt.Fprintf(&b, "%s:\n", l)
	}
	return b.String()
}

// Builder accumulates instructions, labels and data, then links them into a
// Program.
type Builder struct {
	name    string
	insts   []isa.Inst
	labels  map[string]int
	data    []byte
	symbols map[string]uint32 // relative to DataBase during building
	bss     []bssEntry
	procs   []ProcInfo
	entry   int
	errs    []error
}

type bssEntry struct {
	name string
	size uint32
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		labels:  map[string]int{},
		symbols: map[string]uint32{},
	}
}

// errorf records a build error; Link reports the first one.
func (b *Builder) errorf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("asm(%s): "+format, append([]any{b.name}, args...)...))
}

// PC returns the index the next instruction will occupy.
func (b *Builder) PC() int { return len(b.insts) }

// Label defines a code label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errorf("duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.insts)
}

// Proc starts a procedure: it defines a label and opens a procedure extent
// for profiler attribution. The extent closes at the next Proc or at Link.
func (b *Builder) Proc(name string) {
	b.closeProc()
	b.Label(name)
	b.procs = append(b.procs, ProcInfo{Name: name, Start: len(b.insts), End: -1})
}

func (b *Builder) closeProc() {
	if n := len(b.procs); n > 0 && b.procs[n-1].End < 0 {
		b.procs[n-1].End = len(b.insts)
	}
}

// Entry marks the current position as the program entry point
// (default is instruction 0).
func (b *Builder) Entry() { b.entry = len(b.insts) }

// I emits an instruction with up to two operands.
func (b *Builder) I(op isa.Op, operands ...isa.Operand) {
	in := isa.Inst{Op: op, Target: -1}
	switch len(operands) {
	case 0:
	case 1:
		in.A = operands[0]
	case 2:
		in.A, in.B = operands[0], operands[1]
	default:
		b.errorf("%s: too many operands", op)
	}
	b.insts = append(b.insts, in)
}

// J emits a jump or conditional branch to a label.
func (b *Builder) J(op isa.Op, label string) {
	b.insts = append(b.insts, isa.Inst{Op: op, Target: -1, TargetSym: label})
}

// Call emits a call to a procedure label.
func (b *Builder) Call(proc string) {
	b.insts = append(b.insts, isa.Inst{Op: isa.CALL, Target: -1, TargetSym: proc})
}

// Ret emits a return.
func (b *Builder) Ret() { b.I(isa.RET) }

// ---------------------------------------------------------------------------
// Data section

func (b *Builder) defineSym(name string, off uint32) {
	if _, dup := b.symbols[name]; dup {
		b.errorf("duplicate data symbol %q", name)
		return
	}
	b.symbols[name] = off
}

// Align pads the data section to a multiple of n bytes. MMX code depends on
// 8-byte alignment for quadword loads.
func (b *Builder) Align(n int) {
	for len(b.data)%n != 0 {
		b.data = append(b.data, 0)
	}
}

// Bytes places raw bytes in the data section under a symbol (8-byte aligned).
func (b *Builder) Bytes(name string, v []byte) {
	b.Align(8)
	b.defineSym(name, uint32(len(b.data)))
	b.data = append(b.data, v...)
}

// Words places little-endian int16 data under a symbol (8-byte aligned).
func (b *Builder) Words(name string, v []int16) {
	b.Align(8)
	b.defineSym(name, uint32(len(b.data)))
	for _, x := range v {
		b.data = binary.LittleEndian.AppendUint16(b.data, uint16(x))
	}
}

// Dwords places little-endian int32 data under a symbol (8-byte aligned).
func (b *Builder) Dwords(name string, v []int32) {
	b.Align(8)
	b.defineSym(name, uint32(len(b.data)))
	for _, x := range v {
		b.data = binary.LittleEndian.AppendUint32(b.data, uint32(x))
	}
}

// Floats places float32 data under a symbol (8-byte aligned).
func (b *Builder) Floats(name string, v []float32) {
	b.Align(8)
	b.defineSym(name, uint32(len(b.data)))
	for _, x := range v {
		b.data = binary.LittleEndian.AppendUint32(b.data, math.Float32bits(x))
	}
}

// Doubles places float64 data under a symbol (8-byte aligned).
func (b *Builder) Doubles(name string, v []float64) {
	b.Align(8)
	b.defineSym(name, uint32(len(b.data)))
	for _, x := range v {
		b.data = binary.LittleEndian.AppendUint64(b.data, math.Float64bits(x))
	}
}

// Reserve allocates zero-initialized space (BSS) under a symbol,
// 8-byte aligned.
func (b *Builder) Reserve(name string, size int) {
	b.bss = append(b.bss, bssEntry{name, uint32(size)})
}

// ---------------------------------------------------------------------------
// Link

// Link resolves labels, procedure extents and data symbols, producing an
// executable Program.
func (b *Builder) Link() (*Program, error) {
	b.closeProc()
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}

	// Lay out BSS after initialized data, both 8-byte aligned.
	b.Align(8)
	symbols := make(map[string]uint32, len(b.symbols)+len(b.bss))
	for name, off := range b.symbols {
		symbols[name] = DataBase + off
	}
	bssOff := uint32(len(b.data))
	var bssSize uint32
	for _, e := range b.bss {
		if _, dup := symbols[e.name]; dup {
			return nil, fmt.Errorf("asm(%s): duplicate symbol %q", b.name, e.name)
		}
		symbols[e.name] = DataBase + bssOff + bssSize
		bssSize += (e.size + 7) &^ 7
	}

	insts := make([]isa.Inst, len(b.insts))
	copy(insts, b.insts)
	resolveOperand := func(o *isa.Operand, i int) error {
		if o.Sym == "" {
			return nil
		}
		addr, ok := symbols[o.Sym]
		if !ok {
			return fmt.Errorf("asm(%s): instruction %d (%s): unknown symbol %q",
				b.name, i, insts[i], o.Sym)
		}
		switch o.Kind {
		case isa.KindMem:
			o.Disp += int32(addr)
		case isa.KindImm:
			o.Imm += int64(addr)
		default:
			return fmt.Errorf("asm(%s): instruction %d: symbol on %v operand", b.name, i, o.Kind)
		}
		// The symbol is folded into the displacement now; dropping it keeps
		// listings self-contained (ParseSource round-trips them without the
		// data segment).
		o.Sym = ""
		return nil
	}
	for i := range insts {
		in := &insts[i]
		if in.TargetSym != "" {
			idx, ok := b.labels[in.TargetSym]
			if !ok {
				return nil, fmt.Errorf("asm(%s): instruction %d (%s): unknown label %q",
					b.name, i, in, in.TargetSym)
			}
			in.Target = int32(idx)
		}
		if err := resolveOperand(&in.A, i); err != nil {
			return nil, err
		}
		if err := resolveOperand(&in.B, i); err != nil {
			return nil, err
		}
	}

	memSize := uint32(DataBase) + uint32(len(b.data)) + bssSize + StackSize
	memSize = (memSize + 0xFFF) &^ 0xFFF // page-align the image

	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	procs := make([]ProcInfo, len(b.procs))
	copy(procs, b.procs)
	sort.Slice(procs, func(i, j int) bool { return procs[i].Start < procs[j].Start })

	data := make([]byte, len(b.data))
	copy(data, b.data)

	return &Program{
		Name:    b.name,
		Meta:    isa.ProgramMeta(insts),
		blocks:  ComputeBlocks(insts, b.entry),
		Insts:   insts,
		Entry:   b.entry,
		Labels:  labels,
		Symbols: symbols,
		Data:    data,
		BSSSize: bssSize,
		MemSize: memSize,
		Procs:   procs,
	}, nil
}

// MustLink links and panics on error; for use in tests and registries where
// a failure is a programming bug.
func (b *Builder) MustLink() *Program {
	p, err := b.Link()
	if err != nil {
		panic(err)
	}
	return p
}
