package asm

import (
	"strings"
	"testing"

	"mmxdsp/internal/isa"
)

func TestLinkResolvesLabelsAndSymbols(t *testing.T) {
	b := NewBuilder("t")
	b.Words("coef", []int16{1, 2, 3})
	b.Reserve("out", 64)
	b.Proc("main")
	b.I(isa.MOV, R(isa.ECX), Imm(3))
	b.Label("loop")
	b.I(isa.MOV, R(isa.EAX), Sym(isa.SizeW, "coef", 0))
	b.I(isa.DEC, R(isa.ECX))
	b.J(isa.JNE, "loop")
	b.I(isa.HALT)

	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["loop"] != 1 {
		t.Errorf("loop label = %d, want 1", p.Labels["loop"])
	}
	if p.Insts[3].Target != 1 {
		t.Errorf("branch target = %d, want 1", p.Insts[3].Target)
	}
	coef := p.Addr("coef")
	if coef != DataBase {
		t.Errorf("coef addr = %#x, want %#x", coef, DataBase)
	}
	if p.Insts[1].B.Disp != int32(coef) {
		t.Errorf("symbol displacement = %d, want %d", p.Insts[1].B.Disp, coef)
	}
	out := p.Addr("out")
	if out < coef+6 {
		t.Errorf("bss symbol %#x overlaps data ending at %#x", out, coef+6)
	}
	if out%8 != 0 {
		t.Errorf("bss symbol %#x not 8-byte aligned", out)
	}
	if p.StackTop() >= p.MemSize || p.StackTop() < out+64 {
		t.Errorf("stack top %#x out of range", p.StackTop())
	}
}

func TestLinkErrors(t *testing.T) {
	b := NewBuilder("t")
	b.J(isa.JMP, "nowhere")
	if _, err := b.Link(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("want unknown-label error, got %v", err)
	}

	b = NewBuilder("t")
	b.I(isa.MOV, R(isa.EAX), Sym(isa.SizeD, "missing", 0))
	if _, err := b.Link(); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("want unknown-symbol error, got %v", err)
	}

	b = NewBuilder("t")
	b.Label("x")
	b.Label("x")
	b.I(isa.HALT)
	if _, err := b.Link(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("want duplicate-label error, got %v", err)
	}

	b = NewBuilder("t")
	b.Words("d", []int16{1})
	b.Reserve("d", 8)
	b.I(isa.HALT)
	if _, err := b.Link(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("want duplicate-symbol error, got %v", err)
	}
}

func TestDataEncodingLittleEndian(t *testing.T) {
	b := NewBuilder("t")
	b.Words("w", []int16{0x0102, -2})
	b.Dwords("d", []int32{0x01020304})
	b.I(isa.HALT)
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	w := p.Addr("w") - DataBase
	if p.Data[w] != 0x02 || p.Data[w+1] != 0x01 {
		t.Errorf("word not little-endian: % x", p.Data[w:w+2])
	}
	if p.Data[w+2] != 0xFE || p.Data[w+3] != 0xFF {
		t.Errorf("negative word wrong: % x", p.Data[w+2:w+4])
	}
	d := p.Addr("d") - DataBase
	if p.Data[d] != 0x04 || p.Data[d+3] != 0x01 {
		t.Errorf("dword not little-endian: % x", p.Data[d:d+4])
	}
	if p.Addr("d")%8 != 0 {
		t.Error("data symbol not 8-byte aligned")
	}
}

func TestProcExtents(t *testing.T) {
	b := NewBuilder("t")
	b.Proc("main")
	b.I(isa.MOV, R(isa.EAX), Imm(1))
	b.Call("f")
	b.I(isa.HALT)
	b.Proc("f")
	b.I(isa.ADD, R(isa.EAX), Imm(1))
	b.Ret()
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ProcAt(0); got != "main" {
		t.Errorf("ProcAt(0) = %q, want main", got)
	}
	if got := p.ProcAt(2); got != "main" {
		t.Errorf("ProcAt(2) = %q, want main", got)
	}
	if got := p.ProcAt(3); got != "f" {
		t.Errorf("ProcAt(3) = %q, want f", got)
	}
	if got := p.ProcAt(4); got != "f" {
		t.Errorf("ProcAt(4) = %q, want f", got)
	}
}

func TestListing(t *testing.T) {
	b := NewBuilder("demo")
	b.Proc("main")
	b.I(isa.MOV, R(isa.EAX), Imm(7))
	b.Label("spin")
	b.I(isa.DEC, R(isa.EAX))
	b.J(isa.JNE, "spin")
	b.I(isa.HALT)
	p := b.MustLink()
	l := p.Listing()
	for _, want := range []string{"main:", "spin:", "mov eax, 7", "jne spin", "halt"} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q:\n%s", want, l)
		}
	}
}

func TestAddrPanicsOnUnknown(t *testing.T) {
	b := NewBuilder("t")
	b.I(isa.HALT)
	p := b.MustLink()
	defer func() {
		if recover() == nil {
			t.Error("Addr on unknown symbol must panic")
		}
	}()
	p.Addr("nope")
}
