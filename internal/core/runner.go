// The concurrent suite runner. Independent benchmark runs are
// embarrassingly parallel: each Run call builds its own asm.Program and
// owns a private pentium.Model, profile.Collector, vm.CPU and
// mem.Hierarchy, so runs share nothing mutable.
//
// Goroutine-safety audit of the shared inputs (why per-run isolation is
// sufficient):
//
//   - Benchmark.Build closures (internal/kernels, internal/apps) construct
//     a fresh workload per call from a locally seeded synth.Rand and a
//     fresh asm.Builder; they touch no package-level mutable state.
//   - Benchmark.Check closures likewise rebuild their reference workload
//     per call and only read the halted CPU handed to them.
//   - Package-level tables reachable from a run (isa.opTable, class/reg
//     name tables, internal/dsp DCT tables, apps.aanScale) are initialized
//     at package load and read-only afterwards.
//   - The suite registry (internal/suite) memoizes behind sync.Once and
//     hands out defensive copies; Benchmark values are copied into each
//     worker.
//   - Options is passed by value; the *pentium.Config it may carry is only
//     dereferenced (copied) by Run, never written.
//
// The one shared-writer hazard is Options.Trace: a single io.Writer fed by
// concurrent runs would interleave lines, so RunAll degrades to a single
// worker whenever tracing is requested.

package core

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// RunStatus is delivered to Options.Progress as each benchmark retires.
type RunStatus struct {
	Benchmark Benchmark
	// Result is the successful outcome; nil when Err is non-nil.
	Result *Result
	// Err is the failure, if any.
	Err error
	// Done counts benchmarks retired so far (including this one); Total
	// is the suite size.
	Done, Total int
}

// RunFailure is one failed benchmark inside a RunError.
type RunFailure struct {
	Name string // program name, e.g. "fft.mmx"
	Err  error
}

// RunError aggregates every failure of a RunAll invocation. Failures are
// ordered by the benchmarks' position in the input slice, so the error
// text is deterministic regardless of completion order.
type RunError struct {
	Failures []RunFailure
	// Total is how many benchmarks the suite attempted.
	Total int
}

// Error summarizes all failures.
func (e *RunError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: %d of %d benchmarks failed", len(e.Failures), e.Total)
	for _, f := range e.Failures {
		fmt.Fprintf(&b, "\n  %s: %v", f.Name, f.Err)
	}
	return b.String()
}

// Unwrap exposes the individual failures to errors.Is/errors.As.
func (e *RunError) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f.Err
	}
	return errs
}

// RunAll runs every benchmark on a bounded worker pool and returns results
// keyed by program name. opt.Parallelism sets the pool width (0 = one
// worker per GOMAXPROCS); every run is attempted even when some fail, and
// all failures come back aggregated in a *RunError alongside the partial
// result map. Because results are keyed and each run is fully isolated,
// the map — and any table or figure rendered from it — is identical
// whatever the pool width or completion order.
func RunAll(benches []Benchmark, opt Options) (map[string]*Result, error) {
	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opt.Trace != nil {
		workers = 1 // a shared trace writer must not interleave
	}
	if workers > len(benches) {
		workers = len(benches)
	}

	results := make([]*Result, len(benches))
	errs := make([]error, len(benches))
	jobs := make(chan int)

	var (
		progressMu sync.Mutex
		done       int
		wg         sync.WaitGroup
	)
	retire := func(i int, r *Result, err error) {
		if opt.Progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		done++
		opt.Progress(RunStatus{
			Benchmark: benches[i], Result: r, Err: err,
			Done: done, Total: len(benches),
		})
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// First-caller cancellation: work not yet started is
				// skipped (recorded as a failure wrapping ctx.Err()), and
				// runs in flight abort through the VM poll hook that Run
				// installs from opt.Ctx.
				if opt.Ctx != nil && opt.Ctx.Err() != nil {
					err := fmt.Errorf("core: run %s: skipped: %w", benches[i].Name(), opt.Ctx.Err())
					results[i], errs[i] = nil, err
					retire(i, nil, err)
					continue
				}
				r, err := Run(benches[i], opt)
				results[i], errs[i] = r, err
				retire(i, r, err)
			}
		}()
	}
	for i := range benches {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	out := make(map[string]*Result, len(benches))
	var failures []RunFailure
	for i, b := range benches {
		if errs[i] != nil {
			failures = append(failures, RunFailure{Name: b.Name(), Err: errs[i]})
			continue
		}
		out[b.Name()] = results[i]
	}
	if len(failures) > 0 {
		return out, &RunError{Failures: failures, Total: len(benches)}
	}
	return out, nil
}

// SuiteStats summarizes a result set for observability: total simulated
// work and host wall time. Wall sums per-run times, so with Parallelism>1
// it exceeds the elapsed time by roughly the achieved speedup.
type SuiteStats struct {
	Programs     int
	Instructions uint64  // retired measured-region instructions
	Cycles       uint64  // simulated Pentium cycles
	WallSeconds  float64 // summed per-run host wall time
}

// Stats aggregates the per-run observability summaries of a result set.
func Stats(rs map[string]*Result) SuiteStats {
	var s SuiteStats
	for _, r := range rs {
		s.Programs++
		s.Instructions += r.Report.DynamicInstructions
		s.Cycles += r.Report.Cycles
		s.WallSeconds += r.Wall.Seconds()
	}
	return s
}

// InstrsPerSec returns the aggregate host simulation throughput.
func (s SuiteStats) InstrsPerSec() float64 {
	if s.WallSeconds <= 0 {
		return 0
	}
	return float64(s.Instructions) / s.WallSeconds
}

// SortedNames returns the result set's program names, sorted — a
// deterministic iteration order for rendering result maps.
func SortedNames(rs map[string]*Result) []string {
	names := make([]string, 0, len(rs))
	for n := range rs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
