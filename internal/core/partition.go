package core

import "mmxdsp/internal/profile"

// Suite partitioning and reassembly for distributed runs. A coordinator
// that fans a full table run across several backends needs two things from
// core: a deterministic way to split the program list into balanced shards,
// and a way to rebuild a ResultSet from the per-program reports it gathered
// so the existing table and figure generators render byte-identical
// artifacts.

// Partition splits names into parts contiguous, near-equal groups, in
// order: the first len(names)%parts groups carry one extra name. parts
// below 1 is treated as 1, and parts beyond len(names) yields len(names)
// single-element groups (never empty groups). The concatenation of the
// groups is always exactly names.
func Partition(names []string, parts int) [][]string {
	if parts < 1 {
		parts = 1
	}
	if parts > len(names) {
		parts = len(names)
	}
	if parts == 0 {
		return nil
	}
	out := make([][]string, 0, parts)
	base, extra := len(names)/parts, len(names)%parts
	start := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, names[start:start+size])
		start += size
	}
	return out
}

// ResultSetFromReports reassembles a ResultSet from gathered reports, keyed
// by each report's program name (nil reports are skipped). The Results
// carry only the Report — exactly what the table and figure generators
// read — so a set rebuilt from serialized reports renders the same
// artifacts as the original runs.
func ResultSetFromReports(reps []*profile.Report) ResultSet {
	rs := make(ResultSet, len(reps))
	for _, rep := range reps {
		if rep != nil {
			rs[rep.Name] = &Result{Report: rep}
		}
	}
	return rs
}
