// Package core is the paper's contribution as a reusable API: a benchmark
// suite abstraction (programs in C-only, FP-library and MMX-library
// versions), a runner that executes a program on the simulated
// Pentium-with-MMX and profiles it VTune-style, and a comparison engine
// that produces every table and figure of the evaluation.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/mem"
	"mmxdsp/internal/pentium"
	"mmxdsp/internal/profile"
	"mmxdsp/internal/vm"
)

// Versions of a benchmark, matching the paper's suffixes.
const (
	VersionC   = "c"   // compiled scalar code
	VersionFP  = "fp"  // scalar code calling the optimized FP assembly library
	VersionMMX = "mmx" // scalar code calling the MMX assembly library
)

// Kinds of benchmark.
const (
	KindKernel      = "kernel"
	KindApplication = "application"
)

// Benchmark is one program version in the suite.
type Benchmark struct {
	Base    string // benchmark family: "fft", "fir", ..., "jpeg"
	Version string // VersionC, VersionFP or VersionMMX
	Kind    string // KindKernel or KindApplication
	Descr   string // Table 1 description
	// Build assembles the program (including workload data placement).
	Build func() (*asm.Program, error)
	// Check validates the program's outputs on the halted machine against
	// the pure-Go reference implementation. May be nil.
	Check func(c *vm.CPU) error
}

// Name returns the paper-style program name, e.g. "fft.mmx". Versionless
// benchmarks (user-submitted programs served through /asm) are named by
// Base alone.
func (b Benchmark) Name() string {
	if b.Version == "" {
		return b.Base
	}
	return b.Base + "." + b.Version
}

// Dispatch modes for Options.Dispatch.
const (
	// DispatchAuto lets the VM pick the fastest applicable inner loop:
	// block dispatch when the observer supports it, per-event otherwise
	// (tracing attaches a Tee, which forces the per-event path).
	DispatchAuto = ""
	// DispatchBlock is DispatchAuto under its explicit name.
	DispatchBlock = "block"
	// DispatchPredecode pins the per-event predecoded loop.
	DispatchPredecode = "predecode"
	// DispatchGeneric runs the decode-per-step reference interpreter.
	DispatchGeneric = "generic"
	// DispatchTrace layers runtime superblock formation with register
	// caching on top of block dispatch (see vm/trace.go). Results are
	// byte-identical to every other mode; only throughput differs.
	DispatchTrace = "trace"
)

// Options configures a run.
type Options struct {
	// Pentium is the timing-model configuration. nil selects
	// pentium.DefaultConfig(); a non-nil config is used verbatim, so an
	// all-zero ablation config (free emms, ISA-default everything else)
	// is honored rather than silently replaced by the defaults.
	Pentium *pentium.Config
	// PerfectCache disables the cache model (ablation).
	PerfectCache bool
	// Cache overrides the memory-hierarchy geometry and penalties; nil
	// selects the standard Pentium hierarchy. Ignored when PerfectCache
	// is set. An invalid spec fails the run with its Validate error.
	Cache *CacheSpec
	// MaxInstrs bounds execution; 0 selects a generous default and
	// negative values are rejected by Run.
	MaxInstrs int64
	// SkipCheck skips output validation.
	SkipCheck bool
	// PartialOnBudget turns instruction-budget exhaustion from a failure
	// into a reportable outcome: the run returns a Result whose Report
	// covers the instructions retired before the budget hit, with
	// Result.BudgetExhausted set (and output validation skipped — a
	// truncated run has nothing meaningful to check). This is how the
	// service caps user-submitted programs without hanging on infinite
	// loops.
	PartialOnBudget bool
	// Trace, when non-nil, receives a line per retired measured
	// instruction, up to TraceLimit lines (0 = unlimited). A write error
	// stops tracing and fails the run. Tracing forces RunAll sequential.
	Trace      io.Writer
	TraceLimit int
	// Parallelism bounds the RunAll worker pool; 0 (or negative) selects
	// runtime.GOMAXPROCS(0). Run ignores it.
	Parallelism int
	// Progress, when non-nil, is invoked by RunAll as each benchmark
	// retires (in completion order, serialized). Run ignores it.
	Progress func(RunStatus)
	// Dispatch selects the interpreter inner loop (DispatchAuto,
	// DispatchTrace, DispatchBlock, DispatchPredecode or
	// DispatchGeneric). Run rejects unknown values.
	Dispatch string
	// Ctx, when non-nil, cancels work in flight: Run installs a VM poll
	// hook that aborts the interpreter within vm.DefaultPollInterval
	// retired instructions of cancellation (the returned error wraps
	// ctx.Err()), and RunAll additionally skips benchmarks that have not
	// started yet. nil means no cancellation.
	Ctx context.Context
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	cfg := pentium.DefaultConfig()
	return Options{Pentium: &cfg}
}

// BlockStats describes block-dispatch behavior for one run. It is
// diagnostic host-side data, deliberately separate from Report (reports are
// byte-identical across dispatch modes).
type BlockStats struct {
	// Compiled is the number of basic blocks the program compiled into.
	Compiled int
	// FastEvents and PerEvents split the retired events between the fused
	// block fast path and the per-event path (terminators, fallback
	// replays, or entire runs on the non-block interpreters).
	FastEvents uint64
	PerEvents  uint64
}

// FastPct returns the percentage of retired events on the fused fast path.
func (s BlockStats) FastPct() float64 {
	total := s.FastEvents + s.PerEvents
	if total == 0 {
		return 0
	}
	return 100 * float64(s.FastEvents) / float64(total)
}

// Result is the outcome of one benchmark run.
type Result struct {
	Benchmark Benchmark
	Report    *profile.Report
	// Wall is how long the simulation took on the host, measured around
	// the VM run only (not Build or Check).
	Wall time.Duration
	// Blocks reports block-dispatch coverage for the run.
	Blocks BlockStats
	// Traces reports trace-dispatch behavior (zero unless Dispatch was
	// DispatchTrace): superblocks formed, full iterations, side exits.
	Traces TraceStats
	// BudgetExhausted marks a partial run: the instruction budget expired
	// before HALT and Options.PartialOnBudget let it return a Result
	// anyway. The Report covers only the retired prefix.
	BudgetExhausted bool
}

// TraceStats describes trace-dispatch behavior for one run; like
// BlockStats it is diagnostic host-side data, separate from Report.
type TraceStats struct {
	// Formed is the number of superblocks formed at run time.
	Formed int
	// Iters and Exits count full trace iterations and side exits.
	Iters uint64
	Exits uint64
	// TraceInstrs is the number of instructions retired inside traces;
	// Executed the whole run's retired count (both regions), so
	// TraceInstrs/Executed is the trace-resident share.
	TraceInstrs uint64
	Executed    uint64
	// TreeNodes counts child paths attached across all trace trees, and
	// Deopts the traces retired by the side-exit governor.
	TreeNodes int
	Deopts    uint64
	// TreeIters counts iterations that completed via a child path;
	// TreeInstrs the instructions those whole iterations retired.
	TreeIters  uint64
	TreeInstrs uint64
}

// SideExitPct returns side exits as a percentage of trace entries.
func (s TraceStats) SideExitPct() float64 {
	total := s.Iters + s.Exits
	if total == 0 {
		return 0
	}
	return 100 * float64(s.Exits) / float64(total)
}

// ResidentPct returns the percentage of all retired instructions that
// retired inside a superblock.
func (s TraceStats) ResidentPct() float64 {
	if s.Executed == 0 {
		return 0
	}
	return 100 * float64(s.TraceInstrs) / float64(s.Executed)
}

// TreeResidentPct returns the percentage of all retired instructions that
// retired in iterations completing via a trace-tree child path (zero until
// a tree forms and its alternate paths get hot).
func (s TraceStats) TreeResidentPct() float64 {
	if s.Executed == 0 {
		return 0
	}
	return 100 * float64(s.TreeInstrs) / float64(s.Executed)
}

// InstrsPerSec returns the host simulation throughput in retired
// (measured-region) instructions per wall-clock second.
func (r *Result) InstrsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Report.DynamicInstructions) / r.Wall.Seconds()
}

// Compiled is a benchmark built and predecoded once: the linked program
// and its vm.Code. Both are immutable after construction, so one Compiled
// may back any number of concurrent runs — this is the artifact a serving
// layer caches to amortize Build and predecode across repeat requests.
type Compiled struct {
	Benchmark Benchmark
	Prog      *asm.Program
	Code      *vm.Code
}

// CompileBenchmark builds the benchmark's program (including workload data
// placement) and predecodes it into shareable vm.Code.
func CompileBenchmark(b Benchmark) (*Compiled, error) {
	prog, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("core: build %s: %w", b.Name(), err)
	}
	return &Compiled{Benchmark: b, Prog: prog, Code: vm.Compile(prog)}, nil
}

// Run builds, executes, profiles and validates one benchmark. It is
// CompileBenchmark followed by RunCompiled; callers that run the same
// benchmark repeatedly should compile once and reuse the artifact.
func Run(b Benchmark, opt Options) (*Result, error) {
	comp, err := CompileBenchmark(b)
	if err != nil {
		return nil, err
	}
	return RunCompiled(comp, opt)
}

// RunCompiled executes, profiles and validates one prebuilt benchmark.
// The Compiled artifact is only read, never written: every run gets a
// private CPU, memory image, timing model and collector.
func RunCompiled(comp *Compiled, opt Options) (*Result, error) {
	b := comp.Benchmark
	cfg := pentium.DefaultConfig()
	if opt.Pentium != nil {
		cfg = *opt.Pentium
	}
	if opt.MaxInstrs < 0 {
		return nil, fmt.Errorf("core: run %s: negative MaxInstrs %d", b.Name(), opt.MaxInstrs)
	}
	if opt.MaxInstrs == 0 {
		opt.MaxInstrs = 1 << 31
	}
	model := pentium.New(cfg)
	model.Bind(comp.Prog)
	col := profile.NewCollector(comp.Prog, model)
	cpu := vm.NewWithCode(comp.Code)
	cpu.Obs = col
	if opt.Ctx != nil {
		cpu.Poll = opt.Ctx.Err
	}
	switch opt.Dispatch {
	case DispatchAuto, DispatchBlock:
	case DispatchTrace:
		cpu.Traces = true
	case DispatchPredecode:
		cpu.NoBlocks = true
	case DispatchGeneric:
		cpu.Generic = true
	default:
		return nil, fmt.Errorf("core: run %s: unknown dispatch mode %q", b.Name(), opt.Dispatch)
	}
	var tracer *profile.Tracer
	if opt.Trace != nil {
		tracer = &profile.Tracer{W: opt.Trace, Limit: opt.TraceLimit, MeasuredOnly: true}
		cpu.Obs = profile.Tee(col, tracer)
	}
	if !opt.PerfectCache {
		if opt.Cache != nil {
			hier, err := opt.Cache.Hierarchy()
			if err != nil {
				return nil, fmt.Errorf("core: run %s: cache spec: %w", b.Name(), err)
			}
			cpu.Hier = hier
		} else {
			cpu.Hier = mem.NewHierarchy()
		}
	}
	start := time.Now()
	runErr := cpu.Run(opt.MaxInstrs)
	wall := time.Since(start)
	budgetHit := false
	if runErr != nil {
		if opt.PartialOnBudget && errors.Is(runErr, vm.ErrBudget) {
			budgetHit = true
		} else {
			return nil, fmt.Errorf("core: run %s: %w", b.Name(), runErr)
		}
	}
	if tracer != nil {
		if err := tracer.Err(); err != nil {
			return nil, fmt.Errorf("core: trace %s: %w", b.Name(), err)
		}
	}
	if b.Check != nil && !opt.SkipCheck && !budgetHit {
		if err := b.Check(cpu); err != nil {
			return nil, fmt.Errorf("core: validate %s: %w", b.Name(), err)
		}
	}
	rep := col.Report(b.Name())
	if cpu.Hier != nil {
		rep.CacheAccesses = cpu.Hier.Stats.Accesses
		rep.L1Misses = cpu.Hier.Stats.L1Misses
		rep.L2Misses = cpu.Hier.Stats.L2Misses
	}
	fast, perEvent := col.BlockStats()
	blocks := BlockStats{Compiled: cpu.CompiledBlocks(), FastEvents: fast, PerEvents: perEvent}
	vts := cpu.TraceStats()
	traces := TraceStats{
		Formed: vts.Formed, Iters: vts.Iters, Exits: vts.Exits,
		TraceInstrs: vts.TraceInstrs, Executed: uint64(cpu.Executed()),
		TreeNodes: vts.TreeNodes, Deopts: vts.Deopts,
		TreeIters: vts.TreeIters, TreeInstrs: vts.TreeInstrs,
	}
	return &Result{
		Benchmark: b, Report: rep, Wall: wall, Blocks: blocks, Traces: traces,
		BudgetExhausted: budgetHit,
	}, nil
}

// CompileProgram wraps an already-linked program — typically one assembled
// from user-submitted source — as a Compiled artifact. The benchmark shell
// is versionless (Name() == name), has no reference Check, and carries the
// program as a constant Build so the artifact behaves exactly like a
// suite-compiled one everywhere downstream.
func CompileProgram(name string, prog *asm.Program) *Compiled {
	b := Benchmark{
		Base:  name,
		Kind:  KindApplication,
		Descr: "user-submitted program",
		Build: func() (*asm.Program, error) { return prog, nil },
	}
	return &Compiled{Benchmark: b, Prog: prog, Code: vm.Compile(prog)}
}
