// Package core is the paper's contribution as a reusable API: a benchmark
// suite abstraction (programs in C-only, FP-library and MMX-library
// versions), a runner that executes a program on the simulated
// Pentium-with-MMX and profiles it VTune-style, and a comparison engine
// that produces every table and figure of the evaluation.
package core

import (
	"fmt"
	"io"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/mem"
	"mmxdsp/internal/pentium"
	"mmxdsp/internal/profile"
	"mmxdsp/internal/vm"
)

// Versions of a benchmark, matching the paper's suffixes.
const (
	VersionC   = "c"   // compiled scalar code
	VersionFP  = "fp"  // scalar code calling the optimized FP assembly library
	VersionMMX = "mmx" // scalar code calling the MMX assembly library
)

// Kinds of benchmark.
const (
	KindKernel      = "kernel"
	KindApplication = "application"
)

// Benchmark is one program version in the suite.
type Benchmark struct {
	Base    string // benchmark family: "fft", "fir", ..., "jpeg"
	Version string // VersionC, VersionFP or VersionMMX
	Kind    string // KindKernel or KindApplication
	Descr   string // Table 1 description
	// Build assembles the program (including workload data placement).
	Build func() (*asm.Program, error)
	// Check validates the program's outputs on the halted machine against
	// the pure-Go reference implementation. May be nil.
	Check func(c *vm.CPU) error
}

// Name returns the paper-style program name, e.g. "fft.mmx".
func (b Benchmark) Name() string { return b.Base + "." + b.Version }

// Options configures a run.
type Options struct {
	// Pentium is the timing-model configuration; the zero value is
	// upgraded to pentium.DefaultConfig().
	Pentium pentium.Config
	// PerfectCache disables the cache model (ablation).
	PerfectCache bool
	// MaxInstrs bounds execution; 0 selects a generous default.
	MaxInstrs int64
	// SkipCheck skips output validation.
	SkipCheck bool
	// Trace, when non-nil, receives a line per retired measured
	// instruction, up to TraceLimit lines (0 = unlimited).
	Trace      io.Writer
	TraceLimit int
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{Pentium: pentium.DefaultConfig()}
}

// Result is the outcome of one benchmark run.
type Result struct {
	Benchmark Benchmark
	Report    *profile.Report
}

// Run builds, executes, profiles and validates one benchmark.
func Run(b Benchmark, opt Options) (*Result, error) {
	if opt.Pentium == (pentium.Config{}) {
		opt.Pentium = pentium.DefaultConfig()
	}
	if opt.MaxInstrs == 0 {
		opt.MaxInstrs = 1 << 31
	}
	prog, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("core: build %s: %w", b.Name(), err)
	}
	model := pentium.New(opt.Pentium)
	col := profile.NewCollector(prog, model)
	cpu := vm.New(prog)
	cpu.Obs = col
	if opt.Trace != nil {
		cpu.Obs = profile.Tee(col,
			&profile.Tracer{W: opt.Trace, Limit: opt.TraceLimit, MeasuredOnly: true})
	}
	if !opt.PerfectCache {
		cpu.Hier = mem.NewHierarchy()
	}
	if err := cpu.Run(opt.MaxInstrs); err != nil {
		return nil, fmt.Errorf("core: run %s: %w", b.Name(), err)
	}
	if b.Check != nil && !opt.SkipCheck {
		if err := b.Check(cpu); err != nil {
			return nil, fmt.Errorf("core: validate %s: %w", b.Name(), err)
		}
	}
	rep := col.Report(b.Name())
	if cpu.Hier != nil {
		rep.CacheAccesses = cpu.Hier.Stats.Accesses
		rep.L1Misses = cpu.Hier.Stats.L1Misses
		rep.L2Misses = cpu.Hier.Stats.L2Misses
	}
	return &Result{Benchmark: b, Report: rep}, nil
}

// RunAll runs every benchmark, returning results keyed by program name.
func RunAll(benches []Benchmark, opt Options) (map[string]*Result, error) {
	out := make(map[string]*Result, len(benches))
	for _, b := range benches {
		r, err := Run(b, opt)
		if err != nil {
			return nil, err
		}
		out[b.Name()] = r
	}
	return out, nil
}
