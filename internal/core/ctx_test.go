// Cancellation-path tests: Options.Ctx must abort runs in flight with
// bounded latency (through the VM poll hook) and make RunAll skip
// benchmarks that have not started yet.
package core

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
)

// spinBench is a synthetic non-terminating program: without cancellation
// it would burn the full default instruction budget (~2^31 instructions).
func spinBench(name string) Benchmark {
	return Benchmark{
		Base: name, Version: VersionC, Kind: KindKernel, Descr: "synthetic spin",
		Build: func() (*asm.Program, error) {
			b := asm.NewBuilder(name)
			b.Proc("main")
			b.Label("spin")
			b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(1))
			b.J(isa.JMP, "spin")
			return b.Link()
		},
	}
}

func TestRunCtxCancelAbortsMidRun(t *testing.T) {
	for _, dispatch := range []string{DispatchBlock, DispatchPredecode, DispatchGeneric} {
		t.Run(dispatch, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(10 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err := Run(spinBench("spin"), Options{SkipCheck: true, Dispatch: dispatch, Ctx: ctx})
			elapsed := time.Since(start)
			if err == nil {
				t.Fatal("cancelled spin run succeeded")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error %v does not wrap context.Canceled", err)
			}
			// The acceptance bound is 250ms end to end; the poll hook fires
			// every vm.DefaultPollInterval instructions, which is microseconds
			// of simulated work.
			if elapsed > 250*time.Millisecond {
				t.Fatalf("cancelled run took %v, want < 250ms", elapsed)
			}
		})
	}
}

func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := Run(spinBench("spin"), Options{SkipCheck: true, Ctx: ctx})
	if err == nil {
		t.Fatal("pre-cancelled run succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("pre-cancelled run took %v", elapsed)
	}
}

func TestRunDeadlineSurfacesDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := Run(spinBench("spin"), Options{SkipCheck: true, Ctx: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// TestRunAllCtxSkipsPending pins the runner's first-caller cancellation
// contract: benchmarks in flight abort through the poll hook, and
// benchmarks that have not started are skipped without running at all.
func TestRunAllCtxSkipsPending(t *testing.T) {
	benches := make([]Benchmark, 6)
	for i := range benches {
		benches[i] = spinBench("spin" + string(rune('a'+i)))
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunAll(benches, Options{SkipCheck: true, Parallelism: 2, Ctx: ctx})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled RunAll succeeded")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error %T is not a *RunError", err)
	}
	if len(re.Failures) != len(benches) {
		t.Fatalf("%d failures, want %d (all spins fail under cancellation)", len(re.Failures), len(benches))
	}
	var skipped, aborted int
	for _, f := range re.Failures {
		if !errors.Is(f.Err, context.Canceled) {
			t.Fatalf("%s: error %v does not wrap context.Canceled", f.Name, f.Err)
		}
		if strings.Contains(f.Err.Error(), "skipped") {
			skipped++
		} else {
			aborted++
		}
	}
	// Two workers spin until the cancel; the other four jobs are handed out
	// afterwards and must be skipped without executing.
	if skipped < len(benches)-2 {
		t.Errorf("only %d benchmarks skipped, want >= %d (aborted: %d)", skipped, len(benches)-2, aborted)
	}
	if elapsed > time.Second {
		t.Errorf("cancelled RunAll took %v", elapsed)
	}
}

// TestRunCompiledMatchesRun pins the compile-once path the server cache
// uses: RunCompiled on a shared Compiled artifact must produce reports
// byte-identical to independent Run calls, run after run.
func TestRunCompiledMatchesRun(t *testing.T) {
	cb, mb := testBenches(64)
	for _, bench := range []Benchmark{cb, mb} {
		direct, err := Run(bench, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: direct run: %v", bench.Name(), err)
		}
		want, err := json.Marshal(direct.Report)
		if err != nil {
			t.Fatal(err)
		}
		comp, err := CompileBenchmark(bench)
		if err != nil {
			t.Fatalf("%s: compile: %v", bench.Name(), err)
		}
		for i := 0; i < 3; i++ {
			res, err := RunCompiled(comp, DefaultOptions())
			if err != nil {
				t.Fatalf("%s: cached run %d: %v", bench.Name(), i, err)
			}
			got, err := json.Marshal(res.Report)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("%s: cached run %d report drifted:\n got %s\nwant %s",
					bench.Name(), i, got, want)
			}
		}
	}
}
