package core_test

// Cross-dispatch determinism: the rendered evaluation artifacts — Tables 2
// and 3 (CSV) and the full Markdown report — must be byte-identical whether
// the suite runs on the per-event predecoded loop or the block-dispatch
// loop. This is the user-facing face of the equivalence guarantee: block
// batching is a host-side optimization and must never shift a reported
// number. External test package because suite imports core.

import (
	"testing"

	"mmxdsp/internal/core"
	"mmxdsp/internal/suite"
)

func TestTablesByteIdenticalAcrossDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("two full-suite runs are slow; skipped with -short")
	}
	render := func(dispatch string) (string, string, string) {
		opt := core.DefaultOptions()
		opt.SkipCheck = true
		opt.Dispatch = dispatch
		rs, err := core.RunAll(suite.All(), opt)
		if err != nil {
			t.Fatalf("RunAll (%s): %v", dispatch, err)
		}
		return core.Table2CSV(rs), core.Table3CSV(rs), core.MarkdownReport(rs)
	}
	t2p, t3p, mdp := render(core.DispatchPredecode)
	t2b, t3b, mdb := render(core.DispatchBlock)
	if t2p != t2b {
		t.Errorf("Table 2 CSV differs across dispatch modes:\n predecode:\n%s\n block:\n%s", t2p, t2b)
	}
	if t3p != t3b {
		t.Errorf("Table 3 CSV differs across dispatch modes:\n predecode:\n%s\n block:\n%s", t3p, t3b)
	}
	if mdp != mdb {
		t.Error("Markdown report differs across dispatch modes")
	}
}
