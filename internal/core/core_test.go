package core

import (
	"fmt"
	"strings"
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/vm"
)

// buildScalarVecAdd builds a scalar 16-bit vector add of length n.
func buildScalarVecAdd(n int) func() (*asm.Program, error) {
	return func() (*asm.Program, error) {
		b := asm.NewBuilder("vadd.c")
		x := make([]int16, n)
		y := make([]int16, n)
		for i := range x {
			x[i] = int16(i)
			y[i] = int16(2 * i)
		}
		b.Words("x", x)
		b.Words("y", y)
		b.Reserve("out", 2*n)
		b.Proc("main")
		// Warm the caches with one unmeasured pass, then measure.
		b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
		b.Label("warm")
		b.I(isa.MOVSXW, asm.R(isa.EAX), asm.SymIdx(isa.SizeW, "x", isa.ECX, 2, 0))
		b.I(isa.MOVSXW, asm.R(isa.EDX), asm.SymIdx(isa.SizeW, "y", isa.ECX, 2, 0))
		b.I(isa.INC, asm.R(isa.ECX))
		b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(int64(n)))
		b.J(isa.JL, "warm")
		b.I(isa.PROFON)
		b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
		b.Label("loop")
		b.I(isa.MOVSXW, asm.R(isa.EAX), asm.SymIdx(isa.SizeW, "x", isa.ECX, 2, 0))
		b.I(isa.MOVSXW, asm.R(isa.EDX), asm.SymIdx(isa.SizeW, "y", isa.ECX, 2, 0))
		b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.EDX))
		b.I(isa.MOV, asm.SymIdx(isa.SizeW, "out", isa.ECX, 2, 0), asm.R(isa.EAX))
		b.I(isa.INC, asm.R(isa.ECX))
		b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(int64(n)))
		b.J(isa.JL, "loop")
		b.I(isa.PROFOFF)
		b.I(isa.HALT)
		return b.Link()
	}
}

// buildMMXVecAdd builds the 4-wide MMX version of the same computation.
func buildMMXVecAdd(n int) func() (*asm.Program, error) {
	return func() (*asm.Program, error) {
		b := asm.NewBuilder("vadd.mmx")
		x := make([]int16, n)
		y := make([]int16, n)
		for i := range x {
			x[i] = int16(i)
			y[i] = int16(2 * i)
		}
		b.Words("x", x)
		b.Words("y", y)
		b.Reserve("out", 2*n)
		b.Proc("main")
		b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
		b.Label("warm")
		b.I(isa.MOVQ, asm.R(isa.MM0), asm.SymIdx(isa.SizeQ, "x", isa.ECX, 2, 0))
		b.I(isa.MOVQ, asm.R(isa.MM1), asm.SymIdx(isa.SizeQ, "y", isa.ECX, 2, 0))
		b.I(isa.ADD, asm.R(isa.ECX), asm.Imm(4))
		b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(int64(n)))
		b.J(isa.JL, "warm")
		b.I(isa.PROFON)
		b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
		b.Label("loop")
		b.I(isa.MOVQ, asm.R(isa.MM0), asm.SymIdx(isa.SizeQ, "x", isa.ECX, 2, 0))
		b.I(isa.PADDW, asm.R(isa.MM0), asm.SymIdx(isa.SizeQ, "y", isa.ECX, 2, 0))
		b.I(isa.MOVQ, asm.SymIdx(isa.SizeQ, "out", isa.ECX, 2, 0), asm.R(isa.MM0))
		b.I(isa.ADD, asm.R(isa.ECX), asm.Imm(4))
		b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(int64(n)))
		b.J(isa.JL, "loop")
		b.I(isa.EMMS)
		b.I(isa.PROFOFF)
		b.I(isa.HALT)
		return b.Link()
	}
}

func checkVecAdd(n int) func(c *vm.CPU) error {
	return func(c *vm.CPU) error {
		out, ok := c.Mem.ReadInt16s(c.Prog.Addr("out"), n)
		if !ok {
			return fmt.Errorf("cannot read output")
		}
		for i, v := range out {
			if want := int16(3 * i); v != want {
				return fmt.Errorf("out[%d] = %d, want %d", i, v, want)
			}
		}
		return nil
	}
}

func testBenches(n int) (Benchmark, Benchmark) {
	c := Benchmark{
		Base: "vadd", Version: VersionC, Kind: KindKernel,
		Build: buildScalarVecAdd(n), Check: checkVecAdd(n),
	}
	m := Benchmark{
		Base: "vadd", Version: VersionMMX, Kind: KindKernel,
		Build: buildMMXVecAdd(n), Check: checkVecAdd(n),
	}
	return c, m
}

func TestRunAndCompareEndToEnd(t *testing.T) {
	cb, mb := testBenches(256)
	opt := DefaultOptions()
	rc, err := Run(cb, opt)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Run(mb, opt)
	if err != nil {
		t.Fatal(err)
	}

	// The scalar loop retires ~7 instructions per element; MMX ~6 per 4
	// elements. The MMX version must be well ahead on every Table 3 metric.
	r := Compare(rc.Report, rm.Report)
	if r.Speedup <= 2 {
		t.Errorf("speedup = %.2f, want > 2", r.Speedup)
	}
	if r.Dynamic <= 3 {
		t.Errorf("dynamic ratio = %.2f, want > 3", r.Dynamic)
	}
	if r.MemRefs <= 2 {
		t.Errorf("memref ratio = %.2f, want > 2", r.MemRefs)
	}
	if r.Static >= 2 {
		t.Errorf("static ratio = %.2f; MMX static size should not be much smaller", r.Static)
	}

	// Report sanity.
	if rm.Report.PercentMMX() < 40 {
		t.Errorf("MMX version %%MMX = %.1f, want >= 40", rm.Report.PercentMMX())
	}
	if rc.Report.PercentMMX() != 0 {
		t.Errorf("C version %%MMX = %.1f, want 0", rc.Report.PercentMMX())
	}
	bd := rm.Report.MMXBreakdown()
	if bd[0] != 0 {
		t.Errorf("aligned vector add must have zero pack/unpack, got %.2f%%", bd[0])
	}
	if bd[1] == 0 || bd[2] == 0 {
		t.Errorf("expected arithmetic and move MMX instructions, got %v", bd)
	}
	if rm.Report.StaticInstructions == 0 || rm.Report.StaticInstructions > 12 {
		t.Errorf("static instructions = %d, want small and nonzero", rm.Report.StaticInstructions)
	}
	if rc.Report.Cycles == 0 || rm.Report.Cycles == 0 {
		t.Error("cycle counts must be nonzero")
	}
}

func TestValidationFailureSurfaces(t *testing.T) {
	bad := Benchmark{
		Base: "vadd", Version: VersionC,
		Build: buildScalarVecAdd(16),
		Check: func(c *vm.CPU) error { return fmt.Errorf("forced failure") },
	}
	if _, err := Run(bad, DefaultOptions()); err == nil {
		t.Fatal("validation failure must surface")
	}
	// SkipCheck suppresses it.
	if _, err := Run(bad, Options{SkipCheck: true}); err != nil {
		t.Fatalf("SkipCheck run failed: %v", err)
	}
}

func TestPerfectCacheAblationIsFaster(t *testing.T) {
	// Use a vector long enough to spill the L1 set working pattern.
	cb, _ := testBenches(2048)
	withCache, err := Run(cb, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.PerfectCache = true
	noCache, err := Run(cb, opt)
	if err != nil {
		t.Fatal(err)
	}
	if noCache.Report.Cycles >= withCache.Report.Cycles {
		t.Errorf("perfect cache cycles %d >= cached %d",
			noCache.Report.Cycles, withCache.Report.Cycles)
	}
	if withCache.Report.CacheAccesses == 0 || withCache.Report.L1Misses == 0 {
		t.Errorf("cache stats empty: %+v", withCache.Report)
	}
	if noCache.Report.CacheAccesses != 0 {
		t.Error("perfect-cache run must report no cache accesses")
	}
}

func TestRunAll(t *testing.T) {
	cb, mb := testBenches(64)
	res, err := RunAll([]Benchmark{cb, mb}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if res["vadd.c"] == nil || res["vadd.mmx"] == nil {
		t.Error("results not keyed by program name")
	}
}

func TestProcAttribution(t *testing.T) {
	// A program split into two procedures: the callee should dominate.
	bench := Benchmark{
		Base: "attr", Version: VersionC,
		Build: func() (*asm.Program, error) {
			b := asm.NewBuilder("attr.c")
			b.Proc("main")
			b.I(isa.PROFON)
			b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(50))
			b.Label("outer")
			b.Call("work")
			b.I(isa.DEC, asm.R(isa.ECX))
			b.J(isa.JNE, "outer")
			b.I(isa.PROFOFF)
			b.I(isa.HALT)
			b.Proc("work")
			b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(20))
			b.Label("spin")
			b.I(isa.IMUL, asm.R(isa.EBX), asm.R(isa.EAX))
			b.I(isa.DEC, asm.R(isa.EAX))
			b.J(isa.JNE, "spin")
			b.Ret()
			return b.Link()
		},
	}
	res, err := Run(bench, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.Calls != 50 {
		t.Errorf("calls = %d, want 50", rep.Calls)
	}
	if len(rep.Procs) < 2 || rep.Procs[0].Name != "work" {
		t.Fatalf("hot procedure should be 'work': %+v", rep.Procs)
	}
	if rep.CallRetCycleShare() <= 0 || rep.CallRetCycleShare() >= 50 {
		t.Errorf("call/ret share = %.2f%%, want a small positive share", rep.CallRetCycleShare())
	}
}

// TestTraceWriteFailureSurfaces: a broken -trace destination must fail the
// run loudly (the tracer latches the error) instead of silently producing
// a truncated listing.
func TestTraceWriteFailureSurfaces(t *testing.T) {
	cb, _ := testBenches(64)
	opt := DefaultOptions()
	opt.SkipCheck = true
	opt.Trace = brokenWriter{}
	_, err := Run(cb, opt)
	if err == nil {
		t.Fatal("run with a broken trace writer must fail")
	}
	if !strings.Contains(err.Error(), "trace") {
		t.Errorf("error should identify the trace stage: %v", err)
	}
}

type brokenWriter struct{}

func (brokenWriter) Write(p []byte) (int, error) { return 0, fmt.Errorf("disk full") }
