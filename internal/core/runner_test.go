package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"mmxdsp/internal/pentium"
	"mmxdsp/internal/vm"
)

// smallSuite builds 2n isolated vadd benchmarks with distinct names, sized
// to keep the worker pool busy without slowing the test suite down.
func smallSuite(n int) []Benchmark {
	var out []Benchmark
	for i := 0; i < n; i++ {
		c, m := testBenches(64 + 16*i)
		c.Base = fmt.Sprintf("vadd%d", i)
		m.Base = fmt.Sprintf("vadd%d", i)
		out = append(out, c, m)
	}
	return out
}

func TestRunAllParallelMatchesSequential(t *testing.T) {
	benches := smallSuite(8)

	seq := DefaultOptions()
	seq.Parallelism = 1
	seqRes, err := RunAll(benches, seq)
	if err != nil {
		t.Fatal(err)
	}

	par := DefaultOptions()
	par.Parallelism = 8
	parRes, err := RunAll(benches, par)
	if err != nil {
		t.Fatal(err)
	}

	if len(seqRes) != len(benches) || len(parRes) != len(benches) {
		t.Fatalf("result counts: seq %d, par %d, want %d", len(seqRes), len(parRes), len(benches))
	}
	// Every rendered artifact must be byte-identical whatever the pool
	// width: simulation state is fully per-run.
	for what, render := range map[string]func(ResultSet) string{
		"Table2": Table2, "Table2CSV": Table2CSV,
		"Table3": Table3, "Table3CSV": Table3CSV,
		"Fig1a": Fig1a, "Fig1b": Fig1b, "Fig2a": Fig2a, "Fig2b": Fig2b,
		"Notes": Notes,
	} {
		if a, b := render(seqRes), render(parRes); a != b {
			t.Errorf("%s differs between sequential and parallel runs:\n--- seq\n%s\n--- par\n%s", what, a, b)
		}
	}
	for name, sr := range seqRes {
		pr := parRes[name]
		if pr == nil {
			t.Fatalf("parallel run missing %s", name)
		}
		if sr.Report.Cycles != pr.Report.Cycles ||
			sr.Report.DynamicInstructions != pr.Report.DynamicInstructions ||
			sr.Report.L1Misses != pr.Report.L1Misses {
			t.Errorf("%s: seq %+v != par %+v", name, sr.Report, pr.Report)
		}
	}
}

func TestRunAllPartialFailureAggregation(t *testing.T) {
	good1, good2 := testBenches(64)
	boom := Benchmark{
		Base: "boom", Version: VersionC,
		Build: buildScalarVecAdd(16),
		Check: func(c *vm.CPU) error { return fmt.Errorf("forced failure") },
	}
	benches := []Benchmark{good1, boom, good2}
	for _, parallelism := range []int{1, 4} {
		opt := DefaultOptions()
		opt.Parallelism = parallelism
		res, err := RunAll(benches, opt)
		if err == nil {
			t.Fatalf("parallelism %d: expected aggregated error", parallelism)
		}
		var runErr *RunError
		if !errors.As(err, &runErr) {
			t.Fatalf("parallelism %d: error is %T, want *RunError", parallelism, err)
		}
		if len(runErr.Failures) != 1 || runErr.Failures[0].Name != "boom.c" {
			t.Fatalf("parallelism %d: failures = %+v", parallelism, runErr.Failures)
		}
		if runErr.Total != 3 {
			t.Errorf("parallelism %d: total = %d, want 3", parallelism, runErr.Total)
		}
		// Partial results: the two healthy benchmarks still ran.
		if len(res) != 2 || res["vadd.c"] == nil || res["vadd.mmx"] == nil {
			t.Errorf("parallelism %d: partial results = %v", parallelism, SortedNames(res))
		}
		if res["boom.c"] != nil {
			t.Errorf("parallelism %d: failed benchmark must not appear in results", parallelism)
		}
	}
}

func TestRunAllProgressRetirement(t *testing.T) {
	benches := smallSuite(4)
	var (
		mu    sync.Mutex
		seen  []RunStatus
		dones []int
	)
	opt := DefaultOptions()
	opt.Parallelism = 4
	opt.Progress = func(st RunStatus) {
		// Progress delivery is serialized by the runner; the extra lock
		// keeps the race detector honest about this test's own slices.
		mu.Lock()
		defer mu.Unlock()
		seen = append(seen, st)
		dones = append(dones, st.Done)
	}
	if _, err := RunAll(benches, opt); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(benches) {
		t.Fatalf("progress fired %d times, want %d", len(seen), len(benches))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("Done sequence %v not monotonically 1..n", dones)
		}
	}
	for _, st := range seen {
		if st.Err != nil || st.Result == nil {
			t.Errorf("%s: unexpected progress failure %v", st.Benchmark.Name(), st.Err)
		}
		if st.Total != len(benches) {
			t.Errorf("%s: total = %d, want %d", st.Benchmark.Name(), st.Total, len(benches))
		}
		if st.Result.Wall <= 0 {
			t.Errorf("%s: wall time not recorded", st.Benchmark.Name())
		}
		if st.Result.InstrsPerSec() <= 0 {
			t.Errorf("%s: instrs/sec not computable", st.Benchmark.Name())
		}
	}
}

// TestRunAllRace keeps the worker pool honest under the race detector
// (scripts/check.sh runs this package with -race): many small isolated
// runs, wide pool, progress callback exercised.
func TestRunAllRace(t *testing.T) {
	benches := smallSuite(12)
	opt := DefaultOptions()
	opt.Parallelism = 8
	opt.Progress = func(RunStatus) {}
	res, err := RunAll(benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(benches) {
		t.Fatalf("got %d results, want %d", len(res), len(benches))
	}
}

func TestRunRejectsNegativeMaxInstrs(t *testing.T) {
	cb, _ := testBenches(16)
	opt := DefaultOptions()
	opt.MaxInstrs = -1
	if _, err := Run(cb, opt); err == nil {
		t.Fatal("negative MaxInstrs must be rejected")
	}
}

// TestZeroPentiumConfigIsHonored pins the sentinel fix: an explicitly
// all-zero pentium.Config is an ablation (free emms, ISA-default latencies
// otherwise) and must not be silently upgraded to DefaultConfig.
func TestZeroPentiumConfigIsHonored(t *testing.T) {
	_, mb := testBenches(256) // the MMX version executes one emms
	def, err := Run(mb, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	zero := Options{Pentium: &pentium.Config{}}
	abl, err := Run(mb, zero)
	if err != nil {
		t.Fatal(err)
	}
	// With EmmsLatency 0 the measured region loses the full 50-cycle
	// MMX-to-FP switch; under the old sentinel both runs were identical.
	if abl.Report.Cycles >= def.Report.Cycles {
		t.Errorf("all-zero config cycles %d >= default %d; zero config was not honored",
			abl.Report.Cycles, def.Report.Cycles)
	}
	if diff := def.Report.Cycles - abl.Report.Cycles; diff < 40 {
		t.Errorf("emms ablation saved only %d cycles, want ~50", diff)
	}
}

func TestRunAllStats(t *testing.T) {
	benches := smallSuite(2)
	opt := DefaultOptions()
	res, err := RunAll(benches, opt)
	if err != nil {
		t.Fatal(err)
	}
	s := Stats(res)
	if s.Programs != len(benches) {
		t.Errorf("Programs = %d, want %d", s.Programs, len(benches))
	}
	if s.Instructions == 0 || s.Cycles == 0 || s.WallSeconds <= 0 {
		t.Errorf("empty stats: %+v", s)
	}
	if s.InstrsPerSec() <= 0 {
		t.Error("aggregate throughput not computable")
	}
}
