package core

import (
	"fmt"
	"sort"
	"strings"
)

// This file regenerates the paper's tables and figures from a set of run
// results. Every generator returns plain text; the CSV variants return
// machine-readable rows for plotting.

// ResultSet is the output of RunAll, keyed by program name ("fft.mmx").
type ResultSet = map[string]*Result

// bases returns the benchmark families present, ordered by their C-to-MMX
// speedup ascending (the paper arranges Figure 1 and 2 this way).
func basesBySpeedup(rs ResultSet) []string {
	seen := map[string]bool{}
	var out []string
	for name, r := range rs {
		base := strings.SplitN(name, ".", 2)[0]
		if !seen[base] {
			seen[base] = true
			out = append(out, base)
		}
		_ = r
	}
	speedup := func(base string) float64 {
		c, m := rs[base+".c"], rs[base+".mmx"]
		if c == nil || m == nil || m.Report.Cycles == 0 {
			return 0
		}
		return float64(c.Report.Cycles) / float64(m.Report.Cycles)
	}
	sort.Slice(out, func(i, j int) bool { return speedup(out[i]) < speedup(out[j]) })
	return out
}

// programOrder is the paper's Table 2 row order, with the sad pair (the
// motion-estimation extension, not in the paper) appended after the
// kernels it most resembles.
var programOrder = []string{
	"fft.c", "fft.fp", "fft.mmx",
	"fir.c", "fir.fp", "fir.mmx",
	"iir.c", "iir.fp", "iir.mmx",
	"matvec.c", "matvec.mmx",
	"sad.c", "sad.mmx",
	"radar.c", "radar.mmx",
	"g722.c", "g722.mmx",
	"jpeg.c", "jpeg.mmx",
	"image.c", "image.mmx",
}

// orderedResults yields the results present in Table 2 order.
func orderedResults(rs ResultSet) []*Result {
	var out []*Result
	for _, name := range programOrder {
		if r, ok := rs[name]; ok {
			out = append(out, r)
		}
	}
	return out
}

// Table1 renders the benchmark summary (descriptions).
func Table1(benches []Benchmark) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Summary of Benchmark Kernels and Applications\n\n")
	emit := func(kind, header string) {
		fmt.Fprintf(&b, "%s\n", header)
		seen := map[string]bool{}
		for _, bench := range benches {
			if bench.Kind != kind || seen[bench.Base] {
				continue
			}
			seen[bench.Base] = true
			fmt.Fprintf(&b, "  %-8s %s\n", bench.Base, bench.Descr)
		}
		b.WriteByte('\n')
	}
	emit(KindKernel, "Kernels")
	emit(KindApplication, "Applications")
	return b.String()
}

// Table2 renders the per-program instruction characteristics.
func Table2(rs ResultSet) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Benchmark Instruction Characteristics\n\n")
	fmt.Fprintf(&b, "%-12s %10s %12s %12s %9s %7s\n",
		"Program", "Static", "Dyn uops", "Dynamic", "%MemRef", "%MMX")
	for _, r := range orderedResults(rs) {
		rep := r.Report
		fmt.Fprintf(&b, "%-12s %10d %12d %12d %8.2f%% %6.2f%%\n",
			rep.Name, rep.StaticInstructions, rep.Uops, rep.DynamicInstructions,
			rep.PercentMemRefs(), rep.PercentMMX())
	}
	return b.String()
}

// Table2CSV renders Table 2 as CSV.
func Table2CSV(rs ResultSet) string {
	var b strings.Builder
	b.WriteString("program,static,uops,dynamic,pct_memref,pct_mmx,cycles\n")
	for _, r := range orderedResults(rs) {
		rep := r.Report
		fmt.Fprintf(&b, "%s,%d,%d,%d,%.4f,%.4f,%d\n",
			rep.Name, rep.StaticInstructions, rep.Uops, rep.DynamicInstructions,
			rep.PercentMemRefs(), rep.PercentMMX(), rep.Cycles)
	}
	return b.String()
}

// table3Rows builds the non-MMX/MMX comparison rows in the paper's order.
func table3Rows(rs ResultSet) []Ratios {
	rows := []string{"fft.c", "fft.fp", "fir.c", "fir.fp", "iir.c", "iir.fp",
		"matvec.c", "sad.c", "g722.c", "image.c", "jpeg.c", "radar.c"}
	var out []Ratios
	for _, name := range rows {
		base := strings.SplitN(name, ".", 2)[0]
		nonMMX, mmx := rs[name], rs[base+".mmx"]
		if nonMMX == nil || mmx == nil {
			continue
		}
		out = append(out, Compare(nonMMX.Report, mmx.Report))
	}
	return out
}

// Table3 renders the ratio table (non-MMX program / MMX program).
func Table3(rs ResultSet) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Results as ratios of Non-MMX program to MMX program\n\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %8s %8s\n",
		"Program", "Speedup", "Static", "Dynamic", "Uops", "MemRefs")
	for _, row := range table3Rows(rs) {
		fmt.Fprintf(&b, "%-12s %8.2f %8.3f %8.2f %8.2f %8.2f\n",
			row.Program, row.Speedup, row.Static, row.Dynamic, row.Uops, row.MemRefs)
	}
	return b.String()
}

// Table3CSV renders Table 3 as CSV.
func Table3CSV(rs ResultSet) string {
	var b strings.Builder
	b.WriteString("program,speedup,static_ratio,dynamic_ratio,uops_ratio,memref_ratio\n")
	for _, row := range table3Rows(rs) {
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			row.Program, row.Speedup, row.Static, row.Dynamic, row.Uops, row.MemRefs)
	}
	return b.String()
}

// Fig1a renders the MMX instruction-category mix of every .mmx program,
// ordered by ascending speedup, with the speedup above each bar as in the
// paper's figure.
func Fig1a(rs ResultSet) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1(a): Breakdown of MMX instructions (%% of dynamic instructions)\n")
	fmt.Fprintf(&b, "Programs ordered by ascending C-to-MMX speedup; value above bar = speedup.\n\n")
	fmt.Fprintf(&b, "%-10s %8s %12s %9s %8s %8s %7s\n",
		"Program", "Speedup", "pack/unpack", "mmx arith", "mmx mov", "emms", "total")
	for _, base := range basesBySpeedup(rs) {
		c, m := rs[base+".c"], rs[base+".mmx"]
		if c == nil || m == nil {
			continue
		}
		rep := m.Report
		bd := rep.MMXBreakdown()
		speedup := float64(c.Report.Cycles) / float64(m.Report.Cycles)
		fmt.Fprintf(&b, "%-10s %8.2f %11.2f%% %8.2f%% %7.2f%% %7.3f%% %6.2f%%\n",
			base+".mmx", speedup, bd[0], bd[1], bd[2], bd[3], rep.PercentMMX())
	}
	return b.String()
}

// Fig1b renders the static and dynamic instruction-count ratios (C-only to
// MMX), ordered by ascending speedup.
func Fig1b(rs ResultSet) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1(b): C-only vs. MMX instruction counts (ratios, C/MMX)\n\n")
	fmt.Fprintf(&b, "%-10s %8s %8s\n", "Program", "Static", "Dynamic")
	for _, base := range basesBySpeedup(rs) {
		c, m := rs[base+".c"], rs[base+".mmx"]
		if c == nil || m == nil {
			continue
		}
		r := Compare(c.Report, m.Report)
		fmt.Fprintf(&b, "%-10s %8.3f %8.2f\n", base, r.Static, r.Dynamic)
	}
	return b.String()
}

// Fig2a renders speedup, dynamic-instruction and memory-reference ratios of
// the C-only versions to the MMX versions.
func Fig2a(rs ResultSet) string { return fig2(rs, ".c", "Figure 2(a): C-only to MMX ratios") }

// Fig2b renders the same ratios for the FP-library versions (kernels only;
// matvec and the applications have no FP version, as in the paper).
func Fig2b(rs ResultSet) string { return fig2(rs, ".fp", "Figure 2(b): FP-library to MMX ratios") }

func fig2(rs ResultSet, suffix, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", title)
	fmt.Fprintf(&b, "%-10s %8s %8s %8s\n", "Program", "Speedup", "Dynamic", "MemRefs")
	for _, base := range basesBySpeedup(rs) {
		nonMMX, mmx := rs[base+suffix], rs[base+".mmx"]
		if nonMMX == nil || mmx == nil {
			continue
		}
		r := Compare(nonMMX.Report, mmx.Report)
		fmt.Fprintf(&b, "%-10s %8.2f %8.2f %8.2f\n", base, r.Speedup, r.Dynamic, r.MemRefs)
	}
	return b.String()
}

// Notes renders the paper's §4 narrative observations from the measured
// data: per-program call/ret cycle shares, pack/unpack shares, call counts.
func Notes(rs ResultSet) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 4 narrative metrics\n\n")
	fmt.Fprintf(&b, "%-12s %10s %12s %14s %12s\n",
		"Program", "Calls", "Call/Ret cyc", "pack/unp %%MMX", "Cycles")
	for _, r := range orderedResults(rs) {
		rep := r.Report
		fmt.Fprintf(&b, "%-12s %10d %11.2f%% %13.2f%% %12d\n",
			rep.Name, rep.Calls, rep.CallRetCycleShare(),
			rep.PackUnpackShareOfMMX(), rep.Cycles)
	}
	return b.String()
}
