// Cache-model ablation: a request-level description of the memory
// hierarchy the timing model charges penalties against. The paper's
// evaluation fixes the Pentium's 16 KB 4-way L1 / 512 KB 4-way L2 with
// 32-byte lines; sensitivity campaigns sweep these knobs instead, so the
// spec validates to an error (never a panic) — adversarial grids must die
// as 400s at the service boundary.
package core

import (
	"fmt"

	"mmxdsp/internal/mem"
)

// Cache geometry bounds for request-driven configurations. The ceilings
// keep a single point's tag arrays small (an L2 at the cap models 64 MB
// with ~2M tag entries) so a hostile sweep cannot balloon daemon memory.
const (
	MinCacheSize  = 1 << 10 // 1 KB
	MaxL1Size     = 1 << 22 // 4 MB
	MaxL2Size     = 1 << 26 // 64 MB
	MaxCacheWays  = 16
	MinLineBytes  = 8
	MaxLineBytes  = 256
	MaxPenalty    = 1000
	defaultL1Size = 16 * 1024
	defaultL1Ways = 4
	defaultL2Size = 512 * 1024
	defaultL2Ways = 4
	defaultLine   = 32
)

// CacheSpec overrides the memory-hierarchy model per run. Zero geometry
// fields select the Pentium defaults (16 KB 4-way L1, 512 KB 4-way L2,
// 32-byte lines); penalty fields follow the EmmsLatency convention —
// negative keeps the paper's value, zero and up overrides (zero models a
// free miss, a meaningful ablation).
type CacheSpec struct {
	L1Size, L1Ways int
	L2Size, L2Ways int
	LineBytes      int
	// DCacheMiss, L2Access, L2Miss override mem.Penalties; -1 = default.
	DCacheMiss, L2Access, L2Miss int
}

// DefaultCacheSpec returns the spec that reproduces NewHierarchy exactly.
func DefaultCacheSpec() CacheSpec {
	return CacheSpec{DCacheMiss: -1, L2Access: -1, L2Miss: -1}
}

// effective fills defaults into the zero fields.
func (s CacheSpec) effective() (l1Size, l1Ways, l2Size, l2Ways, line int, pen mem.Penalties) {
	l1Size, l1Ways = s.L1Size, s.L1Ways
	l2Size, l2Ways = s.L2Size, s.L2Ways
	line = s.LineBytes
	if l1Size == 0 {
		l1Size = defaultL1Size
	}
	if l1Ways == 0 {
		l1Ways = defaultL1Ways
	}
	if l2Size == 0 {
		l2Size = defaultL2Size
	}
	if l2Ways == 0 {
		l2Ways = defaultL2Ways
	}
	if line == 0 {
		line = defaultLine
	}
	pen = mem.DefaultPenalties()
	if s.DCacheMiss >= 0 {
		pen.DCacheMiss = s.DCacheMiss
	}
	if s.L2Access >= 0 {
		pen.L2Access = s.L2Access
	}
	if s.L2Miss >= 0 {
		pen.L2Miss = s.L2Miss
	}
	return
}

// Validate range- and geometry-checks the spec (defaults applied first, so
// partial overrides are checked against what will actually be built).
func (s CacheSpec) Validate() error {
	l1Size, l1Ways, l2Size, l2Ways, line, pen := s.effective()
	if l1Size < MinCacheSize || l1Size > MaxL1Size {
		return fmt.Errorf("l1_size %d out of range [%d, %d]", l1Size, MinCacheSize, MaxL1Size)
	}
	if l2Size < MinCacheSize || l2Size > MaxL2Size {
		return fmt.Errorf("l2_size %d out of range [%d, %d]", l2Size, MinCacheSize, MaxL2Size)
	}
	if l1Ways < 1 || l1Ways > MaxCacheWays {
		return fmt.Errorf("l1_ways %d out of range [1, %d]", l1Ways, MaxCacheWays)
	}
	if l2Ways < 1 || l2Ways > MaxCacheWays {
		return fmt.Errorf("l2_ways %d out of range [1, %d]", l2Ways, MaxCacheWays)
	}
	if line < MinLineBytes || line > MaxLineBytes {
		return fmt.Errorf("line_bytes %d out of range [%d, %d]", line, MinLineBytes, MaxLineBytes)
	}
	if err := mem.CheckGeometry(l1Size, l1Ways, line); err != nil {
		return fmt.Errorf("l1 geometry: %w", err)
	}
	if err := mem.CheckGeometry(l2Size, l2Ways, line); err != nil {
		return fmt.Errorf("l2 geometry: %w", err)
	}
	if l2Size < l1Size {
		return fmt.Errorf("l2_size %d smaller than l1_size %d", l2Size, l1Size)
	}
	for _, p := range []struct {
		name string
		v    int
	}{{"dcache_miss_penalty", pen.DCacheMiss}, {"l2_access_penalty", pen.L2Access}, {"l2_miss_penalty", pen.L2Miss}} {
		if p.v < 0 || p.v > MaxPenalty {
			return fmt.Errorf("%s %d out of range [0, %d]", p.name, p.v, MaxPenalty)
		}
	}
	return nil
}

// Hierarchy builds the validated hierarchy the run charges penalties
// against.
func (s CacheSpec) Hierarchy() (*mem.Hierarchy, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	l1Size, l1Ways, l2Size, l2Ways, line, pen := s.effective()
	return mem.NewHierarchySized(l1Size, l1Ways, l2Size, l2Ways, line, pen), nil
}

// Key renders the canonical cache-key component for the spec: effective
// values after default-filling, so an explicit default (l1_size=16384) and
// an omitted field produce the same key — they produce the same results.
func (s CacheSpec) Key() string {
	l1Size, l1Ways, l2Size, l2Ways, line, pen := s.effective()
	return fmt.Sprintf("l1=%d/%d|l2=%d/%d|lb=%d|dm=%d|la=%d|lm=%d",
		l1Size, l1Ways, l2Size, l2Ways, line,
		pen.DCacheMiss, pen.L2Access, pen.L2Miss)
}

// IsDefault reports whether the spec reproduces the standard hierarchy, so
// callers can keep default-config requests on the exact default path.
func (s CacheSpec) IsDefault() bool {
	l1Size, l1Ways, l2Size, l2Ways, line, pen := s.effective()
	return l1Size == defaultL1Size && l1Ways == defaultL1Ways &&
		l2Size == defaultL2Size && l2Ways == defaultL2Ways &&
		line == defaultLine && pen == mem.DefaultPenalties()
}
