package core

import "mmxdsp/internal/profile"

// Ratios holds the paper's Table 3 row: every value is
// (non-MMX version) / (MMX version), so Speedup > 1 means MMX is faster and
// Static < 1 means the MMX version has more static instructions.
type Ratios struct {
	Program string // the non-MMX program name, e.g. "fft.c"

	Speedup float64 // clock-cycle ratio
	Static  float64 // static instruction ratio
	Dynamic float64 // dynamic instruction ratio
	Uops    float64 // Pentium II micro-op ratio
	MemRefs float64 // memory-reference ratio
}

// Compare builds the non-MMX/MMX ratio row from two reports.
func Compare(base, mmx *profile.Report) Ratios {
	return Ratios{
		Program: base.Name,
		Speedup: ratio(base.Cycles, mmx.Cycles),
		Static:  ratio(base.StaticInstructions, mmx.StaticInstructions),
		Dynamic: ratio(base.DynamicInstructions, mmx.DynamicInstructions),
		Uops:    ratio(base.Uops, mmx.Uops),
		MemRefs: ratio(base.MemoryReferences, mmx.MemoryReferences),
	}
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
