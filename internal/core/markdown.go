package core

import (
	"fmt"
	"strings"
)

// MarkdownReport renders the full evaluation — Tables 2 and 3 plus the
// Figure 1(a) breakdown — as a Markdown document, ready to paste into
// EXPERIMENTS-style write-ups.
func MarkdownReport(rs ResultSet) string {
	var b strings.Builder
	b.WriteString("# Reproduced evaluation\n\n")

	b.WriteString("## Table 2 — Benchmark instruction characteristics\n\n")
	b.WriteString("| Program | Static | Dyn µops | Dynamic | %MemRef | %MMX | Cycles |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, r := range orderedResults(rs) {
		rep := r.Report
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %.2f | %.2f | %d |\n",
			rep.Name, rep.StaticInstructions, rep.Uops, rep.DynamicInstructions,
			rep.PercentMemRefs(), rep.PercentMMX(), rep.Cycles)
	}

	b.WriteString("\n## Table 3 — Non-MMX/MMX ratios\n\n")
	b.WriteString("| Program | Speedup | Static | Dynamic | µops | MemRefs |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, row := range table3Rows(rs) {
		fmt.Fprintf(&b, "| %s | %.2f | %.3f | %.2f | %.2f | %.2f |\n",
			row.Program, row.Speedup, row.Static, row.Dynamic, row.Uops, row.MemRefs)
	}

	b.WriteString("\n## Figure 1(a) — MMX instruction breakdown (ascending speedup)\n\n")
	b.WriteString("| Program | Speedup | pack/unpack | arith | mov | emms | total %MMX |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, base := range basesBySpeedup(rs) {
		c, m := rs[base+".c"], rs[base+".mmx"]
		if c == nil || m == nil {
			continue
		}
		bd := m.Report.MMXBreakdown()
		fmt.Fprintf(&b, "| %s.mmx | %.2f | %.2f%% | %.2f%% | %.2f%% | %.3f%% | %.2f%% |\n",
			base, float64(c.Report.Cycles)/float64(m.Report.Cycles),
			bd[0], bd[1], bd[2], bd[3], m.Report.PercentMMX())
	}

	b.WriteString("\n## Narrative metrics (§4)\n\n")
	b.WriteString("| Program | Calls | Call/Ret cycles | pack/unpack of MMX |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, r := range orderedResults(rs) {
		rep := r.Report
		fmt.Fprintf(&b, "| %s | %d | %.2f%% | %.2f%% |\n",
			rep.Name, rep.Calls, rep.CallRetCycleShare(), rep.PackUnpackShareOfMMX())
	}
	return b.String()
}
