package core

import (
	"strings"
	"testing"

	"mmxdsp/internal/profile"
)

// fakeResult builds a synthetic result for table-rendering tests.
func fakeResult(name string, cycles, dyn, static, uops, memrefs, mmxArith uint64) *Result {
	rep := &profile.Report{
		Name:                name,
		Cycles:              cycles,
		DynamicInstructions: dyn,
		StaticInstructions:  static,
		Uops:                uops,
		MemoryReferences:    memrefs,
		MMXArithmetic:       mmxArith,
	}
	base := strings.SplitN(name, ".", 2)[0]
	ver := strings.SplitN(name, ".", 2)[1]
	return &Result{
		Benchmark: Benchmark{Base: base, Version: ver, Kind: KindKernel, Descr: "test " + base},
		Report:    rep,
	}
}

func fakeSet() ResultSet {
	return ResultSet{
		"fft.c":   fakeResult("fft.c", 2000, 1000, 100, 1500, 400, 0),
		"fft.fp":  fakeResult("fft.fp", 1500, 900, 90, 1300, 380, 0),
		"fft.mmx": fakeResult("fft.mmx", 1000, 800, 150, 1200, 300, 40),
		"fir.c":   fakeResult("fir.c", 6000, 3000, 40, 4000, 1200, 0),
		"fir.mmx": fakeResult("fir.mmx", 1000, 700, 80, 900, 350, 200),
	}
}

func TestTable2ContainsProgramsAndValues(t *testing.T) {
	out := Table2(fakeSet())
	for _, want := range []string{"fft.c", "fft.fp", "fft.mmx", "fir.c", "fir.mmx"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "5.00%") { // fft.mmx: 40/800 MMX
		t.Errorf("Table2 missing %%MMX value:\n%s", out)
	}
}

func TestTable3RatioRows(t *testing.T) {
	out := Table3(fakeSet())
	// fft.c vs fft.mmx: speedup 2.00; fir.c vs fir.mmx: speedup 6.00.
	if !strings.Contains(out, "2.00") || !strings.Contains(out, "6.00") {
		t.Errorf("Table3 missing expected speedups:\n%s", out)
	}
	if !strings.Contains(out, "fft.fp") {
		t.Errorf("Table3 must include the FP rows:\n%s", out)
	}
	if strings.Contains(out, "fir.fp") {
		t.Errorf("Table3 must skip absent programs:\n%s", out)
	}
}

func TestCSVOutputsParseable(t *testing.T) {
	rs := fakeSet()
	csv2 := Table2CSV(rs)
	lines := strings.Split(strings.TrimSpace(csv2), "\n")
	if len(lines) != 6 { // header + 5 programs
		t.Errorf("Table2CSV has %d lines, want 6:\n%s", len(lines), csv2)
	}
	for _, l := range lines[1:] {
		if got := len(strings.Split(l, ",")); got != 7 {
			t.Errorf("Table2CSV row has %d fields, want 7: %q", got, l)
		}
	}
	csv3 := Table3CSV(rs)
	if !strings.HasPrefix(csv3, "program,speedup") {
		t.Errorf("Table3CSV header wrong: %q", csv3)
	}
}

func TestFiguresOrderedBySpeedup(t *testing.T) {
	out := Fig1a(fakeSet())
	// fft (2.0x) must come before fir (6.0x).
	fftPos := strings.Index(out, "fft.mmx")
	firPos := strings.Index(out, "fir.mmx")
	if fftPos < 0 || firPos < 0 || fftPos > firPos {
		t.Errorf("Fig1a ordering wrong (fft@%d fir@%d):\n%s", fftPos, firPos, out)
	}
	fig2 := Fig2a(fakeSet())
	if !strings.Contains(fig2, "fft") || !strings.Contains(fig2, "fir") {
		t.Errorf("Fig2a missing rows:\n%s", fig2)
	}
	fig2b := Fig2b(fakeSet())
	if !strings.Contains(fig2b, "fft") || strings.Contains(fig2b, "fir") {
		t.Errorf("Fig2b must include only families with .fp versions:\n%s", fig2b)
	}
}

func TestTable1UsesDescriptions(t *testing.T) {
	benches := []Benchmark{
		{Base: "fft", Version: VersionC, Kind: KindKernel, Descr: "an FFT"},
		{Base: "fft", Version: VersionMMX, Kind: KindKernel, Descr: "an FFT"},
		{Base: "jpeg", Version: VersionC, Kind: KindApplication, Descr: "a JPEG"},
	}
	out := Table1(benches)
	if !strings.Contains(out, "an FFT") || !strings.Contains(out, "a JPEG") {
		t.Errorf("Table1 missing descriptions:\n%s", out)
	}
	if strings.Count(out, "an FFT") != 1 {
		t.Errorf("Table1 must list each family once:\n%s", out)
	}
}

func TestNotesRenders(t *testing.T) {
	out := Notes(fakeSet())
	if !strings.Contains(out, "fft.mmx") || !strings.Contains(out, "Calls") {
		t.Errorf("Notes output wrong:\n%s", out)
	}
}

func TestMarkdownReport(t *testing.T) {
	out := MarkdownReport(fakeSet())
	for _, want := range []string{"## Table 2", "## Table 3", "Figure 1(a)",
		"| fft.mmx |", "| fir.c |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	// Every table row must have a consistent column count.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "| fft.c ") {
			if got := strings.Count(line, "|"); got != 8 {
				t.Errorf("table-2 row has %d pipes: %q", got, line)
			}
			break
		}
	}
}
