package core

import (
	"reflect"
	"testing"

	"mmxdsp/internal/profile"
)

func TestPartition(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f", "g"}
	cases := []struct {
		parts int
		want  [][]string
	}{
		{1, [][]string{{"a", "b", "c", "d", "e", "f", "g"}}},
		{2, [][]string{{"a", "b", "c", "d"}, {"e", "f", "g"}}},
		{3, [][]string{{"a", "b", "c"}, {"d", "e"}, {"f", "g"}}},
		{7, [][]string{{"a"}, {"b"}, {"c"}, {"d"}, {"e"}, {"f"}, {"g"}}},
		{100, [][]string{{"a"}, {"b"}, {"c"}, {"d"}, {"e"}, {"f"}, {"g"}}},
		{0, [][]string{{"a", "b", "c", "d", "e", "f", "g"}}},
		{-3, [][]string{{"a", "b", "c", "d", "e", "f", "g"}}},
	}
	for _, c := range cases {
		got := Partition(names, c.parts)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Partition(%d) = %v, want %v", c.parts, got, c.want)
		}
	}
	if got := Partition(nil, 4); got != nil {
		t.Errorf("Partition(nil, 4) = %v, want nil", got)
	}
}

// TestPartitionCoversAll pins the invariant the scatter-gather path relies
// on: every name appears in exactly one shard, in order, for any shard
// count.
func TestPartitionCoversAll(t *testing.T) {
	names := make([]string, 19)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	for parts := 1; parts <= 25; parts++ {
		var flat []string
		for _, p := range Partition(names, parts) {
			if len(p) == 0 {
				t.Fatalf("parts=%d: empty shard", parts)
			}
			flat = append(flat, p...)
		}
		if !reflect.DeepEqual(flat, names) {
			t.Fatalf("parts=%d: concatenation %v != %v", parts, flat, names)
		}
	}
}

func TestResultSetFromReports(t *testing.T) {
	reps := []*profile.Report{
		{Name: "fir.mmx", Cycles: 100},
		nil,
		{Name: "fft.c", Cycles: 2000},
	}
	rs := ResultSetFromReports(reps)
	if len(rs) != 2 {
		t.Fatalf("got %d results, want 2", len(rs))
	}
	if rs["fir.mmx"].Report.Cycles != 100 || rs["fft.c"].Report.Cycles != 2000 {
		t.Fatalf("reports misplaced: %+v", rs)
	}
}

// TestResultSetFromReportsRendersTables asserts a rebuilt set renders the
// same Table 2 bytes as the original result set — the property the fleet
// coordinator's /suite endpoint depends on.
func TestResultSetFromReportsRendersTables(t *testing.T) {
	orig := ResultSet{
		"fir.c":   {Report: &profile.Report{Name: "fir.c", StaticInstructions: 10, Uops: 20, DynamicInstructions: 30, MemoryReferences: 3, Cycles: 50}},
		"fir.mmx": {Report: &profile.Report{Name: "fir.mmx", StaticInstructions: 5, Uops: 10, DynamicInstructions: 12, MemoryReferences: 2, Cycles: 20}},
	}
	var reps []*profile.Report
	for _, r := range orig {
		reps = append(reps, r.Report)
	}
	rebuilt := ResultSetFromReports(reps)
	if got, want := Table2(rebuilt), Table2(orig); got != want {
		t.Errorf("Table2 mismatch:\n got: %q\nwant: %q", got, want)
	}
	if got, want := Table3(rebuilt), Table3(orig); got != want {
		t.Errorf("Table3 mismatch:\n got: %q\nwant: %q", got, want)
	}
}
