// Package g722 implements the ITU-T G.722 wideband speech codec at
// 64 kbit/s: a 24-tap quadrature-mirror filter bank splits 16 kHz input
// into two 8 kHz sub-bands, the lower band is coded with 6-bit ADPCM and
// the upper band with 2-bit ADPCM, each with the standard adaptive
// quantizer scale and pole/zero predictor adaptation (blocks 2–4 of the
// recommendation). Structure and constants follow the ITU reference
// implementation.
//
// This package is the pure-Go reference for the g722 benchmark: the VM
// programs run the same per-sample pipeline and are validated against it.
package g722

// saturate clamps to int16 range.
func saturate(v int32) int32 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return v
}

// band holds the per-band ADPCM predictor state (blocks 2-4).
type band struct {
	s, sp, sz int32
	r         [3]int32
	a, ap     [3]int32
	p         [3]int32
	d         [7]int32
	b, bp     [7]int32
	sg        [7]int32
	nb, det   int32
}

// Quantizer and adaptation tables from the recommendation.
var (
	qmfCoeffs = [12]int32{3, -11, 12, 32, -210, 951, 3876, -805, 362, -156, 53, -11}

	q6 = [32]int32{0, 35, 72, 110, 150, 190, 233, 276, 323, 370, 422, 473,
		530, 587, 650, 714, 786, 858, 940, 1023, 1121, 1219, 1339, 1458,
		1612, 1765, 1980, 2195, 2557, 2919, 0, 0}
	iln = [32]int32{0, 63, 62, 31, 30, 29, 28, 27, 26, 25, 24, 23, 22, 21,
		20, 19, 18, 17, 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 0}
	ilp = [32]int32{0, 61, 60, 59, 58, 57, 56, 55, 54, 53, 52, 51, 50, 49,
		48, 47, 46, 45, 44, 43, 42, 41, 40, 39, 38, 37, 36, 35, 34, 33, 32, 0}
	wl   = [8]int32{-60, -30, 58, 172, 334, 538, 1198, 3042}
	rl42 = [16]int32{0, 7, 6, 5, 4, 3, 2, 1, 7, 6, 5, 4, 3, 2, 1, 0}
	ilb  = [32]int32{2048, 2093, 2139, 2186, 2233, 2282, 2332, 2383,
		2435, 2489, 2543, 2599, 2656, 2714, 2774, 2834,
		2896, 2960, 3025, 3091, 3158, 3228, 3298, 3371,
		3444, 3520, 3597, 3676, 3756, 3838, 3922, 4008}
	qm4 = [16]int32{0, -20456, -12896, -8968, -6288, -4240, -2584, -1200,
		20456, 12896, 8968, 6288, 4240, 2584, 1200, 0}
	qm2 = [4]int32{-7408, -1616, 7408, 1616}
	qm6 = [64]int32{
		-136, -136, -136, -136, -24808, -21904, -19008, -16704,
		-14984, -13512, -12280, -11192, -10232, -9360, -8576, -7856,
		-7192, -6576, -6000, -5456, -4944, -4464, -4008, -3576,
		-3168, -2776, -2400, -2032, -1688, -1360, -1040, -728,
		24808, 21904, 19008, 16704, 14984, 13512, 12280, 11192,
		10232, 9360, 8576, 7856, 7192, 6576, 6000, 5456,
		4944, 4464, 4008, 3576, 3168, 2776, 2400, 2032,
		1688, 1360, 1040, 728, 432, 136, -432, -136}
	ihn = [3]int32{0, 1, 0}
	ihp = [3]int32{0, 3, 2}
	wh  = [3]int32{0, -214, 798}
	rh2 = [4]int32{2, 1, 2, 1}
)

// block4 is the shared predictor adaptation (RECONS, PARREC, UPPOL2,
// UPPOL1, UPZERO, DELAYA, FILTEP, FILTEZ, PREDIC).
func (bd *band) block4(d int32) {
	bd.d[0] = d
	bd.r[0] = saturate(bd.s + d)
	bd.p[0] = saturate(bd.sz + d)

	// UPPOL2
	for i := 0; i < 3; i++ {
		bd.sg[i] = bd.p[i] >> 15
	}
	wd1 := saturate(bd.a[1] << 2)
	wd2 := wd1
	if bd.sg[0] == bd.sg[1] {
		wd2 = -wd1
	}
	if wd2 > 32767 {
		wd2 = 32767
	}
	wd3 := int32(-128)
	if bd.sg[0] == bd.sg[2] {
		wd3 = 128
	}
	wd3 += wd2 >> 7
	wd3 += (bd.a[2] * 32512) >> 15
	if wd3 > 12288 {
		wd3 = 12288
	} else if wd3 < -12288 {
		wd3 = -12288
	}
	bd.ap[2] = wd3

	// UPPOL1
	bd.sg[0] = bd.p[0] >> 15
	bd.sg[1] = bd.p[1] >> 15
	wd1 = int32(-192)
	if bd.sg[0] == bd.sg[1] {
		wd1 = 192
	}
	wd2 = (bd.a[1] * 32640) >> 15
	bd.ap[1] = saturate(wd1 + wd2)
	wd3 = saturate(15360 - bd.ap[2])
	if bd.ap[1] > wd3 {
		bd.ap[1] = wd3
	} else if bd.ap[1] < -wd3 {
		bd.ap[1] = -wd3
	}

	// UPZERO
	wd1 = 0
	if d != 0 {
		wd1 = 128
	}
	bd.sg[0] = d >> 15
	for i := 1; i < 7; i++ {
		bd.sg[i] = bd.d[i] >> 15
		wd2 := -wd1
		if bd.sg[i] == bd.sg[0] {
			wd2 = wd1
		}
		wd3 := (bd.b[i] * 32640) >> 15
		bd.bp[i] = saturate(wd2 + wd3)
	}

	// DELAYA
	for i := 6; i > 0; i-- {
		bd.d[i] = bd.d[i-1]
		bd.b[i] = bd.bp[i]
	}
	for i := 2; i > 0; i-- {
		bd.r[i] = bd.r[i-1]
		bd.p[i] = bd.p[i-1]
		bd.a[i] = bd.ap[i]
	}

	// FILTEP
	wd1 = saturate(bd.r[1] + bd.r[1])
	wd1 = (bd.a[1] * wd1) >> 15
	wd2 = saturate(bd.r[2] + bd.r[2])
	wd2 = (bd.a[2] * wd2) >> 15
	bd.sp = saturate(wd1 + wd2)

	// FILTEZ
	bd.sz = 0
	for i := 6; i > 0; i-- {
		wd := saturate(bd.d[i] + bd.d[i])
		bd.sz += (bd.b[i] * wd) >> 15
	}
	bd.sz = saturate(bd.sz)

	// PREDIC
	bd.s = saturate(bd.sp + bd.sz)
}

// logscl updates the lower-band quantizer scale (blocks 3L).
func (bd *band) logscl(il int32) {
	ril := il >> 2
	wd := (bd.nb * 127) >> 7
	bd.nb = wd + wl[rl42[ril]]
	if bd.nb < 0 {
		bd.nb = 0
	} else if bd.nb > 18432 {
		bd.nb = 18432
	}
	wd1 := (bd.nb >> 6) & 31
	wd2 := int32(8) - (bd.nb >> 11)
	var wd3 int32
	if wd2 < 0 {
		wd3 = ilb[wd1] << uint(-wd2)
	} else {
		wd3 = ilb[wd1] >> uint(wd2)
	}
	bd.det = wd3 << 2
}

// logsch updates the higher-band quantizer scale (blocks 3H).
func (bd *band) logsch(ih int32) {
	wd := (bd.nb * 127) >> 7
	bd.nb = wd + wh[rh2[ih]]
	if bd.nb < 0 {
		bd.nb = 0
	} else if bd.nb > 22528 {
		bd.nb = 22528
	}
	wd1 := (bd.nb >> 6) & 31
	wd2 := int32(10) - (bd.nb >> 11)
	var wd3 int32
	if wd2 < 0 {
		wd3 = ilb[wd1] << uint(-wd2)
	} else {
		wd3 = ilb[wd1] >> uint(wd2)
	}
	bd.det = wd3 << 2
}

// Encoder compresses 16 kHz 16-bit audio to 64 kbit/s G.722.
type Encoder struct {
	low, high band
	x         [24]int32
}

// NewEncoder returns an initialized encoder.
func NewEncoder() *Encoder {
	e := &Encoder{}
	e.low.det = 32
	e.high.det = 8
	return e
}

// EncodePair consumes two consecutive input samples and returns one
// 8-bit codeword (2 samples in, 1 byte out: 64 kbit/s from 256 kbit/s PCM).
func (e *Encoder) EncodePair(s0, s1 int16) uint8 {
	// Transmit QMF.
	copy(e.x[:22], e.x[2:24])
	e.x[22] = int32(s0)
	e.x[23] = int32(s1)
	var sumOdd, sumEven int32
	for i := 0; i < 12; i++ {
		sumOdd += e.x[2*i] * qmfCoeffs[i]
		sumEven += e.x[2*i+1] * qmfCoeffs[11-i]
	}
	xlow := (sumEven + sumOdd) >> 14
	xhigh := (sumEven - sumOdd) >> 14

	// Lower band: 6-bit ADPCM.
	el := saturate(xlow - e.low.s)
	wd := el
	if el < 0 {
		wd = -(el + 1)
	}
	i := int32(1)
	for ; i < 30; i++ {
		wd1 := (q6[i] * e.low.det) >> 12
		if wd < wd1 {
			break
		}
	}
	var ilow int32
	if el < 0 {
		ilow = iln[i]
	} else {
		ilow = ilp[i]
	}
	ril := ilow >> 2
	dlow := (e.low.det * qm4[ril]) >> 15
	e.low.logscl(ilow)
	e.low.block4(dlow)

	// Higher band: 2-bit ADPCM.
	eh := saturate(xhigh - e.high.s)
	wd = eh
	if eh < 0 {
		wd = -(eh + 1)
	}
	wd1 := (564 * e.high.det) >> 12
	mih := int32(1)
	if wd >= wd1 {
		mih = 2
	}
	var ihigh int32
	if eh < 0 {
		ihigh = ihn[mih]
	} else {
		ihigh = ihp[mih]
	}
	dhigh := (e.high.det * qm2[ihigh]) >> 15
	e.high.logsch(ihigh)
	e.high.block4(dhigh)

	return uint8(ihigh<<6 | ilow)
}

// Encode compresses a sample buffer (odd trailing sample is dropped).
func (e *Encoder) Encode(samples []int16) []uint8 {
	out := make([]uint8, 0, len(samples)/2)
	for i := 0; i+1 < len(samples); i += 2 {
		out = append(out, e.EncodePair(samples[i], samples[i+1]))
	}
	return out
}

// Decoder expands 64 kbit/s G.722 back to 16 kHz 16-bit audio.
type Decoder struct {
	low, high band
	x         [24]int32
}

// NewDecoder returns an initialized decoder.
func NewDecoder() *Decoder {
	d := &Decoder{}
	d.low.det = 32
	d.high.det = 8
	return d
}

// DecodeByte expands one codeword into two output samples.
func (d *Decoder) DecodeByte(code uint8) (int16, int16) {
	ilow := int32(code) & 0x3F
	ihigh := (int32(code) >> 6) & 0x03

	// Lower band. The output reconstruction uses the 6-bit inverse
	// quantizer, but the predictor adapts on the 4-bit inverse — the same
	// value the encoder used — so both predictors track exactly.
	dlowt := (d.low.det * qm4[ilow>>2]) >> 15
	rlow := saturate((d.low.det*qm6[ilow])>>15 + d.low.s)
	if rlow > 16383 {
		rlow = 16383
	} else if rlow < -16384 {
		rlow = -16384
	}
	d.low.logscl(ilow)
	d.low.block4(dlowt)

	// Higher band.
	dhigh := (d.high.det * qm2[ihigh]) >> 15
	rhigh := saturate(dhigh + d.high.s)
	if rhigh > 16383 {
		rhigh = 16383
	} else if rhigh < -16384 {
		rhigh = -16384
	}
	d.high.logsch(ihigh)
	d.high.block4(dhigh)

	// Receive QMF.
	copy(d.x[:22], d.x[2:24])
	d.x[22] = rlow + rhigh
	d.x[23] = rlow - rhigh
	var xout1, xout2 int32
	for i := 0; i < 12; i++ {
		xout2 += d.x[2*i] * qmfCoeffs[i]
		xout1 += d.x[2*i+1] * qmfCoeffs[11-i]
	}
	return int16(saturate(xout1 >> 11)), int16(saturate(xout2 >> 11))
}

// Decode expands a codeword buffer.
func (d *Decoder) Decode(codes []uint8) []int16 {
	out := make([]int16, 0, 2*len(codes))
	for _, c := range codes {
		a, b := d.DecodeByte(c)
		out = append(out, a, b)
	}
	return out
}
