package g722

import (
	"math"
	"testing"

	"mmxdsp/internal/synth"
)

// snr computes the signal-to-noise ratio in dB between a reference and a
// reconstruction, allowing a fixed sample delay (the QMF bank is causal
// with ~22 samples of group delay).
func snr(ref, got []int16, delay int) float64 {
	var sig, noise float64
	n := len(ref) - delay
	if n > len(got)-delay {
		n = len(got) - delay
	}
	for i := 0; i < n-delay; i++ {
		r := float64(ref[i])
		g := float64(got[i+delay])
		sig += r * r
		noise += (r - g) * (r - g)
	}
	if noise == 0 {
		return 99
	}
	return 10 * math.Log10(sig/noise)
}

func bestSNR(ref, got []int16) (float64, int) {
	best, bestDelay := -99.0, 0
	for d := 0; d < 40; d++ {
		if s := snr(ref, got, d); s > best {
			best, bestDelay = s, d
		}
	}
	return best, bestDelay
}

func TestRoundTripSpeechSNR(t *testing.T) {
	speech := synth.Speech(3000, 1)
	in := make([]int16, len(speech))
	for i, v := range speech {
		in[i] = int16(v * 12000)
	}
	codes := NewEncoder().Encode(in)
	if len(codes) != len(in)/2 {
		t.Fatalf("code count %d, want %d (2 samples per byte)", len(codes), len(in)/2)
	}
	out := NewDecoder().Decode(codes)
	if len(out) != 2*len(codes) {
		t.Fatalf("decoded %d samples, want %d", len(out), 2*len(codes))
	}
	s, d := bestSNR(in, out)
	t.Logf("G.722 speech SNR = %.1f dB at delay %d", s, d)
	if s < 15 {
		t.Errorf("round-trip SNR = %.1f dB, want >= 15 (toll-quality wideband)", s)
	}
}

func TestRoundTripToneSNR(t *testing.T) {
	// A 1 kHz tone at 16 kHz sampling sits well inside the lower band.
	n := 2048
	in := make([]int16, n)
	for i := range in {
		in[i] = int16(10000 * math.Sin(2*math.Pi*1000*float64(i)/16000))
	}
	out := NewDecoder().Decode(NewEncoder().Encode(in))
	s, _ := bestSNR(in, out)
	if s < 20 {
		t.Errorf("tone SNR = %.1f dB, want >= 20", s)
	}
}

func TestSilenceStaysQuiet(t *testing.T) {
	in := make([]int16, 512)
	out := NewDecoder().Decode(NewEncoder().Encode(in))
	for i, v := range out {
		if v > 200 || v < -200 {
			t.Fatalf("silence decoded to %d at %d", v, i)
		}
	}
}

func TestEncoderDeterministic(t *testing.T) {
	speech := synth.Speech(500, 9)
	in := make([]int16, len(speech))
	for i, v := range speech {
		in[i] = int16(v * 8000)
	}
	a := NewEncoder().Encode(in)
	b := NewEncoder().Encode(in)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("encoder must be deterministic")
		}
	}
}

func TestCodewordsUseFullRange(t *testing.T) {
	speech := synth.Speech(3000, 1)
	in := make([]int16, len(speech))
	for i, v := range speech {
		in[i] = int16(v * 12000)
	}
	codes := NewEncoder().Encode(in)
	var lowSeen, highSeen [64]bool
	distinctLow, distinctHigh := 0, 0
	for _, c := range codes {
		l := c & 0x3F
		h := c >> 6
		if !lowSeen[l] {
			lowSeen[l] = true
			distinctLow++
		}
		if !highSeen[h] {
			highSeen[h] = true
			distinctHigh++
		}
	}
	if distinctLow < 20 {
		t.Errorf("only %d distinct lower-band codes; quantizer not exercising range", distinctLow)
	}
	if distinctHigh < 3 {
		t.Errorf("only %d distinct upper-band codes", distinctHigh)
	}
}

func TestOddLengthInputDropsTrailingSample(t *testing.T) {
	in := make([]int16, 101)
	codes := NewEncoder().Encode(in)
	if len(codes) != 50 {
		t.Errorf("odd input gave %d codes, want 50", len(codes))
	}
}

func TestSaturate(t *testing.T) {
	if saturate(40000) != 32767 || saturate(-40000) != -32768 || saturate(5) != 5 {
		t.Error("saturate wrong")
	}
}
