package pentium

import (
	"testing"

	"mmxdsp/internal/isa"
	"mmxdsp/internal/vm"
)

func reg(r isa.Reg) isa.Operand { return isa.Operand{Kind: isa.KindReg, Reg: r} }
func memOp(base isa.Reg) isa.Operand {
	return isa.Operand{Kind: isa.KindMem, Reg: base, Size: isa.SizeD}
}

func ev(in *isa.Inst) vm.Event { return vm.Event{Inst: in, Measured: true} }

func TestIndependentSimpleInstructionsPair(t *testing.T) {
	m := New(DefaultConfig())
	i1 := &isa.Inst{Op: isa.ADD, A: reg(isa.EAX), B: reg(isa.EBX)}
	i2 := &isa.Inst{Op: isa.ADD, A: reg(isa.ECX), B: reg(isa.EDX)}
	c1 := m.Retire(ev(i1))
	c2 := m.Retire(ev(i2))
	if c1 != 1 || c2 != 0 {
		t.Errorf("pair costs = %d, %d; want 1, 0", c1, c2)
	}
	if m.Cycles() != 1 || m.Pairs() != 1 {
		t.Errorf("cycles=%d pairs=%d, want 1, 1", m.Cycles(), m.Pairs())
	}
}

func TestDependentInstructionsDoNotPair(t *testing.T) {
	m := New(DefaultConfig())
	i1 := &isa.Inst{Op: isa.ADD, A: reg(isa.EAX), B: reg(isa.EBX)}
	i2 := &isa.Inst{Op: isa.ADD, A: reg(isa.ECX), B: reg(isa.EAX)} // reads eax
	m.Retire(ev(i1))
	m.Retire(ev(i2))
	if m.Cycles() != 2 || m.Pairs() != 0 {
		t.Errorf("cycles=%d pairs=%d, want 2, 0", m.Cycles(), m.Pairs())
	}
}

func TestWAWDoesNotPair(t *testing.T) {
	m := New(DefaultConfig())
	i1 := &isa.Inst{Op: isa.MOV, A: reg(isa.EAX), B: reg(isa.EBX)}
	i2 := &isa.Inst{Op: isa.MOV, A: reg(isa.EAX), B: reg(isa.ECX)}
	m.Retire(ev(i1))
	m.Retire(ev(i2))
	if m.Pairs() != 0 {
		t.Error("two writes to eax must not pair")
	}
}

func TestTwoMemoryRefsDoNotPair(t *testing.T) {
	m := New(DefaultConfig())
	i1 := &isa.Inst{Op: isa.MOV, A: reg(isa.EAX), B: memOp(isa.ESI)}
	i2 := &isa.Inst{Op: isa.MOV, A: reg(isa.EBX), B: memOp(isa.EDI)}
	m.Retire(ev(i1))
	m.Retire(ev(i2))
	if m.Pairs() != 0 {
		t.Error("two memory references must not pair")
	}
}

func TestShiftOnlyInU(t *testing.T) {
	m := New(DefaultConfig())
	i1 := &isa.Inst{Op: isa.ADD, A: reg(isa.EAX), B: reg(isa.EBX)}
	i2 := &isa.Inst{Op: isa.SHL, A: reg(isa.ECX), B: isa.Operand{Kind: isa.KindImm, Imm: 2}}
	m.Retire(ev(i1))
	m.Retire(ev(i2))
	if m.Pairs() != 0 {
		t.Error("shift must not issue in V")
	}
	// But an add may pair behind the shift.
	i3 := &isa.Inst{Op: isa.ADD, A: reg(isa.EDX), B: reg(isa.EBX)}
	m.Retire(ev(i3))
	if m.Pairs() != 1 {
		t.Error("simple op should pair behind a shift in U")
	}
}

func TestImulLatencyAndNoPairing(t *testing.T) {
	m := New(DefaultConfig())
	i1 := &isa.Inst{Op: isa.IMUL, A: reg(isa.EAX), B: reg(isa.EBX)}
	c := m.Retire(ev(i1))
	if c != 10 {
		t.Errorf("imul cost = %d, want 10", c)
	}
	i2 := &isa.Inst{Op: isa.ADD, A: reg(isa.ECX), B: reg(isa.EDX)}
	m.Retire(ev(i2))
	if m.Pairs() != 0 {
		t.Error("nothing pairs behind imul")
	}
}

func TestTwoMMXArithPair(t *testing.T) {
	m := New(DefaultConfig())
	i1 := &isa.Inst{Op: isa.PADDW, A: reg(isa.MM0), B: reg(isa.MM1)}
	i2 := &isa.Inst{Op: isa.PSUBW, A: reg(isa.MM2), B: reg(isa.MM3)}
	m.Retire(ev(i1))
	m.Retire(ev(i2))
	if m.Pairs() != 1 || m.Cycles() != 1 {
		t.Errorf("MMX pair: pairs=%d cycles=%d", m.Pairs(), m.Cycles())
	}
}

func TestTwoMMXMultipliesDoNotPair(t *testing.T) {
	m := New(DefaultConfig())
	i1 := &isa.Inst{Op: isa.PMADDWD, A: reg(isa.MM0), B: reg(isa.MM1)}
	i2 := &isa.Inst{Op: isa.PMULLW, A: reg(isa.MM2), B: reg(isa.MM3)}
	m.Retire(ev(i1))
	m.Retire(ev(i2))
	if m.Pairs() != 0 {
		t.Error("there is only one MMX multiplier")
	}
	// The multiplier is pipelined: independent multiplies issue on
	// consecutive cycles even though each result takes 3 cycles.
	if m.Cycles() != 2 {
		t.Errorf("cycles = %d, want 2 (pipelined multiplier)", m.Cycles())
	}
}

func TestMultiplierLatencyStallsConsumer(t *testing.T) {
	m := New(DefaultConfig())
	mul := &isa.Inst{Op: isa.PMADDWD, A: reg(isa.MM0), B: reg(isa.MM1)}
	use := &isa.Inst{Op: isa.PADDD, A: reg(isa.MM6), B: reg(isa.MM0)}
	m.Retire(ev(mul)) // issues at 0, mm0 ready at 3
	c := m.Retire(ev(use))
	if m.Cycles() != 4 || c != 3 {
		t.Errorf("cycles = %d (delta %d), want 4 (stall to cycle 3, finish 4)", m.Cycles(), c)
	}
}

func TestFPAdderIsPipelined(t *testing.T) {
	m := New(DefaultConfig())
	// Independent multiplies: 1 cycle each. A dependent accumulate chain
	// stalls on the 3-cycle adder latency.
	f1 := &isa.Inst{Op: isa.FMUL, A: reg(isa.FP1), B: reg(isa.FP5)}
	f2 := &isa.Inst{Op: isa.FMUL, A: reg(isa.FP2), B: reg(isa.FP5)}
	m.Retire(ev(f1))
	m.Retire(ev(f2))
	if m.Cycles() != 2 {
		t.Errorf("independent fmuls = %d cycles, want 2", m.Cycles())
	}
	a1 := &isa.Inst{Op: isa.FADD, A: reg(isa.FP0), B: reg(isa.FP1)}
	a2 := &isa.Inst{Op: isa.FADD, A: reg(isa.FP0), B: reg(isa.FP2)}
	m.Retire(ev(a1)) // fp1 ready at 0+3=3; issues at 3, fp0 ready at 6
	m.Retire(ev(a2)) // stalls until 6
	if m.Cycles() != 7 {
		t.Errorf("dependent fadd chain = %d cycles, want 7", m.Cycles())
	}
}

func TestBlockingOperationsOccupyFullLatency(t *testing.T) {
	m := New(DefaultConfig())
	div := &isa.Inst{Op: isa.IDIV, A: reg(isa.EBX)}
	if c := m.Retire(ev(div)); c != 46 {
		t.Errorf("idiv advanced %d cycles, want 46 (unpipelined)", c)
	}
}

func TestMemPenaltyAddsToCost(t *testing.T) {
	m := New(DefaultConfig())
	in := &isa.Inst{Op: isa.MOV, A: reg(isa.EAX), B: memOp(isa.ESI)}
	e := ev(in)
	e.MemPenalty = 11
	if c := m.Retire(e); c != 12 {
		t.Errorf("cost = %d, want 12 (1 + 11 penalty)", c)
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	m := New(DefaultConfig())
	br := &isa.Inst{Op: isa.JNE, Target: 0}
	// A loop branch at PC 5 taken 20 times: the first execution
	// mispredicts (BTB cold, static not-taken), later ones hit.
	for i := 0; i < 20; i++ {
		m.Retire(vm.Event{PC: 5, Inst: br, Taken: true, Measured: true})
	}
	if m.Branches() != 20 {
		t.Errorf("branches = %d, want 20", m.Branches())
	}
	if m.Mispredicts() != 1 {
		t.Errorf("mispredicts = %d, want 1 (cold BTB only)", m.Mispredicts())
	}
	// Loop exit (not taken) mispredicts once.
	m.Retire(vm.Event{PC: 5, Inst: br, Taken: false, Measured: true})
	if m.Mispredicts() != 2 {
		t.Errorf("mispredicts = %d, want 2 after loop exit", m.Mispredicts())
	}
}

func TestDisableBTBChargesEveryTaken(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableBTB = true
	m := New(cfg)
	br := &isa.Inst{Op: isa.JNE, Target: 0}
	for i := 0; i < 10; i++ {
		m.Retire(vm.Event{PC: 5, Inst: br, Taken: true, Measured: true})
	}
	if m.Mispredicts() != 10 {
		t.Errorf("mispredicts = %d, want 10 with BTB disabled", m.Mispredicts())
	}
}

func TestEmmsAblation(t *testing.T) {
	emms := &isa.Inst{Op: isa.EMMS}
	m := New(DefaultConfig())
	if c := m.Retire(ev(emms)); c != 50 {
		t.Errorf("emms cost = %d, want 50", c)
	}
	cfg := DefaultConfig()
	cfg.EmmsLatency = 0
	m = New(cfg)
	if c := m.Retire(ev(emms)); c != 0 {
		t.Errorf("ablated emms cost = %d, want 0", c)
	}
}

func TestMMXMulAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MMXMulLatency = 10
	m := New(cfg)
	in := &isa.Inst{Op: isa.PMADDWD, A: reg(isa.MM0), B: reg(isa.MM1)}
	if c := m.Retire(ev(in)); c != 10 {
		t.Errorf("ablated pmaddwd cost = %d, want 10", c)
	}
}

func TestDisablePairing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisablePairing = true
	m := New(cfg)
	i1 := &isa.Inst{Op: isa.ADD, A: reg(isa.EAX), B: reg(isa.EBX)}
	i2 := &isa.Inst{Op: isa.ADD, A: reg(isa.ECX), B: reg(isa.EDX)}
	m.Retire(ev(i1))
	m.Retire(ev(i2))
	if m.Cycles() != 2 || m.Pairs() != 0 {
		t.Errorf("cycles=%d pairs=%d with pairing disabled", m.Cycles(), m.Pairs())
	}
}

func TestTakenTransferBreaksPairWindow(t *testing.T) {
	m := New(DefaultConfig())
	// A taken jump cannot host a V partner from the fall-through path.
	jmp := &isa.Inst{Op: isa.JMP, Target: 9}
	m.Retire(vm.Event{Inst: jmp, Taken: true, Measured: true})
	i2 := &isa.Inst{Op: isa.ADD, A: reg(isa.EAX), B: reg(isa.EBX)}
	m.Retire(ev(i2))
	if m.Pairs() != 0 {
		t.Error("nothing pairs behind a taken transfer")
	}
}
