// Package pentium models Pentium-with-MMX cycle timing for a retired
// instruction stream: dual-issue U/V pipe pairing, a register scoreboard
// that charges dependency stalls against each unit's result latency
// (pipelined FP adder/multiplier and MMX multiplier: one issue per cycle,
// three-cycle results), blocking microcoded operations (imul, idiv, fdiv,
// transcendentals, emms), a branch-target-buffer predictor, and the
// data-cache penalties attached to each event by the VM's cache model.
//
// This is the methodology the paper's measurement tool used: "Clock cycles
// are calculated from the known latency of each assembly instruction and
// known latency of each penalty on the Pentium, e.g., cache misses and
// branch target buffer misses."
package pentium

import (
	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/vm"
)

// Config tunes the timing model; the zero value of each field selects the
// documented default. Ablation benchmarks override individual fields.
type Config struct {
	// MispredictPenalty is the cycles charged when the BTB prediction is
	// wrong (default 4).
	MispredictPenalty int
	// DisablePairing turns off dual issue (ablation).
	DisablePairing bool
	// DisableBTB makes every conditional branch pay the penalty when
	// taken, modeling a machine without branch prediction (ablation).
	DisableBTB bool
	// EmmsLatency overrides the emms cost if non-negative; -1 keeps the
	// ISA table value. Use 0 to ablate the MMX-FP switch penalty.
	EmmsLatency int
	// MMXMulLatency overrides pmullw/pmulhw/pmaddwd if positive
	// (ablation for the matvec superlinearity analysis).
	MMXMulLatency int
}

// DefaultConfig returns the standard Pentium-with-MMX configuration.
func DefaultConfig() Config {
	return Config{MispredictPenalty: 4, EmmsLatency: -1}
}

// instTiming is the fully resolved, configuration-applied timing record of
// one static instruction: everything Retire needs that does not depend on
// dynamic state. Bound models index a per-PC table of these instead of
// re-deriving latencies, occupancies and register sets per retired event.
type instTiming struct {
	lat, occ     int
	reads        []isa.Reg
	writes       []isa.Reg
	refsMem      bool
	branch       bool
	pairU, pairV bool
}

// scratchTiming is one reusable timing slot for the unbound (event-at-a-
// time) path, with persistent register-set buffers to avoid allocation.
type scratchTiming struct {
	t         instTiming
	readsBuf  []isa.Reg
	writesBuf []isa.Reg
}

// Model accumulates cycles for a retired instruction stream.
type Model struct {
	cfg Config

	now uint64
	// readyAt[r] is the cycle at which register r's latest value becomes
	// available to consumers.
	readyAt [isa.NumRegs]uint64

	// Pairing state: whether the previous instruction can still host a
	// V-pipe partner, the issue cycle it would share, and its timing.
	haveU  bool
	uIssue uint64
	uT     *instTiming

	paired   uint64
	branches uint64
	mispred  uint64

	// seq counts state-mutating operations (per-event retires, block and
	// chain applies). Chain steady-state detection (chain.go) compares it
	// across calls to prove nothing else touched the model between two
	// applications of the same chain variant.
	seq uint64

	// lastChain/lastCosts/lastSeq record the most recent chain apply (the
	// chain, its schedule's identity-bearing cost slice, and seq right
	// after). Predecessor-keyed steady state (chain.go) uses them to
	// recognize a re-entry through exactly one known intervening apply.
	lastChain *ChainTiming
	lastCosts []uint32
	lastSeq   uint64

	btb btb

	// pcT is the per-PC timing table installed by Bind; nil models derive
	// timing from each event's Inst on the fly.
	pcT []instTiming
	// blockT is the per-block static schedule table installed by Bind
	// (see block.go); nil models decline RetireBlock. sim is the lazily
	// allocated scratch model block replays run on, sigBuf the reusable
	// signature buffer RetireBlock builds lookups in.
	blockT []blockTiming
	sim    *Model
	sigBuf []uint8
	// scratch holds two alternating slots for the unbound path: the
	// current instruction's timing plus the pending U instruction's (which
	// survives exactly one event, so two slots suffice).
	scratch [2]scratchTiming
	si      int
}

// New builds a timing model with the given configuration.
func New(cfg Config) *Model {
	if cfg.MispredictPenalty == 0 {
		cfg.MispredictPenalty = 4
	}
	m := &Model{cfg: cfg}
	m.btb.reset()
	return m
}

// Bind installs the per-PC timing table for a linked program, applying the
// model's configuration overrides once per static instruction. A bound
// model must only be fed events produced by running that program (event PC
// indexes the table); events whose PC falls outside the program — as in
// synthetic streams — fall back to per-event derivation.
func (m *Model) Bind(prog *asm.Program) {
	meta := prog.InstMeta()
	m.pcT = make([]instTiming, len(meta))
	for i := range meta {
		m.fillTiming(&m.pcT[i], prog.Insts[i].Op, &meta[i])
	}
	m.bindBlocks(prog)
}

// fillTiming resolves one instruction's timing under the configuration.
func (m *Model) fillTiming(t *instTiming, op isa.Op, md *isa.InstMeta) {
	lat := md.Latency
	switch {
	case op == isa.EMMS && m.cfg.EmmsLatency >= 0:
		lat = m.cfg.EmmsLatency
	case md.Class == isa.ClassMMXMul && m.cfg.MMXMulLatency > 0:
		lat = m.cfg.MMXMulLatency
	}
	occ := occupancy(op, lat)
	if md.Class == isa.ClassMMXMul && m.cfg.MMXMulLatency > 0 {
		// The ablation models an unpipelined multiplier like imul's.
		occ = lat
	}
	t.lat = lat
	t.occ = occ
	t.reads = md.Reads
	t.writes = md.Writes
	t.refsMem = md.RefsMem
	t.branch = md.Branch
	t.pairU = md.PairU
	t.pairV = md.PairV
}

// fallbackTiming derives timing for one event without a bound table,
// alternating between two scratch slots so the pending U instruction's
// record stays valid while the next event's is built.
func (m *Model) fallbackTiming(in *isa.Inst) *instTiming {
	s := &m.scratch[m.si]
	m.si ^= 1
	op := in.Op
	md := isa.InstMeta{
		Class:   op.Class(),
		Latency: op.Latency(),
		PairU:   op.PairableU(),
		PairV:   op.PairableV(),
		RefsMem: in.ReferencesMemory(),
		Branch:  op.IsBranch(),
	}
	s.readsBuf = in.RegsRead(s.readsBuf[:0])
	s.writesBuf = in.RegsWritten(s.writesBuf[:0])
	md.Reads, md.Writes = s.readsBuf, s.writesBuf
	m.fillTiming(&s.t, op, &md)
	return &s.t
}

// Cycles returns the total cycles charged so far.
func (m *Model) Cycles() uint64 { return m.now }

// Pairs returns how many instruction pairs dual-issued.
func (m *Model) Pairs() uint64 { return m.paired }

// Branches returns the conditional-branch count.
func (m *Model) Branches() uint64 { return m.branches }

// Mispredicts returns the mispredicted-branch count.
func (m *Model) Mispredicts() uint64 { return m.mispred }

// occupancy returns how many cycles the instruction blocks its issue pipe.
// Pipelined units (integer ALU, FP adder/multiplier, all MMX ALUs and the
// MMX multiplier, loads/stores) occupy one cycle; microcoded or
// unpipelined operations block for their full latency.
func occupancy(op isa.Op, lat int) int {
	switch op.Class() {
	case isa.ClassMul, isa.ClassDiv, isa.ClassFPDiv, isa.ClassFPTrans,
		isa.ClassEMMS, isa.ClassCall, isa.ClassRet:
		return lat
	}
	switch op {
	case isa.FILD, isa.FIST, isa.FCOM, isa.XCHG, isa.CDQ:
		return lat
	}
	return 1
}

// Retire processes one event and returns the cycles the clock advanced.
func (m *Model) Retire(ev vm.Event) int {
	m.seq++
	var t *instTiming
	if m.pcT != nil && ev.PC >= 0 && ev.PC < len(m.pcT) {
		t = &m.pcT[ev.PC]
	} else {
		t = m.fallbackTiming(ev.Inst)
	}

	// Dependency stall: wait for every source register.
	start := m.now
	for _, r := range t.reads {
		if rt := m.readyAt[r]; rt > start {
			start = rt
		}
	}

	var penalty int
	if t.branch {
		m.branches++
		var predictTaken bool
		if !m.cfg.DisableBTB {
			predictTaken = m.btb.predict(ev.PC)
		}
		if predictTaken != ev.Taken {
			m.mispred++
			penalty += m.cfg.MispredictPenalty
		}
		if !m.cfg.DisableBTB {
			m.btb.update(ev.PC, ev.Taken)
		}
	}
	penalty += ev.MemPenalty

	before := m.now

	// Dual issue: a stall-free pairable instruction joins the pending
	// U-pipe instruction's cycle.
	if !m.cfg.DisablePairing && m.haveU && start == m.now && penalty == 0 &&
		t.occ == 1 && t.pairV && m.canPairAsV(t) {
		m.paired++
		m.haveU = false
		m.setWrites(t.writes, m.uIssue+uint64(t.lat))
		return 0
	}

	issue := start
	m.now = issue + uint64(t.occ+penalty)
	m.setWrites(t.writes, issue+uint64(t.lat)+uint64(ev.MemPenalty))

	if t.pairU && !ev.Taken && penalty == 0 {
		m.haveU = true
		m.uIssue = issue
		m.uT = t
	} else {
		m.haveU = false
	}
	return int(m.now - before)
}

func (m *Model) setWrites(writes []isa.Reg, ready uint64) {
	for _, r := range writes {
		m.readyAt[r] = ready
	}
}

// canPairAsV reports whether an instruction (already known PairableV) may
// dual-issue in the V pipe behind the pending U instruction.
func (m *Model) canPairAsV(t *instTiming) bool {
	// The Pentium pairs at most one data memory reference per cycle
	// (two only in restricted same-bank cases, conservatively excluded).
	if m.uT.refsMem && t.refsMem {
		return false
	}
	// Register dependencies: V may not read or write anything U writes.
	for _, w := range m.uT.writes {
		for _, r := range t.reads {
			if r == w {
				return false
			}
		}
		for _, w2 := range t.writes {
			if w2 == w {
				return false
			}
		}
	}
	return true
}

// btb is a 256-entry direct-mapped branch target buffer with 2-bit
// saturating counters. Branches absent from the BTB are statically
// predicted not taken, as on the Pentium.
type btb struct {
	tags  [256]int32
	ctr   [256]uint8
	valid [256]bool
}

func (b *btb) reset() {
	for i := range b.valid {
		b.valid[i] = false
		b.tags[i] = 0
		b.ctr[i] = 0
	}
}

func (b *btb) predict(pc int) bool {
	i := pc & 255
	return b.valid[i] && b.tags[i] == int32(pc) && b.ctr[i] >= 2
}

// slotState encodes pc's slot for chain signatures: 0 when pc does not own
// its direct-mapped slot (invalid or foreign-tagged — indistinguishable to
// every chain branch, see chain.go), 2+ctr when it does.
func (b *btb) slotState(pc int) uint8 {
	i := pc & 255
	if !b.valid[i] || b.tags[i] != int32(pc) {
		return 0
	}
	return 2 + b.ctr[i]
}

func (b *btb) update(pc int, taken bool) {
	i := pc & 255
	if !b.valid[i] || b.tags[i] != int32(pc) {
		// Allocate on taken, matching BTB fill behavior.
		if taken {
			b.valid[i] = true
			b.tags[i] = int32(pc)
			b.ctr[i] = 2
		}
		return
	}
	if taken {
		if b.ctr[i] < 3 {
			b.ctr[i]++
		}
	} else if b.ctr[i] > 0 {
		b.ctr[i]--
	}
}

// saturated reports whether an update(pc, taken) would leave every future
// prediction unchanged: the slot is pinned at the direction's extreme, or
// the update would be a no-op (not-taken miss, which neither allocates nor
// trains).
func (b *btb) saturated(pc int, taken bool) bool {
	i := pc & 255
	if !b.valid[i] || b.tags[i] != int32(pc) {
		return !taken
	}
	if taken {
		return b.ctr[i] == 3
	}
	return b.ctr[i] == 0
}
