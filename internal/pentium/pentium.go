// Package pentium models Pentium-with-MMX cycle timing for a retired
// instruction stream: dual-issue U/V pipe pairing, a register scoreboard
// that charges dependency stalls against each unit's result latency
// (pipelined FP adder/multiplier and MMX multiplier: one issue per cycle,
// three-cycle results), blocking microcoded operations (imul, idiv, fdiv,
// transcendentals, emms), a branch-target-buffer predictor, and the
// data-cache penalties attached to each event by the VM's cache model.
//
// This is the methodology the paper's measurement tool used: "Clock cycles
// are calculated from the known latency of each assembly instruction and
// known latency of each penalty on the Pentium, e.g., cache misses and
// branch target buffer misses."
package pentium

import (
	"mmxdsp/internal/isa"
	"mmxdsp/internal/vm"
)

// Config tunes the timing model; the zero value of each field selects the
// documented default. Ablation benchmarks override individual fields.
type Config struct {
	// MispredictPenalty is the cycles charged when the BTB prediction is
	// wrong (default 4).
	MispredictPenalty int
	// DisablePairing turns off dual issue (ablation).
	DisablePairing bool
	// DisableBTB makes every conditional branch pay the penalty when
	// taken, modeling a machine without branch prediction (ablation).
	DisableBTB bool
	// EmmsLatency overrides the emms cost if non-negative; -1 keeps the
	// ISA table value. Use 0 to ablate the MMX-FP switch penalty.
	EmmsLatency int
	// MMXMulLatency overrides pmullw/pmulhw/pmaddwd if positive
	// (ablation for the matvec superlinearity analysis).
	MMXMulLatency int
}

// DefaultConfig returns the standard Pentium-with-MMX configuration.
func DefaultConfig() Config {
	return Config{MispredictPenalty: 4, EmmsLatency: -1}
}

// Model accumulates cycles for a retired instruction stream.
type Model struct {
	cfg Config

	now uint64
	// readyAt[r] is the cycle at which register r's latest value becomes
	// available to consumers.
	readyAt [isa.NumRegs]uint64

	// Pairing state: whether the previous instruction can still host a
	// V-pipe partner, and the issue cycle it would share.
	haveU   bool
	uInst   *isa.Inst
	uIssue  uint64
	uWrites []isa.Reg
	vReads  []isa.Reg
	vWrites []isa.Reg
	scratch []isa.Reg

	paired   uint64
	branches uint64
	mispred  uint64

	btb btb
}

// New builds a timing model with the given configuration.
func New(cfg Config) *Model {
	if cfg.MispredictPenalty == 0 {
		cfg.MispredictPenalty = 4
	}
	m := &Model{cfg: cfg}
	m.btb.reset()
	return m
}

// Cycles returns the total cycles charged so far.
func (m *Model) Cycles() uint64 { return m.now }

// Pairs returns how many instruction pairs dual-issued.
func (m *Model) Pairs() uint64 { return m.paired }

// Branches returns the conditional-branch count.
func (m *Model) Branches() uint64 { return m.branches }

// Mispredicts returns the mispredicted-branch count.
func (m *Model) Mispredicts() uint64 { return m.mispred }

// latency returns the result latency after config overrides.
func (m *Model) latency(op isa.Op) int {
	switch {
	case op == isa.EMMS && m.cfg.EmmsLatency >= 0:
		return m.cfg.EmmsLatency
	case op.Class() == isa.ClassMMXMul && m.cfg.MMXMulLatency > 0:
		return m.cfg.MMXMulLatency
	}
	return op.Latency()
}

// occupancy returns how many cycles the instruction blocks its issue pipe.
// Pipelined units (integer ALU, FP adder/multiplier, all MMX ALUs and the
// MMX multiplier, loads/stores) occupy one cycle; microcoded or
// unpipelined operations block for their full latency.
func occupancy(op isa.Op, lat int) int {
	switch op.Class() {
	case isa.ClassMul, isa.ClassDiv, isa.ClassFPDiv, isa.ClassFPTrans,
		isa.ClassEMMS, isa.ClassCall, isa.ClassRet:
		return lat
	}
	switch op {
	case isa.FILD, isa.FIST, isa.FCOM, isa.XCHG, isa.CDQ:
		return lat
	}
	return 1
}

// Retire processes one event and returns the cycles the clock advanced.
func (m *Model) Retire(ev vm.Event) int {
	op := ev.Inst.Op
	lat := m.latency(op)
	occ := occupancy(op, lat)
	if op.Class() == isa.ClassMMXMul && m.cfg.MMXMulLatency > 0 {
		// The ablation models an unpipelined multiplier like imul's.
		occ = lat
	}

	// Dependency stall: wait for every source register.
	start := m.now
	reads := ev.Inst.RegsRead(m.scratch[:0])
	for _, r := range reads {
		if t := m.readyAt[r]; t > start {
			start = t
		}
	}
	m.scratch = reads[:0]

	var penalty int
	if op.IsBranch() {
		m.branches++
		var predictTaken bool
		if !m.cfg.DisableBTB {
			predictTaken = m.btb.predict(ev.PC)
		}
		if predictTaken != ev.Taken {
			m.mispred++
			penalty += m.cfg.MispredictPenalty
		}
		if !m.cfg.DisableBTB {
			m.btb.update(ev.PC, ev.Taken)
		}
	}
	penalty += ev.MemPenalty

	before := m.now

	// Dual issue: a stall-free pairable instruction joins the pending
	// U-pipe instruction's cycle.
	if !m.cfg.DisablePairing && m.haveU && start == m.now && penalty == 0 &&
		occ == 1 && m.canPairAsV(ev.Inst) {
		m.paired++
		m.haveU = false
		m.setWrites(ev.Inst, m.uIssue+uint64(lat))
		return 0
	}

	issue := start
	m.now = issue + uint64(occ+penalty)
	m.setWrites(ev.Inst, issue+uint64(lat)+uint64(ev.MemPenalty))

	if op.PairableU() && !ev.Taken && penalty == 0 {
		m.haveU = true
		m.uInst = ev.Inst
		m.uIssue = issue
		m.uWrites = ev.Inst.RegsWritten(m.uWrites[:0])
	} else {
		m.haveU = false
	}
	return int(m.now - before)
}

func (m *Model) setWrites(in *isa.Inst, ready uint64) {
	m.scratch = in.RegsWritten(m.scratch[:0])
	for _, r := range m.scratch {
		m.readyAt[r] = ready
	}
	m.scratch = m.scratch[:0]
}

// canPairAsV reports whether inst may dual-issue in the V pipe behind the
// pending U instruction.
func (m *Model) canPairAsV(inst *isa.Inst) bool {
	if !inst.Op.PairableV() {
		return false
	}
	// The Pentium pairs at most one data memory reference per cycle
	// (two only in restricted same-bank cases, conservatively excluded).
	if m.uInst.ReferencesMemory() && inst.ReferencesMemory() {
		return false
	}
	// Register dependencies: V may not read or write anything U writes.
	if len(m.uWrites) > 0 {
		m.vReads = inst.RegsRead(m.vReads[:0])
		m.vWrites = inst.RegsWritten(m.vWrites[:0])
		for _, w := range m.uWrites {
			for _, r := range m.vReads {
				if r == w {
					return false
				}
			}
			for _, w2 := range m.vWrites {
				if w2 == w {
					return false
				}
			}
		}
	}
	return true
}

// btb is a 256-entry direct-mapped branch target buffer with 2-bit
// saturating counters. Branches absent from the BTB are statically
// predicted not taken, as on the Pentium.
type btb struct {
	tags  [256]int32
	ctr   [256]uint8
	valid [256]bool
}

func (b *btb) reset() {
	for i := range b.valid {
		b.valid[i] = false
		b.tags[i] = 0
		b.ctr[i] = 0
	}
}

func (b *btb) predict(pc int) bool {
	i := pc & 255
	return b.valid[i] && b.tags[i] == int32(pc) && b.ctr[i] >= 2
}

func (b *btb) update(pc int, taken bool) {
	i := pc & 255
	if !b.valid[i] || b.tags[i] != int32(pc) {
		// Allocate on taken, matching BTB fill behavior.
		if taken {
			b.valid[i] = true
			b.tags[i] = int32(pc)
			b.ctr[i] = 2
		}
		return
	}
	if taken {
		if b.ctr[i] < 3 {
			b.ctr[i]++
		}
	} else if b.ctr[i] > 0 {
		b.ctr[i]--
	}
}
