package pentium

import (
	"testing"

	"mmxdsp/internal/isa"
	"mmxdsp/internal/synth"
	"mmxdsp/internal/vm"
)

// randomStream builds n random-but-valid register-form instructions.
func randomStream(n int, seed uint64) []isa.Inst {
	r := synth.NewRand(seed)
	gprs := []isa.Reg{isa.EAX, isa.EBX, isa.ECX, isa.EDX, isa.ESI, isa.EDI}
	mms := []isa.Reg{isa.MM0, isa.MM1, isa.MM2, isa.MM3}
	ops := []isa.Op{isa.MOV, isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.CMP, isa.TEST, isa.INC, isa.DEC, isa.SHL, isa.IMUL,
		isa.PADDW, isa.PSUBW, isa.PMADDWD, isa.PMULLW, isa.PAND, isa.PXOR,
		isa.MOVQ, isa.PSLLW}
	out := make([]isa.Inst, n)
	for i := range out {
		op := ops[r.Intn(len(ops))]
		var a, b isa.Operand
		switch op.Class() {
		case isa.ClassMMXArith, isa.ClassMMXMul, isa.ClassMMXMove:
			a = isa.Operand{Kind: isa.KindReg, Reg: mms[r.Intn(len(mms))]}
			b = isa.Operand{Kind: isa.KindReg, Reg: mms[r.Intn(len(mms))]}
		case isa.ClassMMXShift:
			a = isa.Operand{Kind: isa.KindReg, Reg: mms[r.Intn(len(mms))]}
			b = isa.Operand{Kind: isa.KindImm, Imm: int64(r.Intn(16))}
		case isa.ClassShift:
			a = isa.Operand{Kind: isa.KindReg, Reg: gprs[r.Intn(len(gprs))]}
			b = isa.Operand{Kind: isa.KindImm, Imm: int64(r.Intn(31))}
		default:
			a = isa.Operand{Kind: isa.KindReg, Reg: gprs[r.Intn(len(gprs))]}
			b = isa.Operand{Kind: isa.KindReg, Reg: gprs[r.Intn(len(gprs))]}
			if op == isa.INC || op == isa.DEC {
				b = isa.Operand{}
			}
		}
		out[i] = isa.Inst{Op: op, A: a, B: b}
	}
	return out
}

// TestTimingModelInvariants checks structural properties over random
// instruction streams:
//   - the clock never moves backwards;
//   - at most every other instruction pairs (a pair needs a U host);
//   - total cycles are bounded below by issue slots (n - pairs) and above
//     by the sum of worst-case costs.
func TestTimingModelInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		m := New(DefaultConfig())
		insts := randomStream(500, seed)
		var last uint64
		var worst uint64
		for i := range insts {
			c := m.Retire(vm.Event{PC: i, Inst: &insts[i], Measured: true})
			if c < 0 {
				t.Fatalf("seed %d: negative cycle delta %d", seed, c)
			}
			if m.Cycles() < last {
				t.Fatalf("seed %d: clock moved backwards", seed)
			}
			last = m.Cycles()
			lat := insts[i].Op.Latency()
			worst += uint64(lat + 3) // latency + max stall vs 3-cycle producer
		}
		n := uint64(len(insts))
		if m.Pairs() > n/2 {
			t.Errorf("seed %d: %d pairs out of %d instructions", seed, m.Pairs(), n)
		}
		if m.Cycles()+m.Pairs() < n {
			t.Errorf("seed %d: cycles %d + pairs %d < %d instructions",
				seed, m.Cycles(), m.Pairs(), n)
		}
		if m.Cycles() > worst {
			t.Errorf("seed %d: cycles %d exceed worst-case bound %d", seed, m.Cycles(), worst)
		}
	}
}

// TestDualIssueNeverSlower compares each random stream with pairing on and
// off: dual issue must never increase the cycle count.
func TestDualIssueNeverSlower(t *testing.T) {
	off := DefaultConfig()
	off.DisablePairing = true
	for seed := uint64(30); seed <= 45; seed++ {
		insts := randomStream(300, seed)
		mOn := New(DefaultConfig())
		mOff := New(off)
		for i := range insts {
			mOn.Retire(vm.Event{PC: i, Inst: &insts[i]})
			mOff.Retire(vm.Event{PC: i, Inst: &insts[i]})
		}
		if mOn.Cycles() > mOff.Cycles() {
			t.Errorf("seed %d: pairing made it slower (%d > %d)",
				seed, mOn.Cycles(), mOff.Cycles())
		}
	}
}

// TestMemPenaltyStrictlyAdds: adding a memory penalty to one event grows
// total cycles by at least that penalty.
func TestMemPenaltyStrictlyAdds(t *testing.T) {
	insts := randomStream(100, 99)
	run := func(pen int) uint64 {
		m := New(DefaultConfig())
		for i := range insts {
			ev := vm.Event{PC: i, Inst: &insts[i]}
			if i == 50 {
				ev.MemPenalty = pen
			}
			m.Retire(ev)
		}
		return m.Cycles()
	}
	if run(26) < run(0)+20 {
		t.Errorf("26-cycle penalty added %d cycles", run(26)-run(0))
	}
}
