package pentium

import (
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/vm"
)

// retireProgram builds a representative instruction mix (ALU, load, RMW,
// branch) and the event stream one loop iteration produces.
func retireProgram() (*asm.Program, []vm.Event) {
	b := asm.NewBuilder("retire-bench")
	b.I(isa.MOV, asm.R(isa.EBX), asm.MemD(isa.ESI, 0))
	b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.EBX))
	b.I(isa.ADD, asm.MemD(isa.ESI, 0), asm.Imm(3))
	b.I(isa.ADD, asm.R(isa.ESI), asm.Imm(4))
	b.I(isa.SUB, asm.R(isa.ECX), asm.Imm(1))
	b.J(isa.JNE, "top")
	b.Label("top")
	b.I(isa.HALT)
	prog := b.MustLink()
	evs := make([]vm.Event, 0, len(prog.Insts))
	for pc := range prog.Insts {
		evs = append(evs, vm.Event{
			PC:       pc,
			Inst:     &prog.Insts[pc],
			Measured: true,
			Target:   pc + 1,
		})
	}
	return prog, evs
}

// BenchmarkRetire compares the bound (per-PC timing table) path against the
// unbound per-event derivation fallback.
func BenchmarkRetire(b *testing.B) {
	prog, evs := retireProgram()
	bench := func(b *testing.B, bind bool) {
		b.Helper()
		b.ReportAllocs()
		m := New(DefaultConfig())
		if bind {
			m.Bind(prog)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, ev := range evs {
				m.Retire(ev)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(evs)), "ns/event")
	}
	b.Run("bound", func(b *testing.B) { bench(b, true) })
	b.Run("fallback", func(b *testing.B) { bench(b, false) })
}
