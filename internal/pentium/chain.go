// Chain-level timing: a trace (superblock) is a fixed sequence of basic
// blocks fused across taken branches, so one full on-trace iteration retires
// a fixed event sequence — each block's straight-line body followed by its
// terminator with a known direction. Like a block body (block.go), the cycle
// schedule of that sequence is a pure function of the dynamic entry state,
// which a chain reaches through only three inputs:
//
//   - the lag of each live-in register (read before written anywhere in the
//     chain);
//   - the cache penalty charged to each memory reference this iteration;
//   - the BTB slot state each chain branch sees at entry, encoded as 0 when
//     the branch does not own its direct-mapped slot and 2+ctr when it does.
//     The BTB evolves inside the iteration — chains may revisit one branch
//     PC (unrolled loops) or collide two branches on one slot — but a slot
//     not owned by any chain branch behaves identically whether it is empty
//     or foreign-tagged (taken updates retag it, not-taken updates are
//     no-ops), so the per-branch ownership+counter entries fully determine
//     every in-iteration prediction.
//
// RetireChain resolves a (lags, penalties, slot states) signature by
// replaying the whole event sequence once through a scratch model with the
// BTB seeded to reproduce those slot states, memoizes the schedule in a
// per-chain MRU variant table, and thereafter applies it as one aggregate
// update: clock delta, pair/branch/mispredict counts, scoreboard writes,
// live BTB updates, exit pairing state. Steady-state loops hit the lastHit
// variant with a single signature comparison. When no schedule applies
// (oversized lags/penalties, entry pairing risk), it declines without
// touching state and the caller replays per-block/per-event.
package pentium

import (
	"mmxdsp/internal/isa"
	"mmxdsp/internal/vm"
)

// maxChainSig bounds the signature length (lags + penalties + predictions);
// longer chains fall back to per-block retirement.
const maxChainSig = 255

// ChainTerm describes one block terminator inside a chain: its PC (-1 for a
// fall-through block, which emits no event) and the recorded direction the
// chain follows (always true for unconditional jumps).
type ChainTerm struct {
	PC    int32
	Taken bool
}

// chainSched is one resolved schedule of a whole chain iteration under a
// specific entry signature.
type chainSched struct {
	// costs[i] is the clock advance charged by the chain's i-th event (body
	// instructions and terminators interleaved in retirement order; 0 for
	// the V-pipe half of a pair). Slice identity names the schedule, exactly
	// as with blockSched.
	costs  []uint32
	delta  uint64
	pairs  uint64
	brs    uint64 // branch events in the chain (constant, kept per variant)
	mis    uint64 // mispredicts under this signature
	writes []regReady
	exitU  bool
	uOff   uint64
	uT     *instTiming
}

// chainVariant is one cached schedule with its entry signature.
type chainVariant struct {
	sig []uint8
	s   chainSched
}

// ChainTiming is the timing record of one trace. Build one per registered
// trace with NewChain; a nil ChainTiming (declined at build time) makes
// RetireChain decline every call.
type ChainTiming struct {
	// pcs lists every event-emitting instruction of one full iteration in
	// retirement order; evTaken carries each event's recorded Taken flag
	// (true for terminators that transfer — Retire's pairU latch reads it
	// even for non-branches); memN counts the memory-referencing ones.
	pcs     []int32
	evTaken []bool
	memN    int
	// guards lists the chain's live-in registers (read before any in-chain
	// write).
	guards []isa.Reg
	// pairRisk mirrors blockTiming.pairRisk for the chain's first event.
	pairRisk bool
	// branchPCs/branchTaken list the conditional-branch events in order with
	// their recorded directions; BTB entries for these complete the entry
	// signature, and taken directions drive the live BTB updates at apply.
	// branchFine marks branches whose direct-mapped slot is shared with
	// another chain branch occurrence (the same PC revisited by an unrolled
	// chain, or two PCs colliding): those encode the full slot state
	// (0 unowned, 2+ctr owned) because in-iteration updates re-read the
	// slot; unshared branches encode just the 1-bit prediction, keeping the
	// variant space coarse.
	branchPCs   []int32
	branchTaken []bool
	branchFine  []bool

	variants []chainVariant
	nextVar  int
	// lastHit is the index of the most recently applied variant, maintained
	// on every apply path (full, steady, and predecessor-steady).
	lastHit int

	// Steady state: a loop chain iterating back to back settles into one
	// variant whose application reproduces its own entry signature — written
	// guards land at a constant lag (off − delta), unwritten guards decay to
	// lag 0, and the chain's BTB counters saturate at their recorded
	// directions. Once RetireChain observes the same variant match on two
	// consecutive calls with nothing else touching the model (Model.seq
	// unchanged) and every chain branch saturated, it records the variant in
	// steady; subsequent calls then skip signature construction, comparison
	// and the (no-op) BTB updates entirely, verifying only that the caller's
	// penalties still match. Any other model activity changes Model.seq and
	// disarms the fast path until steady state is re-proven.
	steady   int // variant index, -1 when not in steady state
	seqAfter uint64

	// Predecessor-keyed steady state: a trace tree alternates between
	// sibling paths, so a chain is often re-entered after exactly one
	// intervening apply — the sibling path's chain. When two consecutive
	// full-path calls match the same variant with the identical
	// (predecessor chain, predecessor schedule) gap of exactly one apply,
	// and every branch of both chains is saturated at its recorded
	// direction (so neither apply moves the BTB), the entry state is proven
	// to recur and pred/predCosts/predSteady record the keyed variant.
	// Subsequent calls that arrive through the same one-apply gap — checked
	// against Model.lastChain/lastCosts/lastSeq and the schedule's
	// cost-slice identity — skip signature work exactly like steady.
	// candPred/candCosts/candHit track the previous call's gap for the
	// two-consecutive-observations proof.
	pred       *ChainTiming
	predCosts  []uint32
	predSteady int // variant index engaged under the keyed gap, -1 none
	candPred   *ChainTiming
	candCosts  []uint32
	candHit    int

	// Churn governor: a chain whose entry signature keeps flapping past the
	// variant table recycles a slot (and pays a full scratch replay) every
	// call, which is slower than the caller's per-block fallback. Every
	// windowLen recycles, a window that wasn't dominated by variant hits
	// marks the chain dead and RetireChain declines permanently.
	hits  uint32
	churn uint32
	dead  bool
}

// chainChurnWindow is the recycle count per governor window; a window must
// see at least 4 hits per recycle or the chain is retired to the per-block
// fallback.
const chainChurnWindow = 64

// NewChain builds the chain timing record for a trace visiting the given
// blocks (by bound-program block index) with the given terminator record per
// block. It returns nil — and RetireChain will always decline — when the
// model is unbound, a block index is out of range, or the signature would
// exceed maxChainSig.
func (m *Model) NewChain(blocks []int32, terms []ChainTerm) *ChainTiming {
	if m.blockT == nil || len(blocks) != len(terms) {
		return nil
	}
	ct := &ChainTiming{steady: -1, predSteady: -1}
	var written, guarded [isa.NumRegs]bool
	addEvent := func(pc int32, taken bool) {
		t := &m.pcT[pc]
		if len(ct.pcs) == 0 {
			ct.pairRisk = !m.cfg.DisablePairing && t.pairV && t.occ == 1
		}
		for _, r := range t.reads {
			if !written[r] && !guarded[r] {
				guarded[r] = true
				ct.guards = append(ct.guards, r)
			}
		}
		for _, r := range t.writes {
			written[r] = true
		}
		if t.refsMem {
			ct.memN++
		}
		ct.pcs = append(ct.pcs, pc)
		ct.evTaken = append(ct.evTaken, taken)
	}
	for i, bi := range blocks {
		if bi < 0 || int(bi) >= len(m.blockT) {
			return nil
		}
		for _, pc := range m.blockT[bi].pcs {
			addEvent(pc, false)
		}
		if tpc := terms[i].PC; tpc >= 0 {
			if int(tpc) >= len(m.pcT) {
				return nil
			}
			addEvent(tpc, terms[i].Taken)
			if m.pcT[tpc].branch {
				fine := false
				for j, prev := range ct.branchPCs {
					if prev&255 == tpc&255 {
						fine = true
						ct.branchFine[j] = true
					}
				}
				ct.branchPCs = append(ct.branchPCs, tpc)
				ct.branchTaken = append(ct.branchTaken, terms[i].Taken)
				ct.branchFine = append(ct.branchFine, fine)
			}
		}
	}
	if len(ct.pcs) == 0 {
		return nil
	}
	if len(ct.guards)+ct.memN+len(ct.branchPCs) > maxChainSig {
		return nil
	}
	return ct
}

// replayChain resolves one schedule variant by replaying the full event
// sequence through a scratch model seeded from the signature: guard lags,
// per-reference penalties, and a BTB pre-loaded with each branch's slot
// state (tag+counter for owned slots; empty otherwise — an empty slot
// replays identically to a foreign-tagged one for every chain branch, since
// repeated PCs of one branch share a single owned entry and same-PC decline
// is no longer needed).
func (m *Model) replayChain(ct *ChainTiming, sig []uint8, out *chainSched) {
	if m.sim == nil {
		m.sim = &Model{}
	}
	sim := m.sim
	// Reset only the state a bound-model Retire reads or writes: zeroing the
	// whole scratch Model memclears ~2KB (dominated by the BTB arrays) per
	// replay, but replays only ever probe this chain's branch slots, so
	// clearing those — stale tags from other slots read as foreign, which
	// predicts and updates identically to empty — is enough.
	sim.cfg, sim.pcT = m.cfg, m.pcT
	sim.now, sim.paired, sim.branches, sim.mispred, sim.seq = 0, 0, 0, 0, 0
	sim.haveU, sim.uIssue, sim.uT, sim.si = false, 0, nil, 0
	for i := range sim.readyAt {
		sim.readyAt[i] = 0
	}
	for _, pc := range ct.branchPCs {
		slot := int(pc) & 255
		sim.btb.valid[slot] = false
		sim.btb.tags[slot] = 0
		sim.btb.ctr[slot] = 0
	}
	for i, r := range ct.guards {
		sim.readyAt[r] = uint64(sig[i])
	}
	pen := sig[len(ct.guards) : len(ct.guards)+ct.memN]
	slots := sig[len(ct.guards)+ct.memN:]
	for i, pc := range ct.branchPCs {
		st := slots[i]
		slot := int(pc) & 255
		switch {
		case ct.branchFine[i]:
			if st >= 2 {
				sim.btb.valid[slot] = true
				sim.btb.tags[slot] = pc
				sim.btb.ctr[slot] = st - 2
			}
		case st != 0:
			// Unshared slot: only the prediction bit matters (nothing else
			// reads the slot this iteration), so seed it strongly taken.
			sim.btb.valid[slot] = true
			sim.btb.tags[slot] = pc
			sim.btb.ctr[slot] = 3
		}
	}
	out.costs = out.costs[:0]
	var ev vm.Event
	k := 0
	for i, pc := range ct.pcs {
		ev.PC = int(pc)
		ev.MemPenalty = 0
		ev.Taken = ct.evTaken[i]
		if m.pcT[pc].refsMem {
			ev.MemPenalty = int(pen[k])
			k++
		}
		out.costs = append(out.costs, uint32(sim.Retire(ev)))
	}
	out.delta = sim.now
	out.pairs = sim.paired
	out.brs = sim.branches
	out.mis = sim.mispred
	out.writes = out.writes[:0]
	var written [isa.NumRegs]bool
	for _, pc := range ct.pcs {
		for _, r := range m.pcT[pc].writes {
			written[r] = true
		}
	}
	for r := range written {
		if written[r] {
			out.writes = append(out.writes, regReady{reg: isa.Reg(r), off: sim.readyAt[r]})
		}
	}
	out.exitU = sim.haveU
	if sim.haveU {
		out.uOff = sim.uIssue
		out.uT = sim.uT
	}
}

// applyChain commits a resolved schedule: aggregate clock/counter update,
// scoreboard writes, exit pairing state, and the live BTB updates each
// chain branch would have performed.
func (m *Model) applyChain(ct *ChainTiming, s *chainSched) {
	m.seq++
	base := m.now
	m.now = base + s.delta
	m.paired += s.pairs
	m.branches += s.brs
	m.mispred += s.mis
	for i := range s.writes {
		w := &s.writes[i]
		m.readyAt[w.reg] = base + w.off
	}
	m.haveU = s.exitU
	if s.exitU {
		m.uIssue = base + s.uOff
		m.uT = s.uT
	}
	if !m.cfg.DisableBTB {
		for i, pc := range ct.branchPCs {
			m.btb.update(int(pc), ct.branchTaken[i])
		}
	}
}

// applyChainSteady commits a steady-state schedule: applyChain minus the
// BTB updates, which steady state guarantees are no-ops (every chain
// branch's counter saturated at its recorded direction).
func (m *Model) applyChainSteady(s *chainSched) {
	m.seq++
	base := m.now
	m.now = base + s.delta
	m.paired += s.pairs
	m.branches += s.brs
	m.mispred += s.mis
	for i := range s.writes {
		w := &s.writes[i]
		m.readyAt[w.reg] = base + w.off
	}
	m.haveU = s.exitU
	if s.exitU {
		m.uIssue = base + s.uOff
		m.uT = s.uT
	}
}

// RetireChain applies a precomputed timing schedule for one full on-trace
// iteration of the chain, given the cache penalties charged to the chain's
// memory references this iteration (in retirement order). It returns the
// per-event cycle costs — immutable, with slice identity naming the
// schedule, aligned with the chain's event sequence — or nil, having
// changed nothing, when ct is nil/declined or the entry state matches no
// cacheable schedule; the caller must then retire per-block/per-event.
func (m *Model) RetireChain(ct *ChainTiming, penalties []int32) []uint32 {
	if ct == nil || ct.dead || len(ct.pcs) == 0 {
		return nil
	}
	if m.haveU && ct.pairRisk {
		return nil
	}
	if len(penalties) != ct.memN {
		return nil
	}
	if ct.steady >= 0 {
		if m.seq != ct.seqAfter {
			ct.steady = -1
		} else {
			v := &ct.variants[ct.steady]
			pen := v.sig[len(ct.guards) : len(ct.guards)+ct.memN]
			ok := true
			for i, p := range penalties {
				if uint32(p) > maxSigEntry || uint8(p) != pen[i] {
					ok = false
					break
				}
			}
			if ok {
				ct.hits++
				m.applyChainSteady(&v.s)
				ct.seqAfter = m.seq
				m.lastChain, m.lastCosts, m.lastSeq = ct, v.s.costs, m.seq
				return v.s.costs
			}
			// Penalties diverged this iteration: fall through to the full
			// path, which re-proves or abandons steady state.
			ct.steady = -1
		}
	}
	// Predecessor-keyed fast path: re-entered after exactly one intervening
	// apply, and it was the proven predecessor schedule following our own
	// proven variant. Both chains' branches were saturated at proof time and
	// neither fast path touches the BTB, so the entry state recurs; only the
	// penalties need verifying.
	if ct.predSteady >= 0 && ct.lastHit == ct.predSteady &&
		m.seq == ct.seqAfter+1 && m.lastSeq == m.seq && m.lastChain == ct.pred &&
		len(m.lastCosts) > 0 && len(ct.predCosts) > 0 && &m.lastCosts[0] == &ct.predCosts[0] {
		v := &ct.variants[ct.predSteady]
		pen := v.sig[len(ct.guards) : len(ct.guards)+ct.memN]
		ok := true
		for i, p := range penalties {
			if uint32(p) > maxSigEntry || uint8(p) != pen[i] {
				ok = false
				break
			}
		}
		if ok {
			ct.hits++
			m.applyChainSteady(&v.s)
			ct.seqAfter = m.seq
			m.lastChain, m.lastCosts, m.lastSeq = ct, v.s.costs, m.seq
			return v.s.costs
		}
	}
	base := m.now
	sig := m.sigBuf[:0]
	for _, r := range ct.guards {
		lag := uint64(0)
		if rt := m.readyAt[r]; rt > base {
			lag = rt - base
			if lag > maxSigEntry {
				m.sigBuf = sig
				return nil
			}
		}
		sig = append(sig, uint8(lag))
	}
	for _, p := range penalties {
		if p < 0 || p > maxSigEntry {
			m.sigBuf = sig
			return nil
		}
		sig = append(sig, uint8(p))
	}
	for i, pc := range ct.branchPCs {
		st := uint8(0)
		if !m.cfg.DisableBTB {
			if ct.branchFine[i] {
				st = m.btb.slotState(int(pc))
			} else if m.btb.predict(int(pc)) {
				st = 1
			}
		}
		sig = append(sig, st)
	}
	m.sigBuf = sig
	if h := ct.lastHit; h < len(ct.variants) && sigEqual(ct.variants[h].sig, sig) {
		v := &ct.variants[h]
		// Same variant as the previous call, same freshly verified
		// signature: if nothing else touched the model in between and the
		// chain's branches are saturated, the application below reproduces
		// this exact entry state and steady state is proven.
		steady := m.seq == ct.seqAfter
		if steady && !m.cfg.DisableBTB {
			for i, pc := range ct.branchPCs {
				if !m.btb.saturated(int(pc), ct.branchTaken[i]) {
					steady = false
					break
				}
			}
		}
		ct.steady = -1
		if steady {
			ct.steady = h
		} else if m.seq == ct.seqAfter+1 && m.lastSeq == m.seq &&
			m.lastChain != nil && m.lastChain != ct && len(m.lastCosts) > 0 {
			// Exactly one foreign apply since our last: a predecessor-keyed
			// gap. Prove predSteady on the second consecutive observation of
			// the same (predecessor, schedule, variant) triple, provided no
			// branch of either chain can still move the BTB.
			if ct.candPred == m.lastChain && ct.candHit == h &&
				len(ct.candCosts) > 0 && &ct.candCosts[0] == &m.lastCosts[0] {
				sat := true
				if !m.cfg.DisableBTB {
					for i, pc := range ct.branchPCs {
						if !m.btb.saturated(int(pc), ct.branchTaken[i]) {
							sat = false
							break
						}
					}
					if sat {
						p := m.lastChain
						for i, pc := range p.branchPCs {
							if !m.btb.saturated(int(pc), p.branchTaken[i]) {
								sat = false
								break
							}
						}
					}
				}
				if sat {
					ct.pred, ct.predCosts, ct.predSteady = m.lastChain, m.lastCosts, h
				}
			}
			ct.candPred, ct.candCosts, ct.candHit = m.lastChain, m.lastCosts, h
		} else {
			ct.candPred = nil
		}
		ct.hits++
		m.applyChain(ct, &v.s)
		ct.seqAfter = m.seq
		m.lastChain, m.lastCosts, m.lastSeq = ct, v.s.costs, m.seq
		return v.s.costs
	}
	ct.steady = -1
	ct.candPred = nil
	for vi := range ct.variants {
		v := &ct.variants[vi]
		if sigEqual(v.sig, sig) {
			ct.hits++
			ct.lastHit = vi
			m.applyChain(ct, &v.s)
			ct.seqAfter = m.seq
			m.lastChain, m.lastCosts, m.lastSeq = ct, v.s.costs, m.seq
			return v.s.costs
		}
	}
	var v *chainVariant
	if len(ct.variants) < maxVariants {
		ct.variants = append(ct.variants, chainVariant{})
		ct.lastHit = len(ct.variants) - 1
		v = &ct.variants[ct.lastHit]
	} else {
		ct.lastHit = ct.nextVar
		v = &ct.variants[ct.nextVar]
		ct.nextVar = (ct.nextVar + 1) % maxVariants
		// Preserve cost-slice identity for batching callers, as in
		// RetireBlock. A recycled slot also invalidates any keyed steady
		// state or proof candidate pinned to it.
		v.s.costs = nil
		if ct.predSteady == ct.lastHit {
			ct.predSteady = -1
		}
		if ct.candHit == ct.lastHit {
			ct.candPred = nil
		}
		if ct.churn++; ct.churn >= chainChurnWindow {
			if ct.hits < ct.churn*4 {
				ct.dead = true
			}
			ct.churn, ct.hits = 0, 0
		}
	}
	v.sig = append(v.sig[:0], sig...)
	m.replayChain(ct, v.sig, &v.s)
	m.applyChain(ct, &v.s)
	ct.seqAfter = m.seq
	m.lastChain, m.lastCosts, m.lastSeq = ct, v.s.costs, m.seq
	return v.s.costs
}

// ChainEventPCs returns the chain's event PCs in retirement order, aligned
// with the cost slices RetireChain returns. The slice is shared, read-only.
func (ct *ChainTiming) ChainEventPCs() []int32 {
	if ct == nil {
		return nil
	}
	return ct.pcs
}

// ChainMemN returns how many of the chain's events reference memory (the
// expected penalty-vector length).
func (ct *ChainTiming) ChainMemN() int {
	if ct == nil {
		return 0
	}
	return ct.memN
}
