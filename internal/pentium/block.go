// Block-level timing: every basic-block body is a straight-line run with no
// branches (control transfers always terminate blocks), so its schedule —
// dependency stalls, U/V pairing, result latencies, cache penalties — can
// be resolved by replaying the body once through a scratch model and then
// applied as one aggregate update (clock advance, pair count, scoreboard
// writes, exit pairing state) each time the block executes in an
// equivalent entry state.
//
// The schedule depends on the dynamic entry state only through:
//
//   - the lag of each live-in register (readyAt - now for registers read
//     before written inside the body);
//   - the cache penalty charged to each memory reference this execution;
//   - whether a pending U-pipe instruction from the previous block could
//     pair with the body's first instruction (conservatively declined —
//     hot loop back-edges enter through a taken branch, which never
//     leaves a pending U instruction).
//
// The common case — all registers ready, all references L1 hits — is the
// clean schedule, resolved once at Bind. Other (lags, penalties)
// signatures are resolved on first sight and cached per block in a small
// variant table; DSP loops have a constant carried-dependency lag and a
// periodic streaming-miss pattern, so a handful of variants covers the
// steady state. RetireBlock applies whichever schedule matches in O(body)
// time, or reports failure without touching any state so the caller can
// replay the body per-event.
package pentium

import (
	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/vm"
)

// maxSigEntry bounds the lag and penalty values a variant signature
// records; larger values (microcoded latencies, pathological misses) fall
// back to per-event replay.
const maxSigEntry = 255

// maxVariants bounds the per-block variant table; beyond it, new
// signatures overwrite round-robin.
const maxVariants = 8

// regReady records the ready time of one register written by a block body,
// as an offset from the block's entry clock.
type regReady struct {
	reg isa.Reg
	off uint64
}

// blockSched is one resolved schedule of a block body under a specific
// entry signature.
type blockSched struct {
	// costs[i] is the clock advance charged by the body's i-th
	// event-emitting instruction (0 for the V-pipe half of a pair). The
	// profiler uses it for per-PC and per-class cycle attribution.
	costs []uint32
	// delta is the total clock advance of the body (sum of costs).
	delta uint64
	// pairs is how many U/V pairs the body issues.
	pairs uint64
	// writes lists every register the body writes with its final
	// entry-relative ready offset. Offsets of zero are meaningful (e.g. a
	// zero-latency ablated emms), so the set is explicit rather than
	// inferred from non-zero scoreboard entries.
	writes []regReady
	// exitU records the pairing state the body leaves behind: whether its
	// last instruction is still hosting the U pipe, at which
	// entry-relative issue cycle, and with which timing record.
	exitU bool
	uOff  uint64
	uT    *instTiming
}

// blockVariant is one cached lagged/penalized schedule with its signature:
// the clamped live-in lags followed by the per-reference penalties.
type blockVariant struct {
	sig []uint8
	s   blockSched
}

// blockTiming is the timing record of one basic block. A nil clean.costs
// marks a block with no event-emitting body instructions; RetireBlock
// declines those.
type blockTiming struct {
	// pcs lists the body's event-emitting instructions; memN counts the
	// memory-referencing ones (the length of the penalty vector).
	pcs  []int32
	memN int
	// guards lists the body's live-in registers: read before any in-block
	// write.
	guards []isa.Reg
	// pairRisk reports that the body's first instruction could pair into
	// the V pipe behind a pending U instruction (pairable-V with
	// single-cycle occupancy); entering with haveU set then invalidates
	// any precomputed schedule.
	pairRisk bool

	// clean is the all-ready, all-hit schedule; variants cache the others.
	// lastHit remembers the variant the previous execution matched: hot
	// loops reuse one signature for long stretches, so checking it first
	// makes the lookup a single comparison in the steady state.
	clean    blockSched
	variants []blockVariant
	nextVar  int
	lastHit  int
}

// bindBlocks statically schedules every basic-block body of the bound
// program. Called from Bind after the per-PC timing table is installed.
func (m *Model) bindBlocks(prog *asm.Program) {
	blocks := prog.Blocks()
	m.blockT = make([]blockTiming, len(blocks))
	for bi := range blocks {
		start, bodyEnd := blocks[bi].Body()
		bt := &m.blockT[bi]
		var written, guarded [isa.NumRegs]bool
		for pc := start; pc < bodyEnd; pc++ {
			if !prog.Insts[pc].Op.EmitsEvent() {
				continue
			}
			t := &m.pcT[pc]
			if len(bt.pcs) == 0 {
				bt.pairRisk = !m.cfg.DisablePairing && t.pairV && t.occ == 1
			}
			for _, r := range t.reads {
				if !written[r] && !guarded[r] {
					guarded[r] = true
					bt.guards = append(bt.guards, r)
				}
			}
			for _, r := range t.writes {
				written[r] = true
			}
			if t.refsMem {
				bt.memN++
			}
			bt.pcs = append(bt.pcs, int32(pc))
		}
		if len(bt.pcs) == 0 {
			continue
		}
		m.replayBlock(bt, nil, &bt.clean)
	}
}

// replayBlock resolves one schedule variant of block bt by replaying its
// body through a scratch model seeded from the signature (nil = clean
// entry: no lags, no penalties). The scratch model shares pcT (and the
// configuration) with m, so latencies resolve identically; its BTB is
// never consulted because bodies contain no branches.
func (m *Model) replayBlock(bt *blockTiming, sig []uint8, out *blockSched) {
	if m.sim == nil {
		m.sim = &Model{}
	}
	sim := m.sim
	*sim = Model{cfg: m.cfg, pcT: m.pcT}
	if sig != nil {
		for i, r := range bt.guards {
			sim.readyAt[r] = uint64(sig[i])
		}
	}
	pen := []uint8(nil)
	if sig != nil {
		pen = sig[len(bt.guards):]
	}
	out.costs = out.costs[:0]
	var ev vm.Event
	k := 0
	for _, pc := range bt.pcs {
		ev.PC = int(pc)
		ev.MemPenalty = 0
		if m.pcT[pc].refsMem {
			if pen != nil {
				ev.MemPenalty = int(pen[k])
			}
			k++
		}
		cost := sim.Retire(ev)
		out.costs = append(out.costs, uint32(cost))
	}
	out.delta = sim.now
	out.pairs = sim.paired
	out.writes = out.writes[:0]
	var written [isa.NumRegs]bool
	for _, pc := range bt.pcs {
		for _, r := range m.pcT[pc].writes {
			written[r] = true
		}
	}
	for r := range written {
		if written[r] {
			out.writes = append(out.writes, regReady{reg: isa.Reg(r), off: sim.readyAt[r]})
		}
	}
	out.exitU = sim.haveU
	if sim.haveU {
		out.uOff = sim.uIssue
		out.uT = sim.uT
	}
}

// apply shifts the schedule by the model's current clock and commits it.
func (m *Model) apply(s *blockSched) {
	m.seq++
	base := m.now
	m.now = base + s.delta
	m.paired += s.pairs
	for i := range s.writes {
		w := &s.writes[i]
		m.readyAt[w.reg] = base + w.off
	}
	m.haveU = s.exitU
	if s.exitU {
		m.uIssue = base + s.uOff
		m.uT = s.uT
	}
}

// RetireBlock applies a precomputed timing schedule of basic block bi (as
// numbered by the bound program's Blocks) in one step, given the cache
// penalties charged to the body's memory references this execution (in
// body order; nil or empty for memory-free bodies). It returns the
// per-event cycle costs the schedule charged — immutable for the model's
// lifetime, with slice identity naming the schedule, so callers may batch
// repeated applications by comparing pointers — letting the caller
// attribute cycles per PC, or
// nil, having changed nothing, when the model is unbound, the block has no
// event-emitting body, or the entry state matches no precomputed schedule;
// the caller must then retire the body per-event.
func (m *Model) RetireBlock(bi int, penalties []int32) []uint32 {
	if bi < 0 || bi >= len(m.blockT) {
		return nil
	}
	bt := &m.blockT[bi]
	if bt.clean.costs == nil {
		return nil
	}
	if m.haveU && bt.pairRisk {
		return nil
	}
	base := m.now
	clean := true
	for _, r := range bt.guards {
		if m.readyAt[r] > base {
			clean = false
			break
		}
	}
	if clean {
		clean = len(penalties) == 0
		for _, p := range penalties {
			if p != 0 {
				clean = false
				break
			}
		}
	}
	if clean {
		m.apply(&bt.clean)
		return bt.clean.costs
	}

	// Non-clean entry: build the (lags, penalties) signature and look it
	// up in the block's variant table.
	sig := m.sigBuf[:0]
	for _, r := range bt.guards {
		lag := uint64(0)
		if rt := m.readyAt[r]; rt > base {
			lag = rt - base
			if lag > maxSigEntry {
				m.sigBuf = sig
				return nil
			}
		}
		sig = append(sig, uint8(lag))
	}
	if len(penalties) != bt.memN {
		// Penalty vector from a different program's block shape; decline.
		m.sigBuf = sig
		return nil
	}
	for _, p := range penalties {
		if p < 0 || p > maxSigEntry {
			m.sigBuf = sig
			return nil
		}
		sig = append(sig, uint8(p))
	}
	m.sigBuf = sig
	if h := bt.lastHit; h < len(bt.variants) && sigEqual(bt.variants[h].sig, sig) {
		v := &bt.variants[h]
		m.apply(&v.s)
		return v.s.costs
	}
	for vi := range bt.variants {
		v := &bt.variants[vi]
		if sigEqual(v.sig, sig) {
			bt.lastHit = vi
			m.apply(&v.s)
			return v.s.costs
		}
	}
	// Miss: resolve this signature and cache it (round-robin overwrite
	// once the table is full).
	var v *blockVariant
	if len(bt.variants) < maxVariants {
		bt.variants = append(bt.variants, blockVariant{})
		bt.lastHit = len(bt.variants) - 1
		v = &bt.variants[bt.lastHit]
	} else {
		bt.lastHit = bt.nextVar
		v = &bt.variants[bt.nextVar]
		bt.nextVar = (bt.nextVar + 1) % maxVariants
		// Never reuse the evicted schedule's costs backing: callers batch
		// fast-path applications by cost-slice identity, so a returned
		// slice must stay immutable for the run's lifetime.
		v.s.costs = nil
	}
	v.sig = append(v.sig[:0], sig...)
	m.replayBlock(bt, v.sig, &v.s)
	m.apply(&v.s)
	return v.s.costs
}

func sigEqual(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BlockCosts returns the clean-entry static per-event cycle costs of block
// bi's body under this model's configuration, or nil for an unbound model,
// an out-of-range index, or an event-free body. The slice is shared and
// read-only.
func (m *Model) BlockCosts(bi int) []uint32 {
	if bi < 0 || bi >= len(m.blockT) {
		return nil
	}
	return m.blockT[bi].clean.costs
}
