package pentium_test

// Dispatch-mode fuzz: random-but-valid linked programs — nested
// counted loops over random integer/MMX/memory bodies, wrapped in a
// measured profon/profoff region — run through the generic, predecoded,
// block and trace interpreter loops with the full timing pipeline (bound
// model, collector, cache hierarchy). Every event-visible outcome must be
// identical: registers, memory image, executed count, cycle totals and the
// entire profiling report. This lives in an external test package because
// the profile package imports pentium.

import (
	"bytes"
	"reflect"
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/mem"
	"mmxdsp/internal/pentium"
	"mmxdsp/internal/profile"
	"mmxdsp/internal/suite"
	"mmxdsp/internal/synth"
	"mmxdsp/internal/vm"
)

// buildRandomProgram links a terminating random program: an outer pass loop
// around an inner loop whose body mixes ALU, shift, multiply, MMX and
// memory instructions drawn from the seed. ECX/EDX/ESI are reserved for
// loop control and the data pointer; bodies use the remaining registers.
func buildRandomProgram(seed uint64) (*asm.Program, error) {
	r := synth.NewRand(seed)
	b := asm.NewBuilder("fuzz3w")
	data := make([]int32, 64)
	for i := range data {
		data[i] = int32(r.Intn(1 << 16))
	}
	b.Dwords("data", data)

	gprs := []isa.Reg{isa.EAX, isa.EBX, isa.EDI}
	mms := []isa.Reg{isa.MM0, isa.MM1, isa.MM2, isa.MM3}
	regOps := []isa.Op{isa.MOV, isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.CMP, isa.TEST, isa.IMUL}
	mmxOps := []isa.Op{isa.PADDW, isa.PSUBW, isa.PMADDWD, isa.PMULLW,
		isa.PAND, isa.PXOR, isa.MOVQ}

	emitBody := func() {
		switch r.Intn(6) {
		case 0: // load
			b.I(isa.MOV, asm.R(gprs[r.Intn(len(gprs))]), asm.MemD(isa.ESI, int32(4*r.Intn(16))))
		case 1: // store
			b.I(isa.MOV, asm.MemD(isa.ESI, int32(4*r.Intn(16))), asm.R(gprs[r.Intn(len(gprs))]))
		case 2: // read-modify-write
			b.I(isa.ADD, asm.MemD(isa.ESI, int32(4*r.Intn(16))), asm.Imm(int64(r.Intn(100))))
		case 3: // MMX register op
			op := mmxOps[r.Intn(len(mmxOps))]
			b.I(op, asm.R(mms[r.Intn(len(mms))]), asm.R(mms[r.Intn(len(mms))]))
		case 4: // shift by immediate
			b.I(isa.SHL, asm.R(gprs[r.Intn(len(gprs))]), asm.Imm(int64(r.Intn(31))))
		default: // ALU register op
			op := regOps[r.Intn(len(regOps))]
			b.I(op, asm.R(gprs[r.Intn(len(gprs))]), asm.R(gprs[r.Intn(len(gprs))]))
		}
	}

	// A quarter of the seeds run hot enough (hundreds of inner iterations)
	// for the trace tier to form superblocks and, with a biased branch in
	// the body, grow trace-tree child paths.
	passes, trips := 2+r.Intn(3), 4+r.Intn(12)
	if r.Intn(4) == 0 {
		passes, trips = 6+r.Intn(6), 24+r.Intn(41)
	}
	b.I(isa.PROFON)
	b.I(isa.MOV, asm.R(isa.EDX), asm.Imm(int64(passes)))
	b.Label("pass")
	b.I(isa.MOV, asm.R(isa.ESI), asm.ImmSym("data", 0))
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(int64(trips)))
	b.Label("loop")
	for n := 4 + r.Intn(9); n > 0; n-- {
		emitBody()
	}
	// Half the seeds add a counter-keyed biased branch: the rare arm runs
	// every 2nd/4th/8th iteration, the shape that makes a superblock guard
	// fail persistently but below the deopt threshold (trace-tree growth).
	if r.Intn(2) == 0 {
		mask := int64(1<<(1+r.Intn(3))) - 1
		b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.ECX))
		b.I(isa.AND, asm.R(isa.EAX), asm.Imm(mask))
		b.J(isa.JNE, "biasjoin")
		b.I(isa.ADD, asm.MemD(isa.ESI, int32(4*r.Intn(16))), asm.Imm(int64(r.Intn(100))))
		b.Label("biasjoin")
	}
	b.I(isa.ADD, asm.R(isa.ESI), asm.Imm(4))
	b.I(isa.SUB, asm.R(isa.ECX), asm.Imm(1))
	b.J(isa.JNE, "loop")
	b.I(isa.SUB, asm.R(isa.EDX), asm.Imm(1))
	b.J(isa.JNE, "pass")
	b.I(isa.PROFOFF)
	b.I(isa.HALT)
	return b.Link()
}

// threeWayOutcome is everything one path produces that the others must
// reproduce.
type threeWayOutcome struct {
	gpr      [8]uint32
	mm       [8]uint64
	mem      []byte
	executed int64
	cycles   uint64
	report   *profile.Report
	cache    mem.HierarchyStats
}

func runDispatch(t *testing.T, prog *asm.Program, mode string) *threeWayOutcome {
	t.Helper()
	model := pentium.New(pentium.DefaultConfig())
	model.Bind(prog)
	col := profile.NewCollector(prog, model)
	cpu := vm.New(prog)
	cpu.Obs = col
	switch mode {
	case "generic":
		cpu.Generic = true
	case "predecode":
		cpu.NoBlocks = true
	case "block":
	case "trace":
		cpu.Traces = true
		// A low threshold makes the short fuzz loops actually form traces.
		cpu.TraceThreshold = 4
	default:
		t.Fatalf("unknown mode %q", mode)
	}
	cpu.Hier = mem.NewHierarchy()
	if err := cpu.Run(1 << 24); err != nil {
		t.Fatalf("run (%s): %v", mode, err)
	}
	out := &threeWayOutcome{
		executed: cpu.Executed(),
		cycles:   model.Cycles(),
		report:   col.Report(prog.Name),
		cache:    cpu.Hier.Stats,
	}
	for i := 0; i < 8; i++ {
		out.gpr[i] = cpu.GPR(isa.EAX + isa.Reg(i))
		out.mm[i] = uint64(cpu.MM(isa.MM0 + isa.Reg(i)))
	}
	out.mem = append([]byte(nil), cpu.Mem.Bytes()...)
	return out
}

func checkThreeWay(t *testing.T, seed uint64) {
	t.Helper()
	prog, err := buildRandomProgram(seed)
	if err != nil {
		t.Fatalf("seed %d: link: %v", seed, err)
	}
	gen := runDispatch(t, prog, "generic")
	for _, mode := range []string{"predecode", "block", "trace"} {
		got := runDispatch(t, prog, mode)
		if got.gpr != gen.gpr {
			t.Errorf("seed %d: %s GPRs %v, generic %v", seed, mode, got.gpr, gen.gpr)
		}
		if got.mm != gen.mm {
			t.Errorf("seed %d: %s MM %v, generic %v", seed, mode, got.mm, gen.mm)
		}
		if got.executed != gen.executed {
			t.Errorf("seed %d: %s executed %d, generic %d", seed, mode, got.executed, gen.executed)
		}
		if got.cycles != gen.cycles {
			t.Errorf("seed %d: %s cycles %d, generic %d", seed, mode, got.cycles, gen.cycles)
		}
		if got.cache != gen.cache {
			t.Errorf("seed %d: %s cache %+v, generic %+v", seed, mode, got.cache, gen.cache)
		}
		if !bytes.Equal(got.mem, gen.mem) {
			t.Errorf("seed %d: %s memory image differs from generic", seed, mode)
		}
		if !reflect.DeepEqual(got.report, gen.report) {
			t.Errorf("seed %d: %s report differs:\n %s %+v\n generic %+v",
				seed, mode, mode, got.report, gen.report)
		}
	}
}

// TestDispatchThreeWayRandomPrograms sweeps a fixed seed range so ordinary
// `go test` runs exercise the differential without the fuzz engine.
func TestDispatchThreeWayRandomPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		checkThreeWay(t, seed)
	}
}

// FuzzDispatchThreeWay lets `go test -fuzz` explore program shapes beyond
// the fixed sweep.
func FuzzDispatchThreeWay(f *testing.F) {
	// 18, 31, 51 and 74 generate hot biased-branch loops that demonstrably
	// grow trace trees (child paths attached, iterations completing through
	// them); the rest cover the short cold shapes.
	for _, seed := range []uint64{1, 7, 42, 12345, 1 << 40, 18, 31, 51, 74} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		checkThreeWay(t, seed)
	})
}

// TestDispatchThreeWaySuitePrograms repeats the differential on two real
// suite programs whose hot blocks exercise the penalty-signature memo
// (streaming kernels that miss L1 on nearly every iteration).
func TestDispatchThreeWaySuitePrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("suite programs are slow; skipped with -short")
	}
	want := map[string]bool{"matvec.mmx": true, "image.mmx": true}
	for _, bench := range suite.All() {
		if !want[bench.Name()] {
			continue
		}
		bench := bench
		t.Run(bench.Name(), func(t *testing.T) {
			t.Parallel()
			prog, err := bench.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			gen := runDispatch(t, prog, "generic")
			for _, mode := range []string{"block", "trace"} {
				got := runDispatch(t, prog, mode)
				if got.cycles != gen.cycles {
					t.Errorf("%s cycles %d, generic %d", mode, got.cycles, gen.cycles)
				}
				if !reflect.DeepEqual(got.report, gen.report) {
					t.Errorf("reports differ:\n %s %+v\n generic %+v", mode, got.report, gen.report)
				}
			}
		})
	}
}
