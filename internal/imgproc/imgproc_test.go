package imgproc

import (
	"testing"

	"mmxdsp/internal/synth"
)

func TestDim(t *testing.T) {
	in := []uint8{0, 64, 128, 255}
	out := make([]uint8, 4)
	Dim(out, in, DimParams{Num: 1, Den: 2})
	want := []uint8{0, 32, 64, 127}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestSwitchColorsPerChannel(t *testing.T) {
	in := []uint8{100, 100, 100, 250, 250, 250}
	out := make([]uint8, 6)
	SwitchColors(out, in, SwitchParams{DR: 30, DG: -30, DB: 0})
	want := []uint8{130, 70, 100, 255, 220, 250}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestPipelineOn640x480(t *testing.T) {
	in := synth.ImageRGB(640, 480, 3)
	out := Pipeline(in, DimParams{Num: 3, Den: 4}, SwitchParams{DR: 40, DG: 0, DB: -40})
	if len(out) != len(in) {
		t.Fatal("length changed")
	}
	// Spot-check one pixel against hand computation.
	i := 3 * (123*640 + 456)
	r := uint8(min(255, int(in[i])*3/4+40))
	g := uint8(int(in[i+1]) * 3 / 4)
	bv := int(in[i+2])*3/4 - 40
	if bv < 0 {
		bv = 0
	}
	if out[i] != r || out[i+1] != g || out[i+2] != uint8(bv) {
		t.Errorf("pixel = %d,%d,%d want %d,%d,%d",
			out[i], out[i+1], out[i+2], r, g, bv)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
