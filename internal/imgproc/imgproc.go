// Package imgproc implements the paper's image benchmark: uniform pixel
// manipulation of a 640×480 24-bit RGB bitmap. Pass one scales every 8-bit
// component to produce a dimming effect (vector multiply); pass two shifts
// component values to switch colors (vector add with saturation).
package imgproc

import "mmxdsp/internal/dsp"

// DimParams scales pixels by Num/Den. Den must be a power of two in the
// MMX implementation (pmulhw + shift); the reference accepts any positive
// value.
type DimParams struct {
	Num, Den int
}

// SwitchParams adds (R, G, B) deltas with saturation.
type SwitchParams struct {
	DR, DG, DB int
}

// Dim scales every component of an RGB buffer in place-free form.
func Dim(out, in []uint8, p DimParams) {
	dsp.ScaleBytes(out, in, p.Num, p.Den)
}

// SwitchColors adds per-channel deltas with saturation. The buffer is RGB
// triplets.
func SwitchColors(out, in []uint8, p SwitchParams) {
	d := [3]int{p.DR, p.DG, p.DB}
	for i := range in {
		v := int(in[i]) + d[i%3]
		if v > 255 {
			v = 255
		}
		if v < 0 {
			v = 0
		}
		out[i] = uint8(v)
	}
}

// Pipeline runs dim followed by color switch, the paper's two passes.
func Pipeline(in []uint8, dim DimParams, sw SwitchParams) []uint8 {
	tmp := make([]uint8, len(in))
	Dim(tmp, in, dim)
	out := make([]uint8, len(in))
	SwitchColors(out, tmp, sw)
	return out
}
