package imgproc

// Motion estimation, the other image workload MMX was designed around:
// block matching by sum of absolute differences (SAD). MMX has no
// single-instruction SAD (psadbw arrived with SSE); the MMX idiom composes
// it from two saturating unsigned subtractions and an OR — |a-b| =
// (a -us b) | (b -us a) — followed by unpack-and-accumulate. The reference
// implementations here mirror the benchmark programs' arithmetic exactly.

// SAD16 returns the sum of absolute differences between the 16×16 block at
// a[0] with row stride aw and the 16×16 block at b[0] with row stride bw.
func SAD16(a []uint8, aw int, b []uint8, bw int) int {
	sum := 0
	for y := 0; y < 16; y++ {
		ar := a[y*aw : y*aw+16]
		br := b[y*bw : y*bw+16]
		for x := 0; x < 16; x++ {
			d := int(ar[x]) - int(br[x])
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}

// MotionSearch full-searches displacements in [-r, r]² for the candidate
// 16×16 block of prev (row stride pw) best matching blk (row stride bw).
// orig is the index of the zero-displacement candidate's top-left corner in
// prev. Candidates are scanned dy-major, dx-minor, and only a strictly
// smaller SAD displaces the incumbent — the same order and tie-break as the
// benchmark programs, so results compare exactly.
func MotionSearch(prev []uint8, pw, orig int, blk []uint8, bw, r int) (dx, dy, sad int) {
	best := int(^uint(0) >> 1)
	for cy := -r; cy <= r; cy++ {
		for cx := -r; cx <= r; cx++ {
			s := SAD16(prev[orig+cy*pw+cx:], pw, blk, bw)
			if s < best {
				best, dx, dy = s, cx, cy
			}
		}
	}
	return dx, dy, best
}
