package jpegenc

import (
	"bytes"
	"image"
	"image/jpeg"
	"math"
	"testing"

	"mmxdsp/internal/bmp"
	"mmxdsp/internal/synth"
)

func testImage(w, h int) *bmp.Image {
	im, err := bmp.FromRGB(w, h, synth.ImageRGB(w, h, 1))
	if err != nil {
		panic(err)
	}
	return im
}

// decode uses the standard library as an independent decoder.
func decode(t *testing.T, data []byte) image.Image {
	t.Helper()
	img, err := jpeg.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("stdlib cannot decode our JPEG: %v", err)
	}
	return img
}

func TestEncodeDecodableByStdlib(t *testing.T) {
	im := testImage(64, 48)
	data := NewEncoder(75).Encode(im)
	img := decode(t, data)
	if img.Bounds().Dx() != 64 || img.Bounds().Dy() != 48 {
		t.Fatalf("decoded size %v", img.Bounds())
	}
}

func TestEncodePSNR(t *testing.T) {
	im := testImage(80, 64)
	data := NewEncoder(90).Encode(im)
	img := decode(t, data)
	var mse float64
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.At(x, y)
			dr, dg, db, _ := img.At(x, y).RGBA()
			e1 := float64(r) - float64(dr>>8)
			e2 := float64(g) - float64(dg>>8)
			e3 := float64(b) - float64(db>>8)
			mse += e1*e1 + e2*e2 + e3*e3
		}
	}
	mse /= float64(3 * im.W * im.H)
	psnr := 10 * math.Log10(255*255/mse)
	// The paper: "medium compression ratios may produce no visible change".
	if psnr < 30 {
		t.Errorf("PSNR = %.1f dB at q90, want >= 30", psnr)
	}
}

func TestQualityTradesSizeForFidelity(t *testing.T) {
	im := testImage(96, 96)
	lo := NewEncoder(20).Encode(im)
	hi := NewEncoder(95).Encode(im)
	if len(lo) >= len(hi) {
		t.Errorf("q20 size %d >= q95 size %d", len(lo), len(hi))
	}
	decode(t, lo)
	decode(t, hi)
}

func TestCompressionRatioRoughlyPaperLike(t *testing.T) {
	// The paper turns a 118 kB bitmap into a 7 kB JPEG (~17:1). Our
	// synthetic image at quality 50 should land within a broad band.
	im := testImage(224, 160) // ~105 kB of RGB, like the paper's input
	raw := 3 * im.W * im.H
	data := NewEncoder(50).Encode(im)
	ratio := float64(raw) / float64(len(data))
	if ratio < 5 || ratio > 80 {
		t.Errorf("compression ratio = %.1f (raw %d, jpeg %d), want 5..80",
			ratio, raw, len(data))
	}
}

func TestNonMultipleOf8Dimensions(t *testing.T) {
	im := testImage(37, 23)
	data := NewEncoder(75).Encode(im)
	img := decode(t, data)
	if img.Bounds().Dx() != 37 || img.Bounds().Dy() != 23 {
		t.Fatalf("decoded size %v, want 37x23", img.Bounds())
	}
}

func TestFlatImageCompressesExtremelyWell(t *testing.T) {
	im := bmp.New(64, 64)
	for i := range im.Pix {
		im.Pix[i] = 128
	}
	data := NewEncoder(75).Encode(im)
	if len(data) > 2000 {
		t.Errorf("flat image encoded to %d bytes, want < 2000", len(data))
	}
	img := decode(t, data)
	r, g, b, _ := img.At(32, 32).RGBA()
	for _, v := range []uint32{r >> 8, g >> 8, b >> 8} {
		if v < 120 || v > 136 {
			t.Errorf("flat gray decoded to %d, want ~128", v)
		}
	}
}

func TestBitSizeAndMagnitude(t *testing.T) {
	cases := []struct{ v, size, mag int }{
		{0, 0, 0},
		{1, 1, 1}, {-1, 1, 0},
		{2, 2, 2}, {3, 2, 3}, {-2, 2, 1}, {-3, 2, 0},
		{7, 3, 7}, {-7, 3, 0},
		{255, 8, 255}, {-255, 8, 0},
	}
	for _, c := range cases {
		if got := bitSize(c.v); got != c.size {
			t.Errorf("bitSize(%d) = %d, want %d", c.v, got, c.size)
		}
		if c.size > 0 {
			if got := encodeMagnitude(c.v, c.size); got != c.mag {
				t.Errorf("encodeMagnitude(%d) = %d, want %d", c.v, got, c.mag)
			}
		}
	}
}

func TestScaleQuantBounds(t *testing.T) {
	q1 := ScaleQuant(StdLuminanceQuant, 1)
	q100 := ScaleQuant(StdLuminanceQuant, 100)
	for i := range q1 {
		if q1[i] < 1 || q1[i] > 255 {
			t.Fatalf("q1[%d] = %d out of range", i, q1[i])
		}
		if q100[i] != 1 {
			t.Fatalf("q100[%d] = %d, want 1", i, q100[i])
		}
	}
}

func TestZigZagIsPermutation(t *testing.T) {
	var seen [64]bool
	for _, v := range ZigZag {
		if v < 0 || v > 63 || seen[v] {
			t.Fatalf("zigzag not a permutation at %d", v)
		}
		seen[v] = true
	}
	// Spot-check the canonical start of the pattern.
	want := []int{0, 1, 8, 16, 9, 2}
	for i, v := range want {
		if ZigZag[i] != v {
			t.Errorf("ZigZag[%d] = %d, want %d", i, ZigZag[i], v)
		}
	}
}

func TestHuffmanCanonicalCodes(t *testing.T) {
	// DC luminance: symbol 0 has the first length-2 code (00), symbols
	// 1..5 follow with length 3.
	if dcLumTable.bits[0] != 2 || dcLumTable.code[0] != 0 {
		t.Errorf("DC lum sym0: %d bits code %b", dcLumTable.bits[0], dcLumTable.code[0])
	}
	if dcLumTable.bits[1] != 3 || dcLumTable.code[1] != 0b010 {
		t.Errorf("DC lum sym1: %d bits code %b", dcLumTable.bits[1], dcLumTable.code[1])
	}
	// AC luminance EOB (0x00) is the 4-bit code 1010.
	if acLumTable.bits[0x00] != 4 || acLumTable.code[0x00] != 0b1010 {
		t.Errorf("AC lum EOB: %d bits code %b", acLumTable.bits[0x00], acLumTable.code[0x00])
	}
	// ZRL (0xF0) is the 11-bit code 11111111001.
	if acLumTable.bits[0xF0] != 11 || acLumTable.code[0xF0] != 0b11111111001 {
		t.Errorf("AC lum ZRL: %d bits code %b", acLumTable.bits[0xF0], acLumTable.code[0xF0])
	}
}

func TestBitWriterStuffing(t *testing.T) {
	var buf bytes.Buffer
	w := newBitWriter(&buf)
	w.write(0xFF, 8)
	w.flush()
	if !bytes.Equal(buf.Bytes(), []byte{0xFF, 0x00}) {
		t.Errorf("stuffing: % x", buf.Bytes())
	}
}
