// Package jpegenc is a from-scratch baseline JPEG (JFIF) encoder: color
// conversion, 8×8 forward DCT, quantization, zig-zag ordering and Huffman
// entropy coding with the ITU-T T.81 Annex K tables. It exists as the
// pure-Go reference for the jpeg benchmark — the same pipeline the VM
// programs implement — and its output is validated by decoding with the
// standard library's image/jpeg.
//
// The encoder uses 4:4:4 sampling (no chroma subsampling); the paper's
// encoder workload is dominated by color conversion, DCT and quantization,
// which are unaffected by the subsampling choice.
package jpegenc

import (
	"bytes"

	"mmxdsp/internal/bmp"
	"mmxdsp/internal/dsp"
)

// Quality scales the quantization tables like IJG cjpeg (1..100).
type Quality int

// StdLuminanceQuant is the ITU-T T.81 Annex K luminance table in natural
// (row-major) order.
var StdLuminanceQuant = [64]int{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// StdChrominanceQuant is the Annex K chrominance table.
var StdChrominanceQuant = [64]int{
	17, 18, 24, 47, 99, 99, 99, 99,
	18, 21, 26, 66, 99, 99, 99, 99,
	24, 26, 56, 99, 99, 99, 99, 99,
	47, 66, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
}

// ZigZag maps zig-zag order to natural order: natural = ZigZag[z].
var ZigZag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// ScaleQuant scales a base table for the given quality, clamping entries to
// [1, 255], following the IJG convention.
func ScaleQuant(base [64]int, q Quality) [64]int {
	if q < 1 {
		q = 1
	}
	if q > 100 {
		q = 100
	}
	var scale int
	if q < 50 {
		scale = 5000 / int(q)
	} else {
		scale = 200 - 2*int(q)
	}
	var out [64]int
	for i, v := range base {
		s := (v*scale + 50) / 100
		if s < 1 {
			s = 1
		}
		if s > 255 {
			s = 255
		}
		out[i] = s
	}
	return out
}

// RGBToYCbCr converts one pixel with the BT.601 full-range matrix, the same
// integer-free form the reference float pipeline uses.
func RGBToYCbCr(r, g, b uint8) (y, cb, cr float64) {
	rf, gf, bf := float64(r), float64(g), float64(b)
	y = 0.299*rf + 0.587*gf + 0.114*bf
	cb = 128 - 0.168736*rf - 0.331264*gf + 0.5*bf
	cr = 128 + 0.5*rf - 0.418688*gf - 0.081312*bf
	return
}

// Encoder compresses images at a fixed quality.
type Encoder struct {
	quality Quality
	yQ, cQ  [64]int
}

// NewEncoder builds an encoder with IJG-style quality scaling.
func NewEncoder(q Quality) *Encoder {
	return &Encoder{
		quality: q,
		yQ:      ScaleQuant(StdLuminanceQuant, q),
		cQ:      ScaleQuant(StdChrominanceQuant, q),
	}
}

// BlocksFor returns how many 8×8 blocks cover a w×h image per component.
func BlocksFor(w, h int) int { return ((w + 7) / 8) * ((h + 7) / 8) }

// Encode compresses the image to a JFIF byte stream.
func (e *Encoder) Encode(im *bmp.Image) []byte {
	var buf bytes.Buffer
	writeMarkers(&buf, im.W, im.H, &e.yQ, &e.cQ)

	bw := newBitWriter(&buf)
	mcuW := (im.W + 7) / 8
	mcuH := (im.H + 7) / 8
	var dcY, dcCb, dcCr int
	var yBlk, cbBlk, crBlk [64]float64
	for by := 0; by < mcuH; by++ {
		for bx := 0; bx < mcuW; bx++ {
			extractBlock(im, bx*8, by*8, &yBlk, &cbBlk, &crBlk)
			dcY = encodeBlock(bw, &yBlk, &e.yQ, dcY, &dcLumTable, &acLumTable)
			dcCb = encodeBlock(bw, &cbBlk, &e.cQ, dcCb, &dcChromaTable, &acChromaTable)
			dcCr = encodeBlock(bw, &crBlk, &e.cQ, dcCr, &dcChromaTable, &acChromaTable)
		}
	}
	bw.flush()
	buf.Write([]byte{0xFF, 0xD9}) // EOI
	return buf.Bytes()
}

// extractBlock reads an 8×8 tile (edge-clamped) and converts it to level
// shifted YCbCr planes.
func extractBlock(im *bmp.Image, x0, y0 int, y, cb, cr *[64]float64) {
	for dy := 0; dy < 8; dy++ {
		sy := y0 + dy
		if sy >= im.H {
			sy = im.H - 1
		}
		for dx := 0; dx < 8; dx++ {
			sx := x0 + dx
			if sx >= im.W {
				sx = im.W - 1
			}
			r, g, b := im.At(sx, sy)
			yy, cc, rr := RGBToYCbCr(r, g, b)
			i := dy*8 + dx
			y[i] = yy - 128 // level shift
			cb[i] = cc - 128
			cr[i] = rr - 128
		}
	}
}

// QuantizeBlock transforms and quantizes one block, returning the 64
// coefficients in natural order.
func QuantizeBlock(blk *[64]float64, q *[64]int) [64]int {
	var freq [64]float64
	dsp.DCT2D8(freq[:], blk[:])
	var out [64]int
	for i := range out {
		v := freq[i] / float64(q[i])
		if v >= 0 {
			out[i] = int(v + 0.5)
		} else {
			out[i] = int(v - 0.5)
		}
	}
	return out
}

// encodeBlock transforms, quantizes and entropy-codes one block, returning
// the new DC predictor.
func encodeBlock(bw *bitWriter, blk *[64]float64, q *[64]int, dcPred int,
	dcT, acT *huffTable) int {

	coef := QuantizeBlock(blk, q)

	// DC difference.
	dc := coef[0]
	diff := dc - dcPred
	size := bitSize(diff)
	bw.write(dcT.code[size], dcT.bits[size])
	if size > 0 {
		bw.write(uint32(encodeMagnitude(diff, size)), size)
	}

	// AC run-length coding in zig-zag order.
	run := 0
	for z := 1; z < 64; z++ {
		v := coef[ZigZag[z]]
		if v == 0 {
			run++
			continue
		}
		for run >= 16 {
			bw.write(acT.code[0xF0], acT.bits[0xF0]) // ZRL
			run -= 16
		}
		size := bitSize(v)
		sym := run<<4 | size
		bw.write(acT.code[sym], acT.bits[sym])
		bw.write(uint32(encodeMagnitude(v, size)), size)
		run = 0
	}
	if run > 0 {
		bw.write(acT.code[0x00], acT.bits[0x00]) // EOB
	}
	return dc
}

// bitSize returns the JPEG magnitude category of v.
func bitSize(v int) int {
	if v < 0 {
		v = -v
	}
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// encodeMagnitude returns the size-bit two's-complement-style encoding of v
// (negative values use the one's complement form T.81 requires).
func encodeMagnitude(v, size int) int {
	if v >= 0 {
		return v
	}
	return v + (1 << size) - 1
}

// bitWriter packs MSB-first bits with 0xFF byte stuffing.
type bitWriter struct {
	out  *bytes.Buffer
	acc  uint32
	bits int
}

func newBitWriter(out *bytes.Buffer) *bitWriter { return &bitWriter{out: out} }

func (w *bitWriter) write(code uint32, n int) {
	w.acc = w.acc<<uint(n) | (code & (1<<uint(n) - 1))
	w.bits += n
	for w.bits >= 8 {
		b := byte(w.acc >> uint(w.bits-8))
		w.out.WriteByte(b)
		if b == 0xFF {
			w.out.WriteByte(0x00)
		}
		w.bits -= 8
	}
}

func (w *bitWriter) flush() {
	if w.bits > 0 {
		// Pad with 1 bits as T.81 requires.
		pad := 8 - w.bits
		w.write(1<<uint(pad)-1, pad)
	}
}
