package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSatW(t *testing.T) {
	cases := []struct {
		in   int32
		want int16
	}{
		{0, 0}, {1, 1}, {-1, -1},
		{32767, 32767}, {32768, 32767}, {100000, 32767},
		{-32768, -32768}, {-32769, -32768}, {-100000, -32768},
	}
	for _, c := range cases {
		if got := SatW(c.in); got != c.want {
			t.Errorf("SatW(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSatB(t *testing.T) {
	cases := []struct {
		in   int32
		want int8
	}{
		{0, 0}, {127, 127}, {128, 127}, {-128, -128}, {-129, -128}, {1000, 127}, {-1000, -128},
	}
	for _, c := range cases {
		if got := SatB(c.in); got != c.want {
			t.Errorf("SatB(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSatUB(t *testing.T) {
	cases := []struct {
		in   int32
		want uint8
	}{
		{0, 0}, {255, 255}, {256, 255}, {-1, 0}, {1000, 255},
	}
	for _, c := range cases {
		if got := SatUB(c.in); got != c.want {
			t.Errorf("SatUB(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSatUW(t *testing.T) {
	cases := []struct {
		in   int32
		want uint16
	}{
		{0, 0}, {65535, 65535}, {65536, 65535}, {-1, 0},
	}
	for _, c := range cases {
		if got := SatUW(c.in); got != c.want {
			t.Errorf("SatUW(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestQ15RoundTripExact(t *testing.T) {
	// Every representable Q15 value must round-trip exactly.
	for v := -32768; v <= 32767; v += 97 {
		q := int16(v)
		if got := ToQ15(FromQ15(q)); got != q {
			t.Fatalf("round trip %d -> %v -> %d", q, FromQ15(q), got)
		}
	}
}

func TestToQ15Saturates(t *testing.T) {
	if got := ToQ15(2.0); got != 32767 {
		t.Errorf("ToQ15(2.0) = %d, want 32767", got)
	}
	if got := ToQ15(-2.0); got != -32768 {
		t.Errorf("ToQ15(-2.0) = %d, want -32768", got)
	}
	if got := ToQ15(1.0); got != 32767 {
		t.Errorf("ToQ15(1.0) = %d, want 32767 (1.0 saturates)", got)
	}
	if got := ToQ15(-1.0); got != -32768 {
		t.Errorf("ToQ15(-1.0) = %d, want -32768", got)
	}
}

func TestToQ7Saturates(t *testing.T) {
	if got := ToQ7(1.0); got != 127 {
		t.Errorf("ToQ7(1.0) = %d, want 127", got)
	}
	if got := ToQ7(-1.0); got != -128 {
		t.Errorf("ToQ7(-1.0) = %d, want -128", got)
	}
	if got := ToQ7(0.5); got != 64 {
		t.Errorf("ToQ7(0.5) = %d, want 64", got)
	}
}

func TestMulQ15Basics(t *testing.T) {
	half := ToQ15(0.5)
	quarter := MulQ15(half, half)
	if math.Abs(FromQ15(quarter)-0.25) > 1e-3 {
		t.Errorf("0.5*0.5 = %v, want ~0.25", FromQ15(quarter))
	}
	// -1 * -1 saturates to Q15One rather than overflowing.
	if got := MulQ15(-32768, -32768); got != 32767 {
		t.Errorf("MulQ15(-1,-1) = %d, want 32767", got)
	}
}

func TestMulQ15ErrorBound(t *testing.T) {
	// Property: fractional multiply is within one ULP of the real product.
	f := func(a, b int16) bool {
		got := FromQ15(MulQ15(a, b))
		want := FromQ15(a) * FromQ15(b)
		if want >= 1.0 { // saturated region
			want = FromQ15(32767)
		}
		return math.Abs(got-want) <= 1.5/Q15Unit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNarrowQ30(t *testing.T) {
	// A single product narrowed from Q30 equals the rounded fractional product.
	f := func(a, b int16) bool {
		acc := MacQ15(0, a, b)
		return NarrowQ30(acc) == MulQ15(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNarrowQ30Saturates(t *testing.T) {
	var acc int64
	for i := 0; i < 8; i++ {
		acc = MacQ15(acc, 32767, 32767)
	}
	if got := NarrowQ30(acc); got != 32767 {
		t.Errorf("positive overflow narrows to %d, want 32767", got)
	}
	acc = 0
	for i := 0; i < 8; i++ {
		acc = MacQ15(acc, -32768, 32767)
	}
	if got := NarrowQ30(acc); got != -32768 {
		t.Errorf("negative overflow narrows to %d, want -32768", got)
	}
}

func TestVecConversions(t *testing.T) {
	in := []float64{0, 0.25, -0.25, 0.999, -0.999}
	q := VecToQ15(in)
	out := VecFromQ15(q)
	for i := range in {
		if math.Abs(in[i]-out[i]) > 1.0/Q15Unit {
			t.Errorf("vec round trip [%d]: %v -> %v", i, in[i], out[i])
		}
	}
}

func TestSatMonotonic(t *testing.T) {
	// Property: saturation is monotonic.
	f := func(a, b int32) bool {
		if a > b {
			a, b = b, a
		}
		return SatW(a) <= SatW(b) && SatB(a) <= SatB(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
