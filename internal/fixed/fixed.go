// Package fixed provides Q15/Q7 fixed-point arithmetic helpers shared by
// the reference DSP implementations, the MMX semantic model, and the tests.
//
// Q15 stores a real value v in [-1, 1) as round(v * 32768) in an int16;
// Q7 stores v in [-1, 1) as round(v * 128) in an int8. All narrowing
// conversions saturate, matching MMX saturation semantics.
package fixed

// Q15 constants.
const (
	Q15One  = 32767  // largest representable Q15 value
	Q15Min  = -32768 // smallest representable Q15 value
	Q15Unit = 32768  // scale factor: 1.0 in Q15 (not itself representable)
)

// SatW saturates a 32-bit value to the signed 16-bit range.
func SatW(v int32) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// SatB saturates a 32-bit value to the signed 8-bit range.
func SatB(v int32) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}

// SatUB saturates a 32-bit value to the unsigned 8-bit range.
func SatUB(v int32) uint8 {
	if v > 255 {
		return 255
	}
	if v < 0 {
		return 0
	}
	return uint8(v)
}

// SatUW saturates a 32-bit value to the unsigned 16-bit range.
func SatUW(v int32) uint16 {
	if v > 65535 {
		return 65535
	}
	if v < 0 {
		return 0
	}
	return uint16(v)
}

// ToQ15 converts a real value to Q15 with rounding and saturation.
func ToQ15(v float64) int16 {
	s := v * Q15Unit
	if s >= 0 {
		s += 0.5
	} else {
		s -= 0.5
	}
	return SatW(clamp32(s))
}

// FromQ15 converts a Q15 value back to a real value.
func FromQ15(v int16) float64 { return float64(v) / Q15Unit }

// ToQ7 converts a real value to Q7 with rounding and saturation.
func ToQ7(v float64) int8 {
	s := v * 128
	if s >= 0 {
		s += 0.5
	} else {
		s -= 0.5
	}
	return SatB(clamp32(s))
}

// FromQ7 converts a Q7 value back to a real value.
func FromQ7(v int8) float64 { return float64(v) / 128 }

// MulQ15 multiplies two Q15 values producing a Q15 value (single rounding,
// saturating). This matches the classic DSP fractional multiply:
// (a*b) >> 15 with round-half-up.
func MulQ15(a, b int16) int16 {
	p := int32(a) * int32(b)
	p += 1 << 14
	return SatW(p >> 15)
}

// MulQ15Trunc multiplies two Q15 values with truncation toward negative
// infinity: (a*b)>>15 on the full 32-bit product. This is the semantics of
// the MMX pmulhw/pmullw recombination idiom the assembly library uses, and
// is one bit noisier than MulQ15 — the precision loss the paper attributes
// to the "interleaving of high and low words during multiplication".
func MulQ15Trunc(a, b int16) int16 {
	return int16((int32(a) * int32(b)) >> 15)
}

// MacQ15 returns acc + a*b in Q30 without intermediate rounding. The caller
// narrows once at the end, which is how pmaddwd-based inner products behave.
func MacQ15(acc int64, a, b int16) int64 { return acc + int64(a)*int64(b) }

// NarrowQ30 converts a Q30 accumulator to Q15 with rounding and saturation.
func NarrowQ30(acc int64) int16 {
	acc += 1 << 14
	acc >>= 15
	if acc > 32767 {
		return 32767
	}
	if acc < -32768 {
		return -32768
	}
	return int16(acc)
}

// VecToQ15 converts a float64 slice to Q15.
func VecToQ15(v []float64) []int16 {
	out := make([]int16, len(v))
	for i, x := range v {
		out[i] = ToQ15(x)
	}
	return out
}

// VecFromQ15 converts a Q15 slice to float64.
func VecFromQ15(v []int16) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = FromQ15(x)
	}
	return out
}

func clamp32(s float64) int32 {
	if s > 2147483647 {
		return 2147483647
	}
	if s < -2147483648 {
		return -2147483648
	}
	return int32(s)
}
