package bmp

import (
	"testing"

	"mmxdsp/internal/synth"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, dim := range [][2]int{{4, 4}, {5, 3}, {7, 1}, {33, 17}} {
		w, h := dim[0], dim[1]
		im, err := FromRGB(w, h, synth.ImageRGB(w, h, 3))
		if err != nil {
			t.Fatal(err)
		}
		data := Encode(im)
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("%dx%d: %v", w, h, err)
		}
		if back.W != w || back.H != h {
			t.Fatalf("size %dx%d, want %dx%d", back.W, back.H, w, h)
		}
		for i := range im.Pix {
			if im.Pix[i] != back.Pix[i] {
				t.Fatalf("%dx%d: pixel byte %d differs", w, h, i)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("not a bmp")); err == nil {
		t.Error("garbage must fail")
	}
	im := New(4, 4)
	data := Encode(im)
	if _, err := Decode(data[:20]); err == nil {
		t.Error("truncated header must fail")
	}
	data[28] = 8 // claim 8bpp
	if _, err := Decode(data); err == nil {
		t.Error("unsupported depth must fail")
	}
}

func TestFromRGBValidatesLength(t *testing.T) {
	if _, err := FromRGB(4, 4, make([]uint8, 10)); err == nil {
		t.Error("short buffer must fail")
	}
}

func TestSetAt(t *testing.T) {
	im := New(3, 2)
	im.Set(2, 1, 10, 20, 30)
	r, g, b := im.At(2, 1)
	if r != 10 || g != 20 || b != 30 {
		t.Errorf("At = %d,%d,%d", r, g, b)
	}
}

func TestPaperSizedImage(t *testing.T) {
	// The paper's jpeg input is a 118 kB bitmap; 224×160 at 24bpp with
	// headers lands close.
	im := New(224, 160)
	data := Encode(im)
	if len(data) < 100_000 || len(data) > 130_000 {
		t.Errorf("encoded size = %d bytes, want ~118 kB", len(data))
	}
}
