// Package bmp reads and writes uncompressed 24-bit Windows bitmaps — the
// input format of the paper's jpeg and image benchmarks.
package bmp

import (
	"encoding/binary"
	"fmt"
)

// Image is a simple 24-bit RGB image, row-major from the top-left.
type Image struct {
	W, H int
	// Pix holds RGB triplets, 3*W*H bytes.
	Pix []uint8
}

// New allocates a black image.
func New(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]uint8, 3*w*h)}
}

// FromRGB wraps an existing RGB buffer.
func FromRGB(w, h int, pix []uint8) (*Image, error) {
	if len(pix) != 3*w*h {
		return nil, fmt.Errorf("bmp: pixel buffer is %d bytes, want %d", len(pix), 3*w*h)
	}
	return &Image{W: w, H: h, Pix: pix}, nil
}

// At returns the RGB components at (x, y).
func (im *Image) At(x, y int) (r, g, b uint8) {
	i := 3 * (y*im.W + x)
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// Set writes the RGB components at (x, y).
func (im *Image) Set(x, y int, r, g, b uint8) {
	i := 3 * (y*im.W + x)
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}

const headerSize = 14 + 40 // BITMAPFILEHEADER + BITMAPINFOHEADER

// rowStride returns the padded BMP row size (rows align to 4 bytes).
func rowStride(w int) int { return (3*w + 3) &^ 3 }

// Encode serializes the image as an uncompressed 24-bit BMP
// (bottom-up row order, BGR byte order, 4-byte row padding).
func Encode(im *Image) []byte {
	stride := rowStride(im.W)
	size := headerSize + stride*im.H
	out := make([]byte, size)
	// BITMAPFILEHEADER
	out[0], out[1] = 'B', 'M'
	binary.LittleEndian.PutUint32(out[2:], uint32(size))
	binary.LittleEndian.PutUint32(out[10:], headerSize)
	// BITMAPINFOHEADER
	binary.LittleEndian.PutUint32(out[14:], 40)
	binary.LittleEndian.PutUint32(out[18:], uint32(im.W))
	binary.LittleEndian.PutUint32(out[22:], uint32(im.H))
	binary.LittleEndian.PutUint16(out[26:], 1)  // planes
	binary.LittleEndian.PutUint16(out[28:], 24) // bpp
	binary.LittleEndian.PutUint32(out[34:], uint32(stride*im.H))
	// Pixels: bottom-up, BGR.
	for y := 0; y < im.H; y++ {
		dst := headerSize + (im.H-1-y)*stride
		for x := 0; x < im.W; x++ {
			r, g, b := im.At(x, y)
			out[dst+3*x] = b
			out[dst+3*x+1] = g
			out[dst+3*x+2] = r
		}
	}
	return out
}

// Decode parses an uncompressed 24-bit BMP produced by Encode (or any
// standard writer using the plain 40-byte info header).
func Decode(data []byte) (*Image, error) {
	if len(data) < headerSize || data[0] != 'B' || data[1] != 'M' {
		return nil, fmt.Errorf("bmp: not a BMP file")
	}
	offset := binary.LittleEndian.Uint32(data[10:])
	w := int(int32(binary.LittleEndian.Uint32(data[18:])))
	h := int(int32(binary.LittleEndian.Uint32(data[22:])))
	bpp := binary.LittleEndian.Uint16(data[28:])
	if bpp != 24 {
		return nil, fmt.Errorf("bmp: unsupported depth %d", bpp)
	}
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("bmp: bad dimensions %dx%d", w, h)
	}
	stride := rowStride(w)
	if int(offset)+stride*h > len(data) {
		return nil, fmt.Errorf("bmp: truncated pixel data")
	}
	im := New(w, h)
	for y := 0; y < h; y++ {
		src := int(offset) + (h-1-y)*stride
		for x := 0; x < w; x++ {
			b := data[src+3*x]
			g := data[src+3*x+1]
			r := data[src+3*x+2]
			im.Set(x, y, r, g, b)
		}
	}
	return im, nil
}
