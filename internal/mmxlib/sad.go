package mmxlib

import (
	"mmxdsp/internal/asm"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/isa"
)

// EmitSAD16 emits nsSAD16(a, aStride, b, bStride): the sum of absolute
// differences between two 16×16 pixel blocks, returned in EAX. MMX has no
// psadbw, so each quadword pair uses the classic composition
// |a-b| = (a -us b) | (b -us a), unpacks the byte differences against zero
// and accumulates into word lanes. Each lane absorbs at most 64 differences
// of 255 (16320), well inside 16 bits, and the lanes fold to a scalar with
// pmaddwd-by-ones plus a horizontal dword add.
func EmitSAD16(b *asm.Builder) {
	const name = "nsSAD16"
	b.Proc(name)
	emit.LoadArg(b, isa.ESI, 0)                   // a
	emit.LoadArg(b, isa.EBX, 1)                   // aStride
	emit.LoadArg(b, isa.EDI, 2)                   // b
	emit.LoadArg(b, isa.EDX, 3)                   // bStride
	b.I(isa.PXOR, asm.R(isa.MM7), asm.R(isa.MM7)) // zero for unpacking
	b.I(isa.PXOR, asm.R(isa.MM6), asm.R(isa.MM6)) // word accumulator
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(1))
	emit.BroadcastW(b, isa.MM5, isa.EAX) // 1,1,1,1 for the pmaddwd fold
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
	b.Label(name + ".row")
	for _, off := range []int32{0, 8} {
		b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemQ(isa.ESI, off))
		b.I(isa.MOVQ, asm.R(isa.MM1), asm.R(isa.MM0))
		b.I(isa.MOVQ, asm.R(isa.MM2), asm.MemQ(isa.EDI, off))
		b.I(isa.PSUBUSB, asm.R(isa.MM0), asm.R(isa.MM2)) // max(a-b, 0)
		b.I(isa.PSUBUSB, asm.R(isa.MM2), asm.R(isa.MM1)) // max(b-a, 0)
		b.I(isa.POR, asm.R(isa.MM0), asm.R(isa.MM2))     // |a-b|
		b.I(isa.MOVQ, asm.R(isa.MM1), asm.R(isa.MM0))
		b.I(isa.PUNPCKLBW, asm.R(isa.MM0), asm.R(isa.MM7))
		b.I(isa.PUNPCKHBW, asm.R(isa.MM1), asm.R(isa.MM7))
		b.I(isa.PADDW, asm.R(isa.MM6), asm.R(isa.MM0))
		b.I(isa.PADDW, asm.R(isa.MM6), asm.R(isa.MM1))
	}
	b.I(isa.ADD, asm.R(isa.ESI), asm.R(isa.EBX))
	b.I(isa.ADD, asm.R(isa.EDI), asm.R(isa.EDX))
	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(16))
	b.J(isa.JL, name+".row")
	b.I(isa.PMADDWD, asm.R(isa.MM6), asm.R(isa.MM5))
	emit.HSumD(b, isa.MM6, isa.MM0)
	b.I(isa.MOVD, asm.R(isa.EAX), asm.R(isa.MM6))
	b.Ret()
}
