package mmxlib

import (
	"mmxdsp/internal/asm"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/isa"
)

// EmitDct2D emits nsDct2D(in16, out16, basis, tmp16): the fused 8x8 2-D
// DCT the paper wishes the Intel library had ("Image and video compression
// programs would benefit from a two-dimensional DCT function in the MMX
// library"). One call replaces sixteen nsDct8 calls plus the staging and
// transposes: rows are transformed in a single pass, the column pass reads
// the intermediate with strided scalar gathers internally, and results
// match the 16-call path bit for bit (same Q13 basis, same narrowing per
// pass).
//
// in16: 64 int16 (row-major); out16: 64 int16; basis: DCTBasisQuads;
// tmp16: 64 int16 scratch.
func EmitDct2D(b *asm.Builder) {
	const name = "nsDct2D"
	b.Proc(name)
	emit.LoadArg(b, isa.ESI, 0) // in
	emit.LoadArg(b, isa.EDI, 3) // tmp (row-pass output)
	emit.LoadArg(b, isa.EBX, 2) // basis

	// Row pass: rows are contiguous quads; results go to tmp row-major.
	for r := 0; r < 8; r++ {
		off := int32(16 * r)
		b.I(isa.MOVQ, asm.R(isa.MM6), asm.MemQ(isa.ESI, off))
		b.I(isa.MOVQ, asm.R(isa.MM7), asm.MemQ(isa.ESI, off+8))
		emitDct8Core(b, name+".r"+string(rune('0'+r)), func(k int) isa.Operand {
			return asm.MemW(isa.EDI, off+int32(2*k))
		})
	}

	// Column pass: gather each column of tmp into registers via scalar
	// word loads (the fused routine keeps this inside one call — no
	// per-row call/stage/unstage overhead), transform, scatter to out.
	emit.LoadArg(b, isa.EDX, 1) // out
	for c := 0; c < 8; c++ {
		colOff := int32(2 * c)
		// Build mm6 (rows 0..3 of column c) and mm7 (rows 4..7) in the
		// staging quad "dct2d.col" then load.
		for n := 0; n < 8; n++ {
			b.I(isa.MOVZXW, asm.R(isa.EAX), asm.MemW(isa.EDI, colOff+int32(16*n)))
			b.I(isa.MOV, asm.Sym(isa.SizeW, "dct2d.col", int32(2*n)), asm.R(isa.EAX))
		}
		b.I(isa.MOVQ, asm.R(isa.MM6), asm.Sym(isa.SizeQ, "dct2d.col", 0))
		b.I(isa.MOVQ, asm.R(isa.MM7), asm.Sym(isa.SizeQ, "dct2d.col", 8))
		emitDct8Core(b, name+".c"+string(rune('0'+c)), func(k int) isa.Operand {
			return asm.MemW(isa.EDX, colOff+int32(16*k))
		})
	}
	b.Ret()
}

// emitDct8Core emits the eight-output Q13 DCT body operating on the input
// quads already loaded into mm6/mm7, with the basis pointer in ebx; dst(k)
// supplies the store operand for output k. Matches nsDct8's arithmetic.
func emitDct8Core(b *asm.Builder, tag string, dst func(k int) isa.Operand) {
	for k := 0; k < 8; k++ {
		off := int32(16 * k)
		b.I(isa.MOVQ, asm.R(isa.MM0), asm.R(isa.MM6))
		b.I(isa.PMADDWD, asm.R(isa.MM0), asm.MemQ(isa.EBX, off))
		b.I(isa.MOVQ, asm.R(isa.MM1), asm.R(isa.MM7))
		b.I(isa.PMADDWD, asm.R(isa.MM1), asm.MemQ(isa.EBX, off+8))
		b.I(isa.PADDD, asm.R(isa.MM0), asm.R(isa.MM1))
		emit.HSumD(b, isa.MM0, isa.MM2)
		b.I(isa.MOVD, asm.R(isa.EAX), asm.R(isa.MM0))
		b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(1<<12))
		b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(13))
		clampAX(b, tag+nameSuffix(k))
		b.I(isa.MOV, dst(k), asm.R(isa.EAX))
	}
}

// Dct2DScratch places the column staging quad nsDct2D needs.
func Dct2DScratch(b *asm.Builder) {
	b.Words("dct2d.col", make([]int16, 8))
}
