package mmxlib

import (
	"mmxdsp/internal/asm"
	"mmxdsp/internal/dsp"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/isa"
)

// EmitCvtI16ToF32 emits nsCvtI16F32(dst, src, n, stage): convert int16
// samples to float32. Pass one sign-extends all samples to dwords in the
// stage buffer with MMX unpacks; after a single emms, pass two converts the
// staged dwords with fild/fst. This is the data-formatting step of the
// hybrid MMX FFT. n must be a multiple of 4; stage holds n dwords.
func EmitCvtI16ToF32(b *asm.Builder) {
	const name = "nsCvtI16F32"
	b.Proc(name)
	emit.LoadArg(b, isa.ESI, 1) // src
	emit.LoadArg(b, isa.EDI, 3) // stage
	emit.LoadArg(b, isa.ECX, 2)
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label(name + ".widen")
	// Sign-extend 4 words to 4 dwords with the compare trick.
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.ESI, isa.EAX, 2, 0))
	b.I(isa.PXOR, asm.R(isa.MM1), asm.R(isa.MM1))
	b.I(isa.PCMPGTW, asm.R(isa.MM1), asm.R(isa.MM0)) // sign mask
	b.I(isa.MOVQ, asm.R(isa.MM2), asm.R(isa.MM0))
	b.I(isa.PUNPCKLWD, asm.R(isa.MM2), asm.R(isa.MM1))
	b.I(isa.PUNPCKHWD, asm.R(isa.MM0), asm.R(isa.MM1))
	b.I(isa.MOVQ, asm.MemIdx(isa.SizeQ, isa.EDI, isa.EAX, 4, 0), asm.R(isa.MM2))
	b.I(isa.MOVQ, asm.MemIdx(isa.SizeQ, isa.EDI, isa.EAX, 4, 8), asm.R(isa.MM0))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(4))
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.ECX))
	b.J(isa.JL, name+".widen")
	b.I(isa.EMMS) // one mode switch before the x87 pass

	emit.LoadArg(b, isa.EDX, 0) // dst
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label(name + ".tofloat")
	b.I(isa.FILD, asm.R(isa.FP0), asm.MemIdx(isa.SizeD, isa.EDI, isa.EAX, 4, 0))
	b.I(isa.FST, asm.MemIdx(isa.SizeD, isa.EDX, isa.EAX, 4, 0), asm.R(isa.FP0))
	b.I(isa.INC, asm.R(isa.EAX))
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.ECX))
	b.J(isa.JL, name+".tofloat")
	b.Ret()
}

// EmitCvtF32ToI16 emits nsCvtF32I16(dst, src, n, scaleBits): convert
// float32 values back to int16 with rounding after multiplying by the
// float32 scale whose bit pattern is passed as scaleBits (typically 1/N to
// match the block-scaled fixed-point FFT convention).
func EmitCvtF32ToI16(b *asm.Builder) {
	const name = "nsCvtF32I16"
	b.Proc(name)
	emit.LoadArg(b, isa.EDI, 0)
	emit.LoadArg(b, isa.ESI, 1)
	emit.LoadArg(b, isa.ECX, 2)
	// Stage the scale where x87 can load it.
	b.I(isa.MOV, asm.R(isa.EAX), emit.Arg(3))
	b.I(isa.MOV, asm.Sym(isa.SizeD, "cvt.stage", 0), asm.R(isa.EAX))
	b.I(isa.FLD, asm.R(isa.FP7), asm.Sym(isa.SizeD, "cvt.stage", 0))
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label(name + ".loop")
	b.I(isa.FLD, asm.R(isa.FP0), asm.MemIdx(isa.SizeD, isa.ESI, isa.EAX, 4, 0))
	b.I(isa.FMUL, asm.R(isa.FP0), asm.R(isa.FP7))
	b.I(isa.FIST, asm.MemIdx(isa.SizeW, isa.EDI, isa.EAX, 2, 0), asm.R(isa.FP0))
	b.I(isa.INC, asm.R(isa.EAX))
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.ECX))
	b.J(isa.JL, name+".loop")
	b.Ret()
}

// EmitFftHybrid emits nsFft(re16, im16, n, reF, imF, costab, sintab,
// brtab, brcount, scaleBits, stage): the Signal Processing Library 4.0
// strategy the paper discovered — convert the Q15 samples to float32, run
// the newest register-scheduled float butterfly core (it calls
// "fftCoreFast", which the program must emit via
// fplib.EmitFftCore(b, "fftCoreFast", fplib.PresetFast())), and convert
// back with 1/N scaling. Only the
// conversions use MMX, which is why fft.mmx shows under 5% MMX
// instructions in Table 2.
func EmitFftHybrid(b *asm.Builder) {
	const name = "nsFft"
	b.Proc(name)
	// Forward conversions (MMX widen + x87; one emms inside each call).
	b.I(isa.MOV, asm.R(isa.EAX), emit.Arg(3))
	b.I(isa.MOV, asm.R(isa.EBX), emit.Arg(0))
	b.I(isa.MOV, asm.R(isa.ECX), emit.Arg(2))
	b.I(isa.MOV, asm.R(isa.EDX), emit.Arg(10))
	emit.Call(b, "nsCvtI16F32", asm.R(isa.EAX), asm.R(isa.EBX), asm.R(isa.ECX), asm.R(isa.EDX))
	b.I(isa.MOV, asm.R(isa.EAX), emit.Arg(4))
	b.I(isa.MOV, asm.R(isa.EBX), emit.Arg(1))
	b.I(isa.MOV, asm.R(isa.ECX), emit.Arg(2))
	b.I(isa.MOV, asm.R(isa.EDX), emit.Arg(10))
	emit.Call(b, "nsCvtI16F32", asm.R(isa.EAX), asm.R(isa.EBX), asm.R(isa.ECX), asm.R(isa.EDX))

	// Float FFT core (shared with the FP library):
	// fftCoreFast(reF, imF, n, costab, sintab, brtab, brcount).
	// After k pushes, incoming Arg(i) sits at [esp + 4 + 4k + 4i].
	pushArg := func(i, pushed int) {
		b.I(isa.MOV, asm.R(isa.EAX), asm.MemD(isa.ESP, int32(4+4*pushed+4*i)))
		b.I(isa.PUSH, asm.R(isa.EAX))
	}
	pushArg(8, 0) // brcount
	pushArg(7, 1) // brtab
	pushArg(6, 2) // sintab
	pushArg(5, 3) // costab
	pushArg(2, 4) // n
	pushArg(4, 5) // imF
	pushArg(3, 6) // reF
	b.Call("fftCoreFast")
	b.I(isa.ADD, asm.R(isa.ESP), asm.Imm(28))

	// Back conversions with scaling (pure x87).
	b.I(isa.MOV, asm.R(isa.EAX), emit.Arg(0))
	b.I(isa.MOV, asm.R(isa.EBX), emit.Arg(3))
	b.I(isa.MOV, asm.R(isa.ECX), emit.Arg(2))
	b.I(isa.MOV, asm.R(isa.EDX), emit.Arg(9))
	emit.Call(b, "nsCvtF32I16", asm.R(isa.EAX), asm.R(isa.EBX), asm.R(isa.ECX), asm.R(isa.EDX))
	b.I(isa.MOV, asm.R(isa.EAX), emit.Arg(1))
	b.I(isa.MOV, asm.R(isa.EBX), emit.Arg(4))
	b.I(isa.MOV, asm.R(isa.ECX), emit.Arg(2))
	b.I(isa.MOV, asm.R(isa.EDX), emit.Arg(9))
	emit.Call(b, "nsCvtF32I16", asm.R(isa.EAX), asm.R(isa.EBX), asm.R(isa.ECX), asm.R(isa.EDX))
	b.Ret()
}

// FFTQuadTwiddles packs the Q15 twiddles of an n-point FFT as
// (wr, -wi, wi, wr) quads for the fixed-point FFT's single-pmaddwd complex
// multiply.
func FFTQuadTwiddles(n int) []int16 {
	tw := dsp.TwiddlesQ15(n)
	out := make([]int16, 4*n/2)
	for k := 0; k < n/2; k++ {
		wr, wi := tw.Cos[k], tw.Sin[k]
		out[4*k] = wr
		out[4*k+1] = -wi
		out[4*k+2] = wi
		out[4*k+3] = wr
	}
	return out
}

// EmitFftQ15Fixed emits nsFftFixed(data, n, twquads, brtab, brcount): the
// early all-integer MMX FFT (the paper's first library version: ~40% MMX
// instructions but only 1.49x speedup). data is interleaved complex int16
// (re0, im0, re1, im1, ...); twquads is the FFTQuadTwiddles table; the
// bit-reverse table holds element-pair indices as for fpFft. Semantics
// match dsp.FFTQ15 exactly (block scaling by 1/2 per stage).
func EmitFftQ15Fixed(b *asm.Builder) {
	const name = "nsFftFixed"
	b.Proc(name)

	// Bit-reverse permutation on interleaved 32-bit (re, im) pairs.
	emit.LoadArg(b, isa.ESI, 3)
	emit.LoadArg(b, isa.ECX, 4)
	b.I(isa.TEST, asm.R(isa.ECX), asm.R(isa.ECX))
	b.J(isa.JE, name+".stages")
	emit.LoadArg(b, isa.EBX, 0)
	b.Label(name + ".br")
	b.I(isa.MOV, asm.R(isa.EAX), asm.MemD(isa.ESI, 0))
	b.I(isa.MOV, asm.R(isa.EDX), asm.MemD(isa.ESI, 4))
	b.I(isa.MOV, asm.R(isa.EBP), asm.MemIdx(isa.SizeD, isa.EBX, isa.EAX, 4, 0))
	b.I(isa.PUSH, asm.R(isa.EBP))
	b.I(isa.MOV, asm.R(isa.EBP), asm.MemIdx(isa.SizeD, isa.EBX, isa.EDX, 4, 0))
	b.I(isa.MOV, asm.MemIdx(isa.SizeD, isa.EBX, isa.EAX, 4, 0), asm.R(isa.EBP))
	b.I(isa.POP, asm.R(isa.EBP))
	b.I(isa.MOV, asm.MemIdx(isa.SizeD, isa.EBX, isa.EDX, 4, 0), asm.R(isa.EBP))
	b.I(isa.ADD, asm.R(isa.ESI), asm.Imm(8))
	b.I(isa.DEC, asm.R(isa.ECX))
	b.J(isa.JNE, name+".br")

	b.Label(name + ".stages")
	emit.LoadArg(b, isa.EBX, 0)              // data
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(2)) // size

	b.Label(name + ".stage")
	b.I(isa.MOV, asm.R(isa.ESI), asm.Imm(0)) // start
	b.Label(name + ".group")
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0)) // k
	b.Label(name + ".bfly")

	// Twiddle quad index: (k * n / size) * 8 bytes.
	b.I(isa.MOV, asm.R(isa.EAX), emit.Arg(1))
	b.I(isa.CDQ)
	b.I(isa.IDIV, asm.R(isa.EBP))
	b.I(isa.IMUL, asm.R(isa.EAX), asm.R(isa.ECX))
	b.I(isa.MOV, asm.R(isa.EDX), asm.R(isa.EAX))

	// i = start + k, j = i + size/2 (complex indices; 4 bytes each).
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.ESI))
	b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.ECX))
	b.I(isa.PUSH, asm.R(isa.ECX))
	b.I(isa.MOV, asm.R(isa.ECX), asm.R(isa.EBP))
	b.I(isa.SHR, asm.R(isa.ECX), asm.Imm(1))
	b.I(isa.ADD, asm.R(isa.ECX), asm.R(isa.EAX)) // j

	b.I(isa.PUSH, asm.R(isa.EBP))
	// ebp := twiddle quad pointer = arg2(+8 for 2 pushes) + edx*8
	b.I(isa.MOV, asm.R(isa.EBP), asm.MemD(isa.ESP, 12+4*2))

	// t = W * x[j] via one pmaddwd: mm0 = (re_j, im_j, re_j, im_j).
	b.I(isa.MOVD, asm.R(isa.MM0), asm.MemIdx(isa.SizeD, isa.EBX, isa.ECX, 4, 0))
	b.I(isa.PUNPCKLDQ, asm.R(isa.MM0), asm.R(isa.MM0))
	b.I(isa.PMADDWD, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.EBP, isa.EDX, 8, 0))
	// Round and shift: (.. + 2^14) >> 15 in both dword lanes.
	b.I(isa.MOVQ, asm.R(isa.MM7), asm.Sym(isa.SizeQ, "fftfix.round", 0))
	b.I(isa.PADDD, asm.R(isa.MM0), asm.R(isa.MM7))
	b.I(isa.PSRAD, asm.R(isa.MM0), asm.Imm(15)) // (tr, ti) dwords

	// Load x[i] as sign-extended dwords: mm1 = (re_i, im_i).
	b.I(isa.MOVD, asm.R(isa.MM1), asm.MemIdx(isa.SizeD, isa.EBX, isa.EAX, 4, 0))
	b.I(isa.PXOR, asm.R(isa.MM2), asm.R(isa.MM2))
	b.I(isa.PCMPGTW, asm.R(isa.MM2), asm.R(isa.MM1))
	b.I(isa.PUNPCKLWD, asm.R(isa.MM1), asm.R(isa.MM2))

	// x[i] = (x[i] + t) >> 1 ; x[j] = (x[i] - t) >> 1 (dword math).
	b.I(isa.MOVQ, asm.R(isa.MM3), asm.R(isa.MM1))
	b.I(isa.PADDD, asm.R(isa.MM1), asm.R(isa.MM0))
	b.I(isa.PSUBD, asm.R(isa.MM3), asm.R(isa.MM0))
	b.I(isa.PSRAD, asm.R(isa.MM1), asm.Imm(1))
	b.I(isa.PSRAD, asm.R(isa.MM3), asm.Imm(1))
	b.I(isa.PACKSSDW, asm.R(isa.MM1), asm.R(isa.MM1))
	b.I(isa.PACKSSDW, asm.R(isa.MM3), asm.R(isa.MM3))
	b.I(isa.MOVD, asm.MemIdx(isa.SizeD, isa.EBX, isa.EAX, 4, 0), asm.R(isa.MM1))
	b.I(isa.MOVD, asm.MemIdx(isa.SizeD, isa.EBX, isa.ECX, 4, 0), asm.R(isa.MM3))

	b.I(isa.POP, asm.R(isa.EBP))
	b.I(isa.POP, asm.R(isa.ECX))

	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.MOV, asm.R(isa.EDX), asm.R(isa.EBP))
	b.I(isa.SHR, asm.R(isa.EDX), asm.Imm(1))
	b.I(isa.CMP, asm.R(isa.ECX), asm.R(isa.EDX))
	b.J(isa.JL, name+".bfly")

	b.I(isa.ADD, asm.R(isa.ESI), asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.ESI), emit.Arg(1))
	b.J(isa.JL, name+".group")

	b.I(isa.SHL, asm.R(isa.EBP), asm.Imm(1))
	b.I(isa.CMP, asm.R(isa.EBP), emit.Arg(1))
	b.J(isa.JLE, name+".stage")
	b.Ret()
}

// FftFixedData places the constant data nsFftFixed needs into a builder.
func FftFixedData(b *asm.Builder) {
	b.Dwords("fftfix.round", []int32{1 << 14, 1 << 14})
}

// CvtScratch places the staging scratch nsCvtI16F32/nsCvtF32I16 need.
func CvtScratch(b *asm.Builder) {
	b.Words("cvt.stage", make([]int16, 8))
}
