package mmxlib

import (
	"math"
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/dsp"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/imgproc"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/synth"
)

func TestNsImgScale8(t *testing.T) {
	const n = 96
	src := synth.ImageRGB(8, 4, 5) // 96 bytes
	b := asm.NewBuilder("t")
	EmitImgScale8(b)
	b.Bytes("src", src)
	b.Reserve("dst", n)
	b.Entry()
	b.Proc("main")
	// scaleQ8 = 192 -> multiply by 3/4.
	emit.Call(b, "nsImgScale8", asm.ImmSym("dst", 0), asm.ImmSym("src", 0),
		asm.Imm(n), asm.Imm(192))
	b.I(isa.EMMS)
	b.I(isa.HALT)
	c := runProgram(t, b)
	got, _ := c.Mem.ReadBytes(c.Prog.Addr("dst"), n)
	want := make([]uint8, n)
	dsp.ScaleBytes(want, src, 3, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d: vm %d, ref %d (src %d)", i, got[i], want[i], src[i])
		}
	}
}

func TestNsImgAdd8(t *testing.T) {
	const n = 120 // multiple of 24
	src := synth.ImageRGB(10, 4, 6)
	addM, subM := ColorMasks(40, 0, -55)
	b := asm.NewBuilder("t")
	EmitImgAdd8(b)
	b.Bytes("src", src)
	b.Bytes("addm", addM)
	b.Bytes("subm", subM)
	b.Reserve("dst", n)
	b.Entry()
	b.Proc("main")
	emit.Call(b, "nsImgAdd8", asm.ImmSym("dst", 0), asm.ImmSym("src", 0),
		asm.Imm(n), asm.ImmSym("addm", 0), asm.ImmSym("subm", 0))
	b.I(isa.EMMS)
	b.I(isa.HALT)
	c := runProgram(t, b)
	got, _ := c.Mem.ReadBytes(c.Prog.Addr("dst"), n)
	want := make([]uint8, n)
	imgproc.SwitchColors(want, src, imgproc.SwitchParams{DR: 40, DG: 0, DB: -55})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d: vm %d, ref %d", i, got[i], want[i])
		}
	}
}

func TestNsDct8(t *testing.T) {
	in := []int16{-128, 100, -50, 127, 0, 30, -90, 5}
	b := asm.NewBuilder("t")
	EmitDct8(b)
	b.Words("in", in)
	b.Words("basis", DCTBasisQuads())
	b.Reserve("out", 16)
	b.Entry()
	b.Proc("main")
	emit.Call(b, "nsDct8", asm.ImmSym("in", 0), asm.ImmSym("out", 0), asm.ImmSym("basis", 0))
	b.I(isa.EMMS)
	b.I(isa.HALT)
	c := runProgram(t, b)
	got, _ := c.Mem.ReadInt16s(c.Prog.Addr("out"), 8)
	want := make([]int16, 8)
	dsp.DCT1D8Q15(want, in)
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("bin %d: vm %d, ref %d", k, got[k], want[k])
		}
	}
}

func TestNsColorConv(t *testing.T) {
	const npix = 16
	rgb := synth.ImageRGB(4, 4, 9)
	// One stray byte is read past the last pixel; pad the buffer.
	rgbPad := append(append([]byte{}, rgb...), 0)
	b := asm.NewBuilder("t")
	EmitColorConv(b)
	b.Bytes("rgb", rgbPad)
	b.Words("coef", ColorConvCoefs())
	b.Reserve("y", 2*npix)
	b.Reserve("cb", 2*npix)
	b.Reserve("cr", 2*npix)
	b.Entry()
	b.Proc("main")
	emit.Call(b, "nsColorConv", asm.ImmSym("rgb", 0), asm.Imm(npix),
		asm.ImmSym("y", 0), asm.ImmSym("cb", 0), asm.ImmSym("cr", 0),
		asm.ImmSym("coef", 0))
	b.I(isa.EMMS)
	b.I(isa.HALT)
	c := runProgram(t, b)
	y, _ := c.Mem.ReadInt16s(c.Prog.Addr("y"), npix)
	cb, _ := c.Mem.ReadInt16s(c.Prog.Addr("cb"), npix)
	cr, _ := c.Mem.ReadInt16s(c.Prog.Addr("cr"), npix)
	co := ColorConvCoefs()
	for i := 0; i < npix; i++ {
		r, g, bb := int32(rgb[3*i]), int32(rgb[3*i+1]), int32(rgb[3*i+2])
		wy := int16((r*int32(co[0])+g*int32(co[1])+bb*int32(co[2]))>>15 - 128)
		wcb := int16((r*int32(co[4]) + g*int32(co[5]) + bb*int32(co[6])) >> 15)
		wcr := int16((r*int32(co[8]) + g*int32(co[9]) + bb*int32(co[10])) >> 15)
		if y[i] != wy || cb[i] != wcb || cr[i] != wcr {
			t.Fatalf("pixel %d: vm (%d,%d,%d), ref (%d,%d,%d)",
				i, y[i], cb[i], cr[i], wy, wcb, wcr)
		}
	}
}

func TestNsQuantRecip(t *testing.T) {
	var q [64]int
	for i := range q {
		q[i] = 1 + (i*7)%120
	}
	recips := QuantRecips(&q)
	biases := QuantBiases(&q)
	in := make([]int16, 64)
	r := synth.NewRand(33)
	for i := range in {
		in[i] = int16(r.Intn(4096) - 2048) // DCT-range coefficients
	}
	b := asm.NewBuilder("t")
	EmitQuantRecip(b)
	b.Words("in", in)
	b.Words("recip", recips[:])
	b.Words("bias", biases[:])
	b.Reserve("out", 128)
	b.Entry()
	b.Proc("main")
	emit.Call(b, "nsQuant", asm.ImmSym("in", 0), asm.ImmSym("recip", 0),
		asm.ImmSym("out", 0), asm.Imm(64), asm.ImmSym("bias", 0))
	b.I(isa.EMMS)
	b.I(isa.HALT)
	c := runProgram(t, b)
	got, _ := c.Mem.ReadInt16s(c.Prog.Addr("out"), 64)
	for i := range got {
		want := QuantRecipModel(int32(in[i]), recips[i], biases[i])
		if got[i] != want {
			t.Fatalf("coef %d: vm %d, model %d", i, got[i], want)
		}
		// The biased reciprocal quantizer must track rounded division.
		trueQ := math.Round(float64(in[i]) / float64(q[i]))
		if d := float64(want) - trueQ; d > 1.01 || d < -1.01 {
			t.Fatalf("coef %d: recip quant %d vs rounded true %.0f", i, want, trueQ)
		}
	}
}
