package mmxlib

import (
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/dsp"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/synth"
)

// reference2D applies two Q13 passes (rows then columns) exactly like the
// 16-call nsDct8 path.
func reference2D(in []int16) []int16 {
	var tmp [64]int16
	var vin, vout [8]int16
	for r := 0; r < 8; r++ {
		copy(vin[:], in[8*r:8*r+8])
		dsp.DCT1D8Q15(vout[:], vin[:])
		copy(tmp[8*r:8*r+8], vout[:])
	}
	out := make([]int16, 64)
	for c := 0; c < 8; c++ {
		for n := 0; n < 8; n++ {
			vin[n] = tmp[8*n+c]
		}
		dsp.DCT1D8Q15(vout[:], vin[:])
		for n := 0; n < 8; n++ {
			out[8*n+c] = vout[n]
		}
	}
	return out
}

func TestNsDct2DMatchesSixteenCallPath(t *testing.T) {
	r := synth.NewRand(0xD2D)
	in := make([]int16, 64)
	for i := range in {
		in[i] = int16(r.Intn(256) - 128) // level-shifted pixel range
	}
	b := asm.NewBuilder("t")
	EmitDct2D(b)
	Dct2DScratch(b)
	b.Words("in", in)
	b.Words("basis", DCTBasisQuads())
	b.Words("tmp", make([]int16, 64))
	b.Reserve("out", 128)
	b.Entry()
	b.Proc("main")
	emit.Call(b, "nsDct2D", asm.ImmSym("in", 0), asm.ImmSym("out", 0),
		asm.ImmSym("basis", 0), asm.ImmSym("tmp", 0))
	b.I(isa.EMMS)
	b.I(isa.HALT)
	c := runProgram(t, b)
	got, _ := c.Mem.ReadInt16s(c.Prog.Addr("out"), 64)
	want := reference2D(in)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coef %d: vm %d, ref %d", i, got[i], want[i])
		}
	}
}

func TestNsDct2DConstantBlock(t *testing.T) {
	in := make([]int16, 64)
	for i := range in {
		in[i] = 100
	}
	b := asm.NewBuilder("t")
	EmitDct2D(b)
	Dct2DScratch(b)
	b.Words("in", in)
	b.Words("basis", DCTBasisQuads())
	b.Words("tmp", make([]int16, 64))
	b.Reserve("out", 128)
	b.Entry()
	b.Proc("main")
	emit.Call(b, "nsDct2D", asm.ImmSym("in", 0), asm.ImmSym("out", 0),
		asm.ImmSym("basis", 0), asm.ImmSym("tmp", 0))
	b.I(isa.EMMS)
	b.I(isa.HALT)
	c := runProgram(t, b)
	got, _ := c.Mem.ReadInt16s(c.Prog.Addr("out"), 64)
	// 2-D orthonormal DC of a flat block of 100 is 800; AC terms ~0.
	if got[0] < 790 || got[0] > 810 {
		t.Errorf("DC = %d, want ~800", got[0])
	}
	for i := 1; i < 64; i++ {
		if got[i] > 2 || got[i] < -2 {
			t.Errorf("AC[%d] = %d, want ~0", i, got[i])
		}
	}
}
