package mmxlib

import (
	"mmxdsp/internal/asm"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/isa"
)

// EmitFirQ15 emits nsFir(hist, coef, n, x) -> eax: a Q15 FIR that consumes
// one sample per call. n must be a multiple of 4 (coefficients padded with
// zeros); hist[0] is the newest sample. The history shift and the
// multiply-accumulate both run 4 taps per step; because the data is
// word-aligned 16-bit there is no pack/unpack at all — the property the
// paper highlights for fir.mmx.
func EmitFirQ15(b *asm.Builder) {
	const name = "nsFir"
	b.Proc(name)
	emit.LoadArg(b, isa.ESI, 0) // hist
	emit.LoadArg(b, isa.EDI, 1) // coef
	emit.LoadArg(b, isa.EDX, 2) // n
	// Argument validation, as a robust general-purpose library must:
	// non-null pointers, length at least one quad and a multiple of 4.
	// (The paper: "potential overhead and other efficiency issues ...
	// arise when using flexible, robust library functions".)
	b.I(isa.TEST, asm.R(isa.ESI), asm.R(isa.ESI))
	b.J(isa.JE, name+".bail")
	b.I(isa.TEST, asm.R(isa.EDI), asm.R(isa.EDI))
	b.J(isa.JE, name+".bail")
	b.I(isa.CMP, asm.R(isa.EDX), asm.Imm(4))
	b.J(isa.JL, name+".bail")
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EDX))
	b.I(isa.AND, asm.R(isa.EAX), asm.Imm(3))
	b.J(isa.JNE, name+".bail")
	b.J(isa.JMP, name+".body")
	b.Label(name + ".bail")
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Ret()
	b.Label(name + ".body")

	// Shift history up one word, a quad at a time from the top:
	// words [k..k+3] <- words [k-1..k+2] for k = n-4, n-8, ..., 4.
	b.I(isa.MOV, asm.R(isa.ECX), asm.R(isa.EDX))
	b.I(isa.SUB, asm.R(isa.ECX), asm.Imm(4))
	b.Label(name + ".shift")
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(4))
	b.J(isa.JL, name+".head")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.ESI, isa.ECX, 2, -2))
	b.I(isa.MOVQ, asm.MemIdx(isa.SizeQ, isa.ESI, isa.ECX, 2, 0), asm.R(isa.MM0))
	b.I(isa.SUB, asm.R(isa.ECX), asm.Imm(4))
	b.J(isa.JMP, name+".shift")

	// Head quad: words 1..3 <- old 0..2, word 0 <- new sample.
	b.Label(name + ".head")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemQ(isa.ESI, 0))
	b.I(isa.PSLLQ, asm.R(isa.MM0), asm.Imm(16))
	b.I(isa.MOV, asm.R(isa.EAX), emit.Arg(3))
	b.I(isa.AND, asm.R(isa.EAX), asm.Imm(0xFFFF)) // keep lane 1 clean
	b.I(isa.MOVD, asm.R(isa.MM1), asm.R(isa.EAX))
	b.I(isa.POR, asm.R(isa.MM0), asm.R(isa.MM1))
	b.I(isa.MOVQ, asm.MemQ(isa.ESI, 0), asm.R(isa.MM0))

	// MAC: acc (two dword lanes in mm6) = sum hist[q] * coef[q].
	b.I(isa.PXOR, asm.R(isa.MM6), asm.R(isa.MM6))
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label(name + ".mac")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.ESI, isa.EAX, 2, 0))
	b.I(isa.PMADDWD, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.EDI, isa.EAX, 2, 0))
	b.I(isa.PADDD, asm.R(isa.MM6), asm.R(isa.MM0))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(4))
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.EDX))
	b.J(isa.JL, name+".mac")
	emit.HSumD(b, isa.MM6, isa.MM5)
	b.I(isa.MOVD, asm.R(isa.EAX), asm.R(isa.MM6))

	// Narrow Q30 -> Q15 with rounding and saturation (NarrowQ30).
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(1<<14))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(15))
	clampAX(b, name)
	b.Ret()
}

// clampAX clamps eax to int16 range in place.
func clampAX(b *asm.Builder, prefix string) {
	b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(32767))
	b.J(isa.JLE, prefix+".nohi")
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(32767))
	b.Label(prefix + ".nohi")
	b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(-32768))
	b.J(isa.JGE, prefix+".nolo")
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(-32768))
	b.Label(prefix + ".nolo")
}

// IIR state-block layout for EmitIirBlockQ15 (all offsets in bytes).
// Word counts are padded to multiples of 4; pad coefficients with zeros.
const (
	IirOffNB    = 0  // dword: numerator words (padded, e.g. 12 for 9 taps)
	IirOffNA    = 4  // dword: denominator words (padded, e.g. 8)
	IirOffFrac  = 8  // dword: coefficient fraction bits
	IirOffRound = 12 // dword: rounding constant 1 << (frac-1)
	IirOffB     = 16 // int16[nb]
)

// IirStateWords returns the total int16 count of a state block with the
// given padded coefficient counts (header excluded).
func IirStateWords(nb, na int) int { return 2*nb + 2*na }

// EmitIirBlockQ15 emits nsIir(state, in, out, blockLen): direct-form I IIR
// on Q15 samples with block-scaled fixed-point coefficients (see
// dsp.IIRQ15), processing blockLen samples per call — the paper's iir
// benchmark calls it with blocks of 8. The layout after IirOffB is
// a[na], xh[nb], yh[na], all contiguous. Pointers are hoisted out of the
// per-sample loop, so the loop body is dominated by MMX work (Table 2:
// iir.mmx is 71% MMX instructions).
func EmitIirBlockQ15(b *asm.Builder) {
	const name = "nsIir"
	b.Proc(name)
	emit.LoadArg(b, isa.EBP, 0) // state
	// Hoisted pointers: esi = b, edi = a, ebx = xh, edx = yh.
	b.I(isa.MOV, asm.R(isa.ESI), asm.R(isa.EBP))
	b.I(isa.ADD, asm.R(isa.ESI), asm.Imm(IirOffB))
	b.I(isa.MOV, asm.R(isa.EAX), asm.MemD(isa.EBP, IirOffNB))
	b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.EAX)) // 2*nb bytes
	b.I(isa.MOV, asm.R(isa.EDI), asm.R(isa.ESI))
	b.I(isa.ADD, asm.R(isa.EDI), asm.R(isa.EAX)) // a = b + 2*nb
	b.I(isa.MOV, asm.R(isa.ECX), asm.MemD(isa.EBP, IirOffNA))
	b.I(isa.ADD, asm.R(isa.ECX), asm.R(isa.ECX))
	b.I(isa.MOV, asm.R(isa.EBX), asm.R(isa.EDI))
	b.I(isa.ADD, asm.R(isa.EBX), asm.R(isa.ECX)) // xh = a + 2*na
	b.I(isa.MOV, asm.R(isa.EDX), asm.R(isa.EBX))
	b.I(isa.ADD, asm.R(isa.EDX), asm.R(isa.EAX)) // yh = xh + 2*nb

	b.Label(name + ".sample")
	// Shift xh up one word (quads from the top), insert *in.
	b.I(isa.MOV, asm.R(isa.ECX), asm.MemD(isa.EBP, IirOffNB))
	b.I(isa.SUB, asm.R(isa.ECX), asm.Imm(4))
	b.Label(name + ".xshift")
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(4))
	b.J(isa.JL, name+".xhead")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.EBX, isa.ECX, 2, -2))
	b.I(isa.MOVQ, asm.MemIdx(isa.SizeQ, isa.EBX, isa.ECX, 2, 0), asm.R(isa.MM0))
	b.I(isa.SUB, asm.R(isa.ECX), asm.Imm(4))
	b.J(isa.JMP, name+".xshift")
	b.Label(name + ".xhead")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemQ(isa.EBX, 0))
	b.I(isa.PSLLQ, asm.R(isa.MM0), asm.Imm(16))
	b.I(isa.MOV, asm.R(isa.EAX), emit.Arg(1)) // in pointer
	b.I(isa.MOVZXW, asm.R(isa.EAX), asm.MemW(isa.EAX, 0))
	b.I(isa.MOVD, asm.R(isa.MM1), asm.R(isa.EAX))
	b.I(isa.POR, asm.R(isa.MM0), asm.R(isa.MM1))
	b.I(isa.MOVQ, asm.MemQ(isa.EBX, 0), asm.R(isa.MM0))

	// accB = sum b*xh (mm6), accA = sum a*yh (mm7).
	b.I(isa.PXOR, asm.R(isa.MM6), asm.R(isa.MM6))
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label(name + ".bmac")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.EBX, isa.EAX, 2, 0))
	b.I(isa.PMADDWD, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.ESI, isa.EAX, 2, 0))
	b.I(isa.PADDD, asm.R(isa.MM6), asm.R(isa.MM0))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(4))
	b.I(isa.CMP, asm.R(isa.EAX), asm.MemD(isa.EBP, IirOffNB))
	b.J(isa.JL, name+".bmac")

	b.I(isa.PXOR, asm.R(isa.MM7), asm.R(isa.MM7))
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label(name + ".amac")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.EDX, isa.EAX, 2, 0))
	b.I(isa.PMADDWD, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.EDI, isa.EAX, 2, 0))
	b.I(isa.PADDD, asm.R(isa.MM7), asm.R(isa.MM0))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(4))
	b.I(isa.CMP, asm.R(isa.EAX), asm.MemD(isa.EBP, IirOffNA))
	b.J(isa.JL, name+".amac")

	// y = clamp((accB - accA + round) >> frac)
	emit.HSumD(b, isa.MM6, isa.MM5)
	emit.HSumD(b, isa.MM7, isa.MM5)
	b.I(isa.PSUBD, asm.R(isa.MM6), asm.R(isa.MM7))
	b.I(isa.MOVD, asm.R(isa.EAX), asm.R(isa.MM6))
	b.I(isa.ADD, asm.R(isa.EAX), asm.MemD(isa.EBP, IirOffRound))
	b.I(isa.MOV, asm.R(isa.ECX), asm.MemD(isa.EBP, IirOffFrac))
	b.I(isa.SAR, asm.R(isa.EAX), asm.R(isa.ECX))
	clampAX(b, name)

	// Shift yh up one word and insert y.
	b.I(isa.MOV, asm.R(isa.ECX), asm.MemD(isa.EBP, IirOffNA))
	b.I(isa.SUB, asm.R(isa.ECX), asm.Imm(4))
	b.Label(name + ".yshift")
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(4))
	b.J(isa.JL, name+".yhead")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.EDX, isa.ECX, 2, -2))
	b.I(isa.MOVQ, asm.MemIdx(isa.SizeQ, isa.EDX, isa.ECX, 2, 0), asm.R(isa.MM0))
	b.I(isa.SUB, asm.R(isa.ECX), asm.Imm(4))
	b.J(isa.JMP, name+".yshift")
	b.Label(name + ".yhead")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemQ(isa.EDX, 0))
	b.I(isa.PSLLQ, asm.R(isa.MM0), asm.Imm(16))
	b.I(isa.MOV, asm.R(isa.ECX), asm.R(isa.EAX))
	b.I(isa.AND, asm.R(isa.ECX), asm.Imm(0xFFFF))
	b.I(isa.MOVD, asm.R(isa.MM1), asm.R(isa.ECX))
	b.I(isa.POR, asm.R(isa.MM0), asm.R(isa.MM1))
	b.I(isa.MOVQ, asm.MemQ(isa.EDX, 0), asm.R(isa.MM0))

	// *out = y; advance in/out; next sample.
	b.I(isa.MOV, asm.R(isa.ECX), emit.Arg(2))
	b.I(isa.MOV, asm.MemW(isa.ECX, 0), asm.R(isa.EAX))
	b.I(isa.ADD, emit.Arg(1), asm.Imm(2))
	b.I(isa.ADD, emit.Arg(2), asm.Imm(2))
	b.I(isa.MOV, asm.R(isa.EAX), emit.Arg(3))
	b.I(isa.DEC, asm.R(isa.EAX))
	b.I(isa.MOV, emit.Arg(3), asm.R(isa.EAX))
	b.J(isa.JNE, name+".sample")
	b.Ret()
}
