package mmxlib

import (
	"math"
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/dsp"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/fixed"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/synth"
)

// lmsModel mirrors nsLms exactly: rounded-narrow convolution, truncated
// step and update products, saturating weight add.
type lmsModel struct {
	w, hist []int16
	mu      int16
}

func (f *lmsModel) step(x, d int16) int16 {
	copy(f.hist[1:], f.hist)
	f.hist[0] = x
	var acc int64
	for k := range f.w {
		acc += int64(f.w[k]) * int64(f.hist[k])
	}
	y := fixed.NarrowQ30(acc)
	e := fixed.SatW(int32(d) - int32(y))
	step := fixed.MulQ15Trunc(f.mu, e)
	for k := range f.w {
		f.w[k] = fixed.SatW(int32(f.w[k]) + int32(fixed.MulQ15Trunc(step, f.hist[k])))
	}
	return y
}

func TestNsLmsMatchesModelAndConverges(t *testing.T) {
	const taps = 8
	const samples = 2000
	mu := fixed.ToQ15(0.25)

	// Desired response comes from a fixed plant.
	plant := fixed.VecToQ15([]float64{0.4, -0.2, 0.1, 0.05, 0, 0, 0, 0})
	ref := dsp.NewFIRQ15(plant)
	r := synth.NewRand(0x1A5)
	input := make([]int16, samples)
	desired := make([]int16, samples)
	for i := range input {
		input[i] = int16(r.Intn(16384) - 8192)
		desired[i] = ref.Process(input[i])
	}

	b := asm.NewBuilder("t")
	EmitLmsQ15(b)
	b.Dwords("state", []int32{taps, int32(mu), 0, 0})
	b.Words("state.w", make([]int16, taps))
	b.Words("state.h", make([]int16, taps))
	b.Words("in", input)
	b.Words("des", desired)
	b.Reserve("out", 2*samples)
	b.Entry()
	b.Proc("main")
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(0))
	b.Label("s")
	b.I(isa.MOVSXW, asm.R(isa.EAX), asm.SymIdx(isa.SizeW, "in", isa.EBP, 2, 0))
	b.I(isa.MOVSXW, asm.R(isa.EBX), asm.SymIdx(isa.SizeW, "des", isa.EBP, 2, 0))
	b.I(isa.PUSH, asm.R(isa.EBP))
	emit.Call(b, "nsLms", asm.ImmSym("state", 0), asm.R(isa.EAX), asm.R(isa.EBX))
	b.I(isa.POP, asm.R(isa.EBP))
	b.I(isa.MOV, asm.SymIdx(isa.SizeW, "out", isa.EBP, 2, 0), asm.R(isa.EAX))
	b.I(isa.INC, asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.EBP), asm.Imm(samples))
	b.J(isa.JL, "s")
	b.I(isa.EMMS)
	b.I(isa.HALT)

	c := runProgram(t, b)
	got, _ := c.Mem.ReadInt16s(c.Prog.Addr("out"), samples)

	// Bit-exact against the mirror model.
	m := &lmsModel{w: make([]int16, taps), hist: make([]int16, taps), mu: mu}
	for i := range input {
		want := m.step(input[i], desired[i])
		if got[i] != want {
			t.Fatalf("sample %d: vm %d, model %d", i, got[i], want)
		}
	}

	// Convergence: final weights near the plant, tail error small.
	w, _ := c.Mem.ReadInt16s(c.Prog.Addr("state.w"), taps)
	for k := 0; k < 4; k++ {
		if d := math.Abs(float64(w[k] - plant[k])); d > 2000 {
			t.Errorf("w[%d] = %d, want ~%d", k, w[k], plant[k])
		}
	}
	var tail float64
	for i := samples - 200; i < samples; i++ {
		e := float64(desired[i]) - float64(got[i])
		tail += e * e
	}
	rms := math.Sqrt(tail/200) / 32768
	if rms > 0.02 {
		t.Errorf("tail RMS error = %g, want < 0.02 (converged)", rms)
	}
}
