package mmxlib

import (
	"mmxdsp/internal/asm"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/isa"
)

// LMS state-block layout for EmitLmsQ15 (byte offsets).
const (
	LmsOffN  = 0  // dword: tap count, multiple of 4 (zero-padded)
	LmsOffMu = 4  // dword: Q15 step size in the low 16 bits
	LmsOffW  = 16 // int16[n] weights, then int16[n] history
)

// EmitLmsQ15 emits nsLms(state, x, d) -> eax = y: one step of a Q15
// least-mean-squares adaptive filter, hand-coded in MMX. The paper notes
// the Intel library had no LMS ("Not all DSP algorithms have corresponding
// MMX functions (e.g. the LMS algorithm)") and that the best results come
// from "hand-coding some functions not available in the Intel assembly
// libraries" — this routine is that future-work item.
//
// Semantics (mirrored by the test model): convolution accumulates exactly
// via pmaddwd and narrows once with rounding; e = sat(d - y);
// step = (mu*e)>>15 truncated; w[k] = satadd(w[k], (step*hist[k])>>15
// truncated) via the pmulhw/pmullw recombination and paddsw.
func EmitLmsQ15(b *asm.Builder) {
	const name = "nsLms"
	b.Proc(name)
	emit.LoadArg(b, isa.EBP, 0) // state
	b.I(isa.MOV, asm.R(isa.EDX), asm.MemD(isa.EBP, LmsOffN))
	// edi = w, esi = hist = w + 2n.
	b.I(isa.MOV, asm.R(isa.EDI), asm.R(isa.EBP))
	b.I(isa.ADD, asm.R(isa.EDI), asm.Imm(LmsOffW))
	b.I(isa.MOV, asm.R(isa.ESI), asm.R(isa.EDI))
	b.I(isa.ADD, asm.R(isa.ESI), asm.R(isa.EDX))
	b.I(isa.ADD, asm.R(isa.ESI), asm.R(isa.EDX))

	// Shift history up one word and insert the new sample (as in nsFir).
	b.I(isa.MOV, asm.R(isa.ECX), asm.R(isa.EDX))
	b.I(isa.SUB, asm.R(isa.ECX), asm.Imm(4))
	b.Label(name + ".shift")
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(4))
	b.J(isa.JL, name+".head")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.ESI, isa.ECX, 2, -2))
	b.I(isa.MOVQ, asm.MemIdx(isa.SizeQ, isa.ESI, isa.ECX, 2, 0), asm.R(isa.MM0))
	b.I(isa.SUB, asm.R(isa.ECX), asm.Imm(4))
	b.J(isa.JMP, name+".shift")
	b.Label(name + ".head")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemQ(isa.ESI, 0))
	b.I(isa.PSLLQ, asm.R(isa.MM0), asm.Imm(16))
	b.I(isa.MOV, asm.R(isa.EAX), emit.Arg(1))
	b.I(isa.AND, asm.R(isa.EAX), asm.Imm(0xFFFF))
	b.I(isa.MOVD, asm.R(isa.MM1), asm.R(isa.EAX))
	b.I(isa.POR, asm.R(isa.MM0), asm.R(isa.MM1))
	b.I(isa.MOVQ, asm.MemQ(isa.ESI, 0), asm.R(isa.MM0))

	// y = NarrowQ30(sum w*hist).
	b.I(isa.PXOR, asm.R(isa.MM6), asm.R(isa.MM6))
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label(name + ".mac")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.ESI, isa.EAX, 2, 0))
	b.I(isa.PMADDWD, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.EDI, isa.EAX, 2, 0))
	b.I(isa.PADDD, asm.R(isa.MM6), asm.R(isa.MM0))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(4))
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.EDX))
	b.J(isa.JL, name+".mac")
	emit.HSumD(b, isa.MM6, isa.MM5)
	b.I(isa.MOVD, asm.R(isa.EAX), asm.R(isa.MM6))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(1<<14))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(15))
	clampAX(b, name+".y")

	// e = sat(d - y); step = (mu*e)>>15 truncated.
	b.I(isa.MOV, asm.R(isa.ECX), emit.Arg(2))
	b.I(isa.PUSH, asm.R(isa.EAX)) // save y for the return value
	b.I(isa.SUB, asm.R(isa.ECX), asm.R(isa.EAX))
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.ECX))
	clampAX(b, name+".e")
	b.I(isa.MOVSXW, asm.R(isa.ECX), asm.MemW(isa.EBP, LmsOffMu))
	b.I(isa.IMUL, asm.R(isa.EAX), asm.R(isa.ECX))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(15))
	emit.BroadcastW(b, isa.MM7, isa.EAX) // step in all four lanes

	// w[k] = satadd(w[k], trunc(step * hist[k])), four taps per iteration.
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label(name + ".update")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.ESI, isa.EAX, 2, 0))
	b.I(isa.MOVQ, asm.R(isa.MM2), asm.R(isa.MM0))
	b.I(isa.PMULHW, asm.R(isa.MM0), asm.R(isa.MM7))
	b.I(isa.PMULLW, asm.R(isa.MM2), asm.R(isa.MM7))
	b.I(isa.PSLLW, asm.R(isa.MM0), asm.Imm(1))
	b.I(isa.PSRLW, asm.R(isa.MM2), asm.Imm(15))
	b.I(isa.POR, asm.R(isa.MM0), asm.R(isa.MM2)) // trunc(step*hist)
	b.I(isa.MOVQ, asm.R(isa.MM1), asm.MemIdx(isa.SizeQ, isa.EDI, isa.EAX, 2, 0))
	b.I(isa.PADDSW, asm.R(isa.MM1), asm.R(isa.MM0))
	b.I(isa.MOVQ, asm.MemIdx(isa.SizeQ, isa.EDI, isa.EAX, 2, 0), asm.R(isa.MM1))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(4))
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.EDX))
	b.J(isa.JL, name+".update")

	b.I(isa.POP, asm.R(isa.EAX)) // y
	b.Ret()
}
