package mmxlib

import (
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/fixed"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/synth"
	"mmxdsp/internal/vm"
)

// runProgram links and executes a builder, failing the test on any fault.
func runProgram(t *testing.T, b *asm.Builder) *vm.CPU {
	t.Helper()
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	c := vm.New(p)
	if err := c.Run(1 << 24); err != nil {
		t.Fatal(err)
	}
	return c
}

func randWords(n int, seed uint64, bound int32) []int16 {
	r := synth.NewRand(seed)
	out := make([]int16, n)
	for i := range out {
		out[i] = int16(r.Intn(int(2*bound)) - int(bound))
	}
	return out
}

func TestVecAddSub16(t *testing.T) {
	const n = 64
	x := randWords(n, 1, 30000)
	y := randWords(n, 2, 30000)
	b := asm.NewBuilder("t")
	EmitVecAdd16(b)
	EmitVecSub16(b)
	b.Words("x", x)
	b.Words("y", y)
	b.Reserve("sum", 2*n)
	b.Reserve("diff", 2*n)
	b.Entry()
	b.Proc("main")
	emit.Call(b, "nsVecAdd16", asm.ImmSym("sum", 0), asm.ImmSym("x", 0), asm.ImmSym("y", 0), asm.Imm(n))
	emit.Call(b, "nsVecSub16", asm.ImmSym("diff", 0), asm.ImmSym("x", 0), asm.ImmSym("y", 0), asm.Imm(n))
	b.I(isa.EMMS)
	b.I(isa.HALT)
	c := runProgram(t, b)
	sum, _ := c.Mem.ReadInt16s(c.Prog.Addr("sum"), n)
	diff, _ := c.Mem.ReadInt16s(c.Prog.Addr("diff"), n)
	for i := 0; i < n; i++ {
		if want := fixed.SatW(int32(x[i]) + int32(y[i])); sum[i] != want {
			t.Errorf("sum[%d] = %d, want %d", i, sum[i], want)
		}
		if want := fixed.SatW(int32(x[i]) - int32(y[i])); diff[i] != want {
			t.Errorf("diff[%d] = %d, want %d", i, diff[i], want)
		}
	}
}

func TestVecMul16MatchesTruncSemantics(t *testing.T) {
	const n = 64
	x := randWords(n, 3, 32768)
	y := randWords(n, 4, 32768)
	b := asm.NewBuilder("t")
	EmitVecMul16(b)
	b.Words("x", x)
	b.Words("y", y)
	b.Reserve("out", 2*n)
	b.Entry()
	b.Proc("main")
	emit.Call(b, "nsVecMul16", asm.ImmSym("out", 0), asm.ImmSym("x", 0), asm.ImmSym("y", 0), asm.Imm(n))
	b.I(isa.EMMS)
	b.I(isa.HALT)
	c := runProgram(t, b)
	out, _ := c.Mem.ReadInt16s(c.Prog.Addr("out"), n)
	for i := 0; i < n; i++ {
		if want := fixed.MulQ15Trunc(x[i], y[i]); out[i] != want {
			t.Errorf("out[%d] = %d, want %d (x=%d y=%d)", i, out[i], want, x[i], y[i])
		}
	}
}

func TestVecScale16(t *testing.T) {
	const n = 32
	x := randWords(n, 5, 32768)
	const s = int16(11111)
	b := asm.NewBuilder("t")
	EmitVecScale16(b)
	b.Words("x", x)
	b.Reserve("out", 2*n)
	b.Entry()
	b.Proc("main")
	emit.Call(b, "nsVecScale16", asm.ImmSym("out", 0), asm.ImmSym("x", 0), asm.Imm(n), asm.Imm(int64(s)))
	b.I(isa.EMMS)
	b.I(isa.HALT)
	c := runProgram(t, b)
	out, _ := c.Mem.ReadInt16s(c.Prog.Addr("out"), n)
	for i := 0; i < n; i++ {
		if want := fixed.MulQ15Trunc(x[i], s); out[i] != want {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
}

func TestDotProd16(t *testing.T) {
	const n = 512
	x := randWords(n, 6, 1024)
	y := randWords(n, 7, 1024)
	b := asm.NewBuilder("t")
	EmitDotProd16(b)
	b.Words("x", x)
	b.Words("y", y)
	b.Reserve("out", 4)
	b.Entry()
	b.Proc("main")
	emit.Call(b, "nsDotProd16", asm.ImmSym("x", 0), asm.ImmSym("y", 0), asm.Imm(n))
	b.I(isa.MOV, asm.Sym(isa.SizeD, "out", 0), asm.R(isa.EAX))
	b.I(isa.EMMS)
	b.I(isa.HALT)
	c := runProgram(t, b)
	var want int64
	for i := 0; i < n; i++ {
		want += int64(x[i]) * int64(y[i])
	}
	got, _ := c.Mem.ReadInt32s(c.Prog.Addr("out"), 1)
	if int64(got[0]) != want {
		t.Errorf("dot = %d, want %d", got[0], want)
	}
}

func TestMatVec16(t *testing.T) {
	const rows, cols = 16, 32
	mat := randWords(rows*cols, 8, 1024)
	vec := randWords(cols, 9, 1024)
	b := asm.NewBuilder("t")
	EmitMatVec16(b)
	b.Words("mat", mat)
	b.Words("vec", vec)
	b.Reserve("out", 4*rows)
	b.Entry()
	b.Proc("main")
	emit.Call(b, "nsMatVec16", asm.ImmSym("mat", 0), asm.Imm(rows), asm.Imm(cols),
		asm.ImmSym("vec", 0), asm.ImmSym("out", 0))
	b.I(isa.EMMS)
	b.I(isa.HALT)
	c := runProgram(t, b)
	out, _ := c.Mem.ReadInt32s(c.Prog.Addr("out"), rows)
	for r := 0; r < rows; r++ {
		var want int64
		for j := 0; j < cols; j++ {
			want += int64(mat[r*cols+j]) * int64(vec[j])
		}
		if int64(out[r]) != want {
			t.Errorf("row %d = %d, want %d", r, out[r], want)
		}
	}
}
