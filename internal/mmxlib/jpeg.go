package mmxlib

import (
	"mmxdsp/internal/asm"
	"mmxdsp/internal/dsp"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/isa"
)

// DCTBasisQuads arranges the Q13 DCT basis for nsDct8: for each output
// frequency k, two quads (B[0..3][k], B[4..7][k]).
func DCTBasisQuads() []int16 {
	basis := dsp.DCTCosQ13()
	out := make([]int16, 64)
	for k := 0; k < 8; k++ {
		for n := 0; n < 4; n++ {
			out[8*k+n] = basis[n*8+k]
			out[8*k+4+n] = basis[(n+4)*8+k]
		}
	}
	return out
}

// EmitDct8 emits nsDct8(in, out, basis): the 8-point scaled DCT on int16
// data via two pmaddwd per output coefficient, matching dsp.DCT1D8Q15 bit
// for bit. The paper's jpeg.mmx must call this 16 times (plus transposes)
// per 8x8 block because the library lacks a 2-D DCT — the overhead §4.2
// dissects.
func EmitDct8(b *asm.Builder) {
	const name = "nsDct8"
	b.Proc(name)
	emit.LoadArg(b, isa.ESI, 0) // in
	emit.LoadArg(b, isa.EDI, 1) // out
	emit.LoadArg(b, isa.EBX, 2) // basis quads
	// Keep the input quads resident.
	b.I(isa.MOVQ, asm.R(isa.MM6), asm.MemQ(isa.ESI, 0))
	b.I(isa.MOVQ, asm.R(isa.MM7), asm.MemQ(isa.ESI, 8))
	for k := 0; k < 8; k++ {
		off := int32(16 * k)
		b.I(isa.MOVQ, asm.R(isa.MM0), asm.R(isa.MM6))
		b.I(isa.PMADDWD, asm.R(isa.MM0), asm.MemQ(isa.EBX, off))
		b.I(isa.MOVQ, asm.R(isa.MM1), asm.R(isa.MM7))
		b.I(isa.PMADDWD, asm.R(isa.MM1), asm.MemQ(isa.EBX, off+8))
		b.I(isa.PADDD, asm.R(isa.MM0), asm.R(isa.MM1))
		emit.HSumD(b, isa.MM0, isa.MM2)
		b.I(isa.MOVD, asm.R(isa.EAX), asm.R(isa.MM0))
		// (acc + 1<<12) >> 13, saturated.
		b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(1<<12))
		b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(13))
		clampAX(b, name+nameSuffix(k))
		b.I(isa.MOV, asm.MemW(isa.EDI, int32(2*k)), asm.R(isa.EAX))
	}
	b.Ret()
}

func nameSuffix(k int) string { return string(rune('a' + k)) }

// EmitColorConv emits nsColorConv(rgb, npix, y, cb, cr, coef): convert
// interleaved 8-bit RGB to level-shifted 16-bit Y (Y-128) and centered
// Cb/Cr planes, one pixel per iteration. coef points at three quads of
// Q15 coefficients, each (cR, cG, cB, 0) for Y, Cb, Cr. Semantics per
// channel: (R*cR + G*cG + B*cB) >> 15, Y additionally minus 128 — the
// same formula the scalar jpeg.c computes with imul.
func EmitColorConv(b *asm.Builder) {
	const name = "nsColorConv"
	b.Proc(name)
	emit.LoadArg(b, isa.ESI, 0) // rgb
	emit.LoadArg(b, isa.ECX, 1) // npix
	emit.LoadArg(b, isa.EBX, 5) // coef
	b.I(isa.PXOR, asm.R(isa.MM6), asm.R(isa.MM6))
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(0)) // pixel index

	b.Label(name + ".pix")
	// Load R,G,B (+1 stray byte), widen to words: (R, G, B, x).
	b.I(isa.MOVD, asm.R(isa.MM0), asm.MemD(isa.ESI, 0))
	b.I(isa.PUNPCKLBW, asm.R(isa.MM0), asm.R(isa.MM6))

	conv := func(coefOff int32, outArg int, levelShift int64, suffix string) {
		b.I(isa.MOVQ, asm.R(isa.MM1), asm.R(isa.MM0))
		b.I(isa.PMADDWD, asm.R(isa.MM1), asm.MemQ(isa.EBX, coefOff))
		emit.HSumD(b, isa.MM1, isa.MM2)
		b.I(isa.MOVD, asm.R(isa.EAX), asm.R(isa.MM1))
		b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(15))
		if levelShift != 0 {
			b.I(isa.SUB, asm.R(isa.EAX), asm.Imm(levelShift))
		}
		b.I(isa.MOV, asm.R(isa.EDX), emit.Arg(outArg))
		b.I(isa.MOV, asm.MemIdx(isa.SizeW, isa.EDX, isa.EBP, 2, 0), asm.R(isa.EAX))
		_ = suffix
	}
	conv(0, 2, 128, "y")
	conv(8, 3, 0, "cb")
	conv(16, 4, 0, "cr")

	b.I(isa.ADD, asm.R(isa.ESI), asm.Imm(3))
	b.I(isa.INC, asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.EBP), asm.R(isa.ECX))
	b.J(isa.JL, name+".pix")
	b.Ret()
}

// ColorConvCoefs returns the three Q15 coefficient quads (Y, Cb, Cr) that
// nsColorConv and the scalar jpeg.c pipeline share.
func ColorConvCoefs() []int16 {
	return []int16{
		9798, 19235, 3736, 0, // Y  = 0.299 R + 0.587 G + 0.114 B
		-5529, -10855, 16384, 0, // Cb = -0.1687 R - 0.3313 G + 0.5 B
		16384, -13720, -2664, 0, // Cr = 0.5 R - 0.4187 G - 0.0813 B
	}
}

// EmitQuantRecip emits nsQuant(in, recip, out, n, bias): quantize DCT
// coefficients by multiplying with Q15 reciprocals of the quantizer steps
// (division is unavailable in MMX). A sign-aware rounding bias of half a
// quantizer step is added first — without it the truncating multiply
// floors every coefficient and visibly degrades the image. Semantics per
// lane: out = trunc(((v + sign(v)*bias) * recip) >> 15), mirrored by
// QuantRecipModel.
func EmitQuantRecip(b *asm.Builder) {
	const name = "nsQuant"
	b.Proc(name)
	emit.LoadArg(b, isa.ESI, 0)
	emit.LoadArg(b, isa.EBX, 1)
	emit.LoadArg(b, isa.EDI, 2)
	emit.LoadArg(b, isa.ECX, 3)
	emit.LoadArg(b, isa.EDX, 4) // bias table (q/2 per position)
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label(name + ".loop")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.ESI, isa.EAX, 2, 0))
	// Quantize magnitudes and restore the sign afterwards, so the
	// truncation is symmetric around zero: mask = v < 0;
	// |v| = (v ^ mask) - mask; result re-signed the same way.
	b.I(isa.PXOR, asm.R(isa.MM3), asm.R(isa.MM3))
	b.I(isa.PCMPGTW, asm.R(isa.MM3), asm.R(isa.MM0))
	b.I(isa.PXOR, asm.R(isa.MM0), asm.R(isa.MM3))
	b.I(isa.PSUBW, asm.R(isa.MM0), asm.R(isa.MM3))
	b.I(isa.PADDW, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.EDX, isa.EAX, 2, 0))
	// Truncating reciprocal multiply.
	b.I(isa.MOVQ, asm.R(isa.MM1), asm.MemIdx(isa.SizeQ, isa.EBX, isa.EAX, 2, 0))
	b.I(isa.MOVQ, asm.R(isa.MM2), asm.R(isa.MM0))
	b.I(isa.PMULHW, asm.R(isa.MM0), asm.R(isa.MM1))
	b.I(isa.PMULLW, asm.R(isa.MM2), asm.R(isa.MM1))
	b.I(isa.PSLLW, asm.R(isa.MM0), asm.Imm(1))
	b.I(isa.PSRLW, asm.R(isa.MM2), asm.Imm(15))
	b.I(isa.POR, asm.R(isa.MM0), asm.R(isa.MM2))
	// Restore the sign.
	b.I(isa.PXOR, asm.R(isa.MM0), asm.R(isa.MM3))
	b.I(isa.PSUBW, asm.R(isa.MM0), asm.R(isa.MM3))
	b.I(isa.MOVQ, asm.MemIdx(isa.SizeQ, isa.EDI, isa.EAX, 2, 0), asm.R(isa.MM0))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(4))
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.ECX))
	b.J(isa.JL, name+".loop")
	b.Ret()
}

// QuantRecips converts a quantization table to Q15 reciprocals for
// nsQuant.
func QuantRecips(q *[64]int) [64]int16 {
	var out [64]int16
	for i, v := range q {
		r := (32768 + v/2) / v
		if r > 32767 {
			r = 32767
		}
		out[i] = int16(r)
	}
	return out
}

// QuantBiases returns the half-step rounding biases for nsQuant.
func QuantBiases(q *[64]int) [64]int16 {
	var out [64]int16
	for i, v := range q {
		out[i] = int16(v / 2)
	}
	return out
}

// QuantRecipModel mirrors one nsQuant lane exactly: quantize the
// magnitude, restore the sign.
func QuantRecipModel(v int32, recip, bias int16) int16 {
	neg := v < 0
	if neg {
		v = -v
	}
	r := ((v + int32(bias)) * int32(recip)) >> 15
	if neg {
		r = -r
	}
	return int16(r)
}
