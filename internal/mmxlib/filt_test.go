package mmxlib

import (
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/dsp"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/fixed"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/synth"
)

func TestNsFirMatchesFIRQ15(t *testing.T) {
	const taps = 35
	const padded = 36
	const samples = 100
	coef := fixed.VecToQ15(dsp.LowpassFIR(taps, 0.125))
	coefPad := make([]int16, padded)
	copy(coefPad, coef)
	input := synth.ToQ15(synth.MultiTone(samples, 11, 0.06, 0.3))

	b := asm.NewBuilder("t")
	EmitFirQ15(b)
	b.Words("coef", coefPad)
	b.Words("hist", make([]int16, padded))
	b.Words("in", input)
	b.Reserve("out", 2*samples)
	b.Entry()
	b.Proc("main")
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(0))
	b.Label("s")
	b.I(isa.MOVSXW, asm.R(isa.EAX), asm.SymIdx(isa.SizeW, "in", isa.EBP, 2, 0))
	b.I(isa.PUSH, asm.R(isa.EBP))
	emit.Call(b, "nsFir", asm.ImmSym("hist", 0), asm.ImmSym("coef", 0),
		asm.Imm(padded), asm.R(isa.EAX))
	b.I(isa.POP, asm.R(isa.EBP))
	b.I(isa.MOV, asm.SymIdx(isa.SizeW, "out", isa.EBP, 2, 0), asm.R(isa.EAX))
	b.I(isa.INC, asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.EBP), asm.Imm(samples))
	b.J(isa.JL, "s")
	b.I(isa.EMMS)
	b.I(isa.HALT)

	c := runProgram(t, b)
	got, _ := c.Mem.ReadInt16s(c.Prog.Addr("out"), samples)
	ref := dsp.NewFIRQ15(coefPad)
	for i, x := range input {
		want := ref.Process(x)
		if got[i] != want {
			t.Fatalf("sample %d: vm %d, ref %d", i, got[i], want)
		}
	}
}

// buildIirState lays out the nsIir state block and returns the padded
// coefficient slices it placed.
func buildIirState(b *asm.Builder, q *dsp.IIRQ15) {
	bq, aq := q.Coefs()
	nb := (len(bq) + 3) &^ 3
	na := (len(aq) + 3) &^ 3
	bPad := make([]int16, nb)
	copy(bPad, bq)
	aPad := make([]int16, na)
	copy(aPad, aq)
	b.Dwords("iirstate", []int32{int32(nb), int32(na), int32(q.FracBits()),
		int32(1) << (q.FracBits() - 1)})
	b.Words("iirstate.b", bPad)
	b.Words("iirstate.a", aPad)
	b.Words("iirstate.xh", make([]int16, nb))
	b.Words("iirstate.yh", make([]int16, na))
}

func TestNsIirMatchesIIRQ15(t *testing.T) {
	bc, ac := dsp.ButterworthBandpass(4, 0.1, 0.2)
	ref := dsp.NewIIRQ15(bc, ac)
	state := dsp.NewIIRQ15(bc, ac)
	_ = state

	const blocks = 8
	const blockLen = 8
	input := synth.ToQ15(scale(synth.MultiTone(blocks*blockLen, 13, 0.14, 0.16), 0.25))

	b := asm.NewBuilder("t")
	EmitIirBlockQ15(b)
	buildIirState(b, ref)
	b.Words("in", input)
	b.Reserve("out", 2*len(input))
	b.Entry()
	b.Proc("main")
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(0))
	b.Label("blk")
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EBP))
	b.I(isa.SHL, asm.R(isa.EAX), asm.Imm(4)) // blockLen*2 bytes
	b.I(isa.MOV, asm.R(isa.EBX), asm.ImmSym("in", 0))
	b.I(isa.ADD, asm.R(isa.EBX), asm.R(isa.EAX))
	b.I(isa.MOV, asm.R(isa.ECX), asm.ImmSym("out", 0))
	b.I(isa.ADD, asm.R(isa.ECX), asm.R(isa.EAX))
	b.I(isa.PUSH, asm.R(isa.EBP))
	emit.Call(b, "nsIir", asm.ImmSym("iirstate", 0), asm.R(isa.EBX),
		asm.R(isa.ECX), asm.Imm(blockLen))
	b.I(isa.POP, asm.R(isa.EBP))
	b.I(isa.INC, asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.EBP), asm.Imm(blocks))
	b.J(isa.JL, "blk")
	b.I(isa.EMMS)
	b.I(isa.HALT)

	c := runProgram(t, b)
	got, _ := c.Mem.ReadInt16s(c.Prog.Addr("out"), len(input))
	fresh := dsp.NewIIRQ15(bc, ac)
	for i, x := range input {
		want := fresh.Process(x)
		if got[i] != want {
			t.Fatalf("sample %d: vm %d, ref %d", i, got[i], want)
		}
	}
}

func scale(v []float64, s float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x * s
	}
	return out
}
