package mmxlib

import (
	"math"
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/dsp"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/fplib"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/synth"
)

func TestNsFftFixedMatchesFFTQ15(t *testing.T) {
	const n = 64
	sig := synth.ToQ15(scale(synth.MultiTone(n, 21, 0.08, 0.2), 0.5))
	refRe := make([]int16, n)
	refIm := make([]int16, n)
	copy(refRe, sig)
	if _, err := dsp.FFTQ15(refRe, refIm); err != nil {
		t.Fatal(err)
	}

	inter := make([]int16, 2*n)
	for i, v := range sig {
		inter[2*i] = v
	}
	swaps := fplib.BitReverseSwaps(n)
	b := asm.NewBuilder("t")
	EmitFftQ15Fixed(b)
	FftFixedData(b)
	b.Words("data", inter)
	b.Words("tw", FFTQuadTwiddles(n))
	b.Dwords("br", swaps)
	b.Entry()
	b.Proc("main")
	emit.Call(b, "nsFftFixed", asm.ImmSym("data", 0), asm.Imm(n),
		asm.ImmSym("tw", 0), asm.ImmSym("br", 0), asm.Imm(int64(len(swaps)/2)))
	b.I(isa.EMMS)
	b.I(isa.HALT)

	c := runProgram(t, b)
	got, _ := c.Mem.ReadInt16s(c.Prog.Addr("data"), 2*n)
	for k := 0; k < n; k++ {
		if got[2*k] != refRe[k] || got[2*k+1] != refIm[k] {
			t.Fatalf("bin %d: vm (%d, %d), ref (%d, %d)",
				k, got[2*k], got[2*k+1], refRe[k], refIm[k])
		}
	}
}

func TestNsFftHybridMatchesFloatFFT(t *testing.T) {
	const n = 128
	sig := synth.ToQ15(scale(synth.MultiTone(n, 23, 0.1, 0.23), 0.5))
	re16 := make([]int16, n)
	im16 := make([]int16, n)
	copy(re16, sig)

	cos, sin := fplib.TwiddleTablesF32(n)
	swaps := fplib.BitReverseSwaps(n)
	scaleBits := int64(math.Float32bits(1.0 / n))

	b := asm.NewBuilder("t")
	EmitCvtI16ToF32(b)
	EmitCvtF32ToI16(b)
	EmitFftHybrid(b)
	fplib.EmitFftCore(b, "fftCoreFast", fplib.PresetFast())
	CvtScratch(b)
	b.Words("re16", re16)
	b.Words("im16", im16)
	b.Reserve("reF", 4*n)
	b.Reserve("imF", 4*n)
	b.Reserve("stage", 4*n)
	b.Floats("cos", cos)
	b.Floats("sin", sin)
	b.Dwords("br", swaps)
	b.Entry()
	b.Proc("main")
	emit.Call(b, "nsFft",
		asm.ImmSym("re16", 0), asm.ImmSym("im16", 0), asm.Imm(n),
		asm.ImmSym("reF", 0), asm.ImmSym("imF", 0),
		asm.ImmSym("cos", 0), asm.ImmSym("sin", 0),
		asm.ImmSym("br", 0), asm.Imm(int64(len(swaps)/2)),
		asm.Imm(scaleBits), asm.ImmSym("stage", 0))
	b.I(isa.HALT)

	c := runProgram(t, b)
	gotRe, _ := c.Mem.ReadInt16s(c.Prog.Addr("re16"), n)
	gotIm, _ := c.Mem.ReadInt16s(c.Prog.Addr("im16"), n)

	wantRe := make([]float64, n)
	wantIm := make([]float64, n)
	for i, v := range sig {
		wantRe[i] = float64(v)
	}
	if err := dsp.FFT(wantRe, wantIm); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		wr := wantRe[k] / n
		wi := wantIm[k] / n
		if math.Abs(float64(gotRe[k])-wr) > 1.0 || math.Abs(float64(gotIm[k])-wi) > 1.0 {
			t.Fatalf("bin %d: vm (%d, %d), ref (%.2f, %.2f)",
				k, gotRe[k], gotIm[k], wr, wi)
		}
	}
	// The hybrid keeps full precision on a scaled tone (paper: order 1e-2
	// relative); check the peak bin is right and large.
	ps := make([]float64, n/2)
	for k := range ps {
		ps[k] = float64(gotRe[k])*float64(gotRe[k]) + float64(gotIm[k])*float64(gotIm[k])
	}
	if ps[dsp.PeakIndex(ps[1:])+1] == 0 {
		t.Error("spectrum empty")
	}
}
