package mmxlib

import (
	"mmxdsp/internal/asm"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/isa"
)

// EmitImgScale8 emits nsImgScale8(dst, src, n, scaleQ8): scale unsigned
// bytes by scaleQ8/256 (scaleQ8 in [0, 255]), 8 pixels per iteration —
// the image benchmark's dimming pass. The bytes unpack to words, multiply,
// shift and pack back: the "automatic" packing the paper credits for
// image.mmx's speedup, plus real pack/unpack work.
func EmitImgScale8(b *asm.Builder) {
	const name = "nsImgScale8"
	b.Proc(name)
	emit.LoadArg(b, isa.EDI, 0)
	emit.LoadArg(b, isa.ESI, 1)
	emit.LoadArg(b, isa.ECX, 2)
	emit.LoadArg(b, isa.EDX, 3)
	emit.BroadcastW(b, isa.MM7, isa.EDX)
	b.I(isa.PXOR, asm.R(isa.MM6), asm.R(isa.MM6)) // zero for unpacking
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label(name + ".loop")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.ESI, isa.EAX, 1, 0))
	b.I(isa.MOVQ, asm.R(isa.MM1), asm.R(isa.MM0))
	b.I(isa.PUNPCKLBW, asm.R(isa.MM0), asm.R(isa.MM6))
	b.I(isa.PUNPCKHBW, asm.R(isa.MM1), asm.R(isa.MM6))
	b.I(isa.PMULLW, asm.R(isa.MM0), asm.R(isa.MM7))
	b.I(isa.PMULLW, asm.R(isa.MM1), asm.R(isa.MM7))
	b.I(isa.PSRLW, asm.R(isa.MM0), asm.Imm(8))
	b.I(isa.PSRLW, asm.R(isa.MM1), asm.Imm(8))
	b.I(isa.PACKUSWB, asm.R(isa.MM0), asm.R(isa.MM1))
	b.I(isa.MOVQ, asm.MemIdx(isa.SizeQ, isa.EDI, isa.EAX, 1, 0), asm.R(isa.MM0))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(8))
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.ECX))
	b.J(isa.JL, name+".loop")
	b.Ret()
}

// EmitImgAdd8 emits nsImgAdd8(dst, src, n, addMask, subMask): saturating
// per-channel color switch. The masks are 24-byte repeating patterns (the
// RGB channel deltas laid out over three quadwords so 8 RGB pixels align
// per iteration); positive deltas live in addMask, magnitudes of negative
// deltas in subMask. n must be a multiple of 24.
func EmitImgAdd8(b *asm.Builder) {
	const name = "nsImgAdd8"
	b.Proc(name)
	emit.LoadArg(b, isa.EDI, 0)
	emit.LoadArg(b, isa.ESI, 1)
	emit.LoadArg(b, isa.ECX, 2)
	emit.LoadArg(b, isa.EBX, 3) // addMask
	emit.LoadArg(b, isa.EDX, 4) // subMask
	// Load the three add quads into mm5..mm7 and keep sub quads in memory.
	b.I(isa.MOVQ, asm.R(isa.MM5), asm.MemQ(isa.EBX, 0))
	b.I(isa.MOVQ, asm.R(isa.MM6), asm.MemQ(isa.EBX, 8))
	b.I(isa.MOVQ, asm.R(isa.MM7), asm.MemQ(isa.EBX, 16))
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label(name + ".loop")
	for q := 0; q < 3; q++ {
		off := int32(8 * q)
		addReg := []isa.Reg{isa.MM5, isa.MM6, isa.MM7}[q]
		b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.ESI, isa.EAX, 1, off))
		b.I(isa.PADDUSB, asm.R(isa.MM0), asm.R(addReg))
		b.I(isa.PSUBUSB, asm.R(isa.MM0), asm.MemQ(isa.EDX, off))
		b.I(isa.MOVQ, asm.MemIdx(isa.SizeQ, isa.EDI, isa.EAX, 1, off), asm.R(isa.MM0))
	}
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(24))
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.ECX))
	b.J(isa.JL, name+".loop")
	b.Ret()
}

// ColorMasks builds the 24-byte add and subtract masks for per-channel
// deltas (dr, dg, db): positive deltas go to add, negated negative deltas
// to sub.
func ColorMasks(dr, dg, db int) (add, sub []byte) {
	pos := func(v int) byte {
		if v > 0 {
			return byte(v)
		}
		return 0
	}
	neg := func(v int) byte {
		if v < 0 {
			return byte(-v)
		}
		return 0
	}
	add = make([]byte, 24)
	sub = make([]byte, 24)
	d := [3]int{dr, dg, db}
	for i := 0; i < 24; i++ {
		add[i] = pos(d[i%3])
		sub[i] = neg(d[i%3])
	}
	return add, sub
}
