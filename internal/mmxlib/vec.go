// Package mmxlib is the MMX assembly library — the analog of Intel's
// Signal Processing / Image Processing libraries the paper's .mmx
// benchmarks call. Every routine is emitted into a program's Builder as a
// callable procedure following the emit package calling convention, and
// each is validated against the pure-Go reference semantics in its tests.
//
// Vector lengths are in elements and must be multiples of the SIMD width
// (4 words or 8 bytes); callers pad, exactly the data-formatting burden the
// paper describes.
package mmxlib

import (
	"mmxdsp/internal/asm"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/isa"
)

// EmitVecAdd16 emits nsVecAdd16(dst, a, b, n): saturating 16-bit vector
// add, 4 elements per iteration.
func EmitVecAdd16(b *asm.Builder) { emitVecBinop16(b, "nsVecAdd16", isa.PADDSW) }

// EmitVecSub16 emits nsVecSub16(dst, a, b, n): saturating 16-bit subtract.
func EmitVecSub16(b *asm.Builder) { emitVecBinop16(b, "nsVecSub16", isa.PSUBSW) }

func emitVecBinop16(b *asm.Builder, name string, op isa.Op) {
	b.Proc(name)
	emit.LoadArg(b, isa.EDI, 0) // dst
	emit.LoadArg(b, isa.ESI, 1) // a
	emit.LoadArg(b, isa.EBX, 2) // b
	emit.LoadArg(b, isa.ECX, 3) // n
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label(name + ".loop")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.ESI, isa.EAX, 2, 0))
	b.I(op, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.EBX, isa.EAX, 2, 0))
	b.I(isa.MOVQ, asm.MemIdx(isa.SizeQ, isa.EDI, isa.EAX, 2, 0), asm.R(isa.MM0))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(4))
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.ECX))
	b.J(isa.JL, name+".loop")
	b.Ret()
}

// EmitVecMul16 emits nsVecMul16(dst, a, b, n): Q15 fractional multiply with
// truncation — (a*b)>>15 assembled from pmulhw/pmullw, the high/low-word
// interleaving dance the paper calls "a significant problem".
func EmitVecMul16(b *asm.Builder) {
	const name = "nsVecMul16"
	b.Proc(name)
	emit.LoadArg(b, isa.EDI, 0)
	emit.LoadArg(b, isa.ESI, 1)
	emit.LoadArg(b, isa.EBX, 2)
	emit.LoadArg(b, isa.ECX, 3)
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label(name + ".loop")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.ESI, isa.EAX, 2, 0))
	b.I(isa.MOVQ, asm.R(isa.MM1), asm.MemIdx(isa.SizeQ, isa.EBX, isa.EAX, 2, 0))
	b.I(isa.MOVQ, asm.R(isa.MM2), asm.R(isa.MM0))
	b.I(isa.PMULHW, asm.R(isa.MM0), asm.R(isa.MM1)) // high words of products
	b.I(isa.PMULLW, asm.R(isa.MM2), asm.R(isa.MM1)) // low words
	b.I(isa.PSLLW, asm.R(isa.MM0), asm.Imm(1))
	b.I(isa.PSRLW, asm.R(isa.MM2), asm.Imm(15))
	b.I(isa.POR, asm.R(isa.MM0), asm.R(isa.MM2)) // (a*b) >> 15, truncated
	b.I(isa.MOVQ, asm.MemIdx(isa.SizeQ, isa.EDI, isa.EAX, 2, 0), asm.R(isa.MM0))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(4))
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.ECX))
	b.J(isa.JL, name+".loop")
	b.Ret()
}

// EmitVecScale16 emits nsVecScale16(dst, a, n, s): Q15 multiply of a vector
// by a broadcast scalar, same truncation semantics as nsVecMul16.
func EmitVecScale16(b *asm.Builder) {
	const name = "nsVecScale16"
	b.Proc(name)
	emit.LoadArg(b, isa.EDI, 0)
	emit.LoadArg(b, isa.ESI, 1)
	emit.LoadArg(b, isa.ECX, 2)
	emit.LoadArg(b, isa.EDX, 3)
	emit.BroadcastW(b, isa.MM7, isa.EDX)
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label(name + ".loop")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.ESI, isa.EAX, 2, 0))
	b.I(isa.MOVQ, asm.R(isa.MM2), asm.R(isa.MM0))
	b.I(isa.PMULHW, asm.R(isa.MM0), asm.R(isa.MM7))
	b.I(isa.PMULLW, asm.R(isa.MM2), asm.R(isa.MM7))
	b.I(isa.PSLLW, asm.R(isa.MM0), asm.Imm(1))
	b.I(isa.PSRLW, asm.R(isa.MM2), asm.Imm(15))
	b.I(isa.POR, asm.R(isa.MM0), asm.R(isa.MM2))
	b.I(isa.MOVQ, asm.MemIdx(isa.SizeQ, isa.EDI, isa.EAX, 2, 0), asm.R(isa.MM0))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(4))
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.ECX))
	b.J(isa.JL, name+".loop")
	b.Ret()
}

// EmitDotProd16 emits nsDotProd16(a, b, n) -> eax: 16-bit dot product with
// a 32-bit accumulator via pmaddwd, 8 elements per iteration (two
// independent accumulators hide the multiplier latency).
func EmitDotProd16(b *asm.Builder) {
	const name = "nsDotProd16"
	b.Proc(name)
	emit.LoadArg(b, isa.ESI, 0)
	emit.LoadArg(b, isa.EBX, 1)
	emit.LoadArg(b, isa.ECX, 2)
	b.I(isa.PXOR, asm.R(isa.MM6), asm.R(isa.MM6)) // accumulator 0
	b.I(isa.PXOR, asm.R(isa.MM7), asm.R(isa.MM7)) // accumulator 1
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label(name + ".loop")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.ESI, isa.EAX, 2, 0))
	b.I(isa.MOVQ, asm.R(isa.MM1), asm.MemIdx(isa.SizeQ, isa.ESI, isa.EAX, 2, 8))
	b.I(isa.PMADDWD, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.EBX, isa.EAX, 2, 0))
	b.I(isa.PMADDWD, asm.R(isa.MM1), asm.MemIdx(isa.SizeQ, isa.EBX, isa.EAX, 2, 8))
	b.I(isa.PADDD, asm.R(isa.MM6), asm.R(isa.MM0))
	b.I(isa.PADDD, asm.R(isa.MM7), asm.R(isa.MM1))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(8))
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.ECX))
	b.J(isa.JL, name+".loop")
	b.I(isa.PADDD, asm.R(isa.MM6), asm.R(isa.MM7))
	emit.HSumD(b, isa.MM6, isa.MM5)
	b.I(isa.MOVD, asm.R(isa.EAX), asm.R(isa.MM6))
	b.Ret()
}

// EmitMatVec16 emits nsMatVec16(mat, rows, cols, vec, out32): row-major
// 16-bit matrix times vector, 32-bit results. The inner loop is unrolled
// 4x (16 elements per iteration) so nearly every instruction is MMX, as in
// Table 2's matvec.mmx (91.6% MMX).
func EmitMatVec16(b *asm.Builder) {
	const name = "nsMatVec16"
	b.Proc(name)
	emit.LoadArg(b, isa.ESI, 0)              // mat (advances row by row)
	emit.LoadArg(b, isa.EDI, 4)              // out
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(0)) // row counter

	b.Label(name + ".row")
	emit.LoadArg(b, isa.EBX, 3) // vec
	emit.LoadArg(b, isa.ECX, 2) // cols
	b.I(isa.PXOR, asm.R(isa.MM6), asm.R(isa.MM6))
	b.I(isa.PXOR, asm.R(isa.MM7), asm.R(isa.MM7))
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label(name + ".col")
	for u := 0; u < 2; u++ {
		off := int32(16 * u)
		b.I(isa.MOVQ, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.ESI, isa.EAX, 2, off))
		b.I(isa.MOVQ, asm.R(isa.MM1), asm.MemIdx(isa.SizeQ, isa.ESI, isa.EAX, 2, off+8))
		b.I(isa.PMADDWD, asm.R(isa.MM0), asm.MemIdx(isa.SizeQ, isa.EBX, isa.EAX, 2, off))
		b.I(isa.PMADDWD, asm.R(isa.MM1), asm.MemIdx(isa.SizeQ, isa.EBX, isa.EAX, 2, off+8))
		b.I(isa.PADDD, asm.R(isa.MM6), asm.R(isa.MM0))
		b.I(isa.PADDD, asm.R(isa.MM7), asm.R(isa.MM1))
	}
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(16))
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.ECX))
	b.J(isa.JL, name+".col")

	b.I(isa.PADDD, asm.R(isa.MM6), asm.R(isa.MM7))
	emit.HSumD(b, isa.MM6, isa.MM5)
	b.I(isa.MOVD, asm.MemIdx(isa.SizeD, isa.EDI, isa.EBP, 4, 0), asm.R(isa.MM6))

	// Advance to the next row: mat += 2*cols.
	b.I(isa.MOV, asm.R(isa.EDX), asm.R(isa.ECX))
	b.I(isa.ADD, asm.R(isa.EDX), asm.R(isa.EDX))
	b.I(isa.ADD, asm.R(isa.ESI), asm.R(isa.EDX))
	b.I(isa.INC, asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.EBP), emit.Arg(1))
	b.J(isa.JL, name+".row")
	b.Ret()
}
