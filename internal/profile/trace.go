package profile

import (
	"fmt"
	"io"

	"mmxdsp/internal/vm"
)

// Tee fans retirement events out to several observers in order — e.g. a
// Collector plus a Tracer.
func Tee(obs ...vm.Observer) vm.Observer { return tee(obs) }

type tee []vm.Observer

func (t tee) Retire(ev vm.Event) {
	for _, o := range t {
		o.Retire(ev)
	}
}

// Tracer writes a line per retired instruction (up to Limit; 0 = no limit)
// to W — the "dynamic analysis" listing view of the profiler. If
// MeasuredOnly is set, instructions outside the profon/profoff region are
// skipped. The first write error latches: the tracer stops formatting and
// emitting entirely (instead of spinning through millions of retirements
// against a broken writer) and reports the error via Err.
type Tracer struct {
	W            io.Writer
	Limit        int
	MeasuredOnly bool

	written int
	err     error
}

// Retire implements vm.Observer.
func (t *Tracer) Retire(ev vm.Event) {
	if t.err != nil {
		return
	}
	if t.Limit > 0 && t.written >= t.Limit {
		return
	}
	if t.MeasuredOnly && !ev.Measured {
		return
	}
	flags := ""
	if ev.Taken {
		flags = " taken"
	}
	if ev.MemPenalty > 0 {
		flags += fmt.Sprintf(" +%dcy mem", ev.MemPenalty)
	}
	if _, err := fmt.Fprintf(t.W, "%6d  %-40s%s\n", ev.PC, ev.Inst.String(), flags); err != nil {
		t.err = err
		return
	}
	t.written++
}

// Written returns how many lines the tracer has successfully emitted.
func (t *Tracer) Written() int { return t.written }

// Err returns the first write error, or nil. Once non-nil, the tracer has
// stopped emitting.
func (t *Tracer) Err() error { return t.err }
