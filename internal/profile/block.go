// Block-level observation: the Collector implements vm.BlockObserver, so
// the interpreter hands it one ObserveBlock call per executed basic block
// instead of one Retire per instruction. Each block's counter updates —
// instruction, uop, memory-reference, class, opcode, MMX-category and
// per-PC counts — are summed once at construction from the static
// isa.BlockAgg, and the matching cycle attribution comes from the timing
// model's precomputed block schedules (clean or signature-memoized — see
// pentium.RetireBlock). When no precomputed schedule matches the entry
// state, the events are reconstructed and replayed through the exact
// per-event Retire — block bodies are straight-line code, so PC,
// instruction, measured flag and memory penalty fully determine each event.
package profile

import (
	"mmxdsp/internal/isa"
	"mmxdsp/internal/vm"
)

// pendEntry counts measured fast-path executions of one block schedule not
// yet folded into the counters. Schedules are identified by the backing
// array of their costs slice (&costs[0]) — the timing model never mutates
// or reuses a returned costs slice, so equal pointer means equal schedule.
type pendEntry struct {
	costs []uint32
	n     uint64
}

// blockAgg is one basic block's precomputed observation update, plus the
// per-schedule batch counts of fast-path executions not yet folded into
// the counters. Counters are all commutative sums, so deferring the fold
// until Report is exact — and blocks whose cache-penalty pattern cycles
// through a few schedule variants batch each variant independently rather
// than flushing on every alternation.
type blockAgg struct {
	agg  isa.BlockAgg
	pend []pendEntry
}

// initBlocks builds the per-block aggregates. The model must already be
// bound to prog (core.Run binds before constructing the collector); an
// unbound model degrades to per-event replay for every block.
func (c *Collector) initBlocks() {
	blocks := c.Prog.Blocks()
	c.blocks = make([]blockAgg, len(blocks))
	for bi := range blocks {
		info := &blocks[bi]
		c.blocks[bi].agg = isa.BlockAggFor(c.Prog.Insts, c.meta, info.Start, info.End, info.Term)
	}
}

// ObserveBlock implements vm.BlockObserver.
func (c *Collector) ObserveBlock(bi int, measured bool, penalties []int32) {
	if bi < 0 || bi >= len(c.blocks) {
		return
	}
	ba := &c.blocks[bi]
	n := len(ba.agg.PCs)
	if n == 0 {
		return
	}
	if costs := c.Model.RetireBlock(bi, penalties); costs != nil {
		c.fastEvents += uint64(n)
		if !measured {
			return
		}
		id := &costs[0]
		for i := range ba.pend {
			if &ba.pend[i].costs[0] == id {
				ba.pend[i].n++
				return
			}
		}
		// A block that keeps evicting timing variants mints fresh cost
		// slices; fold and reset the table before it grows without bound.
		if len(ba.pend) >= 16 {
			for i := range ba.pend {
				c.flushBlock(ba, &ba.pend[i])
			}
			ba.pend = ba.pend[:0]
		}
		ba.pend = append(ba.pend, pendEntry{costs: costs, n: 1})
		return
	}
	// Exact per-event replay: reconstruct each body event and price it
	// directly (bypassing Retire's run-length batch, which consecutive
	// distinct PCs would flush every event).
	k := 0
	for i, pc := range ba.agg.PCs {
		ev := vm.Event{PC: int(pc), Inst: &c.Prog.Insts[pc], Measured: measured}
		if ba.agg.IsMem[i] {
			ev.MemPenalty = int(penalties[k])
			k++
		}
		c.perEvents++
		cost := c.Model.Retire(ev)
		if measured {
			c.tally(int(pc), uint64(cost), 1)
		}
	}
}

// flushBlock folds one schedule's pending batch into the counters.
func (c *Collector) flushBlock(ba *blockAgg, pe *pendEntry) {
	n := pe.n
	if n == 0 {
		return
	}
	pe.n = 0
	costs := pe.costs
	c.dyn += uint64(len(ba.agg.PCs)) * n
	c.uops += ba.agg.Uops * n
	c.memRefs += ba.agg.MemRefs * n
	for _, cc := range ba.agg.Classes {
		c.classCounts[cc.Class] += cc.N * n
	}
	for cat, cn := range ba.agg.MMXCat {
		if cn != 0 {
			c.mmxCat[cat] += cn * n
		}
	}
	var cyc uint64
	for i, pc := range ba.agg.PCs {
		cost := uint64(costs[i])
		cyc += cost
		c.pcCounts[pc] += n
		c.pcCycles[pc] += cost * n
		c.classCycles[c.meta[pc].Class] += cost * n
	}
	c.cycles += cyc * n
	for _, oc := range ba.agg.Ops {
		c.opCounts[oc.Op] += oc.N * n
		if oc.Op == isa.CALL {
			c.calls += oc.N * n
		}
	}
}

// flushBlocks folds every pending batch; counters are only complete after.
func (c *Collector) flushBlocks() {
	for i := range c.blocks {
		ba := &c.blocks[i]
		for j := range ba.pend {
			c.flushBlock(ba, &ba.pend[j])
		}
	}
}

// BlockStats reports how many retired events were applied through the fused
// block fast path versus the per-event path (including per-event block
// replays, terminators, and runs on the non-block interpreters). The split
// is diagnostic only and deliberately kept out of Report, which must stay
// byte-identical across dispatch modes.
func (c *Collector) BlockStats() (fastEvents, perEvents uint64) {
	return c.fastEvents, c.perEvents
}
