package profile

import (
	"fmt"
	"strings"
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/pentium"
	"mmxdsp/internal/vm"
)

// buildAndRun executes a program with a fresh collector and returns the
// report.
func buildAndRun(t *testing.T, build func(b *asm.Builder)) *Report {
	t.Helper()
	b := asm.NewBuilder("prof-test")
	build(b)
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(p, pentium.New(pentium.DefaultConfig()))
	c := vm.New(p)
	c.Obs = col
	if err := c.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	return col.Report(p.Name)
}

func TestOnlyMeasuredRegionCounts(t *testing.T) {
	rep := buildAndRun(t, func(b *asm.Builder) {
		b.Proc("main")
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(1)) // outside
		b.I(isa.PROFON)
		b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(2))
		b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(3))
		b.I(isa.PROFOFF)
		b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(4)) // outside
		b.I(isa.HALT)
	})
	if rep.DynamicInstructions != 2 {
		t.Errorf("dynamic = %d, want 2 (only the measured region)", rep.DynamicInstructions)
	}
	if rep.StaticInstructions != 2 {
		t.Errorf("static = %d, want 2", rep.StaticInstructions)
	}
	if rep.Cycles == 0 {
		t.Error("measured cycles must be nonzero")
	}
}

func TestStaticVersusDynamic(t *testing.T) {
	rep := buildAndRun(t, func(b *asm.Builder) {
		b.Proc("main")
		b.I(isa.PROFON)
		b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(10))
		b.Label("loop")
		b.I(isa.DEC, asm.R(isa.ECX))
		b.J(isa.JNE, "loop")
		b.I(isa.PROFOFF)
		b.I(isa.HALT)
	})
	if rep.StaticInstructions != 3 {
		t.Errorf("static = %d, want 3 (mov, dec, jne)", rep.StaticInstructions)
	}
	if rep.DynamicInstructions != 21 {
		t.Errorf("dynamic = %d, want 21 (1 + 2*10)", rep.DynamicInstructions)
	}
}

func TestMMXCategoriesAndPercent(t *testing.T) {
	rep := buildAndRun(t, func(b *asm.Builder) {
		b.Words("v", []int16{1, 2, 3, 4})
		b.Proc("main")
		b.I(isa.PROFON)
		b.I(isa.MOVQ, asm.R(isa.MM0), asm.Sym(isa.SizeQ, "v", 0)) // move
		b.I(isa.PUNPCKLWD, asm.R(isa.MM1), asm.R(isa.MM0))        // pack/unpack
		b.I(isa.PADDW, asm.R(isa.MM0), asm.R(isa.MM1))            // arith
		b.I(isa.PMADDWD, asm.R(isa.MM0), asm.R(isa.MM1))          // arith
		b.I(isa.EMMS)                                             // emms
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))                  // scalar
		b.I(isa.PROFOFF)
		b.I(isa.HALT)
	})
	if rep.MMXMoves != 1 || rep.MMXPackUnpack != 1 || rep.MMXArithmetic != 2 || rep.MMXEmms != 1 {
		t.Errorf("categories = mov %d, pack %d, arith %d, emms %d",
			rep.MMXMoves, rep.MMXPackUnpack, rep.MMXArithmetic, rep.MMXEmms)
	}
	if rep.MMXInstructions() != 5 {
		t.Errorf("MMX total = %d, want 5", rep.MMXInstructions())
	}
	wantPct := 100 * 5.0 / 6.0
	if got := rep.PercentMMX(); got < wantPct-0.01 || got > wantPct+0.01 {
		t.Errorf("%%MMX = %v, want %v", got, wantPct)
	}
	bd := rep.MMXBreakdown()
	if bd[0]+bd[1]+bd[2]+bd[3] < 83 {
		t.Errorf("breakdown sums to %v, want ~83.3", bd[0]+bd[1]+bd[2]+bd[3])
	}
	if got := rep.PackUnpackShareOfMMX(); got != 20 {
		t.Errorf("pack share of MMX = %v, want 20", got)
	}
}

func TestMemoryReferenceCounting(t *testing.T) {
	rep := buildAndRun(t, func(b *asm.Builder) {
		b.Dwords("v", []int32{1})
		b.Proc("main")
		b.I(isa.PROFON)
		b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, "v", 0)) // mem
		b.I(isa.PUSH, asm.R(isa.EAX))                            // mem (stack)
		b.I(isa.POP, asm.R(isa.EBX))                             // mem (stack)
		b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.EBX))             // not mem
		b.I(isa.PROFOFF)
		b.I(isa.HALT)
	})
	if rep.MemoryReferences != 3 {
		t.Errorf("memrefs = %d, want 3", rep.MemoryReferences)
	}
	if got := rep.PercentMemRefs(); got != 75 {
		t.Errorf("%%memrefs = %v, want 75", got)
	}
}

func TestCallAccountingAndProcProfile(t *testing.T) {
	rep := buildAndRun(t, func(b *asm.Builder) {
		b.Proc("main")
		b.I(isa.PROFON)
		b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(5))
		b.Label("l")
		b.I(isa.PUSH, asm.R(isa.ECX))
		b.Call("leaf")
		b.I(isa.POP, asm.R(isa.ECX))
		b.I(isa.DEC, asm.R(isa.ECX))
		b.J(isa.JNE, "l")
		b.I(isa.PROFOFF)
		b.I(isa.HALT)
		b.Proc("leaf")
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(3))
		b.Label("spin")
		b.I(isa.IMUL, asm.R(isa.EBX), asm.R(isa.EAX))
		b.I(isa.DEC, asm.R(isa.EAX))
		b.J(isa.JNE, "spin")
		b.Ret()
	})
	if rep.Calls != 5 {
		t.Errorf("calls = %d, want 5", rep.Calls)
	}
	if rep.CallRetCycleShare() <= 0 {
		t.Error("call/ret share must be positive")
	}
	var names []string
	for _, p := range rep.Procs {
		names = append(names, p.Name)
	}
	if len(rep.Procs) != 2 {
		t.Fatalf("procs = %v, want main and leaf", names)
	}
	if rep.Procs[0].Name != "leaf" {
		t.Errorf("hottest proc = %s, want leaf (imul-heavy)", rep.Procs[0].Name)
	}
}

func TestZeroRunReport(t *testing.T) {
	rep := buildAndRun(t, func(b *asm.Builder) {
		b.Proc("main")
		b.I(isa.HALT) // nothing measured
	})
	if rep.DynamicInstructions != 0 || rep.Cycles != 0 {
		t.Errorf("empty region: dyn %d cycles %d", rep.DynamicInstructions, rep.Cycles)
	}
	if rep.PercentMMX() != 0 || rep.PercentMemRefs() != 0 || rep.CallRetCycleShare() != 0 {
		t.Error("percentages of an empty region must be 0 (no NaNs)")
	}
}

func TestTracerAndTee(t *testing.T) {
	b := asm.NewBuilder("trace-test")
	b.Proc("main")
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(1)) // unmeasured
	b.I(isa.PROFON)
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(2))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(3))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(4))
	b.I(isa.PROFOFF)
	b.I(isa.HALT)
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	tr := &Tracer{W: &buf, Limit: 2, MeasuredOnly: true}
	col := NewCollector(p, pentium.New(pentium.DefaultConfig()))
	c := vm.New(p)
	c.Obs = Tee(col, tr)
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if tr.Written() != 2 {
		t.Errorf("tracer wrote %d lines, want 2 (limit)", tr.Written())
	}
	if strings.Count(out, "\n") != 2 {
		t.Errorf("trace output:\n%s", out)
	}
	if !strings.Contains(out, "add eax, 2") {
		t.Errorf("trace missing first measured instruction:\n%s", out)
	}
	if strings.Contains(out, "mov eax, 1") {
		t.Errorf("trace must skip unmeasured instructions:\n%s", out)
	}
	// The collector behind the tee still counted everything.
	if rep := col.Report("t"); rep.DynamicInstructions != 3 {
		t.Errorf("collector behind tee counted %d", rep.DynamicInstructions)
	}
}

// failAfterWriter fails every write after the first n.
type failAfterWriter struct {
	n      int
	writes int
	failed int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.writes >= w.n {
		w.failed++
		return 0, fmt.Errorf("writer closed")
	}
	w.writes++
	return len(p), nil
}

func TestTracerStopsOnWriteError(t *testing.T) {
	b := asm.NewBuilder("trace-err-test")
	b.Proc("main")
	b.I(isa.PROFON)
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(1000))
	b.Label("spin")
	b.I(isa.DEC, asm.R(isa.ECX))
	b.J(isa.JNE, "spin")
	b.I(isa.PROFOFF)
	b.I(isa.HALT)
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	w := &failAfterWriter{n: 3}
	tr := &Tracer{W: w, MeasuredOnly: true}
	c := vm.New(p)
	c.Obs = tr
	if err := c.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	if tr.Err() == nil {
		t.Fatal("tracer must surface the write error")
	}
	if tr.Written() != 3 {
		t.Errorf("written = %d, want 3 (successful writes only)", tr.Written())
	}
	// The error latches: the ~2000 retirements after the failure must not
	// keep hammering the broken writer.
	if w.failed != 1 {
		t.Errorf("writer saw %d failed writes after the first error, want 1", w.failed)
	}
}
