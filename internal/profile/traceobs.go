// Trace-level observation: the Collector implements vm.TraceObserver, so
// the trace dispatcher hands it one ObserveTrace call per full superblock
// iteration (and one ObserveTraceExit per side exit) instead of one
// ObserveBlock per block plus one Retire per terminator. The timing comes
// from pentium.RetireChain — a whole-iteration schedule memoized per entry
// signature — with measured executions batched per schedule exactly like
// the block fast path. When the chain schedule declines, the iteration
// degrades to the per-block path (which itself degrades to per-event
// replay), so every tier produces byte-identical reports.
package profile

import (
	"mmxdsp/internal/pentium"
	"mmxdsp/internal/vm"
)

// chainEv is one event of a full trace iteration in retirement order.
type chainEv struct {
	pc      int32
	taken   bool
	refsMem bool
}

// traceChain is the observation record of one registered trace.
type traceChain struct {
	ct     *pentium.ChainTiming
	blocks []int32
	// termPC[i] is block i's terminator PC (-1 for fall-through); taken[i]
	// the direction the trace recorded for it. termMem[i] marks terminators
	// that reference memory (call/ret — they consume one penalty slot), and
	// termBr[i] conditional branches (the only terminators a side exit
	// inverts; a ret exit retires with its recorded direction).
	termPC  []int32
	taken   []bool
	termMem []bool
	termBr  []bool
	// events is the full iteration's event sequence; bodyMem[i] counts
	// block i's memory-referencing body events (slicing the penalty
	// vector per block on the fallback paths).
	events  []chainEv
	bodyMem []int32
	memN    int
	// pend batches measured fast-path iterations per chain schedule,
	// keyed by cost-slice identity like blockAgg.pend.
	pend []pendEntry
	// exits memoizes per-exit chain schedules: a side exit at block k is
	// itself a fixed event sequence (blocks 0..k, with block k's
	// conditional terminator inverted), so it gets the same chain fast
	// path as full iterations. Built lazily on first exit at k.
	exits []*exitChain
}

// exitChain is the chain-timing record of one side-exit shape.
type exitChain struct {
	ct     *pentium.ChainTiming
	events []chainEv
	pend   []pendEntry
}

// RegisterTrace implements vm.TraceObserver. Trace ids arrive dense and
// in order (the dispatcher numbers them as it forms them).
func (c *Collector) RegisterTrace(id int, blocks []int32, taken []bool) {
	if id != len(c.traces) {
		// Defensive: ids out of step would misalign the table; drop into
		// an always-fallback record rather than misattribute.
		for len(c.traces) <= id {
			c.traces = append(c.traces, &traceChain{})
		}
	}
	tc := &traceChain{
		blocks: append([]int32(nil), blocks...),
		taken:  append([]bool(nil), taken...),
	}
	progBlocks := c.Prog.Blocks()
	terms := make([]pentium.ChainTerm, 0, len(blocks))
	for i, bi := range blocks {
		if bi < 0 || int(bi) >= len(c.blocks) {
			c.traces = append(c.traces, &traceChain{})
			return
		}
		ba := &c.blocks[bi]
		var memN int32
		for j, pc := range ba.agg.PCs {
			if ba.agg.IsMem[j] {
				memN++
			}
			tc.events = append(tc.events, chainEv{pc: pc, refsMem: ba.agg.IsMem[j]})
		}
		tc.bodyMem = append(tc.bodyMem, memN)
		tc.memN += int(memN)
		term := int32(-1)
		termMem, termBr := false, false
		if t := progBlocks[bi].Term; t >= 0 {
			term = int32(t)
			in := &c.Prog.Insts[term]
			termMem = in.ReferencesMemory()
			termBr = in.Op.IsBranch()
			tc.events = append(tc.events, chainEv{pc: term, taken: taken[i], refsMem: termMem})
			if termMem {
				tc.memN++
			}
		}
		tc.termPC = append(tc.termPC, term)
		tc.termMem = append(tc.termMem, termMem)
		tc.termBr = append(tc.termBr, termBr)
		terms = append(terms, pentium.ChainTerm{PC: term, Taken: taken[i]})
	}
	tc.ct = c.Model.NewChain(blocks, terms)
	if id == len(c.traces) {
		c.traces = append(c.traces, tc)
	} else {
		c.traces[id] = tc
	}
}

// ObserveTrace implements vm.TraceObserver: one full iteration of the
// trace retired, with one cache penalty per memory-referencing instruction
// in retirement order.
func (c *Collector) ObserveTrace(id int, measured bool, penalties []int32) {
	if id < 0 || id >= len(c.traces) {
		return
	}
	tc := c.traces[id]
	if costs := c.Model.RetireChain(tc.ct, penalties); costs != nil {
		c.fastEvents += uint64(len(tc.events))
		if !measured {
			return
		}
		key := &costs[0]
		for i := range tc.pend {
			if &tc.pend[i].costs[0] == key {
				tc.pend[i].n++
				return
			}
		}
		if len(tc.pend) >= 16 {
			for i := range tc.pend {
				c.flushTrace(tc, &tc.pend[i])
			}
			tc.pend = tc.pend[:0]
		}
		tc.pend = append(tc.pend, pendEntry{costs: costs, n: 1})
		return
	}
	// Chain schedule declined: replay the iteration per block, exactly as
	// block dispatch would have retired it.
	c.replayChainBlocks(tc, len(tc.blocks)-1, false, measured, penalties)
}

// ObserveTraceExit implements vm.TraceObserver: a side exit at block k's
// terminator. Blocks 0..k completed architecturally; block k's terminator
// went the opposite of its recorded direction. Chain schedules only cover
// full iterations, so exits always retire through the per-block path.
func (c *Collector) ObserveTraceExit(id int, k int, measured bool, penalties []int32) {
	if id < 0 || id >= len(c.traces) {
		return
	}
	tc := c.traces[id]
	if k < 0 || k >= len(tc.blocks) {
		return
	}
	ec := c.exitChainFor(tc, k)
	if costs := c.Model.RetireChain(ec.ct, penalties); costs != nil {
		c.fastEvents += uint64(len(ec.events))
		if !measured {
			return
		}
		key := &costs[0]
		for i := range ec.pend {
			if &ec.pend[i].costs[0] == key {
				ec.pend[i].n++
				return
			}
		}
		if len(ec.pend) >= 16 {
			for i := range ec.pend {
				c.flushExit(ec, &ec.pend[i])
			}
			ec.pend = ec.pend[:0]
		}
		ec.pend = append(ec.pend, pendEntry{costs: costs, n: 1})
		return
	}
	c.replayChainBlocks(tc, k, true, measured, penalties)
}

// exitChainFor lazily builds (once per exit point) the chain-timing record
// for a side exit at block k of tc: the event sequence of blocks 0..k with
// block k's terminator going the un-recorded way when it is a conditional
// branch (a ret side exit retires with its recorded direction).
func (c *Collector) exitChainFor(tc *traceChain, k int) *exitChain {
	if tc.exits == nil {
		tc.exits = make([]*exitChain, len(tc.blocks))
	}
	if ec := tc.exits[k]; ec != nil {
		return ec
	}
	ec := &exitChain{}
	tc.exits[k] = ec
	terms := make([]pentium.ChainTerm, 0, k+1)
	for i := 0; i <= k; i++ {
		bi := int(tc.blocks[i])
		ba := &c.blocks[bi]
		for j, pc := range ba.agg.PCs {
			ec.events = append(ec.events, chainEv{pc: pc, refsMem: ba.agg.IsMem[j]})
		}
		taken := tc.taken[i]
		if i == k && tc.termBr[i] {
			taken = !taken
		}
		if tpc := tc.termPC[i]; tpc >= 0 {
			ec.events = append(ec.events, chainEv{pc: tpc, taken: taken, refsMem: tc.termMem[i]})
		}
		terms = append(terms, pentium.ChainTerm{PC: tc.termPC[i], Taken: taken})
	}
	ec.ct = c.Model.NewChain(tc.blocks[:k+1], terms)
	return ec
}

// flushExit folds one exit schedule's pending batch into the counters.
func (c *Collector) flushExit(ec *exitChain, pe *pendEntry) {
	n := pe.n
	if n == 0 {
		return
	}
	pe.n = 0
	costs := pe.costs
	for i := range ec.events {
		c.tally(int(ec.events[i].pc), uint64(costs[i]), n)
	}
}

// replayChainBlocks retires blocks 0..k of the chain through the ordinary
// block path (fast block schedules where they apply), flipping block k's
// terminator direction when invert is set.
func (c *Collector) replayChainBlocks(tc *traceChain, k int, invert bool, measured bool, penalties []int32) {
	off := 0
	for i := 0; i <= k; i++ {
		n := int(tc.bodyMem[i])
		c.ObserveBlock(int(tc.blocks[i]), measured, penalties[off:off+n])
		off += n
		if tpc := tc.termPC[i]; tpc >= 0 {
			taken := tc.taken[i]
			if invert && i == k && tc.termBr[i] {
				taken = !taken
			}
			ev := vm.Event{
				PC:       int(tpc),
				Inst:     &c.Prog.Insts[tpc],
				Measured: measured,
				Taken:    taken,
			}
			if tc.termMem[i] {
				ev.MemPenalty = int(penalties[off])
				off++
			}
			c.Retire(ev)
		}
	}
}

// flushTrace folds one chain schedule's pending batch into the counters:
// every event of the iteration retired n times at its scheduled cost.
func (c *Collector) flushTrace(tc *traceChain, pe *pendEntry) {
	n := pe.n
	if n == 0 {
		return
	}
	pe.n = 0
	costs := pe.costs
	for i := range tc.events {
		c.tally(int(tc.events[i].pc), uint64(costs[i]), n)
	}
}

// flushTraces folds every pending chain batch; counters are only complete
// after.
func (c *Collector) flushTraces() {
	for _, tc := range c.traces {
		for j := range tc.pend {
			c.flushTrace(tc, &tc.pend[j])
		}
		for _, ec := range tc.exits {
			if ec == nil {
				continue
			}
			for j := range ec.pend {
				c.flushExit(ec, &ec.pend[j])
			}
		}
	}
}
