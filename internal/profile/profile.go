// Package profile is the VTune analog: it observes the retired instruction
// stream of a VM run, feeds the Pentium timing model, and accumulates the
// metrics the paper reports — dynamic and static instruction counts,
// Pentium II micro-ops, memory references, clock cycles, per-class and
// per-procedure cycle attribution, and the MMX instruction-category
// breakdown of Figure 1(a).
//
// Only instructions retired inside the program's profon/profoff region are
// counted, matching the paper's methodology of measuring the computation
// core while excluding initialization and I/O; cache and branch-predictor
// state still evolves outside the region, as VTune's whole-program
// simulation did.
package profile

import (
	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/pentium"
	"mmxdsp/internal/vm"
)

// Collector implements vm.Observer: it prices each event through the timing
// model and accumulates measured-region statistics.
type Collector struct {
	Model *pentium.Model
	Prog  *asm.Program

	// meta is the program's per-PC static metadata (class, uop count,
	// category, memory-reference predicate), computed once at link time and
	// indexed per event instead of re-derived.
	meta []isa.InstMeta

	dyn     uint64
	uops    uint64
	memRefs uint64
	cycles  uint64
	calls   uint64

	// Indexed by PC (program size is known up front).
	pcCounts []uint64
	pcCycles []uint64

	classCounts [isa.NumClasses]uint64
	classCycles [isa.NumClasses]uint64
	mmxCat      [5]uint64 // indexed by isa.MMXCategory
	opCounts    [isa.NumOps]uint64

	// blocks holds the per-block aggregate updates for ObserveBlock (see
	// block.go); traces the per-trace chain records for ObserveTrace (see
	// traceobs.go); fastEvents/perEvents split retired events by path.
	blocks     []blockAgg
	traces     []*traceChain
	fastEvents uint64
	perEvents  uint64

	// Run-length batch of per-event retirements: every measured counter
	// update is a pure function of (PC, cycle cost), and under block
	// dispatch consecutive Retire calls are the same loop terminator at
	// the same steady-state cost, so identical consecutive events fold
	// into one count flushed on change (or at Report).
	runPC   int32
	runCost uint32
	runN    uint64
}

// NewCollector builds a collector for one program run. The model should
// already be bound to prog; block-level observation degrades to per-event
// replay otherwise.
func NewCollector(prog *asm.Program, model *pentium.Model) *Collector {
	c := &Collector{
		Model:    model,
		Prog:     prog,
		meta:     prog.InstMeta(),
		pcCounts: make([]uint64, len(prog.Insts)),
		pcCycles: make([]uint64, len(prog.Insts)),
	}
	c.initBlocks()
	return c
}

// Retire implements vm.Observer.
func (c *Collector) Retire(ev vm.Event) {
	c.perEvents++
	cost := c.Model.Retire(ev)
	if !ev.Measured {
		return
	}
	if int32(ev.PC) == c.runPC && uint32(cost) == c.runCost && c.runN != 0 {
		c.runN++
		return
	}
	c.flushRun()
	c.runPC = int32(ev.PC)
	c.runCost = uint32(cost)
	c.runN = 1
}

// flushRun folds the pending run of identical retirements into the
// counters.
func (c *Collector) flushRun() {
	n := c.runN
	if n == 0 {
		return
	}
	c.runN = 0
	c.tally(int(c.runPC), uint64(c.runCost), n)
}

// tally applies n measured retirements of the instruction at pc, each
// charged cost cycles.
func (c *Collector) tally(pc int, cost uint64, n uint64) {
	md := &c.meta[pc]
	c.dyn += n
	c.cycles += cost * n
	c.uops += uint64(md.Uops) * n
	if md.RefsMem {
		c.memRefs += n
	}
	op := c.Prog.Insts[pc].Op
	cl := md.Class
	c.classCounts[cl] += n
	c.classCycles[cl] += cost * n
	c.mmxCat[md.Category] += n
	c.pcCounts[pc] += n
	c.pcCycles[pc] += cost * n
	c.opCounts[op] += n
	if op == isa.CALL {
		c.calls += n
	}
}

// Report summarizes one measured run. All ratios in the paper's tables are
// computed from these fields.
type Report struct {
	Name string

	DynamicInstructions uint64
	StaticInstructions  uint64
	Uops                uint64
	MemoryReferences    uint64
	Cycles              uint64
	Calls               uint64

	// MMX instruction-category counts (Figure 1a buckets).
	MMXPackUnpack uint64
	MMXArithmetic uint64
	MMXMoves      uint64
	MMXEmms       uint64

	// Cycle and count attribution.
	ClassCounts [isa.NumClasses]uint64
	ClassCycles [isa.NumClasses]uint64
	OpCounts    [isa.NumOps]uint64

	// Per-procedure flat (self) profile.
	Procs []ProcProfile

	// Pipeline and memory-system statistics (whole run).
	Pairs         uint64
	Branches      uint64
	Mispredicts   uint64
	CacheAccesses uint64
	L1Misses      uint64
	L2Misses      uint64
}

// ProcProfile is the flat profile of one procedure.
type ProcProfile struct {
	Name         string
	Cycles       uint64
	Instructions uint64
}

// Report builds the final report.
func (c *Collector) Report(name string) *Report {
	c.flushRun()
	c.flushBlocks()
	c.flushTraces()
	var static uint64
	for _, n := range c.pcCounts {
		if n > 0 {
			static++
		}
	}
	r := &Report{
		Name:                name,
		DynamicInstructions: c.dyn,
		StaticInstructions:  static,
		Uops:                c.uops,
		MemoryReferences:    c.memRefs,
		Cycles:              c.cycles,
		Calls:               c.calls,
		MMXPackUnpack:       c.mmxCat[isa.MMXPackUnpack],
		MMXArithmetic:       c.mmxCat[isa.MMXArithmetic],
		MMXMoves:            c.mmxCat[isa.MMXMove],
		MMXEmms:             c.mmxCat[isa.MMXEmms],
		ClassCounts:         c.classCounts,
		ClassCycles:         c.classCycles,
		OpCounts:            c.opCounts,
		Pairs:               c.Model.Pairs(),
		Branches:            c.Model.Branches(),
		Mispredicts:         c.Model.Mispredicts(),
	}
	// Aggregate per-procedure self cycles.
	agg := map[string]*ProcProfile{}
	for pc, n := range c.pcCounts {
		if n == 0 {
			continue
		}
		proc := c.Prog.ProcAt(pc)
		if proc == "" {
			proc = "(top)"
		}
		p := agg[proc]
		if p == nil {
			p = &ProcProfile{Name: proc}
			agg[proc] = p
		}
		p.Instructions += n
		p.Cycles += c.pcCycles[pc]
	}
	for _, p := range agg {
		r.Procs = append(r.Procs, *p)
	}
	sortProcs(r.Procs)
	return r
}

func sortProcs(ps []ProcProfile) {
	// Insertion sort by descending cycles (small N; avoids importing sort
	// for a custom comparator in this hot-free path).
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && (ps[j].Cycles > ps[j-1].Cycles ||
			(ps[j].Cycles == ps[j-1].Cycles && ps[j].Name < ps[j-1].Name)); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// MMXInstructions returns the total dynamic MMX instruction count.
func (r *Report) MMXInstructions() uint64 {
	return r.MMXPackUnpack + r.MMXArithmetic + r.MMXMoves + r.MMXEmms
}

// PercentMMX returns the share of dynamic instructions that are MMX, in
// percent (Table 2's "% MMX Instructions").
func (r *Report) PercentMMX() float64 {
	return pct(r.MMXInstructions(), r.DynamicInstructions)
}

// PercentMemRefs returns the share of dynamic instructions using any memory
// addressing mode, in percent (Table 2's "% Memory References").
func (r *Report) PercentMemRefs() float64 {
	return pct(r.MemoryReferences, r.DynamicInstructions)
}

// CallRetCycleShare returns the percentage of cycles spent in call and ret
// instructions (the paper quotes 23.88% for radar.mmx).
func (r *Report) CallRetCycleShare() float64 {
	cr := r.ClassCycles[isa.ClassCall] + r.ClassCycles[isa.ClassRet]
	return pct(cr, r.Cycles)
}

// MMXBreakdown returns each Figure 1(a) category as a percentage of all
// dynamic instructions, in the order pack/unpack, arithmetic, moves, emms.
func (r *Report) MMXBreakdown() [4]float64 {
	return [4]float64{
		pct(r.MMXPackUnpack, r.DynamicInstructions),
		pct(r.MMXArithmetic, r.DynamicInstructions),
		pct(r.MMXMoves, r.DynamicInstructions),
		pct(r.MMXEmms, r.DynamicInstructions),
	}
}

// PackUnpackShareOfMMX returns pack/unpack instructions as a percentage of
// MMX instructions (the paper quotes 20.5% for matvec).
func (r *Report) PackUnpackShareOfMMX() float64 {
	return pct(r.MMXPackUnpack, r.MMXInstructions())
}

func pct(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}
