package mem

import "fmt"

// Cache is one level of a set-associative LRU cache. Only tags are modeled;
// data always comes from the flat memory image. The model exists to charge
// miss penalties and report reference statistics, which is exactly what
// VTune's Pentium model did.
type Cache struct {
	lineShift uint32
	setMask   uint32
	ways      int
	// tags[set*ways+way] holds the line tag; lru holds per-way age
	// (0 = most recently used).
	tags  []uint32
	valid []bool
	lru   []uint8
	// mruLine[set] is the line tag (+1, so 0 means empty) of each set's
	// most-recently-used way, checked first on Access. Sequential code
	// re-references the same line heavily, so this single compare resolves
	// most hits without the associative scan; hitting the MRU way leaves
	// the LRU ordering unchanged, so the fast path is state-identical to
	// the full search. Hierarchy.Access probes it directly for the L1.
	mruLine []uint32
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// CheckGeometry validates a cache geometry without building it: sizeBytes,
// lineBytes and the implied set count must be powers of two with at least
// one set, ways at least 1. Request-driven configurations (ablation sweeps
// over cache geometry) validate here and answer 400 instead of letting
// NewCache panic the daemon.
func CheckGeometry(sizeBytes, ways, lineBytes int) error {
	if ways < 1 {
		return fmt.Errorf("cache ways must be >= 1, got %d", ways)
	}
	if !isPow2(lineBytes) {
		return fmt.Errorf("cache line bytes must be a power of two, got %d", lineBytes)
	}
	if !isPow2(sizeBytes) {
		return fmt.Errorf("cache size must be a power of two, got %d", sizeBytes)
	}
	sets := sizeBytes / (ways * lineBytes)
	if sets < 1 || sets*ways*lineBytes != sizeBytes || !isPow2(sets) {
		return fmt.Errorf(
			"%d bytes / (%d ways * %d-byte lines) does not yield a power-of-two set count",
			sizeBytes, ways, lineBytes)
	}
	return nil
}

// NewCache builds a cache of sizeBytes capacity with the given associativity
// and line size. The geometry must be internally consistent — sizeBytes,
// lineBytes and the implied set count must be powers of two, with at least
// one set — or NewCache panics; a malformed cache would silently alias sets
// through the bit-mask indexing, which is far worse than failing loudly at
// construction.
func NewCache(sizeBytes, ways, lineBytes int) *Cache {
	if err := CheckGeometry(sizeBytes, ways, lineBytes); err != nil {
		panic("mem: NewCache: " + err.Error())
	}
	sets := sizeBytes / (ways * lineBytes)
	c := &Cache{
		ways:    ways,
		tags:    make([]uint32, sets*ways),
		valid:   make([]bool, sets*ways),
		lru:     make([]uint8, sets*ways),
		mruLine: make([]uint32, sets),
	}
	for lineBytes > 1 {
		lineBytes >>= 1
		c.lineShift++
	}
	c.setMask = uint32(sets - 1)
	return c
}

// Access touches the line containing addr and reports whether it hit.
// On a miss the line is allocated, evicting the LRU way.
func (c *Cache) Access(addr uint32) bool {
	line := addr >> c.lineShift
	set := line & c.setMask
	// Fast path: the most-recently-used line of the set. Touching the MRU
	// way is a no-op on the LRU ages, so nothing else needs updating.
	if c.mruLine[set] == line+1 {
		return true
	}
	return c.accessSlow(line, set)
}

// accessSlow is the associative search and fill behind the MRU probe.
func (c *Cache) accessSlow(line, set uint32) bool {
	base := int(set) * c.ways
	// Search for a hit.
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.touch(base, w)
			c.mruLine[set] = line + 1
			return true
		}
	}
	// Miss: fill the LRU (or first invalid) way.
	victim := 0
	var worst uint8
	for w := 0; w < c.ways; w++ {
		i := base + w
		if !c.valid[i] {
			victim = w
			break
		}
		if c.lru[i] >= worst {
			worst = c.lru[i]
			victim = w
		}
	}
	i := base + victim
	c.tags[i] = line
	c.valid[i] = true
	// A filled line is most recently used; every other way ages.
	for w := 0; w < c.ways; w++ {
		if w != victim && c.lru[base+w] < uint8(c.ways-1) {
			c.lru[base+w]++
		}
	}
	c.lru[i] = 0
	c.mruLine[set] = line + 1
	return false
}

func (c *Cache) touch(base, way int) {
	old := c.lru[base+way]
	for w := 0; w < c.ways; w++ {
		if c.lru[base+w] < old {
			c.lru[base+w]++
		}
	}
	c.lru[base+way] = 0
}

// Reset invalidates every line.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
	}
	for i := range c.mruLine {
		c.mruLine[i] = 0
	}
}

// Penalties configures the extra cycles charged per access outcome. The
// defaults follow the paper's quoted Pentium figures, interpreted
// additively: an L1 miss pays the data-cache-miss detection cost plus the
// L2 access; an L2 miss additionally pays the off-chip cost.
type Penalties struct {
	DCacheMiss int // charged on any L1 miss ("three cycles for a data cache miss")
	L2Access   int // additionally charged when the line comes from L2 ("8 cycles for an L2 access")
	L2Miss     int // additionally charged when L2 also misses ("15 cycles for an L2 miss")
}

// DefaultPenalties returns the paper's Pentium penalties.
func DefaultPenalties() Penalties { return Penalties{DCacheMiss: 3, L2Access: 8, L2Miss: 15} }

// HierarchyStats accumulates reference counts.
type HierarchyStats struct {
	Accesses uint64
	L1Misses uint64
	L2Misses uint64
}

// Hierarchy is the L1-data + unified-L2 cache pair with penalty accounting.
// A nil *Hierarchy is valid and models a perfect (always-hit) memory system,
// which the ablation benchmarks use.
type Hierarchy struct {
	L1, L2 *Cache
	Pen    Penalties
	Stats  HierarchyStats
}

// NewHierarchy builds the default Pentium-with-MMX hierarchy:
// 16 KB 4-way L1 data cache and 512 KB 4-way L2, 32-byte lines.
func NewHierarchy() *Hierarchy {
	return NewHierarchySized(16*1024, 4, 512*1024, 4, 32, DefaultPenalties())
}

// NewHierarchySized builds a hierarchy with explicit geometry and
// penalties — the ablation-sweep entry point. Both levels share one line
// size, matching the Pentium. Geometry must already satisfy CheckGeometry
// for both levels (NewCache panics otherwise).
func NewHierarchySized(l1Size, l1Ways, l2Size, l2Ways, lineBytes int, pen Penalties) *Hierarchy {
	return &Hierarchy{
		L1:  NewCache(l1Size, l1Ways, lineBytes),
		L2:  NewCache(l2Size, l2Ways, lineBytes),
		Pen: pen,
	}
}

// Access models one data reference to addr and returns the extra cycles to
// charge beyond the instruction's base latency. The L1 MRU-line probe is
// open-coded here so the overwhelmingly common hit resolves with a single
// compare and no further call.
func (h *Hierarchy) Access(addr uint32) int {
	if h == nil {
		return 0
	}
	h.Stats.Accesses++
	l1 := h.L1
	line := addr >> l1.lineShift
	set := line & l1.setMask
	if l1.mruLine[set] == line+1 {
		return 0
	}
	return h.hierSlow(addr, line, set)
}

// hierSlow finishes an access that missed the L1 MRU probe.
func (h *Hierarchy) hierSlow(addr, line, set uint32) int {
	if h.L1.accessSlow(line, set) {
		return 0
	}
	h.Stats.L1Misses++
	extra := h.Pen.DCacheMiss + h.Pen.L2Access
	if !h.L2.Access(addr) {
		h.Stats.L2Misses++
		extra += h.Pen.L2Miss
	}
	return extra
}

// Reset clears both cache levels and the statistics.
func (h *Hierarchy) Reset() {
	if h == nil {
		return
	}
	h.L1.Reset()
	h.L2.Reset()
	h.Stats = HierarchyStats{}
}
