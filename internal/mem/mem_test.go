package mem

import (
	"testing"
	"testing/quick"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New(4096)
	f := func(addrRaw uint16, v uint64) bool {
		addr := uint32(addrRaw) % 4000
		if !m.StoreU64(addr, v) {
			return false
		}
		got, ok := m.LoadU64(addr)
		if !ok || got != v {
			return false
		}
		lo32, _ := m.LoadU32(addr)
		hi32, _ := m.LoadU32(addr + 4)
		if uint64(lo32)|uint64(hi32)<<32 != v {
			return false
		}
		lo16, _ := m.LoadU16(addr)
		b0, _ := m.LoadU8(addr)
		return uint16(v) == lo16 && uint8(v) == b0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New(16)
	m.StoreU32(0, 0x0A0B0C0D)
	if b, _ := m.LoadU8(0); b != 0x0D {
		t.Errorf("byte 0 = %#x, want 0x0d", b)
	}
	if b, _ := m.LoadU8(3); b != 0x0A {
		t.Errorf("byte 3 = %#x, want 0x0a", b)
	}
}

func TestBoundsChecking(t *testing.T) {
	m := New(8)
	if _, ok := m.LoadU64(1); ok {
		t.Error("LoadU64(1) in 8-byte memory must fail (1+8 > 8)")
	}
	if _, ok := m.LoadU64(0); !ok {
		t.Error("LoadU64(0) must succeed")
	}
	if _, ok := m.LoadU32(5); ok {
		t.Error("LoadU32(5) must fail")
	}
	if m.StoreU16(7, 1) {
		t.Error("StoreU16(7) must fail")
	}
	if _, ok := m.LoadU8(8); ok {
		t.Error("LoadU8(8) must fail")
	}
	// Overflow-safe: addr near 2^32 must not wrap.
	if _, ok := m.LoadU32(0xFFFFFFFE); ok {
		t.Error("wrapping load must fail")
	}
}

func TestSliceHelpers(t *testing.T) {
	m := New(256)
	in := []int16{1, -1, 32767, -32768}
	if !m.WriteInt16s(8, in) {
		t.Fatal("WriteInt16s failed")
	}
	out, ok := m.ReadInt16s(8, 4)
	if !ok {
		t.Fatal("ReadInt16s failed")
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("int16[%d] = %d, want %d", i, out[i], in[i])
		}
	}
	d := []int32{1 << 30, -5}
	if !m.WriteInt32s(100, d) {
		t.Fatal("WriteInt32s failed")
	}
	dd, _ := m.ReadInt32s(100, 2)
	if dd[0] != d[0] || dd[1] != d[1] {
		t.Errorf("int32 round trip = %v", dd)
	}
	if m.WriteInt16s(254, in) {
		t.Error("out-of-range WriteInt16s must fail")
	}
	bs := []byte{9, 8, 7}
	m.WriteBytes(0, bs)
	got, _ := m.ReadBytes(0, 3)
	if got[0] != 9 || got[2] != 7 {
		t.Errorf("bytes round trip = %v", got)
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(1024, 2, 32)
	if c.Access(0) {
		t.Error("first access must miss")
	}
	if !c.Access(0) {
		t.Error("second access must hit")
	}
	if !c.Access(31) {
		t.Error("same line must hit")
	}
	if c.Access(32) {
		t.Error("next line must miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 32-byte lines, 2 sets: set stride is 64 bytes.
	c := NewCache(128, 2, 32)
	a, b2, d := uint32(0), uint32(64), uint32(128) // all map to set 0
	c.Access(a)
	c.Access(b2)
	c.Access(d) // evicts a (LRU)
	if c.Access(a) {
		t.Error("a should have been evicted")
	}
	// a's reload evicted b2 (d was more recently used than b2).
	if !c.Access(d) {
		t.Error("d should still be resident")
	}
	if c.Access(b2) {
		t.Error("b2 should have been evicted by a's reload")
	}
}

func TestCacheWaysRespected(t *testing.T) {
	// 4-way: four distinct lines in one set must all be resident.
	c := NewCache(4*32*4, 4, 32) // 4 sets, 4 ways
	stride := uint32(4 * 32)
	for i := uint32(0); i < 4; i++ {
		c.Access(i * stride)
	}
	for i := uint32(0); i < 4; i++ {
		if !c.Access(i * stride) {
			t.Errorf("line %d evicted despite 4 ways", i)
		}
	}
}

func TestHierarchyPenalties(t *testing.T) {
	h := NewHierarchy()
	p := h.Pen
	// Cold access: L1 and L2 both miss.
	if got := h.Access(0); got != p.DCacheMiss+p.L2Access+p.L2Miss {
		t.Errorf("cold access penalty = %d", got)
	}
	// Warm: L1 hit.
	if got := h.Access(0); got != 0 {
		t.Errorf("warm access penalty = %d, want 0", got)
	}
	if h.Stats.Accesses != 2 || h.Stats.L1Misses != 1 || h.Stats.L2Misses != 1 {
		t.Errorf("stats = %+v", h.Stats)
	}
	// Evict from L1 but not L2: walk 5 lines mapping to one L1 set.
	h.Reset()
	if h.Stats.Accesses != 0 {
		t.Error("reset must clear stats")
	}
	l1Stride := uint32(16 * 1024 / 4) // L1 set span
	for i := uint32(0); i <= 4; i++ {
		h.Access(i * l1Stride)
	}
	// line 0 was evicted from L1 but 512KB L2 still holds it.
	if got := h.Access(0); got != p.DCacheMiss+p.L2Access {
		t.Errorf("L2-hit penalty = %d, want %d", got, p.DCacheMiss+p.L2Access)
	}
}

func TestNewCacheRejectsBadGeometry(t *testing.T) {
	cases := []struct {
		name                      string
		sizeBytes, ways, lineByte int
	}{
		{"zero ways", 1024, 0, 32},
		{"negative ways", 1024, -1, 32},
		{"non-pow2 line", 1024, 2, 24},
		{"zero line", 1024, 2, 0},
		{"non-pow2 size", 1000, 2, 32},
		{"zero sets", 64, 4, 32},
		{"ways not dividing", 1024, 3, 32},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache(%d, %d, %d) did not panic",
						tc.sizeBytes, tc.ways, tc.lineByte)
				}
			}()
			NewCache(tc.sizeBytes, tc.ways, tc.lineByte)
		})
	}
}

// refCache is a brutally simple reference model: per-set slices ordered
// most-recent-first. It validates that the MRU fast path in Cache.Access
// leaves hit/miss behavior identical to plain LRU.
type refCache struct {
	lineShift uint32
	sets      uint32
	ways      int
	lines     [][]uint32
}

func newRefCache(sizeBytes, ways, lineBytes int) *refCache {
	r := &refCache{ways: ways}
	for lineBytes > 1 {
		lineBytes >>= 1
		r.lineShift++
	}
	r.sets = uint32(sizeBytes / (ways * (1 << r.lineShift)))
	r.lines = make([][]uint32, r.sets)
	return r
}

func (r *refCache) access(addr uint32) bool {
	line := addr >> r.lineShift
	set := line & (r.sets - 1)
	s := r.lines[set]
	for i, l := range s {
		if l == line {
			copy(s[1:i+1], s[:i])
			s[0] = line
			return true
		}
	}
	if len(s) < r.ways {
		s = append(s, 0)
	}
	copy(s[1:], s)
	s[0] = line
	r.lines[set] = s
	return false
}

func TestCacheMatchesReferenceLRU(t *testing.T) {
	c := NewCache(1024, 4, 32) // 8 sets
	r := newRefCache(1024, 4, 32)
	// Deterministic pseudo-random walk mixing re-references and conflicts.
	x := uint32(12345)
	for i := 0; i < 20000; i++ {
		x = x*1664525 + 1013904223
		addr := x % 4096 // 128 lines over 8 sets: heavy conflict traffic
		if got, want := c.Access(addr), r.access(addr); got != want {
			t.Fatalf("access %d (addr %#x): Cache=%v ref=%v", i, addr, got, want)
		}
	}
}

func TestNilHierarchyIsPerfect(t *testing.T) {
	var h *Hierarchy
	if h.Access(1234) != 0 {
		t.Error("nil hierarchy must charge nothing")
	}
	h.Reset() // must not panic
}
