// Package mem provides the flat little-endian memory image executed against
// by the virtual machine, plus a two-level data-cache model whose miss
// penalties follow the figures the paper quotes for the Pentium
// ("three cycles for a data cache miss, 8 cycles for an L2 access, and
// 15 cycles for an L2 miss").
package mem

import "encoding/binary"

// Memory is a byte-addressable little-endian memory image.
type Memory struct {
	b []byte
}

// New allocates a zeroed memory image of the given size.
func New(size uint32) *Memory { return &Memory{b: make([]byte, size)} }

// Size returns the image size in bytes.
func (m *Memory) Size() uint32 { return uint32(len(m.b)) }

// Bytes exposes the underlying image (for loaders and result extraction).
func (m *Memory) Bytes() []byte { return m.b }

func (m *Memory) in(addr uint32, n uint32) bool {
	return uint64(addr)+uint64(n) <= uint64(len(m.b))
}

// LoadU8 reads a byte. ok is false on an out-of-range access.
func (m *Memory) LoadU8(addr uint32) (uint8, bool) {
	if !m.in(addr, 1) {
		return 0, false
	}
	return m.b[addr], true
}

// LoadU16 reads a little-endian 16-bit value.
func (m *Memory) LoadU16(addr uint32) (uint16, bool) {
	if !m.in(addr, 2) {
		return 0, false
	}
	return binary.LittleEndian.Uint16(m.b[addr:]), true
}

// LoadU32 reads a little-endian 32-bit value.
func (m *Memory) LoadU32(addr uint32) (uint32, bool) {
	if !m.in(addr, 4) {
		return 0, false
	}
	return binary.LittleEndian.Uint32(m.b[addr:]), true
}

// LoadU64 reads a little-endian 64-bit value.
func (m *Memory) LoadU64(addr uint32) (uint64, bool) {
	if !m.in(addr, 8) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(m.b[addr:]), true
}

// StoreU8 writes a byte.
func (m *Memory) StoreU8(addr uint32, v uint8) bool {
	if !m.in(addr, 1) {
		return false
	}
	m.b[addr] = v
	return true
}

// StoreU16 writes a little-endian 16-bit value.
func (m *Memory) StoreU16(addr uint32, v uint16) bool {
	if !m.in(addr, 2) {
		return false
	}
	binary.LittleEndian.PutUint16(m.b[addr:], v)
	return true
}

// StoreU32 writes a little-endian 32-bit value.
func (m *Memory) StoreU32(addr uint32, v uint32) bool {
	if !m.in(addr, 4) {
		return false
	}
	binary.LittleEndian.PutUint32(m.b[addr:], v)
	return true
}

// StoreU64 writes a little-endian 64-bit value.
func (m *Memory) StoreU64(addr uint32, v uint64) bool {
	if !m.in(addr, 8) {
		return false
	}
	binary.LittleEndian.PutUint64(m.b[addr:], v)
	return true
}

// WriteInt16s copies a []int16 into memory at addr (little-endian).
func (m *Memory) WriteInt16s(addr uint32, v []int16) bool {
	if !m.in(addr, uint32(2*len(v))) {
		return false
	}
	for i, x := range v {
		binary.LittleEndian.PutUint16(m.b[addr+uint32(2*i):], uint16(x))
	}
	return true
}

// ReadInt16s copies n int16 values out of memory at addr.
func (m *Memory) ReadInt16s(addr uint32, n int) ([]int16, bool) {
	if !m.in(addr, uint32(2*n)) {
		return nil, false
	}
	out := make([]int16, n)
	for i := range out {
		out[i] = int16(binary.LittleEndian.Uint16(m.b[addr+uint32(2*i):]))
	}
	return out, true
}

// WriteInt32s copies a []int32 into memory at addr.
func (m *Memory) WriteInt32s(addr uint32, v []int32) bool {
	if !m.in(addr, uint32(4*len(v))) {
		return false
	}
	for i, x := range v {
		binary.LittleEndian.PutUint32(m.b[addr+uint32(4*i):], uint32(x))
	}
	return true
}

// ReadInt32s copies n int32 values out of memory at addr.
func (m *Memory) ReadInt32s(addr uint32, n int) ([]int32, bool) {
	if !m.in(addr, uint32(4*n)) {
		return nil, false
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(m.b[addr+uint32(4*i):]))
	}
	return out, true
}

// WriteBytes copies raw bytes into memory at addr.
func (m *Memory) WriteBytes(addr uint32, v []byte) bool {
	if !m.in(addr, uint32(len(v))) {
		return false
	}
	copy(m.b[addr:], v)
	return true
}

// ReadBytes copies n raw bytes out of memory at addr.
func (m *Memory) ReadBytes(addr uint32, n int) ([]byte, bool) {
	if !m.in(addr, uint32(n)) {
		return nil, false
	}
	out := make([]byte, n)
	copy(out, m.b[addr:])
	return out, true
}
