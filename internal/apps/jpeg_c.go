package apps

import (
	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
)

// buildJpegC is the IJG-style optimized scalar encoder core: table-based
// color conversion (no multiplies), the AAN fast DCT (five multiplies per
// 8-point pass) and reciprocal quantization — the "highly optimized"
// compiled code that the paper found hard to beat with library calls.
func buildJpegC() (*asm.Program, error) {
	b := asm.NewBuilder("jpeg.c")
	placeJpegCommon(b)

	// Color-conversion tables, channel-major: 9 tables of 256 dwords.
	ty, tcb, tcr := ccTables()
	var flat []int32
	for _, t := range [][3][]int32{ty, tcb, tcr} {
		for ch := 0; ch < 3; ch++ {
			flat = append(flat, t[ch]...)
		}
	}
	b.Dwords("cctab", flat)
	recips, biases := jpegRecipsC()
	b.Words("recips", recips[:])
	b.Words("biases", biases[:])
	// AAN temporaries.
	b.Dwords("t0", make([]int32, 8)) // t0..t7 at offsets 0..28
	b.Dwords("z2v", []int32{0})
	b.Dwords("z5v", []int32{0})

	b.Proc("main")
	b.I(isa.PROFON)
	emitJpegInit(b)
	emitCall0(b, "colorconv_c")
	emitBlockLoop(b, func() {
		emitCall0(b, "extract_block")
		emitCall0(b, "fdct_aan")
		emitCall0(b, "quant_c")
		emitCall0(b, "rle_block")
	})
	b.I(isa.PROFOFF)
	b.I(isa.HALT)

	// --- colorconv_c: whole-image table-based conversion.
	b.Proc("colorconv_c")
	b.I(isa.MOV, asm.R(isa.ESI), asm.ImmSym("img", 0))
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(0)) // pixel index
	b.Label("cc.pix")
	b.I(isa.MOVZXB, asm.R(isa.EAX), asm.MemB(isa.ESI, 0)) // R
	b.I(isa.MOVZXB, asm.R(isa.EBX), asm.MemB(isa.ESI, 1)) // G
	b.I(isa.MOVZXB, asm.R(isa.ECX), asm.MemB(isa.ESI, 2)) // B
	for ch, plane := range []string{"planeY", "planeCb", "planeCr"} {
		base := int32(ch * 3 * 1024)
		b.I(isa.MOV, asm.R(isa.EDX), asm.SymIdx(isa.SizeD, "cctab", isa.EAX, 4, base))
		b.I(isa.ADD, asm.R(isa.EDX), asm.SymIdx(isa.SizeD, "cctab", isa.EBX, 4, base+1024))
		b.I(isa.ADD, asm.R(isa.EDX), asm.SymIdx(isa.SizeD, "cctab", isa.ECX, 4, base+2048))
		b.I(isa.SAR, asm.R(isa.EDX), asm.Imm(16))
		if ch == 0 {
			b.I(isa.SUB, asm.R(isa.EDX), asm.Imm(128))
		}
		b.I(isa.MOV, asm.SymIdx(isa.SizeD, plane, isa.EBP, 4, 0), asm.R(isa.EDX))
	}
	b.I(isa.ADD, asm.R(isa.ESI), asm.Imm(3))
	b.I(isa.INC, asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.EBP), asm.Imm(jpgW*jpgH))
	b.J(isa.JL, "cc.pix")
	b.Ret()

	// --- fdct_aan: 2-D AAN on blk32 (rows then columns).
	b.Proc("fdct_aan")
	for r := 0; r < 8; r++ {
		b.I(isa.MOV, asm.R(isa.EBP), asm.ImmSym("blk32", int64(32*r)))
		b.I(isa.PUSH, asm.R(isa.EBP))
		b.Call("aan_row")
		b.I(isa.ADD, asm.R(isa.ESP), asm.Imm(4))
	}
	for c := 0; c < 8; c++ {
		b.I(isa.MOV, asm.R(isa.EBP), asm.ImmSym("blk32", int64(4*c)))
		b.I(isa.PUSH, asm.R(isa.EBP))
		b.Call("aan_col")
		b.I(isa.ADD, asm.R(isa.ESP), asm.Imm(4))
	}
	b.Ret()

	emitAANProc(b, "aan_row", 4)
	emitAANProc(b, "aan_col", 32)

	// --- quant_c: qcoef[k] = ((blk32[k] +- bias[k]) * recips[k]) >> 15.
	b.Proc("quant_c")
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
	b.Label("q.loop")
	b.I(isa.MOV, asm.R(isa.EAX), asm.SymIdx(isa.SizeD, "blk32", isa.ECX, 4, 0))
	// Quantize the magnitude and restore the sign (symmetric truncation).
	b.I(isa.MOV, asm.R(isa.EDI), asm.Imm(0)) // sign flag
	b.I(isa.TEST, asm.R(isa.EAX), asm.R(isa.EAX))
	b.J(isa.JNS, "q.pos")
	b.I(isa.NEG, asm.R(isa.EAX))
	b.I(isa.MOV, asm.R(isa.EDI), asm.Imm(1))
	b.Label("q.pos")
	b.I(isa.MOVSXW, asm.R(isa.EDX), asm.SymIdx(isa.SizeW, "biases", isa.ECX, 2, 0))
	b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.EDX))
	b.I(isa.MOVSXW, asm.R(isa.EDX), asm.SymIdx(isa.SizeW, "recips", isa.ECX, 2, 0))
	b.I(isa.IMUL, asm.R(isa.EAX), asm.R(isa.EDX))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(15))
	b.I(isa.TEST, asm.R(isa.EDI), asm.R(isa.EDI))
	b.J(isa.JE, "q.store")
	b.I(isa.NEG, asm.R(isa.EAX))
	b.Label("q.store")
	b.I(isa.MOV, asm.SymIdx(isa.SizeW, "qcoef", isa.ECX, 2, 0), asm.R(isa.EAX))
	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(64))
	b.J(isa.JL, "q.loop")
	b.Ret()

	emitRleProc(b)
	emitExtractProc(b)

	return b.Link()
}

// emitCall0 calls a zero-argument procedure.
func emitCall0(b *asm.Builder, proc string) { b.Call(proc) }

// emitAANProc emits one AAN 8-point pass over int32 data at [arg0] with
// the given element stride in bytes, following jfdctfst.c exactly.
func emitAANProc(b *asm.Builder, name string, stride int32) {
	x := func(i int32) isa.Operand { return asm.MemD(isa.EBP, i*stride) }
	t := func(i int32) isa.Operand { return asm.Sym(isa.SizeD, "t0", 4*i) }

	b.Proc(name)
	b.I(isa.MOV, asm.R(isa.EBP), asm.MemD(isa.ESP, 4)) // vector pointer

	// Even/odd fold: t0..t7.
	for i := int32(0); i < 4; i++ {
		b.I(isa.MOV, asm.R(isa.EAX), x(i))
		b.I(isa.MOV, asm.R(isa.EDX), x(7-i))
		b.I(isa.MOV, asm.R(isa.ECX), asm.R(isa.EAX))
		b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.EDX)) // tmp_i
		b.I(isa.SUB, asm.R(isa.ECX), asm.R(isa.EDX)) // tmp_{7-i}
		b.I(isa.MOV, t(i), asm.R(isa.EAX))
		b.I(isa.MOV, t(7-i), asm.R(isa.ECX))
	}

	// Even part.
	b.I(isa.MOV, asm.R(isa.EAX), t(0))
	b.I(isa.ADD, asm.R(isa.EAX), t(3)) // tmp10
	b.I(isa.MOV, asm.R(isa.EBX), t(0))
	b.I(isa.SUB, asm.R(isa.EBX), t(3)) // tmp13
	b.I(isa.MOV, asm.R(isa.ECX), t(1))
	b.I(isa.ADD, asm.R(isa.ECX), t(2)) // tmp11
	b.I(isa.MOV, asm.R(isa.EDX), t(1))
	b.I(isa.SUB, asm.R(isa.EDX), t(2)) // tmp12
	b.I(isa.MOV, asm.R(isa.EDI), asm.R(isa.EAX))
	b.I(isa.ADD, asm.R(isa.EDI), asm.R(isa.ECX))
	b.I(isa.MOV, x(0), asm.R(isa.EDI)) // out0
	b.I(isa.SUB, asm.R(isa.EAX), asm.R(isa.ECX))
	b.I(isa.MOV, x(4), asm.R(isa.EAX)) // out4
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EDX))
	b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.EBX))
	b.I(isa.IMUL, asm.R(isa.EAX), asm.Imm(aan0_707))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(8)) // z1
	b.I(isa.MOV, asm.R(isa.EDI), asm.R(isa.EBX))
	b.I(isa.ADD, asm.R(isa.EDI), asm.R(isa.EAX))
	b.I(isa.MOV, x(2), asm.R(isa.EDI)) // out2
	b.I(isa.SUB, asm.R(isa.EBX), asm.R(isa.EAX))
	b.I(isa.MOV, x(6), asm.R(isa.EBX)) // out6

	// Odd part.
	b.I(isa.MOV, asm.R(isa.EAX), t(4))
	b.I(isa.ADD, asm.R(isa.EAX), t(5)) // tmp10'
	b.I(isa.MOV, asm.R(isa.ECX), t(5))
	b.I(isa.ADD, asm.R(isa.ECX), t(6)) // tmp11'
	b.I(isa.MOV, asm.R(isa.EDX), t(6))
	b.I(isa.ADD, asm.R(isa.EDX), t(7)) // tmp12'
	b.I(isa.MOV, asm.R(isa.EBX), asm.R(isa.EAX))
	b.I(isa.SUB, asm.R(isa.EBX), asm.R(isa.EDX))
	b.I(isa.IMUL, asm.R(isa.EBX), asm.Imm(aan0_382))
	b.I(isa.SAR, asm.R(isa.EBX), asm.Imm(8)) // z5
	b.I(isa.MOV, asm.Sym(isa.SizeD, "z5v", 0), asm.R(isa.EBX))
	b.I(isa.IMUL, asm.R(isa.EAX), asm.Imm(aan0_541))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(8))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Sym(isa.SizeD, "z5v", 0)) // z2
	b.I(isa.MOV, asm.Sym(isa.SizeD, "z2v", 0), asm.R(isa.EAX))
	b.I(isa.IMUL, asm.R(isa.EDX), asm.Imm(aan1_306))
	b.I(isa.SAR, asm.R(isa.EDX), asm.Imm(8))
	b.I(isa.ADD, asm.R(isa.EDX), asm.Sym(isa.SizeD, "z5v", 0)) // z4 (edx)
	b.I(isa.IMUL, asm.R(isa.ECX), asm.Imm(aan0_707))
	b.I(isa.SAR, asm.R(isa.ECX), asm.Imm(8)) // z3 (ecx)
	b.I(isa.MOV, asm.R(isa.EAX), t(7))
	b.I(isa.MOV, asm.R(isa.EBX), asm.R(isa.EAX))
	b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.ECX)) // z11
	b.I(isa.SUB, asm.R(isa.EBX), asm.R(isa.ECX)) // z13
	b.I(isa.MOV, asm.R(isa.ECX), asm.R(isa.EBX))
	b.I(isa.ADD, asm.R(isa.ECX), asm.Sym(isa.SizeD, "z2v", 0))
	b.I(isa.MOV, x(5), asm.R(isa.ECX)) // out5
	b.I(isa.SUB, asm.R(isa.EBX), asm.Sym(isa.SizeD, "z2v", 0))
	b.I(isa.MOV, x(3), asm.R(isa.EBX)) // out3
	b.I(isa.MOV, asm.R(isa.ECX), asm.R(isa.EAX))
	b.I(isa.ADD, asm.R(isa.ECX), asm.R(isa.EDX))
	b.I(isa.MOV, x(1), asm.R(isa.ECX)) // out1
	b.I(isa.SUB, asm.R(isa.EAX), asm.R(isa.EDX))
	b.I(isa.MOV, x(7), asm.R(isa.EAX)) // out7
	b.Ret()
}
