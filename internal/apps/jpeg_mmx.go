package apps

import (
	"mmxdsp/internal/asm"
	"mmxdsp/internal/core"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/mmxlib"
	"mmxdsp/internal/vm"
)

// buildJpegMMX is the library-call version: nsColorConv for the color
// conversion, sixteen nsDct8 calls per block (the library has no 2-D DCT)
// with pack/widen staging around every call because the application keeps
// its planes in 32-bit ints, and nsQuant for quantization. The staging,
// transposes and per-row calls are exactly the overheads the paper blames
// for jpeg.mmx's slowdown.
func buildJpegMMX() (*asm.Program, error) { return buildJpegMMXVariant(false) }

// BuildJpegMMX2D is the "what if the library had a 2-D DCT" variant the
// paper's conclusion asks for: one fused nsDct2D call per block replaces
// the sixteen 1-D calls, transposes and per-row staging. Bit-identical
// output; used by BenchmarkAblationDct2D.
func BuildJpegMMX2D() (*asm.Program, error) { return buildJpegMMXVariant(true) }

// JPEGMMX2D returns the fused-DCT variant as a runnable benchmark.
func JPEGMMX2D() core.Benchmark {
	return core.Benchmark{
		Base: "jpeg2d", Version: core.VersionMMX, Kind: core.KindApplication,
		Descr: "jpeg.mmx with a fused 2-D DCT library call (paper's recommendation)",
		Build: BuildJpegMMX2D,
		Check: func(c *vm.CPU) error {
			recips, biases := jpegRecipsMMX()
			want := jpegModel(jpegInput(), ccMMXModel, dctMMXModel, recips, biases)
			return checkStream(c, want, "jpeg2d.mmx")
		},
	}
}

func buildJpegMMXVariant(fused2D bool) (*asm.Program, error) {
	name := "jpeg.mmx"
	if fused2D {
		name = "jpeg2d.mmx"
	}
	b := asm.NewBuilder(name)
	placeJpegCommon(b)
	mmxlib.EmitColorConv(b)
	mmxlib.EmitQuantRecip(b)
	if fused2D {
		mmxlib.EmitDct2D(b)
		mmxlib.Dct2DScratch(b)
	} else {
		mmxlib.EmitDct8(b)
	}

	b.Words("cccoef", mmxlib.ColorConvCoefs())
	b.Words("basis", mmxlib.DCTBasisQuads())
	recips, biases := jpegRecipsMMX()
	b.Words("recipsm", recips[:])
	b.Words("biasm", biases[:])
	n := jpgW * jpgH
	b.Reserve("y16", 2*n)
	b.Reserve("cb16", 2*n)
	b.Reserve("cr16", 2*n)
	b.Words("dctin", make([]int16, 8))
	b.Words("dctout", make([]int16, 8))
	b.Words("freq16", make([]int16, 64))
	if fused2D {
		b.Words("blkin16", make([]int16, 64))
		b.Words("dct2dtmp", make([]int16, 64))
	}

	b.Entry()
	b.Proc("main")
	b.I(isa.PROFON)
	emitJpegInit(b)

	// Color conversion through the library (one call), then widen each
	// 16-bit plane into the application's 32-bit planes.
	emit.Call(b, "nsColorConv", asm.ImmSym("img", 0), asm.Imm(jpgW*jpgH),
		asm.ImmSym("y16", 0), asm.ImmSym("cb16", 0), asm.ImmSym("cr16", 0),
		asm.ImmSym("cccoef", 0))
	b.I(isa.EMMS)
	for _, p := range [][2]string{{"planeY", "y16"}, {"planeCb", "cb16"}, {"planeCr", "cr16"}} {
		emit.Call(b, "widen_plane", asm.ImmSym(p[0], 0), asm.ImmSym(p[1], 0),
			asm.Imm(jpgW*jpgH))
	}

	emitBlockLoop(b, func() {
		emitCall0(b, "extract_block")
		emitCall0(b, "fdct_lib")
		emit.Call(b, "nsQuant", asm.ImmSym("freq16", 0), asm.ImmSym("recipsm", 0),
			asm.ImmSym("qcoef", 0), asm.Imm(64), asm.ImmSym("biasm", 0))
		b.I(isa.EMMS)
		emitCall0(b, "rle_block")
	})
	b.I(isa.PROFOFF)
	b.I(isa.HALT)

	// --- widen_plane(dst32, src16, n)
	b.Proc("widen_plane")
	emit.LoadArg(b, isa.EDI, 0)
	emit.LoadArg(b, isa.ESI, 1)
	emit.LoadArg(b, isa.ECX, 2)
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label("wp.loop")
	b.I(isa.MOVSXW, asm.R(isa.EDX), asm.MemIdx(isa.SizeW, isa.ESI, isa.EAX, 2, 0))
	b.I(isa.MOV, asm.MemIdx(isa.SizeD, isa.EDI, isa.EAX, 4, 0), asm.R(isa.EDX))
	b.I(isa.INC, asm.R(isa.EAX))
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.ECX))
	b.J(isa.JL, "wp.loop")
	b.Ret()

	// --- pack8(src, strideBytes): 8 int32 -> dctin int16.
	b.Proc("pack8")
	emit.LoadArg(b, isa.ESI, 0)
	emit.LoadArg(b, isa.EDX, 1)
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
	b.Label("p8.loop")
	b.I(isa.MOV, asm.R(isa.EAX), asm.MemD(isa.ESI, 0))
	b.I(isa.MOV, asm.SymIdx(isa.SizeW, "dctin", isa.ECX, 2, 0), asm.R(isa.EAX))
	b.I(isa.ADD, asm.R(isa.ESI), asm.R(isa.EDX))
	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(8))
	b.J(isa.JL, "p8.loop")
	b.Ret()

	// --- scatter8(dst, strideBytes): dctout int16 -> strided int16/int32.
	// Width is selected by the stride user: writes int16 words.
	b.Proc("scatter8w")
	emit.LoadArg(b, isa.EDI, 0)
	emit.LoadArg(b, isa.EDX, 1)
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
	b.Label("s8.loop")
	b.I(isa.MOVSXW, asm.R(isa.EAX), asm.SymIdx(isa.SizeW, "dctout", isa.ECX, 2, 0))
	b.I(isa.MOV, asm.MemW(isa.EDI, 0), asm.R(isa.EAX))
	b.I(isa.ADD, asm.R(isa.EDI), asm.R(isa.EDX))
	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(8))
	b.J(isa.JL, "s8.loop")
	b.Ret()

	// --- widen8(dst): dctout int16 -> 8 contiguous int32.
	b.Proc("widen8")
	emit.LoadArg(b, isa.EDI, 0)
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
	b.Label("w8.loop")
	b.I(isa.MOVSXW, asm.R(isa.EAX), asm.SymIdx(isa.SizeW, "dctout", isa.ECX, 2, 0))
	b.I(isa.MOV, asm.MemIdx(isa.SizeD, isa.EDI, isa.ECX, 4, 0), asm.R(isa.EAX))
	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(8))
	b.J(isa.JL, "w8.loop")
	b.Ret()

	if fused2D {
		// --- fdct_lib: one fused 2-D DCT call per block. The application
		// still packs its 32-bit block to the library's 16-bit format
		// once, but the 16 calls, transposes and per-row staging vanish.
		b.Proc("fdct_lib")
		b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
		b.Label("f2d.pack")
		b.I(isa.MOV, asm.R(isa.EAX), asm.SymIdx(isa.SizeD, "blk32", isa.ECX, 4, 0))
		b.I(isa.MOV, asm.SymIdx(isa.SizeW, "blkin16", isa.ECX, 2, 0), asm.R(isa.EAX))
		b.I(isa.INC, asm.R(isa.ECX))
		b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(64))
		b.J(isa.JL, "f2d.pack")
		emit.Call(b, "nsDct2D", asm.ImmSym("blkin16", 0), asm.ImmSym("freq16", 0),
			asm.ImmSym("basis", 0), asm.ImmSym("dct2dtmp", 0))
		b.I(isa.EMMS)
		b.Ret()
	} else {
		// --- fdct_lib: the 2-D DCT by sixteen 1-D library calls with
		// staging.
		b.Proc("fdct_lib")
		// Row pass: blk32 rows -> pack -> nsDct8 -> widen back into blk32.
		for r := 0; r < 8; r++ {
			emit.Call(b, "pack8", asm.ImmSym("blk32", int64(32*r)), asm.Imm(4))
			emit.Call(b, "nsDct8", asm.ImmSym("dctin", 0), asm.ImmSym("dctout", 0),
				asm.ImmSym("basis", 0))
			emit.Call(b, "widen8", asm.ImmSym("blk32", int64(32*r)))
		}
		b.I(isa.EMMS)
		// Column pass: gather columns, transform, scatter into freq16.
		for c := 0; c < 8; c++ {
			emit.Call(b, "pack8", asm.ImmSym("blk32", int64(4*c)), asm.Imm(32))
			emit.Call(b, "nsDct8", asm.ImmSym("dctin", 0), asm.ImmSym("dctout", 0),
				asm.ImmSym("basis", 0))
			emit.Call(b, "scatter8w", asm.ImmSym("freq16", int64(2*c)), asm.Imm(16))
		}
		b.I(isa.EMMS)
		b.Ret()
	}

	emitRleProc(b)
	emitExtractProc(b)

	return b.Link()
}
