// Package apps builds the paper's four application benchmarks — jpeg,
// image, g722 and radar — in their C-only and MMX-library versions, with
// Table 1's workloads: JPEG compression of a ~118 kB bitmap, dimming and
// color-switching a 640x480 RGB image, G.722 encoding (and decoding) of a
// 6 kB speech file, and Doppler processing of 12-gate radar echoes with a
// 16-point FFT.
//
// Each program brackets its computation core with profon/profoff and is
// validated against a Go model that mirrors its arithmetic exactly.
package apps

import "mmxdsp/internal/core"

// Benchmarks returns all application benchmark versions.
func Benchmarks() []core.Benchmark {
	out := []core.Benchmark{}
	out = append(out, Image()...)
	out = append(out, Radar()...)
	out = append(out, JPEG()...)
	out = append(out, G722()...)
	return out
}
