package apps

import (
	"fmt"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/core"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/jpegenc"
	"mmxdsp/internal/synth"
	"mmxdsp/internal/vm"
)

// Paper workload: "Compresses an image into JPEG format. Converted an
// 118 kB Windows bitmap image into a JPEG image. Primary kernels include
// vector arithmetic for imaging and the discrete cosine transform (DCT)
// kernel." Our input is a 224x160 synthetic bitmap (~107 kB of RGB), and
// both versions run color conversion, 2-D DCT and quantization — the three
// functions the paper reports as 74% of jpeg.c's cycles — plus the zig-zag
// run-length symbol pass. See jpegmodel.go for the exact arithmetic of
// each version.

func jpegInput() []uint8 { return synth.ImageRGB(jpgW, jpgH, 0x7E6) }

// JPEG returns the jpeg.c and jpeg.mmx benchmarks.
func JPEG() []core.Benchmark {
	descr := "JPEG compression core of a ~118 kB bitmap: color conversion, 2-D DCT, quantization, RLE"
	return []core.Benchmark{
		{
			Base: "jpeg", Version: core.VersionC, Kind: core.KindApplication, Descr: descr,
			Build: buildJpegC,
			Check: func(c *vm.CPU) error {
				ty, tcb, tcr := ccTables()
				recips, biases := jpegRecipsC()
				want := jpegModel(jpegInput(),
					func(r, g, b uint8) (int32, int32, int32) {
						return ccCModel(ty, tcb, tcr, r, g, b)
					},
					aan2D, recips, biases)
				return checkStream(c, want, "jpeg.c")
			},
		},
		{
			Base: "jpeg", Version: core.VersionMMX, Kind: core.KindApplication, Descr: descr,
			Build: buildJpegMMX,
			Check: func(c *vm.CPU) error {
				recips, biases := jpegRecipsMMX()
				want := jpegModel(jpegInput(), ccMMXModel, dctMMXModel, recips, biases)
				return checkStream(c, want, "jpeg.mmx")
			},
		},
	}
}

func checkStream(c *vm.CPU, want []byte, context string) error {
	base := c.Prog.Addr("stream")
	posAddr := c.Prog.Addr("spos")
	pos, ok := c.Mem.LoadU32(posAddr)
	if !ok {
		return fmt.Errorf("%s: cannot read stream position", context)
	}
	gotLen := int(pos - base)
	if gotLen != len(want) {
		return fmt.Errorf("%s: stream length %d, want %d", context, gotLen, len(want))
	}
	got, ok := c.Mem.ReadBytes(base, gotLen)
	if !ok {
		return fmt.Errorf("%s: cannot read stream", context)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s: stream[%d] = %#x, want %#x", context, i, got[i], want[i])
		}
	}
	if gotLen < 1000 {
		return fmt.Errorf("%s: stream suspiciously short (%d bytes)", context, gotLen)
	}
	return nil
}

// placeJpegCommon places the data both versions share: input image, plane
// and block storage, zig-zag table, stream buffer, RLE state.
func placeJpegCommon(b *asm.Builder) {
	img := jpegInput()
	b.Bytes("img", append(img, 0)) // one pad byte for the 4-byte MMX load
	n := jpgW * jpgH
	b.Reserve("planeY", 4*n)
	b.Reserve("planeCb", 4*n)
	b.Reserve("planeCr", 4*n)
	b.Reserve("blk32", 4*64)
	b.Reserve("qcoef", 2*64)
	zz := make([]int32, 64)
	for i, v := range jpegenc.ZigZag {
		zz[i] = int32(v)
	}
	b.Dwords("zigtab", zz)
	b.Dwords("dcpred", make([]int32, 3))
	b.Dwords("curcomp", []int32{0})
	b.Dwords("curplane", []int32{0})
	b.Dwords("bx", []int32{0})
	b.Dwords("by", []int32{0})
	b.Reserve("stream", jpgStreamCap)
	b.Dwords("spos", []int32{0})
	// planetab is filled at run time with the three plane addresses.
	b.Dwords("planetab", make([]int32, 3))
}

// emitJpegInit writes the plane table and stream pointer.
func emitJpegInit(b *asm.Builder) {
	for i, sym := range []string{"planeY", "planeCb", "planeCr"} {
		b.I(isa.MOV, asm.R(isa.EAX), asm.ImmSym(sym, 0))
		b.I(isa.MOV, asm.Sym(isa.SizeD, "planetab", int32(4*i)), asm.R(isa.EAX))
	}
	b.I(isa.MOV, asm.R(isa.EAX), asm.ImmSym("stream", 0))
	b.I(isa.MOV, asm.Sym(isa.SizeD, "spos", 0), asm.R(isa.EAX))
}

// emitRleProc emits rle_block: converts qcoef (64 int16, natural order)
// into the (sym, value) stream, updating dcpred[curcomp]. Shared verbatim
// by both versions.
func emitRleProc(b *asm.Builder) {
	const name = "rle_block"
	b.Proc(name)
	// emitsym(sym in dl, value in ax): inlined below via a tiny helper
	// sequence; edi tracks the stream position.
	b.I(isa.MOV, asm.R(isa.EDI), asm.Sym(isa.SizeD, "spos", 0))
	putSym := func() {
		// dl = symbol, cx = value (via ecx). Uses edi.
		b.I(isa.MOV, asm.MemB(isa.EDI, 0), asm.R(isa.EDX))
		b.I(isa.MOV, asm.MemW(isa.EDI, 1), asm.R(isa.ECX))
		b.I(isa.ADD, asm.R(isa.EDI), asm.Imm(3))
	}

	// DC: diff = qcoef[0] - dcpred[curcomp].
	b.I(isa.MOVSXW, asm.R(isa.EAX), asm.Sym(isa.SizeW, "qcoef", 0))
	b.I(isa.MOV, asm.R(isa.EBX), asm.Sym(isa.SizeD, "curcomp", 0))
	b.I(isa.MOV, asm.R(isa.ECX), asm.SymIdx(isa.SizeD, "dcpred", isa.EBX, 4, 0))
	b.I(isa.MOV, asm.SymIdx(isa.SizeD, "dcpred", isa.EBX, 4, 0), asm.R(isa.EAX))
	b.I(isa.SUB, asm.R(isa.EAX), asm.R(isa.ECX)) // diff
	// size = bit length of |diff| (shift loop).
	b.I(isa.MOV, asm.R(isa.EBX), asm.R(isa.EAX))
	b.I(isa.TEST, asm.R(isa.EBX), asm.R(isa.EBX))
	b.J(isa.JNS, name+".dcpos")
	b.I(isa.NEG, asm.R(isa.EBX))
	b.Label(name + ".dcpos")
	b.I(isa.MOV, asm.R(isa.EDX), asm.Imm(0))
	b.Label(name + ".dcsize")
	b.I(isa.TEST, asm.R(isa.EBX), asm.R(isa.EBX))
	b.J(isa.JE, name+".dcemit")
	b.I(isa.INC, asm.R(isa.EDX))
	b.I(isa.SHR, asm.R(isa.EBX), asm.Imm(1))
	b.J(isa.JMP, name+".dcsize")
	b.Label(name + ".dcemit")
	b.I(isa.MOV, asm.R(isa.ECX), asm.R(isa.EAX)) // value = diff
	putSym()

	// AC coefficients in zig-zag order; ebp = z, ebx = run.
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(1))
	b.I(isa.MOV, asm.R(isa.EBX), asm.Imm(0))
	b.Label(name + ".ac")
	b.I(isa.MOV, asm.R(isa.EAX), asm.SymIdx(isa.SizeD, "zigtab", isa.EBP, 4, 0))
	b.I(isa.MOVSXW, asm.R(isa.EAX), asm.SymIdx(isa.SizeW, "qcoef", isa.EAX, 2, 0))
	b.I(isa.TEST, asm.R(isa.EAX), asm.R(isa.EAX))
	b.J(isa.JNE, name+".nonzero")
	b.I(isa.INC, asm.R(isa.EBX))
	b.J(isa.JMP, name+".acnext")

	b.Label(name + ".nonzero")
	// Flush runs of 16 zeros as ZRL symbols.
	b.Label(name + ".zrl")
	b.I(isa.CMP, asm.R(isa.EBX), asm.Imm(16))
	b.J(isa.JL, name+".emitac")
	b.I(isa.MOV, asm.R(isa.EDX), asm.Imm(0xF0))
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
	putSym()
	b.I(isa.SUB, asm.R(isa.EBX), asm.Imm(16))
	b.J(isa.JMP, name+".zrl")
	b.Label(name + ".emitac")
	// size of |v| into edx, then sym = run<<4 | size.
	b.I(isa.MOV, asm.R(isa.ECX), asm.R(isa.EAX))
	b.I(isa.TEST, asm.R(isa.ECX), asm.R(isa.ECX))
	b.J(isa.JNS, name+".acpos")
	b.I(isa.NEG, asm.R(isa.ECX))
	b.Label(name + ".acpos")
	b.I(isa.MOV, asm.R(isa.EDX), asm.Imm(0))
	b.Label(name + ".acsize")
	b.I(isa.TEST, asm.R(isa.ECX), asm.R(isa.ECX))
	b.J(isa.JE, name+".acemit")
	b.I(isa.INC, asm.R(isa.EDX))
	b.I(isa.SHR, asm.R(isa.ECX), asm.Imm(1))
	b.J(isa.JMP, name+".acsize")
	b.Label(name + ".acemit")
	b.I(isa.SHL, asm.R(isa.EBX), asm.Imm(4))
	b.I(isa.OR, asm.R(isa.EDX), asm.R(isa.EBX))
	b.I(isa.MOV, asm.R(isa.ECX), asm.R(isa.EAX))
	putSym()
	b.I(isa.MOV, asm.R(isa.EBX), asm.Imm(0))

	b.Label(name + ".acnext")
	b.I(isa.INC, asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.EBP), asm.Imm(64))
	b.J(isa.JL, name+".ac")
	// Trailing zeros: EOB.
	b.I(isa.TEST, asm.R(isa.EBX), asm.R(isa.EBX))
	b.J(isa.JE, name+".done")
	b.I(isa.MOV, asm.R(isa.EDX), asm.Imm(0))
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
	putSym()
	b.Label(name + ".done")
	b.I(isa.MOV, asm.Sym(isa.SizeD, "spos", 0), asm.R(isa.EDI))
	b.Ret()
}

// emitExtractProc emits extract_block: copies the current 8x8 tile of
// curplane into blk32 (both int32).
func emitExtractProc(b *asm.Builder) {
	const name = "extract_block"
	b.Proc(name)
	// esi = curplane + ((by*8)*W + bx*8)*4
	b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, "by", 0))
	b.I(isa.SHL, asm.R(isa.EAX), asm.Imm(3))
	b.I(isa.IMUL, asm.R(isa.EAX), asm.Imm(jpgW))
	b.I(isa.MOV, asm.R(isa.ECX), asm.Sym(isa.SizeD, "bx", 0))
	b.I(isa.SHL, asm.R(isa.ECX), asm.Imm(3))
	b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.ECX))
	b.I(isa.SHL, asm.R(isa.EAX), asm.Imm(2))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Sym(isa.SizeD, "curplane", 0))
	b.I(isa.MOV, asm.R(isa.ESI), asm.R(isa.EAX))
	b.I(isa.MOV, asm.R(isa.EDI), asm.ImmSym("blk32", 0))
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(8)) // row counter
	b.Label(name + ".row")
	for c := 0; c < 8; c++ {
		b.I(isa.MOV, asm.R(isa.EAX), asm.MemD(isa.ESI, int32(4*c)))
		b.I(isa.MOV, asm.MemD(isa.EDI, int32(4*c)), asm.R(isa.EAX))
	}
	b.I(isa.ADD, asm.R(isa.ESI), asm.Imm(4*jpgW))
	b.I(isa.ADD, asm.R(isa.EDI), asm.Imm(32))
	b.I(isa.DEC, asm.R(isa.EBP))
	b.J(isa.JNE, name+".row")
	b.Ret()
}

// emitBlockLoop emits main's triple loop over blocks and components,
// invoking perBlock() for the body (which may emit calls).
func emitBlockLoop(b *asm.Builder, perBlock func()) {
	b.I(isa.MOV, asm.Sym(isa.SizeD, "by", 0), asm.Imm(0))
	b.Label("byloop")
	b.I(isa.MOV, asm.Sym(isa.SizeD, "bx", 0), asm.Imm(0))
	b.Label("bxloop")
	b.I(isa.MOV, asm.Sym(isa.SizeD, "curcomp", 0), asm.Imm(0))
	b.Label("comploop")
	b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, "curcomp", 0))
	b.I(isa.MOV, asm.R(isa.EAX), asm.SymIdx(isa.SizeD, "planetab", isa.EAX, 4, 0))
	b.I(isa.MOV, asm.Sym(isa.SizeD, "curplane", 0), asm.R(isa.EAX))

	perBlock()

	b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, "curcomp", 0))
	b.I(isa.INC, asm.R(isa.EAX))
	b.I(isa.MOV, asm.Sym(isa.SizeD, "curcomp", 0), asm.R(isa.EAX))
	b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(3))
	b.J(isa.JL, "comploop")
	b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, "bx", 0))
	b.I(isa.INC, asm.R(isa.EAX))
	b.I(isa.MOV, asm.Sym(isa.SizeD, "bx", 0), asm.R(isa.EAX))
	b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(jpgBlocksX))
	b.J(isa.JL, "bxloop")
	b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, "by", 0))
	b.I(isa.INC, asm.R(isa.EAX))
	b.I(isa.MOV, asm.Sym(isa.SizeD, "by", 0), asm.R(isa.EAX))
	b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(jpgBlocksY))
	b.J(isa.JL, "byloop")
}
