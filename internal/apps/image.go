package apps

import (
	"fmt"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/core"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/imgproc"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/mmxlib"
	"mmxdsp/internal/synth"
	"mmxdsp/internal/vm"
)

// Paper workload: "Dimming and switching the colors of a Windows bitmap.
// 480x640 Red-Green-Blue (RGB) image in which each pixel is represented by
// 24 bits. Essentially vector addition and multiplication."
const (
	imgW     = 640
	imgH     = 480
	imgBytes = 3 * imgW * imgH // 921600, a multiple of 24

	// Dim to 3/4 brightness, then push red up and blue down.
	imgDimNum = 3
	imgDimDen = 4
	imgDR     = 40
	imgDG     = 0
	imgDB     = -55
)

func imageInput() []uint8 { return synth.ImageRGB(imgW, imgH, 0x1A6E) }

func imageExpected() []uint8 {
	return imgproc.Pipeline(imageInput(),
		imgproc.DimParams{Num: imgDimNum, Den: imgDimDen},
		imgproc.SwitchParams{DR: imgDR, DG: imgDG, DB: imgDB})
}

func imageCheck(c *vm.CPU, context string) error {
	want := imageExpected()
	got, ok := c.Mem.ReadBytes(c.Prog.Addr("out"), len(want))
	if !ok {
		return fmt.Errorf("%s: cannot read output", context)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s: byte %d = %d, want %d", context, i, got[i], want[i])
		}
	}
	return nil
}

// Image returns the image.c and image.mmx benchmarks.
func Image() []core.Benchmark {
	descr := "640x480 24-bit RGB dimming (vector multiply) and color switch (vector add)"
	return []core.Benchmark{
		{
			Base: "image", Version: core.VersionC, Kind: core.KindApplication, Descr: descr,
			Build: buildImageC,
			Check: func(c *vm.CPU) error { return imageCheck(c, "image.c") },
		},
		{
			Base: "image", Version: core.VersionMMX, Kind: core.KindApplication, Descr: descr,
			Build: buildImageMMX,
			Check: func(c *vm.CPU) error { return imageCheck(c, "image.mmx") },
		},
	}
}

// buildImageC processes one byte at a time with scalar integer arithmetic:
// an imul per pixel component for the dim, a saturating add (compare and
// branch) for the color switch.
func buildImageC() (*asm.Program, error) {
	b := asm.NewBuilder("image.c")
	b.Bytes("img", imageInput())
	b.Reserve("tmp", imgBytes)
	b.Reserve("out", imgBytes)
	// Per-channel deltas repeated for indexing by i%3 (computed cheaply
	// with a rotating counter).
	b.Dwords("deltas", []int32{imgDR, imgDG, imgDB})

	b.Proc("main")
	b.I(isa.PROFON)

	// Pass 1: tmp[i] = img[i] * num / den.
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
	b.Label("dim")
	b.I(isa.MOVZXB, asm.R(isa.EAX), asm.SymIdx(isa.SizeB, "img", isa.ECX, 1, 0))
	b.I(isa.IMUL, asm.R(isa.EAX), asm.Imm(imgDimNum))
	b.I(isa.SHR, asm.R(isa.EAX), asm.Imm(2)) // den = 4
	b.I(isa.MOV, asm.SymIdx(isa.SizeB, "tmp", isa.ECX, 1, 0), asm.R(isa.EAX))
	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(imgBytes))
	b.J(isa.JL, "dim")

	// Pass 2: out[i] = sat(tmp[i] + delta[i%3]).
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0)) // byte index
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(0)) // channel counter 0..2
	b.Label("switch")
	b.I(isa.MOVZXB, asm.R(isa.EAX), asm.SymIdx(isa.SizeB, "tmp", isa.ECX, 1, 0))
	b.I(isa.ADD, asm.R(isa.EAX), asm.SymIdx(isa.SizeD, "deltas", isa.EBP, 4, 0))
	b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(255))
	b.J(isa.JLE, "nohi")
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(255))
	b.Label("nohi")
	b.I(isa.TEST, asm.R(isa.EAX), asm.R(isa.EAX))
	b.J(isa.JNS, "nolo")
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label("nolo")
	b.I(isa.MOV, asm.SymIdx(isa.SizeB, "out", isa.ECX, 1, 0), asm.R(isa.EAX))
	b.I(isa.INC, asm.R(isa.EBP))
	b.I(isa.CMP, asm.R(isa.EBP), asm.Imm(3))
	b.J(isa.JL, "nowrap")
	b.I(isa.MOV, asm.R(isa.EBP), asm.Imm(0))
	b.Label("nowrap")
	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(imgBytes))
	b.J(isa.JL, "switch")

	b.I(isa.PROFOFF)
	b.I(isa.HALT)
	return b.Link()
}

// buildImageMMX: two library calls over the whole buffer — 8 bytes per
// iteration, properly aligned data, "automatic" packing via quadword loads
// and stores. This is the paper's best-suited application (5.5x).
func buildImageMMX() (*asm.Program, error) {
	b := asm.NewBuilder("image.mmx")
	mmxlib.EmitImgScale8(b)
	mmxlib.EmitImgAdd8(b)
	addM, subM := mmxlib.ColorMasks(imgDR, imgDG, imgDB)
	b.Bytes("img", imageInput())
	b.Bytes("addm", addM)
	b.Bytes("subm", subM)
	b.Reserve("tmp", imgBytes)
	b.Reserve("out", imgBytes)

	b.Entry()
	b.Proc("main")
	b.I(isa.PROFON)
	emit.Call(b, "nsImgScale8", asm.ImmSym("tmp", 0), asm.ImmSym("img", 0),
		asm.Imm(imgBytes), asm.Imm(imgDimNum*256/imgDimDen))
	emit.Call(b, "nsImgAdd8", asm.ImmSym("out", 0), asm.ImmSym("tmp", 0),
		asm.Imm(imgBytes), asm.ImmSym("addm", 0), asm.ImmSym("subm", 0))
	b.I(isa.EMMS)
	b.I(isa.PROFOFF)
	b.I(isa.HALT)
	return b.Link()
}
