package apps

import (
	"math"
	"testing"

	"mmxdsp/internal/dsp"
	"mmxdsp/internal/jpegenc"
	"mmxdsp/internal/mmxlib"
)

// TestJpegMMXPipelinePSNR backs the paper's claim that "the MMX version
// shows no visible difference in quality than the non-MMX version,
// although some precision is lost in the pixel calculations": it runs the
// mirrored MMX pipeline (pmaddwd color conversion, Q13 two-pass DCT,
// reciprocal quantization) forward and backward on the luma plane and
// checks the reconstruction PSNR is in normal JPEG territory.
func TestJpegMMXPipelinePSNR(t *testing.T) {
	rgb := jpegInput()
	recips, biases := jpegRecipsMMX()
	q := jpegenc.ScaleQuant(jpegenc.StdLuminanceQuant, jpgQuality)

	n := jpgW * jpgH
	plane := make([]int32, n)
	for i := 0; i < n; i++ {
		y, _, _ := ccMMXModel(rgb[3*i], rgb[3*i+1], rgb[3*i+2])
		plane[i] = y
	}

	var mse float64
	var blk [64]int32
	for by := 0; by < jpgBlocksY; by++ {
		for bx := 0; bx < jpgBlocksX; bx++ {
			for r := 0; r < 8; r++ {
				for c := 0; c < 8; c++ {
					blk[r*8+c] = plane[(by*8+r)*jpgW+bx*8+c]
				}
			}
			orig := blk
			dctMMXModel(&blk)
			// Quantize, dequantize, inverse-transform in float.
			var freq [64]float64
			for k := 0; k < 64; k++ {
				qv := mmxlib.QuantRecipModel(blk[k], recips[k], biases[k])
				freq[k] = float64(int32(qv) * int32(q[k]))
			}
			var rec [64]float64
			dsp.IDCT2D8(rec[:], freq[:])
			for k := 0; k < 64; k++ {
				d := rec[k] - float64(orig[k])
				mse += d * d
			}
		}
	}
	mse /= float64(n)
	psnr := 10 * math.Log10(255*255/mse)
	t.Logf("jpeg.mmx luma pipeline PSNR at q%d: %.1f dB", jpgQuality, psnr)
	if psnr < 28 {
		t.Errorf("PSNR = %.1f dB, want >= 28 (visually transparent-ish at q50)", psnr)
	}
}

// TestJpegVersionsAgreeOnImageStructure: the .c and .mmx pipelines use
// different arithmetic, so their streams differ, but their DC coefficients
// (block averages) must agree closely — the two encoders see the same
// picture.
func TestJpegVersionsAgreeOnImageStructure(t *testing.T) {
	rgb := jpegInput()
	ty, tcb, tcr := ccTables()
	var worst int32
	for i := 0; i < jpgW*jpgH; i += 97 {
		yc, _, _ := ccCModel(ty, tcb, tcr, rgb[3*i], rgb[3*i+1], rgb[3*i+2])
		ym, _, _ := ccMMXModel(rgb[3*i], rgb[3*i+1], rgb[3*i+2])
		d := yc - ym
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if worst > 2 {
		t.Errorf("luma conversions differ by up to %d codes, want <= 2", worst)
	}
}
