package apps

import (
	"math"

	"mmxdsp/internal/fixed"
	"mmxdsp/internal/jpegenc"
	"mmxdsp/internal/mmxlib"
)

// This file holds the Go mirror models for the jpeg benchmark versions.
// Both versions run the same pipeline — color conversion, 8x8 2-D DCT,
// quantization, zig-zag run-length symbol generation — but with different
// arithmetic:
//
//   - jpeg.c mirrors IJG-style optimized scalar code: table-based color
//     conversion (Q16 lookup tables, adds only), the AAN fast DCT
//     (5 multiplies per 8-point transform) on 32-bit data, reciprocal
//     quantization with imul.
//   - jpeg.mmx mirrors the MMX library path: pmaddwd color conversion,
//     sixteen 1-D Q13 DCT library calls per block with staging copies
//     (there is no 2-D DCT in the library), pmulhw/pmullw reciprocal
//     quantization.
//
// Entropy coding is excluded from BOTH versions identically: the programs
// emit the zig-zag (run, size, value) symbol stream that feeds a Huffman
// coder. The paper's analysis concerns the three dominant kernels (color
// conversion, DCT, quantization: 74% of cycles), which are fully present.

const (
	jpgW       = 224
	jpgH       = 160
	jpgQuality = 50
	jpgBlocksX = jpgW / 8
	jpgBlocksY = jpgH / 8
	// Stream buffer: 3 bytes per emitted symbol, generously sized.
	jpgStreamCap = jpgBlocksX * jpgBlocksY * 3 * 220
)

// --- jpeg.c color conversion: Q16 tables --------------------------------

// ccTables builds the nine Q16 lookup tables (Y/Cb/Cr x R/G/B). The
// rounding half is folded into the B table of each channel.
func ccTables() (y, cb, cr [3][]int32) {
	build := func(cR, cG, cB float64) [3][]int32 {
		var t [3][]int32
		for ch := 0; ch < 3; ch++ {
			t[ch] = make([]int32, 256)
		}
		for v := 0; v < 256; v++ {
			t[0][v] = int32(math.Round(cR * 65536 * float64(v)))
			t[1][v] = int32(math.Round(cG * 65536 * float64(v)))
			t[2][v] = int32(math.Round(cB*65536*float64(v))) + 32768
		}
		return t
	}
	ty := build(0.299, 0.587, 0.114)
	tcb := build(-0.168736, -0.331264, 0.5)
	tcr := build(0.5, -0.418688, -0.081312)
	return ty, tcb, tcr
}

// ccCModel converts one pixel the way the table-based scalar code does:
// level-shifted Y and centered chroma, all int32.
func ccCModel(ty, tcb, tcr [3][]int32, r, g, b uint8) (yv, cbv, crv int32) {
	yv = (ty[0][r]+ty[1][g]+ty[2][b])>>16 - 128
	cbv = (tcb[0][r] + tcb[1][g] + tcb[2][b]) >> 16
	crv = (tcr[0][r] + tcr[1][g] + tcr[2][b]) >> 16
	return
}

// ccMMXModel mirrors nsColorConv's pmaddwd arithmetic.
func ccMMXModel(r, g, b uint8) (yv, cbv, crv int32) {
	co := mmxlib.ColorConvCoefs()
	rr, gg, bb := int32(r), int32(g), int32(b)
	yv = (rr*int32(co[0])+gg*int32(co[1])+bb*int32(co[2]))>>15 - 128
	cbv = (rr*int32(co[4]) + gg*int32(co[5]) + bb*int32(co[6])) >> 15
	crv = (rr*int32(co[8]) + gg*int32(co[9]) + bb*int32(co[10])) >> 15
	return
}

// --- AAN fast DCT (jfdctfst-style, Q8 constants) -------------------------

// AAN Q8 multiplier constants.
const (
	aan0_382 = 98  // 0.382683433
	aan0_541 = 139 // 0.541196100
	aan0_707 = 181 // 0.707106781
	aan1_306 = 334 // 1.306562965
)

func aanMul(a, c int32) int32 { return (a * c) >> 8 }

// aan8 transforms 8 int32 values in place (one 1-D pass), mirroring the
// assembly instruction for instruction.
func aan8(x *[8]int32) {
	tmp0, tmp7 := x[0]+x[7], x[0]-x[7]
	tmp1, tmp6 := x[1]+x[6], x[1]-x[6]
	tmp2, tmp5 := x[2]+x[5], x[2]-x[5]
	tmp3, tmp4 := x[3]+x[4], x[3]-x[4]

	tmp10, tmp13 := tmp0+tmp3, tmp0-tmp3
	tmp11, tmp12 := tmp1+tmp2, tmp1-tmp2

	x[0] = tmp10 + tmp11
	x[4] = tmp10 - tmp11
	z1 := aanMul(tmp12+tmp13, aan0_707)
	x[2] = tmp13 + z1
	x[6] = tmp13 - z1

	t10 := tmp4 + tmp5
	t11 := tmp5 + tmp6
	t12 := tmp6 + tmp7
	z5 := aanMul(t10-t12, aan0_382)
	z2 := aanMul(t10, aan0_541) + z5
	z4 := aanMul(t12, aan1_306) + z5
	z3 := aanMul(t11, aan0_707)
	z11 := tmp7 + z3
	z13 := tmp7 - z3
	x[5] = z13 + z2
	x[3] = z13 - z2
	x[1] = z11 + z4
	x[7] = z11 - z4
}

// aan2D runs rows then columns in place on a 64-entry block.
func aan2D(blk *[64]int32) {
	var v [8]int32
	for r := 0; r < 8; r++ {
		copy(v[:], blk[r*8:r*8+8])
		aan8(&v)
		copy(blk[r*8:r*8+8], v[:])
	}
	for c := 0; c < 8; c++ {
		for n := 0; n < 8; n++ {
			v[n] = blk[n*8+c]
		}
		aan8(&v)
		for n := 0; n < 8; n++ {
			blk[n*8+c] = v[n]
		}
	}
}

// aanScale is the IJG AAN scale-factor table.
var aanScale = [8]float64{1.0, 1.387039845, 1.306562965, 1.175875602,
	1.0, 0.785694958, 0.541196100, 0.275899379}

// jpegRecipsC builds the Q15 reciprocal quantizers and half-step rounding
// biases for the AAN-scaled coefficients:
// divisor[k] = q[k] * sf[row] * sf[col] * 8.
func jpegRecipsC() (recips, biases [64]int16) {
	q := jpegenc.ScaleQuant(jpegenc.StdLuminanceQuant, jpgQuality)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			k := r*8 + c
			d := float64(q[k]) * aanScale[r] * aanScale[c] * 8
			rec := math.Round(32768 / d)
			if rec < 1 {
				rec = 1
			}
			if rec > 32767 {
				rec = 32767
			}
			recips[k] = int16(rec)
			biases[k] = int16(math.Round(d / 2))
		}
	}
	return recips, biases
}

// jpegRecipsMMX builds the Q15 reciprocals and biases for the orthonormal
// Q13 DCT.
func jpegRecipsMMX() (recips, biases [64]int16) {
	q := jpegenc.ScaleQuant(jpegenc.StdLuminanceQuant, jpgQuality)
	return mmxlib.QuantRecips(&q), mmxlib.QuantBiases(&q)
}

// --- shared pipeline models ----------------------------------------------

// jpegModel runs the full mirrored pipeline and returns the symbol stream.
// dct transforms one 64-entry block in place; cc converts one pixel.
func jpegModel(rgb []uint8,
	cc func(r, g, b uint8) (int32, int32, int32),
	dct func(*[64]int32),
	recips, biases [64]int16) []byte {

	// Planes.
	n := jpgW * jpgH
	planes := [3][]int32{make([]int32, n), make([]int32, n), make([]int32, n)}
	for i := 0; i < n; i++ {
		y, cb, cr := cc(rgb[3*i], rgb[3*i+1], rgb[3*i+2])
		planes[0][i] = y
		planes[1][i] = cb
		planes[2][i] = cr
	}

	stream := make([]byte, 0, 1<<16)
	var dcPred [3]int32
	var blk [64]int32
	for by := 0; by < jpgBlocksY; by++ {
		for bx := 0; bx < jpgBlocksX; bx++ {
			for comp := 0; comp < 3; comp++ {
				p := planes[comp]
				for r := 0; r < 8; r++ {
					for c := 0; c < 8; c++ {
						blk[r*8+c] = p[(by*8+r)*jpgW+bx*8+c]
					}
				}
				dct(&blk)
				// Quantize: sign-aware half-step bias, then the truncating
				// Q15 reciprocal multiply (mmxlib.QuantRecipModel).
				var q [64]int16
				for k := 0; k < 64; k++ {
					q[k] = mmxlib.QuantRecipModel(blk[k], recips[k], biases[k])
				}
				stream = rleModel(stream, &q, &dcPred[comp])
			}
		}
	}
	return stream
}

// rleModel appends one block's (sym, value) pairs, mirroring the shared
// scalar RLE code in the programs: DC size+diff, AC run/size pairs, ZRL
// and EOB markers. Each symbol is 3 bytes: sym, lo(value), hi(value).
func rleModel(stream []byte, q *[64]int16, dcPred *int32) []byte {
	put := func(sym byte, v int16) []byte {
		return append(stream, sym, byte(uint16(v)), byte(uint16(v)>>8))
	}
	diff := int32(q[0]) - *dcPred
	*dcPred = int32(q[0])
	stream = put(byte(rleBitSize(diff)), int16(diff))
	run := 0
	for z := 1; z < 64; z++ {
		v := q[jpegenc.ZigZag[z]]
		if v == 0 {
			run++
			continue
		}
		for run >= 16 {
			stream = put(0xF0, 0)
			run -= 16
		}
		stream = put(byte(run<<4|rleBitSize(int32(v))), v)
		run = 0
	}
	if run > 0 {
		stream = put(0x00, 0)
	}
	return stream
}

// rleBitSize is the JPEG magnitude category, mirrored by a shift loop in
// the programs.
func rleBitSize(v int32) int {
	if v < 0 {
		v = -v
	}
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// dctMMXModel is the library-path 2-D DCT: two passes of the Q13 1-D DCT
// with int16 narrowing between passes (dsp.DCT1D8Q15 semantics via the
// staging copies).
func dctMMXModel(blk *[64]int32) {
	var in, out [8]int16
	// Row pass.
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			in[c] = int16(blk[r*8+c]) // staging pack (values fit int16)
		}
		dct1dQ13(&out, &in)
		for c := 0; c < 8; c++ {
			blk[r*8+c] = int32(out[c])
		}
	}
	// Column pass.
	for c := 0; c < 8; c++ {
		for n := 0; n < 8; n++ {
			in[n] = int16(blk[n*8+c])
		}
		dct1dQ13(&out, &in)
		for n := 0; n < 8; n++ {
			blk[n*8+c] = int32(out[n])
		}
	}
}

// dct1dQ13 mirrors mmxlib's nsDct8 (== dsp.DCT1D8Q15).
func dct1dQ13(out *[8]int16, in *[8]int16) {
	basis := mmxlib.DCTBasisQuads()
	for k := 0; k < 8; k++ {
		var acc int64
		for n := 0; n < 4; n++ {
			acc += int64(in[n]) * int64(basis[8*k+n])
			acc += int64(in[n+4]) * int64(basis[8*k+4+n])
		}
		acc += 1 << 12
		acc >>= 13
		out[k] = fixed.SatW(satI64(acc))
	}
}

func satI64(v int64) int32 {
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	if v < math.MinInt32 {
		return math.MinInt32
	}
	return int32(v)
}
