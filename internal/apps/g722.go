package apps

import (
	"fmt"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/core"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/g722"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/mmxlib"
	"mmxdsp/internal/synth"
	"mmxdsp/internal/vm"
)

// Paper workload: "Standard for digital encoding and compression of speech
// and audio signals. Uses adaptive differential pulse code modulation
// (ADPCM). Encoded a 6 kB speech file. ... Both versions of this
// application perform real-time encoding and decoding. Only one sample of
// speech is encoded and decoded at a time."
//
// The programs implement the full ITU G.722 structure — transmit QMF,
// 6-bit/2-bit adaptive quantizers, pole/zero predictor adaptation
// (block 4), receive QMF — validated bit for bit against internal/g722.
// The .mmx version routes the QMF dot products through the MMX vector
// library, which forces 32-to-16-bit packing of the filter history before
// every call plus a defensive emms afterwards: the per-sample formatting
// overhead the paper blames for g722.mmx's slowdown.
const g722Samples = 3000 // ~6 kB of 16-bit speech

func g722Input() []int16 {
	speech := synth.Speech(g722Samples, 0x6722)
	in := make([]int16, len(speech))
	for i, v := range speech {
		in[i] = int16(v * 12000)
	}
	return in
}

// G722 returns the g722.c and g722.mmx benchmarks.
func G722() []core.Benchmark {
	descr := "G.722 sub-band ADPCM: QMF split, 6+2-bit adaptive quantizers, encode and decode"
	mk := func(version string, build func() (*asm.Program, error)) core.Benchmark {
		return core.Benchmark{
			Base: "g722", Version: version, Kind: core.KindApplication, Descr: descr,
			Build: build,
			Check: func(c *vm.CPU) error { return checkG722(c, "g722."+version) },
		}
	}
	return []core.Benchmark{
		mk(core.VersionC, func() (*asm.Program, error) { return buildG722(false) }),
		mk(core.VersionMMX, func() (*asm.Program, error) { return buildG722(true) }),
	}
}

func checkG722(c *vm.CPU, context string) error {
	in := g722Input()
	wantCodes := g722.NewEncoder().Encode(in)
	wantOut := g722.NewDecoder().Decode(wantCodes)

	codes, ok := c.Mem.ReadBytes(c.Prog.Addr("codes"), len(wantCodes))
	if !ok {
		return fmt.Errorf("%s: cannot read codes", context)
	}
	for i := range wantCodes {
		if codes[i] != wantCodes[i] {
			return fmt.Errorf("%s: code[%d] = %#x, want %#x", context, i, codes[i], wantCodes[i])
		}
	}
	out, ok := c.Mem.ReadInt16s(c.Prog.Addr("outpcm"), len(wantOut))
	if !ok {
		return fmt.Errorf("%s: cannot read decoded audio", context)
	}
	for i := range wantOut {
		if out[i] != wantOut[i] {
			return fmt.Errorf("%s: out[%d] = %d, want %d", context, i, out[i], wantOut[i])
		}
	}
	return nil
}

// Band-state layout, dword indices into a 45-dword block.
const (
	gS   = 0
	gSP  = 1
	gSZ  = 2
	gNB  = 3
	gDET = 4
	gR   = 5  // r0..r2
	gP   = 8  // p0..p2
	gA   = 11 // a0..a2 (a0 unused)
	gAP  = 14 // ap0..ap2 (ap0 unused)
	gSG  = 17 // sg0..sg6
	gD   = 24 // d0..d6
	gB   = 31 // b0..b6 (b0 unused)
	gBP  = 38 // bp0..bp6 (bp0 unused)

	gStateDwords = 45
)

// st returns the operand for field f (dword index) of the band state
// pointed to by ebp.
func st(f int) isa.Operand { return asm.MemD(isa.EBP, int32(4*f)) }

func newBandState(det int32) []int32 {
	s := make([]int32, gStateDwords)
	s[gDET] = det
	return s
}

// buildG722 emits the full codec; useMMXQmf selects the library-call QMF.
func buildG722(useMMXQmf bool) (*asm.Program, error) {
	name := "g722.c"
	if useMMXQmf {
		name = "g722.mmx"
	}
	b := asm.NewBuilder(name)
	in := g722Input()
	b.Words("pcm", in)
	b.Reserve("codes", g722Samples/2+8)
	b.Reserve("outpcm", 2*g722Samples+8)

	// Quantizer and adaptation tables (int32).
	b.Dwords("q6", []int32{0, 35, 72, 110, 150, 190, 233, 276, 323, 370, 422, 473,
		530, 587, 650, 714, 786, 858, 940, 1023, 1121, 1219, 1339, 1458,
		1612, 1765, 1980, 2195, 2557, 2919, 0, 0})
	b.Dwords("iln", []int32{0, 63, 62, 31, 30, 29, 28, 27, 26, 25, 24, 23, 22, 21,
		20, 19, 18, 17, 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 0})
	b.Dwords("ilp", []int32{0, 61, 60, 59, 58, 57, 56, 55, 54, 53, 52, 51, 50, 49,
		48, 47, 46, 45, 44, 43, 42, 41, 40, 39, 38, 37, 36, 35, 34, 33, 32, 0})
	b.Dwords("wl", []int32{-60, -30, 58, 172, 334, 538, 1198, 3042})
	b.Dwords("rl42", []int32{0, 7, 6, 5, 4, 3, 2, 1, 7, 6, 5, 4, 3, 2, 1, 0})
	b.Dwords("ilb", []int32{2048, 2093, 2139, 2186, 2233, 2282, 2332, 2383,
		2435, 2489, 2543, 2599, 2656, 2714, 2774, 2834,
		2896, 2960, 3025, 3091, 3158, 3228, 3298, 3371,
		3444, 3520, 3597, 3676, 3756, 3838, 3922, 4008})
	b.Dwords("qm4", []int32{0, -20456, -12896, -8968, -6288, -4240, -2584, -1200,
		20456, 12896, 8968, 6288, 4240, 2584, 1200, 0})
	b.Dwords("qm2", []int32{-7408, -1616, 7408, 1616})
	b.Dwords("qm6", []int32{
		-136, -136, -136, -136, -24808, -21904, -19008, -16704,
		-14984, -13512, -12280, -11192, -10232, -9360, -8576, -7856,
		-7192, -6576, -6000, -5456, -4944, -4464, -4008, -3576,
		-3168, -2776, -2400, -2032, -1688, -1360, -1040, -728,
		24808, 21904, 19008, 16704, 14984, 13512, 12280, 11192,
		10232, 9360, 8576, 7856, 7192, 6576, 6000, 5456,
		4944, 4464, 4008, 3576, 3168, 2776, 2400, 2032,
		1688, 1360, 1040, 728, 432, 136, -432, -136})
	b.Dwords("ihn", []int32{0, 1, 0})
	b.Dwords("ihp", []int32{0, 3, 2})
	b.Dwords("wh", []int32{0, -214, 798})
	b.Dwords("rh2", []int32{2, 1, 2, 1})
	b.Dwords("qmfco", []int32{3, -11, 12, 32, -210, 951, 3876, -805, 362, -156, 53, -11})

	// Band states and QMF delay lines.
	b.Dwords("encL", newBandState(32))
	b.Dwords("encH", newBandState(8))
	b.Dwords("decL", newBandState(32))
	b.Dwords("decH", newBandState(8))
	b.Dwords("xenc", make([]int32, 24))
	b.Dwords("xdec", make([]int32, 24))
	// Scratch cells shared by the helper procedures.
	b.Dwords("xlow", []int32{0})
	b.Dwords("xhigh", []int32{0})
	b.Dwords("rlow", []int32{0})
	b.Dwords("rhigh", []int32{0})
	b.Dwords("dval", []int32{0})
	b.Dwords("wd1v", []int32{0})

	if useMMXQmf {
		mmxlib.EmitDotProd16(b)
		mmxlib.EmitVecMul16(b)
		b.Words("fzb", make([]int16, 8))
		b.Words("fzw", make([]int16, 8))
		b.Words("fzt", make([]int16, 8))
		// Vectors are padded from 12 to 16 taps with zeros: the library's
		// dot product works in 8-element strides (another instance of the
		// "format your data for the library" tax).
		b.Words("qmfw", append([]int16{3, -11, 12, 32, -210, 951, 3876, -805, 362, -156, 53, -11}, 0, 0, 0, 0))
		b.Words("qmfwr", append([]int16{-11, 53, -156, 362, -805, 3876, 951, -210, 32, 12, -11, 3}, 0, 0, 0, 0))
		b.Words("evenw", make([]int16, 16))
		b.Words("oddw", make([]int16, 16))
		b.Dwords("sumodd", []int32{0})
		b.Entry()
	}

	b.Proc("main")
	b.I(isa.PROFON)
	// Encode loop: one byte per sample pair.
	b.I(isa.MOV, asm.R(isa.EBX), asm.Imm(0)) // pair index
	b.Label("encloop")
	b.I(isa.PUSH, asm.R(isa.EBX))
	emit.Call(b, "encode_pair", asm.R(isa.EBX))
	b.I(isa.POP, asm.R(isa.EBX))
	b.I(isa.MOV, asm.SymIdx(isa.SizeB, "codes", isa.EBX, 1, 0), asm.R(isa.EAX))
	b.I(isa.INC, asm.R(isa.EBX))
	b.I(isa.CMP, asm.R(isa.EBX), asm.Imm(g722Samples/2))
	b.J(isa.JL, "encloop")
	// Decode loop.
	b.I(isa.MOV, asm.R(isa.EBX), asm.Imm(0))
	b.Label("decloop")
	b.I(isa.MOVZXB, asm.R(isa.EAX), asm.SymIdx(isa.SizeB, "codes", isa.EBX, 1, 0))
	b.I(isa.PUSH, asm.R(isa.EBX))
	emit.Call(b, "decode_byte", asm.R(isa.EAX), asm.R(isa.EBX))
	b.I(isa.POP, asm.R(isa.EBX))
	b.I(isa.INC, asm.R(isa.EBX))
	b.I(isa.CMP, asm.R(isa.EBX), asm.Imm(g722Samples/2))
	b.J(isa.JL, "decloop")
	b.I(isa.PROFOFF)
	b.I(isa.HALT)

	emitSaturateProc(b)
	emitBlock4Proc(b, useMMXQmf)
	emitLogsclProc(b)
	emitLogschProc(b)
	emitEncodePair(b, useMMXQmf)
	emitDecodeByte(b, useMMXQmf)

	return b.Link()
}

// emitSaturateProc emits saturate: eax = clamp16(eax).
func emitSaturateProc(b *asm.Builder) {
	b.Proc("saturate")
	b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(32767))
	b.J(isa.JLE, "sat.nohi")
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(32767))
	b.Label("sat.nohi")
	b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(-32768))
	b.J(isa.JGE, "sat.nolo")
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(-32768))
	b.Label("sat.nolo")
	b.Ret()
}
