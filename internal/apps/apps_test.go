package apps

import (
	"testing"

	"mmxdsp/internal/core"
)

// runPair runs a family's .c and .mmx versions and returns the comparison.
func runPair(t *testing.T, benches []core.Benchmark) core.Ratios {
	t.Helper()
	var base, mmx *core.Result
	for _, bm := range benches {
		r, err := core.Run(bm, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		switch bm.Version {
		case core.VersionC:
			base = r
		case core.VersionMMX:
			mmx = r
		}
	}
	if base == nil || mmx == nil {
		t.Fatal("missing versions")
	}
	return core.Compare(base.Report, mmx.Report)
}

func TestImageShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full 640x480 workload")
	}
	r := runPair(t, Image())
	t.Logf("image ratios: %+v", r)
	// Paper: speedup 5.50, dynamic 9.92, memrefs 7.12.
	if r.Speedup < 3.5 || r.Speedup > 9 {
		t.Errorf("image speedup = %.2f, want ~5.5 (band 3.5..9)", r.Speedup)
	}
	if r.Dynamic < 4 {
		t.Errorf("image dynamic ratio = %.2f, want large (paper 9.92)", r.Dynamic)
	}
	if r.MemRefs < 3 {
		t.Errorf("image memref ratio = %.2f, want large (paper 7.12)", r.MemRefs)
	}
}

func TestRadarShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload")
	}
	r := runPair(t, Radar())
	t.Logf("radar ratios: %+v", r)
	// Paper: speedup 1.21 — modest, eaten by call overhead and formatting.
	if r.Speedup < 0.95 || r.Speedup > 1.9 {
		t.Errorf("radar speedup = %.2f, want ~1.21 (band 0.95..1.9)", r.Speedup)
	}
}

func TestJPEGShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload")
	}
	r := runPair(t, JPEG())
	t.Logf("jpeg ratios: %+v", r)
	// Paper: speedup 0.49 — the MMX version LOSES.
	if r.Speedup >= 1.0 {
		t.Errorf("jpeg speedup = %.2f, want < 1 (paper 0.49: scalar wins)", r.Speedup)
	}
	if r.Speedup < 0.3 {
		t.Errorf("jpeg speedup = %.2f, implausibly low", r.Speedup)
	}
}

func TestG722Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload")
	}
	r := runPair(t, G722())
	t.Logf("g722 ratios: %+v", r)
	// Paper: speedup 0.77 — the MMX version loses.
	if r.Speedup >= 1.0 {
		t.Errorf("g722 speedup = %.2f, want < 1 (paper 0.77: scalar wins)", r.Speedup)
	}
	if r.Speedup < 0.5 {
		t.Errorf("g722 speedup = %.2f, implausibly low", r.Speedup)
	}
}

func TestAppRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, bm := range Benchmarks() {
		names[bm.Name()] = true
		if bm.Kind != core.KindApplication {
			t.Errorf("%s kind = %q", bm.Name(), bm.Kind)
		}
	}
	for _, want := range []string{"image.c", "image.mmx", "radar.c", "radar.mmx",
		"jpeg.c", "jpeg.mmx", "g722.c", "g722.mmx"} {
		if !names[want] {
			t.Errorf("registry missing %s", want)
		}
	}
}

func TestJPEG2DVariantValidatesAndBeats1D(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload")
	}
	var oneD, twoD *core.Result
	for _, bm := range JPEG() {
		if bm.Version == core.VersionMMX {
			r, err := core.Run(bm, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			oneD = r
		}
	}
	r, err := core.Run(JPEGMMX2D(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	twoD = r
	// Same bit stream (validated in Check), far fewer calls and cycles:
	// the paper's "2-D DCT in the library" recommendation quantified.
	if twoD.Report.Calls >= oneD.Report.Calls {
		t.Errorf("2-D calls %d >= 1-D calls %d", twoD.Report.Calls, oneD.Report.Calls)
	}
	gain := float64(oneD.Report.Cycles) / float64(twoD.Report.Cycles)
	t.Logf("fused 2-D DCT: %d -> %d cycles (%.2fx), calls %d -> %d",
		oneD.Report.Cycles, twoD.Report.Cycles, gain, oneD.Report.Calls, twoD.Report.Calls)
	if gain < 1.1 {
		t.Errorf("fused 2-D DCT gain %.2f, want >= 1.1", gain)
	}
}

// TestNarrativeMetrics pins the paper's §4.2 mechanism claims: the MMX
// applications make many more function calls, and the losing applications
// execute MORE dynamic instructions than their C versions.
func TestNarrativeMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload")
	}
	run := func(name string, benches []core.Benchmark) (c, m *core.Result) {
		t.Helper()
		for _, bm := range benches {
			r, err := core.Run(bm, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if bm.Version == core.VersionC {
				c = r
			} else {
				m = r
			}
		}
		return c, m
	}

	rc, rm := run("radar", Radar())
	callRatio := float64(rm.Report.Calls) / float64(rc.Report.Calls)
	t.Logf("radar calls: %d -> %d (%.1fx)", rc.Report.Calls, rm.Report.Calls, callRatio)
	if callRatio < 5 {
		t.Errorf("radar.mmx call ratio %.1f, want >> 1 (paper: 27x)", callRatio)
	}

	jc, jm := run("jpeg", JPEG())
	if jm.Report.DynamicInstructions <= jc.Report.DynamicInstructions {
		t.Errorf("jpeg.mmx dynamic %d <= jpeg.c %d; paper's anomaly missing",
			jm.Report.DynamicInstructions, jc.Report.DynamicInstructions)
	}
	if jm.Report.Calls <= jc.Report.Calls {
		t.Errorf("jpeg.mmx calls %d <= jpeg.c %d", jm.Report.Calls, jc.Report.Calls)
	}

	gc, gm := run("g722", G722())
	if gm.Report.DynamicInstructions <= gc.Report.DynamicInstructions {
		t.Errorf("g722.mmx dynamic %d <= g722.c %d; paper's anomaly missing",
			gm.Report.DynamicInstructions, gc.Report.DynamicInstructions)
	}
	// Both g722 versions are call-heavy, sample at a time.
	if gc.Report.CallRetCycleShare() < 5 || gm.Report.CallRetCycleShare() < 5 {
		t.Errorf("g722 call/ret shares %.1f%% / %.1f%%, want substantial",
			gc.Report.CallRetCycleShare(), gm.Report.CallRetCycleShare())
	}
}
