package apps

import (
	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
)

// This file emits the G.722 codec bodies. Registers follow one discipline:
// ebp holds the current band-state pointer across helper calls; the helper
// procedures (saturate, block4, logscl, logsch) preserve ebp; eax carries
// values in and out. Scalar cells (dval, xlow, ...) pass the rest, exactly
// like the reference C's file-scope state.

// g722Op is a tiny emitter DSL shared by the codec procedures.
type g722Op struct{ b *asm.Builder }

func (e g722Op) ld(o isa.Operand)          { e.b.I(isa.MOV, asm.R(isa.EAX), o) }
func (e g722Op) stEax(o isa.Operand)       { e.b.I(isa.MOV, o, asm.R(isa.EAX)) }
func (e g722Op) cell(n string) isa.Operand { return asm.Sym(isa.SizeD, n, 0) }
func (e g722Op) sat()                      { e.b.Call("saturate") }

// mulShift emits eax = (eax * k) >> sh.
func (e g722Op) mulShift(k int64, sh int64) {
	e.b.I(isa.IMUL, asm.R(isa.EAX), asm.Imm(k))
	e.b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(sh))
}

// clampEax emits eax = clamp(eax, lo, hi) with unique labels.
func (e g722Op) clampEax(tag string, lo, hi int64) {
	e.b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(hi))
	e.b.J(isa.JLE, tag+".hi")
	e.b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(hi))
	e.b.Label(tag + ".hi")
	e.b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(lo))
	e.b.J(isa.JGE, tag+".lo")
	e.b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(lo))
	e.b.Label(tag + ".lo")
}

// emitBlock4Proc emits block4: the shared predictor adaptation. Inputs:
// ebp = band state, [dval] = quantized difference d. Clobbers eax-edi.
// With mmxFiltez, the zero-predictor FIR (FILTEZ) runs through the MMX
// vector library: the six 32-bit taps are packed to the library's 16-bit
// format on every call, multiplied per-term by nsVecMul16 (identical
// truncating semantics) and summed back in scalar code — the granular
// library usage plus formatting the paper's g722.mmx suffers from.
func emitBlock4Proc(b *asm.Builder, mmxFiltez bool) {
	e := g722Op{b}
	b.Proc("block4")

	// RECONS / PARREC.
	e.ld(e.cell("dval"))
	e.stEax(st(gD)) // d[0] = d
	e.ld(st(gS))
	b.I(isa.ADD, asm.R(isa.EAX), e.cell("dval"))
	e.sat()
	e.stEax(st(gR)) // r[0]
	e.ld(st(gSZ))
	b.I(isa.ADD, asm.R(isa.EAX), e.cell("dval"))
	e.sat()
	e.stEax(st(gP)) // p[0]

	// UPPOL2.
	for i := 0; i < 3; i++ {
		e.ld(st(gP + i))
		b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(15))
		e.stEax(st(gSG + i))
	}
	e.ld(st(gA + 1))
	b.I(isa.SHL, asm.R(isa.EAX), asm.Imm(2))
	e.sat() // wd1
	b.I(isa.MOV, asm.R(isa.EDX), st(gSG))
	b.I(isa.CMP, asm.R(isa.EDX), st(gSG+1))
	b.J(isa.JNE, "b4.keep1")
	b.I(isa.NEG, asm.R(isa.EAX))
	b.Label("b4.keep1")
	e.clampEax("b4.w2", -0x80000000, 32767) // only the high clamp matters
	e.stEax(e.cell("wd1v"))                 // wd2
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(-128))
	b.I(isa.MOV, asm.R(isa.EDX), st(gSG))
	b.I(isa.CMP, asm.R(isa.EDX), st(gSG+2))
	b.J(isa.JNE, "b4.m128")
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(128))
	b.Label("b4.m128")
	e.ld(e.cell("wd1v"))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(7))
	b.I(isa.ADD, asm.R(isa.ECX), asm.R(isa.EAX))
	e.ld(st(gA + 2))
	e.mulShift(32512, 15)
	b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.ECX))
	e.clampEax("b4.ap2", -12288, 12288)
	e.stEax(st(gAP + 2))

	// UPPOL1.
	e.ld(st(gP))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(15))
	e.stEax(st(gSG))
	e.ld(st(gP + 1))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(15))
	e.stEax(st(gSG + 1))
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(-192))
	b.I(isa.MOV, asm.R(isa.EAX), st(gSG))
	b.I(isa.CMP, asm.R(isa.EAX), st(gSG+1))
	b.J(isa.JNE, "b4.m192")
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(192))
	b.Label("b4.m192")
	e.ld(st(gA + 1))
	e.mulShift(32640, 15)
	b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.ECX))
	e.sat()
	e.stEax(st(gAP + 1))
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(15360))
	b.I(isa.SUB, asm.R(isa.EAX), st(gAP+2))
	e.sat()
	b.I(isa.MOV, asm.R(isa.ECX), asm.R(isa.EAX)) // wd3
	b.I(isa.MOV, asm.R(isa.EDX), asm.R(isa.ECX))
	b.I(isa.NEG, asm.R(isa.EDX)) // -wd3
	e.ld(st(gAP + 1))
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.ECX))
	b.J(isa.JLE, "b4.ap1lo")
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.ECX))
	b.J(isa.JMP, "b4.ap1done")
	b.Label("b4.ap1lo")
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.EDX))
	b.J(isa.JGE, "b4.ap1done")
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EDX))
	b.Label("b4.ap1done")
	e.stEax(st(gAP + 1))

	// UPZERO.
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(128))
	e.ld(e.cell("dval"))
	b.I(isa.TEST, asm.R(isa.EAX), asm.R(isa.EAX))
	b.J(isa.JNE, "b4.dnz")
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
	b.Label("b4.dnz")
	b.I(isa.MOV, e.cell("wd1v"), asm.R(isa.ECX))
	e.ld(e.cell("dval"))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(15))
	e.stEax(st(gSG))
	for i := 1; i < 7; i++ {
		tag := fmt1("b4.up%d", i)
		e.ld(st(gD + i))
		b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(15))
		e.stEax(st(gSG + i))
		b.I(isa.MOV, asm.R(isa.ECX), e.cell("wd1v"))
		b.I(isa.CMP, asm.R(isa.EAX), st(gSG))
		b.J(isa.JE, tag)
		b.I(isa.NEG, asm.R(isa.ECX))
		b.Label(tag)
		e.ld(st(gB + i))
		e.mulShift(32640, 15)
		b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.ECX))
		e.sat()
		e.stEax(st(gBP + i))
	}

	// DELAYA.
	for i := 6; i > 0; i-- {
		e.ld(st(gD + i - 1))
		e.stEax(st(gD + i))
		e.ld(st(gBP + i))
		e.stEax(st(gB + i))
	}
	for i := 2; i > 0; i-- {
		e.ld(st(gR + i - 1))
		e.stEax(st(gR + i))
		e.ld(st(gP + i - 1))
		e.stEax(st(gP + i))
		e.ld(st(gAP + i))
		e.stEax(st(gA + i))
	}

	// FILTEP.
	e.ld(st(gR + 1))
	b.I(isa.ADD, asm.R(isa.EAX), st(gR+1))
	e.sat()
	b.I(isa.IMUL, asm.R(isa.EAX), st(gA+1))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(15))
	b.I(isa.MOV, asm.R(isa.EDI), asm.R(isa.EAX))
	e.ld(st(gR + 2))
	b.I(isa.ADD, asm.R(isa.EAX), st(gR+2))
	e.sat()
	b.I(isa.IMUL, asm.R(isa.EAX), st(gA+2))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(15))
	b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.EDI))
	e.sat()
	e.stEax(st(gSP))

	// FILTEZ.
	if mmxFiltez {
		// Format the taps for the library: wd[i] = sat(2*d[i]) and the
		// b coefficients packed from the 32-bit state to 16-bit vectors
		// (two zero-padded lanes round the length up to 8).
		for i := 1; i <= 6; i++ {
			e.ld(st(gD + i))
			b.I(isa.ADD, asm.R(isa.EAX), st(gD+i))
			e.sat()
			e.stEax(asm.Sym(isa.SizeW, "fzw", int32(2*(i-1))))
			e.ld(st(gB + i))
			e.stEax(asm.Sym(isa.SizeW, "fzb", int32(2*(i-1))))
		}
		b.I(isa.PUSH, asm.R(isa.EBP))
		emitG722Call(b, "nsVecMul16", "fzt", "fzb", "fzw", 8)
		b.I(isa.EMMS)
		b.I(isa.POP, asm.R(isa.EBP))
		b.I(isa.MOV, asm.R(isa.EDI), asm.Imm(0))
		for i := 0; i < 6; i++ {
			b.I(isa.MOVSXW, asm.R(isa.EAX), asm.Sym(isa.SizeW, "fzt", int32(2*i)))
			b.I(isa.ADD, asm.R(isa.EDI), asm.R(isa.EAX))
		}
	} else {
		b.I(isa.MOV, asm.R(isa.EDI), asm.Imm(0))
		for i := 6; i > 0; i-- {
			e.ld(st(gD + i))
			b.I(isa.ADD, asm.R(isa.EAX), st(gD+i))
			e.sat()
			b.I(isa.IMUL, asm.R(isa.EAX), st(gB+i))
			b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(15))
			b.I(isa.ADD, asm.R(isa.EDI), asm.R(isa.EAX))
		}
	}
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EDI))
	e.sat()
	e.stEax(st(gSZ))

	// PREDIC.
	b.I(isa.ADD, asm.R(isa.EAX), st(gSP))
	e.sat()
	e.stEax(st(gS))
	b.Ret()
}

// emitG722Call calls a three-pointer-plus-length library routine.
func emitG722Call(b *asm.Builder, proc, dst, a, c string, n int64) {
	b.I(isa.PUSH, asm.Imm(n))
	b.I(isa.PUSH, asm.ImmSym(c, 0))
	b.I(isa.PUSH, asm.ImmSym(a, 0))
	b.I(isa.PUSH, asm.ImmSym(dst, 0))
	b.Call(proc)
	b.I(isa.ADD, asm.R(isa.ESP), asm.Imm(16))
}

// fmt1 is a minimal sprintf for label tags (avoids fmt import noise).
func fmt1(f string, i int) string {
	out := []byte{}
	for j := 0; j < len(f); j++ {
		if f[j] == '%' && j+1 < len(f) && f[j+1] == 'd' {
			if i >= 10 {
				out = append(out, byte('0'+i/10))
			}
			out = append(out, byte('0'+i%10))
			j++
			continue
		}
		out = append(out, f[j])
	}
	return string(out)
}

// emitLogsclProc emits logscl: lower-band scale update. eax = il on entry;
// ebp = band state.
func emitLogsclProc(b *asm.Builder) {
	e := g722Op{b}
	b.Proc("logscl")
	b.I(isa.MOV, asm.R(isa.ECX), asm.R(isa.EAX))
	b.I(isa.SAR, asm.R(isa.ECX), asm.Imm(2))
	b.I(isa.MOV, asm.R(isa.EDX), asm.SymIdx(isa.SizeD, "rl42", isa.ECX, 4, 0))
	e.ld(st(gNB))
	e.mulShift(127, 7)
	b.I(isa.ADD, asm.R(isa.EAX), asm.SymIdx(isa.SizeD, "wl", isa.EDX, 4, 0))
	e.clampEax("lscl", 0, 18432)
	e.stEax(st(gNB))
	scaleTail(b, 8)
	b.Ret()
}

// emitLogschProc emits logsch: higher-band scale update. eax = ih on
// entry; ebp = band state.
func emitLogschProc(b *asm.Builder) {
	e := g722Op{b}
	b.Proc("logsch")
	b.I(isa.MOV, asm.R(isa.EDX), asm.SymIdx(isa.SizeD, "rh2", isa.EAX, 4, 0))
	e.ld(st(gNB))
	e.mulShift(127, 7)
	b.I(isa.ADD, asm.R(isa.EAX), asm.SymIdx(isa.SizeD, "wh", isa.EDX, 4, 0))
	e.clampEax("lsch", 0, 22528)
	e.stEax(st(gNB))
	scaleTail(b, 10)
	b.Ret()
}

// scaleTail emits the shared SCALEL/SCALEH tail: det = (ilb[(nb>>6)&31]
// shifted by (base - nb>>11)) << 2. nb is in eax.
func scaleTail(b *asm.Builder, base int64) {
	tag := fmt1("scale%d", int(base))
	b.I(isa.MOV, asm.R(isa.ECX), asm.R(isa.EAX))
	b.I(isa.SAR, asm.R(isa.ECX), asm.Imm(6))
	b.I(isa.AND, asm.R(isa.ECX), asm.Imm(31))
	b.I(isa.MOV, asm.R(isa.EDX), asm.SymIdx(isa.SizeD, "ilb", isa.ECX, 4, 0))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(11))
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(base))
	b.I(isa.SUB, asm.R(isa.ECX), asm.R(isa.EAX)) // wd2 = base - nb>>11
	b.I(isa.TEST, asm.R(isa.ECX), asm.R(isa.ECX))
	b.J(isa.JS, tag+".neg")
	b.I(isa.SHR, asm.R(isa.EDX), asm.R(isa.ECX))
	b.J(isa.JMP, tag+".done")
	b.Label(tag + ".neg")
	b.I(isa.NEG, asm.R(isa.ECX))
	b.I(isa.SHL, asm.R(isa.EDX), asm.R(isa.ECX))
	b.Label(tag + ".done")
	b.I(isa.SHL, asm.R(isa.EDX), asm.Imm(2))
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EDX))
	g722Op{b}.stEax(st(gDET))
}
