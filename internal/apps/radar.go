package apps

import (
	"fmt"
	"math"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/core"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/fixed"
	"mmxdsp/internal/fplib"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/mmxlib"
	"mmxdsp/internal/synth"
	"mmxdsp/internal/vm"
)

// Paper workload: "Subtracts successive complex echo signals to remove
// stationary targets from a radar signal and estimates the power spectrum
// of the resulting samples. The dominant frequency is then estimated using
// the peak of the FFT spectrum. The input is complex and represents 12
// range locations from each echo. The FFT is a 16-point, in-place,
// radix-2, decimation-in-time FFT."
const (
	radGates   = 12
	radFFT     = 16
	radPulses  = radFFT + 1
	radBatches = 96
)

// radarWorkload generates per-batch echo planes. Layout per batch:
// re[pulse][gate] flattened pulse-major, and the same for im.
type radarWorkload struct {
	// float32 planes for the .c version, Q15 planes for the .mmx version:
	// all derived from the same float echoes.
	reF, imF []float32 // radBatches * radPulses * radGates
	reQ, imQ []int16
	targets  []int // expected target gate per batch
	dopplers []int // expected Doppler bin per batch
}

func newRadarWorkload() radarWorkload {
	w := radarWorkload{}
	n := radBatches * radPulses * radGates
	w.reF = make([]float32, n)
	w.imF = make([]float32, n)
	w.reQ = make([]int16, n)
	w.imQ = make([]int16, n)
	for batch := 0; batch < radBatches; batch++ {
		target := batch % radGates
		bin := 1 + batch%7 // Doppler bins 1..7
		p := synth.RadarParams{
			Gates:  radGates,
			Pulses: radPulses,
			Target: target,
			// Positive Doppler aligned to an FFT bin.
			Doppler: float64(bin) / radFFT,
			Clutter: 0.55,
			Seed:    0xADA7 + uint64(batch)*977,
		}
		re, im := synth.RadarEchoes(p)
		base := batch * radPulses * radGates
		for n := 0; n < radPulses; n++ {
			for g := 0; g < radGates; g++ {
				i := base + n*radGates + g
				w.reF[i] = float32(re[n][g])
				w.imF[i] = float32(im[n][g])
				w.reQ[i] = fixed.ToQ15(re[n][g] * 0.5)
				w.imQ[i] = fixed.ToQ15(im[n][g] * 0.5)
			}
		}
		w.targets = append(w.targets, target)
		w.dopplers = append(w.dopplers, bin)
	}
	return w
}

// Radar returns the radar.c and radar.mmx benchmarks.
func Radar() []core.Benchmark {
	descr := "Doppler radar: MTI cancellation, 16-pt FFT power spectrum, peak pick, 12 gates"
	return []core.Benchmark{
		{
			Base: "radar", Version: core.VersionC, Kind: core.KindApplication, Descr: descr,
			Build: buildRadarC,
			Check: checkRadarC,
		},
		{
			Base: "radar", Version: core.VersionMMX, Kind: core.KindApplication, Descr: descr,
			Build: buildRadarMMX,
			Check: checkRadarMMX,
		},
	}
}

// --- C version -------------------------------------------------------------

// expectedC mirrors radar.c: float32 MTI subtraction, compiled-style
// float32 FFT, float32 power spectrum, strict-greater peak scan. Returns
// peak bin per (batch, gate) and the strongest gate per batch.
func (w radarWorkload) expectedC() (bins []int32, strong []int32) {
	cos, sin := fplib.TwiddleTablesF32(radFFT)
	bins = make([]int32, radBatches*radGates)
	strong = make([]int32, radBatches)
	for batch := 0; batch < radBatches; batch++ {
		base := batch * radPulses * radGates
		var bestPow float64
		bestGate := 0
		for g := 0; g < radGates; g++ {
			re := make([]float32, radFFT)
			im := make([]float32, radFFT)
			for n := 0; n < radFFT; n++ {
				i := base + n*radGates + g
				j := base + (n+1)*radGates + g
				re[n] = float32(float64(w.reF[j]) - float64(w.reF[i]))
				im[n] = float32(float64(w.imF[j]) - float64(w.imF[i]))
			}
			fplib.ModelFftF32(re, im, cos, sin, true)
			best := 0
			var bestV float64
			for k := 0; k < radFFT; k++ {
				p := float64(float32(float64(re[k])*float64(re[k]) + float64(im[k])*float64(im[k])))
				if p > bestV {
					bestV = p
					best = k
				}
			}
			bins[batch*radGates+g] = int32(best)
			if bestV > bestPow {
				bestPow = bestV
				bestGate = g
			}
		}
		strong[batch] = int32(bestGate)
	}
	return bins, strong
}

func checkRadarC(c *vm.CPU) error {
	w := newRadarWorkload()
	bins, strong := w.expectedC()
	if err := expectI32(c, "bins", bins, "radar.c"); err != nil {
		return err
	}
	if err := expectI32(c, "strong", strong, "radar.c"); err != nil {
		return err
	}
	// Sanity against the physics: the detected gate and Doppler must be
	// the planted ones.
	for batch := 0; batch < radBatches; batch++ {
		if int(strong[batch]) != w.targets[batch] {
			return fmt.Errorf("radar.c: batch %d strongest gate %d, planted %d",
				batch, strong[batch], w.targets[batch])
		}
		g := w.targets[batch]
		if int(bins[batch*radGates+g]) != w.dopplers[batch] {
			return fmt.Errorf("radar.c: batch %d doppler bin %d, planted %d",
				batch, bins[batch*radGates+g], w.dopplers[batch])
		}
	}
	return nil
}

func buildRadarC() (*asm.Program, error) {
	b := asm.NewBuilder("radar.c")
	w := newRadarWorkload()
	fplib.EmitFftCore(b, "fft16", fplib.PresetCompiled())
	cos, sin := fplib.TwiddleTablesF32(radFFT)
	swaps := fplib.BitReverseSwaps(radFFT)
	b.Floats("echoRe", w.reF)
	b.Floats("echoIm", w.imF)
	b.Floats("cos", cos)
	b.Floats("sin", sin)
	b.Dwords("br", swaps)
	b.Floats("bufRe", make([]float32, radFFT))
	b.Floats("bufIm", make([]float32, radFFT))
	b.Floats("pow", make([]float32, radFFT))
	b.Floats("bestPow", []float32{0})
	b.Dwords("bestGate", []int32{0})
	b.Reserve("bins", 4*radBatches*radGates)
	b.Reserve("strong", 4*radBatches)
	b.Dwords("batch", []int32{0})
	b.Dwords("gate", []int32{0})

	const strideP = 4 * radGates             // bytes per pulse row
	const strideB = 4 * radPulses * radGates // bytes per batch

	b.Entry()
	b.Proc("main")
	b.I(isa.PROFON)
	b.I(isa.MOV, asm.Sym(isa.SizeD, "batch", 0), asm.Imm(0))
	b.Label("batchloop")
	b.I(isa.FLDC, asm.R(isa.FP6), asm.Imm(0)) // best power this batch
	b.I(isa.FST, asm.Sym(isa.SizeD, "bestPow", 0), asm.R(isa.FP6))
	b.I(isa.MOV, asm.Sym(isa.SizeD, "gate", 0), asm.Imm(0))

	b.Label("gateloop")
	// esi = &echo[batch][0][gate] (byte offset).
	b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, "batch", 0))
	b.I(isa.IMUL, asm.R(isa.EAX), asm.Imm(strideB))
	b.I(isa.MOV, asm.R(isa.ECX), asm.Sym(isa.SizeD, "gate", 0))
	b.I(isa.LEA, asm.R(isa.ESI), asm.MemIdx(isa.SizeD, isa.EAX, isa.ECX, 4, 0))

	// MTI: buf[n] = echo[n+1][g] - echo[n][g], n = 0..15.
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
	b.Label("mti")
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.ECX))
	b.I(isa.IMUL, asm.R(isa.EAX), asm.Imm(strideP))
	b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.ESI))
	b.I(isa.FLD, asm.R(isa.FP0), asm.SymIdx(isa.SizeD, "echoRe", isa.EAX, 1, strideP))
	b.I(isa.FSUB, asm.R(isa.FP0), asm.SymIdx(isa.SizeD, "echoRe", isa.EAX, 1, 0))
	b.I(isa.FST, asm.SymIdx(isa.SizeD, "bufRe", isa.ECX, 4, 0), asm.R(isa.FP0))
	b.I(isa.FLD, asm.R(isa.FP0), asm.SymIdx(isa.SizeD, "echoIm", isa.EAX, 1, strideP))
	b.I(isa.FSUB, asm.R(isa.FP0), asm.SymIdx(isa.SizeD, "echoIm", isa.EAX, 1, 0))
	b.I(isa.FST, asm.SymIdx(isa.SizeD, "bufIm", isa.ECX, 4, 0), asm.R(isa.FP0))
	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(radFFT))
	b.J(isa.JL, "mti")

	emit.Call(b, "fft16", asm.ImmSym("bufRe", 0), asm.ImmSym("bufIm", 0),
		asm.Imm(radFFT), asm.ImmSym("cos", 0), asm.ImmSym("sin", 0),
		asm.ImmSym("br", 0), asm.Imm(int64(len(swaps)/2)))

	// Power spectrum and peak scan.
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
	b.Label("power")
	b.I(isa.FLD, asm.R(isa.FP0), asm.SymIdx(isa.SizeD, "bufRe", isa.ECX, 4, 0))
	b.I(isa.FMUL, asm.R(isa.FP0), asm.R(isa.FP0))
	b.I(isa.FLD, asm.R(isa.FP1), asm.SymIdx(isa.SizeD, "bufIm", isa.ECX, 4, 0))
	b.I(isa.FMUL, asm.R(isa.FP1), asm.R(isa.FP1))
	b.I(isa.FADD, asm.R(isa.FP0), asm.R(isa.FP1))
	b.I(isa.FST, asm.SymIdx(isa.SizeD, "pow", isa.ECX, 4, 0), asm.R(isa.FP0))
	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(radFFT))
	b.J(isa.JL, "power")

	b.I(isa.MOV, asm.R(isa.EBX), asm.Imm(0)) // best bin
	b.I(isa.FLDC, asm.R(isa.FP2), asm.Imm(0))
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
	b.Label("peak")
	b.I(isa.FLD, asm.R(isa.FP0), asm.SymIdx(isa.SizeD, "pow", isa.ECX, 4, 0))
	b.I(isa.FCOM, asm.R(isa.FP0), asm.R(isa.FP2))
	b.J(isa.JBE, "notbigger")
	b.I(isa.FLD, asm.R(isa.FP2), asm.R(isa.FP0))
	b.I(isa.MOV, asm.R(isa.EBX), asm.R(isa.ECX))
	b.Label("notbigger")
	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(radFFT))
	b.J(isa.JL, "peak")

	// bins[batch*gates + gate] = best bin.
	b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, "batch", 0))
	b.I(isa.IMUL, asm.R(isa.EAX), asm.Imm(radGates))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Sym(isa.SizeD, "gate", 0))
	b.I(isa.MOV, asm.SymIdx(isa.SizeD, "bins", isa.EAX, 4, 0), asm.R(isa.EBX))

	// Track the strongest gate for this batch.
	b.I(isa.FLD, asm.R(isa.FP1), asm.Sym(isa.SizeD, "bestPow", 0))
	b.I(isa.FCOM, asm.R(isa.FP2), asm.R(isa.FP1))
	b.J(isa.JBE, "notstrong")
	b.I(isa.FST, asm.Sym(isa.SizeD, "bestPow", 0), asm.R(isa.FP2))
	b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, "gate", 0))
	b.I(isa.MOV, asm.Sym(isa.SizeD, "bestGate", 0), asm.R(isa.EAX))
	b.Label("notstrong")

	b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, "gate", 0))
	b.I(isa.INC, asm.R(isa.EAX))
	b.I(isa.MOV, asm.Sym(isa.SizeD, "gate", 0), asm.R(isa.EAX))
	b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(radGates))
	b.J(isa.JL, "gateloop")

	b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, "bestGate", 0))
	b.I(isa.MOV, asm.R(isa.ECX), asm.Sym(isa.SizeD, "batch", 0))
	b.I(isa.MOV, asm.SymIdx(isa.SizeD, "strong", isa.ECX, 4, 0), asm.R(isa.EAX))
	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.MOV, asm.Sym(isa.SizeD, "batch", 0), asm.R(isa.ECX))
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(radBatches))
	b.J(isa.JL, "batchloop")

	b.I(isa.PROFOFF)
	b.I(isa.HALT)
	return b.Link()
}

// --- MMX version ------------------------------------------------------------

// expectedMMX mirrors radar.mmx: Q15 gather, saturating vector subtract,
// hybrid library FFT (float core, fist back-conversion with 1/16 scale),
// truncating Q15 power, strict-greater peak scan on int16 power.
func (w radarWorkload) expectedMMX() (bins []int32, strong []int32) {
	cos, sin := fplib.TwiddleTablesF32(radFFT)
	bins = make([]int32, radBatches*radGates)
	strong = make([]int32, radBatches)
	inv := float64(float32(1.0 / radFFT))
	for batch := 0; batch < radBatches; batch++ {
		base := batch * radPulses * radGates
		var bestPow int32 = -1
		bestGate := 0
		for g := 0; g < radGates; g++ {
			subRe := make([]int16, radFFT)
			subIm := make([]int16, radFFT)
			for n := 0; n < radFFT; n++ {
				i := base + n*radGates + g
				j := base + (n+1)*radGates + g
				subRe[n] = fixed.SatW(int32(w.reQ[j]) - int32(w.reQ[i]))
				subIm[n] = fixed.SatW(int32(w.imQ[j]) - int32(w.imQ[i]))
			}
			// Hybrid FFT model.
			reF := make([]float32, radFFT)
			imF := make([]float32, radFFT)
			for n := 0; n < radFFT; n++ {
				reF[n] = float32(subRe[n])
				imF[n] = float32(subIm[n])
			}
			fplib.ModelFftF32(reF, imF, cos, sin, false)
			var best int32
			var bestV int32 = -1
			for k := 0; k < radFFT; k++ {
				rq := fistRound16(float64(reF[k]) * inv)
				iq := fistRound16(float64(imF[k]) * inv)
				rr := fixed.MulQ15Trunc(rq, rq)
				ii := fixed.MulQ15Trunc(iq, iq)
				p := int32(fixed.SatW(int32(rr) + int32(ii)))
				if p > bestV {
					bestV = p
					best = int32(k)
				}
			}
			bins[batch*radGates+g] = best
			if bestV > bestPow {
				bestPow = bestV
				bestGate = g
			}
		}
		strong[batch] = int32(bestGate)
	}
	return bins, strong
}

func fistRound16(v float64) int16 {
	r := math.RoundToEven(v)
	if r > 32767 {
		return 32767
	}
	if r < -32768 {
		return -32768
	}
	return int16(r)
}

func checkRadarMMX(c *vm.CPU) error {
	w := newRadarWorkload()
	bins, strong := w.expectedMMX()
	if err := expectI32(c, "bins", bins, "radar.mmx"); err != nil {
		return err
	}
	if err := expectI32(c, "strong", strong, "radar.mmx"); err != nil {
		return err
	}
	// The paper reports "little measured change in the output precision"
	// between versions: the MMX pipeline must still find the planted
	// targets.
	for batch := 0; batch < radBatches; batch++ {
		if int(strong[batch]) != w.targets[batch] {
			return fmt.Errorf("radar.mmx: batch %d strongest gate %d, planted %d",
				batch, strong[batch], w.targets[batch])
		}
		g := w.targets[batch]
		if int(bins[batch*radGates+g]) != w.dopplers[batch] {
			return fmt.Errorf("radar.mmx: batch %d doppler bin %d, planted %d",
				batch, bins[batch*radGates+g], w.dopplers[batch])
		}
	}
	return nil
}

func buildRadarMMX() (*asm.Program, error) {
	b := asm.NewBuilder("radar.mmx")
	w := newRadarWorkload()
	mmxlib.EmitVecSub16(b)
	mmxlib.EmitVecMul16(b)
	mmxlib.EmitVecAdd16(b)
	mmxlib.EmitCvtI16ToF32(b)
	mmxlib.EmitCvtF32ToI16(b)
	mmxlib.EmitFftHybrid(b)
	fplib.EmitFftCore(b, "fftCoreFast", fplib.PresetFast())
	mmxlib.CvtScratch(b)

	cos, sin := fplib.TwiddleTablesF32(radFFT)
	swaps := fplib.BitReverseSwaps(radFFT)
	b.Words("echoRe", w.reQ)
	b.Words("echoIm", w.imQ)
	b.Floats("cos", cos)
	b.Floats("sin", sin)
	b.Dwords("br", swaps)
	// Library-format staging buffers: the echo data is strided by gate, so
	// every call needs a gather into contiguous vectors first — the
	// "preformatting the data" overhead of §4.2.
	for _, sym := range []string{"curRe", "curIm", "prvRe", "prvIm",
		"subRe", "subIm", "re2", "im2", "pow"} {
		b.Words(sym, make([]int16, radFFT))
	}
	b.Reserve("reF", 4*radFFT)
	b.Reserve("imF", 4*radFFT)
	b.Reserve("stage", 4*radFFT)
	b.Reserve("bins", 4*radBatches*radGates)
	b.Reserve("strong", 4*radBatches)
	b.Dwords("batch", []int32{0})
	b.Dwords("gate", []int32{0})
	b.Dwords("bestPow", []int32{-1})
	b.Dwords("bestGate", []int32{0})

	const strideP = 2 * radGates
	const strideB = 2 * radPulses * radGates

	b.Entry()
	b.Proc("main")
	b.I(isa.PROFON)
	b.I(isa.MOV, asm.Sym(isa.SizeD, "batch", 0), asm.Imm(0))
	b.Label("batchloop")
	b.I(isa.MOV, asm.Sym(isa.SizeD, "bestPow", 0), asm.Imm(-1))
	b.I(isa.MOV, asm.Sym(isa.SizeD, "gate", 0), asm.Imm(0))

	b.Label("gateloop")
	// esi = byte offset of echo[batch][0][gate].
	b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, "batch", 0))
	b.I(isa.IMUL, asm.R(isa.EAX), asm.Imm(strideB))
	b.I(isa.MOV, asm.R(isa.ECX), asm.Sym(isa.SizeD, "gate", 0))
	b.I(isa.LEA, asm.R(isa.ESI), asm.MemIdx(isa.SizeD, isa.EAX, isa.ECX, 2, 0))

	// Gather strided samples into the contiguous library buffers.
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
	b.I(isa.MOV, asm.R(isa.EDI), asm.R(isa.ESI))
	b.Label("gather")
	b.I(isa.MOVZXW, asm.R(isa.EAX), asm.SymIdx(isa.SizeW, "echoRe", isa.EDI, 1, 0))
	b.I(isa.MOV, asm.SymIdx(isa.SizeW, "prvRe", isa.ECX, 2, 0), asm.R(isa.EAX))
	b.I(isa.MOVZXW, asm.R(isa.EAX), asm.SymIdx(isa.SizeW, "echoRe", isa.EDI, 1, strideP))
	b.I(isa.MOV, asm.SymIdx(isa.SizeW, "curRe", isa.ECX, 2, 0), asm.R(isa.EAX))
	b.I(isa.MOVZXW, asm.R(isa.EAX), asm.SymIdx(isa.SizeW, "echoIm", isa.EDI, 1, 0))
	b.I(isa.MOV, asm.SymIdx(isa.SizeW, "prvIm", isa.ECX, 2, 0), asm.R(isa.EAX))
	b.I(isa.MOVZXW, asm.R(isa.EAX), asm.SymIdx(isa.SizeW, "echoIm", isa.EDI, 1, strideP))
	b.I(isa.MOV, asm.SymIdx(isa.SizeW, "curIm", isa.ECX, 2, 0), asm.R(isa.EAX))
	b.I(isa.ADD, asm.R(isa.EDI), asm.Imm(strideP))
	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(radFFT))
	b.J(isa.JL, "gather")

	// MTI cancellation and power spectrum through the vector library.
	emit.Call(b, "nsVecSub16", asm.ImmSym("subRe", 0), asm.ImmSym("curRe", 0),
		asm.ImmSym("prvRe", 0), asm.Imm(radFFT))
	emit.Call(b, "nsVecSub16", asm.ImmSym("subIm", 0), asm.ImmSym("curIm", 0),
		asm.ImmSym("prvIm", 0), asm.Imm(radFFT))
	b.I(isa.EMMS)
	emit.Call(b, "nsFft",
		asm.ImmSym("subRe", 0), asm.ImmSym("subIm", 0), asm.Imm(radFFT),
		asm.ImmSym("reF", 0), asm.ImmSym("imF", 0),
		asm.ImmSym("cos", 0), asm.ImmSym("sin", 0),
		asm.ImmSym("br", 0), asm.Imm(int64(len(swaps)/2)),
		asm.Imm(int64(math.Float32bits(1.0/radFFT))), asm.ImmSym("stage", 0))
	emit.Call(b, "nsVecMul16", asm.ImmSym("re2", 0), asm.ImmSym("subRe", 0),
		asm.ImmSym("subRe", 0), asm.Imm(radFFT))
	emit.Call(b, "nsVecMul16", asm.ImmSym("im2", 0), asm.ImmSym("subIm", 0),
		asm.ImmSym("subIm", 0), asm.Imm(radFFT))
	emit.Call(b, "nsVecAdd16", asm.ImmSym("pow", 0), asm.ImmSym("re2", 0),
		asm.ImmSym("im2", 0), asm.Imm(radFFT))
	b.I(isa.EMMS)

	// Peak scan on the Q15 power spectrum.
	b.I(isa.MOV, asm.R(isa.EBX), asm.Imm(0))
	b.I(isa.MOV, asm.R(isa.EDX), asm.Imm(-1))
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
	b.Label("peak")
	b.I(isa.MOVSXW, asm.R(isa.EAX), asm.SymIdx(isa.SizeW, "pow", isa.ECX, 2, 0))
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.EDX))
	b.J(isa.JLE, "notbigger")
	b.I(isa.MOV, asm.R(isa.EDX), asm.R(isa.EAX))
	b.I(isa.MOV, asm.R(isa.EBX), asm.R(isa.ECX))
	b.Label("notbigger")
	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(radFFT))
	b.J(isa.JL, "peak")

	// bins[batch*gates + gate] = ebx; track strongest gate via edx.
	b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, "batch", 0))
	b.I(isa.IMUL, asm.R(isa.EAX), asm.Imm(radGates))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Sym(isa.SizeD, "gate", 0))
	b.I(isa.MOV, asm.SymIdx(isa.SizeD, "bins", isa.EAX, 4, 0), asm.R(isa.EBX))
	b.I(isa.CMP, asm.R(isa.EDX), asm.Sym(isa.SizeD, "bestPow", 0))
	b.J(isa.JLE, "notstrong")
	b.I(isa.MOV, asm.Sym(isa.SizeD, "bestPow", 0), asm.R(isa.EDX))
	b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, "gate", 0))
	b.I(isa.MOV, asm.Sym(isa.SizeD, "bestGate", 0), asm.R(isa.EAX))
	b.Label("notstrong")

	b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, "gate", 0))
	b.I(isa.INC, asm.R(isa.EAX))
	b.I(isa.MOV, asm.Sym(isa.SizeD, "gate", 0), asm.R(isa.EAX))
	b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(radGates))
	b.J(isa.JL, "gateloop")

	b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, "bestGate", 0))
	b.I(isa.MOV, asm.R(isa.ECX), asm.Sym(isa.SizeD, "batch", 0))
	b.I(isa.MOV, asm.SymIdx(isa.SizeD, "strong", isa.ECX, 4, 0), asm.R(isa.EAX))
	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.MOV, asm.Sym(isa.SizeD, "batch", 0), asm.R(isa.ECX))
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(radBatches))
	b.J(isa.JL, "batchloop")

	b.I(isa.PROFOFF)
	b.I(isa.HALT)
	return b.Link()
}

func expectI32(c *vm.CPU, sym string, want []int32, context string) error {
	got, ok := c.Mem.ReadInt32s(c.Prog.Addr(sym), len(want))
	if !ok {
		return fmt.Errorf("%s: cannot read %q", context, sym)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s: %s[%d] = %d, want %d", context, sym, i, got[i], want[i])
		}
	}
	return nil
}
